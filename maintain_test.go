package shiftsplit

import (
	"math"
	"math/rand"
	"testing"
)

func TestNonStdAppenderFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a, err := NewNonStdAppender(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := NewArray(8, 24)
	for h := 0; h < 3; h++ {
		cube := randArray(rng, 8, 8)
		full.SubPaste(cube, []int{0, h * 8})
		if err := a.Append(cube); err != nil {
			t.Fatal(err)
		}
	}
	if a.Hypercubes() != 3 {
		t.Errorf("Hypercubes = %d", a.Hypercubes())
	}
	v, err := a.PointAt([]int{3, 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-full.At(3, 17)) > 1e-8 {
		t.Errorf("point = %g, want %g", v, full.At(3, 17))
	}
	sum, err := a.RangeSum([]int{2, 5}, []int{4, 15})
	if err != nil {
		t.Fatal(err)
	}
	if want := full.SumRange([]int{2, 5}, []int{4, 15}); math.Abs(sum-want) > 1e-6 {
		t.Errorf("range sum = %g, want %g", sum, want)
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(full, 1e-8) {
		t.Error("reconstruction differs")
	}
	if a.TotalIO().Total() == 0 {
		t.Error("no I/O recorded")
	}
}
