package shiftsplit

import (
	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/stream"
)

func coreEachEmbedStandard(shape []int, b Block, bHat *Array, visit func(coords []int, delta float64)) {
	core.EachEmbedStandard(shape, b.toRange(), bHat, visit)
}

func coreEachNonStandard(shape []int, b Block, bHat *Array, visit func(coords []int, delta float64)) {
	core.EachShiftNonStandard(shape, b.Levels[0], b.Pos, bHat, visit)
	origin := make([]int, len(shape))
	core.EachSplitNonStandard(shape, b.Levels[0], b.Pos, bHat.At(origin...), visit)
}

// Appender maintains a dataset that grows along one or more dimensions
// entirely in the wavelet domain (paper §5.2): incoming slabs are
// transformed in memory and SHIFT-SPLIT-merged, and when a dimension
// outgrows its domain the transform is expanded in place (Figure 10) rather
// than recomputed.
type Appender struct {
	inner *appender.Appender
}

// AppendResult reports the cost of one append or append batch. The two
// I/O windows are disjoint: ExpansionIO covers the domain doublings
// (including their own commits), MergeIO covers transforming and applying
// the slabs plus the single group commit that seals them — so the
// journal-group amortization of a batch is readable directly from
// MergeIO.Commits.
type AppendResult struct {
	// Expansions is how many times the domain doubled to fit the slabs.
	Expansions int
	// Slabs is how many client slabs the call folded in.
	Slabs int
	// ExpansionIO and MergeIO are the block I/O spent on each phase.
	ExpansionIO IOStats
	MergeIO     IOStats
}

// NewAppender creates an appender over an initially empty standard-form
// domain of the given power-of-two shape, tiled with per-dimension block
// edge 2^tileBits.
func NewAppender(shape []int, tileBits int) (*Appender, error) {
	return NewAppenderOpts(shape, tileBits, MaintainOptions{})
}

// NewAppenderOpts is NewAppender with an explicit worker-pool configuration.
// The dyadic pieces of each slab are transformed and bucketed concurrently;
// delta application stays sequential in piece order, so appends are
// bit-identical and cost-identical for every worker count.
func NewAppenderOpts(shape []int, tileBits int, opts MaintainOptions) (*Appender, error) {
	a, err := appender.New(shape, tileBits)
	if err != nil {
		return nil, err
	}
	a.SetOptions(parallel.Options{Workers: opts.Workers, ChunkQueue: opts.ChunkQueue})
	return &Appender{inner: a}, nil
}

// Append folds slab into the dataset along dim at the current frontier,
// expanding the domain as needed.
func (a *Appender) Append(dim int, slab *Array) (AppendResult, error) {
	return a.AppendBatch(dim, []*Array{slab})
}

// AppendBatch folds a group of slabs into the dataset along dim, in
// order, as one atomic batch sealed by a single commit: on a durable
// backing many client appends cost one journal group. All needed domain
// expansions run before any slab is staged, so a crash never exposes a
// partial group.
func (a *Appender) AppendBatch(dim int, slabs []*Array) (AppendResult, error) {
	st, err := a.inner.AppendBatch(dim, slabs)
	if err != nil {
		return AppendResult{}, err
	}
	return AppendResult{
		Expansions:  st.Expansions,
		Slabs:       st.Slabs,
		ExpansionIO: ioStatsOf(st.ExpansionIO),
		MergeIO:     ioStatsOf(st.MergeIO),
	}, nil
}

// IOBreakdown splits the lifetime append I/O into its two phases —
// domain expansion vs slab merging — so fsync-amortization claims are
// verifiable from stats alone (TotalIO may exceed the sum: queries and
// reconstruction belong to neither phase).
func (a *Appender) IOBreakdown() (expansion, merge IOStats) {
	e, m := a.inner.IOBreakdown()
	return ioStatsOf(e), ioStatsOf(m)
}

func ioStatsOf(st storage.Stats) IOStats {
	return IOStats{Reads: st.Reads, Writes: st.Writes, Syncs: st.Syncs, Commits: st.Commits, MappedReads: st.MappedReads}
}

// Shape returns the current transformed domain extents.
func (a *Appender) Shape() []int { return a.inner.Shape() }

// Used returns the extents occupied by appended data.
func (a *Appender) Used() []int { return a.inner.Used() }

// TotalIO returns the cumulative block I/O.
func (a *Appender) TotalIO() IOStats { return ioStatsOf(a.inner.TotalIO()) }

// Reconstruct reads the transform back and inverts it.
func (a *Appender) Reconstruct() (*Array, error) { return a.inner.Reconstruct() }

// StreamCoef identifies one finalized coefficient of a stream synopsis:
// the detail w[Level, Pos] of the growing 1-d transform, or (when Avg is
// set) the running average over the leading 2^Level items.
type StreamCoef struct {
	Level int
	Pos   int
	Avg   bool
}

// StreamEntry is one retained synopsis coefficient with its energy weight.
type StreamEntry struct {
	Coef   StreamCoef
	Value  float64
	Energy float64
}

// StreamSynopsis maintains a best-K-term wavelet synopsis of an unbounded
// one-dimensional stream using the buffered SHIFT-SPLIT scheme of Result 3:
// per-item crest cost O((1/B) log(N/B)) with B = 2^bufBits buffered items.
// bufBits = 0 degenerates to the Gilbert et al. baseline cost profile.
type StreamSynopsis struct {
	inner *stream.Buffered
}

// NewStreamSynopsis creates a synopsis of capacity k (0 = unbounded) with a
// buffer of 2^bufBits items.
func NewStreamSynopsis(k, bufBits int) *StreamSynopsis {
	return &StreamSynopsis{inner: stream.NewBuffered(k, bufBits)}
}

// Add consumes one stream item.
func (s *StreamSynopsis) Add(v float64) { s.inner.Add(v) }

// Finish flushes the crest; the stream must stop at a buffer boundary.
func (s *StreamSynopsis) Finish() error { return s.inner.Finish() }

// Entries returns the retained coefficients.
func (s *StreamSynopsis) Entries() []StreamEntry {
	raw := s.inner.Synopsis().Entries()
	out := make([]StreamEntry, len(raw))
	for i, e := range raw {
		out[i] = StreamEntry{
			Coef:   StreamCoef{Level: e.Key.J, Pos: e.Key.K, Avg: e.Key.Avg},
			Value:  e.Value,
			Energy: e.Weight,
		}
	}
	return out
}

// PerItemCost returns the average crest updates and total coefficient
// operations per consumed item.
func (s *StreamSynopsis) PerItemCost() (crest, total float64) {
	c := s.inner.Costs()
	return c.PerItemCrest(), c.PerItemTotal()
}

// Items returns how many items have been consumed.
func (s *StreamSynopsis) Items() int64 { return s.inner.Costs().Items }

// NonStdAppender maintains a dataset growing along its last dimension under
// the non-standard decomposition, as a sequence of hypercubes plus a 1-d
// averages tree (the paper's Result-5 construction applied to disk-resident
// data). Unlike the standard-form Appender it never rewrites old data: each
// append costs only the new hypercube's tiles plus an O(log T) averages
// update.
type NonStdAppender struct {
	inner *appender.NonStd
}

// NewNonStdAppender creates a non-standard appender for d-dimensional
// hypercubes of edge 2^n, tiled with block edge 2^tileBits.
func NewNonStdAppender(n, d, tileBits int) (*NonStdAppender, error) {
	inner, err := appender.NewNonStd(n, d, tileBits)
	if err != nil {
		return nil, err
	}
	return &NonStdAppender{inner: inner}, nil
}

// Append stores the next hypercube (cubic, edge 2^n, covering the next
// 2^n time steps).
func (a *NonStdAppender) Append(cube *Array) error { return a.inner.Append(cube) }

// Hypercubes returns how many hypercubes have been appended.
func (a *NonStdAppender) Hypercubes() int { return a.inner.Hypercubes() }

// Shape returns the current global data extents.
func (a *NonStdAppender) Shape() []int { return a.inner.Shape() }

// PointAt reconstructs one cell (time indexed globally).
func (a *NonStdAppender) PointAt(coords []int) (float64, error) { return a.inner.PointAt(coords) }

// RangeSum evaluates a global box aggregate.
func (a *NonStdAppender) RangeSum(start, shape []int) (float64, error) {
	return a.inner.RangeSum(start, shape)
}

// Reconstruct reads all data back.
func (a *NonStdAppender) Reconstruct() (*Array, error) { return a.inner.Reconstruct() }

// TotalIO returns the cumulative block I/O.
func (a *NonStdAppender) TotalIO() IOStats { return ioStatsOf(a.inner.TotalIO()) }
