package shiftsplit

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// TestScrubMaintenanceServingRace is the robustness coexistence proof
// obligation (run with -race): on one durable serving store, a background
// scrubber sweeps continuously, a maintenance goroutine re-materializes
// the same dataset over and over, reader goroutines hammer point and
// range-sum queries, and a saboteur goroutine keeps flipping bytes in the
// live data file. The contract under all that:
//
//   - no data race (the -race half),
//   - any answer that completed without error and without a degraded read
//     matches the in-memory oracle (never silently wrong),
//   - once the sabotage stops, one materialize + scrub pass converges the
//     store back to clean and exact.
func TestScrubMaintenanceServingRace(t *testing.T) {
	shape := []int{32, 32}
	oracle := dataset.Dense(shape, 41)
	wantHat := Transform(oracle, Standard)
	path := filepath.Join(t.TempDir(), "robust-race.wav")
	st, err := CreateStore(StoreOptions{Shape: shape, Form: Standard, TileBits: 2, Path: path, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(oracle); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := OpenServing(path, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer serving.Close()
	if err := serving.StartScrub(context.Background(), 5*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}

	frameBytes := int64(8 * (serving.BlockSize() + storage.ChecksumOverhead))
	numBlocks := serving.NumBlocks()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var wrong atomic.Int64
	var clean, degradedOrFailed atomic.Int64

	// Readers: check every clean answer against the oracle.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := serving.DegradedReads()
				var got, want float64
				var qerr error
				if rng.Intn(2) == 0 {
					p := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
					got, _, qerr = serving.Point(p...)
					want = oracle.At(p...)
				} else {
					s := []int{rng.Intn(shape[0] / 2), rng.Intn(shape[1] / 2)}
					sh := []int{1 + rng.Intn(shape[0]-s[0]), 1 + rng.Intn(shape[1]-s[1])}
					got, _, qerr = serving.RangeSum(s, sh)
					want = oracle.SumRange(s, sh)
				}
				if qerr != nil || serving.DegradedReads() != before {
					// Errors and flagged partial answers are legal under
					// sabotage; silence is only allowed when correct.
					degradedOrFailed.Add(1)
					continue
				}
				if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
					wrong.Add(1)
				} else {
					clean.Add(1)
				}
			}
		}(int64(g + 1))
	}

	// Maintenance: repeated full materializes of the identical dataset, so
	// committed bytes always agree with the oracle and each pass heals
	// whatever the saboteur rotted.
	wg.Add(1)
	var materializeErr error
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := serving.Materialize(oracle); err != nil {
				materializeErr = err
				return
			}
		}
	}()

	// Saboteur: flip payload bytes in random frames of the live file.
	wg.Add(1)
	go func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return
		}
		defer f.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := int64(rng.Intn(numBlocks))*frameBytes + int64(rng.Intn(8*serving.BlockSize()))
			var b [1]byte
			if _, err := f.ReadAt(b[:], off); err != nil {
				continue
			}
			b[0] ^= 1 << uint(rng.Intn(8))
			_, _ = f.WriteAt(b[:], off)
			time.Sleep(2 * time.Millisecond)
		}
	}(99)

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	serving.StopScrub()
	if materializeErr != nil {
		t.Fatalf("materialize under sabotage: %v", materializeErr)
	}
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d silently wrong answers (clean %d, degraded/failed %d)",
			n, clean.Load(), degradedOrFailed.Load())
	}
	if clean.Load() == 0 {
		t.Fatal("no clean answers at all; the test exercised nothing")
	}
	t.Logf("answers: %d clean, %d degraded/failed, 0 wrong", clean.Load(), degradedOrFailed.Load())

	// Convergence: heal the medium and require a clean, exact store.
	if err := serving.Materialize(oracle); err != nil {
		t.Fatalf("healing materialize: %v", err)
	}
	if n, err := serving.ScrubOnce(context.Background()); err != nil || n != 0 {
		t.Fatalf("post-heal scrub: n=%d err=%v", n, err)
	}
	if h := serving.Health(); h.Status != "ok" {
		t.Fatalf("health after heal = %+v", h)
	}
	serving.InvalidateCache()
	got, err := serving.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	wantHat.Each(func(coords []int, v float64) {
		if math.Abs(got.At(coords...)-v) > 1e-6 {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("%d coefficients differ from the oracle after convergence", bad)
	}
}
