package shiftsplit

import (
	"context"
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// ingestPerItemIO drives a 1-d ingest run of n items in B-item slabs
// through a real Ingester (block edge 2^tileBits = B) and returns the
// measured merge block I/O per item from the Counting stats.
func ingestPerItemIO(t *testing.T, n, tileBits int) float64 {
	t.Helper()
	B := 1 << tileBits
	app, err := appender.New([]int{B}, tileBits)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ingest.New(app, ingest.Config{Dim: 0, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = in.Close() }() // drained below; Close is idempotent
	for i := 0; i < n/B; i++ {
		vals := make([]float64, B)
		for j := range vals {
			vals[j] = math.Sin(float64(i*B + j))
		}
		if _, err := in.Enqueue(context.Background(), ndarray.FromSlice(vals, B)); err != nil {
			t.Fatal(err)
		}
	}
	st := in.Stats()
	if st.CommittedCells != int64(n) {
		t.Fatalf("committed %d cells, want %d", st.CommittedCells, n)
	}
	return float64(st.MergeIO.Reads+st.MergeIO.Writes) / float64(n)
}

// TestStreamPerItemCostMatchesIngestIO ties the R3 bound to observed
// Counting stats: the per-item coefficient cost the StreamSynopsis
// reports (O((1/B) log(N/B)) crest updates plus the B-1 in-buffer
// finalizations per B items) and the per-item BLOCK I/O a real B-item
// slab ingest pays must track each other within a constant factor —
// both are "touch the open root path once per buffer" schemes, so their
// ratio is a block-size constant, not a function of N.
func TestStreamPerItemCostMatchesIngestIO(t *testing.T) {
	const tileBits = 3 // B = 8 items per block/buffer
	const n = 1 << 10  // 1024 items

	syn := NewStreamSynopsis(0, tileBits)
	for i := 0; i < n; i++ {
		syn.Add(math.Sin(float64(i)))
	}
	_, totalPerItem := syn.PerItemCost()
	if totalPerItem <= 0 {
		t.Fatalf("synopsis per-item cost %v", totalPerItem)
	}

	measured := ingestPerItemIO(t, n, tileBits)
	if measured <= 0 {
		t.Fatalf("measured per-item I/O %v", measured)
	}

	ratio := measured / totalPerItem
	t.Logf("per item over %d items: synopsis %.3f coefficient ops, ingest %.3f block I/Os (ratio %.3f)",
		n, totalPerItem, measured, ratio)
	// The units differ (coefficient operations vs blocks of 2^tileBits
	// coefficients), so the comparison is up to a block-size constant: the
	// ratio must be a small constant, nowhere near the O(log N) or O(B)
	// separation that would indicate one side lost its amortization.
	if ratio < 1.0/16 || ratio > 16 {
		t.Fatalf("per-item block I/O %.3f vs synopsis cost %.3f: ratio %.2f outside constant-factor band",
			measured, totalPerItem, ratio)
	}

	// And the constant must not drift with N: quadrupling the stream may
	// only move per-item I/O by the log(N/B) growth of the open path —
	// well under 2x here — never linearly.
	small := ingestPerItemIO(t, n/4, tileBits)
	grow := measured / small
	t.Logf("per-item I/O %d→%d items: %.3f → %.3f (x%.2f)", n/4, n, small, measured, grow)
	if grow > 2 {
		t.Fatalf("per-item I/O grew %.2fx when the stream quadrupled — amortization lost", grow)
	}
}
