// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) plus microbenchmarks of the core operations and the DESIGN.md
// ablations. The experiment benches report the measured I/O as custom
// metrics (blocks/op or coefs/op) alongside wall-clock time; the *shape* of
// those metrics across benchmarks is what reproduces the paper.
package shiftsplit

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/experiments"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/stream"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/transform"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// --- experiment benches: one per paper table/figure -------------------------

func BenchmarkTable1ShiftSplitTiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(experiments.DefaultTable1()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Complexities(b *testing.B) {
	cfg := experiments.Table2Config{LogN: 6, Dims: 2, ChunkBits: 3, TileBits: 2, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MemorySweep(b *testing.B) {
	cfg := experiments.Fig11Config{LogN: 3, Dims: 4, ChunkBits: []int{1, 2, 3}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12TileSweep(b *testing.B) {
	cfg := experiments.Fig12Config{LogNs: []int{5, 6}, ChunkBits: 3, TileBits: []int{2, 3}, Seed: 2}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Appending(b *testing.B) {
	cfg := experiments.Fig13Config{Lat: 8, Lon: 8, DaysMonth: 32, Months: 8, TileBits: []int{1, 2}, Seed: 3}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14StreamBufferSweep(b *testing.B) {
	cfg := experiments.Fig14Config{LogN: 14, K: 64, BufBits: []int{1, 3, 5, 7}, Seed: 4}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamMemoryR4R5(b *testing.B) {
	cfg := experiments.DefaultStreamMemory()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StreamMemory(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFormsComparison(b *testing.B) {
	cfg := experiments.AppendFormsConfig{Edge: 8, Periods: 8, TileBits: 2, Seed: 13}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppendForms(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR6PartialReconstruction(b *testing.B) {
	cfg := experiments.R6Config{LogN: 6, TileBits: 2, Levels: []int{1, 3, 5}, Seed: 5}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.R6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- core-operation microbenchmarks ------------------------------------------

func BenchmarkHaarTransform(b *testing.B) {
	for _, n := range []int{10, 14} {
		b.Run("N=2^"+strconv.Itoa(n), func(b *testing.B) {
			v := dataset.RandomWalk(1<<uint(n), 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				haar.Transform(v)
			}
		})
	}
}

func BenchmarkTransform2D(b *testing.B) {
	src := dataset.Dense([]int{128, 128}, 1)
	b.Run("standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wavelet.TransformStandard(src)
		}
	})
	b.Run("non-standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wavelet.TransformNonStandard(src)
		}
	})
}

func BenchmarkMergeBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	aHat := NewArray(256, 256)
	blockData := randArray(rng, 16, 16)
	bHat := Transform(blockData, Standard)
	blk := CubeBlock(4, 3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Merge(aHat, Standard, blk, bHat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randArray(rng, 256, 256)
	hat := Transform(a, Standard)
	blk := CubeBlock(4, 3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(hat, Standard, blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointQueryMaterialized(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := randArray(rng, 64, 64)
	st, err := CreateStore(StoreOptions{Shape: []int{64, 64}, Form: Standard, TileBits: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Point(i%64, (i*7)%64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSumStore(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	src := randArray(rng, 64, 64)
	st, err := CreateStore(StoreOptions{Shape: []int{64, 64}, Form: Standard, TileBits: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.RangeSum([]int{i % 32, i % 16}, []int{17, 23}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamAdd(b *testing.B) {
	for _, bits := range []int{0, 4, 8} {
		b.Run("B=2^"+strconv.Itoa(bits), func(b *testing.B) {
			s := stream.NewBuffered(64, bits)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(float64(i % 97))
			}
		})
	}
}

// --- ablations (DESIGN.md §5) -------------------------------------------------

// BenchmarkAblationTiling compares the block I/O of root-path point queries
// under the tree tiling versus a flat sequential layout.
func BenchmarkAblationTiling(b *testing.B) {
	src := dataset.Dense([]int{64, 64}, 6)
	hat := wavelet.TransformStandard(src)
	shape := []int{64, 64}

	tiling := tile.NewStandard([]int{6, 6}, 2)
	tiledCnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	tiled, err := tile.NewStore(tiledCnt, tiling)
	if err != nil {
		b.Fatal(err)
	}
	if err := tile.MaterializeStandard(tiled, hat); err != nil {
		b.Fatal(err)
	}
	seqTiling := tile.NewSequential(shape, tiling.BlockSize())
	seqCnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	seq, err := tile.NewStore(seqCnt, seqTiling)
	if err != nil {
		b.Fatal(err)
	}
	if err := tile.WriteArray(seq, hat); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, st *tile.Store, cnt *storage.Counting) {
		cnt.Reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			point := []int{i % 64, (i * 13) % 64}
			reader := tile.NewReader(st)
			sum := 0.0
			for _, c := range wavelet.PointPathStandard(shape, point) {
				v, err := reader.Get(c.Coords)
				if err != nil {
					b.Fatal(err)
				}
				sum += c.Weight * v
			}
		}
		b.ReportMetric(float64(cnt.Stats().Reads)/float64(b.N), "blocks/op")
	}
	b.Run("tree-tiling", func(b *testing.B) { run(b, tiled, tiledCnt) })
	b.Run("sequential", func(b *testing.B) { run(b, seq, seqCnt) })
}

// BenchmarkAblationScalingSlot compares point queries that exploit the
// stored per-tile scaling coefficient (one block) against root-path queries.
func BenchmarkAblationScalingSlot(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := randArray(rng, 64, 64)
	st, err := CreateStore(StoreOptions{Shape: []int{64, 64}, Form: Standard, TileBits: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		b.Fatal(err)
	}
	b.Run("single-tile", func(b *testing.B) {
		io := 0
		for i := 0; i < b.N; i++ {
			_, n, err := st.Point(i%64, (i*13)%64)
			if err != nil {
				b.Fatal(err)
			}
			io += n
		}
		b.ReportMetric(float64(io)/float64(b.N), "blocks/op")
	})
	b.Run("root-path", func(b *testing.B) {
		st.materialized.Store(false)
		defer st.materialized.Store(true)
		io := 0
		for i := 0; i < b.N; i++ {
			_, n, err := st.Point(i%64, (i*13)%64)
			if err != nil {
				b.Fatal(err)
			}
			io += n
		}
		b.ReportMetric(float64(io)/float64(b.N), "blocks/op")
	})
}

// BenchmarkAblationZOrder compares the non-standard chunked transformation
// with and without the z-order + crest discipline of Result 2.
func BenchmarkAblationZOrder(b *testing.B) {
	src := dataset.Dense([]int{64, 64}, 8)
	run := func(b *testing.B, opts transform.NonStdOptions) {
		var blocks int64
		for i := 0; i < b.N; i++ {
			tiling := tile.NewNonStandard(6, 2, 2)
			cnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
			st, err := tile.NewStore(cnt, tiling)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := transform.ChunkedNonStandard(src, 2, st, opts); err != nil {
				b.Fatal(err)
			}
			blocks += cnt.Stats().Total()
		}
		b.ReportMetric(float64(blocks)/float64(b.N), "blocks/op")
	}
	b.Run("zorder-crest", func(b *testing.B) { run(b, transform.NonStdOptions{ZOrderCrest: true}) })
	b.Run("row-major", func(b *testing.B) { run(b, transform.NonStdOptions{}) })
}

// BenchmarkAblationBufferPool measures the effect of an LRU pool under the
// chunked standard transformation (the paper's engines assume none; caching
// split-path tiles across chunks cuts repeat I/O).
func BenchmarkAblationBufferPool(b *testing.B) {
	src := dataset.Dense([]int{64, 64}, 9)
	run := func(b *testing.B, pool int) {
		var blocks int64
		for i := 0; i < b.N; i++ {
			tiling := tile.NewStandard([]int{6, 6}, 2)
			cnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
			var bs storage.BlockStore = cnt
			if pool > 0 {
				bs = storage.NewBufferPool(cnt, pool)
			}
			st, err := tile.NewStore(bs, tiling)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := transform.ChunkedStandard(src, 3, st); err != nil {
				b.Fatal(err)
			}
			if p, ok := bs.(*storage.BufferPool); ok {
				if err := p.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			blocks += cnt.Stats().Total()
		}
		b.ReportMetric(float64(blocks)/float64(b.N), "blocks/op")
	}
	b.Run("no-pool", func(b *testing.B) { run(b, 0) })
	b.Run("pool-16", func(b *testing.B) { run(b, 16) })
	b.Run("pool-64", func(b *testing.B) { run(b, 64) })
}

// --- extended-feature microbenchmarks ----------------------------------------

func BenchmarkCompressTopK(b *testing.B) {
	src := dataset.Dense([]int{128, 128}, 11)
	hat := Transform(src, Standard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(hat, Standard, 256)
	}
}

func BenchmarkRollup(b *testing.B) {
	src := dataset.Dense([]int{64, 64, 16}, 12)
	hat := Transform(src, Standard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rollup(hat, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProgressiveRangeSum(b *testing.B) {
	src := dataset.Dense([]int{64, 64}, 13)
	st, err := CreateStore(StoreOptions{Shape: []int{64, 64}, Form: Standard})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ProgressiveRangeSum([]int{i % 16, i % 8}, []int{30, 25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNonStdAppend(b *testing.B) {
	cube := dataset.Dense([]int{16, 16}, 14)
	a, err := NewNonStdAppender(4, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Append(cube); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseTransform(b *testing.B) {
	src := dataset.Sparse([]int{64, 64}, 0.02, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tiling := tile.NewNonStandard(6, 2, 2)
		st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transform.ChunkedNonStandard(src, 2, st, transform.NonStdOptions{ZOrderCrest: true}); err != nil {
			b.Fatal(err)
		}
	}
}
