package shiftsplit

import (
	"math"
	"math/rand"
	"testing"
)

// TestStoreShadowFuzz drives a Store through long random sequences of
// wavelet-domain operations (merges, clears, queries, extractions) while
// maintaining a plain dense array as the source of truth. Every query must
// agree with the shadow at every step — the strongest integration guarantee
// in the suite.
func TestStoreShadowFuzz(t *testing.T) {
	for _, form := range []Form{Standard, NonStandard} {
		form := form
		t.Run(form.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			const n = 16
			shadow := NewArray(n, n)
			st, err := CreateStore(StoreOptions{Shape: []int{n, n}, Form: form, TileBits: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			randomBlock := func() Block {
				level := rng.Intn(3) // edges 1, 2, 4
				side := n >> uint(level)
				return CubeBlock(level, rng.Intn(side), rng.Intn(side))
			}

			for op := 0; op < 400; op++ {
				switch rng.Intn(5) {
				case 0: // merge a random delta block
					b := randomBlock()
					delta := NewArray(b.Shape()...)
					for i := range delta.Data() {
						delta.Data()[i] = rng.NormFloat64()
					}
					if err := st.MergeBlock(b, Transform(delta, form)); err != nil {
						t.Fatalf("op %d merge: %v", op, err)
					}
					shadow.SubAdd(delta, b.Start())
				case 1: // clear a random block
					b := randomBlock()
					if err := st.ClearBlock(b); err != nil {
						t.Fatalf("op %d clear: %v", op, err)
					}
					zero := NewArray(b.Shape()...)
					shadow.SubPaste(zero, b.Start())
				case 2: // point query
					p := []int{rng.Intn(n), rng.Intn(n)}
					v, _, err := st.Point(p...)
					if err != nil {
						t.Fatalf("op %d point: %v", op, err)
					}
					if math.Abs(v-shadow.At(p...)) > 1e-6 {
						t.Fatalf("op %d point %v: %g vs shadow %g", op, p, v, shadow.At(p...))
					}
				case 3: // range sum
					s := []int{rng.Intn(n), rng.Intn(n)}
					sh := []int{1 + rng.Intn(n-s[0]), 1 + rng.Intn(n-s[1])}
					v, _, err := st.RangeSum(s, sh)
					if err != nil {
						t.Fatalf("op %d range: %v", op, err)
					}
					if math.Abs(v-shadow.SumRange(s, sh)) > 1e-5 {
						t.Fatalf("op %d range %v+%v: %g vs shadow %g", op, s, sh, v, shadow.SumRange(s, sh))
					}
				case 4: // extract a block and compare contents
					b := randomBlock()
					vals, _, err := st.ExtractBlock(b)
					if err != nil {
						t.Fatalf("op %d extract: %v", op, err)
					}
					want := shadow.SubCopy(b.Start(), b.Shape())
					if !vals.EqualApprox(want, 1e-6) {
						t.Fatalf("op %d extract %v: differs by %g", op, b, vals.MaxAbsDiff(want))
					}
				}
			}
			// Final global check.
			hat, err := st.ReadTransform()
			if err != nil {
				t.Fatal(err)
			}
			if !Inverse(hat, form).EqualApprox(shadow, 1e-6) {
				t.Error("final state diverged from shadow")
			}
		})
	}
}
