package shiftsplit

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// storeMeta is the JSON sidecar written next to file-backed stores so they
// can be reopened with OpenStore.
type storeMeta struct {
	Shape        []int  `json:"shape"`
	Form         string `json:"form"`
	TileBits     int    `json:"tile_bits"`
	Materialized bool   `json:"materialized"`
}

func metaPath(path string) string { return path + ".meta.json" }

func (s *Store) saveMeta() error {
	if s.opts.Path == "" {
		return nil
	}
	m := storeMeta{
		Shape:        s.opts.Shape,
		Form:         s.opts.Form.String(),
		TileBits:     s.opts.TileBits,
		Materialized: s.materialized,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(metaPath(s.opts.Path), data, 0o644)
}

// OpenStore reopens a file-backed store previously created with CreateStore
// (its metadata sidecar must be present).
func OpenStore(path string) (*Store, error) {
	data, err := os.ReadFile(metaPath(path))
	if err != nil {
		return nil, fmt.Errorf("shiftsplit: read store metadata: %w", err)
	}
	var m storeMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shiftsplit: parse store metadata: %w", err)
	}
	var form Form
	switch m.Form {
	case Standard.String():
		form = Standard
	case NonStandard.String():
		form = NonStandard
	default:
		return nil, fmt.Errorf("shiftsplit: unknown form %q in metadata", m.Form)
	}
	opts := StoreOptions{Shape: m.Shape, Form: form, TileBits: m.TileBits, Path: path}
	ns := make([]int, len(opts.Shape))
	for i, e := range opts.Shape {
		if !bitutil.IsPow2(e) {
			return nil, fmt.Errorf("shiftsplit: bad extent %d in metadata", e)
		}
		ns[i] = bitutil.Log2(e)
	}
	var tiling tile.Tiling
	if form == Standard {
		tiling = tile.NewStandard(ns, opts.TileBits)
	} else {
		tiling = tile.NewNonStandard(ns[0], len(ns), opts.TileBits)
	}
	fs, err := storage.OpenFileStore(path, tiling.BlockSize())
	if err != nil {
		return nil, err
	}
	counting := storage.NewCounting(fs)
	st, err := tile.NewStore(counting, tiling)
	if err != nil {
		return nil, err
	}
	return &Store{
		opts:         opts,
		tiling:       tiling,
		counting:     counting,
		store:        st,
		materialized: m.Materialized,
	}, nil
}

// Sync persists metadata (form, shape, materialization state) for
// file-backed stores; in-memory stores ignore it.
func (s *Store) Sync() error { return s.saveMeta() }
