package shiftsplit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// storeMeta is the JSON sidecar written next to file-backed stores so they
// can be reopened with OpenStore.
type storeMeta struct {
	Shape        []int  `json:"shape"`
	Form         string `json:"form"`
	TileBits     int    `json:"tile_bits"`
	Materialized bool   `json:"materialized"`
	Durable      bool   `json:"durable,omitempty"`
	// Mapped records that the store was created with mmap-backed reads,
	// so OpenStore reopens it the same way (the on-disk layout itself is
	// identical either way).
	Mapped bool `json:"mapped,omitempty"`
	// Versioned records the MVCC epoch layout (superblock + remap table
	// ahead of the data blocks); a versioned file cannot be opened flat.
	Versioned bool `json:"versioned,omitempty"`
	// Quarantined records the blocks known to be corrupt on the medium, so
	// a reopened store still refuses to trust them (and keeps serving
	// degraded) until they are repaired or rewritten.
	Quarantined []storage.QuarantineRecord `json:"quarantined,omitempty"`
}

func metaPath(path string) string { return path + ".meta.json" }

// saveMeta writes the sidecar atomically: the JSON is written to a
// temporary file, fsynced, and renamed over the old sidecar, so a crash
// mid-save leaves either the old or the new metadata — never a torn file.
// The metaMu serializes writers: the background scrubber persists
// quarantine transitions concurrently with maintenance persisting the
// materialized flag.
func (s *Store) saveMeta() error {
	if s.opts.Path == "" {
		return nil
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	m := storeMeta{
		Shape:        s.opts.Shape,
		Form:         s.opts.Form.String(),
		TileBits:     s.opts.TileBits,
		Materialized: s.materialized.Load(),
		Durable:      s.opts.Durable,
		Mapped:       s.opts.Mapped,
		Versioned:    s.opts.Versioned,
	}
	if s.quarantine != nil {
		m.Quarantined = s.quarantine.Snapshot()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(metaPath(s.opts.Path), data, 0o644)
}

// writeFileAtomic replaces path with data via a fsynced temporary file and
// an atomic rename. The temporary name is unique per call: two store
// handles on the same path (a serving store's scrubber and a separate
// repair handle) may persist metadata concurrently, and a shared temp name
// would let one writer rename the other's file out from under it.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readMeta loads and validates the sidecar of a file-backed store.
func readMeta(path string) (storeMeta, error) {
	var m storeMeta
	data, err := os.ReadFile(metaPath(path))
	if err != nil {
		return m, fmt.Errorf("shiftsplit: read store metadata: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("shiftsplit: parse store metadata: %w", err)
	}
	return m, nil
}

// tilingForMeta rebuilds the tiling a sidecar describes.
func tilingForMeta(m storeMeta) (tile.Tiling, Form, error) {
	var form Form
	switch m.Form {
	case Standard.String():
		form = Standard
	case NonStandard.String():
		form = NonStandard
	default:
		return nil, 0, fmt.Errorf("shiftsplit: unknown form %q in metadata", m.Form)
	}
	ns := make([]int, len(m.Shape))
	for i, e := range m.Shape {
		if !bitutil.IsPow2(e) {
			return nil, 0, fmt.Errorf("shiftsplit: bad extent %d in metadata", e)
		}
		ns[i] = bitutil.Log2(e)
	}
	if len(ns) == 0 {
		return nil, 0, fmt.Errorf("shiftsplit: empty shape in metadata")
	}
	if form == Standard {
		return tile.NewStandard(ns, m.TileBits), form, nil
	}
	return tile.NewNonStandard(ns[0], len(ns), m.TileBits), form, nil
}

// OpenStore reopens a file-backed store previously created with CreateStore
// (its metadata sidecar must be present). Opening a durable store replays
// or discards any maintenance batch that was interrupted by a crash; use
// Recovered to learn whether a roll-forward happened.
func OpenStore(path string) (*Store, error) {
	m, err := readMeta(path)
	if err != nil {
		return nil, err
	}
	tiling, form, err := tilingForMeta(m)
	if err != nil {
		return nil, err
	}
	opts := StoreOptions{Shape: m.Shape, Form: form, TileBits: m.TileBits, Path: path, Durable: m.Durable, Mapped: m.Mapped, Versioned: m.Versioned}
	var base storage.BlockStore
	var durable *storage.Durable
	switch {
	case m.Durable:
		d, err := newDurableBase(path, tiling.BlockSize(), nil, false, m.Mapped, nil)
		if err != nil {
			return nil, err
		}
		base, durable = d, d
	case m.Mapped:
		ms, err := storage.OpenMappedStore(path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = ms
	default:
		fs, err := storage.OpenFileStore(path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = fs
	}
	counting := storage.NewCounting(base)
	var top storage.BlockStore = counting
	var versioned *storage.Versioned
	if m.Versioned {
		// Durable recovery has already run (journal replayed or discarded),
		// so the superblock read here lands on a consistent epoch.
		v, err := storage.NewVersioned(top, tiling.NumBlocks())
		if err != nil {
			return nil, err
		}
		versioned, top = v, v
	}
	st, err := tile.NewStore(top, tiling)
	if err != nil {
		return nil, err
	}
	out := &Store{
		opts:      opts,
		tiling:    tiling,
		counting:  counting,
		durable:   durable,
		versioned: versioned,
		store:     st,
	}
	out.materialized.Store(m.Materialized)
	if m.Materialized && versioned != nil {
		out.matEpoch.Store(versioned.Epoch() + 1)
	}
	out.attachQuarantine(m.Quarantined)
	out.scrubBase = counting
	return out, nil
}

// Sync commits any buffered block writes and persists metadata (form,
// shape, materialization state) for file-backed stores; in-memory
// non-durable stores ignore it.
func (s *Store) Sync() error {
	if err := s.commit(); err != nil {
		return err
	}
	return s.saveMeta()
}
