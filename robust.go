package shiftsplit

import (
	"context"
	"fmt"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// This file is the robustness surface of a Store: the quarantine registry
// (which blocks are known corrupt), the online scrubber that keeps it in
// sync with the medium, degraded-serving and breaker telemetry, and repair.

// Health summarizes a store's serving condition for the /healthz endpoint
// and the CLI.
type Health struct {
	// Status is "ok" when every block verifies and the backend is
	// reachable, "degraded" otherwise.
	Status string `json:"status"`
	// Quarantined is the number of blocks currently known corrupt.
	Quarantined int `json:"quarantined"`
	// DegradedReads counts block reads served as zeros because the block
	// was quarantined.
	DegradedReads int64 `json:"degraded_reads"`
	// Breaker is "closed", "open", or "half-open"; empty when the store
	// has no breaker.
	Breaker string `json:"breaker,omitempty"`
}

// attachQuarantine installs the registry (loaded from persisted meta
// records, nil for a fresh store) and hooks every transition to persist
// the sidecar. Persistence is best-effort: a failed save leaves the
// in-memory registry authoritative and the next transition (or Sync)
// retries.
func (s *Store) attachQuarantine(recs []storage.QuarantineRecord) {
	q := storage.NewQuarantine()
	q.Replace(recs)
	s.quarantine = q
	q.OnChange(func([]storage.QuarantineRecord) { _ = s.saveMeta() })
}

// maintenanceGuard refuses incremental (read-modify-write) maintenance
// while any block is quarantined.
func (s *Store) maintenanceGuard() error {
	if s.quarantine != nil && s.quarantine.Len() > 0 {
		return fmt.Errorf("shiftsplit: %d quarantined block(s): %w", s.quarantine.Len(), ErrQuarantined)
	}
	return nil
}

// Quarantined returns the records of blocks currently quarantined, sorted
// by block id.
func (s *Store) Quarantined() []storage.QuarantineRecord {
	if s.quarantine == nil {
		return nil
	}
	return s.quarantine.Snapshot()
}

// DegradedReads returns how many block reads have been served as zeros
// because their block was quarantined (0 on stores without the degraded
// serving layer).
func (s *Store) DegradedReads() int64 {
	if s.degraded == nil {
		return 0
	}
	return s.degraded.DegradedReads()
}

// BreakerStats reports the circuit breaker's state; ok is false when the
// store was opened without one.
func (s *Store) BreakerStats() (state string, trips, rejected int64, ok bool) {
	if s.breaker == nil {
		return "", 0, 0, false
	}
	return s.breaker.State(), s.breaker.Trips(), s.breaker.Rejected(), true
}

// Health reports the store's serving condition: degraded when any block is
// quarantined or the breaker is not closed.
func (s *Store) Health() Health {
	h := Health{Status: "ok"}
	if s.quarantine != nil {
		h.Quarantined = s.quarantine.Len()
	}
	h.DegradedReads = s.DegradedReads()
	if s.breaker != nil {
		h.Breaker = s.breaker.State()
	}
	if h.Quarantined > 0 || (h.Breaker != "" && h.Breaker != "closed") {
		h.Status = "degraded"
	}
	return h
}

// ensureScrubber lazily builds the scrubber over scrubBase.
func (s *Store) ensureScrubber(opts storage.ScrubberOptions) (*storage.Scrubber, error) {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrubber != nil {
		return s.scrubber, nil
	}
	if s.scrubBase == nil || s.quarantine == nil {
		return nil, fmt.Errorf("shiftsplit: store has no scrubbable storage stack")
	}
	// On a versioned store the scrubber walks the physical id space below
	// the epoch layer (superblock, remap pages, allocated data blocks);
	// otherwise physical and logical ids coincide.
	extent := s.tiling.NumBlocks
	if s.versioned != nil {
		extent = s.versioned.PhysExtent
	}
	sc, err := storage.NewScrubber(s.scrubBase, extent, s.quarantine, opts)
	if err != nil {
		return nil, err
	}
	s.scrubber = sc
	return sc, nil
}

// ScrubOnce walks the whole block space once, verifying frame integrity
// through the batch-read path below the cache and breaker: corrupt blocks
// are quarantined, quarantined blocks that verify clean are released. It
// returns the number of blocks quarantined after the pass. On serving
// stores the walk shares the device lock with queries; on maintenance
// stores it must not run concurrently with other operations.
func (s *Store) ScrubOnce(ctx context.Context) (quarantined int, err error) {
	sc, err := s.ensureScrubber(storage.ScrubberOptions{})
	if err != nil {
		return 0, err
	}
	return sc.RunOnce(ctx)
}

// ScrubStats returns the background scrubber's counters; ok is false when
// no scrub has ever been configured on this store.
func (s *Store) ScrubStats() (stats storage.ScrubStats, ok bool) {
	s.scrubMu.Lock()
	sc := s.scrubber
	s.scrubMu.Unlock()
	if sc == nil {
		return storage.ScrubStats{}, false
	}
	return sc.Stats(), true
}

// StartScrub launches the background scrubber: one full pass every
// interval, at most rateBlocksPerSec verified blocks per second (0 =
// unlimited). It requires a store whose device layer is safe for
// concurrent use (OpenServing); maintenance stores must scrub with
// ScrubOnce between operations instead. The scrubber's lifetime nests
// inside ctx: canceling it stops the scrubber just like StopScrub or
// Close (after which StartScrub reports already-running until StopScrub
// clears the slot).
func (s *Store) StartScrub(ctx context.Context, interval time.Duration, rateBlocksPerSec int) error {
	if !s.scrubSafe {
		return fmt.Errorf("shiftsplit: background scrub needs a concurrency-safe store (OpenServing); use ScrubOnce")
	}
	sc, err := s.ensureScrubber(storage.ScrubberOptions{RateBlocksPerSec: rateBlocksPerSec})
	if err != nil {
		return err
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrubStop != nil {
		return fmt.Errorf("shiftsplit: scrub already running")
	}
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = cancel, done
	go func() {
		defer close(done)
		_ = sc.Run(ctx, interval)
	}()
	return nil
}

// StopScrub halts the background scrubber and waits for it to exit (no-op
// when none is running).
func (s *Store) StopScrub() {
	s.scrubMu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.scrubMu.Unlock()
	if stop != nil {
		stop()
		<-done
	}
}

// RepairQuarantined tries to roll every quarantined block forward from the
// newest retained post-image (the staging overlay or the last committed
// batch). Repaired blocks are re-verified and released from quarantine;
// blocks no source covers stay quarantined and are counted in unrepaired —
// only a re-materialize can recover those.
func (s *Store) RepairQuarantined() (repaired, unrepaired int, err error) {
	if s.quarantine == nil || s.scrubBase == nil {
		return 0, 0, nil
	}
	for _, rec := range s.quarantine.Snapshot() {
		ok, rerr := storage.RepairBlockOf(s.scrubBase, rec.Block)
		if rerr != nil {
			return repaired, unrepaired, fmt.Errorf("shiftsplit: repair block %d: %w", rec.Block, rerr)
		}
		if !ok {
			unrepaired++
			continue
		}
		// Trust nothing: the block must verify clean before release.
		corrupt, verr := storage.VerifyBlocksOf(s.scrubBase, []int{rec.Block})
		if verr != nil {
			return repaired, unrepaired, fmt.Errorf("shiftsplit: verify repaired block %d: %w", rec.Block, verr)
		}
		if len(corrupt) > 0 {
			unrepaired++
			continue
		}
		s.quarantine.Remove(rec.Block)
		repaired++
	}
	return repaired, unrepaired, nil
}
