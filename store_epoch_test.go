package shiftsplit

import (
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// TestVersionedStoreMatchesPlain proves the epoch layer is transparent to
// the maintenance and query semantics: a versioned store and a plain store
// driven through the identical pipeline agree bit-for-bit at every step.
func TestVersionedStoreMatchesPlain(t *testing.T) {
	for _, form := range []Form{Standard, NonStandard} {
		t.Run(form.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			src := randArray(rng, 16, 16)
			mk := func(versioned bool) *Store {
				st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: form, TileBits: 1, Versioned: versioned})
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			ver, plain := mk(true), mk(false)
			defer ver.Close()
			defer plain.Close()
			if !ver.Versioned() || plain.Versioned() {
				t.Fatal("Versioned() flag wrong")
			}

			step := func(name string) {
				t.Helper()
				a, err := ver.ReadTransform()
				if err != nil {
					t.Fatalf("%s: versioned read: %v", name, err)
				}
				b, err := plain.ReadTransform()
				if err != nil {
					t.Fatalf("%s: plain read: %v", name, err)
				}
				if !equalExact(a, b) {
					t.Fatalf("%s: versioned and plain transforms diverge", name)
				}
			}

			if err := ver.TransformChunked(src, 2); err != nil {
				t.Fatal(err)
			}
			if err := plain.TransformChunked(src, 2); err != nil {
				t.Fatal(err)
			}
			step("chunked transform")
			if got := ver.CurrentEpoch(); got != 1 {
				t.Fatalf("epoch after transform = %d, want 1", got)
			}

			delta := randArray(rng, 4, 4)
			blk := CubeBlock(2, 1, 2)
			dh := Transform(delta, form)
			if err := ver.MergeBlock(blk, dh); err != nil {
				t.Fatal(err)
			}
			if err := plain.MergeBlock(blk, dh); err != nil {
				t.Fatal(err)
			}
			step("merge block")
			if got := ver.CurrentEpoch(); got != 2 {
				t.Fatalf("epoch after merge = %d, want 2", got)
			}

			if err := ver.Materialize(src); err != nil {
				t.Fatal(err)
			}
			if err := plain.Materialize(src); err != nil {
				t.Fatal(err)
			}
			for _, p := range [][]int{{0, 0}, {7, 3}, {15, 15}} {
				va, ia, err := ver.Point(p...)
				if err != nil {
					t.Fatal(err)
				}
				vb, ib, err := plain.Point(p...)
				if err != nil {
					t.Fatal(err)
				}
				if va != vb || ia != ib {
					t.Fatalf("point %v: versioned (%g, %d) != plain (%g, %d)", p, va, ia, vb, ib)
				}
			}
			sa, _, err := ver.RangeSum([]int{2, 2}, []int{8, 4})
			if err != nil {
				t.Fatal(err)
			}
			sb, _, err := plain.RangeSum([]int{2, 2}, []int{8, 4})
			if err != nil {
				t.Fatal(err)
			}
			// RangeSum's summation order is not deterministic run to run
			// (last-ulp wobble), so this comparison is tolerance-based.
			if d := sa - sb; d > 1e-9 || d < -1e-9 {
				t.Fatalf("range sum: versioned %g != plain %g", sa, sb)
			}
		})
	}
}

// TestVersionedStoreReopen exercises the on-disk epoch format end to end:
// transform + merge on a durable versioned store, reopen, verify state and
// epoch, and require a clean fsck that reports the superblock.
func TestVersionedStoreReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "epoch.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, Path: path, Durable: true, Versioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	delta := randArray(rng, 4, 4)
	if err := st.MergeBlock(CubeBlock(2, 0, 1), Transform(delta, Standard)); err != nil {
		t.Fatal(err)
	}
	want, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	wantEpoch := st.CurrentEpoch()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Versioned() {
		t.Fatal("reopened store lost the epoch layer")
	}
	if got := st2.CurrentEpoch(); got != wantEpoch {
		t.Fatalf("reopened epoch = %d, want %d", got, wantEpoch)
	}
	got, err := st2.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if !equalExact(got, want) {
		t.Fatal("transform changed across close/reopen")
	}
	es, ok := st2.EpochStats()
	if !ok {
		t.Fatal("EpochStats not available on a versioned store")
	}
	if es.Epoch != wantEpoch || es.Pinned != 0 {
		t.Fatalf("epoch stats = %+v", es)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck not clean: %+v", rep)
	}
	if rep.Versioned == nil {
		t.Fatal("fsck of a versioned store reported no superblock")
	}
	if rep.Versioned.Epoch != wantEpoch {
		t.Fatalf("fsck superblock epoch = %d, want %d", rep.Versioned.Epoch, wantEpoch)
	}
}

// TestSnapshotOracleUnderMaintenance is the -race acceptance test for the
// tentpole: concurrent point, range, and full-transform queries during a
// stream of SHIFT-SPLIT merge batches never observe a mid-batch state.
// The writer alternates between two known transforms (merging a delta in
// and back out), so the oracle is exact: every pinned snapshot must read a
// transform equal — coefficient for coefficient — to one of the two
// committed states.
func TestSnapshotOracleUnderMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	src := randArray(rng, 8, 8)
	delta := randArray(rng, 4, 4)
	blk := CubeBlock(2, 1, 1)
	dh := Transform(delta, Standard)
	neg := Transform(delta, Standard)
	for i := range neg.Data() {
		neg.Data()[i] = -neg.Data()[i]
	}

	st, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, TileBits: 1, Versioned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	preHat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.MergeBlock(blk, dh); err != nil {
		t.Fatal(err)
	}
	postHat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.MergeBlock(blk, neg); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.AcquireSnapshot()
				got, err := snap.ReadTransform()
				if err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				if !equalExact(got, preHat) && !equalExact(got, postHat) {
					t.Errorf("reader %d iter %d (epoch %d): observed a mid-batch transform", g, i, snap.Epoch())
					snap.Release()
					return
				}
				// A point query through the same snapshot must agree with the
				// full read — same pinned epoch, by construction.
				p := []int{i % 8, (3 * i) % 8}
				if _, _, err := snap.Point(p...); err != nil {
					t.Error(err)
					snap.Release()
					return
				}
				snap.Release()
			}
		}(g)
	}

	for round := 0; round < 30; round++ {
		if err := st.MergeBlock(blk, dh); err != nil {
			t.Fatal(err)
		}
		if err := st.MergeBlock(blk, neg); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	es, ok := st.EpochStats()
	if !ok {
		t.Fatal("no epoch stats")
	}
	if es.Pinned != 0 {
		t.Fatalf("snapshot leak: %d pins outstanding after readers exited", es.Pinned)
	}
}

// writeGate blocks device writes while engaged, letting reads through — a
// stand-in for a slow medium mid-commit. It slides under the durable
// store's checksum layer via BaseWrap.
type writeGate struct {
	storage.BlockStore
	gating  atomic.Bool
	release chan struct{}
	blocked atomic.Int64
}

func (g *writeGate) WriteBlock(id int, data []float64) error {
	if g.gating.Load() {
		g.blocked.Add(1)
		<-g.release
	}
	return g.BlockStore.WriteBlock(id, data)
}

// TestReadersProgressDuringMaterialize is the regression test for the
// Locked demotion: with a maintenance commit wedged mid-batch (device
// writes blocked, write lock held), N concurrent readers on a versioned
// serving store must still complete point queries against the old epoch.
// Before the epoch layer, the durable read path shared storage.Locked with
// writers and every reader would hang here.
func TestReadersProgressDuringMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "gated.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, Path: path, Durable: true, Versioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	gate := &writeGate{release: make(chan struct{})}
	sv, err := OpenServingOpts(path, ServeOptions{
		CacheBlocks: 64,
		BaseWrap: func(bs storage.BlockStore) storage.BlockStore {
			gate.BlockStore = bs
			return gate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	preEpoch := sv.CurrentEpoch()
	gate.gating.Store(true)
	maintDone := make(chan error, 1)
	go func() {
		// Rewrites every block and flips the epoch; wedges at the first
		// gated device write inside the commit.
		maintDone <- sv.Materialize(src)
	}()

	// Wait until the commit is provably wedged on the device.
	deadline := time.After(10 * time.Second)
	for gate.blocked.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("maintenance never reached the gated device write")
		case <-time.After(time.Millisecond):
		}
	}

	// N readers must make progress against the pinned old epoch while the
	// writer holds the write lock.
	var wg sync.WaitGroup
	readersDone := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := []int{(g + i) % 16, (g * i) % 16}
				v, _, err := sv.Point(p...)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if d := v - src.At(p...); d > 1e-8 || d < -1e-8 {
					t.Errorf("reader %d: point %v = %g, want %g", g, p, v, src.At(p...))
					return
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(readersDone) }()
	select {
	case <-readersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("readers starved while maintenance held the write path — Locked is back on the read path")
	}
	if got := sv.CurrentEpoch(); got != preEpoch {
		t.Fatalf("epoch flipped to %d while the commit was wedged", got)
	}

	gate.gating.Store(false)
	close(gate.release)
	if err := <-maintDone; err != nil {
		t.Fatalf("materialize after release: %v", err)
	}
	if got := sv.CurrentEpoch(); got != preEpoch+1 {
		t.Fatalf("epoch after materialize = %d, want %d", got, preEpoch+1)
	}
	v, blocks, err := sv.Point(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d := v - src.At(3, 5); d > 1e-8 || d < -1e-8 {
		t.Fatalf("post-materialize point = %g, want %g", v, src.At(3, 5))
	}
	if blocks != 1 {
		t.Fatalf("materialized point query read %d blocks, want 1", blocks)
	}
}

// TestVersionedCacheNoInvalidationStorm: a maintenance flip must not evict
// cache entries for blocks the batch did not touch — the cache sits below
// the epoch layer on physical ids, so only reclaimed-and-reused blocks are
// ever dropped.
func TestVersionedCacheNoInvalidationStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "storm.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, Path: path, Durable: true, Versioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	sv, err := OpenServing(path, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	// Warm every block, then confirm the whole read set is resident.
	if _, err := sv.ReadTransform(); err != nil {
		t.Fatal(err)
	}
	warm, _ := sv.CacheStats()
	if _, err := sv.ReadTransform(); err != nil {
		t.Fatal(err)
	}
	before, _ := sv.CacheStats()
	if before.Loads != warm.Loads {
		t.Fatalf("cache did not stabilize: %d extra loads on a warm re-read", before.Loads-warm.Loads)
	}

	// One merge batch: remaps a subset of blocks, flips the epoch. The old
	// epoch has no pins, so its exclusive blocks land on the free list —
	// their count is exactly how many blocks the batch remapped.
	delta := randArray(rng, 4, 4)
	if err := sv.MergeBlock(CubeBlock(2, 3, 3), Transform(delta, Standard)); err != nil {
		t.Fatal(err)
	}
	es, ok := sv.EpochStats()
	if !ok {
		t.Fatal("no epoch stats on a versioned serving store")
	}
	remapped := int64(es.FreeBlocks)
	if remapped == 0 || remapped >= int64(sv.NumBlocks()) {
		t.Fatalf("merge remapped %d of %d blocks; test needs a strict subset", remapped, sv.NumBlocks())
	}

	// Re-reading everything must reload only the remapped blocks: entries
	// for untouched blocks keep their physical ids across the flip, so the
	// flip itself invalidates nothing.
	if _, err := sv.ReadTransform(); err != nil {
		t.Fatal(err)
	}
	after, _ := sv.CacheStats()
	if loads := after.Loads - before.Loads; loads != remapped {
		t.Fatalf("flip caused %d device loads, want exactly the %d remapped blocks (invalidation storm)", loads, remapped)
	}
	if after.Evictions != before.Evictions {
		t.Fatalf("flip caused %d evictions", after.Evictions-before.Evictions)
	}
}
