package shiftsplit

import (
	"math/rand"
	"testing"
)

func TestStandardStreamFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	s := NewStandardStream([]int{4, 4}, 2, 0)
	T := 16
	for tm := 0; tm < T; tm++ {
		sl := randArray(rng, 4, 4)
		if err := s.AddSlice(sl); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	entries := s.Entries()
	if len(entries) != 4*4*T {
		t.Errorf("finalized %d coefficients, want %d", len(entries), 4*4*T)
	}
	if s.CrestMemory() == 0 {
		t.Error("no crest memory reported")
	}
	crest, total := s.PerItemCost()
	if crest <= 0 || total <= 0 {
		t.Error("costs not accumulated")
	}
}

func TestNonStandardStreamFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	s := NewNonStandardStream(3, 2, 1, 0)
	for h := 0; h < 4; h++ {
		cube := randArray(rng, 8, 8)
		if err := s.AddHypercube(cube); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	entries := s.Entries()
	// 4 hypercubes x 63 details + 3 time details + 1 average.
	if want := 4*63 + 3 + 1; len(entries) != want {
		t.Errorf("finalized %d coefficients, want %d", len(entries), want)
	}
	// The R5 memory bound is independent of the cross-section.
	if mem := s.CrestMemory(); mem > 32 {
		t.Errorf("crest memory %d exceeds R5 scale", mem)
	}
}

func TestStreamFormsMemoryGap(t *testing.T) {
	// The facade must preserve the R4-vs-R5 memory separation.
	rng := rand.New(rand.NewSource(72))
	std := NewStandardStream([]int{8, 8}, 1, 16)
	non := NewNonStandardStream(3, 3, 1, 16)
	for h := 0; h < 2; h++ {
		cube := randArray(rng, 8, 8, 8)
		for tm := 0; tm < 8; tm++ {
			sl := cube.SubCopy([]int{0, 0, tm}, []int{8, 8, 1})
			if err := std.AddSlice(FromSlice(sl.Data(), 8, 8)); err != nil {
				t.Fatal(err)
			}
		}
		if err := non.AddHypercube(cube); err != nil {
			t.Fatal(err)
		}
	}
	if non.CrestMemory()*4 > std.CrestMemory() {
		t.Errorf("R5 memory %d not clearly below R4 %d", non.CrestMemory(), std.CrestMemory())
	}
}
