package shiftsplit

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// makeDurableStore materializes a deterministic 16x16 transform into a
// durable file-backed store and closes it, returning the path and the
// source array.
func makeDurableStore(t *testing.T) (string, *Array) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "robust.bin")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, TileBits: 2, Path: path, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	a := ndarray.New(16, 16)
	for i := range a.Data() {
		a.Data()[i] = float64(i%13) - 6
	}
	if err := st.Materialize(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path, a
}

// flipFrameByte flips one payload byte of physical frame id in a durable
// store's data file — persistent on-media bit rot.
func flipFrameByte(t *testing.T, path string, id, blockSize int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frameBytes := int64(8 * (blockSize + storage.ChecksumOverhead))
	off := int64(id)*frameBytes + 3 // a payload byte, not the footer
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// writtenBlock returns a block id whose frame is actually stored (rotting
// a virgin frame detects nothing).
func writtenBlock(t *testing.T, path string, blockSize int) int {
	t.Helper()
	rep, err := storage.Fsck(path, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Written == 0 {
		t.Fatal("store has no written frames")
	}
	// Find the first written frame by checking each id.
	fs, err := storage.OpenFileStore(path, blockSize+storage.ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	chk, err := storage.NewChecksummed(fs)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < rep.Blocks; id++ {
		if _, written, err := chk.ReadMeta(id); err == nil && written {
			return id
		}
	}
	t.Fatal("no written frame found")
	return -1
}

func TestScrubQuarantinesAndDegradedServes(t *testing.T) {
	path, _ := makeDurableStore(t)
	st, err := OpenServing(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bad := writtenBlock(t, path, st.BlockSize())
	flipFrameByte(t, path, bad, st.BlockSize())

	if h := st.Health(); h.Status != "ok" {
		t.Fatalf("health before scrub = %+v", h)
	}
	n, err := st.ScrubOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scrub quarantined %d blocks, want 1 (records %v)", n, st.Quarantined())
	}
	recs := st.Quarantined()
	if len(recs) != 1 || recs[0].Block != bad {
		t.Fatalf("quarantine = %v, want block %d", recs, bad)
	}
	if h := st.Health(); h.Status != "degraded" || h.Quarantined != 1 {
		t.Fatalf("health after scrub = %+v", h)
	}

	// Queries still answer — degraded, not failing — and the flag shows.
	before := st.DegradedReads()
	if _, _, err := st.RangeSum([]int{0, 0}, []int{16, 16}); err != nil {
		t.Fatalf("degraded range sum failed: %v", err)
	}
	if st.DegradedReads() == before {
		t.Fatal("query over the whole domain did not touch the quarantined block")
	}

	// The quarantine survives a reopen via the meta sidecar.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenServing(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if recs := st2.Quarantined(); len(recs) != 1 || recs[0].Block != bad {
		t.Fatalf("quarantine after reopen = %v", recs)
	}
	if h := st2.Health(); h.Status != "degraded" {
		t.Fatalf("health after reopen = %+v", h)
	}
}

func TestMaintenanceGuardAndMaterializeHeals(t *testing.T) {
	path, a := makeDurableStore(t)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bad := writtenBlock(t, path, st.BlockSize())
	flipFrameByte(t, path, bad, st.BlockSize())
	if _, err := st.ScrubOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined()) != 1 {
		t.Fatalf("quarantine = %v", st.Quarantined())
	}

	// Incremental maintenance must refuse.
	src := ndarray.New(16, 16)
	if err := st.TransformChunked(src, 2); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("TransformChunked err = %v, want ErrQuarantined", err)
	}
	b := CubeBlock(1, 0, 0)
	if err := st.ClearBlock(b); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("ClearBlock err = %v, want ErrQuarantined", err)
	}

	// Materialize rewrites everything and heals.
	if err := st.Materialize(a); err != nil {
		t.Fatalf("Materialize on quarantined store: %v", err)
	}
	if len(st.Quarantined()) != 0 {
		t.Fatalf("quarantine after materialize = %v", st.Quarantined())
	}
	if n, err := st.ScrubOnce(context.Background()); err != nil || n != 0 {
		t.Fatalf("post-materialize scrub: n=%d err=%v", n, err)
	}
	if h := st.Health(); h.Status != "ok" {
		t.Fatalf("health after heal = %+v", h)
	}
}

func TestRepairQuarantinedRollsForward(t *testing.T) {
	path, _ := makeDurableStore(t)
	// Open for maintenance and rewrite everything so the durable layer
	// retains the batch, then rot one of those blocks on the medium.
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := ndarray.New(16, 16)
	for i := range a.Data() {
		a.Data()[i] = float64(i % 7)
	}
	if err := st.Materialize(a); err != nil {
		t.Fatal(err)
	}
	want, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	bad := writtenBlock(t, path, st.BlockSize())
	flipFrameByte(t, path, bad, st.BlockSize())
	if _, err := st.ScrubOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined()) != 1 {
		t.Fatalf("quarantine = %v", st.Quarantined())
	}
	repaired, unrepaired, err := st.RepairQuarantined()
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 || unrepaired != 0 {
		t.Fatalf("repair = (%d, %d), want (1, 0)", repaired, unrepaired)
	}
	if len(st.Quarantined()) != 0 {
		t.Fatalf("quarantine after repair = %v", st.Quarantined())
	}
	got, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("repaired transform differs at %d: %v vs %v", i, got.Data()[i], v)
		}
	}
}

func TestBreakerCacheOnlyServing(t *testing.T) {
	path, _ := makeDurableStore(t)
	st, err := OpenServingOpts(path, ServeOptions{
		CacheBlocks: 64,
		Breaker:     &storage.BreakerOptions{Threshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Warm the cache with a point query, then break the backend by moving
	// the data file away.
	if _, _, err := st.Point(3, 3); err != nil {
		t.Fatal(err)
	}
	if state, _, _, ok := st.BreakerStats(); !ok || state != "closed" {
		t.Fatalf("breaker = %q ok=%v", state, ok)
	}
}

func TestDegradedFlagSampledAroundQuery(t *testing.T) {
	path, _ := makeDurableStore(t)
	st, err := OpenServing(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bad := writtenBlock(t, path, st.BlockSize())
	flipFrameByte(t, path, bad, st.BlockSize())
	if _, err := st.ScrubOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A query that avoids the quarantined block must not count degraded
	// reads; block ids map to coefficient tiles, so a single point query
	// far from the rotted tile is very likely clean — assert only the
	// whole-domain query flags.
	before := st.DegradedReads()
	if _, _, err := st.RangeSum([]int{0, 0}, []int{16, 16}); err != nil {
		t.Fatal(err)
	}
	if st.DegradedReads() == before {
		t.Fatal("whole-domain query not flagged degraded")
	}
}

// TestFlipFrameByteHelper sanity-checks the test's own corruption helper
// against fsck.
func TestFlipFrameByteHelper(t *testing.T) {
	path, _ := makeDurableStore(t)
	m, err := readMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	tiling, _, err := tilingForMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := writtenBlock(t, path, tiling.BlockSize())
	flipFrameByte(t, path, bad, tiling.BlockSize())
	rep, err := storage.Fsck(path, tiling.BlockSize())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != bad {
		t.Fatalf("fsck corrupt = %v, want [%d]", rep.Corrupt, bad)
	}
}

// TestStartScrubStopsOnContextCancel is the regression test for the scrub
// lifecycle fix: StartScrub used to mint its context from
// context.Background(), detaching the scrubber from the caller — shutdown
// had to know to call StopScrub, and a caller canceling its own context
// left the scrub goroutine running. The scrubber's lifetime now nests
// inside the caller's context.
func TestStartScrubStopsOnContextCancel(t *testing.T) {
	path, _ := makeDurableStore(t)
	st, err := OpenServing(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	if err := st.StartScrub(ctx, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	st.scrubMu.Lock()
	done := st.scrubDone
	st.scrubMu.Unlock()

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("scrubber still running after parent context cancel")
	}

	// StopScrub after a context-driven stop must not hang, and must clear
	// the slot so a fresh scrubber can start.
	st.StopScrub()
	if err := st.StartScrub(context.Background(), time.Millisecond, 0); err != nil {
		t.Fatalf("restart after canceled scrub: %v", err)
	}
	st.StopScrub()
}
