// Approximate and progressive query answering — the applications that made
// wavelets a database tool in the first place (paper §1).
//
// A best-K synopsis of a transform answers queries from K coefficients with
// a squared error that is known *exactly* in advance (the energy of the
// dropped coefficients, by orthogonality). A progressive query consumes the
// stored coefficients coarse-to-fine, refining its estimate with every
// block read until it is exact.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/shiftsplit/shiftsplit"
)

func main() {
	// A smooth sales-like cube: 64 stores x 128 days.
	const stores, days = 64, 128
	a := shiftsplit.NewArray(stores, days)
	for s := 0; s < stores; s++ {
		size := 50 + 30*math.Sin(float64(s)/7)
		for d := 0; d < days; d++ {
			season := 1 + 0.4*math.Sin(2*math.Pi*float64(d)/days)
			week := 1 + 0.25*math.Sin(2*math.Pi*float64(d)/7)
			a.Set(size*season*week, s, d)
		}
	}
	hat := shiftsplit.Transform(a, shiftsplit.Standard)

	// --- best-K synopses: error known before answering anything ---
	fmt.Println("synopsis size   share of data   guaranteed RMSE   measured RMSE")
	cells := float64(a.Size())
	for _, k := range []int{16, 64, 256, 1024} {
		c := shiftsplit.Compress(hat, shiftsplit.Standard, k)
		guaranteed := math.Sqrt(c.DroppedEnergy() / cells)
		measured := math.Sqrt(c.SSE(a) / cells)
		fmt.Printf("%13d   %12.1f%%   %15.3f   %13.3f\n",
			k, 100*float64(k)/cells, guaranteed, measured)
	}

	// Query the 64-term synopsis (0.8% of the data).
	c := shiftsplit.Compress(hat, shiftsplit.Standard, 64)
	start, extent := []int{16, 32}, []int{32, 64}
	exact := a.SumRange(start, extent)
	approx := c.RangeSum(start, extent)
	fmt.Printf("\nquarterly sales for stores 16-47: exact %.0f, 64-term synopsis %.0f (%.2f%% off)\n",
		exact, approx, 100*math.Abs(approx-exact)/exact)

	// --- progressive answering from tiled storage ---
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: []int{stores, days}, Form: shiftsplit.Standard, TileBits: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(a); err != nil {
		log.Fatal(err)
	}
	steps, err := st.ProgressiveRangeSum(start, extent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogressive refinement of the same query (%d coefficients total):\n", len(steps))
	fmt.Println("coefficients  blocks read  estimate     error")
	for _, i := range []int{0, len(steps) / 8, len(steps) / 4, len(steps) / 2, len(steps) - 1} {
		s := steps[i]
		fmt.Printf("%12d  %11d  %10.0f  %7.2f%%\n",
			s.Coefficients, s.Blocks, s.Estimate, 100*math.Abs(s.Estimate-exact)/exact)
	}
}
