// Appending: maintain a growing measurement archive in the wavelet domain.
//
// The paper's §5.2 scenario: years of precipitation measurements are already
// decomposed to expedite queries; every month a new slab arrives. Instead of
// re-transforming everything, the slab is transformed in memory and
// SHIFT-SPLIT-merged; when the time domain fills up, the transform is
// expanded in place (every coefficient shifts, the old average splits) — the
// cost jumps visible below, exactly the staircase of Figure 13.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/shiftsplit/shiftsplit"
)

// month synthesizes one month of daily precipitation on an 8x8 grid.
func month(rng *rand.Rand, days int) *shiftsplit.Array {
	a := shiftsplit.NewArray(8, 8, days)
	// A few storms per month.
	for s := 0; s < 1+rng.Intn(3); s++ {
		cla, clo := rng.Float64()*8, rng.Float64()*8
		day := rng.Intn(days)
		peak := 5 + rng.ExpFloat64()*15
		for la := 0; la < 8; la++ {
			for lo := 0; lo < 8; lo++ {
				for t := max(0, day-2); t < min(days, day+3); t++ {
					d := (float64(la)-cla)*(float64(la)-cla) + (float64(lo)-clo)*(float64(lo)-clo) +
						4*float64(t-day)*float64(t-day)
					if v := peak * math.Exp(-d/6); v > 0.3 {
						a.Add(v, la, lo, t)
					}
				}
			}
		}
	}
	return a
}

func main() {
	rng := rand.New(rand.NewSource(7))
	app, err := shiftsplit.NewAppender([]int{8, 8, 32}, 2)
	if err != nil {
		log.Fatal(err)
	}

	const months = 18
	fmt.Println("month  merge I/O  expansion I/O  time domain")
	var totalRain float64
	for mo := 1; mo <= months; mo++ {
		slab := month(rng, 32)
		totalRain += slab.Sum()
		res, err := app.Append(2, slab)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.Expansions > 0 {
			marker = fmt.Sprintf("  <- domain doubled x%d", res.Expansions)
		}
		fmt.Printf("%5d  %9d  %13d  %4d days%s\n",
			mo, res.MergeIO.Total(), res.ExpansionIO.Total(), app.Shape()[2], marker)
	}

	// The archive is still exact: reconstruct and compare total rainfall.
	back, err := app.Reconstruct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive holds %v (used %v)\n", app.Shape(), app.Used())
	fmt.Printf("total rainfall: appended %.1f mm, reconstructed %.1f mm\n", totalRain, back.Sum())
	fmt.Printf("lifetime block I/O: %d\n", app.TotalIO().Total())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
