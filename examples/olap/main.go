// OLAP: range-aggregate queries over a disk-resident temperature cube.
//
// This is the workload that motivates the paper's introduction: a
// multidimensional measurement cube decomposed into the wavelet domain so
// that range aggregates cost O(log^d) coefficients instead of scanning the
// region, with the tiling of §3 keeping the block I/O per query tiny and
// the stored per-tile scaling coefficients making point lookups a single
// block read.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/shiftsplit/shiftsplit"
)

// synthTemperature builds a (lat, lon, time) cube of plausible temperatures.
func synthTemperature(nLat, nLon, nT int) *shiftsplit.Array {
	a := shiftsplit.NewArray(nLat, nLon, nT)
	for la := 0; la < nLat; la++ {
		for lo := 0; lo < nLon; lo++ {
			for t := 0; t < nT; t++ {
				v := 25 - 30*float64(la)/float64(nLat) // pole-ward cooling
				v += 6 * math.Sin(2*math.Pi*float64(t)/float64(nT))
				v += 2 * math.Sin(2*math.Pi*(float64(la)/8+float64(lo)/16))
				a.Set(v, la, lo, t)
			}
		}
	}
	return a
}

func main() {
	cube := synthTemperature(32, 32, 64)

	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape:    []int{32, 32, 64},
		Form:     shiftsplit.Standard,
		TileBits: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(cube); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cube stored as %d blocks of %d coefficients\n", st.NumBlocks(), st.BlockSize())

	st.ResetStats()

	// Average temperature over a spatial region for the first month.
	region := [][2][]int{
		{{0, 0, 0}, {8, 8, 32}},    // polar box, first half
		{{24, 0, 0}, {8, 32, 64}},  // equatorial band, all time
		{{10, 10, 20}, {4, 4, 16}}, // small window
	}
	for _, r := range region {
		start, extent := r[0], r[1]
		sum, io, err := st.RangeSum(start, extent)
		if err != nil {
			log.Fatal(err)
		}
		cells := extent[0] * extent[1] * extent[2]
		exact := cube.SumRange(start, extent) / float64(cells)
		fmt.Printf("avg over %v+%v = %6.2f°C  (exact %6.2f, %3d block reads of %d)\n",
			start, extent, sum/float64(cells), exact, io, st.NumBlocks())
	}

	// Point lookups cost exactly one block thanks to the per-tile scaling
	// coefficients (§3).
	for _, p := range [][]int{{0, 0, 0}, {31, 31, 63}, {16, 8, 40}} {
		v, io, err := st.Point(p...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("temperature%v = %6.2f°C  (%d block read)\n", p, v, io)
	}

	// Drill down: reconstruct a 4x4x8 sub-cube via inverse SHIFT-SPLIT.
	vals, io, err := st.ExtractBox([]int{12, 12, 16}, []int{4, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drill-down extracted %d cells with %d block reads; corner = %.2f°C\n",
		vals.Size(), io, vals.At(0, 0, 0))

	stats := st.Stats()
	fmt.Printf("total query I/O: %d reads over %d queries\n", stats.Reads, 7)

	// OLAP roll-ups run directly on the transform: summing out longitude
	// and time yields the transform of per-latitude totals, without
	// reconstructing a single cell.
	hat := shiftsplit.Transform(cube, shiftsplit.Standard)
	totalsHat, err := shiftsplit.Totals(hat, 0)
	if err != nil {
		log.Fatal(err)
	}
	perLat := shiftsplit.Inverse(totalsHat, shiftsplit.Standard)
	fmt.Printf("\nper-latitude climate totals (wavelet-domain roll-up):\n")
	for la := 0; la < 32; la += 8 {
		fmt.Printf("  lat band %2d: %9.0f degree-cells\n", la, perLat.At(la))
	}
	janHat, err := shiftsplit.SliceAt(hat, 2, 0) // the t=0 snapshot, still a transform
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot t=0 average: %.2f°C\n", janHat.At(0, 0))
}
