// Quickstart: transform a small 2-d dataset, update a block entirely in the
// wavelet domain with SHIFT-SPLIT, and read values back — all in memory.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/shiftsplit/shiftsplit"
)

func main() {
	// A 16x16 dataset: a smooth bump plus a linear trend.
	const n = 16
	a := shiftsplit.NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			di, dj := float64(i)-8, float64(j)-8
			a.Set(10*math.Exp(-(di*di+dj*dj)/16)+0.1*float64(i+j), i, j)
		}
	}

	// Decompose it (standard form).
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	fmt.Printf("overall average: %.3f\n", hat.At(0, 0))

	// Answer queries straight from the transform.
	fmt.Printf("a[3][5] = %.3f (from transform: %.3f)\n",
		a.At(3, 5), shiftsplit.PointValue(hat, shiftsplit.Standard, []int{3, 5}))
	fmt.Printf("sum over [4,12)x[4,12) = %.3f (from transform: %.3f)\n",
		a.SumRange([]int{4, 4}, []int{8, 8}),
		shiftsplit.RangeSum(hat, shiftsplit.Standard, []int{4, 4}, []int{8, 8}))

	// A batch of updates arrives for the dyadic block [8,12) x [8,12).
	// Transform just the 4x4 delta and SHIFT-SPLIT it in — no need to
	// reconstruct anything.
	delta := shiftsplit.NewArray(4, 4)
	delta.Fill(2.5)
	block := shiftsplit.CubeBlock(2, 2, 2) // level 2 => edge 4; position (2,2) => start (8,8)
	if err := shiftsplit.Merge(hat, shiftsplit.Standard, block, shiftsplit.Transform(delta, shiftsplit.Standard)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update, a[9][9] = %.3f (was %.3f)\n",
		shiftsplit.PointValue(hat, shiftsplit.Standard, []int{9, 9}), a.At(9, 9))

	// Extract the exact transform of one block without touching the rest
	// (the inverse SHIFT-SPLIT), then invert it locally.
	blockHat, err := shiftsplit.Extract(hat, shiftsplit.Standard, block)
	if err != nil {
		log.Fatal(err)
	}
	vals := shiftsplit.Inverse(blockHat, shiftsplit.Standard)
	fmt.Printf("extracted block corner = %.3f (expected %.3f)\n",
		vals.At(0, 0), a.At(8, 8)+2.5)

	// Everything still round-trips.
	back := shiftsplit.Inverse(hat, shiftsplit.Standard)
	want := a.Clone()
	want.SubAdd(delta, []int{8, 8})
	fmt.Printf("max reconstruction error: %.2e\n", back.MaxAbsDiff(want))
}
