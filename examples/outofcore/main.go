// Out-of-core: bulk-load a dataset bigger than working memory into a
// file-backed wavelet store, then reopen the file and query it.
//
// This is the paper's primary scenario (§5.1): the dataset is transformed
// by memory-sized chunks with SHIFT-SPLIT, the coefficients land in tiled
// disk blocks, and every step's block I/O is accounted. Nothing here ever
// holds more than one chunk of data plus the engine's crest in memory.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"github.com/shiftsplit/shiftsplit"
)

func main() {
	dir, err := os.MkdirTemp("", "shiftsplit-outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "climate.wav")

	// The "massive" dataset: a 256x256 surface (pretend it does not fit in
	// memory; the engine only ever looks at 16x16 chunks of it).
	const n = 256
	src := shiftsplit.NewArray(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src.Set(20+10*math.Sin(float64(i)/40)*math.Cos(float64(j)/25), i, j)
		}
	}

	// Build the store on disk with the non-standard crest engine: every
	// output block is written exactly once, no block is ever read back.
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: []int{n, n}, Form: shiftsplit.NonStandard, TileBits: 3, Path: path,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.TransformChunked(src, 4); err != nil { // 16x16 chunks
		log.Fatal(err)
	}
	stats := st.Stats()
	fmt.Printf("bulk load: %d cells -> %d blocks on disk (%d written, %d read back)\n",
		src.Size(), st.NumBlocks(), stats.Writes, stats.Reads)
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store file: %s (%.1f KiB)\n", filepath.Base(path), float64(info.Size())/1024)

	// Reopen the file cold and query it.
	re, err := shiftsplit.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	re.ResetStats()

	sum, io, err := re.RangeSum([]int{64, 64}, []int{128, 128})
	if err != nil {
		log.Fatal(err)
	}
	cells := 128.0 * 128.0
	fmt.Printf("avg over the central quarter: %.3f (exact %.3f) — %d block reads\n",
		sum/cells, src.SumRange([]int{64, 64}, []int{128, 128})/cells, io)

	vals, io, err := re.ExtractBlock(shiftsplit.CubeBlock(4, 3, 7)) // a 16x16 patch
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted a 16x16 patch with %d block reads; corner %.3f (exact %.3f)\n",
		io, vals.At(0, 0), src.At(48, 112))
	fmt.Printf("total query I/O after reopen: %d blocks of %d\n",
		re.Stats().Reads, re.NumBlocks())
}
