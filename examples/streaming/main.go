// Streaming: maintain a best-K wavelet synopsis of an unbounded sensor
// stream (paper §5.3, Result 3).
//
// A K-term wavelet synopsis answers approximate queries over a stream using
// bounded memory. The classic maintenance scheme updates the O(log N) crest
// coefficients on every arrival; buffering B items and SHIFT-SPLITting the
// buffer cuts the per-item crest cost to O((1/B) log(N/B)). This example
// sweeps B and shows both the cost drop and the (identical) synopsis
// quality.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/shiftsplit/shiftsplit"
)

func main() {
	const n = 1 << 16
	const k = 48

	// A sensor-like stream: daily cycle + drift + noise.
	rng := rand.New(rand.NewSource(11))
	stream := make([]float64, n)
	drift := 0.0
	for i := range stream {
		drift += rng.NormFloat64() * 0.05
		stream[i] = 20 + 5*math.Sin(2*math.Pi*float64(i)/256) + drift + rng.NormFloat64()*0.3
	}

	fmt.Printf("stream: %d items, synopsis capacity K=%d\n\n", n, k)
	fmt.Println("buffer B  crest updates/item  retained energy")
	var energies []float64
	for _, bufBits := range []int{0, 2, 4, 6, 8} {
		syn := shiftsplit.NewStreamSynopsis(k, bufBits)
		for _, v := range stream {
			syn.Add(v)
		}
		if err := syn.Finish(); err != nil {
			log.Fatal(err)
		}
		crest, _ := syn.PerItemCost()
		var energy float64
		for _, e := range syn.Entries() {
			energy += e.Energy
		}
		energies = append(energies, energy)
		fmt.Printf("%8d  %18.4f  %15.4g\n", 1<<uint(bufBits), crest, energy)
	}

	// The synopsis content does not depend on the buffer size — only the
	// maintenance cost does.
	same := true
	for _, e := range energies[1:] {
		if math.Abs(e-energies[0]) > 1e-6*energies[0] {
			same = false
		}
	}
	fmt.Printf("\nsynopsis identical across buffer sizes: %v\n", same)

	// Inspect the dominant coefficients: the stream's strongest structure.
	syn := shiftsplit.NewStreamSynopsis(8, 6)
	for _, v := range stream {
		syn.Add(v)
	}
	if err := syn.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop coefficients (level = scale of the feature):")
	for _, e := range syn.Entries() {
		kind := "detail"
		if e.Coef.Avg {
			kind = "running average"
		}
		fmt.Printf("  level %2d pos %5d  value %9.3f  (%s)\n",
			e.Coef.Level, e.Coef.Pos, e.Value, kind)
	}
}
