package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/reconstruct"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// Snapshot is a pinned, immutable read view of a Store. On a versioned
// store it holds a refcounted pin on one committed epoch: every query
// through the snapshot resolves that epoch's remap table, so a maintenance
// batch building (or flipping to) the next epoch is invisible for the
// snapshot's whole lifetime. On a non-versioned store it is a zero-cost
// pass-through to the live store, preserving that configuration's exact
// behavior and I/O accounting.
//
// Every acquired Snapshot must reach Release on all paths, including error
// branches — the shiftsplitvet snapshotrelease analyzer proves this for the
// tree — or the pinned epoch's physical blocks are never reclaimed.
// Release is idempotent; the usual shape is
//
//	snap := st.AcquireSnapshot()
//	defer snap.Release()
//
// Snapshots are safe for concurrent use whenever the store's read path is
// (anything opened with OpenServing, in-memory and plain file stores).
type Snapshot struct {
	st           *Store
	bs           *storage.Snapshot // nil on non-versioned stores
	ts           *tile.Store
	materialized bool
	epoch        uint64
}

// AcquireSnapshot pins the current committed epoch for reading (see
// Snapshot). The caller must Release it on every path.
func (s *Store) AcquireSnapshot() *Snapshot {
	if s.versioned == nil {
		return &Snapshot{st: s, ts: s.store, materialized: s.materialized.Load()}
	}
	bs := s.versioned.Acquire()
	ts, err := tile.NewStore(bs, s.tiling)
	if err != nil {
		// Unreachable: the snapshot's block size equals the tiling's by
		// construction. Degrade to the live store rather than failing reads.
		bs.Release()
		return &Snapshot{st: s, ts: s.store, materialized: s.materialized.Load()}
	}
	// Materialization is an epoch property here: only a snapshot of the
	// exact epoch whose blocks carry scaling coefficients may use the
	// single-block query path. matEpoch holds that epoch + 1.
	return &Snapshot{
		st:           s,
		bs:           bs,
		ts:           ts,
		materialized: s.matEpoch.Load() == bs.Epoch()+1,
		epoch:        bs.Epoch(),
	}
}

// Release unpins the snapshot's epoch (idempotent, no-op on non-versioned
// stores).
func (sn *Snapshot) Release() {
	if sn.bs != nil {
		sn.bs.Release()
	}
}

// Epoch returns the pinned epoch (always 0 on non-versioned stores).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Materialized reports whether the pinned epoch's blocks carry the per-tile
// scaling coefficients that enable single-block point queries.
func (sn *Snapshot) Materialized() bool { return sn.materialized }

// Shape returns the transformed domain extents.
func (sn *Snapshot) Shape() []int { return sn.st.Shape() }

// Form returns the decomposition form.
func (sn *Snapshot) Form() Form { return sn.st.Form() }

// Point reconstructs a single cell as of the pinned epoch. On a
// materialized view this reads exactly one block (the §3 payoff of the
// stored scaling coefficients); otherwise it walks the root path.
func (sn *Snapshot) Point(point ...int) (float64, int, error) {
	s := sn.st
	if sn.materialized {
		if s.opts.Form == Standard {
			return query.PointStandard(sn.ts, point)
		}
		return query.PointNonStandard(sn.ts, point)
	}
	if s.opts.Form == Standard {
		return query.PointViaRootPath(sn.ts, s.opts.Shape, point)
	}
	// Non-standard root-path query: extract the 1-cell block.
	b := CubeBlock(0, point...)
	vals, io, err := sn.ExtractBlock(b)
	if err != nil {
		return 0, io, err
	}
	origin := make([]int, len(point))
	return vals.At(origin...), io, nil
}

// RangeSum evaluates the sum over [start, start+shape) as of the pinned
// epoch, returning the value and the number of blocks read.
func (sn *Snapshot) RangeSum(start, shape []int) (float64, int, error) {
	s := sn.st
	if s.opts.Form == Standard {
		return query.RangeSumStandard(sn.ts, s.opts.Shape, start, shape)
	}
	return query.RangeSumNonStandard(sn.ts, start, shape)
}

// ExtractBlock reconstructs the original contents of a dyadic block via
// inverse SHIFT-SPLIT (Result 6) as of the pinned epoch.
func (sn *Snapshot) ExtractBlock(b Block) (*Array, int, error) {
	s := sn.st
	if err := b.validate(s.opts.Shape); err != nil {
		return nil, 0, err
	}
	switch s.opts.Form {
	case Standard:
		return reconstruct.DyadicStandard(sn.ts, b.toRange())
	case NonStandard:
		if !b.isCubic() {
			return nil, 0, fmt.Errorf("shiftsplit: non-standard extract needs a cubic block")
		}
		return reconstruct.DyadicNonStandard(sn.ts, b.Levels[0], b.Pos)
	default:
		return nil, 0, fmt.Errorf("shiftsplit: unknown form %v", s.opts.Form)
	}
}

// ExtractBox reconstructs an arbitrary box by dyadic decomposition as of
// the pinned epoch.
func (sn *Snapshot) ExtractBox(start, shape []int) (*Array, int, error) {
	if sn.st.opts.Form == NonStandard {
		return reconstruct.BoxNonStandard(sn.ts, start, shape)
	}
	return reconstruct.Box(sn.ts, start, shape)
}

// ReadTransform reads the whole transform as of the pinned epoch.
func (sn *Snapshot) ReadTransform() (*Array, error) {
	s := sn.st
	hat := ndarray.New(s.opts.Shape...)
	reader := tile.NewReader(sn.ts)
	// Locate is pure arithmetic, so the blocks the read will touch are
	// known up front: preload them with one vectored read (the same
	// distinct-block set the per-coefficient loop loads one at a time).
	var blocks []int
	hat.Each(func(coords []int, _ float64) {
		block, _ := s.tiling.Locate(coords)
		blocks = append(blocks, block)
	})
	if err := reader.Preload(blocks); err != nil {
		return nil, err
	}
	var rerr error
	hat.Each(func(coords []int, _ float64) {
		if rerr != nil {
			return
		}
		v, err := reader.Get(coords)
		if err != nil {
			rerr = err
			return
		}
		hat.Set(v, coords...)
	})
	if rerr != nil {
		return nil, rerr
	}
	return hat, nil
}

// Points answers a batch of point queries against the pinned epoch, sharing
// one block cache across the batch. It returns the values in input order
// and the total number of distinct blocks read.
func (sn *Snapshot) Points(points [][]int) ([]float64, int, error) {
	s := sn.st
	if sn.materialized && s.opts.Form == Standard {
		// Single-tile queries: distinct leaf tiles dominate the cost.
		out := make([]float64, len(points))
		seen := make(map[int]struct{})
		blocks := 0
		for i, p := range points {
			v, _, err := query.PointStandard(sn.ts, p)
			if err != nil {
				return nil, blocks, err
			}
			out[i] = v
			// Count distinct leaf tiles for the I/O figure.
			tiling := s.tiling.(*tile.Standard)
			block := 0
			for t := 0; t < tiling.Dims(); t++ {
				oneD := tiling.Dim(t)
				leafBlock := 0
				if n := oneD.Levels(); n > 0 {
					idx := 1<<uint(n-1) + p[t]/2 // the level-1 detail over p
					leafBlock, _ = oneD.Locate1D(idx)
				}
				block = block*oneD.NumBlocks() + leafBlock
			}
			if _, dup := seen[block]; !dup {
				seen[block] = struct{}{}
				blocks++
			}
		}
		return out, blocks, nil
	}
	if s.opts.Form == Standard {
		return query.PointBatch(sn.ts, s.opts.Shape, points)
	}
	// Non-standard: share a reader across per-point quadtree walks.
	out := make([]float64, len(points))
	reader := tile.NewReader(sn.ts)
	n := bitutil.Log2(s.opts.Shape[0])
	d := len(s.opts.Shape)
	origin := make([]int, d)
	coords := make([]int, d)
	for i, p := range points {
		u, err := reader.Get(origin)
		if err != nil {
			return nil, reader.BlocksRead(), err
		}
		for j := n; j >= 1; j-- {
			base := 1 << uint(n-j)
			for mask := 1; mask < 1<<uint(d); mask++ {
				w := 1.0
				for t := 0; t < d; t++ {
					coords[t] = p[t] >> uint(j)
					if mask>>uint(t)&1 == 1 {
						coords[t] += base
						if p[t]>>uint(j-1)&1 == 1 {
							w = -w
						}
					}
				}
				v, err := reader.Get(coords)
				if err != nil {
					return nil, reader.BlocksRead(), err
				}
				u += w * v
			}
		}
		out[i] = u
	}
	return out, reader.BlocksRead(), nil
}

// ProgressiveRangeSum answers a box aggregate progressively against the
// pinned epoch (coarse coefficients first); the final step is exact.
// Standard form only.
func (sn *Snapshot) ProgressiveRangeSum(start, shape []int) ([]ProgressiveStep, error) {
	s := sn.st
	if s.opts.Form != Standard {
		return nil, fmt.Errorf("shiftsplit: progressive queries need a standard-form store")
	}
	return query.ProgressiveRangeSum(sn.ts, s.opts.Shape, start, shape)
}

// ProgressiveRangeSumFunc is the streaming form of ProgressiveRangeSum: fn
// receives every refinement step as soon as it is computed. The snapshot
// stays pinned for the whole stream, so every refinement describes the same
// epoch even while maintenance flips underneath.
func (sn *Snapshot) ProgressiveRangeSumFunc(start, shape []int, fn func(ProgressiveStep) error) error {
	s := sn.st
	if s.opts.Form != Standard {
		return fmt.Errorf("shiftsplit: progressive queries need a standard-form store")
	}
	return query.ProgressiveRangeSumFunc(sn.ts, s.opts.Shape, start, shape, fn)
}

// Versioned reports whether the store runs on the MVCC epoch layer.
func (s *Store) Versioned() bool { return s.versioned != nil }

// CurrentEpoch returns the current committed epoch (0 on non-versioned
// stores, where there is exactly one ever-current version).
func (s *Store) CurrentEpoch() uint64 {
	if s.versioned == nil {
		return 0
	}
	return s.versioned.Epoch()
}

// EpochStats re-exports the epoch layer's observability counters.
type EpochStats = storage.EpochStats

// EpochStats reports the epoch layer's state; ok is false on non-versioned
// stores.
func (s *Store) EpochStats() (EpochStats, bool) {
	if s.versioned == nil {
		return EpochStats{}, false
	}
	return s.versioned.Stats(), true
}
