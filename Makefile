GO ?= go
CRASH_SEED ?= 1

.PHONY: all build test race vet fmt-check crash-campaign ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The crash campaigns kill maintenance batches at every physical write
# index and require recovery to a checksum-clean pre- or post-batch state.
# CRASH_SEED pins the tear/drop RNG for reproducible failures.
crash-campaign:
	SHIFTSPLIT_CRASH_SEED=$(CRASH_SEED) $(GO) test -v \
		-run 'TestCrashCampaignDurable|TestAppenderCrashDuringAppendIsAtomic|TestStoreCrashCampaign' \
		./internal/storage/ ./internal/appender/ .

ci: fmt-check vet build race crash-campaign

clean:
	$(GO) clean ./...
