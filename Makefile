GO ?= go
CRASH_SEED ?= 1

# Pinned companion linter versions (single source of truth; CI installs
# them via lint-tools). shiftsplitvet itself is built from this tree and
# needs no install; staticcheck and govulncheck are skipped with a notice
# when the binary is absent, so `make lint` also works offline.
STATICCHECK_VERSION ?= 2023.1.7
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race vet lint lint-json lint-fix-check lint-tools fmt-check crash-campaign chaos-smoke bench-smoke bench-ingest-smoke ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo's own invariant suite (journal bypasses, dropped storage
# errors, escaping pooled scratch, map-ordered float sums, unlocked
# durable stores), then the pinned external linters when present.
lint:
	$(GO) run ./cmd/shiftsplitvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) not on PATH; skipping (make lint-tools installs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck $(GOVULNCHECK_VERSION) not on PATH; skipping (make lint-tools installs it)"; \
	fi

# Machine-readable vet run: the full finding list lands in
# shiftsplitvet.json (CI archives it as an artifact). The target fails
# only on load errors (exit 2) so the artifact is produced even when
# findings exist; lint-fix-check is the gate.
lint-json:
	@$(GO) run ./cmd/shiftsplitvet -json ./... > shiftsplitvet.json; \
	status=$$?; \
	if [ $$status -ge 2 ]; then cat shiftsplitvet.json; exit $$status; fi; \
	count=$$(grep -o '"count": [0-9]*' shiftsplitvet.json | grep -o '[0-9]*'); \
	echo "lint-json: wrote shiftsplitvet.json ($$count finding(s))"

# Guard: the tree stays diagnostic-clean — every shiftsplitvet finding is
# either fixed or explicitly suppressed with //shiftsplitvet:ignore.
lint-fix-check:
	@$(GO) run ./cmd/shiftsplitvet -json ./... > shiftsplitvet.json; \
	status=$$?; \
	if [ $$status -eq 1 ]; then \
		echo "lint-fix-check: tree is not diagnostic-clean (fix the findings or suppress with //shiftsplitvet:ignore <analyzer> -- reason):"; \
		cat shiftsplitvet.json; \
		exit 1; \
	elif [ $$status -ge 2 ]; then \
		cat shiftsplitvet.json; exit $$status; \
	fi; \
	echo "lint-fix-check: clean"

# Install the pinned external linters (needs network; CI runs this).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The crash campaigns kill maintenance batches at every physical write
# index and require recovery to a checksum-clean pre- or post-batch state.
# CRASH_SEED pins the tear/drop RNG for reproducible failures.
crash-campaign:
	SHIFTSPLIT_CRASH_SEED=$(CRASH_SEED) $(GO) test -v \
		-run 'TestCrashCampaignDurable|TestCrashCampaignMappedStore|TestCrashCampaignBatchedCommit|TestAppenderCrashDuringAppendIsAtomic|TestStoreCrashCampaign|TestGroupCommitCrash|TestEpochFlipCrashCampaign' \
		./internal/storage/ ./internal/appender/ .

# The chaos harness drives a real HTTP serving process through a
# healthy → faulted → recovered arc (EIO, latency, silent bit rot on the
# medium and in flight) and asserts the robustness contract: answers are
# never silently wrong, every rotted block is quarantined, and the store
# converges back to healthy. Runs under -race: it is as much a
# concurrency test as a fault test.
chaos-smoke:
	$(GO) test -race -run 'TestChaosSmoke' -v ./internal/chaos/

# A quick pass over the maintenance benchmarks (worker-count sweeps for
# the chunked transforms and the appender) with -benchmem, so CI catches
# per-coefficient allocation regressions in the flat kernels and gross
# slowdowns without a full benchmark run. BENCH_maintain.json records a
# longer baseline. TestAllocBudget is the hard allocation gate: it fails
# outright when ChunkedStandard/ChunkedNonStandard allocs/op drift >20%
# past the budgets recorded in BENCH_maintain.json. The bench-serve
# -maintain row is the MVCC serve-during-maintenance check: query p99 with
# epoch flips racing the load must stay within the guardrail multiple of
# the idle p99 (BENCH_serve.json records 1.25x; the 3x gate is loose so CI
# catches a lost snapshot path, not scheduler jitter).
bench-smoke:
	$(GO) test -run 'TestAllocBudget' -count=1 -v ./internal/transform/
	$(GO) test -run '^$$' -bench 'BenchmarkChunkedStandard|BenchmarkChunkedNonStandard' \
		-benchmem -benchtime 3x ./internal/transform/
	$(GO) test -run '^$$' -bench 'BenchmarkAppender$$' -benchmem -benchtime 3x ./internal/appender/
	$(GO) test -run '^$$' -bench 'BenchmarkFileStoreRead|BenchmarkFileStoreWrite' \
		-benchmem -benchtime 3x ./internal/storage/
	$(GO) test -run '^$$' -bench 'BenchmarkMappedStoreRead|BenchmarkMappedVsFileWarmRead' \
		-benchmem -benchtime 3x ./internal/storage/
	$(GO) test -run '^$$' -bench 'BenchmarkTileFlush' -benchmem -benchtime 3x ./internal/tile/
	$(GO) run ./cmd/shiftsplit bench-serve -maintain -clients 4 -duration 700ms -cache 512 -max-p99-ratio 3

# A short write-path run that must show group commit actually amortizing:
# several client append calls per journal group (fsync pair). The threshold
# is deliberately below the BENCH_ingest.json baseline (~14x with 16
# clients) so CI catches a lost amortization, not scheduler jitter.
bench-ingest-smoke:
	$(GO) run ./cmd/shiftsplit bench-ingest -clients 8 -duration 500ms -min-amortization 2

ci: fmt-check vet lint lint-fix-check build race crash-campaign chaos-smoke bench-ingest-smoke

clean:
	$(GO) clean ./...
