package shiftsplit

import (
	"github.com/shiftsplit/shiftsplit/internal/cache"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// This file is the storage-stack half of the query-serving subsystem (the
// HTTP half lives in internal/server): it opens a store whose read path is
// built for many concurrent queriers instead of one maintenance engine.

// CacheStats reports the serve cache's counters.
type CacheStats struct {
	Hits      int64   `json:"hits"`      // reads served from a resident block
	Misses    int64   `json:"misses"`    // reads that found no resident block
	Loads     int64   `json:"loads"`     // reads issued to the device (singleflight coalesces misses)
	Evictions int64   `json:"evictions"` // blocks discarded to make room
	Inflight  int64   `json:"inflight"`  // loads currently outstanding
	Resident  int64   `json:"resident"`  // blocks currently held
	HitRate   float64 `json:"hit_rate"`  // Hits / (Hits + Misses)
}

// serveCacheInner returns the store the serve cache should read through:
// the shared I/O counter directly when the base device is safe for
// concurrent use (MemStore, FileStore), or a locked wrapper when the
// stateful durable layer sits underneath.
func serveCacheInner(counting *storage.Counting, durable *storage.Durable) storage.BlockStore {
	if durable != nil {
		return storage.NewLocked(counting)
	}
	return counting
}

// ServeOptions configures OpenServingOpts beyond the cache knobs.
type ServeOptions struct {
	// CacheBlocks/CacheShards size the sharded LRU block cache (see
	// OpenServing).
	CacheBlocks int
	CacheShards int
	// Breaker, when non-nil, interposes a circuit breaker between the
	// cache and the device: sustained backend failure trips it and the
	// store serves cache hits only (misses fail fast with
	// storage.ErrUnavailable) until a half-open probe finds the backend
	// healthy again.
	Breaker *storage.BreakerOptions
	// BaseWrap, when non-nil, wraps the raw block device below the
	// checksum layer — the chaos harness's fault-injection seam (see
	// StoreOptions.BaseWrap).
	BaseWrap func(storage.BlockStore) storage.BlockStore
}

// OpenServing reopens a file-backed store for the concurrent query-serving
// path: reads are fronted by a sharded LRU block cache of cacheBlocks
// blocks spread over cacheShards independently locked shards (0 picks a
// default), concurrent misses on the same block are coalesced into one
// disk read, and the whole read path is safe under any number of querying
// goroutines. Durable stores are additionally serialized at the device so
// the checksum/journal layer never sees interleaved calls.
//
// The returned store is meant to be read-only; running maintenance through
// it is permitted but requires the same external synchronization as any
// other store.
func OpenServing(path string, cacheBlocks, cacheShards int) (*Store, error) {
	return OpenServingOpts(path, ServeOptions{CacheBlocks: cacheBlocks, CacheShards: cacheShards})
}

// OpenServingOpts is OpenServing with the full robustness stack. On a
// durable store the read path layers, top to bottom:
//
//	tile.Store → Degraded → cache → Breaker → Locked → Counting → Durable
//
// Degraded sits above the cache so quarantined blocks are served as
// (uncached) flagged zeros; the breaker sits below the cache so cache
// hits keep serving while the circuit is open; the scrubber walks the
// Locked layer directly, bypassing both, so scrubbing sees the medium and
// never trips or pollutes the layers above.
//
// On a versioned durable store Locked is demoted from the read path:
// queries pin an epoch snapshot and resolve it through a lock-free
// committed-read leg, while only mutations keep the write lock —
//
//	reads:  Snapshot → Degraded → cache → Breaker → Counting → SplitRW → ChecksumReader → device
//	writes: Versioned builder → Counting → SplitRW → Locked → Durable
//
// so N readers progress at full speed while a maintenance batch builds
// and flips the next epoch. The cache sits below the epoch layer and is
// keyed by physical block id — epoch-qualified by construction, so a flip
// invalidates nothing (no generation storm); only the reuse of a reclaimed
// physical block drops its single stale entry.
func OpenServingOpts(path string, sopts ServeOptions) (*Store, error) {
	m, err := readMeta(path)
	if err != nil {
		return nil, err
	}
	tiling, form, err := tilingForMeta(m)
	if err != nil {
		return nil, err
	}
	opts := StoreOptions{
		Shape: m.Shape, Form: form, TileBits: m.TileBits, Path: path, Durable: m.Durable,
		Mapped:           m.Mapped,
		Versioned:        m.Versioned,
		ServeCacheBlocks: sopts.CacheBlocks, ServeCacheShards: sopts.CacheShards,
	}
	var base storage.BlockStore
	var durable *storage.Durable
	switch {
	case m.Durable:
		d, err := newDurableBase(path, tiling.BlockSize(), nil, false, m.Mapped, sopts.BaseWrap)
		if err != nil {
			return nil, err
		}
		base, durable = d, d
	case m.Mapped:
		// Serving over a mapped store: warm cache misses decode straight
		// from the mapping (zero pread, zero copy below the cache fill).
		ms, err := storage.OpenMappedStore(path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = ms
		if sopts.BaseWrap != nil {
			base = sopts.BaseWrap(base)
		}
	default:
		fs, err := storage.OpenFileStore(path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = fs
		if sopts.BaseWrap != nil {
			base = sopts.BaseWrap(base)
		}
	}
	var counting *storage.Counting
	if m.Versioned && durable != nil {
		// The split read/write path: snapshot reads verify frames over the
		// raw device concurrently, mutations keep the serialized journaled
		// path. Both legs share one device and one I/O counter.
		rd, err := durable.ReadOnlyView()
		if err != nil {
			return nil, err
		}
		split, err := storage.NewSplitRW(rd, storage.NewLocked(durable))
		if err != nil {
			return nil, err
		}
		counting = storage.NewCounting(split)
	} else {
		counting = storage.NewCounting(base)
	}
	out := &Store{
		opts:     opts,
		tiling:   tiling,
		counting: counting,
		durable:  durable,
	}
	out.materialized.Store(m.Materialized)
	out.attachQuarantine(m.Quarantined)
	var top storage.BlockStore = counting
	if durable != nil && !m.Versioned {
		locked := storage.NewLocked(counting)
		top = locked
		out.scrubBase = locked
		out.scrubSafe = true
	} else {
		// Versioned durable: the counting layer routes verification through
		// the SplitRW write leg, so the scrubber still sees the journal's
		// staged frames without taking the read path's locks.
		out.scrubBase = counting
		out.scrubSafe = true // MemStore/FileStore are concurrency-safe
	}
	if sopts.Breaker != nil {
		out.breaker = storage.NewBreaker(top, *sopts.Breaker)
		top = out.breaker
	}
	if sopts.CacheBlocks > 0 {
		c, err := cache.New(top, sopts.CacheBlocks, sopts.CacheShards)
		if err != nil {
			return nil, err
		}
		out.cache, top = c, c
	}
	if durable != nil {
		// Degraded serving needs corruption detection underneath, which
		// only the checksummed (durable) layout provides.
		dg, err := storage.NewDegraded(top, out.quarantine)
		if err != nil {
			return nil, err
		}
		out.degraded, top = dg, dg
	}
	if m.Versioned {
		v, err := storage.NewVersionedSplit(counting, top, tiling.NumBlocks())
		if err != nil {
			return nil, err
		}
		if out.cache != nil {
			v.OnReuse(out.cache.Drop)
		}
		out.versioned, top = v, v
		if m.Materialized {
			out.matEpoch.Store(v.Epoch() + 1)
		}
	}
	st, err := tile.NewStore(top, tiling)
	if err != nil {
		return nil, err
	}
	out.store = st
	return out, nil
}

// CacheStats returns the serve cache's counters; ok is false when the store
// has no serve cache.
func (s *Store) CacheStats() (stats CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	cs := s.cache.Stats()
	return CacheStats{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Loads:     cs.Loads,
		Evictions: cs.Evictions,
		Inflight:  cs.Inflight,
		Resident:  cs.Resident,
		HitRate:   cs.HitRate(),
	}, true
}

// InvalidateCache empties the serve cache (a no-op without one); the next
// reads reload from the device. The cold-start benchmarks use it.
func (s *Store) InvalidateCache() {
	if s.cache != nil {
		s.cache.Invalidate()
	}
}
