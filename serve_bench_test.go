package shiftsplit

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// The serving benchmarks measure query throughput through the concurrent
// read path: cold cache vs warm cache, one goroutine vs GOMAXPROCS.
// BENCH_serve.json records a baseline run.

func benchServingStore(b *testing.B, cacheBlocks int) *Store {
	b.Helper()
	return materializeServing(b, []int{64, 64}, cacheBlocks, 0)
}

func benchPoints(shape []int, n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]int, n)
	for i := range pts {
		pts[i] = []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
	}
	return pts
}

func BenchmarkServePointNoCache(b *testing.B) {
	st := benchServingStore(b, 0)
	pts := benchPoints(st.Shape(), 1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Point(pts[i%len(pts)]...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServePointColdCache(b *testing.B) {
	st := benchServingStore(b, 256)
	pts := benchPoints(st.Shape(), 1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Invalidate before every query: each read pays the miss path
		// (lookup, singleflight registration, device load, install).
		st.InvalidateCache()
		if _, _, err := st.Point(pts[i%len(pts)]...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServePointWarmCache(b *testing.B) {
	st := benchServingStore(b, 256)
	pts := benchPoints(st.Shape(), 1024, 3)
	for _, p := range pts { // warm every block the run will touch
		if _, _, err := st.Point(p...); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Point(pts[i%len(pts)]...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServePointParallelNoCache(b *testing.B) {
	st := benchServingStore(b, 0)
	pts := benchPoints(st.Shape(), 1024, 3)
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1)) % len(pts)
			if _, _, err := st.Point(pts[i]...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServePointParallelWarmCache(b *testing.B) {
	st := benchServingStore(b, 256)
	pts := benchPoints(st.Shape(), 1024, 3)
	for _, p := range pts {
		if _, _, err := st.Point(p...); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(ctr.Add(1)) % len(pts)
			if _, _, err := st.Point(pts[i]...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServeRangeSumWarmCache(b *testing.B) {
	st := benchServingStore(b, 256)
	shape := st.Shape()
	rng := rand.New(rand.NewSource(5))
	type box struct{ start, extent []int }
	boxes := make([]box, 256)
	for i := range boxes {
		s := []int{rng.Intn(shape[0] / 2), rng.Intn(shape[1] / 2)}
		boxes[i] = box{s, []int{1 + rng.Intn(shape[0]/2), 1 + rng.Intn(shape[1]/2)}}
	}
	for _, bx := range boxes {
		if _, _, err := st.RangeSum(bx.start, bx.extent); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bx := boxes[i%len(boxes)]
		if _, _, err := st.RangeSum(bx.start, bx.extent); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeRangeSumParallelWarmCache(b *testing.B) {
	st := benchServingStore(b, 256)
	shape := st.Shape()
	rng := rand.New(rand.NewSource(5))
	type box struct{ start, extent []int }
	boxes := make([]box, 256)
	for i := range boxes {
		s := []int{rng.Intn(shape[0] / 2), rng.Intn(shape[1] / 2)}
		boxes[i] = box{s, []int{1 + rng.Intn(shape[0]/2), 1 + rng.Intn(shape[1]/2)}}
	}
	for _, bx := range boxes {
		if _, _, err := st.RangeSum(bx.start, bx.extent); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bx := boxes[int(ctr.Add(1))%len(boxes)]
			if _, _, err := st.RangeSum(bx.start, bx.extent); err != nil {
				b.Fatal(err)
			}
		}
	})
}
