package shiftsplit

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestCompressFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randArray(rng, 16, 16)
	hat := Transform(a, Standard)
	c := Compress(hat, Standard, 32)
	if c.K() != 32 || c.Form() != Standard {
		t.Fatalf("K=%d form=%v", c.K(), c.Form())
	}
	if sh := c.Shape(); sh[0] != 16 || sh[1] != 16 {
		t.Errorf("Shape = %v", sh)
	}
	// Exact error accounting.
	if sse := c.SSE(a); math.Abs(sse-c.DroppedEnergy()) > 1e-6*(1+sse) {
		t.Errorf("SSE %g vs dropped energy %g", sse, c.DroppedEnergy())
	}
	// Approximate queries agree with the reconstruction.
	rec := c.Reconstruct()
	p := []int{7, 11}
	if math.Abs(c.PointValue(p)-rec.At(p...)) > 1e-9 {
		t.Error("PointValue disagrees with reconstruction")
	}
	if got, want := c.RangeSum([]int{0, 0}, []int{8, 8}), rec.SumRange([]int{0, 0}, []int{8, 8}); math.Abs(got-want) > 1e-6 {
		t.Errorf("RangeSum %g vs %g", got, want)
	}
}

func TestCompressPersistenceFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randArray(rng, 8, 8)
	c := Compress(Transform(a, NonStandard), NonStandard, 12)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompressedTransform(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != 12 || back.Form() != NonStandard {
		t.Fatalf("round trip K=%d form=%v", back.K(), back.Form())
	}
	if !back.Reconstruct().EqualApprox(c.Reconstruct(), 1e-12) {
		t.Error("reconstruction differs after persistence")
	}
}

func TestProgressiveRangeSumFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := randArray(rng, 32, 32)
	st, err := CreateStore(StoreOptions{Shape: []int{32, 32}, Form: Standard})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		t.Fatal(err)
	}
	steps, err := st.ProgressiveRangeSum([]int{3, 5}, []int{20, 11})
	if err != nil {
		t.Fatal(err)
	}
	exact := src.SumRange([]int{3, 5}, []int{20, 11})
	if got := steps[len(steps)-1].Estimate; math.Abs(got-exact) > 1e-6 {
		t.Errorf("final progressive estimate %g, exact %g", got, exact)
	}
}
