module github.com/shiftsplit/shiftsplit

go 1.22
