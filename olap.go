package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/olap"
	"github.com/shiftsplit/shiftsplit/internal/query"
)

// The OLAP operators below work directly on standard-form transforms and
// return the exact transform of the result cube — no data is ever
// reconstructed. These entry points sit behind the network API, so invalid
// dimensions and indices surface as errors wrapping query.ErrInvalid (the
// serving layer maps them to 400 responses), never as panics out of the
// wavelet algebra.

// validateOLAPDim checks the shared preconditions of the wavelet-domain
// operators: at least two dimensions and an in-range dimension argument.
func validateOLAPDim(hat *Array, dim int) error {
	if hat.Dims() < 2 {
		return fmt.Errorf("%w: OLAP operators need at least 2 dimensions, transform has %d", query.ErrInvalid, hat.Dims())
	}
	if dim < 0 || dim >= hat.Dims() {
		return fmt.Errorf("%w: dimension %d out of range for %d-d transform", query.ErrInvalid, dim, hat.Dims())
	}
	return nil
}

// Rollup returns the transform of the cube summed over dimension dim.
func Rollup(hat *Array, dim int) (*Array, error) {
	if err := validateOLAPDim(hat, dim); err != nil {
		return nil, err
	}
	return olap.Marginalize(hat, dim), nil
}

// AverageOver returns the transform of the cube averaged over dimension dim.
func AverageOver(hat *Array, dim int) (*Array, error) {
	if err := validateOLAPDim(hat, dim); err != nil {
		return nil, err
	}
	return olap.Average(hat, dim), nil
}

// SliceAt returns the transform of the (d-1)-dimensional cube with
// dimension dim fixed to x.
func SliceAt(hat *Array, dim, x int) (*Array, error) {
	if err := validateOLAPDim(hat, dim); err != nil {
		return nil, err
	}
	if x < 0 || x >= hat.Extent(dim) {
		return nil, fmt.Errorf("%w: slice index %d out of [0,%d) along dimension %d", query.ErrInvalid, x, hat.Extent(dim), dim)
	}
	return olap.Slice(hat, dim, x), nil
}

// Totals returns the 1-d transform of the grand totals along dimension
// keep (every other dimension rolled up).
func Totals(hat *Array, keep int) (*Array, error) {
	if err := validateOLAPDim(hat, keep); err != nil {
		return nil, err
	}
	return olap.PivotSum(hat, keep), nil
}

// DiceDyadic returns the transform of the cube restricted along dimension
// dim to the dyadic run [start, start+length); the run must be dyadic.
func DiceDyadic(hat *Array, dim, start, length int) (*Array, error) {
	if err := validateOLAPDim(hat, dim); err != nil {
		return nil, err
	}
	iv, ok := dyadic.FromRange(start, length)
	if !ok || start+length > hat.Extent(dim) {
		return nil, fmt.Errorf("%w: [%d,+%d) is not a dyadic run of dimension %d", query.ErrInvalid, start, length, dim)
	}
	if iv.Level > bitutil.Log2(hat.Extent(dim)) {
		return nil, fmt.Errorf("%w: dice run longer than dimension %d", query.ErrInvalid, dim)
	}
	return olap.Dice(hat, dim, iv), nil
}
