package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/olap"
)

// The OLAP operators below work directly on standard-form transforms and
// return the exact transform of the result cube — no data is ever
// reconstructed. They panic on invalid dimensions, mirroring slice
// indexing.

// Rollup returns the transform of the cube summed over dimension dim.
func Rollup(hat *Array, dim int) *Array { return olap.Marginalize(hat, dim) }

// AverageOver returns the transform of the cube averaged over dimension dim.
func AverageOver(hat *Array, dim int) *Array { return olap.Average(hat, dim) }

// SliceAt returns the transform of the (d-1)-dimensional cube with
// dimension dim fixed to x.
func SliceAt(hat *Array, dim, x int) *Array { return olap.Slice(hat, dim, x) }

// Totals returns the 1-d transform of the grand totals along dimension
// keep (every other dimension rolled up).
func Totals(hat *Array, keep int) *Array { return olap.PivotSum(hat, keep) }

// DiceDyadic returns the transform of the cube restricted along dimension
// dim to the dyadic run [start, start+length); the run must be dyadic.
func DiceDyadic(hat *Array, dim, start, length int) (*Array, error) {
	if dim < 0 || dim >= hat.Dims() {
		return nil, fmt.Errorf("shiftsplit: dice dimension %d out of range", dim)
	}
	iv, ok := dyadic.FromRange(start, length)
	if !ok || start+length > hat.Extent(dim) {
		return nil, fmt.Errorf("shiftsplit: [%d,+%d) is not a dyadic run of dim %d", start, length, dim)
	}
	if iv.Level > bitutil.Log2(hat.Extent(dim)) {
		return nil, fmt.Errorf("shiftsplit: dice run longer than dimension")
	}
	return olap.Dice(hat, dim, iv), nil
}
