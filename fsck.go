package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// FsckReport is the result of checking a durable store's on-disk state;
// see storage.FsckReport for the fields.
type FsckReport = storage.FsckReport

// Fsck verifies a file-backed durable store without opening (or modifying)
// it: every block frame is checksum-verified against its CRC64, and the
// write-ahead journal is inspected for an interrupted maintenance batch.
// A report with NeedsRecovery() true means OpenStore would roll the batch
// forward; JournalErr is non-empty only for media-level corruption the
// journal protocol cannot repair.
func Fsck(path string) (*FsckReport, error) {
	m, err := readMeta(path)
	if err != nil {
		return nil, err
	}
	if !m.Durable {
		return nil, fmt.Errorf("shiftsplit: %s is not a durable store (created without StoreOptions.Durable); it has no checksums or journal to verify", path)
	}
	tiling, _, err := tilingForMeta(m)
	if err != nil {
		return nil, err
	}
	rep, err := storage.Fsck(path, tiling.BlockSize())
	if err != nil {
		return nil, err
	}
	if m.Versioned {
		// Best-effort: a torn or corrupt superblock already shows up in
		// rep.Corrupt; the decoded view is reported only when it verifies.
		if info, ierr := storage.FsckVersioned(path, tiling.BlockSize(), tiling.NumBlocks()); ierr == nil {
			rep.Versioned = info
		}
	}
	return rep, nil
}
