package shiftsplit

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/cache"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/transform"
)

// IOStats reports block-level I/O on a Store, plus the durability barriers
// (syncs) and transactional batch seals (commits) the stack issued.
type IOStats struct {
	Reads   int64
	Writes  int64
	Syncs   int64
	Commits int64
	// MappedReads is how many of the Reads were served zero-syscall from
	// a memory mapping (stores created with Mapped). A subset of Reads,
	// not an addition to Total.
	MappedReads int64
}

// Total returns Reads + Writes (barriers move no blocks).
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// StoreOptions configures CreateStore.
type StoreOptions struct {
	// Shape of the transformed domain; every extent must be a power of two,
	// and the non-standard form requires a cubic shape.
	Shape []int
	// Form of decomposition (Standard or NonStandard).
	Form Form
	// TileBits is the per-dimension tile edge exponent b: blocks hold
	// 2^(b*dims) coefficients under the paper's optimal tiling (§3).
	// Defaults to 2.
	TileBits int
	// Path, when non-empty, backs the store with a real file; otherwise the
	// store is in memory.
	Path string
	// Mapped serves file reads from a shared read-only memory mapping
	// (storage.MappedStore) instead of pread calls: warm reads are
	// zero-copy and zero-syscall, reported via IOStats.MappedReads.
	// Writes keep the positional-write (and, with Durable, journal)
	// path, and the on-disk layout is unchanged — a mapped store's file
	// can be reopened unmapped and vice versa. Requires Path.
	Mapped bool
	// CacheBlocks, when positive, interposes a write-back LRU buffer pool
	// of that many blocks between the store and its I/O counter — the
	// "available memory" knob of the paper's query scenarios. Stats then
	// reports only the I/O that misses the cache.
	CacheBlocks int
	// ServeCacheBlocks, when positive, fronts reads with a sharded,
	// goroutine-safe LRU block cache using singleflight miss coalescing —
	// the serving path's memory knob (see OpenServing). Mutually exclusive
	// with CacheBlocks: the buffer pool is a single-threaded write-back
	// model, the serve cache a concurrent read-through cache.
	ServeCacheBlocks int
	// ServeCacheShards optionally sets the serve cache's shard count
	// (rounded up to a power of two; defaults to 16).
	ServeCacheShards int
	// Durable layers crash safety under the store: every block is framed
	// with a CRC64 + epoch so torn writes and bit rot are detected on read,
	// and every maintenance operation (Materialize, TransformChunked,
	// MergeBlock, ClearBlock) is applied atomically through a write-ahead
	// block journal — a crash leaves either the pre- or the post-operation
	// transform, never a hybrid, and OpenStore rolls interrupted batches
	// forward or discards them. File-backed durable stores use a different
	// on-disk layout (framed blocks plus a ".wal" sidecar) and are not
	// interchangeable with non-durable files.
	Durable bool
	// Versioned interposes the MVCC epoch layer (storage.Versioned) between
	// the tile map and the physical store: every maintenance batch builds
	// the next epoch in freshly allocated physical blocks and commits it
	// with an atomic flip, while queries pin the current epoch through a
	// refcounted Snapshot — so reads never observe a mid-batch state and
	// never contend with writers. On a durable store the flip commits in
	// the same journal group as the batch (crash recovers to exactly the
	// old or exactly the new epoch). Versioned stores use a different
	// on-disk layout (superblock + remap table ahead of the data blocks)
	// and are not interchangeable with non-versioned files.
	Versioned bool
	// FaultPlan, when non-nil, routes the physical writes of a durable
	// store through a storage.CrashStore governed by the plan — the
	// power-cut testing facility behind the crash campaign. It is ignored
	// unless Durable is set, and is not persisted in store metadata.
	FaultPlan *storage.CrashPlan
	// BaseWrap, when non-nil, wraps the raw block device (below the
	// checksum/journal layers of a durable store) — the seam the chaos
	// harness uses to slide a storage.Faulty under a real store. Not
	// persisted in store metadata.
	BaseWrap func(storage.BlockStore) storage.BlockStore
}

// MaintainOptions tunes the worker pool behind the maintenance operations
// (TransformChunked, Materialize, and the Appender). The zero value selects
// the defaults: one transform worker per CPU and a chunk queue of twice the
// worker count. Results are bit-identical and I/O counters equal for every
// setting — parallelism changes wall-clock time only.
type MaintainOptions struct {
	// Workers is the number of goroutines transforming chunks; <= 0 selects
	// runtime.GOMAXPROCS(0), and 1 runs fully sequentially.
	Workers int
	// ChunkQueue bounds how many transformed-but-unapplied chunks may be in
	// flight, each holding its bucketed deltas in memory; <= 0 selects
	// 2*Workers. Larger values smooth over chunks of uneven cost at the
	// price of memory.
	ChunkQueue int
}

// engine lowers the public options to the internal pool configuration. The
// physical I/O order on the destination must be exactly the sequential
// engine's whenever the storage stack is order-sensitive: the write-back
// buffer pool (hit/miss counts depend on access order), the serve cache
// (ditto), and durable stores (crash campaigns kill maintenance at every
// physical write index and expect a deterministic sequence).
func (o MaintainOptions) engine(s *Store) parallel.Options {
	return parallel.Options{
		Workers:     o.Workers,
		ChunkQueue:  o.ChunkQueue,
		SerialApply: s.pool != nil || s.cache != nil || s.durable != nil || s.versioned != nil,
	}
}

// Store is a wavelet transform resident on tiled block storage, with every
// block read and write counted. It is the disk-facing half of the library:
// bulk transformation, queries, partial reconstruction, and SHIFT-SPLIT
// block merges all run against it.
//
// The query read path (Point, Points, RangeSum, ProgressiveRangeSum,
// ExtractBlock, ExtractBox, ReadTransform) is safe for concurrent use on
// stores whose block device is — in-memory stores, plain file stores, and
// anything opened with OpenServing — as every query works from per-call
// buffers. Maintenance (Materialize, TransformChunked, MergeBlock,
// ClearBlock) and stores opened with CacheBlocks > 0 (the single-threaded
// write-back buffer pool) still require external synchronization, and
// maintenance must not run concurrently with queries.
type Store struct {
	opts     StoreOptions
	tiling   tile.Tiling
	counting *storage.Counting
	pool     *storage.BufferPool
	cache    *cache.Sharded
	durable  *storage.Durable
	// versioned, when non-nil, is the MVCC epoch layer the tile store sits
	// on: queries pin epochs through it, maintenance builds the next epoch
	// behind it (see AcquireSnapshot).
	versioned *storage.Versioned
	store     *tile.Store
	// materialized is atomic: the serving read path branches on it while a
	// concurrent healing Materialize (re-writing the same store it serves)
	// may be clearing and re-asserting it.
	materialized atomic.Bool
	// matEpoch resolves the materialized flag per epoch on versioned
	// stores: it holds epoch+1 of the epoch whose blocks carry scaling
	// coefficients, 0 when none does. A pinned snapshot runs the
	// single-block query path only when its own epoch matches — a snapshot
	// raced by a concurrent Materialize conservatively falls back to the
	// (always-correct) root-path queries.
	matEpoch atomic.Uint64

	// Robustness plumbing (see robust.go): the quarantine registry tracks
	// blocks known corrupt, degraded serves them as flagged zeros, the
	// breaker sheds load off a dead backend, and scrubBase is the layer the
	// background scrubber walks (below the cache and breaker, above the
	// device, sharing the serving path's lock).
	quarantine *storage.Quarantine
	degraded   *storage.Degraded
	breaker    *storage.Breaker
	scrubBase  storage.BlockStore
	scrubSafe  bool // scrubBase may be walked concurrently with queries
	metaMu     sync.Mutex
	scrubMu    sync.Mutex
	scrubber   *storage.Scrubber
	scrubStop  func()
	scrubDone  chan struct{}
}

// ErrQuarantined is returned by incremental maintenance (TransformChunked,
// MergeBlock, ClearBlock) while any block is quarantined: those operations
// read-modify-write the stored transform, and folding a zero-filled
// degraded read back into the medium would silently destroy data.
// Materialize is exempt — it rewrites every block from scratch and heals
// the store.
var ErrQuarantined = errors.New("shiftsplit: store has quarantined blocks; repair or re-materialize first")

// CreateStore creates an empty tiled store for a transform of the given
// shape and form.
func CreateStore(opts StoreOptions) (*Store, error) {
	if len(opts.Shape) == 0 {
		return nil, fmt.Errorf("shiftsplit: empty shape")
	}
	if opts.TileBits == 0 {
		opts.TileBits = 2
	}
	if opts.TileBits < 1 {
		return nil, fmt.Errorf("shiftsplit: tile bits %d", opts.TileBits)
	}
	ns := make([]int, len(opts.Shape))
	for i, s := range opts.Shape {
		if !bitutil.IsPow2(s) {
			return nil, fmt.Errorf("shiftsplit: extent %d is not a power of two", s)
		}
		ns[i] = bitutil.Log2(s)
	}
	var tiling tile.Tiling
	switch opts.Form {
	case Standard:
		tiling = tile.NewStandard(ns, opts.TileBits)
	case NonStandard:
		for _, s := range opts.Shape[1:] {
			if s != opts.Shape[0] {
				return nil, fmt.Errorf("shiftsplit: non-standard form requires a cubic shape, got %v", opts.Shape)
			}
		}
		tiling = tile.NewNonStandard(ns[0], len(ns), opts.TileBits)
	default:
		return nil, fmt.Errorf("shiftsplit: unknown form %v", opts.Form)
	}
	if opts.Mapped && opts.Path == "" {
		return nil, fmt.Errorf("shiftsplit: Mapped requires a file-backed store (set Path)")
	}
	var base storage.BlockStore
	var durable *storage.Durable
	switch {
	case opts.Durable:
		d, err := newDurableBase(opts.Path, tiling.BlockSize(), opts.FaultPlan, true, opts.Mapped, opts.BaseWrap)
		if err != nil {
			return nil, err
		}
		base, durable = d, d
	case opts.Mapped:
		ms, err := storage.NewMappedStore(opts.Path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = ms
		if opts.BaseWrap != nil {
			base = opts.BaseWrap(base)
		}
	case opts.Path != "":
		fs, err := storage.NewFileStore(opts.Path, tiling.BlockSize())
		if err != nil {
			return nil, err
		}
		base = fs
		if opts.BaseWrap != nil {
			base = opts.BaseWrap(base)
		}
	default:
		base = storage.NewMemStore(tiling.BlockSize())
		if opts.BaseWrap != nil {
			base = opts.BaseWrap(base)
		}
	}
	if opts.CacheBlocks > 0 && opts.ServeCacheBlocks > 0 {
		return nil, fmt.Errorf("shiftsplit: CacheBlocks and ServeCacheBlocks are mutually exclusive")
	}
	counting := storage.NewCounting(base)
	var top storage.BlockStore = counting
	var pool *storage.BufferPool
	var shardedCache *cache.Sharded
	if opts.CacheBlocks > 0 {
		pool = storage.NewBufferPool(counting, opts.CacheBlocks)
		top = pool
	}
	if opts.ServeCacheBlocks > 0 {
		c, err := cache.New(serveCacheInner(counting, durable), opts.ServeCacheBlocks, opts.ServeCacheShards)
		if err != nil {
			return nil, err
		}
		shardedCache, top = c, c
	}
	var versioned *storage.Versioned
	if opts.Versioned {
		v, err := storage.NewVersioned(top, tiling.NumBlocks())
		if err != nil {
			return nil, err
		}
		if shardedCache != nil {
			// The cache sits below the epoch layer, so its keys are physical
			// ids — epoch-qualified by construction. The only invalidation it
			// ever needs is when a reclaimed physical block is rebound.
			v.OnReuse(shardedCache.Drop)
		}
		versioned, top = v, v
	}
	st, err := tile.NewStore(top, tiling)
	if err != nil {
		return nil, err
	}
	out := &Store{opts: opts, tiling: tiling, counting: counting, pool: pool, cache: shardedCache, durable: durable, versioned: versioned, store: st}
	out.attachQuarantine(nil)
	out.scrubBase = counting
	if err := out.saveMeta(); err != nil {
		return nil, err
	}
	return out, nil
}

// newDurableBase builds the transactional block store for a durable Store:
// file-backed (with a ".wal" journal sidecar) when path is non-empty,
// in-memory otherwise. wrap, when non-nil, is applied to the raw data
// device below the checksum layer (fault-injection seam).
func newDurableBase(path string, blockSize int, plan *storage.CrashPlan, create, mapped bool, wrap func(storage.BlockStore) storage.BlockStore) (*storage.Durable, error) {
	if path == "" {
		var data storage.BlockStore = storage.NewMemStore(blockSize + storage.ChecksumOverhead)
		if wrap != nil {
			data = wrap(data)
		}
		wal := storage.NewMemStore(blockSize + storage.JournalOverhead)
		return storage.NewDurable(wrapFaultPlan(data, plan), wrapFaultPlan(wal, plan))
	}
	switch {
	case mapped && create:
		return storage.CreateDurableMapped(path, blockSize, plan, wrap)
	case mapped:
		return storage.OpenDurableMapped(path, blockSize, plan, wrap)
	case create:
		return storage.CreateDurableWrapped(path, blockSize, plan, wrap)
	}
	return storage.OpenDurableWrapped(path, blockSize, plan, wrap)
}

func wrapFaultPlan(bs storage.BlockStore, plan *storage.CrashPlan) storage.BlockStore {
	if plan == nil {
		return bs
	}
	return storage.NewCrashStore(bs, plan)
}

// Shape returns the transformed domain extents.
func (s *Store) Shape() []int { return append([]int(nil), s.opts.Shape...) }

// Form returns the decomposition form.
func (s *Store) Form() Form { return s.opts.Form }

// BlockSize returns the number of coefficients per storage block.
func (s *Store) BlockSize() int { return s.tiling.BlockSize() }

// NumBlocks returns the number of blocks covering the domain.
func (s *Store) NumBlocks() int { return s.tiling.NumBlocks() }

// Stats returns the accumulated block I/O counters.
func (s *Store) Stats() IOStats {
	st := s.counting.Stats()
	return IOStats{Reads: st.Reads, Writes: st.Writes, Syncs: st.Syncs, Commits: st.Commits, MappedReads: st.MappedReads}
}

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() { s.counting.Reset() }

// Flush writes any cached dirty blocks through to the backing store; on a
// durable store it additionally commits them as one atomic batch.
func (s *Store) Flush() error { return s.commit() }

// Durable reports whether the store runs on the crash-safe storage layer.
func (s *Store) Durable() bool { return s.durable != nil }

// Mapped reports whether block reads are served from a shared read-only
// memory mapping (zero-copy, zero read syscalls when warm).
func (s *Store) Mapped() bool { return s.opts.Mapped }

// Recovered reports how many blocks were rolled forward from the journal
// when the store was opened; ok is false if no interrupted batch was found.
func (s *Store) Recovered() (blocks int, ok bool) {
	if s.durable == nil {
		return 0, false
	}
	return s.durable.Recovered()
}

// commit flushes the buffer pool and seals a durable batch. On non-durable
// stores it degenerates to a pool flush.
func (s *Store) commit() error { return s.store.Commit() }

// demote conservatively clears the materialized flag in the metadata
// sidecar before a maintenance batch touches block storage. Ordering
// matters for crash safety: "materialized" may only be claimed after the
// blocks that justify it are durable, so it is dropped first and
// re-asserted (by Materialize) only after a successful commit.
func (s *Store) demote() error {
	s.matEpoch.Store(0)
	if !s.materialized.Load() {
		return nil
	}
	s.materialized.Store(false)
	return s.saveMeta()
}

// Close stops any background scrubber, flushes caches, and releases the
// underlying storage.
func (s *Store) Close() error {
	s.StopScrub()
	return s.store.Close()
}

// Materialize transforms a in memory and writes the complete tiled layout,
// including the per-tile scaling coefficients that make single-block point
// queries possible. Use TransformChunked instead when a does not fit the
// I/O budget of an in-memory transform.
func (s *Store) Materialize(a *Array) error {
	return s.MaterializeOpts(a, MaintainOptions{})
}

// MaterializeOpts is Materialize with an explicit worker-pool configuration.
// Block contents are computed concurrently; the physical writes happen in
// ascending block order regardless of the worker count, so the on-disk
// result and the I/O counters match the sequential path exactly.
func (s *Store) MaterializeOpts(a *Array, opts MaintainOptions) error {
	if err := s.demote(); err != nil {
		return err
	}
	hat := Transform(a, s.opts.Form)
	var err error
	switch s.tiling.(type) {
	case *tile.Standard:
		err = parallel.MaterializeStandard(s.store, hat, opts.engine(s))
	case *tile.NonStandard:
		err = parallel.MaterializeNonStandard(s.store, hat, opts.engine(s))
	}
	if err != nil {
		return err
	}
	if err := s.commit(); err != nil {
		return err
	}
	// A materialize rewrites every block's frame from scratch, so whatever
	// was quarantined is now fresh bytes: heal the registry wholesale.
	if s.quarantine != nil && s.quarantine.Len() > 0 {
		s.quarantine.Replace(nil)
	}
	s.materialized.Store(true)
	if s.versioned != nil {
		// The epoch the commit just flipped to is the one whose blocks carry
		// scaling coefficients; snapshots of any other epoch must keep using
		// the root-path queries.
		s.matEpoch.Store(s.versioned.Epoch() + 1)
	}
	return s.saveMeta()
}

// TransformChunked runs the paper's I/O-efficient chunked transformation
// (Result 1 for the standard form; Result 2, with z-ordered chunks and an
// in-memory crest, for the non-standard form), using memory for one chunk
// of edge 2^chunkBits per dimension.
func (s *Store) TransformChunked(src *Array, chunkBits int) error {
	return s.TransformChunkedOpts(src, chunkBits, MaintainOptions{})
}

// TransformChunkedOpts is TransformChunked with an explicit worker-pool
// configuration: chunk transforms and SHIFT-SPLIT bucketing fan out to
// opts.Workers goroutines while per-tile delta application stays in chunk
// order, so the resulting transform is bit-identical and the I/O counters
// equal for every worker count.
func (s *Store) TransformChunkedOpts(src *Array, chunkBits int, opts MaintainOptions) error {
	if err := s.maintenanceGuard(); err != nil {
		return err
	}
	if err := s.demote(); err != nil { // scaling slots are not maintained by the engines
		return err
	}
	var err error
	switch s.opts.Form {
	case Standard:
		_, err = transform.ChunkedStandardOpts(src, chunkBits, s.store, opts.engine(s))
	case NonStandard:
		_, err = transform.ChunkedNonStandardOpts(src, chunkBits, s.store, transform.NonStdOptions{ZOrderCrest: true}, opts.engine(s))
	}
	if err != nil {
		return err
	}
	if err := s.commit(); err != nil {
		return err
	}
	return s.saveMeta()
}

// MergeBlock folds bHat (the transform of a block's contents, same form)
// into the stored transform — the disk-resident SHIFT-SPLIT batch update.
func (s *Store) MergeBlock(b Block, bHat *Array) error {
	if err := b.validate(s.opts.Shape); err != nil {
		return err
	}
	if err := s.maintenanceGuard(); err != nil {
		return err
	}
	if err := s.demote(); err != nil {
		return err
	}
	batch := tile.NewBatch(s.store)
	var applyErr error
	add := func(coords []int, delta float64) {
		if applyErr != nil {
			return
		}
		applyErr = batch.Add(coords, delta)
	}
	switch s.opts.Form {
	case Standard:
		coreEachEmbedStandard(s.opts.Shape, b, bHat, add)
	case NonStandard:
		if !b.isCubic() {
			return fmt.Errorf("shiftsplit: non-standard merge needs a cubic block")
		}
		coreEachNonStandard(s.opts.Shape, b, bHat, add)
	}
	if applyErr != nil {
		return applyErr
	}
	if err := batch.Flush(); err != nil {
		return err
	}
	return s.commit()
}

// ClearBlock zeroes the original data over a dyadic block entirely in the
// wavelet domain: the block's transform is extracted (inverse SHIFT-SPLIT)
// and its negation merged back — two block-local passes, no global
// reconstruction.
func (s *Store) ClearBlock(b Block) error {
	if err := s.maintenanceGuard(); err != nil {
		return err
	}
	bHat, _, err := s.ExtractBlock(b)
	if err != nil {
		return err
	}
	neg := Transform(bHat, s.opts.Form) // bHat holds data values; transform then negate
	for i := range neg.Data() {
		neg.Data()[i] = -neg.Data()[i]
	}
	return s.MergeBlock(b, neg)
}

// ExtractBlock reconstructs the original contents of a dyadic block from
// the store via inverse SHIFT-SPLIT (Result 6), returning the values and
// the number of blocks read.
func (s *Store) ExtractBlock(b Block) (*Array, int, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.ExtractBlock(b)
}

// ExtractBox reconstructs an arbitrary box by dyadic decomposition (the
// non-standard form additionally splits pieces into cubes, §4.1).
func (s *Store) ExtractBox(start, shape []int) (*Array, int, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.ExtractBox(start, shape)
}

// Point reconstructs a single cell. On a materialized store this reads
// exactly one block (the §3 payoff of the stored scaling coefficients);
// otherwise it walks the root path. On a versioned store the read pins the
// current epoch for its duration (see AcquireSnapshot).
func (s *Store) Point(point ...int) (float64, int, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.Point(point...)
}

// RangeSum evaluates the sum over [start, start+shape), returning the value
// and the number of blocks read.
func (s *Store) RangeSum(start, shape []int) (float64, int, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.RangeSum(start, shape)
}

// ReadTransform reads the whole transform back into memory (mainly for
// verification and small stores).
func (s *Store) ReadTransform() (*Array, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.ReadTransform()
}

// Points answers a batch of point queries, sharing one block cache across
// the batch so that queries with overlapping root paths pay for their
// common tiles once. It returns the values in input order and the total
// number of distinct blocks read.
func (s *Store) Points(points [][]int) ([]float64, int, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.Points(points)
}
