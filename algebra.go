package shiftsplit

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// The operations below exploit the linearity of the Haar transform at store
// granularity: transforms of two datasets over the same domain combine
// coefficient-wise (and therefore block-wise), with no reconstruction and
// one read-modify-write pass over the blocks.

// AddStore adds other's dataset into s (cell-wise), streaming block by
// block. Both stores must share shape, form, and tiling geometry. Redundant
// scaling slots combine linearly too, so a materialized store stays
// materialized.
func (s *Store) AddStore(other *Store) error {
	return s.combineStore(other, 1)
}

// SubtractStore subtracts other's dataset from s.
func (s *Store) SubtractStore(other *Store) error {
	return s.combineStore(other, -1)
}

func (s *Store) combineStore(other *Store, sign float64) error {
	if s.opts.Form != other.opts.Form {
		return fmt.Errorf("shiftsplit: form mismatch (%v vs %v)", s.opts.Form, other.opts.Form)
	}
	if len(s.opts.Shape) != len(other.opts.Shape) {
		return fmt.Errorf("shiftsplit: shape mismatch (%v vs %v)", s.opts.Shape, other.opts.Shape)
	}
	for i := range s.opts.Shape {
		if s.opts.Shape[i] != other.opts.Shape[i] {
			return fmt.Errorf("shiftsplit: shape mismatch (%v vs %v)", s.opts.Shape, other.opts.Shape)
		}
	}
	if s.opts.TileBits != other.opts.TileBits {
		return fmt.Errorf("shiftsplit: tile geometry mismatch (%d vs %d bits)", s.opts.TileBits, other.opts.TileBits)
	}
	for block := 0; block < s.tiling.NumBlocks(); block++ {
		mine, err := s.store.ReadTile(block)
		if err != nil {
			return err
		}
		theirs, err := other.store.ReadTile(block)
		if err != nil {
			return err
		}
		changed := false
		for i := range mine {
			if theirs[i] != 0 {
				mine[i] += sign * theirs[i]
				changed = true
			}
		}
		if !changed {
			continue
		}
		if err := s.store.WriteTile(block, mine); err != nil {
			return err
		}
	}
	// Materialization survives: scaling slots are linear in the data.
	return s.saveMeta()
}

// Scale multiplies every data value by factor, wavelet-domain only (the
// transform is linear, so scaling every block scales the data).
func (s *Store) Scale(factor float64) error {
	for block := 0; block < s.tiling.NumBlocks(); block++ {
		data, err := s.store.ReadTile(block)
		if err != nil {
			return err
		}
		nonZero := false
		for i := range data {
			if data[i] != 0 {
				data[i] *= factor
				nonZero = true
			}
		}
		if !nonZero {
			continue
		}
		if err := s.store.WriteTile(block, data); err != nil {
			return err
		}
	}
	return nil
}

// RollupFromStore computes the transform of the dataset summed over
// dimension dim, reading only the coefficients whose index along dim is
// zero — one hyperplane of the transform, not the whole store. Standard
// form only. It returns the reduced in-memory transform and the number of
// blocks read.
func (s *Store) RollupFromStore(dim int) (*Array, int, error) {
	tiling, ok := s.tiling.(*tile.Standard)
	if !ok {
		return nil, 0, fmt.Errorf("shiftsplit: RollupFromStore requires the standard form")
	}
	d := tiling.Dims()
	if dim < 0 || dim >= d {
		return nil, 0, fmt.Errorf("shiftsplit: roll-up dimension %d out of range", dim)
	}
	if d < 2 {
		return nil, 0, fmt.Errorf("shiftsplit: roll-up needs at least 2 dimensions")
	}
	outShape := make([]int, 0, d-1)
	for i, e := range s.opts.Shape {
		if i != dim {
			outShape = append(outShape, e)
		}
	}
	out := NewArray(outShape...)
	reader := tile.NewReader(s.store)
	scale := float64(s.opts.Shape[dim])
	src := make([]int, d)
	var rerr error
	out.Each(func(coords []int, _ float64) {
		if rerr != nil {
			return
		}
		for i, c := range coords {
			if i < dim {
				src[i] = c
			} else {
				src[i+1] = c
			}
		}
		src[dim] = 0
		v, err := reader.Get(src)
		if err != nil {
			rerr = err
			return
		}
		out.Set(scale*v, coords...)
	})
	if rerr != nil {
		return nil, reader.BlocksRead(), rerr
	}
	return out, reader.BlocksRead(), nil
}
