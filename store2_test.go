package shiftsplit

import (
	"math"
	"math/rand"
	"testing"
)

func TestClearBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	src := randArray(rng, 16, 16)
	for _, form := range []Form{Standard, NonStandard} {
		st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: form})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.TransformChunked(src, 2); err != nil {
			t.Fatal(err)
		}
		b := CubeBlock(2, 1, 2) // [4,8) x [8,12)
		if err := st.ClearBlock(b); err != nil {
			t.Fatal(err)
		}
		hat, err := st.ReadTransform()
		if err != nil {
			t.Fatal(err)
		}
		got := Inverse(hat, form)
		want := src.Clone()
		zero := NewArray(4, 4)
		want.SubPaste(zero, b.Start())
		if !got.EqualApprox(want, 1e-7) {
			t.Errorf("%v: ClearBlock result differs by %g", form, got.MaxAbsDiff(want))
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClearBlockIdempotentOnZeroRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	src := randArray(rng, 8, 8)
	st, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 1); err != nil {
		t.Fatal(err)
	}
	b := CubeBlock(1, 0, 0)
	if err := st.ClearBlock(b); err != nil {
		t.Fatal(err)
	}
	if err := st.ClearBlock(b); err != nil {
		t.Fatal(err)
	}
	vals, _, err := st.ExtractBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals.Data() {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("cleared region holds %g", v)
		}
	}
}

func TestStoreCacheReducesCountedIO(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	src := randArray(rng, 32, 32)

	measure := func(cache int) int64 {
		st, err := CreateStore(StoreOptions{Shape: []int{32, 32}, Form: Standard, CacheBlocks: cache})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if err := st.Materialize(src); err != nil {
			t.Fatal(err)
		}
		st.ResetStats()
		for trial := 0; trial < 200; trial++ {
			p := []int{rng.Intn(32), rng.Intn(32)}
			if _, _, err := st.Point(p...); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats().Reads
	}
	uncached := measure(0)
	cached := measure(64)
	if cached >= uncached {
		t.Errorf("cached reads %d not below uncached %d", cached, uncached)
	}
}

func TestStoreCacheFlushPersists(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	src := randArray(rng, 8, 8)
	st, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Writes == 0 {
		t.Error("flush wrote nothing through")
	}
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if !hat.EqualApprox(Transform(src, Standard), 1e-8) {
		t.Error("cached store transform wrong")
	}
}

func TestExtractBoxNonStandardFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	src := randArray(rng, 16, 16)
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: NonStandard})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	got, io, err := st.ExtractBox([]int{3, 5}, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if io <= 0 {
		t.Error("no I/O reported")
	}
	want := src.SubCopy([]int{3, 5}, []int{7, 9})
	if !got.EqualApprox(want, 1e-7) {
		t.Errorf("non-standard box differs by %g", got.MaxAbsDiff(want))
	}
}

func TestPointsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	src := randArray(rng, 32, 32)
	for _, form := range []Form{Standard, NonStandard} {
		for _, materialize := range []bool{false, true} {
			st, err := CreateStore(StoreOptions{Shape: []int{32, 32}, Form: form})
			if err != nil {
				t.Fatal(err)
			}
			if materialize {
				err = st.Materialize(src)
			} else {
				err = st.TransformChunked(src, 2)
			}
			if err != nil {
				t.Fatal(err)
			}
			var points [][]int
			for i := 0; i < 40; i++ {
				points = append(points, []int{rng.Intn(32), rng.Intn(32)})
			}
			vals, io, err := st.Points(points)
			if err != nil {
				t.Fatal(err)
			}
			if io <= 0 || io > st.NumBlocks() {
				t.Fatalf("%v mat=%v: batch read %d blocks", form, materialize, io)
			}
			for i, p := range points {
				if math.Abs(vals[i]-src.At(p...)) > 1e-7 {
					t.Fatalf("%v mat=%v point %v: %g vs %g", form, materialize, p, vals[i], src.At(p...))
				}
			}
			// Materialized standard stores answer from leaf tiles alone, so
			// the batch can never need more blocks than queries; root-path
			// batches share upper tiles but touch several blocks per query.
			if materialize && form == Standard && io > len(points) {
				t.Fatalf("%v mat=%v: %d blocks for %d queries", form, materialize, io, len(points))
			}
			st.Close()
		}
	}
}
