package shiftsplit

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// materializeServing builds a standard-form store on disk and reopens it
// through the concurrent serving path (cacheBlocks == 0 disables the cache).
func materializeServing(t testing.TB, shape []int, cacheBlocks, shards int) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stress.wav")
	st, err := CreateStore(StoreOptions{Shape: shape, Form: Standard, TileBits: 2, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(dataset.Dense(shape, 11)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := OpenServing(path, cacheBlocks, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serving.Close() })
	return serving
}

// TestConcurrentQueryStress hammers one store with mixed point, range-sum,
// progressive, and batch queries from many goroutines, with and without the
// serve cache, checking every answer against a single-threaded oracle. Run
// with -race this is the proof obligation for the parallel read path.
func TestConcurrentQueryStress(t *testing.T) {
	shape := []int{64, 64}
	src := dataset.Dense(shape, 11)
	for _, tc := range []struct {
		name          string
		cache, shards int
	}{
		{"NoCache", 0, 0},
		{"Cache", 64, 4}, // smaller than the 256-block store, so eviction churns
		{"CacheOneShard", 16, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := materializeServing(t, shape, tc.cache, tc.shards)
			const goroutines = 16
			iters := 60
			if testing.Short() {
				iters = 15
			}
			var wg sync.WaitGroup
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						switch rng.Intn(4) {
						case 0: // point query
							p := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
							got, _, err := st.Point(p...)
							if err != nil {
								errc <- err
								return
							}
							want := src.At(p...)
							if math.Abs(got-want) > 1e-6 {
								t.Errorf("point %v = %v, want %v", p, got, want)
							}
						case 1: // range sum
							s := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
							sh := []int{1 + rng.Intn(shape[0]-s[0]), 1 + rng.Intn(shape[1]-s[1])}
							got, _, err := st.RangeSum(s, sh)
							if err != nil {
								errc <- err
								return
							}
							want := src.SumRange(s, sh)
							if math.Abs(got-want) > 1e-4 {
								t.Errorf("sum[%v +%v] = %v, want %v", s, sh, got, want)
							}
						case 2: // progressive: final step must be exact
							s := []int{rng.Intn(shape[0] / 2), rng.Intn(shape[1] / 2)}
							sh := []int{1 + rng.Intn(shape[0]/2), 1 + rng.Intn(shape[1]/2)}
							var final ProgressiveStep
							err := st.ProgressiveRangeSumFunc(s, sh, func(step ProgressiveStep) error {
								final = step
								return nil
							})
							if err != nil {
								errc <- err
								return
							}
							want := src.SumRange(s, sh)
							if math.Abs(final.Estimate-want) > 1e-4 {
								t.Errorf("progressive[%v +%v] = %v, want %v", s, sh, final.Estimate, want)
							}
						case 3: // batched points
							pts := make([][]int, 4)
							for j := range pts {
								pts[j] = []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
							}
							vals, _, err := st.Points(pts)
							if err != nil {
								errc <- err
								return
							}
							for j, v := range vals {
								if want := src.At(pts[j]...); math.Abs(v-want) > 1e-6 {
									t.Errorf("points[%d] %v = %v, want %v", j, pts[j], v, want)
								}
							}
						}
					}
				}(int64(g + 1))
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			if tc.cache > 0 {
				cs, ok := st.CacheStats()
				if !ok {
					t.Fatal("cache stats unavailable on a cached store")
				}
				if cs.Hits == 0 {
					t.Error("stress run produced zero cache hits")
				}
				if cs.Resident > int64(tc.cache) {
					t.Errorf("resident %d exceeds capacity %d", cs.Resident, tc.cache)
				}
				t.Logf("cache: %.1f%% hit rate, %d loads, %d evictions",
					100*cs.HitRate, cs.Loads, cs.Evictions)
			}
		})
	}
}

// TestConcurrentInvalidation interleaves queriers with cache invalidation —
// the serving-side analogue of a maintenance cycle — and checks answers stay
// correct throughout.
func TestConcurrentInvalidation(t *testing.T) {
	shape := []int{32, 32}
	src := dataset.Dense(shape, 11)
	st := materializeServing(t, shape, 32, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	invDone := make(chan struct{})
	go func() {
		defer close(invDone)
		for {
			select {
			case <-stop:
				return
			default:
				st.InvalidateCache()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				p := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
				got, _, err := st.Point(p...)
				if err != nil {
					t.Error(err)
					return
				}
				if want := src.At(p...); math.Abs(got-want) > 1e-6 {
					t.Errorf("point %v = %v, want %v", p, got, want)
					return
				}
			}
		}(int64(g + 100))
	}
	wg.Wait()
	// The queriers are done; stop the invalidator and wait it out.
	close(stop)
	<-invDone
}
