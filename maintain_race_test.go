package shiftsplit

import (
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// TestParallelMaintenanceUnderConcurrentReads races the parallel maintenance
// engine against the concurrent serving read path on one durable store: while
// TransformChunkedOpts runs with a full worker pool, reader goroutines hammer
// point and range-sum queries through the sharded serve cache (whose inner
// reads go through storage.Locked) and another goroutine repeatedly
// invalidates the cache. Mid-maintenance answers are unspecified, so readers
// only require the calls not to fail; after the transform commits, the whole
// store is read back and checked against the in-memory transform oracle. Run
// with -race this is the proof obligation for maintenance/serving coexistence.
func TestParallelMaintenanceUnderConcurrentReads(t *testing.T) {
	shape := []int{32, 32}
	src := dataset.Dense(shape, 23)
	path := filepath.Join(t.TempDir(), "maintain.wav")
	st, err := CreateStore(StoreOptions{Shape: shape, Form: Standard, TileBits: 2, Path: path, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := OpenServing(path, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer serving.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					p := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
					if _, _, err := serving.Point(p...); err != nil {
						errc <- err
						return
					}
				} else {
					s := []int{rng.Intn(shape[0]), rng.Intn(shape[1])}
					sh := []int{1 + rng.Intn(shape[0]-s[0]), 1 + rng.Intn(shape[1]-s[1])}
					if _, _, err := serving.RangeSum(s, sh); err != nil {
						errc <- err
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				serving.InvalidateCache()
			}
		}
	}()

	merr := serving.TransformChunkedOpts(src, 2, MaintainOptions{Workers: runtime.NumCPU()})
	close(stop)
	wg.Wait()
	if merr != nil {
		t.Fatalf("TransformChunkedOpts under load: %v", merr)
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Oracle check: the committed transform must match the in-memory one.
	serving.InvalidateCache()
	got, err := serving.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	want := Transform(src, Standard)
	bad := 0
	want.Each(func(coords []int, v float64) {
		if math.Abs(got.At(coords...)-v) > 1e-6 {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("%d coefficients differ from the oracle after maintenance under load", bad)
	}
}
