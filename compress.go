package shiftsplit

import (
	"io"

	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/synopsis"
)

// CompressedTransform is a best-K-term approximation of a wavelet
// transform: the K coefficients whose omission costs the most squared
// error. Because the Haar basis is orthogonal the approximation's squared
// error equals DroppedEnergy exactly, so the quality of any synopsis size
// is known without reconstructing anything.
type CompressedTransform struct {
	inner *synopsis.Compressed
}

// Compress retains the k highest-energy coefficients of a transform
// (k <= 0 keeps everything).
func Compress(hat *Array, form Form, k int) *CompressedTransform {
	return &CompressedTransform{inner: synopsis.Compress(hat, form, k)}
}

// K returns the number of retained coefficients.
func (c *CompressedTransform) K() int { return c.inner.K() }

// Shape returns the original domain extents.
func (c *CompressedTransform) Shape() []int { return append([]int(nil), c.inner.Shape...) }

// Form returns the decomposition form.
func (c *CompressedTransform) Form() Form { return c.inner.Form }

// DroppedEnergy returns the exact squared error of the approximation.
func (c *CompressedTransform) DroppedEnergy() float64 { return c.inner.DroppedEnergy }

// RetainedEnergy returns the summed energy of the kept coefficients.
func (c *CompressedTransform) RetainedEnergy() float64 { return c.inner.RetainedEnergy() }

// Reconstruct inverts the approximation back to the data domain.
func (c *CompressedTransform) Reconstruct() *Array { return c.inner.Reconstruct() }

// PointValue evaluates one cell of the approximation from the retained
// coefficients alone.
func (c *CompressedTransform) PointValue(point []int) float64 { return c.inner.PointValue(point) }

// RangeSum evaluates an approximate box aggregate over [start, start+shape).
func (c *CompressedTransform) RangeSum(start, shape []int) float64 {
	return RangeSum(c.inner.Transform(), c.inner.Form, start, shape)
}

// SSE returns the exact squared error against the original data (equal to
// DroppedEnergy up to floating-point rounding).
func (c *CompressedTransform) SSE(orig *Array) float64 { return c.inner.SSE(orig) }

// WriteTo serializes the synopsis (a compact binary format).
func (c *CompressedTransform) WriteTo(w io.Writer) (int64, error) { return c.inner.WriteTo(w) }

// ReadCompressedTransform deserializes a synopsis written by WriteTo.
func ReadCompressedTransform(r io.Reader) (*CompressedTransform, error) {
	inner, err := synopsis.ReadCompressed(r)
	if err != nil {
		return nil, err
	}
	return &CompressedTransform{inner: inner}, nil
}

// ProgressiveStep is one refinement of a progressive range query.
type ProgressiveStep = query.ProgressiveStep

// ProgressiveRangeSum answers a box aggregate progressively (coarse
// coefficients first), returning the running estimates with cumulative I/O;
// the final step is exact. Standard form only.
func (s *Store) ProgressiveRangeSum(start, shape []int) ([]ProgressiveStep, error) {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.ProgressiveRangeSum(start, shape)
}

// ProgressiveRangeSumFunc is the streaming form of ProgressiveRangeSum: fn
// receives every refinement step as soon as it is computed, so a server can
// flush partial answers while later coefficients are still being read. A
// non-nil error from fn aborts the walk and is returned unchanged.
func (s *Store) ProgressiveRangeSumFunc(start, shape []int, fn func(ProgressiveStep) error) error {
	snap := s.AcquireSnapshot()
	defer snap.Release()
	return snap.ProgressiveRangeSumFunc(start, shape, fn)
}
