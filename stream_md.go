package shiftsplit

import (
	"github.com/shiftsplit/shiftsplit/internal/stream"
	"github.com/shiftsplit/shiftsplit/internal/synopsis"
)

type synopsisEntryMD = synopsis.Entry[stream.CoefMD]

// MDStreamEntry is one retained coefficient of a multidimensional stream
// synopsis. Cross identifies the spatial basis combination (row-major over
// the cross-section for the standard form; the flat within-hypercube
// coordinate for the non-standard form, with -1 marking time-tree
// coefficients); Time carries the temporal identity.
type MDStreamEntry struct {
	Cross  int
	Time   StreamCoef
	Value  float64
	Energy float64
}

// StandardStream maintains a best-K standard-form synopsis of a
// d-dimensional stream growing along time (paper Result 4). Its crest
// memory is O(N^(d-1) log T) — prohibitive unless the cross-section is
// small, exactly as the paper warns; prefer NonStandardStream otherwise.
type StandardStream struct {
	inner *stream.Standard
}

// NewStandardStream creates a Result-4 maintainer for the given
// cross-section shape (power-of-two extents), buffering 2^bufBits time
// slices, with synopsis capacity k (0 = unbounded).
func NewStandardStream(crossShape []int, bufBits, k int) *StandardStream {
	return &StandardStream{inner: stream.NewStandard(crossShape, bufBits, k)}
}

// AddSlice consumes one time slice (shape = crossShape).
func (s *StandardStream) AddSlice(slice *Array) error { return s.inner.AddSlice(slice) }

// Finish flushes the crest; the stream must stop at a buffer boundary.
func (s *StandardStream) Finish() error { return s.inner.Finish() }

// CrestMemory returns the coefficients currently buffered outside the
// synopsis (the R4 memory term).
func (s *StandardStream) CrestMemory() int { return s.inner.CrestMemory() }

// Entries returns the retained coefficients.
func (s *StandardStream) Entries() []MDStreamEntry { return convertMD(s.inner.Synopsis().Entries()) }

// PerItemCost returns crest updates and total operations per consumed cell.
func (s *StandardStream) PerItemCost() (crest, total float64) {
	c := s.inner.Costs()
	return c.PerItemCrest(), c.PerItemTotal()
}

// NonStandardStream maintains a best-K non-standard synopsis of a
// d-dimensional stream growing along time (paper Result 5): the stream is a
// sequence of cubic hypercubes fed as z-ordered chunks, and the crest
// memory is only O((2^d - 1) log(N/M) + log(T/N)).
type NonStandardStream struct {
	inner     *stream.NonStandard
	chunkEdge int
	side      int // chunks per hypercube edge
}

// NewNonStandardStream creates a Result-5 maintainer for hypercubes of edge
// 2^n in d dimensions, fed by chunks of edge 2^m, with synopsis capacity k.
func NewNonStandardStream(n, d, m, k int) *NonStandardStream {
	return &NonStandardStream{
		inner:     stream.NewNonStandard(n, d, m, k),
		chunkEdge: 1 << uint(m),
		side:      1 << uint(n-m),
	}
}

// NextChunkPos returns the chunk position (in chunk units) expected next.
func (s *NonStandardStream) NextChunkPos() []int { return s.inner.NextChunkPos() }

// AddChunk consumes the next z-ordered chunk of the current hypercube.
func (s *NonStandardStream) AddChunk(chunk *Array) error { return s.inner.AddChunk(chunk) }

// AddHypercube feeds a whole hypercube in the maintainer's expected
// z-ordered chunk sequence.
func (s *NonStandardStream) AddHypercube(cube *Array) error {
	d := cube.Dims()
	chunks := 1
	for i := 0; i < d; i++ {
		chunks *= s.side
	}
	start := make([]int, d)
	shape := make([]int, d)
	for i := range shape {
		shape[i] = s.chunkEdge
	}
	for c := 0; c < chunks; c++ {
		pos := s.inner.NextChunkPos()
		for i := range start {
			start[i] = pos[i] * s.chunkEdge
		}
		if err := s.inner.AddChunk(cube.SubCopy(start, shape)); err != nil {
			return err
		}
	}
	return nil
}

// Finish flushes the time chain; the stream must stop at a hypercube
// boundary.
func (s *NonStandardStream) Finish() error { return s.inner.Finish() }

// CrestMemory returns the R5 memory term.
func (s *NonStandardStream) CrestMemory() int { return s.inner.CrestMemory() }

// Entries returns the retained coefficients.
func (s *NonStandardStream) Entries() []MDStreamEntry {
	return convertMD(s.inner.Synopsis().Entries())
}

// PerItemCost returns crest updates and total operations per consumed cell.
func (s *NonStandardStream) PerItemCost() (crest, total float64) {
	c := s.inner.Costs()
	return c.PerItemCrest(), c.PerItemTotal()
}

func convertMD(raw []synopsisEntryMD) []MDStreamEntry {
	out := make([]MDStreamEntry, len(raw))
	for i, e := range raw {
		out[i] = MDStreamEntry{
			Cross:  e.Key.Cross,
			Time:   StreamCoef{Level: e.Key.Time.J, Pos: e.Key.Time.K, Avg: e.Key.Time.Avg},
			Value:  e.Value,
			Energy: e.Weight,
		}
	}
	return out
}
