package shiftsplit

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/query"
)

// mustOLAP unwraps an OLAP facade result whose inputs the test knows to be
// valid.
func mustOLAP(hat *Array, err error) *Array {
	if err != nil {
		panic(err)
	}
	return hat
}

func TestRollupFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := randArray(rng, 8, 16)
	hat := Transform(a, Standard)
	rolled := Inverse(mustOLAP(Rollup(hat, 1)), Standard)
	for i := 0; i < 8; i++ {
		want := 0.0
		for j := 0; j < 16; j++ {
			want += a.At(i, j)
		}
		if math.Abs(rolled.At(i)-want) > 1e-8 {
			t.Fatalf("row %d: %g vs %g", i, rolled.At(i), want)
		}
	}
}

func TestAverageOverFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randArray(rng, 4, 8)
	avg := Inverse(mustOLAP(AverageOver(Transform(a, Standard), 0)), Standard)
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			want += a.At(i, j) / 4
		}
		if math.Abs(avg.At(j)-want) > 1e-8 {
			t.Fatalf("col %d: %g vs %g", j, avg.At(j), want)
		}
	}
}

func TestSliceAtFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randArray(rng, 8, 8, 4)
	sl := Inverse(mustOLAP(SliceAt(Transform(a, Standard), 2, 3)), Standard)
	bad := 0
	sl.Each(func(coords []int, v float64) {
		if math.Abs(v-a.At(coords[0], coords[1], 3)) > 1e-8 {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d slice cells differ", bad)
	}
}

func TestTotalsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randArray(rng, 4, 8, 2)
	tot := Inverse(mustOLAP(Totals(Transform(a, Standard), 1)), Standard)
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			for k := 0; k < 2; k++ {
				want += a.At(i, j, k)
			}
		}
		if math.Abs(tot.At(j)-want) > 1e-7 {
			t.Fatalf("totals[%d]: %g vs %g", j, tot.At(j), want)
		}
	}
}

func TestOLAPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	hat := Transform(randArray(rng, 4, 8), Standard)
	flat := Transform(randArray(rng, 8), Standard)
	cases := []struct {
		name string
		err  error
	}{
		{"rollup dim high", func() error { _, err := Rollup(hat, 2); return err }()},
		{"rollup dim negative", func() error { _, err := Rollup(hat, -1); return err }()},
		{"rollup 1-d", func() error { _, err := Rollup(flat, 0); return err }()},
		{"average dim high", func() error { _, err := AverageOver(hat, 5); return err }()},
		{"slice dim high", func() error { _, err := SliceAt(hat, 3, 0); return err }()},
		{"slice index high", func() error { _, err := SliceAt(hat, 1, 8); return err }()},
		{"slice index negative", func() error { _, err := SliceAt(hat, 1, -1); return err }()},
		{"totals 1-d", func() error { _, err := Totals(flat, 0); return err }()},
		{"dice dim high", func() error { _, err := DiceDyadic(hat, 2, 0, 4); return err }()},
		{"dice unaligned", func() error { _, err := DiceDyadic(hat, 1, 3, 3); return err }()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !errors.Is(tc.err, query.ErrInvalid) {
			t.Errorf("%s: error %v does not wrap query.ErrInvalid", tc.name, tc.err)
		}
	}
}

func TestDiceDyadicFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randArray(rng, 16, 8)
	hat := Transform(a, Standard)
	diced, err := DiceDyadic(hat, 0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Transform(a.SubCopy([]int{8, 0}, []int{4, 8}), Standard)
	if !diced.EqualApprox(want, 1e-8) {
		t.Error("dice differs from sub-transform")
	}
	if _, err := DiceDyadic(hat, 0, 3, 4); err == nil {
		t.Error("unaligned dice accepted")
	}
	if _, err := DiceDyadic(hat, 0, 8, 16); err == nil {
		t.Error("overflowing dice accepted")
	}
	if _, err := DiceDyadic(hat, 5, 0, 4); err == nil {
		t.Error("bad dimension accepted")
	}
}
