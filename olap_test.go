package shiftsplit

import (
	"math"
	"math/rand"
	"testing"
)

func TestRollupFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := randArray(rng, 8, 16)
	hat := Transform(a, Standard)
	rolled := Inverse(Rollup(hat, 1), Standard)
	for i := 0; i < 8; i++ {
		want := 0.0
		for j := 0; j < 16; j++ {
			want += a.At(i, j)
		}
		if math.Abs(rolled.At(i)-want) > 1e-8 {
			t.Fatalf("row %d: %g vs %g", i, rolled.At(i), want)
		}
	}
}

func TestAverageOverFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randArray(rng, 4, 8)
	avg := Inverse(AverageOver(Transform(a, Standard), 0), Standard)
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			want += a.At(i, j) / 4
		}
		if math.Abs(avg.At(j)-want) > 1e-8 {
			t.Fatalf("col %d: %g vs %g", j, avg.At(j), want)
		}
	}
}

func TestSliceAtFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randArray(rng, 8, 8, 4)
	sl := Inverse(SliceAt(Transform(a, Standard), 2, 3), Standard)
	bad := 0
	sl.Each(func(coords []int, v float64) {
		if math.Abs(v-a.At(coords[0], coords[1], 3)) > 1e-8 {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d slice cells differ", bad)
	}
}

func TestTotalsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randArray(rng, 4, 8, 2)
	tot := Inverse(Totals(Transform(a, Standard), 1), Standard)
	for j := 0; j < 8; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			for k := 0; k < 2; k++ {
				want += a.At(i, j, k)
			}
		}
		if math.Abs(tot.At(j)-want) > 1e-7 {
			t.Fatalf("totals[%d]: %g vs %g", j, tot.At(j), want)
		}
	}
}

func TestDiceDyadicFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randArray(rng, 16, 8)
	hat := Transform(a, Standard)
	diced, err := DiceDyadic(hat, 0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Transform(a.SubCopy([]int{8, 0}, []int{4, 8}), Standard)
	if !diced.EqualApprox(want, 1e-8) {
		t.Error("dice differs from sub-transform")
	}
	if _, err := DiceDyadic(hat, 0, 3, 4); err == nil {
		t.Error("unaligned dice accepted")
	}
	if _, err := DiceDyadic(hat, 0, 8, 16); err == nil {
		t.Error("overflowing dice accepted")
	}
	if _, err := DiceDyadic(hat, 5, 0, 4); err == nil {
		t.Error("bad dimension accepted")
	}
}
