package shiftsplit

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddSubtractStore(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := randArray(rng, 16, 16)
	b := randArray(rng, 16, 16)
	for _, form := range []Form{Standard, NonStandard} {
		sa, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: form})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: form})
		if err != nil {
			t.Fatal(err)
		}
		if err := sa.TransformChunked(a, 2); err != nil {
			t.Fatal(err)
		}
		if err := sb.TransformChunked(b, 2); err != nil {
			t.Fatal(err)
		}
		if err := sa.AddStore(sb); err != nil {
			t.Fatal(err)
		}
		sum := a.Clone()
		sum.SubAdd(b, []int{0, 0})
		hat, err := sa.ReadTransform()
		if err != nil {
			t.Fatal(err)
		}
		if !Inverse(hat, form).EqualApprox(sum, 1e-7) {
			t.Errorf("%v: AddStore wrong", form)
		}
		if err := sa.SubtractStore(sb); err != nil {
			t.Fatal(err)
		}
		hat, err = sa.ReadTransform()
		if err != nil {
			t.Fatal(err)
		}
		if !Inverse(hat, form).EqualApprox(a, 1e-7) {
			t.Errorf("%v: SubtractStore did not undo AddStore", form)
		}
		sa.Close()
		sb.Close()
	}
}

func TestAddStoreKeepsMaterialization(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randArray(rng, 16, 16)
	b := randArray(rng, 16, 16)
	sa, _ := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard})
	sb, _ := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard})
	defer sa.Close()
	defer sb.Close()
	if err := sa.Materialize(a); err != nil {
		t.Fatal(err)
	}
	if err := sb.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if err := sa.AddStore(sb); err != nil {
		t.Fatal(err)
	}
	// Single-block point queries must still be exact: the redundant scaling
	// slots combined linearly.
	for trial := 0; trial < 30; trial++ {
		p := []int{rng.Intn(16), rng.Intn(16)}
		v, io, err := sa.Point(p...)
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("point query cost %d blocks after AddStore", io)
		}
		want := a.At(p...) + b.At(p...)
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, v, want)
		}
	}
}

func TestAddStoreRejectsMismatch(t *testing.T) {
	sa, _ := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard})
	sb, _ := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard})
	sc, _ := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: NonStandard})
	sd, _ := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, TileBits: 3})
	defer sa.Close()
	defer sb.Close()
	defer sc.Close()
	defer sd.Close()
	if err := sa.AddStore(sb); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := sa.AddStore(sc); err == nil {
		t.Error("form mismatch accepted")
	}
	if err := sa.AddStore(sd); err == nil {
		t.Error("tiling mismatch accepted")
	}
}

func TestScaleStore(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randArray(rng, 8, 8)
	st, _ := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard})
	defer st.Close()
	if err := st.TransformChunked(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Scale(2.5); err != nil {
		t.Fatal(err)
	}
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	scaled := a.Clone()
	for i := range scaled.Data() {
		scaled.Data()[i] *= 2.5
	}
	if !Inverse(hat, Standard).EqualApprox(scaled, 1e-7) {
		t.Error("Scale wrong")
	}
}

func TestRollupFromStore(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randArray(rng, 16, 8)
	st, _ := CreateStore(StoreOptions{Shape: []int{16, 8}, Form: Standard})
	defer st.Close()
	if err := st.TransformChunked(a, 2); err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		reducedHat, io, err := st.RollupFromStore(dim)
		if err != nil {
			t.Fatal(err)
		}
		if io <= 0 || io > st.NumBlocks() {
			t.Fatalf("dim %d: read %d blocks", dim, io)
		}
		// The hyperplane is a strict subset of the store.
		if io == st.NumBlocks() {
			t.Errorf("dim %d: roll-up read every block", dim)
		}
		got := Inverse(reducedHat, Standard)
		other := 1 - dim
		want := NewArray(a.Extent(other))
		a.Each(func(coords []int, v float64) {
			want.Add(v, coords[other])
		})
		if !got.EqualApprox(want, 1e-7) {
			t.Errorf("dim %d: roll-up differs by %g", dim, got.MaxAbsDiff(want))
		}
	}
	if _, _, err := st.RollupFromStore(5); err == nil {
		t.Error("bad dimension accepted")
	}
}
