package shiftsplit

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func randArray(rng *rand.Rand, shape ...int) *Array {
	a := NewArray(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

func TestTransformInverseBothForms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randArray(rng, 16, 16)
	for _, form := range []Form{Standard, NonStandard} {
		back := Inverse(Transform(a, form), form)
		if !back.EqualApprox(a, 1e-9) {
			t.Errorf("%v round trip failed", form)
		}
	}
}

func TestBlockHelpers(t *testing.T) {
	b := CubeBlock(2, 1, 3)
	if s := b.Start(); s[0] != 4 || s[1] != 12 {
		t.Errorf("Start = %v", s)
	}
	if s := b.Shape(); s[0] != 4 || s[1] != 4 {
		t.Errorf("Shape = %v", s)
	}
	b2, err := BlockAt([]int{4, 12}, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Levels[0] != 2 || b2.Pos[1] != 3 {
		t.Errorf("BlockAt = %+v", b2)
	}
	if _, err := BlockAt([]int{3, 0}, []int{4, 4}); err == nil {
		t.Error("unaligned block accepted")
	}
	if _, err := BlockAt([]int{0}, []int{4, 4}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestMergeExtractRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, form := range []Form{Standard, NonStandard} {
		aHat := NewArray(16, 16)
		blockData := randArray(rng, 4, 4)
		bHat := Transform(blockData, form)
		b := CubeBlock(2, 1, 2)
		if err := Merge(aHat, form, b, bHat); err != nil {
			t.Fatal(err)
		}
		got, err := Extract(aHat, form, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(bHat, 1e-9) {
			t.Errorf("%v merge/extract round trip failed", form)
		}
		// The merged transform must invert to the padded block.
		full := Inverse(aHat, form)
		want := NewArray(16, 16)
		want.SubPaste(blockData, b.Start())
		if !full.EqualApprox(want, 1e-8) {
			t.Errorf("%v merged transform does not invert to padded data", form)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	aHat := NewArray(8, 8)
	bHat := NewArray(4, 4)
	if err := Merge(aHat, Standard, Block{Levels: []int{2, 2}, Pos: []int{5, 0}}, bHat); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := Merge(aHat, Standard, CubeBlock(1, 0, 0), bHat); err == nil {
		t.Error("mismatched block transform accepted")
	}
	if err := Merge(aHat, NonStandard, Block{Levels: []int{2, 1}, Pos: []int{0, 0}}, NewArray(4, 2)); err == nil {
		t.Error("non-cubic non-standard block accepted")
	}
}

func TestBlockAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 8, 8)
	b := CubeBlock(1, 2, 3)
	want := a.SumRange(b.Start(), b.Shape()) / 4
	for _, form := range []Form{Standard, NonStandard} {
		got, err := BlockAverage(Transform(a, form), form, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("%v BlockAverage = %g, want %g", form, got, want)
		}
	}
}

func TestPointValueAndRangeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randArray(rng, 16, 16)
	for _, form := range []Form{Standard, NonStandard} {
		hat := Transform(a, form)
		for trial := 0; trial < 20; trial++ {
			p := []int{rng.Intn(16), rng.Intn(16)}
			if got := PointValue(hat, form, p); math.Abs(got-a.At(p...)) > 1e-8 {
				t.Fatalf("%v point %v: %g vs %g", form, p, got, a.At(p...))
			}
			s := []int{rng.Intn(16), rng.Intn(16)}
			sh := []int{1 + rng.Intn(16-s[0]), 1 + rng.Intn(16-s[1])}
			if got := RangeSum(hat, form, s, sh); math.Abs(got-a.SumRange(s, sh)) > 1e-6 {
				t.Fatalf("%v box %v+%v: %g vs %g", form, s, sh, got, a.SumRange(s, sh))
			}
		}
	}
}

func TestStoreLifecycleStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randArray(rng, 32, 32)
	st, err := CreateStore(StoreOptions{Shape: []int{32, 32}, Form: Standard, TileBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Materialize(src); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()

	// Single-block point queries.
	for trial := 0; trial < 20; trial++ {
		p := []int{rng.Intn(32), rng.Intn(32)}
		v, io, err := st.Point(p...)
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("materialized point query cost %d blocks", io)
		}
		if math.Abs(v-src.At(p...)) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, v, src.At(p...))
		}
	}
	// Range sums.
	v, _, err := st.RangeSum([]int{4, 8}, []int{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := src.SumRange([]int{4, 8}, []int{10, 5}); math.Abs(v-want) > 1e-6 {
		t.Errorf("range sum %g, want %g", v, want)
	}
	// Partial reconstruction.
	vals, _, err := st.ExtractBlock(CubeBlock(3, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !vals.EqualApprox(src.SubCopy([]int{8, 16}, []int{8, 8}), 1e-8) {
		t.Error("ExtractBlock wrong")
	}
	box, _, err := st.ExtractBox([]int{3, 5}, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !box.EqualApprox(src.SubCopy([]int{3, 5}, []int{7, 9}), 1e-8) {
		t.Error("ExtractBox wrong")
	}
	if st.Stats().Total() == 0 {
		t.Error("no I/O counted")
	}
}

func TestStoreChunkedNonStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := randArray(rng, 16, 16)
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: NonStandard, TileBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if !hat.EqualApprox(Transform(src, NonStandard), 1e-8) {
		t.Error("chunked transform differs from offline transform")
	}
	// Root-path point query works without materialization.
	p := []int{5, 11}
	v, _, err := st.Point(p...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-src.At(p...)) > 1e-8 {
		t.Errorf("point %v = %g, want %g", p, v, src.At(p...))
	}
}

func TestStoreMergeBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randArray(rng, 16, 16)
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	delta := randArray(rng, 4, 4)
	b := CubeBlock(2, 2, 1)
	if err := st.MergeBlock(b, Transform(delta, Standard)); err != nil {
		t.Fatal(err)
	}
	updated := src.Clone()
	updated.SubAdd(delta, b.Start())
	hat, err := st.ReadTransform()
	if err != nil {
		t.Fatal(err)
	}
	if !hat.EqualApprox(Transform(updated, Standard), 1e-8) {
		t.Error("MergeBlock does not match re-transform of updated data")
	}
}

func TestStoreFileBacked(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := randArray(rng, 16, 16)
	path := filepath.Join(t.TempDir(), "cube.wav")
	st, err := CreateStore(StoreOptions{Shape: []int{16, 16}, Form: Standard, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(src); err != nil {
		t.Fatal(err)
	}
	v, io, err := st.Point(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if io != 1 || math.Abs(v-src.At(7, 9)) > 1e-8 {
		t.Errorf("file-backed point query: v=%g io=%d", v, io)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := CreateStore(StoreOptions{Shape: nil, Form: Standard}); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := CreateStore(StoreOptions{Shape: []int{12}, Form: Standard}); err == nil {
		t.Error("non-power-of-two shape accepted")
	}
	if _, err := CreateStore(StoreOptions{Shape: []int{8, 16}, Form: NonStandard}); err == nil {
		t.Error("non-cubic non-standard shape accepted")
	}
}

func TestAppenderFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, err := NewAppender([]int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1 := randArray(rng, 8, 8)
	res, err := a.Append(1, s1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expansions != 0 {
		t.Errorf("unexpected expansion: %+v", res)
	}
	s2 := randArray(rng, 8, 8)
	res, err = a.Append(1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expansions != 1 || res.ExpansionIO.Total() == 0 {
		t.Errorf("expected one costed expansion: %+v", res)
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want := NewArray(8, 16)
	want.SubPaste(s1, []int{0, 0})
	want.SubPaste(s2, []int{0, 8})
	if !got.EqualApprox(want, 1e-8) {
		t.Error("appender reconstruction wrong")
	}
	if a.TotalIO().Total() == 0 {
		t.Error("no I/O recorded")
	}
	if sh := a.Shape(); sh[1] != 16 {
		t.Errorf("Shape = %v", sh)
	}
	if u := a.Used(); u[1] != 16 {
		t.Errorf("Used = %v", u)
	}
}

func TestStreamSynopsisFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := NewStreamSynopsis(16, 4)
	n := 1 << 12
	for i := 0; i < n; i++ {
		s.Add(rng.NormFloat64())
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if s.Items() != int64(n) {
		t.Errorf("Items = %d", s.Items())
	}
	entries := s.Entries()
	if len(entries) != 16 {
		t.Errorf("retained %d entries", len(entries))
	}
	for _, e := range entries {
		if e.Energy < 0 {
			t.Error("negative energy")
		}
	}
	crest, total := s.PerItemCost()
	if crest <= 0 || total <= crest {
		t.Errorf("costs: crest=%g total=%g", crest, total)
	}
	if crest > 1 {
		t.Errorf("buffered crest cost %g should be well below 1 for B=16", crest)
	}
}
