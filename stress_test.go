package shiftsplit

import (
	"math/rand"
	"testing"
)

// TestLargeScaleEndToEnd runs the full pipeline at a scale closer to the
// paper's (a quarter-million cells): chunked bulk load, materialization,
// queries, updates, and extraction. Skipped in -short mode.
func TestLargeScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test in -short mode")
	}
	rng := rand.New(rand.NewSource(90))
	const n = 512 // 512x512 = 262144 cells
	src := NewArray(n, n)
	for i := range src.Data() {
		src.Data()[i] = rng.NormFloat64()
	}

	st, err := CreateStore(StoreOptions{Shape: []int{n, n}, Form: Standard, TileBits: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 5); err != nil { // 32x32 chunks
		t.Fatal(err)
	}

	// Spot-check queries against the source.
	for trial := 0; trial < 50; trial++ {
		s := []int{rng.Intn(n), rng.Intn(n)}
		sh := []int{1 + rng.Intn(n-s[0]), 1 + rng.Intn(n-s[1])}
		got, _, err := st.RangeSum(s, sh)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SumRange(s, sh)
		if diff := got - want; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("box %v+%v: %g vs %g", s, sh, got, want)
		}
	}

	// A large batched update.
	delta := NewArray(64, 64)
	for i := range delta.Data() {
		delta.Data()[i] = rng.NormFloat64()
	}
	blk := CubeBlock(6, 3, 5)
	if err := st.MergeBlock(blk, Transform(delta, Standard)); err != nil {
		t.Fatal(err)
	}
	src.SubAdd(delta, blk.Start())

	// Extraction after the update.
	vals, io, err := st.ExtractBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.EqualApprox(src.SubCopy(blk.Start(), blk.Shape()), 1e-6) {
		t.Fatal("extraction after large update differs")
	}
	if io >= st.NumBlocks()/4 {
		t.Errorf("extraction read %d of %d blocks", io, st.NumBlocks())
	}
}

// TestLargeScaleNonStandard4D exercises a 4-d non-standard pipeline.
func TestLargeScaleNonStandard4D(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test in -short mode")
	}
	rng := rand.New(rand.NewSource(91))
	const e = 16 // 16^4 = 65536 cells
	src := NewArray(e, e, e, e)
	for i := range src.Data() {
		src.Data()[i] = rng.NormFloat64()
	}
	st, err := CreateStore(StoreOptions{Shape: []int{e, e, e, e}, Form: NonStandard, TileBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.TransformChunked(src, 2); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Reads != 0 {
		t.Errorf("4-d crest load performed %d reads", st.Stats().Reads)
	}
	for trial := 0; trial < 20; trial++ {
		p := []int{rng.Intn(e), rng.Intn(e), rng.Intn(e), rng.Intn(e)}
		v, _, err := st.Point(p...)
		if err != nil {
			t.Fatal(err)
		}
		if diff := v - src.At(p...); diff > 1e-7 || diff < -1e-7 {
			t.Fatalf("point %v: %g vs %g", p, v, src.At(p...))
		}
	}
	sum, _, err := st.RangeSum([]int{2, 0, 5, 1}, []int{9, 16, 4, 12})
	if err != nil {
		t.Fatal(err)
	}
	want := src.SumRange([]int{2, 0, 5, 1}, []int{9, 16, 4, 12})
	if diff := sum - want; diff > 1e-5 || diff < -1e-5 {
		t.Fatalf("4-d range sum %g vs %g", sum, want)
	}
}
