// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index) and prints
// them as aligned text or markdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/shiftsplit/shiftsplit/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	only := flag.String("only", "", "run only experiments whose title contains this substring (case-insensitive)")
	flag.Parse()

	tables, err := experiments.All()
	matched := 0
	for _, t := range tables {
		if *only != "" && !strings.Contains(strings.ToLower(t.Title), strings.ToLower(*only)) {
			continue
		}
		matched++
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			if _, werr := t.WriteTo(os.Stdout); werr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", werr)
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches -only %q\n", *only)
		os.Exit(1)
	}
}
