package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"64x64", []int{64, 64}, false},
		{"5,7", []int{5, 7}, false},
		{"16x16x16x16", []int{16, 16, 16, 16}, false},
		{"8", []int{8}, false},
		{"", nil, true},
		{"a,b", nil, true},
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseInts(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseInts(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseInts(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestParseForm(t *testing.T) {
	if f, err := parseForm("standard"); err != nil || f != shiftsplit.Standard {
		t.Error("standard form parse failed")
	}
	if f, err := parseForm("non-standard"); err != nil || f != shiftsplit.NonStandard {
		t.Error("non-standard form parse failed")
	}
	if f, err := parseForm("nonstandard"); err != nil || f != shiftsplit.NonStandard {
		t.Error("nonstandard alias parse failed")
	}
	if _, err := parseForm("wavelets"); err == nil {
		t.Error("garbage form accepted")
	}
}

func TestTransformAndQueryCommands(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "t.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2", "-tile", "2"}); err != nil {
		t.Fatalf("transform: %v", err)
	}
	if _, err := os.Stat(store); err != nil {
		t.Fatalf("store file missing: %v", err)
	}
	if err := cmdQuery([]string{"-store", store, "-point", "3,5"}); err != nil {
		t.Fatalf("point query: %v", err)
	}
	if err := cmdQuery([]string{"-store", store, "-start", "0,0", "-extent", "8,8"}); err != nil {
		t.Fatalf("range query: %v", err)
	}
	if err := cmdQuery([]string{"-store", store}); err == nil {
		t.Error("query without selector accepted")
	}
	if err := cmdExtract([]string{"-store", store, "-start", "4,4", "-extent", "4,4"}); err != nil {
		t.Fatalf("extract: %v", err)
	}
	// Non-dyadic extract falls back to box extraction.
	if err := cmdExtract([]string{"-store", store, "-start", "3,4", "-extent", "5,4"}); err != nil {
		t.Fatalf("box extract: %v", err)
	}
}

func TestAppendAndStreamCommands(t *testing.T) {
	if err := cmdAppend([]string{"-months", "3", "-tile", "1"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := cmdStream([]string{"-n", "4096", "-buf", "3", "-k", "8"}); err != nil {
		t.Fatalf("stream: %v", err)
	}
}

func TestTransformRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	if err := cmdTransform([]string{"-out", filepath.Join(dir, "x.wav"), "-shape", "15x15"}); err == nil {
		t.Error("non-power-of-two shape accepted")
	}
	if err := cmdTransform([]string{"-out", filepath.Join(dir, "x.wav"), "-shape", "16x16", "-form", "bogus"}); err == nil {
		t.Error("bogus form accepted")
	}
	if err := cmdTransform([]string{"-out", filepath.Join(dir, "x.wav"), "-shape", "16x16", "-data", "bogus"}); err == nil {
		t.Error("bogus dataset accepted")
	}
}

func TestCompressAndApproxCommands(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "c.wav")
	syn := filepath.Join(dir, "c.syn")
	if err := cmdTransform([]string{"-out", store, "-shape", "32x32", "-chunk", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompress([]string{"-store", store, "-out", syn, "-k", "64"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(syn); err != nil {
		t.Fatalf("synopsis file missing: %v", err)
	}
	if err := cmdApprox([]string{"-syn", syn, "-point", "5,7"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdApprox([]string{"-syn", syn, "-start", "0,0", "-extent", "16,16"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdApprox([]string{"-syn", syn}); err == nil {
		t.Error("approx without selector accepted")
	}
}

func TestInfoCommand(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "i.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-store", store}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-store", filepath.Join(dir, "missing.wav")}); err == nil {
		t.Error("missing store accepted")
	}
}

func TestDurableTransformFsckRecover(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "d.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2", "-durable"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store + ".wal"); err != nil {
		t.Fatalf("journal sidecar missing: %v", err)
	}
	if err := cmdFsck([]string{"-store", store}); err != nil {
		t.Fatalf("fsck on a clean store: %v", err)
	}
	if err := cmdRecover([]string{"-store", store}); err != nil {
		t.Fatalf("recover on a clean store: %v", err)
	}
	// Queries work the same on a durable store.
	if err := cmdQuery([]string{"-store", store, "-point", "3,5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-store", store}); err != nil {
		t.Fatal(err)
	}
}

func TestFsckRejectsPlainStore(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "p.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdFsck([]string{"-store", store}); err == nil {
		t.Error("fsck accepted a non-durable store")
	}
}

func TestFsckFlagsTamperedStore(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "d.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2", "-durable"}); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the data file.
	f, err := os.OpenFile(store, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAB}, 200); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := cmdFsck([]string{"-store", store}); err == nil {
		t.Error("fsck passed a tampered store")
	}
}

func exitCodeOf(err error) int {
	if err == nil {
		return exitOK
	}
	var xe *exitError
	if errors.As(err, &xe) {
		return xe.code
	}
	return exitFailure
}

func TestFsckExitCodesAndScrub(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "d.wav")
	if err := cmdTransform([]string{"-out", store, "-shape", "16x16", "-chunk", "2", "-durable"}); err != nil {
		t.Fatal(err)
	}
	if code := exitCodeOf(cmdFsck([]string{"-store", store})); code != exitOK {
		t.Fatalf("clean fsck exit code %d, want %d", code, exitOK)
	}

	// Rot the medium: fsck must exit with the corruption code, and -scrub
	// must persist the quarantine so a reopened store starts degraded.
	f, err := os.OpenFile(store, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAB}, 200); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if code := exitCodeOf(cmdFsck([]string{"-store", store})); code != exitCorrupt {
		t.Fatalf("corrupt fsck exit code %d, want %d", code, exitCorrupt)
	}
	if code := exitCodeOf(cmdFsck([]string{"-store", store, "-scrub"})); code != exitCorrupt {
		t.Fatalf("corrupt fsck -scrub exit code %d, want %d", code, exitCorrupt)
	}
	st, err := shiftsplit.OpenStore(store)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Quarantined()) == 0 {
		t.Fatal("fsck -scrub did not persist the quarantine")
	}
	if st.Health().Status != "degraded" {
		t.Fatalf("reopened store health = %+v", st.Health())
	}
}
