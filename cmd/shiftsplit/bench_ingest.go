package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/server"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// benchIngestBaseline is the JSON record bench-ingest writes: the
// fsync-amortization evidence (appends per journal group), throughput,
// and the commit latency distribution, plus enough configuration to
// rerun the measurement.
type benchIngestBaseline struct {
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	Cross       int     `json:"cross"`
	TileBits    int     `json:"tile_bits"`
	Durable     bool    `json:"durable"`
	FlushMillis float64 `json:"flush_ms"`
	MaxBatch    int     `json:"max_batch_slabs"`

	CommittedSlabs         int64   `json:"committed_slabs"`
	CommittedCells         int64   `json:"committed_cells"`
	Groups                 int64   `json:"groups"`
	JournalGroups          int64   `json:"journal_groups"`
	AppendsPerJournalGroup float64 `json:"appends_per_journal_group"`
	Expansions             int64   `json:"expansions"`

	SlabsPerSec float64 `json:"slabs_per_sec"`
	ItemsPerSec float64 `json:"items_per_sec"`

	CommitP50Millis float64 `json:"commit_p50_ms"`
	CommitP99Millis float64 `json:"commit_p99_ms"`

	HTTPOK           int64 `json:"http_ok"`
	HTTPBackpressure int64 `json:"http_backpressure"`
	HTTPFailed       int64 `json:"http_failed"`

	MergeIO     storage.Stats `json:"merge_io"`
	ExpansionIO storage.Stats `json:"expansion_io"`
}

// cmdBenchIngest load-tests the write path: it mounts an ingester over a
// fresh appender (durable file backing by default, so journal groups pay
// real fsyncs), spins the HTTP server on a loopback port, and fires
// single-slab appends from many client goroutines. The figure of merit
// is appends-per-journal-group: how many client append calls one fsync
// pair absorbed.
func cmdBenchIngest(args []string) error {
	fs := flag.NewFlagSet("bench-ingest", flag.ExitOnError)
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	dur := fs.Duration("duration", 3*time.Second, "measurement duration")
	cross := fs.Int("cross", 8, "slab cross-section extent (power of two)")
	tile := fs.Int("tile", 2, "per-dimension tile edge exponent")
	flush := fs.Duration("flush", 2*time.Millisecond, "group-gathering window")
	batch := fs.Int("batch", 64, "max slabs per group commit")
	mem := fs.Bool("mem", false, "in-memory backing instead of a durable temp store")
	out := fs.String("out", "", "write a JSON baseline to this path")
	minAmort := fs.Float64("min-amortization", 0, "fail unless appends-per-journal-group reaches this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The appender under test: a [cross, cross] domain growing along dim 1,
	// one slab = one [cross, 1] column.
	var backing appender.Backing
	if !*mem {
		dir, err := os.MkdirTemp("", "shiftsplit-bench-ingest")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		backing = func(gen, bs int) (storage.BlockStore, error) {
			return storage.CreateDurable(filepath.Join(dir, fmt.Sprintf("gen%d.wav", gen)), bs, nil)
		}
	}
	app, err := appender.NewWithBacking([]int{*cross, *cross}, *tile, backing)
	if err != nil {
		return err
	}
	in, err := ingest.New(app, ingest.Config{
		Dim:           1,
		FlushInterval: *flush,
		MaxBatchSlabs: *batch,
	})
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }() // drained before stats below; idempotent

	// The read store beside it only exists so the server has something to
	// serve; the benchmark never queries it.
	tmp, err := buildBenchStore(false)
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	st, err := shiftsplit.OpenServing(tmp+"/bench.wav", 64, 0)
	if err != nil {
		return err
	}
	defer st.Close()

	srv := server.New(st, server.Config{MaxConcurrent: *clients * 2, Ingest: in})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String() + "/v1/ingest"

	var ok, backpressure, failed atomic.Int64
	begin := time.Now()
	stopAt := begin.Add(*dur)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			client := &http.Client{}
			rng := uint64(seed)*2654435761 + 12345
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			vals := make([]float64, *cross)
			for time.Now().Before(stopAt) {
				for i := range vals {
					vals[i] = float64(next(1000)) / 10
				}
				body, _ := json.Marshal(map[string]any{
					"shape":  []int{*cross, 1},
					"values": vals,
				})
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					backpressure.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c + 1)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	cancel()
	if err := <-done; err != nil {
		return err
	}
	if err := in.Close(); err != nil { // drain stragglers before the snapshot
		return err
	}

	ist := in.Stats()
	base := benchIngestBaseline{
		Clients:                *clients,
		DurationSec:            elapsed.Seconds(),
		Cross:                  *cross,
		TileBits:               *tile,
		Durable:                !*mem,
		FlushMillis:            flush.Seconds() * 1e3,
		MaxBatch:               *batch,
		CommittedSlabs:         ist.CommittedSlabs,
		CommittedCells:         ist.CommittedCells,
		Groups:                 ist.Groups,
		JournalGroups:          ist.DeviceIO.Commits,
		AppendsPerJournalGroup: ist.AppendsPerJournalGroup,
		Expansions:             ist.Expansions,
		SlabsPerSec:            float64(ist.CommittedSlabs) / elapsed.Seconds(),
		ItemsPerSec:            float64(ist.CommittedCells) / elapsed.Seconds(),
		CommitP50Millis:        ist.CommitP50Millis,
		CommitP99Millis:        ist.CommitP99Millis,
		HTTPOK:                 ok.Load(),
		HTTPBackpressure:       backpressure.Load(),
		HTTPFailed:             failed.Load(),
		MergeIO:                ist.MergeIO,
		ExpansionIO:            ist.ExpansionIO,
	}

	fmt.Printf("bench-ingest: %d slabs (%d cells) committed in %.2fs from %d clients\n",
		base.CommittedSlabs, base.CommittedCells, base.DurationSec, base.Clients)
	fmt.Printf("throughput:   %.0f slabs/sec, %.0f items/sec (%d ok, %d shed, %d failed)\n",
		base.SlabsPerSec, base.ItemsPerSec, base.HTTPOK, base.HTTPBackpressure, base.HTTPFailed)
	fmt.Printf("group commit: %d groups, %d journal groups, %.1f appends per journal group\n",
		base.Groups, base.JournalGroups, base.AppendsPerJournalGroup)
	fmt.Printf("latency:      commit p50 %.2fms, p99 %.2fms\n",
		base.CommitP50Millis, base.CommitP99Millis)
	fmt.Printf("domain:       %v used of %v after %d expansions\n",
		ist.Used, ist.Shape, base.Expansions)
	fmt.Printf("I/O:          merge %d reads %d writes; expansion %d reads %d writes\n",
		base.MergeIO.Reads, base.MergeIO.Writes, base.ExpansionIO.Reads, base.ExpansionIO.Writes)

	if *out != "" {
		data, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline:     %s\n", *out)
	}
	if *minAmort > 0 && base.AppendsPerJournalGroup < *minAmort {
		return fmt.Errorf("appends per journal group %.2f below the required %.2f — group commit is not amortizing",
			base.AppendsPerJournalGroup, *minAmort)
	}
	return nil
}
