// Command shiftsplit is a workbench for the SHIFT-SPLIT library: it builds
// tiled wavelet stores from synthetic datasets, queries them, extracts
// regions, and demonstrates the appending and streaming maintenance
// scenarios of the paper, printing the block I/O each operation paid.
//
// Usage:
//
//	shiftsplit transform -out cube.wav -shape 64x64 -form standard -chunk 3
//	shiftsplit query -store cube.wav -point 5,7
//	shiftsplit query -store cube.wav -start 0,0 -extent 8,8
//	shiftsplit extract -store cube.wav -start 8,8 -extent 8,8
//	shiftsplit append -months 12 -tile 2
//	shiftsplit stream -n 65536 -k 64 -buf 4
//	shiftsplit compress -store cube.wav -k 128 -out cube.syn
//	shiftsplit approx -syn cube.syn -point 5,7
//	shiftsplit serve -store cube.wav -addr :8080 -cache 256
//	shiftsplit bench-serve -clients 8 -duration 3s
//	shiftsplit bench-ingest -clients 16 -duration 3s -out BENCH_ingest.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// Exit codes. Scripts branch on fsck/recover results, so the unhealthy
// states get distinct codes instead of a generic 1.
const (
	exitOK            = 0 // store is clean
	exitFailure       = 1 // generic error
	exitUsage         = 2 // bad invocation
	exitNeedsRecovery = 3 // a sealed journal batch awaits replay ('shiftsplit recover')
	exitCorrupt       = 4 // checksum failures or an unrecoverable journal
)

// exitError carries a specific process exit code up to main.
type exitError struct {
	code int
	msg  string
}

func (e *exitError) Error() string { return e.msg }

func exitf(code int, format string, args ...any) error {
	return &exitError{code: code, msg: fmt.Sprintf(format, args...)}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "transform":
		err = cmdTransform(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "extract":
		err = cmdExtract(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "stream":
		err = cmdStream(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "approx":
		err = cmdApprox(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench-serve":
		err = cmdBenchServe(os.Args[2:])
	case "bench-ingest":
		err = cmdBenchIngest(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "fsck":
		err = cmdFsck(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "shiftsplit: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftsplit:", err)
		code := exitFailure
		var xe *exitError
		if errors.As(err, &xe) {
			code = xe.code
		}
		os.Exit(code)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: shiftsplit <command> [flags]

commands:
  transform   build a tiled wavelet store from a synthetic dataset
  query       point or range-sum query against a store
  extract     partial reconstruction of a region (inverse SHIFT-SPLIT)
  append      demo: monthly appends in the wavelet domain (paper §5.2)
  stream      demo: best-K stream synopsis maintenance (Result 3)
  compress    build a best-K synopsis file from a store
  approx      answer queries from a synopsis file
  serve       expose a store over the HTTP/JSON query API
  bench-serve load-test the serving path, report qps and cache hit rate
  bench-ingest load-test the write path (group commit), report
              items/sec and appends per journal group
  info        print a store's geometry and metadata
  fsck        verify a durable store's checksums and journal (-scrub
              quarantines corrupt blocks); exit 0 clean, 3 needs
              recovery, 4 corrupt
  recover     replay or discard an interrupted batch, then re-verify

run 'shiftsplit <command> -h' for flags`)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == 'x' })
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func parseForm(s string) (shiftsplit.Form, error) {
	switch s {
	case "standard":
		return shiftsplit.Standard, nil
	case "non-standard", "nonstandard":
		return shiftsplit.NonStandard, nil
	default:
		return 0, fmt.Errorf("unknown form %q (want standard or non-standard)", s)
	}
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	out := fs.String("out", "cube.wav", "output store path")
	shapeStr := fs.String("shape", "64x64", "dataset shape, e.g. 64x64 or 16x16x16x16")
	formStr := fs.String("form", "standard", "decomposition form: standard | non-standard")
	tile := fs.Int("tile", 2, "per-dimension tile edge exponent b (blocks hold 2^(b*d) coefficients)")
	chunk := fs.Int("chunk", 3, "chunk edge exponent m (memory holds 2^(m*d) cells)")
	seed := fs.Int64("seed", 1, "dataset seed")
	kind := fs.String("data", "dense", "synthetic dataset: dense | temperature (4-d) | precipitation (3-d) | sparse")
	durable := fs.Bool("durable", false, "crash-safe store: checksummed blocks + write-ahead journal")
	mapped := fs.Bool("mapped", false, "serve block reads from a shared memory mapping (zero-copy, zero read syscalls when warm)")
	versioned := fs.Bool("versioned", false, "MVCC epoch store: maintenance builds the next epoch copy-on-write while readers pin consistent snapshots")
	workers := fs.Int("workers", 0, "worker goroutines for chunk transforms (0 = one per CPU, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shape, err := parseInts(*shapeStr)
	if err != nil {
		return err
	}
	form, err := parseForm(*formStr)
	if err != nil {
		return err
	}
	var src *shiftsplit.Array
	switch *kind {
	case "dense":
		src = dataset.Dense(shape, *seed)
	case "temperature":
		src = dataset.Temperature(shape, *seed)
	case "precipitation":
		src = dataset.Precipitation(shape, *seed)
	case "sparse":
		src = dataset.Sparse(shape, 0.1, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *kind)
	}
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: shape, Form: form, TileBits: *tile, Path: *out, Durable: *durable,
		Mapped: *mapped, Versioned: *versioned,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.TransformChunkedOpts(src, *chunk, shiftsplit.MaintainOptions{Workers: *workers}); err != nil {
		return err
	}
	stats := st.Stats()
	fmt.Printf("transformed %v cells (%s, %s form) into %s\n",
		shape, *kind, form, *out)
	if stats.MappedReads > 0 {
		fmt.Printf("blocks: %d of %d coefficients; I/O: %d reads (%d mapped), %d writes\n",
			st.NumBlocks(), st.BlockSize(), stats.Reads, stats.MappedReads, stats.Writes)
	} else {
		fmt.Printf("blocks: %d of %d coefficients; I/O: %d reads, %d writes\n",
			st.NumBlocks(), st.BlockSize(), stats.Reads, stats.Writes)
	}
	return st.Sync()
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	pointStr := fs.String("point", "", "point coordinates, e.g. 5,7")
	startStr := fs.String("start", "", "range start, e.g. 0,0")
	extentStr := fs.String("extent", "", "range extent, e.g. 8,8")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := shiftsplit.OpenStore(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	switch {
	case *pointStr != "":
		p, err := parseInts(*pointStr)
		if err != nil {
			return err
		}
		v, io, err := st.Point(p...)
		if err != nil {
			return err
		}
		fmt.Printf("a%v = %g   (%d block reads)\n", p, v, io)
		return nil
	case *startStr != "" && *extentStr != "":
		start, err := parseInts(*startStr)
		if err != nil {
			return err
		}
		extent, err := parseInts(*extentStr)
		if err != nil {
			return err
		}
		v, io, err := st.RangeSum(start, extent)
		if err != nil {
			return err
		}
		fmt.Printf("sum[%v +%v] = %g   (%d block reads)\n", start, extent, v, io)
		return nil
	default:
		return fmt.Errorf("need -point or -start/-extent")
	}
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	startStr := fs.String("start", "0,0", "region start")
	extentStr := fs.String("extent", "4,4", "region extent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := shiftsplit.OpenStore(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	start, err := parseInts(*startStr)
	if err != nil {
		return err
	}
	extent, err := parseInts(*extentStr)
	if err != nil {
		return err
	}
	var vals *shiftsplit.Array
	var io int
	if b, berr := shiftsplit.BlockAt(start, extent); berr == nil {
		vals, io, err = st.ExtractBlock(b)
	} else {
		vals, io, err = st.ExtractBox(start, extent)
	}
	if err != nil {
		return err
	}
	fmt.Printf("extracted %v cells with %d block reads (store has %d blocks)\n",
		extent, io, st.NumBlocks())
	if vals.Size() <= 64 {
		fmt.Println(vals)
	}
	return nil
}

func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	months := fs.Int("months", 12, "months of precipitation to append")
	tileBits := fs.Int("tile", 2, "per-dimension tile edge exponent")
	seed := fs.Int64("seed", 1, "dataset seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := shiftsplit.NewAppender([]int{8, 8, 32}, *tileBits)
	if err != nil {
		return err
	}
	full := dataset.Precipitation([]int{8, 8, 32 * *months}, *seed)
	fmt.Println("month  merge I/O  expansion I/O  domain")
	for mo := 0; mo < *months; mo++ {
		slab := full.SubCopy([]int{0, 0, mo * 32}, []int{8, 8, 32})
		res, err := app.Append(2, slab)
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %9d  %13d  %v\n",
			mo+1, res.MergeIO.Total(), res.ExpansionIO.Total(), app.Shape())
	}
	fmt.Printf("total I/O: %d blocks\n", app.TotalIO().Total())
	return nil
}

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	n := fs.Int("n", 1<<16, "stream length")
	k := fs.Int("k", 64, "synopsis size")
	bufBits := fs.Int("buf", 4, "buffer exponent: B = 2^buf items")
	seed := fs.Int64("seed", 1, "stream seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	syn := shiftsplit.NewStreamSynopsis(*k, *bufBits)
	for _, v := range dataset.RandomWalk(*n, *seed) {
		syn.Add(v)
	}
	if err := syn.Finish(); err != nil {
		return err
	}
	crest, total := syn.PerItemCost()
	fmt.Printf("streamed %d items, kept %d coefficients\n", syn.Items(), len(syn.Entries()))
	fmt.Printf("per-item cost: %.4f crest updates, %.4f total ops (B=%d)\n",
		crest, total, 1<<uint(*bufBits))
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	out := fs.String("out", "cube.syn", "synopsis output path")
	k := fs.Int("k", 128, "coefficients to retain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := shiftsplit.OpenStore(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	hat, err := st.ReadTransform()
	if err != nil {
		return err
	}
	c := shiftsplit.Compress(hat, st.Form(), *k)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := c.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("kept %d of %d coefficients (%d bytes); guaranteed SSE %.6g\n",
		c.K(), hat.Size(), n, c.DroppedEnergy())
	return nil
}

func cmdApprox(args []string) error {
	fs := flag.NewFlagSet("approx", flag.ExitOnError)
	syn := fs.String("syn", "cube.syn", "synopsis path")
	pointStr := fs.String("point", "", "point coordinates")
	startStr := fs.String("start", "", "range start")
	extentStr := fs.String("extent", "", "range extent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*syn)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := shiftsplit.ReadCompressedTransform(f)
	if err != nil {
		return err
	}
	switch {
	case *pointStr != "":
		p, err := parseInts(*pointStr)
		if err != nil {
			return err
		}
		fmt.Printf("a%v ~= %g   (from %d coefficients)\n", p, c.PointValue(p), c.K())
		return nil
	case *startStr != "" && *extentStr != "":
		start, err := parseInts(*startStr)
		if err != nil {
			return err
		}
		extent, err := parseInts(*extentStr)
		if err != nil {
			return err
		}
		fmt.Printf("sum[%v +%v] ~= %g   (from %d coefficients)\n",
			start, extent, c.RangeSum(start, extent), c.K())
		return nil
	default:
		return fmt.Errorf("need -point or -start/-extent")
	}
}

func printFsckReport(rep *shiftsplit.FsckReport) {
	fmt.Printf("store:    %s\n", rep.Path)
	fmt.Printf("blocks:   %d frames on disk, %d written, block size %d\n",
		rep.Blocks, rep.Written, rep.BlockSize)
	fmt.Printf("epoch:    %d\n", rep.MaxEpoch)
	switch {
	case !rep.JournalPresent:
		fmt.Println("journal:  missing (clean shutdown)")
	case rep.JournalErr != "":
		fmt.Printf("journal:  UNRECOVERABLE: %s\n", rep.JournalErr)
	case rep.JournalCommitted:
		fmt.Printf("journal:  sealed batch of %d blocks (epoch %d) awaits replay — run 'shiftsplit recover'\n",
			rep.JournalEntries, rep.JournalEpoch)
	case rep.JournalEntries > 0:
		fmt.Printf("journal:  unsealed batch of %d blocks (will be discarded on open)\n", rep.JournalEntries)
	default:
		fmt.Println("journal:  empty")
	}
	if rep.Versioned != nil {
		fmt.Printf("mvcc:     epoch %d, %d of %d logical blocks mapped over %d table pages (data from block %d)\n",
			rep.Versioned.Epoch, rep.Versioned.Mapped, rep.Versioned.Logical,
			rep.Versioned.TablePages, rep.Versioned.DataBase)
	}
	if len(rep.Corrupt) > 0 {
		fmt.Printf("CORRUPT:  %d blocks failed checksum verification: %v\n", len(rep.Corrupt), rep.Corrupt)
	}
	if rep.Clean() {
		fmt.Println("status:   clean")
	} else {
		fmt.Println("status:   NOT CLEAN")
	}
}

func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	scrub := fs.Bool("scrub", false, "additionally run an online scrub pass: quarantine corrupt blocks in the metadata sidecar and print the registry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := shiftsplit.Fsck(*store)
	if err != nil {
		return err
	}
	printFsckReport(rep)
	if *scrub {
		if err := fsckScrub(*store); err != nil {
			return err
		}
	}
	// Distinct exit codes so scripts can branch: corruption dominates a
	// pending journal batch (replaying onto rotten frames helps nobody).
	switch {
	case len(rep.Corrupt) > 0 || rep.JournalErr != "":
		return exitf(exitCorrupt, "%s is corrupt", *store)
	case rep.JournalCommitted:
		return exitf(exitNeedsRecovery, "%s has a sealed batch awaiting replay", *store)
	case !rep.Clean():
		return exitf(exitFailure, "%s is not clean", *store)
	}
	return nil
}

// fsckScrub opens the store and runs one scrubber pass, persisting the
// quarantine registry to the metadata sidecar so a later serving process
// starts degraded instead of trusting rotten frames.
func fsckScrub(path string) error {
	st, err := shiftsplit.OpenStore(path)
	if err != nil {
		return err
	}
	defer st.Close()
	n, err := st.ScrubOnce(context.Background())
	if err != nil {
		return err
	}
	stats, _ := st.ScrubStats()
	fmt.Printf("scrub:    %d blocks scanned, %d quarantined\n", stats.Scanned, n)
	for _, rec := range st.Quarantined() {
		fmt.Printf("          block %d: %s\n", rec.Block, rec.Reason)
	}
	return st.Sync()
}

func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := shiftsplit.OpenStore(*store)
	if err != nil {
		return err
	}
	if n, ok := st.Recovered(); ok {
		fmt.Printf("rolled forward an interrupted batch of %d blocks\n", n)
	} else {
		fmt.Println("no interrupted batch found")
	}
	if err := st.Close(); err != nil {
		return err
	}
	rep, err := shiftsplit.Fsck(*store)
	if err != nil {
		return err
	}
	printFsckReport(rep)
	if len(rep.Corrupt) > 0 || rep.JournalErr != "" {
		return exitf(exitCorrupt, "%s is corrupt after recovery", *store)
	}
	if !rep.Clean() {
		return exitf(exitFailure, "%s is not clean after recovery", *store)
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := shiftsplit.OpenStore(*store)
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("store:      %s\n", *store)
	fmt.Printf("form:       %s\n", st.Form())
	fmt.Printf("shape:      %v\n", st.Shape())
	fmt.Printf("blocks:     %d of %d coefficients (%d bytes each)\n",
		st.NumBlocks(), st.BlockSize(), 8*st.BlockSize())
	fmt.Printf("durable:    %v\n", st.Durable())
	fmt.Printf("mapped:     %v\n", st.Mapped())
	fmt.Printf("versioned:  %v\n", st.Versioned())
	if es, ok := st.EpochStats(); ok {
		fmt.Printf("epoch:      %d (oldest pinned %d, %d snapshot(s) held)\n",
			es.Epoch, es.OldestPinned, es.Pinned)
		fmt.Printf("physical:   %d blocks allocated, %d free, %d reclaimable when pins release\n",
			es.PhysBlocks, es.FreeBlocks, es.Reclaimable)
	}
	return nil
}
