package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/server"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// cmdServe exposes a materialized store over the HTTP/JSON query API and
// runs until SIGINT/SIGTERM, then drains in-flight queries.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	addr := fs.String("addr", ":8080", "listen address")
	cacheBlocks := fs.Int("cache", 256, "serve cache capacity in blocks (0 disables)")
	cacheShards := fs.Int("shards", 0, "cache shard count (0 picks a default)")
	maxConc := fs.Int("max-concurrent", 64, "queries executing at once before shedding 429s")
	timeout := fs.Duration("timeout", 10*time.Second, "per-query deadline")
	drain := fs.Duration("drain", 15*time.Second, "shutdown drain deadline")
	scrubEvery := fs.Duration("scrub-interval", 0, "background scrub: one full verification pass per interval (0 disables)")
	scrubRate := fs.Int("scrub-rate", 0, "scrub I/O ceiling in blocks/sec (0 = unlimited)")
	breaker := fs.Bool("breaker", false, "trip to cache-only serving when the backend fails repeatedly")
	ingestOn := fs.Bool("ingest", false, "mount the write path (POST /v1/ingest) over a fresh appender")
	ingestShape := fs.String("ingest-shape", "8x8", "initial ingest domain extents (powers of two)")
	ingestDim := fs.Int("ingest-dim", 1, "dimension ingest slabs append along")
	ingestTile := fs.Int("ingest-tile", 2, "ingest tile edge exponent")
	ingestDir := fs.String("ingest-dir", "", "directory for durable ingest generations (empty = in-memory)")
	ingestFlush := fs.Duration("ingest-flush", 2*time.Millisecond, "ingest group-gathering window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sopts := shiftsplit.ServeOptions{CacheBlocks: *cacheBlocks, CacheShards: *cacheShards}
	if *breaker {
		sopts.Breaker = &storage.BreakerOptions{}
	}
	st, err := shiftsplit.OpenServingOpts(*store, sopts)
	if err != nil {
		return err
	}
	defer st.Close()
	// The signal context is the process lifetime: the server drains on it,
	// and the background scrubber nests inside it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *scrubEvery > 0 {
		if err := st.StartScrub(ctx, *scrubEvery, *scrubRate); err != nil {
			return err
		}
	}
	// The write path rides beside the read store: a fresh appender whose
	// admission gate defers to the serving store's health, so ingest sheds
	// 503s while blocks are quarantined or the breaker is not closed.
	var in *ingest.Ingester
	if *ingestOn {
		shape, err := parseInts(*ingestShape)
		if err != nil {
			return fmt.Errorf("-ingest-shape: %w", err)
		}
		var backing appender.Backing
		if dir := *ingestDir; dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			backing = func(gen, bs int) (storage.BlockStore, error) {
				return storage.CreateDurable(filepath.Join(dir, fmt.Sprintf("gen%d.wav", gen)), bs, nil)
			}
		}
		app, err := appender.NewWithBacking(shape, *ingestTile, backing)
		if err != nil {
			return err
		}
		in, err = ingest.New(app, ingest.Config{
			Dim:           *ingestDim,
			FlushInterval: *ingestFlush,
			Gate: func() error {
				if h := st.Health(); h.Status != "ok" {
					return fmt.Errorf("%w: serving store is %s", storage.ErrUnavailable, h.Status)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = in.Close() }() // drains staged slabs; the process is exiting
	}
	srv := server.New(st, server.Config{
		Addr:          *addr,
		MaxConcurrent: *maxConc,
		QueryTimeout:  *timeout,
		DrainTimeout:  *drain,
		Ingest:        in,
		Log:           log.New(os.Stderr, "serve: ", log.LstdFlags),
	})
	return srv.ListenAndServe(ctx)
}

// benchPhase fires mixed point/range queries from clients goroutines for
// dur and returns the per-request latencies plus total/failed counts.
func benchPhase(base string, shape []int, clients int, dur time.Duration, rangeFrac, phaseSeed int) (lats []time.Duration, total, failed int64) {
	var totalN, failedN atomic.Int64
	latCh := make([]([]time.Duration), clients)
	stopAt := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(idx, seed int) {
			defer wg.Done()
			client := &http.Client{}
			mine := make([]time.Duration, 0, 4096)
			rng := uint64(seed)*2654435761 + 12345
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			for time.Now().Before(stopAt) {
				var url string
				var body []byte
				if next(100) < rangeFrac {
					start := make([]int, len(shape))
					extent := make([]int, len(shape))
					for i, n := range shape {
						start[i] = next(n / 2)
						extent[i] = 1 + next(n/2)
					}
					url = base + "/v1/rangesum"
					body, _ = json.Marshal(map[string]any{"start": start, "extent": extent})
				} else {
					p := make([]int, len(shape))
					for i, n := range shape {
						p[i] = next(n)
					}
					url = base + "/v1/point"
					body, _ = json.Marshal(map[string]any{"point": p})
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failedN.Add(1)
					continue
				}
				resp.Body.Close()
				mine = append(mine, time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					failedN.Add(1)
				}
				totalN.Add(1)
			}
			latCh[idx] = mine
		}(c, phaseSeed*1000+c+1)
	}
	wg.Wait()
	for _, l := range latCh {
		lats = append(lats, l...)
	}
	return lats, totalN.Load(), failedN.Load()
}

// percentile returns the p-quantile (0..1) of lats; 0 when empty.
func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// cmdBenchServe is the load generator: it spins up an in-process server on a
// loopback port, fires mixed queries from many goroutines for a fixed
// duration, and reports throughput plus the cache hit rate. With -maintain
// it runs the maintain-under-load scenario instead: three equal phases
// (idle, maintenance flipping epochs at full speed, after), reporting query
// p50/p99 for each — the MVCC acceptance number is the maintain/idle p99
// ratio.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	store := fs.String("store", "", "store path (empty builds a temporary 64x64 store)")
	cacheBlocks := fs.Int("cache", 256, "serve cache capacity in blocks (0 disables)")
	cacheShards := fs.Int("shards", 0, "cache shard count (0 picks a default)")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	dur := fs.Duration("duration", 3*time.Second, "measurement duration (per phase with -maintain)")
	rangeFrac := fs.Int("range-pct", 30, "percent of queries that are range sums (rest are points)")
	maintain := fs.Bool("maintain", false, "maintain-under-load: run SHIFT-SPLIT merge batches (epoch flips) at full speed during the middle phase; needs a versioned store")
	maxRatio := fs.Float64("max-p99-ratio", 0, "with -maintain: fail when the maintain-phase p99 exceeds this multiple of the idle p99 (0 disables; the bench-smoke guardrail)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *store
	if path == "" {
		tmp, err := buildBenchStore(*maintain)
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		path = tmp + "/bench.wav"
	}
	st, err := shiftsplit.OpenServing(path, *cacheBlocks, *cacheShards)
	if err != nil {
		return err
	}
	defer st.Close()
	if *maintain && !st.Versioned() {
		return fmt.Errorf("bench-serve -maintain needs a versioned store (transform -versioned); %s is not", path)
	}
	shape := st.Shape()
	srv := server.New(st, server.Config{MaxConcurrent: *clients * 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()
	base := "http://" + ln.Addr().String()

	if !*maintain {
		lats, total, failed := benchPhase(base, shape, *clients, *dur, *rangeFrac, 1)
		fmt.Printf("bench-serve: %d queries in %s from %d clients\n", total, *dur, *clients)
		fmt.Printf("throughput:  %.0f queries/sec (%d failed)\n",
			float64(total)/dur.Seconds(), failed)
		fmt.Printf("latency:     p50 %s, p99 %s\n", percentile(lats, 0.50), percentile(lats, 0.99))
		io := st.Stats()
		fmt.Printf("device I/O:  %d block reads\n", io.Reads)
		if cs, ok := st.CacheStats(); ok {
			fmt.Printf("cache:       %.1f%% hit rate (%d hits, %d misses, %d loads, %d evictions)\n",
				100*cs.HitRate, cs.Hits, cs.Misses, cs.Loads, cs.Evictions)
		} else {
			fmt.Println("cache:       disabled")
		}
		return nil
	}

	// Maintain-under-load. Warm the cache first so phase 1 measures the
	// steady serving state, not cold misses.
	if _, err := st.ReadTransform(); err != nil {
		return err
	}
	startEpoch := st.CurrentEpoch()

	idleLats, idleN, idleFailed := benchPhase(base, shape, *clients, *dur, *rangeFrac, 1)

	// Middle phase: one maintenance goroutine merges a delta in and back out
	// as fast as the journal lets it — every iteration is a full epoch flip
	// racing the query load.
	blkEdge := 3 // 8^d-cell dyadic block
	deltaShape := make([]int, len(shape))
	pos := make([]int, len(shape))
	for i := range deltaShape {
		deltaShape[i] = 1 << blkEdge
		pos[i] = 1
	}
	delta := dataset.Dense(deltaShape, 99)
	dh := shiftsplit.Transform(delta, st.Form())
	neg := shiftsplit.Transform(delta, st.Form())
	for i := range neg.Data() {
		neg.Data()[i] = -neg.Data()[i]
	}
	blk := shiftsplit.CubeBlock(blkEdge, pos...)
	stopMaint := make(chan struct{})
	maintDone := make(chan error, 1)
	go func() {
		cur := dh
		for {
			select {
			case <-stopMaint:
				maintDone <- nil
				return
			default:
			}
			if err := st.MergeBlock(blk, cur); err != nil {
				maintDone <- err
				return
			}
			if cur == dh {
				cur = neg
			} else {
				cur = dh
			}
		}
	}()
	maintLats, maintN, maintFailed := benchPhase(base, shape, *clients, *dur, *rangeFrac, 2)
	close(stopMaint)
	if err := <-maintDone; err != nil {
		return fmt.Errorf("maintenance during load: %w", err)
	}
	flips := st.CurrentEpoch() - startEpoch

	afterLats, afterN, afterFailed := benchPhase(base, shape, *clients, *dur, *rangeFrac, 3)

	idleP50, idleP99 := percentile(idleLats, 0.50), percentile(idleLats, 0.99)
	maintP50, maintP99 := percentile(maintLats, 0.50), percentile(maintLats, 0.99)
	afterP50, afterP99 := percentile(afterLats, 0.50), percentile(afterLats, 0.99)
	ratio := 0.0
	if idleP99 > 0 {
		ratio = float64(maintP99) / float64(idleP99)
	}
	fmt.Printf("bench-serve -maintain: %d clients, %s per phase, %d epoch flips during load\n",
		*clients, *dur, flips)
	fmt.Printf("phase    queries  failed  p50        p99\n")
	fmt.Printf("idle     %7d  %6d  %-9s  %s\n", idleN, idleFailed, idleP50, idleP99)
	fmt.Printf("maintain %7d  %6d  %-9s  %s\n", maintN, maintFailed, maintP50, maintP99)
	fmt.Printf("after    %7d  %6d  %-9s  %s\n", afterN, afterFailed, afterP50, afterP99)
	fmt.Printf("p99 maintain/idle: %.2fx\n", ratio)
	if cs, ok := st.CacheStats(); ok {
		fmt.Printf("cache:   %.1f%% hit rate (%d hits, %d loads, %d evictions)\n",
			100*cs.HitRate, cs.Hits, cs.Loads, cs.Evictions)
	}
	if es, ok := st.EpochStats(); ok {
		fmt.Printf("epochs:  at %d, %d phys blocks, %d free, %d pinned snapshots\n",
			es.Epoch, es.PhysBlocks, es.FreeBlocks, es.Pinned)
	}
	if failed := idleFailed + maintFailed + afterFailed; failed > 0 {
		return fmt.Errorf("bench-serve -maintain: %d failed queries", failed)
	}
	if flips == 0 {
		return fmt.Errorf("bench-serve -maintain: maintenance never flipped an epoch")
	}
	if *maxRatio > 0 && ratio > *maxRatio {
		return fmt.Errorf("maintain-phase p99 %.2fx idle exceeds the -max-p99-ratio %.2fx guardrail", ratio, *maxRatio)
	}
	return nil
}

// buildBenchStore materializes a throwaway 64x64 store for the load
// generator. With versioned set it is durable with the MVCC epoch layer —
// the configuration the maintain-under-load scenario measures.
func buildBenchStore(versioned bool) (dir string, err error) {
	dir, err = os.MkdirTemp("", "shiftsplit-bench")
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			os.RemoveAll(dir)
		}
	}()
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: []int{64, 64}, Form: shiftsplit.Standard, TileBits: 2, Path: dir + "/bench.wav",
		Durable: versioned, Versioned: versioned,
	})
	if err != nil {
		return "", err
	}
	if err := st.TransformChunked(dataset.Dense([]int{64, 64}, 7), 3); err != nil {
		_ = st.Close() // best-effort cleanup; the transform error is the one to report
		return "", err
	}
	if err := st.Sync(); err != nil {
		_ = st.Close() // best-effort cleanup; the sync error is the one to report
		return "", err
	}
	return dir, st.Close()
}
