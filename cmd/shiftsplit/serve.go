package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/server"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// cmdServe exposes a materialized store over the HTTP/JSON query API and
// runs until SIGINT/SIGTERM, then drains in-flight queries.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	store := fs.String("store", "cube.wav", "store path")
	addr := fs.String("addr", ":8080", "listen address")
	cacheBlocks := fs.Int("cache", 256, "serve cache capacity in blocks (0 disables)")
	cacheShards := fs.Int("shards", 0, "cache shard count (0 picks a default)")
	maxConc := fs.Int("max-concurrent", 64, "queries executing at once before shedding 429s")
	timeout := fs.Duration("timeout", 10*time.Second, "per-query deadline")
	drain := fs.Duration("drain", 15*time.Second, "shutdown drain deadline")
	scrubEvery := fs.Duration("scrub-interval", 0, "background scrub: one full verification pass per interval (0 disables)")
	scrubRate := fs.Int("scrub-rate", 0, "scrub I/O ceiling in blocks/sec (0 = unlimited)")
	breaker := fs.Bool("breaker", false, "trip to cache-only serving when the backend fails repeatedly")
	ingestOn := fs.Bool("ingest", false, "mount the write path (POST /v1/ingest) over a fresh appender")
	ingestShape := fs.String("ingest-shape", "8x8", "initial ingest domain extents (powers of two)")
	ingestDim := fs.Int("ingest-dim", 1, "dimension ingest slabs append along")
	ingestTile := fs.Int("ingest-tile", 2, "ingest tile edge exponent")
	ingestDir := fs.String("ingest-dir", "", "directory for durable ingest generations (empty = in-memory)")
	ingestFlush := fs.Duration("ingest-flush", 2*time.Millisecond, "ingest group-gathering window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sopts := shiftsplit.ServeOptions{CacheBlocks: *cacheBlocks, CacheShards: *cacheShards}
	if *breaker {
		sopts.Breaker = &storage.BreakerOptions{}
	}
	st, err := shiftsplit.OpenServingOpts(*store, sopts)
	if err != nil {
		return err
	}
	defer st.Close()
	// The signal context is the process lifetime: the server drains on it,
	// and the background scrubber nests inside it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *scrubEvery > 0 {
		if err := st.StartScrub(ctx, *scrubEvery, *scrubRate); err != nil {
			return err
		}
	}
	// The write path rides beside the read store: a fresh appender whose
	// admission gate defers to the serving store's health, so ingest sheds
	// 503s while blocks are quarantined or the breaker is not closed.
	var in *ingest.Ingester
	if *ingestOn {
		shape, err := parseInts(*ingestShape)
		if err != nil {
			return fmt.Errorf("-ingest-shape: %w", err)
		}
		var backing appender.Backing
		if dir := *ingestDir; dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			backing = func(gen, bs int) (storage.BlockStore, error) {
				return storage.CreateDurable(filepath.Join(dir, fmt.Sprintf("gen%d.wav", gen)), bs, nil)
			}
		}
		app, err := appender.NewWithBacking(shape, *ingestTile, backing)
		if err != nil {
			return err
		}
		in, err = ingest.New(app, ingest.Config{
			Dim:           *ingestDim,
			FlushInterval: *ingestFlush,
			Gate: func() error {
				if h := st.Health(); h.Status != "ok" {
					return fmt.Errorf("%w: serving store is %s", storage.ErrUnavailable, h.Status)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = in.Close() }() // drains staged slabs; the process is exiting
	}
	srv := server.New(st, server.Config{
		Addr:          *addr,
		MaxConcurrent: *maxConc,
		QueryTimeout:  *timeout,
		DrainTimeout:  *drain,
		Ingest:        in,
		Log:           log.New(os.Stderr, "serve: ", log.LstdFlags),
	})
	return srv.ListenAndServe(ctx)
}

// cmdBenchServe is the load generator: it spins up an in-process server on a
// loopback port, fires mixed queries from many goroutines for a fixed
// duration, and reports throughput plus the cache hit rate.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	store := fs.String("store", "", "store path (empty builds a temporary 64x64 store)")
	cacheBlocks := fs.Int("cache", 256, "serve cache capacity in blocks (0 disables)")
	cacheShards := fs.Int("shards", 0, "cache shard count (0 picks a default)")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	dur := fs.Duration("duration", 3*time.Second, "measurement duration")
	rangeFrac := fs.Int("range-pct", 30, "percent of queries that are range sums (rest are points)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *store
	if path == "" {
		tmp, err := buildBenchStore()
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		path = tmp + "/bench.wav"
	}
	st, err := shiftsplit.OpenServing(path, *cacheBlocks, *cacheShards)
	if err != nil {
		return err
	}
	defer st.Close()
	shape := st.Shape()
	srv := server.New(st, server.Config{MaxConcurrent: *clients * 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	var total, failed atomic.Int64
	stopAt := time.Now().Add(*dur)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			client := &http.Client{}
			rng := uint64(seed)*2654435761 + 12345
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int((rng >> 33) % uint64(n))
			}
			for time.Now().Before(stopAt) {
				var url string
				var body []byte
				if next(100) < *rangeFrac {
					start := make([]int, len(shape))
					extent := make([]int, len(shape))
					for i, n := range shape {
						start[i] = next(n / 2)
						extent[i] = 1 + next(n/2)
					}
					url = base + "/v1/rangesum"
					body, _ = json.Marshal(map[string]any{"start": start, "extent": extent})
				} else {
					p := make([]int, len(shape))
					for i, n := range shape {
						p[i] = next(n)
					}
					url = base + "/v1/point"
					body, _ = json.Marshal(map[string]any{"point": p})
				}
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				total.Add(1)
			}
		}(c + 1)
	}
	wg.Wait()
	elapsed := *dur
	cancel()
	if err := <-done; err != nil {
		return err
	}
	n := total.Load()
	fmt.Printf("bench-serve: %d queries in %s from %d clients\n", n, elapsed, *clients)
	fmt.Printf("throughput:  %.0f queries/sec (%d failed)\n",
		float64(n)/elapsed.Seconds(), failed.Load())
	io := st.Stats()
	fmt.Printf("device I/O:  %d block reads\n", io.Reads)
	if cs, ok := st.CacheStats(); ok {
		fmt.Printf("cache:       %.1f%% hit rate (%d hits, %d misses, %d loads, %d evictions)\n",
			100*cs.HitRate, cs.Hits, cs.Misses, cs.Loads, cs.Evictions)
	} else {
		fmt.Println("cache:       disabled")
	}
	return nil
}

func buildBenchStore() (dir string, err error) {
	dir, err = os.MkdirTemp("", "shiftsplit-bench")
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			os.RemoveAll(dir)
		}
	}()
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: []int{64, 64}, Form: shiftsplit.Standard, TileBits: 2, Path: dir + "/bench.wav",
	})
	if err != nil {
		return "", err
	}
	if err := st.TransformChunked(dataset.Dense([]int{64, 64}, 7), 3); err != nil {
		_ = st.Close() // best-effort cleanup; the transform error is the one to report
		return "", err
	}
	if err := st.Sync(); err != nil {
		_ = st.Close() // best-effort cleanup; the sync error is the one to report
		return "", err
	}
	return dir, st.Close()
}
