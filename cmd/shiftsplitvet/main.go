// Command shiftsplitvet runs the repository's custom static analyzers —
// the invariants the compiler cannot see but the paper's guarantees and
// the crash-safety layer depend on:
//
//	journalwrite   block mutations must go through the journaled batch path
//	storageerr     storage-stack errors must not be dropped
//	scratchescape  pooled scratch buffers must not outlive their call
//	maprangefloat  SHIFT/SPLIT float sums must not follow map order
//	lockedstore    stateful stores need storage.Locked on concurrent paths
//	batchio        engine I/O loops must use the vectored batch calls
//	errclass       error handling must branch on the typed taxonomy, not message text
//	ctxflow        serving/maintenance paths must thread a Context and select on cancellation
//	lockorder      consistent lock acquisition order; no self-deadlock, leaked locks, or channel ops under a lock
//	atomicfield    a field accessed via sync/atomic anywhere must be atomic everywhere
//	resourceleak   tickers/timers/files/handles must reach Stop/Close on every path; goroutines must be joinable
//	snapshotrelease  acquired MVCC epoch snapshots must reach Release on every path
//
// The last five are CFG-based: they run dataflow analyses over
// internal/analyzers/cfg control-flow graphs instead of matching syntax,
// and share cross-package facts (lock acquisition sets, atomic fields)
// through the multichecker's fact store.
//
// Usage:
//
//	go run ./cmd/shiftsplitvet ./...
//	go run ./cmd/shiftsplitvet -only storageerr,journalwrite ./internal/...
//
// Exit status is 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. A finding can be suppressed for a line with
// `//shiftsplitvet:ignore <analyzer> -- reason`.
package main

import (
	"github.com/shiftsplit/shiftsplit/internal/analyzers/atomicfield"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/batchio"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/ctxflow"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/errclass"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/journalwrite"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/lockedstore"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/lockorder"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/maprangefloat"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/multichecker"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/resourceleak"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/scratchescape"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/snapshotrelease"
	"github.com/shiftsplit/shiftsplit/internal/analyzers/storageerr"
)

func main() {
	multichecker.Main(
		journalwrite.Analyzer,
		storageerr.Analyzer,
		scratchescape.Analyzer,
		maprangefloat.Analyzer,
		lockedstore.Analyzer,
		batchio.Analyzer,
		errclass.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
		atomicfield.Analyzer,
		resourceleak.Analyzer,
		snapshotrelease.Analyzer,
	)
}
