package shiftsplit_test

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit"
)

// Transform a small vector and read the paper's worked example back.
func ExampleTransform() {
	// Paper §2.1: {3, 5, 7, 5} decomposes to {5, -1, -1, 1}.
	a := shiftsplit.FromSlice([]float64{3, 5, 7, 5}, 4)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	fmt.Println(hat.Data())
	// Output: [5 -1 -1 1]
}

// Merge the transform of one dyadic block into a larger (zero) transform —
// the SHIFT-SPLIT construction of Example 1 in the paper.
func ExampleMerge() {
	block := shiftsplit.FromSlice([]float64{2, 4}, 2)
	bHat := shiftsplit.Transform(block, shiftsplit.Standard)

	aHat := shiftsplit.NewArray(8) // transform of an all-zero vector
	// Place the block at positions [4,6) — the third level-1 dyadic block.
	if err := shiftsplit.Merge(aHat, shiftsplit.Standard, shiftsplit.CubeBlock(1, 2), bHat); err != nil {
		panic(err)
	}
	fmt.Println(shiftsplit.Inverse(aHat, shiftsplit.Standard).Data())
	// Output: [0 0 0 0 2 4 0 0]
}

// Extract the exact transform of a sub-block without touching the rest.
func ExampleExtract() {
	a := shiftsplit.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	blockHat, err := shiftsplit.Extract(hat, shiftsplit.Standard, shiftsplit.CubeBlock(2, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println(shiftsplit.Inverse(blockHat, shiftsplit.Standard).Data())
	// Output: [5 6 7 8]
}

// Answer a range-sum query straight from the transform (Lemma 2).
func ExampleRangeSum() {
	a := shiftsplit.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	fmt.Println(shiftsplit.RangeSum(hat, shiftsplit.Standard, []int{2}, []int{4}))
	// Output: 18
}

// Compress a transform to its best K terms with an exact error guarantee.
func ExampleCompress() {
	a := shiftsplit.NewArray(8)
	for i := 0; i < 8; i++ {
		a.Set(float64(i/4), i) // a step function: one detail carries it all
	}
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	c := shiftsplit.Compress(hat, shiftsplit.Standard, 2)
	fmt.Println(c.K(), c.DroppedEnergy())
	fmt.Println(c.Reconstruct().Data())
	// Output:
	// 2 0
	// [0 0 0 0 1 1 1 1]
}

// Roll a dimension up without reconstructing anything.
func ExampleRollup() {
	a := shiftsplit.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 2, 2)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	rolledHat, err := shiftsplit.Rollup(hat, 1)
	if err != nil {
		panic(err)
	}
	rowTotals := shiftsplit.Inverse(rolledHat, shiftsplit.Standard)
	fmt.Println(rowTotals.Data())
	// Output: [3 7]
}

// Reconstruct a block average without touching any detail coefficients
// below it (the inverse SPLIT alone).
func ExampleBlockAverage() {
	a := shiftsplit.FromSlice([]float64{2, 4, 6, 8, 1, 1, 1, 1}, 8)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	avg, err := shiftsplit.BlockAverage(hat, shiftsplit.Standard, shiftsplit.CubeBlock(2, 0))
	if err != nil {
		panic(err)
	}
	fmt.Println(avg)
	// Output: 5
}

// Slice a dimension of a transformed cube without reconstructing it.
func ExampleSliceAt() {
	a := shiftsplit.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 2, 2)
	hat := shiftsplit.Transform(a, shiftsplit.Standard)
	row1Hat, err := shiftsplit.SliceAt(hat, 0, 1)
	if err != nil {
		panic(err)
	}
	row1 := shiftsplit.Inverse(row1Hat, shiftsplit.Standard)
	fmt.Println(row1.Data())
	// Output: [3 4]
}

// Fold a stream into a best-K synopsis with buffered SHIFT-SPLIT updates.
func ExampleNewStreamSynopsis() {
	syn := shiftsplit.NewStreamSynopsis(4, 2) // K=4, buffer B=4
	for i := 0; i < 16; i++ {
		syn.Add(float64(i % 2)) // an alternating signal
	}
	if err := syn.Finish(); err != nil {
		panic(err)
	}
	crest, _ := syn.PerItemCost()
	fmt.Printf("kept %d coefficients, %.2f crest updates/item\n", len(syn.Entries()), crest)
	// Output: kept 4 coefficients, 0.44 crest updates/item
}
