package shiftsplit

import (
	"errors"
	"math/rand"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// TestEpochFlipCrashCampaign is the crash-consistency acceptance test for
// the MVCC epoch layer: kill a maintenance batch at every physical write
// index — data blocks, remap-table pages, and superblock all ride the same
// journal group — reopen, and require the store to come back as exactly the
// old epoch or exactly the new epoch: transform, epoch counter, and fsck's
// decoded superblock must agree, and the campaign must witness both
// outcomes. Runs on both the pread file leg and the mmap leg.
func TestEpochFlipCrashCampaign(t *testing.T) {
	for _, leg := range []struct {
		name   string
		mapped bool
	}{
		{"file", false},
		{"mapped", true},
	} {
		t.Run(leg.name, func(t *testing.T) {
			seed := crashSeed(t)
			rng := rand.New(rand.NewSource(23))
			src := randArray(rng, 8, 8)
			delta := randArray(rng, 4, 4)
			blk := CubeBlock(2, 1, 1)
			deltaHat := Transform(delta, Standard)

			// Reference states from the identical in-memory versioned
			// pipeline: recovery must reproduce one of these exactly.
			ref, err := CreateStore(StoreOptions{Shape: []int{8, 8}, Form: Standard, TileBits: 1, Versioned: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.TransformChunked(src, 2); err != nil {
				t.Fatal(err)
			}
			preHat, err := ref.ReadTransform()
			if err != nil {
				t.Fatal(err)
			}
			preEpoch := ref.CurrentEpoch()
			if err := ref.MergeBlock(blk, deltaHat); err != nil {
				t.Fatal(err)
			}
			postHat, err := ref.ReadTransform()
			if err != nil {
				t.Fatal(err)
			}
			postEpoch := ref.CurrentEpoch()
			ref.Close()
			if postEpoch != preEpoch+1 {
				t.Fatalf("reference epochs %d -> %d, want one flip", preEpoch, postEpoch)
			}

			dir := t.TempDir()
			build := func(name string, plan *storage.CrashPlan) (*Store, string) {
				path := filepath.Join(dir, name)
				st, err := CreateStore(StoreOptions{
					Shape: []int{8, 8}, Form: Standard, TileBits: 1,
					Path: path, Durable: true, Mapped: leg.mapped,
					Versioned: true, FaultPlan: plan,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := st.TransformChunked(src, 2); err != nil {
					t.Fatalf("setup transform: %v", err)
				}
				return st, path
			}

			// Dry run: how many physical mutations does the flip take?
			dryPlan := storage.NewCrashPlan(seed)
			dry, _ := build("dry.wav", dryPlan)
			preOps := dryPlan.Ops()
			if err := dry.MergeBlock(blk, deltaHat); err != nil {
				t.Fatal(err)
			}
			totalOps := dryPlan.Ops() - preOps
			if err := dry.Close(); err != nil {
				t.Fatal(err)
			}
			if totalOps < 8 {
				t.Fatalf("flip took only %d mutations — campaign is vacuous", totalOps)
			}
			t.Logf("epoch flip = %d physical mutations", totalOps)

			preSeen, postSeen := 0, 0
			for w := int64(1); w <= totalOps; w++ {
				plan := storage.NewCrashPlan(seed + 1000*w)
				st, path := build("t"+strconv.FormatInt(w, 10)+".wav", plan)
				plan.ArmAt(plan.Ops() + w)
				err := st.MergeBlock(blk, deltaHat)
				if w < totalOps && !errors.Is(err, storage.ErrCrashed) {
					t.Fatalf("trial %d: expected simulated power cut, got %v", w, err)
				}
				_ = st.Close() // dead machine; errors expected

				st2, err := OpenStore(path)
				if err != nil {
					t.Fatalf("trial %d: reopen after crash: %v", w, err)
				}
				got, err := st2.ReadTransform()
				if err != nil {
					t.Fatalf("trial %d: read recovered transform: %v", w, err)
				}
				gotEpoch := st2.CurrentEpoch()
				switch {
				case equalExact(got, preHat):
					preSeen++
					if gotEpoch != preEpoch {
						t.Fatalf("trial %d: pre-merge transform but epoch %d, want %d (torn flip)", w, gotEpoch, preEpoch)
					}
				case equalExact(got, postHat):
					postSeen++
					if gotEpoch != postEpoch {
						t.Fatalf("trial %d: post-merge transform but epoch %d, want %d (torn flip)", w, gotEpoch, postEpoch)
					}
				default:
					t.Fatalf("trial %d: recovered transform is neither pre- nor post-merge", w)
				}
				if err := st2.Close(); err != nil {
					t.Fatalf("trial %d: close recovered store: %v", w, err)
				}
				rep, err := Fsck(path)
				if err != nil {
					t.Fatalf("trial %d: fsck: %v", w, err)
				}
				if !rep.Clean() {
					t.Fatalf("trial %d: fsck not clean: %+v", w, rep)
				}
				if rep.Versioned == nil {
					t.Fatalf("trial %d: fsck reported no epoch superblock", w)
				}
				if rep.Versioned.Epoch != gotEpoch {
					t.Fatalf("trial %d: fsck superblock epoch %d, store reports %d", w, rep.Versioned.Epoch, gotEpoch)
				}
			}
			t.Logf("campaign: %d trials, %d recovered pre-merge, %d post-merge", totalOps, preSeen, postSeen)
			if preSeen == 0 || postSeen == 0 {
				t.Fatalf("campaign never exercised both outcomes (pre=%d post=%d)", preSeen, postSeen)
			}
		})
	}
}
