package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Dims() != 3 || a.Size() != 24 {
		t.Fatalf("Dims=%d Size=%d", a.Dims(), a.Size())
	}
	sh := a.Shape()
	if sh[0] != 2 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("Shape=%v", sh)
	}
	sh[0] = 99 // must not alias internals
	if a.Extent(0) != 2 {
		t.Error("Shape() aliases internal state")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(2,0) did not panic")
		}
	}()
	New(2, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(data, 2, 3)
	if a.At(0, 0) != 1 || a.At(0, 2) != 3 || a.At(1, 0) != 4 || a.At(1, 2) != 6 {
		t.Fatal("row-major layout wrong")
	}
	a.Set(42, 1, 1)
	if data[4] != 42 {
		t.Error("FromSlice should not copy")
	}
}

func TestFromSliceLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestOffsetCoordsRoundTrip(t *testing.T) {
	a := New(3, 4, 5)
	for off := 0; off < a.Size(); off++ {
		c := a.Coords(off)
		if got := a.Offset(c); got != off {
			t.Fatalf("Offset(Coords(%d)) = %d", off, got)
		}
	}
}

func TestAtSetAdd(t *testing.T) {
	a := New(4, 4)
	a.Set(1.5, 2, 3)
	a.Add(2.5, 2, 3)
	if a.At(2, 3) != 4 {
		t.Fatalf("At(2,3) = %g", a.At(2, 3))
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	a := New(2, 2)
	for _, coords := range [][]int{{2, 0}, {0, -1}, {0, 0, 0}, {1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", coords)
				}
			}()
			a.At(coords...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Set(7, 1, 1)
	b := a.Clone()
	b.Set(9, 1, 1)
	if a.At(1, 1) != 7 || b.At(1, 1) != 9 {
		t.Error("Clone shares storage")
	}
}

func TestFillAndSum(t *testing.T) {
	a := New(3, 3)
	a.Fill(2)
	if a.Sum() != 18 {
		t.Errorf("Sum = %g", a.Sum())
	}
}

func TestSubCopyPaste(t *testing.T) {
	a := New(4, 4)
	for i := 0; i < 16; i++ {
		a.Data()[i] = float64(i)
	}
	sub := a.SubCopy([]int{1, 2}, []int{2, 2})
	// Rows 1..2, cols 2..3: values 6,7,10,11.
	want := []float64{6, 7, 10, 11}
	for i, w := range want {
		if sub.Data()[i] != w {
			t.Fatalf("SubCopy data = %v, want %v", sub.Data(), want)
		}
	}
	b := New(4, 4)
	b.SubPaste(sub, []int{0, 0})
	if b.At(0, 0) != 6 || b.At(1, 1) != 11 || b.At(2, 2) != 0 {
		t.Error("SubPaste wrong")
	}
}

func TestSubAdd(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	sub := FromSlice([]float64{10, 20}, 1, 2)
	a.SubAdd(sub, []int{1, 0})
	if a.At(1, 0) != 11 || a.At(1, 1) != 21 || a.At(0, 0) != 1 {
		t.Error("SubAdd wrong")
	}
}

func TestSubCopyBoundsPanics(t *testing.T) {
	a := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds SubCopy did not panic")
		}
	}()
	a.SubCopy([]int{3, 3}, []int{2, 2})
}

func TestSubCopyPasteRoundTrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(8, 4, 8)
	for i := range a.Data() {
		a.Data()[i] = rng.Float64()
	}
	start := []int{2, 1, 4}
	shape := []int{4, 2, 2}
	sub := a.SubCopy(start, shape)
	b := a.Clone()
	b.SubPaste(sub, start)
	if !a.EqualApprox(b, 0) {
		t.Error("paste of copied region changed array")
	}
}

func TestFiberRoundTrip(t *testing.T) {
	a := New(3, 4, 5)
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	for dim := 0; dim < 3; dim++ {
		fixed := []int{1, 2, 3}
		f := a.Fiber(dim, fixed)
		if len(f) != a.Extent(dim) {
			t.Fatalf("fiber dim %d length %d", dim, len(f))
		}
		// Verify entries against At.
		coords := append([]int(nil), fixed...)
		for i, v := range f {
			coords[dim] = i
			if a.At(coords...) != v {
				t.Fatalf("fiber dim %d entry %d = %g, want %g", dim, i, v, a.At(coords...))
			}
		}
		// Round trip.
		doubled := make([]float64, len(f))
		for i, v := range f {
			doubled[i] = 2 * v
		}
		a.SetFiber(dim, fixed, doubled)
		got := a.Fiber(dim, fixed)
		for i := range got {
			if got[i] != doubled[i] {
				t.Fatalf("SetFiber round trip failed dim %d", dim)
			}
		}
		a.SetFiber(dim, fixed, f) // restore
	}
}

func TestEachFiberCoversAll(t *testing.T) {
	a := New(2, 3, 4)
	for dim := 0; dim < 3; dim++ {
		count := 0
		a.EachFiber(dim, func(fixed []int) {
			if fixed[dim] != 0 {
				t.Fatalf("fixed[%d] = %d, want 0", dim, fixed[dim])
			}
			count++
		})
		want := a.Size() / a.Extent(dim)
		if count != want {
			t.Errorf("EachFiber(%d) visited %d fibers, want %d", dim, count, want)
		}
	}
}

func TestEachVisitsRowMajor(t *testing.T) {
	a := New(2, 3)
	var visited [][]int
	a.Each(func(coords []int, v float64) {
		visited = append(visited, append([]int(nil), coords...))
	})
	if len(visited) != 6 {
		t.Fatalf("visited %d cells", len(visited))
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := range want {
		if visited[i][0] != want[i][0] || visited[i][1] != want[i][1] {
			t.Fatalf("visit order %v, want %v", visited, want)
		}
	}
}

func TestSumRange(t *testing.T) {
	a := New(4, 4)
	for i := range a.Data() {
		a.Data()[i] = 1
	}
	if got := a.SumRange([]int{1, 1}, []int{2, 3}); got != 6 {
		t.Errorf("SumRange = %g", got)
	}
	if got := a.SumRange([]int{0, 0}, []int{4, 4}); got != 16 {
		t.Errorf("full SumRange = %g", got)
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !a.EqualApprox(b, 1e-6) {
		t.Error("should be approximately equal")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Error("should differ at tight tolerance")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if a.EqualApprox(c, 1) {
		t.Error("different shapes should not be equal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float64{1, 5, 3}, 3)
	b := FromSlice([]float64{1, 2, 4}, 3)
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Errorf("MaxAbsDiff = %g", got)
	}
}

func TestQuickSubCopyMatchesAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(4, 8, 4)
		for i := range a.Data() {
			a.Data()[i] = rng.Float64()
		}
		start := []int{rng.Intn(3), rng.Intn(7), rng.Intn(3)}
		shape := []int{1 + rng.Intn(4-start[0]), 1 + rng.Intn(8-start[1]), 1 + rng.Intn(4-start[2])}
		sub := a.SubCopy(start, shape)
		ok := true
		sub.Each(func(coords []int, v float64) {
			if a.At(start[0]+coords[0], start[1]+coords[1], start[2]+coords[2]) != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSumRangeMatchesLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(8, 8)
		for i := range a.Data() {
			a.Data()[i] = float64(rng.Intn(10))
		}
		s := []int{rng.Intn(8), rng.Intn(8)}
		sh := []int{1 + rng.Intn(8-s[0]), 1 + rng.Intn(8-s[1])}
		want := 0.0
		for i := s[0]; i < s[0]+sh[0]; i++ {
			for j := s[1]; j < s[1]+sh[1]; j++ {
				want += a.At(i, j)
			}
		}
		return a.SumRange(s, sh) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" || len(s) > 200 {
		t.Errorf("small String = %q", s)
	}
	big := New(32, 32)
	s := big.String()
	if len(s) > 100 {
		t.Errorf("big arrays should summarize, got %d chars", len(s))
	}
}

func TestSetFiberLengthMismatchPanics(t *testing.T) {
	a := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("SetFiber with wrong length did not panic")
		}
	}()
	a.SetFiber(0, []int{0, 0}, []float64{1, 2})
}

func TestFiberBadDimPanics(t *testing.T) {
	a := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("Fiber with bad dim did not panic")
		}
	}()
	a.Fiber(2, []int{0, 0})
}

func TestCoordsOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Coords(-1) did not panic")
		}
	}()
	a.Coords(-1)
}
