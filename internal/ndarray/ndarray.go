// Package ndarray implements dense row-major multidimensional arrays of
// float64. It is the in-memory data substrate for every multidimensional
// wavelet operation in this repository: datasets, chunks, and transformed
// coefficient cubes are all Arrays.
package ndarray

import (
	"fmt"
	"math"
)

// Array is a dense row-major d-dimensional array. The zero value is an empty
// 0-dimensional array; use New or FromSlice for anything useful.
type Array struct {
	shape   []int
	strides []int
	data    []float64
}

// New allocates a zero-filled array with the given shape.
// Every extent must be positive.
func New(shape ...int) *Array {
	size := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("ndarray: non-positive extent in shape %v", shape))
		}
		size *= s
	}
	a := &Array{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    make([]float64, size),
	}
	return a
}

// FromSlice wraps data (without copying) as an array of the given shape.
// len(data) must equal the product of the extents.
func FromSlice(data []float64, shape ...int) *Array {
	size := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("ndarray: non-positive extent in shape %v", shape))
		}
		size *= s
	}
	if len(data) != size {
		panic(fmt.Sprintf("ndarray: data length %d does not match shape %v (size %d)", len(data), shape, size))
	}
	return &Array{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    data,
	}
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= shape[i]
	}
	return strides
}

// Dims returns the number of dimensions.
func (a *Array) Dims() int { return len(a.shape) }

// Shape returns a copy of the extents.
func (a *Array) Shape() []int { return append([]int(nil), a.shape...) }

// Extent returns the size of dimension dim.
func (a *Array) Extent(dim int) int { return a.shape[dim] }

// Size returns the total number of cells.
func (a *Array) Size() int { return len(a.data) }

// Data returns the backing slice in row-major order. Mutations are visible
// to the array.
func (a *Array) Data() []float64 { return a.data }

// Offset converts multidimensional coordinates to a flat row-major offset.
func (a *Array) Offset(coords []int) int {
	if len(coords) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: coords %v for shape %v", coords, a.shape))
	}
	off := 0
	for i, c := range coords {
		if c < 0 || c >= a.shape[i] {
			panic(fmt.Sprintf("ndarray: coord %v out of bounds for shape %v", coords, a.shape))
		}
		off += c * a.strides[i]
	}
	return off
}

// Coords converts a flat row-major offset back to coordinates.
func (a *Array) Coords(offset int) []int {
	if offset < 0 || offset >= len(a.data) {
		panic(fmt.Sprintf("ndarray: offset %d out of bounds (size %d)", offset, len(a.data)))
	}
	coords := make([]int, len(a.shape))
	for i, s := range a.strides {
		coords[i] = offset / s
		offset %= s
	}
	return coords
}

// At returns the value at the given coordinates.
func (a *Array) At(coords ...int) float64 { return a.data[a.Offset(coords)] }

// Set stores v at the given coordinates.
func (a *Array) Set(v float64, coords ...int) { a.data[a.Offset(coords)] = v }

// Add adds v to the cell at the given coordinates.
func (a *Array) Add(v float64, coords ...int) { a.data[a.Offset(coords)] += v }

// Fill sets every cell to v.
func (a *Array) Fill(v float64) {
	for i := range a.data {
		a.data[i] = v
	}
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	c := New(a.shape...)
	copy(c.data, a.data)
	return c
}

// EqualApprox reports whether two arrays have identical shape and all cells
// within tol of each other.
func (a *Array) EqualApprox(b *Array, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute cell difference between two arrays
// of identical shape.
func (a *Array) MaxAbsDiff(b *Array) float64 {
	if len(a.data) != len(b.data) {
		panic("ndarray: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// SubCopy extracts the sub-hypercube starting at start with the given shape
// into a freshly allocated array.
func (a *Array) SubCopy(start, shape []int) *Array {
	a.checkSub(start, shape)
	out := New(shape...)
	a.walkSub(start, shape, func(srcOff, dstOff int) {
		out.data[dstOff] = a.data[srcOff]
	})
	return out
}

// SubCopyInto extracts the sub-hypercube starting at start into out, whose
// shape fixes the region's extents. Every cell of out is overwritten. It is
// the allocation-free form of SubCopy for callers that reuse a chunk buffer.
func (a *Array) SubCopyInto(out *Array, start []int) {
	a.checkSub(start, out.shape)
	a.walkSub(start, out.shape, func(srcOff, dstOff int) {
		out.data[dstOff] = a.data[srcOff]
	})
}

// SubPaste writes sub into the region of a starting at start.
func (a *Array) SubPaste(sub *Array, start []int) {
	a.checkSub(start, sub.shape)
	a.walkSub(start, sub.shape, func(srcOff, dstOff int) {
		a.data[srcOff] = sub.data[dstOff]
	})
}

// SubAdd accumulates sub into the region of a starting at start.
func (a *Array) SubAdd(sub *Array, start []int) {
	a.checkSub(start, sub.shape)
	a.walkSub(start, sub.shape, func(srcOff, dstOff int) {
		a.data[srcOff] += sub.data[dstOff]
	})
}

func (a *Array) checkSub(start, shape []int) {
	if len(start) != len(a.shape) || len(shape) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: sub-region start %v shape %v for array shape %v", start, shape, a.shape))
	}
	for i := range start {
		if start[i] < 0 || shape[i] <= 0 || start[i]+shape[i] > a.shape[i] {
			panic(fmt.Sprintf("ndarray: sub-region start %v shape %v out of bounds for %v", start, shape, a.shape))
		}
	}
}

// walkSub visits every cell of the sub-region, passing the offset in a
// (srcOff) and the row-major offset inside the sub-region (dstOff). The
// innermost dimension is walked contiguously.
func (a *Array) walkSub(start, shape []int, visit func(srcOff, dstOff int)) {
	d := len(shape)
	if d == 0 {
		visit(0, 0)
		return
	}
	coords := make([]int, d)
	dstOff := 0
	for {
		base := 0
		for i := 0; i < d-1; i++ {
			base += (start[i] + coords[i]) * a.strides[i]
		}
		base += start[d-1] * a.strides[d-1]
		for c := 0; c < shape[d-1]; c++ {
			visit(base+c, dstOff)
			dstOff++
		}
		// Advance all but the innermost dimension.
		i := d - 2
		for ; i >= 0; i-- {
			coords[i]++
			if coords[i] < shape[i] {
				break
			}
			coords[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// Fiber copies the 1-d line along dimension dim passing through the cell at
// fixed coordinates (the entry for dim is ignored).
func (a *Array) Fiber(dim int, fixed []int) []float64 {
	base, stride, n := a.fiberSpec(dim, fixed)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a.data[base+i*stride]
	}
	return out
}

// FiberInto copies the 1-d line along dimension dim into dst, whose length
// must equal the dimension's extent. It is the allocation-free form of Fiber.
func (a *Array) FiberInto(dst []float64, dim int, fixed []int) {
	base, stride, n := a.fiberSpec(dim, fixed)
	if len(dst) != n {
		panic(fmt.Sprintf("ndarray: FiberInto dst length %d for extent %d", len(dst), n))
	}
	for i := 0; i < n; i++ {
		dst[i] = a.data[base+i*stride]
	}
}

// FiberSpan exposes the strided layout of the 1-d line along dimension dim:
// the line's cells live at Data()[base + i*stride] for i in [0, n). The
// in-place transforms use it to read and write fibers without copying
// through an intermediate slice.
func (a *Array) FiberSpan(dim int, fixed []int) (base, stride, n int) {
	return a.fiberSpec(dim, fixed)
}

// SetFiber writes values along the 1-d line described by dim and fixed.
func (a *Array) SetFiber(dim int, fixed []int, values []float64) {
	base, stride, n := a.fiberSpec(dim, fixed)
	if len(values) != n {
		panic(fmt.Sprintf("ndarray: SetFiber got %d values for extent %d", len(values), n))
	}
	for i := 0; i < n; i++ {
		a.data[base+i*stride] = values[i]
	}
}

func (a *Array) fiberSpec(dim int, fixed []int) (base, stride, n int) {
	if dim < 0 || dim >= len(a.shape) {
		panic(fmt.Sprintf("ndarray: fiber dim %d for shape %v", dim, a.shape))
	}
	if len(fixed) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: fiber fixed coords %v for shape %v", fixed, a.shape))
	}
	for i, c := range fixed {
		if i == dim {
			continue
		}
		if c < 0 || c >= a.shape[i] {
			panic(fmt.Sprintf("ndarray: fiber fixed coords %v out of bounds for %v", fixed, a.shape))
		}
		base += c * a.strides[i]
	}
	return base, a.strides[dim], a.shape[dim]
}

// EachFiber calls visit once per 1-d line along dimension dim. The fixed
// slice passed to visit is reused between calls; copy it if retained. The
// entry fixed[dim] is always zero.
func (a *Array) EachFiber(dim int, visit func(fixed []int)) {
	fixed := make([]int, len(a.shape))
	var rec func(i int)
	rec = func(i int) {
		if i == len(a.shape) {
			visit(fixed)
			return
		}
		if i == dim {
			fixed[i] = 0
			rec(i + 1)
			return
		}
		for c := 0; c < a.shape[i]; c++ {
			fixed[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}

// Each visits every cell in row-major order. The coords slice is reused;
// copy it if retained.
func (a *Array) Each(visit func(coords []int, v float64)) {
	coords := make([]int, len(a.shape))
	for off, v := range a.data {
		visit(coords, v)
		for i := len(coords) - 1; i >= 0; i-- {
			coords[i]++
			if coords[i] < a.shape[i] {
				break
			}
			coords[i] = 0
		}
		_ = off
	}
}

// SumRange sums the cells of the half-open box [start, start+shape).
func (a *Array) SumRange(start, shape []int) float64 {
	a.checkSub(start, shape)
	sum := 0.0
	a.walkSub(start, shape, func(srcOff, _ int) {
		sum += a.data[srcOff]
	})
	return sum
}

// Sum returns the sum of all cells.
func (a *Array) Sum() float64 {
	sum := 0.0
	for _, v := range a.data {
		sum += v
	}
	return sum
}

// String renders small arrays for debugging; large arrays are summarized.
func (a *Array) String() string {
	if len(a.data) <= 64 {
		return fmt.Sprintf("ndarray%v%v", a.shape, a.data)
	}
	return fmt.Sprintf("ndarray%v[%d cells]", a.shape, len(a.data))
}
