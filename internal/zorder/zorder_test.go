package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncode2D(t *testing.T) {
	// Classic 2-d Morton table for a 4x4 grid (x = coords[0] in low bit).
	cases := []struct {
		x, y, code int
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {3, 0, 5}, {2, 1, 6}, {3, 1, 7},
		{0, 2, 8}, {0, 3, 10}, {2, 2, 12}, {3, 3, 15},
	}
	for _, c := range cases {
		if got := Encode([]int{c.x, c.y}); got != c.code {
			t.Errorf("Encode(%d,%d) = %d, want %d", c.x, c.y, got, c.code)
		}
	}
}

func TestEncode1DIsIdentity(t *testing.T) {
	for v := 0; v < 100; v++ {
		if got := Encode([]int{v}); got != v {
			t.Errorf("Encode([%d]) = %d", v, got)
		}
	}
}

func TestEncodeEmpty(t *testing.T) {
	if Encode(nil) != 0 {
		t.Error("Encode(nil) != 0")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for d := 1; d <= 4; d++ {
		for code := 0; code < 1<<uint(2*d+2); code++ {
			coords := Decode(code, d)
			if got := Encode(coords); got != code {
				t.Fatalf("d=%d Encode(Decode(%d)) = %d", d, code, got)
			}
		}
	}
}

func TestEncodeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative coordinate did not panic")
		}
	}()
	Encode([]int{1, -1})
}

func TestCurveVisitsEveryCellOnce(t *testing.T) {
	for d := 1; d <= 3; d++ {
		for _, side := range []int{1, 2, 4, 8} {
			seen := map[int]bool{}
			Curve(d, side, func(coords []int) {
				key := 0
				for _, c := range coords {
					if c < 0 || c >= side {
						t.Fatalf("coords %v out of grid side %d", coords, side)
					}
					key = key*side + c
				}
				if seen[key] {
					t.Fatalf("cell %v visited twice (d=%d side=%d)", coords, d, side)
				}
				seen[key] = true
			})
			want := 1
			for i := 0; i < d; i++ {
				want *= side
			}
			if len(seen) != want {
				t.Fatalf("d=%d side=%d visited %d cells, want %d", d, side, len(seen), want)
			}
		}
	}
}

func TestCurveLocality(t *testing.T) {
	// In z-order over a 2^k grid, the first 4 cells of a 2-d curve form the
	// first 2x2 quadrant, the first 16 the first 4x4 quadrant, etc.
	var cells [][]int
	Curve(2, 8, func(coords []int) {
		cells = append(cells, append([]int(nil), coords...))
	})
	for _, q := range []int{2, 4, 8} {
		for i := 0; i < q*q; i++ {
			if cells[i][0] >= q || cells[i][1] >= q {
				t.Fatalf("cell %d = %v escapes %dx%d quadrant", i, cells[i], q, q)
			}
		}
	}
}

func TestCurveNonPow2Side(t *testing.T) {
	count := 0
	Curve(2, 3, func(coords []int) { count++ })
	if count != 9 {
		t.Errorf("Curve(2,3) visited %d cells", count)
	}
}

func TestQuickRoundTrip3D(t *testing.T) {
	f := func(a, b, c uint16) bool {
		coords := []int{int(a % 1024), int(b % 1024), int(c % 1024)}
		got := Decode(Encode(coords), 3)
		return got[0] == coords[0] && got[1] == coords[1] && got[2] == coords[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMonotoneInBlock(t *testing.T) {
	// Within any aligned 2x2 block, z-codes are consecutive.
	f := func(x, y uint8) bool {
		bx, by := int(x%64)*2, int(y%64)*2
		base := Encode([]int{bx, by})
		return Encode([]int{bx + 1, by}) == base+1 &&
			Encode([]int{bx, by + 1}) == base+2 &&
			Encode([]int{bx + 1, by + 1}) == base+3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
