// Package zorder implements Morton (z-order) curve encoding for arbitrary
// dimensionality. The non-standard chunked transformation (paper Result 2)
// achieves its optimal O(N^d/B^d) I/O bound only when chunks arrive in
// z-order, because then the coefficients affected by SPLIT always lie on the
// currently-open root path; this package supplies that access pattern.
package zorder

import (
	"fmt"
	"math/bits"
)

// Encode interleaves the bits of the coordinates into a single Morton code.
// Coordinate i contributes bit b to code bit b*d + i, so the lowest group of
// d code bits holds bit 0 of every coordinate. All coordinates must be
// non-negative and small enough for the result to fit in an int.
func Encode(coords []int) int {
	d := len(coords)
	if d == 0 {
		return 0
	}
	maxBits := 0
	for _, c := range coords {
		if c < 0 {
			panic(fmt.Sprintf("zorder: negative coordinate in %v", coords))
		}
		if b := bits.Len(uint(c)); b > maxBits {
			maxBits = b
		}
	}
	if maxBits*d >= 63 {
		panic(fmt.Sprintf("zorder: code for %v overflows", coords))
	}
	code := 0
	for b := 0; b < maxBits; b++ {
		for i, c := range coords {
			if c>>uint(b)&1 == 1 {
				code |= 1 << uint(b*d+i)
			}
		}
	}
	return code
}

// Decode reverses Encode into d coordinates.
func Decode(code, d int) []int {
	if code < 0 || d <= 0 {
		panic(fmt.Sprintf("zorder: Decode(%d, %d)", code, d))
	}
	coords := make([]int, d)
	for b := 0; code>>uint(b*d) != 0; b++ {
		for i := 0; i < d; i++ {
			if code>>uint(b*d+i)&1 == 1 {
				coords[i] |= 1 << uint(b)
			}
		}
	}
	return coords
}

// Curve enumerates all cells of a cubic d-dimensional grid with edge length
// side (a power of two is not required, but codes are only dense for powers
// of two) in z-order, calling visit with the coordinates of each cell that
// falls inside the grid. The coords slice is reused between calls.
func Curve(d, side int, visit func(coords []int)) {
	if d <= 0 || side <= 0 {
		panic(fmt.Sprintf("zorder: Curve(%d, %d)", d, side))
	}
	// The z-codes of a side^d grid are bounded by nextPow2(side)^d.
	bound := 1
	for bound < side {
		bound <<= 1
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= bound
	}
	for code := 0; code < total; code++ {
		coords := Decode(code, d)
		inside := true
		for _, c := range coords {
			if c >= side {
				inside = false
				break
			}
		}
		if inside {
			visit(coords)
		}
	}
}
