package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrUnavailable is returned by a tripped Breaker without touching the
// backend. It is deliberately NOT transient-classed: the breaker exists to
// shed load, and a retry loop hammering an open breaker would defeat it.
// Callers wait out the cooldown (or serve from cache above the breaker).
var ErrUnavailable = errors.New("storage: backend unavailable (circuit open)")

// BreakerOptions configures a Breaker. The zero value selects the defaults
// noted on each field.
type BreakerOptions struct {
	// Threshold is how many consecutive backend failures trip the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open after the first trip
	// (default 250ms); each consecutive failed probe doubles it up to
	// MaxCooldown (default 10×Cooldown).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker wraps a BlockStore with a circuit breaker: sustained backend
// failure trips it open, after which operations fail fast with
// ErrUnavailable instead of queueing on a dead device. After the cooldown
// the breaker half-opens and lets a single probe operation through —
// success closes the circuit, failure reopens it with doubled cooldown.
//
// Corruption-classed errors never count toward tripping: a rotten block is
// a data problem on an otherwise healthy device, handled by quarantine,
// and must not take the whole backend offline. In the serving stack the
// breaker sits below the block cache, so cache hits keep being served
// while the circuit is open (cache-only serving).
type Breaker struct {
	inner BlockStore
	opts  BreakerOptions

	mu       sync.Mutex
	state    int
	fails    int           // consecutive failures while closed
	cooldown time.Duration // current open duration (backoff-doubled)
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
	rejected int64
}

// NewBreaker wraps inner with a circuit breaker.
func NewBreaker(inner BlockStore, opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 250 * time.Millisecond
	}
	if opts.MaxCooldown <= 0 {
		opts.MaxCooldown = 10 * opts.Cooldown
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{inner: inner, opts: opts, cooldown: opts.Cooldown}
}

// State returns "closed", "open", or "half-open" for health reporting.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Rejected returns how many operations were refused while open.
func (b *Breaker) Rejected() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// allow decides whether an operation may proceed; probe reports whether it
// is the half-open trial whose outcome settles the circuit.
func (b *Breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.opts.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true, true
		}
		b.rejected++
		return false, false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true, true
		}
		b.rejected++
		return false, false
	}
}

// record settles an operation's outcome. Corruption does not count as a
// backend failure; neither do argument errors surfaced before any device
// I/O could fail (they are deterministic and say nothing about health).
func (b *Breaker) record(err error, probe bool) {
	backendFailure := err != nil && !IsCorruption(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if backendFailure {
			// Failed probe: reopen with doubled cooldown.
			b.state = breakerOpen
			b.openedAt = b.opts.Now()
			if b.cooldown *= 2; b.cooldown > b.opts.MaxCooldown {
				b.cooldown = b.opts.MaxCooldown
			}
			b.trips++
			return
		}
		b.state = breakerClosed
		b.fails = 0
		b.cooldown = b.opts.Cooldown
		return
	}
	if b.state != breakerClosed {
		return
	}
	if !backendFailure {
		b.fails = 0
		return
	}
	if b.fails++; b.fails >= b.opts.Threshold {
		b.state = breakerOpen
		b.openedAt = b.opts.Now()
		b.trips++
	}
}

func (b *Breaker) do(op func() error) error {
	ok, probe := b.allow()
	if !ok {
		return ErrUnavailable
	}
	err := op()
	b.record(err, probe)
	return err
}

// BlockSize returns the wrapped block size.
func (b *Breaker) BlockSize() int { return b.inner.BlockSize() }

// ReadBlock fails fast when the circuit is open.
func (b *Breaker) ReadBlock(id int, buf []float64) error {
	return b.do(func() error { return b.inner.ReadBlock(id, buf) })
}

// WriteBlock fails fast when the circuit is open.
func (b *Breaker) WriteBlock(id int, data []float64) error {
	return b.do(func() error { return b.inner.WriteBlock(id, data) })
}

// ReadBlocks fails fast when the circuit is open; the batch is one
// breaker-accounted operation.
func (b *Breaker) ReadBlocks(ids []int, bufs [][]float64) error {
	return b.do(func() error { return ReadBlocksOf(b.inner, ids, bufs) })
}

// WriteBlocks fails fast when the circuit is open.
func (b *Breaker) WriteBlocks(ids []int, data [][]float64) error {
	return b.do(func() error { return WriteBlocksOf(b.inner, ids, data) })
}

// Sync fails fast when the circuit is open.
func (b *Breaker) Sync() error {
	return b.do(func() error { return SyncIfAble(b.inner) })
}

// Commit fails fast when the circuit is open.
func (b *Breaker) Commit() error {
	return b.do(func() error { return CommitIfAble(b.inner) })
}

// Truncate forwards (an explicit administrative operation, not load).
func (b *Breaker) Truncate() error { return TruncateIfAble(b.inner) }

// VerifyBlocks forwards: the scrubber runs below the breaker by design,
// but a caller holding only the breaker still gets verification.
func (b *Breaker) VerifyBlocks(ids []int) ([]int, error) {
	return VerifyBlocksOf(b.inner, ids)
}

// RepairBlock forwards.
func (b *Breaker) RepairBlock(id int) (bool, error) { return RepairBlockOf(b.inner, id) }

// Close forwards.
func (b *Breaker) Close() error { return b.inner.Close() }

// MappedReads forwards the inner stack's mapped-read counter.
func (b *Breaker) MappedReads() int64 { return MappedReadsOf(b.inner) }

// String describes the breaker state for logs.
func (b *Breaker) String() string {
	return fmt.Sprintf("breaker[%s]", b.State())
}
