package storage

import "errors"

// This file is the storage error taxonomy. Every failure the stack can
// produce falls into one of three classes, and each class demands a
// different response from the layers above:
//
//   - transient: the medium hiccuped but the data is intact (an injected
//     fault, a congested device). Retrying is correct and cheap.
//   - corruption: the bytes on the medium are wrong (bit rot, a torn
//     write caught by its CRC). Retrying is wasted I/O — the same wrong
//     bytes come back — and the block must be quarantined and repaired.
//   - space-exhausted: the medium is full. Retrying without freeing
//     space cannot succeed; maintenance must stop cleanly.
//
// The classes are plain errors.Is-able sentinels: a concrete error joins a
// class by wrapping it (see classified / WithClass), so callers test
// membership with errors.Is(err, ErrCorruption) and never by matching
// message strings. The shiftsplitvet `errclass` analyzer rejects
// string-matching on storage errors for exactly this reason.
var (
	// ErrTransient is the class of recoverable media faults; retry.
	ErrTransient = errors.New("storage: transient fault")
	// ErrCorruption is the class of wrong-bytes-on-media faults; never
	// retry, quarantine and repair instead.
	ErrCorruption = errors.New("storage: data corruption")
	// ErrNoSpace is the class of space-exhaustion faults; fail the batch
	// and surface the condition to the operator.
	ErrNoSpace = errors.New("storage: space exhausted")
)

// Class labels a storage error with its taxonomy class.
type Class int

const (
	// ClassUnknown covers errors outside the taxonomy (bad arguments,
	// closed stores, simulated power cuts): fail-stop, do not retry.
	ClassUnknown Class = iota
	// ClassTransient errors are worth retrying.
	ClassTransient
	// ClassCorruption errors mark unusable on-media bytes.
	ClassCorruption
	// ClassNoSpace errors mark a full medium.
	ClassNoSpace
)

// String returns the class name used in logs and reports.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorruption:
		return "corruption"
	case ClassNoSpace:
		return "space-exhausted"
	default:
		return "unknown"
	}
}

// Classify reports the taxonomy class of err (ClassUnknown for nil and for
// errors outside the taxonomy). Corruption wins when an error chain somehow
// carries several classes: it is the one that must not be retried.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassUnknown
	case errors.Is(err, ErrCorruption):
		return ClassCorruption
	case errors.Is(err, ErrNoSpace):
		return ClassNoSpace
	case errors.Is(err, ErrTransient):
		return ClassTransient
	default:
		return ClassUnknown
	}
}

// IsCorruption reports whether err is classified as on-media corruption.
func IsCorruption(err error) bool { return err != nil && errors.Is(err, ErrCorruption) }

// IsSpaceExhausted reports whether err is classified as a full medium.
func IsSpaceExhausted(err error) bool { return err != nil && errors.Is(err, ErrNoSpace) }

// classified is a sentinel error that belongs to a taxonomy class: it
// matches itself (by identity, as any sentinel does) and its class through
// errors.Is. ErrChecksum, ErrJournalCorrupt, and ErrInjected are built
// this way, so existing errors.Is(err, ErrChecksum) tests keep working
// while errors.Is(err, ErrCorruption) now also holds.
type classified struct {
	msg   string
	class error
}

func (e *classified) Error() string { return e.msg }

// Is reports class membership; identity with the sentinel itself is
// handled by errors.Is's == fast path before this method is consulted.
func (e *classified) Is(target error) bool { return target == e.class }

// newClassified builds a sentinel belonging to class.
func newClassified(msg string, class error) error {
	return &classified{msg: msg, class: class}
}

// withClass attaches a taxonomy class to an existing error without
// disturbing its chain: the result unwraps to err and additionally matches
// class under errors.Is. Used where the class is only known from context,
// e.g. an ENOSPC from the filesystem.
type withClass struct {
	err   error
	class error
}

// WithClass returns err labeled with the given taxonomy class (one of
// ErrTransient, ErrCorruption, ErrNoSpace). A nil err stays nil.
func WithClass(err, class error) error {
	if err == nil {
		return nil
	}
	return &withClass{err: err, class: class}
}

func (e *withClass) Error() string { return e.err.Error() }

func (e *withClass) Unwrap() error { return e.err }

func (e *withClass) Is(target error) bool { return target == e.class }
