package storage

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestChecksummedRoundTrip(t *testing.T) {
	inner := NewMemStore(8 + ChecksumOverhead)
	c, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize() != 8 {
		t.Fatalf("logical block size = %d, want 8", c.BlockSize())
	}
	c.SetEpoch(7)
	data := []float64{1, -2.5, 0, 3e300, math.Inf(1), 5, 6, 7}
	if err := c.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 8)
	if err := c.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("slot %d = %g, want %g", i, buf[i], data[i])
		}
	}
	epoch, written, err := c.ReadMeta(3)
	if err != nil || !written || epoch != 7 {
		t.Fatalf("ReadMeta = (%d, %v, %v), want (7, true, nil)", epoch, written, err)
	}
}

func TestChecksummedUnwrittenReadsZero(t *testing.T) {
	c, err := NewChecksummed(NewMemStore(4 + ChecksumOverhead))
	if err != nil {
		t.Fatal(err)
	}
	buf := []float64{9, 9, 9, 9}
	if err := c.ReadBlock(12, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("slot %d = %g, want 0", i, v)
		}
	}
	if _, written, err := c.ReadMeta(12); written || err != nil {
		t.Fatalf("unwritten block reported written=%v err=%v", written, err)
	}
}

func TestChecksummedDetectsCorruption(t *testing.T) {
	inner := NewMemStore(4 + ChecksumOverhead)
	c, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlock(0, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload coefficient behind the wrapper's back.
	raw := make([]float64, inner.BlockSize())
	if err := inner.ReadBlock(0, raw); err != nil {
		t.Fatal(err)
	}
	raw[1] = 2.0000001
	if err := inner.WriteBlock(0, raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	if err := c.ReadBlock(0, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit rot not detected: err = %v", err)
	}
	if _, written, err := c.ReadMeta(0); !written || !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadMeta on corrupt block = (written=%v, %v)", written, err)
	}
}

func TestChecksummedDetectsTornWrite(t *testing.T) {
	// A torn write leaves new payload in a prefix with a zeroed footer.
	inner := NewMemStore(4 + ChecksumOverhead)
	c, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]float64, inner.BlockSize())
	torn[0] = 42 // payload made it, footer did not
	if err := inner.WriteBlock(5, torn); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	if err := c.ReadBlock(5, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("torn write not detected: err = %v", err)
	}
}

func TestChecksummedOnFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chk.dat")
	fs, err := NewFileStore(path, 6+ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecksummed(fs)
	if err != nil {
		t.Fatal(err)
	}
	c.SetEpoch(3)
	want := []float64{1, 2, 3, 4, 5, 6}
	if err := c.WriteBlock(2, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path, 6+ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewChecksummed(fs2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := make([]float64, 6)
	if err := c2.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %g, want %g", i, got[i], want[i])
		}
	}
	if epoch, written, err := c2.ReadMeta(2); err != nil || !written || epoch != 3 {
		t.Fatalf("reopened meta = (%d, %v, %v)", epoch, written, err)
	}
	// Interleaved unwritten block still reads as zeros.
	if err := c2.ReadBlock(1, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("unwritten slot %d = %g", i, v)
		}
	}
}
