package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool is an LRU write-back cache of blocks in front of a BlockStore.
// It models the paper's limited main memory: a pool of capacity C holds C
// blocks; accessing a cached block costs no I/O on the underlying store,
// while a miss reads (and, for dirty evictions, writes) through.
//
// A mutex serializes every operation, so a BufferPool is safe for
// concurrent use (and, because all inner-store traffic happens under the
// lock, it also serializes access to the wrapped store).
type BufferPool struct {
	mu       sync.Mutex
	inner    BlockStore
	capacity int
	lru      *list.List // front = most recently used; values are *frame
	frames   map[int]*list.Element
	hits     int64
	misses   int64
	closed   bool
}

type frame struct {
	id     int
	data   []float64
	dirty  bool
	loaded bool // data holds valid contents (false only for a batch-read placeholder awaiting its vectored fill)
}

// NewBufferPool wraps inner with an LRU cache of the given block capacity.
func NewBufferPool(inner BlockStore, capacity int) *BufferPool {
	if capacity <= 0 {
		panic(fmt.Sprintf("storage: buffer pool capacity %d", capacity))
	}
	return &BufferPool{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[int]*list.Element),
	}
}

// BlockSize returns the wrapped store's block size.
func (p *BufferPool) BlockSize() int { return p.inner.BlockSize() }

func (p *BufferPool) get(id int, loadFromInner bool) (*frame, error) {
	if el, ok := p.frames[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*frame), nil
	}
	p.misses++
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: make([]float64, p.inner.BlockSize())}
	if loadFromInner {
		if err := p.inner.ReadBlock(id, fr.data); err != nil {
			return nil, err
		}
		fr.loaded = true
	}
	p.frames[id] = p.lru.PushFront(fr)
	return fr, nil
}

func (p *BufferPool) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		el := p.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := p.inner.WriteBlock(fr.id, fr.data); err != nil {
				return err
			}
		}
		p.lru.Remove(el)
		delete(p.frames, fr.id)
	}
	return nil
}

// ReadBlock implements BlockStore through the cache.
func (p *BufferPool) ReadBlock(id int, buf []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(p, id, buf); err != nil {
		return err
	}
	fr, err := p.get(id, true)
	if err != nil {
		return err
	}
	copy(buf, fr.data)
	return nil
}

// ReadBlocks implements BatchReader. Cache state must evolve exactly as
// under the per-block loop — hits, misses, LRU order, and eviction victims
// all depend on probe order — so the probe pass installs a placeholder
// frame per miss in loop order (evicting as it goes), then one vectored
// inner read fills every placeholder, then the results are copied out.
// Clean placeholders never cause eviction writes, so the deferred fill
// reads the same inner state the loop would have.
func (p *BufferPool) ReadBlocks(ids []int, bufs [][]float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBatchArgs(p, ids, bufs); err != nil {
		return err
	}
	frames := make([]*frame, len(ids))
	var missIDs []int
	var missBufs [][]float64
	var placeholders []*frame
	for i, id := range ids {
		fr, err := p.get(id, false)
		if err != nil {
			p.uninstall(placeholders)
			return err
		}
		frames[i] = fr
		if !fr.loaded {
			fr.loaded = true
			missIDs = append(missIDs, id)
			missBufs = append(missBufs, fr.data)
			placeholders = append(placeholders, fr)
		}
	}
	if len(missIDs) > 0 {
		if err := ReadBlocksOf(p.inner, missIDs, missBufs); err != nil {
			p.uninstall(placeholders)
			return err
		}
	}
	for i, fr := range frames {
		copy(bufs[i], fr.data)
	}
	return nil
}

// uninstall removes this batch's placeholder frames after a failed
// vectored fill so no unloaded data is ever served as a hit.
func (p *BufferPool) uninstall(placeholders []*frame) {
	for _, fr := range placeholders {
		if el, ok := p.frames[fr.id]; ok && el.Value.(*frame) == fr {
			p.lru.Remove(el)
			delete(p.frames, fr.id)
		}
	}
}

// WriteBlock implements BlockStore through the cache (write-back: the
// underlying store sees the block only on eviction or Flush).
func (p *BufferPool) WriteBlock(id int, data []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(p, id, data); err != nil {
		return err
	}
	// A full-block overwrite does not need the old contents.
	fr, err := p.get(id, false)
	if err != nil {
		return err
	}
	copy(fr.data, data)
	fr.dirty = true
	fr.loaded = true
	return nil
}

// WriteBlocks implements BatchWriter: the whole batch is staged in the
// cache under one lock acquisition, in slice order. Write-back means there
// is no inner batch to issue — the only inner traffic is dirty evictions,
// which happen at exactly the points the per-block loop would trigger
// them.
func (p *BufferPool) WriteBlocks(ids []int, data [][]float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBatchArgs(p, ids, data); err != nil {
		return err
	}
	for i, id := range ids {
		fr, err := p.get(id, false)
		if err != nil {
			return err
		}
		copy(fr.data, data[i])
		fr.dirty = true
		fr.loaded = true
	}
	return nil
}

// Flush writes all dirty blocks through without evicting them.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *BufferPool) flushLocked() error {
	if p.closed {
		return ErrClosed
	}
	// One vectored write of every dirty frame, in LRU front-to-back order —
	// the same block sequence the per-block loop produced.
	var ids []int
	var data [][]float64
	var flushed []*frame
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			ids = append(ids, fr.id)
			data = append(data, fr.data)
			flushed = append(flushed, fr)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	if err := WriteBlocksOf(p.inner, ids, data); err != nil {
		return err
	}
	for _, fr := range flushed {
		fr.dirty = false
	}
	return nil
}

// Commit flushes dirty blocks and forwards the durability point to the
// wrapped store, so a transactional store under the pool seals everything
// the pool was holding into the batch.
func (p *BufferPool) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	return CommitIfAble(p.inner)
}

// HitRate returns hits, misses, and the hit fraction (0 when unused).
func (p *BufferPool) HitRate() (hits, misses int64, rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return p.hits, p.misses, 0
	}
	return p.hits, p.misses, float64(p.hits) / float64(total)
}

// Len returns the number of cached blocks.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// MappedReads forwards the inner stack's mapped-read counter (pool hits
// touch no device and so do not move it).
func (p *BufferPool) MappedReads() int64 { return MappedReadsOf(p.inner) }

// Close flushes dirty blocks and closes the underlying store.
func (p *BufferPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.closed = true
	return p.inner.Close()
}
