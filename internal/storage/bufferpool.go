package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool is an LRU write-back cache of blocks in front of a BlockStore.
// It models the paper's limited main memory: a pool of capacity C holds C
// blocks; accessing a cached block costs no I/O on the underlying store,
// while a miss reads (and, for dirty evictions, writes) through.
//
// A mutex serializes every operation, so a BufferPool is safe for
// concurrent use (and, because all inner-store traffic happens under the
// lock, it also serializes access to the wrapped store).
type BufferPool struct {
	mu       sync.Mutex
	inner    BlockStore
	capacity int
	lru      *list.List // front = most recently used; values are *frame
	frames   map[int]*list.Element
	hits     int64
	misses   int64
	closed   bool
}

type frame struct {
	id    int
	data  []float64
	dirty bool
}

// NewBufferPool wraps inner with an LRU cache of the given block capacity.
func NewBufferPool(inner BlockStore, capacity int) *BufferPool {
	if capacity <= 0 {
		panic(fmt.Sprintf("storage: buffer pool capacity %d", capacity))
	}
	return &BufferPool{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[int]*list.Element),
	}
}

// BlockSize returns the wrapped store's block size.
func (p *BufferPool) BlockSize() int { return p.inner.BlockSize() }

func (p *BufferPool) get(id int, loadFromInner bool) (*frame, error) {
	if el, ok := p.frames[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*frame), nil
	}
	p.misses++
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: make([]float64, p.inner.BlockSize())}
	if loadFromInner {
		if err := p.inner.ReadBlock(id, fr.data); err != nil {
			return nil, err
		}
	}
	p.frames[id] = p.lru.PushFront(fr)
	return fr, nil
}

func (p *BufferPool) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		el := p.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := p.inner.WriteBlock(fr.id, fr.data); err != nil {
				return err
			}
		}
		p.lru.Remove(el)
		delete(p.frames, fr.id)
	}
	return nil
}

// ReadBlock implements BlockStore through the cache.
func (p *BufferPool) ReadBlock(id int, buf []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(p, id, buf); err != nil {
		return err
	}
	fr, err := p.get(id, true)
	if err != nil {
		return err
	}
	copy(buf, fr.data)
	return nil
}

// WriteBlock implements BlockStore through the cache (write-back: the
// underlying store sees the block only on eviction or Flush).
func (p *BufferPool) WriteBlock(id int, data []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(p, id, data); err != nil {
		return err
	}
	// A full-block overwrite does not need the old contents.
	fr, err := p.get(id, false)
	if err != nil {
		return err
	}
	copy(fr.data, data)
	fr.dirty = true
	return nil
}

// Flush writes all dirty blocks through without evicting them.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *BufferPool) flushLocked() error {
	if p.closed {
		return ErrClosed
	}
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := p.inner.WriteBlock(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Commit flushes dirty blocks and forwards the durability point to the
// wrapped store, so a transactional store under the pool seals everything
// the pool was holding into the batch.
func (p *BufferPool) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	return CommitIfAble(p.inner)
}

// HitRate returns hits, misses, and the hit fraction (0 when unused).
func (p *BufferPool) HitRate() (hits, misses int64, rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return p.hits, p.misses, 0
	}
	return p.hits, p.misses, float64(p.hits) / float64(total)
}

// Len returns the number of cached blocks.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Close flushes dirty blocks and closes the underlying store.
func (p *BufferPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.closed = true
	return p.inner.Close()
}
