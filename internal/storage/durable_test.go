package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDurableBasicCommitAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.dat")
	d, err := CreateDurable(path, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.BlockSize() != 4 {
		t.Fatalf("block size = %d", d.BlockSize())
	}
	if err := d.WriteBlock(0, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(5, []float64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	// Staged writes are visible before commit.
	buf := make([]float64, 4)
	if err := d.ReadBlock(5, buf); err != nil || buf[0] != 5 {
		t.Fatalf("overlay read = %v, %v", buf, err)
	}
	if d.Pending() != 2 {
		t.Fatalf("pending = %d", d.Pending())
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 || d.Epoch() != 1 {
		t.Fatalf("after commit: pending=%d epoch=%d", d.Pending(), d.Epoch())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(path, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.ReadBlock(0, buf); err != nil || buf[3] != 4 {
		t.Fatalf("reopened block 0 = %v, %v", buf, err)
	}
	if err := d2.ReadBlock(5, buf); err != nil || buf[0] != 5 {
		t.Fatalf("reopened block 5 = %v, %v", buf, err)
	}
	if _, ok := d2.Recovered(); ok {
		t.Fatal("clean reopen reported a recovery")
	}
	rep, err := Fsck(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Written != 2 {
		t.Fatalf("fsck = %+v", rep)
	}
}

func TestDurableRollback(t *testing.T) {
	data := NewMemStore(4 + ChecksumOverhead)
	wal := NewMemStore(4 + JournalOverhead)
	d, err := NewDurable(data, wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(1, []float64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	d.Rollback()
	buf := make([]float64, 4)
	if err := d.ReadBlock(1, buf); err != nil || buf[0] != 0 {
		t.Fatalf("rolled-back block = %v, %v", buf, err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 0 {
		t.Fatalf("empty commit bumped epoch to %d", d.Epoch())
	}
}

func TestDurableCloseCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.dat")
	d, err := CreateDurable(path, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(2, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := os.Stat(WalPath(path)); err != nil {
		t.Fatalf("wal sidecar missing: %v", err)
	}
	d2, err := OpenDurable(path, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	buf := make([]float64, 3)
	if err := d2.ReadBlock(2, buf); err != nil || buf[2] != 3 {
		t.Fatalf("block after close-commit = %v, %v", buf, err)
	}
}

func TestDurableOpenWithoutWalRecreatesIt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.dat")
	d, err := CreateDurable(path, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(0, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(WalPath(path)); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(path, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	buf := make([]float64, 3)
	if err := d2.ReadBlock(0, buf); err != nil || buf[1] != 5 {
		t.Fatalf("block = %v, %v", buf, err)
	}
}

func TestDurableClosedErrors(t *testing.T) {
	d, err := NewDurable(NewMemStore(2+ChecksumOverhead), NewMemStore(2+JournalOverhead))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if err := d.ReadBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := d.WriteBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := d.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
}

func TestFsckFlagsCorruptBlock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.dat")
	d, err := CreateDurable(path, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(0, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(1, []float64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot one byte of block 1's frame on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	frameBytes := int64(8 * (4 + ChecksumOverhead))
	if _, err := f.WriteAt([]byte{0xFF}, frameBytes+3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err := Fsck(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Corrupt) != 1 || rep.Corrupt[0] != 1 {
		t.Fatalf("fsck missed the rot: %+v", rep)
	}
}
