package storage

import "sync"

// Locked wraps a BlockStore with a mutex, making it safe for concurrent
// use. None of the stores in this package are otherwise goroutine-safe
// (they reuse internal buffers), so concurrent readers — e.g. parallel
// query workers sharing one tiled transform — should wrap the shared
// device in Locked and give each worker its own tile.Store view (whose
// scratch buffers are per-instance).
type Locked struct {
	mu    sync.Mutex
	inner BlockStore
}

// NewLocked wraps inner with a mutex.
func NewLocked(inner BlockStore) *Locked {
	return &Locked{inner: inner}
}

// BlockSize returns the wrapped block size.
func (l *Locked) BlockSize() int { return l.inner.BlockSize() }

// ReadBlock delegates under the lock.
func (l *Locked) ReadBlock(id int, buf []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.ReadBlock(id, buf)
}

// WriteBlock delegates under the lock.
func (l *Locked) WriteBlock(id int, data []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.WriteBlock(id, data)
}

// ReadBlocks delegates the whole batch under one lock acquisition — the
// lock-traffic win vectored requests exist for.
func (l *Locked) ReadBlocks(ids []int, bufs [][]float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ReadBlocksOf(l.inner, ids, bufs)
}

// WriteBlocks delegates the whole batch under one lock acquisition.
func (l *Locked) WriteBlocks(ids []int, data [][]float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return WriteBlocksOf(l.inner, ids, data)
}

// Sync delegates under the lock.
func (l *Locked) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return SyncIfAble(l.inner)
}

// Truncate delegates under the lock.
func (l *Locked) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return TruncateIfAble(l.inner)
}

// Commit delegates under the lock.
func (l *Locked) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return CommitIfAble(l.inner)
}

// Close delegates under the lock.
func (l *Locked) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Close()
}

// MappedReads forwards the inner stack's mapped-read counter. The
// counter is atomic at the device, so no lock is needed.
func (l *Locked) MappedReads() int64 { return MappedReadsOf(l.inner) }
