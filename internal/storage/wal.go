package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
)

// JournalOverhead is the number of trailing slots a journal record spends
// on its footer (block id, aux, epoch stamp, CRC64). A journal over blocks
// of P slots carries payloads of P-4 coefficients.
const JournalOverhead = 4

// ErrJournalCorrupt marks a journal whose committed batch cannot be
// replayed: the commit record is present but one of its entries fails
// verification. This cannot happen under a single crash (entries are
// fsynced before the commit record is written); it indicates media-level
// corruption and requires manual intervention. It belongs to the
// ErrCorruption class of the storage error taxonomy.
var ErrJournalCorrupt = newClassified("storage: journal corrupt", ErrCorruption)

const (
	journalKindData   = 1 // record carries the post-image of one block
	journalKindCommit = 2 // record seals the batch; aux = entry count
)

// Journal is a write-ahead block journal: before a batch of block
// post-images is applied to the main store, the batch is appended here and
// fsynced, then sealed with a commit record and fsynced again. Recovery
// (Redo) replays a sealed batch and discards an unsealed one, which is what
// makes a SHIFT-SPLIT maintenance batch atomic: a crash leaves either the
// pre-batch or the post-batch transform, never a hybrid.
//
// Record layout within a journal block of P = payload+4 slots:
//
//	[0, P-4)  block post-image (zero for commit records)
//	P-4       target block id (uint64 bits)
//	P-3       aux: entry index for data records, entry count for commit
//	P-2       stamp = epoch<<2 | kind (always non-zero)
//	P-1       CRC64/ECMA over all preceding slots' bytes
//
// The journal holds at most one batch; Reset truncates it after the batch
// has been applied and the main store fsynced.
type Journal struct {
	bs      BlockStore
	payload int
	frame   []float64
	bytes   []byte
}

// NewJournal binds a journal to its backing store; bs must hold blocks of
// payload+JournalOverhead slots and support Truncate.
func NewJournal(bs BlockStore, payload int) (*Journal, error) {
	if payload <= 0 {
		return nil, fmt.Errorf("storage: journal payload %d", payload)
	}
	if bs.BlockSize() != payload+JournalOverhead {
		return nil, fmt.Errorf("storage: journal store block size %d, want %d", bs.BlockSize(), payload+JournalOverhead)
	}
	p := bs.BlockSize()
	return &Journal{
		bs:      bs,
		payload: payload,
		frame:   make([]float64, p),
		bytes:   make([]byte, 8*(p-1)),
	}, nil
}

func (j *Journal) recordCRC(frame []float64) uint64 {
	for i, v := range frame[:len(frame)-1] {
		binary.LittleEndian.PutUint64(j.bytes[8*i:], math.Float64bits(v))
	}
	return crc64.Checksum(j.bytes, crcTable)
}

// fillRecord assembles one journal record into frame (a full journal
// block); the record bytes are a pure function of the arguments, so the
// vectored LogBatch path lays down exactly what per-record writes would.
func (j *Journal) fillRecord(frame []float64, kind int, epoch uint64, id int, aux uint64, data []float64) {
	p := j.payload
	ZeroFill(frame[:p])
	copy(frame[:p], data)
	frame[p] = math.Float64frombits(uint64(id))
	frame[p+1] = math.Float64frombits(aux)
	frame[p+2] = math.Float64frombits(epoch<<2 | uint64(kind))
	frame[p+3] = math.Float64frombits(j.recordCRC(frame))
}

func (j *Journal) writeRecord(at int, kind int, epoch uint64, id int, aux uint64, data []float64) error {
	j.fillRecord(j.frame, kind, epoch, id, aux, data)
	return j.bs.WriteBlock(at, j.frame)
}

// readRecord reads and classifies the record at position at. written=false
// means the slot is virgin (all zero). A non-virgin record that fails its
// CRC returns kind 0 with written=true.
func (j *Journal) readRecord(at int) (kind int, epoch uint64, id int, aux uint64, data []float64, written bool, err error) {
	if err := j.bs.ReadBlock(at, j.frame); err != nil {
		return 0, 0, 0, 0, nil, false, err
	}
	p := j.payload
	stamp := math.Float64bits(j.frame[p+2])
	crcStored := math.Float64bits(j.frame[p+3])
	if stamp == 0 && crcStored == 0 {
		allZero := true
		for _, v := range j.frame {
			if math.Float64bits(v) != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return 0, 0, 0, 0, nil, false, nil
		}
		return 0, 0, 0, 0, nil, true, nil // torn record
	}
	if crc := j.recordCRC(j.frame); crc != crcStored {
		return 0, 0, 0, 0, nil, true, nil // torn record
	}
	kind = int(stamp & 3)
	if kind != journalKindData && kind != journalKindCommit {
		return 0, 0, 0, 0, nil, true, nil
	}
	epoch = stamp >> 2
	id = int(math.Float64bits(j.frame[p]))
	aux = math.Float64bits(j.frame[p+1])
	data = append([]float64(nil), j.frame[:p]...)
	return kind, epoch, id, aux, data, true, nil
}

// LogBatch makes the batch durable: every post-image is appended and
// fsynced, then the commit record is written and fsynced. Once LogBatch
// returns nil the batch survives any crash.
func (j *Journal) LogBatch(epoch uint64, ids []int, blocks [][]float64) error {
	if len(ids) != len(blocks) {
		return fmt.Errorf("storage: journal batch has %d ids, %d blocks", len(ids), len(blocks))
	}
	for i, id := range ids {
		if id < 0 {
			return fmt.Errorf("storage: journal batch: negative block id %d", id)
		}
		if len(blocks[i]) != j.payload {
			return fmt.Errorf("storage: journal batch: block %d has %d slots, want %d", id, len(blocks[i]), j.payload)
		}
	}
	// The data records occupy journal positions 0..n-1 — one maximal
	// consecutive run, the ideal case for a vectored write. The record
	// bytes (and the fsync protocol around them) are identical to writing
	// them one at a time.
	p := j.bs.BlockSize()
	frames := SliceFrames(make([]float64, len(ids)*p), len(ids), p)
	at := make([]int, len(ids))
	for i, id := range ids {
		j.fillRecord(frames[i], journalKindData, epoch, id, uint64(i), blocks[i])
		at[i] = i
	}
	if err := WriteBlocksOf(j.bs, at, frames); err != nil {
		return err
	}
	if err := SyncIfAble(j.bs); err != nil {
		return err
	}
	if err := j.writeRecord(len(ids), journalKindCommit, epoch, 0, uint64(len(ids)), nil); err != nil {
		return err
	}
	return SyncIfAble(j.bs)
}

// RedoBatch is the result of scanning the journal on open.
type RedoBatch struct {
	Epoch     uint64
	IDs       []int
	Blocks    [][]float64
	Committed bool // a sealed batch is present and must be replayed
	Entries   int  // data records seen (including discarded unsealed ones)
}

// Redo scans the journal. If a sealed batch is present it is returned with
// Committed=true and the caller must replay it; an unsealed batch (crash
// before the commit record was durable) is reported with Committed=false
// and must be discarded — the main store was never touched.
func (j *Journal) Redo() (RedoBatch, error) {
	var out RedoBatch
	torn := false
	for at := 0; ; at++ {
		kind, epoch, id, aux, data, written, err := j.readRecord(at)
		if err != nil {
			return out, err
		}
		if !written {
			// Virgin slot before any commit record: the batch was never
			// sealed; discard it.
			out.IDs, out.Blocks = nil, nil
			return out, nil
		}
		if kind == 0 {
			// Torn record: keep scanning — if a commit record follows, the
			// journal is unrecoverable (entries must be durable before the
			// commit is written); if only virgin slots follow, this is the
			// torn tail of an unsealed batch and is discarded.
			torn = true
			continue
		}
		if kind == journalKindCommit {
			if torn || aux != uint64(len(out.IDs)) || (len(out.IDs) > 0 && epoch != out.Epoch) {
				return out, fmt.Errorf("storage: commit record for epoch %d with %d readable entries (want %d, torn=%v): %w",
					epoch, len(out.IDs), aux, torn, ErrJournalCorrupt)
			}
			out.Epoch = epoch
			out.Committed = true
			return out, nil
		}
		// Data record.
		if len(out.IDs) == 0 {
			out.Epoch = epoch
		}
		if torn || epoch != out.Epoch || aux != uint64(len(out.IDs)) {
			// Out-of-sequence or mixed-epoch data: treat like a torn tail.
			torn = true
			continue
		}
		out.IDs = append(out.IDs, id)
		out.Blocks = append(out.Blocks, data)
		out.Entries++
	}
}

// Reset retires the current batch by truncating the journal (atomic on the
// backing store) and syncing.
func (j *Journal) Reset() error {
	if err := TruncateIfAble(j.bs); err != nil {
		return err
	}
	return SyncIfAble(j.bs)
}

// JournalState summarizes the journal for fsck without replaying it.
type JournalState struct {
	Entries   int
	Committed bool
	Epoch     uint64
	Err       error // non-nil when the journal is unrecoverable
}

// Inspect scans the journal non-destructively.
func (j *Journal) Inspect() JournalState {
	batch, err := j.Redo()
	return JournalState{Entries: batch.Entries, Committed: batch.Committed, Epoch: batch.Epoch, Err: err}
}

// Close closes the backing store.
func (j *Journal) Close() error { return j.bs.Close() }
