package storage

import (
	"errors"
	"testing"
)

func TestFaultyReadTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	buf := make([]float64, 2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("unarmed read failed: %v", err)
	}
	f.FailReadAfter(2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("read 1 of 2 failed early: %v", err)
	}
	err := f.ReadBlock(0, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 of 2 = %v, want injected fault", err)
	}
	// Once triggered it stays failed.
	if err := f.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Error("fault should persist")
	}
}

func TestFaultyWriteTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	data := []float64{1, 2}
	f.FailWriteAfter(1)
	if err := f.WriteBlock(0, data); !errors.Is(err, ErrInjected) {
		t.Fatal("armed write did not fail")
	}
}

func TestFaultyWritesDoNotTriggerReads(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailReadAfter(1)
	if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	if err := f.ReadBlock(0, make([]float64, 2)); !errors.Is(err, ErrInjected) {
		t.Fatal("read trigger lost")
	}
}

func TestBufferPoolPropagatesInjectedFaults(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 1)
	if err := pool.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Evicting block 0 (dirty) must surface the write fault.
	f.FailWriteAfter(1)
	err := pool.ReadBlock(1, make([]float64, 2))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}
