package storage

import (
	"errors"
	"testing"
)

func TestFaultyReadTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	buf := make([]float64, 2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("unarmed read failed: %v", err)
	}
	f.FailReadAfter(2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("read 1 of 2 failed early: %v", err)
	}
	err := f.ReadBlock(0, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 of 2 = %v, want injected fault", err)
	}
	// Once triggered it stays failed.
	if err := f.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Error("fault should persist")
	}
}

func TestFaultyWriteTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	data := []float64{1, 2}
	f.FailWriteAfter(1)
	if err := f.WriteBlock(0, data); !errors.Is(err, ErrInjected) {
		t.Fatal("armed write did not fail")
	}
}

func TestFaultyWritesDoNotTriggerReads(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailReadAfter(1)
	if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	if err := f.ReadBlock(0, make([]float64, 2)); !errors.Is(err, ErrInjected) {
		t.Fatal("read trigger lost")
	}
}

func TestFaultyDisarm(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailReadAfter(1)
	f.FailReadAfter(0) // disarm before it fires
	if err := f.ReadBlock(0, make([]float64, 2)); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
}

func TestFaultyEveryNth(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailEveryNthWrite(3)
	var failed []int
	for i := 1; i <= 9; i++ {
		if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: %v", i, err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 3 || failed[1] != 6 || failed[2] != 9 {
		t.Fatalf("failed writes = %v, want [3 6 9]", failed)
	}
	if f.InjectedFaults() != 3 {
		t.Fatalf("InjectedFaults = %d", f.InjectedFaults())
	}
	f.FailEveryNthWrite(0)
	for i := 0; i < 6; i++ {
		if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
			t.Fatalf("disarmed write %d failed: %v", i, err)
		}
	}
}

func TestFaultyProbabilisticIsSeededAndBounded(t *testing.T) {
	run := func(seed int64) (failures int64) {
		f := NewFaulty(NewMemStore(2))
		f.FailReadsWithProbability(0.3, seed)
		buf := make([]float64, 2)
		for i := 0; i < 1000; i++ {
			if err := f.ReadBlock(0, buf); err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		return f.InjectedFaults()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d faults", a, b)
	}
	// p=0.3 over 1000 draws: anywhere near 300 is fine, zero or all is not.
	if a < 200 || a > 400 {
		t.Fatalf("fault count %d implausible for p=0.3", a)
	}
	if c := run(43); c == a {
		t.Logf("seeds 42 and 43 coincided at %d faults (possible but unlikely)", a)
	}
}

func TestBufferPoolPropagatesInjectedFaults(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 1)
	if err := pool.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Evicting block 0 (dirty) must surface the write fault.
	f.FailWriteAfter(1)
	err := pool.ReadBlock(1, make([]float64, 2))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}
