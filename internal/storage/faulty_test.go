package storage

import (
	"errors"
	"testing"
	"time"
)

func TestFaultyReadTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	buf := make([]float64, 2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("unarmed read failed: %v", err)
	}
	f.FailReadAfter(2)
	if err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("read 1 of 2 failed early: %v", err)
	}
	err := f.ReadBlock(0, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2 of 2 = %v, want injected fault", err)
	}
	// Once triggered it stays failed.
	if err := f.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Error("fault should persist")
	}
}

func TestFaultyWriteTrigger(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	data := []float64{1, 2}
	f.FailWriteAfter(1)
	if err := f.WriteBlock(0, data); !errors.Is(err, ErrInjected) {
		t.Fatal("armed write did not fail")
	}
}

func TestFaultyWritesDoNotTriggerReads(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailReadAfter(1)
	if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatalf("write failed: %v", err)
	}
	if err := f.ReadBlock(0, make([]float64, 2)); !errors.Is(err, ErrInjected) {
		t.Fatal("read trigger lost")
	}
}

func TestFaultyDisarm(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailReadAfter(1)
	f.FailReadAfter(0) // disarm before it fires
	if err := f.ReadBlock(0, make([]float64, 2)); err != nil {
		t.Fatalf("disarmed read failed: %v", err)
	}
}

func TestFaultyEveryNth(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailEveryNthWrite(3)
	var failed []int
	for i := 1; i <= 9; i++ {
		if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: %v", i, err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 3 || failed[1] != 6 || failed[2] != 9 {
		t.Fatalf("failed writes = %v, want [3 6 9]", failed)
	}
	if f.InjectedFaults() != 3 {
		t.Fatalf("InjectedFaults = %d", f.InjectedFaults())
	}
	f.FailEveryNthWrite(0)
	for i := 0; i < 6; i++ {
		if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
			t.Fatalf("disarmed write %d failed: %v", i, err)
		}
	}
}

func TestFaultyProbabilisticIsSeededAndBounded(t *testing.T) {
	run := func(seed int64) (failures int64) {
		f := NewFaulty(NewMemStore(2))
		f.FailReadsWithProbability(0.3, seed)
		buf := make([]float64, 2)
		for i := 0; i < 1000; i++ {
			if err := f.ReadBlock(0, buf); err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		return f.InjectedFaults()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d faults", a, b)
	}
	// p=0.3 over 1000 draws: anywhere near 300 is fine, zero or all is not.
	if a < 200 || a > 400 {
		t.Fatalf("fault count %d implausible for p=0.3", a)
	}
	if c := run(43); c == a {
		t.Logf("seeds 42 and 43 coincided at %d faults (possible but unlikely)", a)
	}
}

func TestBufferPoolPropagatesInjectedFaults(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 1)
	if err := pool.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Evicting block 0 (dirty) must surface the write fault.
	f.FailWriteAfter(1)
	err := pool.ReadBlock(1, make([]float64, 2))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}

// TestFaultyBitRotIsSilent proves the fault model: a rotted read reports
// success at the Faulty layer, and only the Checksummed wrapper above it
// turns the flipped bit into an ErrChecksum/ErrCorruption.
func TestFaultyBitRotIsSilent(t *testing.T) {
	inner := NewMemStore(6)
	f := NewFaulty(inner)
	cs, err := NewChecksummed(f)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		if err := cs.WriteBlock(id, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	f.RotReadsWithProbability(1, 42) // every read rots
	// The Faulty layer itself reports success: silent corruption.
	raw := make([]float64, 6)
	if err := f.ReadBlock(0, raw); err != nil {
		t.Fatalf("Faulty reported the rot: %v", err)
	}
	if f.RottedBlocks() == 0 {
		t.Fatal("no rot was injected — test is vacuous")
	}
	// The checksum layer catches it on every read.
	buf := make([]float64, 4)
	for id := 0; id < 8; id++ {
		err := cs.ReadBlock(id, buf)
		if !errors.Is(err, ErrChecksum) || !errors.Is(err, ErrCorruption) {
			t.Fatalf("read %d = %v, want checksum/corruption error", id, err)
		}
	}
	f.RotReadsWithProbability(0, 0) // disarm: blocks were never modified on media
	for id := 0; id < 8; id++ {
		if err := cs.ReadBlock(id, buf); err != nil {
			t.Fatalf("read %d after disarm: %v", id, err)
		}
	}
}

// TestFaultyWriteRotPersists proves write rot reaches the medium: the
// block stays corrupt for every subsequent read until rewritten.
func TestFaultyWriteRotPersists(t *testing.T) {
	inner := NewMemStore(6)
	f := NewFaulty(inner)
	cs, err := NewChecksummed(f)
	if err != nil {
		t.Fatal(err)
	}
	f.RotWritesWithProbability(1, 7)
	payload := []float64{5, 6, 7, 8}
	if err := cs.WriteBlock(3, payload); err != nil {
		t.Fatalf("rotted write reported an error: %v", err)
	}
	if payload[0] != 5 || payload[3] != 8 {
		t.Fatal("write rot modified the caller's slice")
	}
	f.RotWritesWithProbability(0, 0)
	buf := make([]float64, 4)
	for try := 0; try < 3; try++ {
		err := cs.ReadBlock(3, buf)
		if !errors.Is(err, ErrCorruption) {
			t.Fatalf("try %d: err = %v, want persistent corruption", try, err)
		}
	}
	// A clean rewrite heals the block.
	if err := cs.WriteBlock(3, payload); err != nil {
		t.Fatal(err)
	}
	if err := cs.ReadBlock(3, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if buf[0] != 5 {
		t.Fatalf("healed block = %v", buf)
	}
}

// TestFaultyBatchRotMatchesLoop checks the vectored read path applies the
// same rot draws the per-block loop would.
func TestFaultyBatchRotMatchesLoop(t *testing.T) {
	inner := NewMemStore(4)
	f := NewFaulty(inner)
	for id := 0; id < 6; id++ {
		if err := f.WriteBlock(id, []float64{float64(id), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	f.RotReadsWithProbability(0.5, 99)
	ids := []int{0, 1, 2, 3, 4, 5}
	bufs := SliceFrames(make([]float64, 24), 6, 4)
	if err := f.ReadBlocks(ids, bufs); err != nil {
		t.Fatal(err)
	}
	got := f.RottedBlocks()
	if got == 0 || got == 6 {
		t.Fatalf("rot draws degenerate: %d of 6", got)
	}
	rotten := 0
	for i, id := range ids {
		if bufs[i][0] != float64(id) || bufs[i][1] != 0 || bufs[i][2] != 0 || bufs[i][3] != 0 {
			rotten++
		}
	}
	if int64(rotten) != got {
		t.Fatalf("observed %d rotted blocks, counter says %d", rotten, got)
	}
}

// TestFaultyDelay checks latency injection stalls operations.
func TestFaultyDelay(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.Delay(10 * time.Millisecond)
	start := time.Now()
	if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("write took %v, want >= 10ms", d)
	}
	f.Delay(0)
	start = time.Now()
	if err := f.ReadBlock(0, make([]float64, 2)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("disarmed delay still stalls: %v", d)
	}
}

// TestFaultyConcurrentArming drives I/O while another goroutine re-arms
// triggers; meaningful under -race (the triggers are mutex-guarded).
func TestFaultyConcurrentArming(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			f.FailEveryNthRead(3)
			f.RotReadsWithProbability(0.1, 1)
			f.Delay(0)
			f.FailEveryNthRead(0)
			f.RotReadsWithProbability(0, 0)
		}
	}()
	buf := make([]float64, 2)
	for i := 0; i < 400; i++ {
		_ = f.ReadBlock(0, buf)
		_ = f.WriteBlock(0, []float64{1, 2})
	}
	<-done
	_ = f.InjectedFaults()
	_ = f.RottedBlocks()
}
