package storage

import (
	"strings"
	"testing"
	"time"
)

func TestDiskModelEstimate(t *testing.T) {
	m := DiskModel{SeekTime: 10 * time.Millisecond, TransferPerBlock: time.Millisecond}
	got := m.Estimate(Stats{Reads: 50, Writes: 50})
	want := 100*10*time.Millisecond + 100*time.Millisecond
	if got != want {
		t.Errorf("Estimate = %v, want %v", got, want)
	}
}

func TestDiskModelSequentialFractionSkipsSeeks(t *testing.T) {
	m := DiskModel{SeekTime: 10 * time.Millisecond, TransferPerBlock: time.Millisecond, SequentialFraction: 1}
	got := m.Estimate(Stats{Reads: 100})
	if got != 100*time.Millisecond {
		t.Errorf("fully sequential estimate = %v", got)
	}
}

func TestDisk2005DominatedBySeeks(t *testing.T) {
	m := Disk2005(4096)
	stats := Stats{Reads: 1000}
	est := m.Estimate(stats)
	transferOnly := time.Duration(1000 * float64(m.TransferPerBlock))
	if est < 10*transferOnly {
		t.Errorf("2005 disk should be seek-dominated: est %v, transfer %v", est, transferOnly)
	}
}

func TestSSDFasterThanDisk(t *testing.T) {
	stats := Stats{Reads: 500, Writes: 500}
	if SSD2020(4096).Estimate(stats) >= Disk2005(4096).Estimate(stats) {
		t.Error("SSD should beat the 2005 disk")
	}
}

func TestDiskModelString(t *testing.T) {
	if !strings.Contains(Disk2005(4096).String(), "seek=") {
		t.Error("String rendering wrong")
	}
}
