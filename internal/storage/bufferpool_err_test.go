package storage

import (
	"errors"
	"testing"
)

// TestBufferPoolEvictionFailureKeepsFrame: when the dirty-eviction
// write-back fails, the victim frame must stay cached and dirty — the
// pool must not drop the only copy of the data — and the triggering
// operation must not land a half-inserted frame in the LRU.
func TestBufferPoolEvictionFailureKeepsFrame(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 1)
	if err := pool.WriteBlock(0, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	f.FailWriteAfter(1)
	if err := pool.ReadBlock(1, make([]float64, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction error = %v", err)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d frames after failed eviction, want 1", pool.Len())
	}
	// The dirty block is still readable from the cache...
	buf := make([]float64, 2)
	if err := pool.ReadBlock(0, buf); err != nil || buf[0] != 7 {
		t.Fatalf("victim lost: %v, %v", buf, err)
	}
	// ...and once the fault clears, the pool works again end to end.
	f.FailWriteAfter(0)
	if err := pool.ReadBlock(1, buf); err != nil {
		t.Fatalf("retry after disarm: %v", err)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// The inner store must now hold block 0's data.
	inner := make([]float64, 2)
	if err := f.ReadBlock(0, inner); err != nil || inner[1] != 8 {
		t.Fatalf("inner store after recovery = %v, %v", inner, err)
	}
}

// TestBufferPoolFlushPropagatesAndStaysUsable: Flush surfaces the first
// write-back error, keeps the failed frame dirty, and a later Flush
// completes once the fault is gone.
func TestBufferPoolFlushPropagatesAndStaysUsable(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 4)
	for id := 0; id < 3; id++ {
		if err := pool.WriteBlock(id, []float64{float64(id), 1}); err != nil {
			t.Fatal(err)
		}
	}
	f.FailWriteAfter(1)
	if err := pool.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("flush error = %v", err)
	}
	f.FailWriteAfter(0)
	if err := pool.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
	buf := make([]float64, 2)
	for id := 0; id < 3; id++ {
		if err := f.ReadBlock(id, buf); err != nil || buf[0] != float64(id) {
			t.Fatalf("inner block %d = %v, %v", id, buf, err)
		}
	}
}

// TestBufferPoolCloseErrorIsRetryable: a Close that fails mid-flush
// leaves the pool open so the caller can retry; a successful Close is
// idempotent.
func TestBufferPoolCloseErrorIsRetryable(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	pool := NewBufferPool(f, 2)
	if err := pool.WriteBlock(0, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	f.FailWriteAfter(1)
	if err := pool.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close error = %v", err)
	}
	// Still open: the dirty frame survived, so a retry can flush it.
	f.FailWriteAfter(0)
	if err := pool.Close(); err != nil {
		t.Fatalf("retried close: %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// After close, operations are rejected rather than corrupting state.
	if err := pool.WriteBlock(1, []float64{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v", err)
	}
}
