package storage

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file is the MVCC epoch layer: a per-epoch block-id remap table
// between the tile map (logical block ids) and the physical store, so
// maintenance writes go to freshly allocated physical blocks for the next
// epoch while readers keep resolving the current epoch's table through a
// refcounted Snapshot. The flip is a single Commit on the write path: the
// dirty table pages and superblock join the same journal group as the data
// blocks, so a crash recovers to exactly the old or exactly the new epoch.
//
// Physical layout (absolute block ids on the underlying store):
//
//	[0, hdr)             superblock: magic, version, epoch, logical, pages
//	[hdr, hdr+pages)     remap table, blockSize entries per page; an entry
//	                     is uint64(phys+1) as float64 bits, 0 = unmapped
//	[hdr+pages, ...)     data blocks, copy-on-write allocated
//
// All superblock and table slots hold raw uint64 bit patterns reinterpreted
// as float64 (math.Float64frombits); they round-trip through every block
// store bit-exactly and are never used arithmetically.

// versionedMagic identifies a Versioned superblock ("SSEPOCH1").
const versionedMagic uint64 = 0x5353_4550_4f43_4831

// versionedVersion is the on-media format version.
const versionedVersion uint64 = 1

// superSlots is the number of superblock value slots (magic, version,
// epoch, logical, pages).
const superSlots = 5

// ErrSnapshotReadOnly is returned by writes through a Snapshot: a pinned
// epoch is immutable by construction.
var ErrSnapshotReadOnly = errors.New("storage: snapshot is read-only")

// epochTable is one immutable committed remap: logical block id -> physical
// block id (-1 = unmapped, reads as zeros). refs counts pinned Snapshots
// and is guarded by the owning Versioned's mu.
type epochTable struct {
	epoch uint64
	phys  []int64
	refs  int
}

// Versioned interposes the epoch remap between logical block ids (what the
// tile map addresses) and a physical store. Writes are copy-on-write: the
// first write to a logical block in an epoch allocates a fresh physical
// block (from the free list, else the high-water mark), so no live
// snapshot's blocks are ever overwritten. Commit seals the building epoch —
// data, dirty table pages, and superblock in one batch on the write path —
// and atomically publishes the new table.
//
// Reads and writes through the Versioned itself resolve the building
// overlay first (read-your-writes for the maintenance engines), then the
// current table. Concurrent readers must pin an epoch with Acquire and read
// through the returned Snapshot, which resolves one immutable table against
// the read path for its whole lifetime.
type Versioned struct {
	write BlockStore // full mutation path (device, journal, staging)
	read  BlockStore // concurrent committed-read path; == write when shared

	logical  int // fixed logical block-id space
	hdr      int // superblock spread over this many physical blocks
	pages    int // remap table pages
	dataBase int // first data block id

	mu      sync.Mutex
	cur     *epochTable      // current committed table (also in tables)
	tables  []*epochTable    // live tables: cur plus pinned old epochs
	overlay map[int]int      // building epoch: logical -> phys
	dirty   map[int]struct{} // table pages touched by the overlay
	free    []int            // reclaimed physical data blocks, ascending
	next    int              // physical allocation high-water mark
	onReuse func(phys int)   // invoked when a freed physical id is reused
	closed  bool
}

// NewVersioned builds the epoch layer over a single store used for both
// reads and writes (the maintenance configuration). logical is the fixed
// number of logical blocks (the tiling's block count). The superblock and
// remap table are loaded if present; a fresh store starts at epoch 0 with
// every logical block unmapped.
func NewVersioned(store BlockStore, logical int) (*Versioned, error) {
	return NewVersionedSplit(store, store, logical)
}

// NewVersionedSplit is NewVersioned with distinct write and read paths: all
// mutations, table I/O, and commits go through write; Snapshot reads go
// through read. Both must bottom out at the same physical medium. Close
// closes the read path only when it is distinct (the serving composition
// threads the write path through the read chain).
func NewVersionedSplit(write, read BlockStore, logical int) (*Versioned, error) {
	if logical <= 0 {
		return nil, fmt.Errorf("storage: versioned store needs a positive logical block count, got %d", logical)
	}
	bs := write.BlockSize()
	if read.BlockSize() != bs {
		return nil, fmt.Errorf("storage: versioned read block size %d != write block size %d", read.BlockSize(), bs)
	}
	v := &Versioned{
		write:   write,
		read:    read,
		logical: logical,
		hdr:     (superSlots + bs - 1) / bs,
		pages:   (logical + bs - 1) / bs,
		overlay: make(map[int]int),
		dirty:   make(map[int]struct{}),
	}
	v.dataBase = v.hdr + v.pages
	if err := v.load(); err != nil {
		return nil, err
	}
	return v, nil
}

// OnReuse registers a hook called (under the allocation lock) whenever a
// physical block from the free list is reused for a new epoch. The serving
// cache drops its entry for that physical id here, which is the only cache
// invalidation the epoch layer ever needs: a physical id is never rebound
// while any live epoch still references it.
func (v *Versioned) OnReuse(fn func(phys int)) { v.onReuse = fn }

// load reads the superblock and remap table through the write path (open
// runs before any concurrency) and rebuilds the free list and high-water
// mark by sweeping the table.
func (v *Versioned) load() error {
	bs := v.write.BlockSize()
	super := make([]float64, v.hdr*bs)
	frames := SliceFrames(super, v.hdr, bs)
	ids := make([]int, v.hdr)
	for i := range ids {
		ids[i] = i
	}
	if err := ReadBlocksOf(v.write, ids, frames); err != nil {
		return fmt.Errorf("storage: read versioned superblock: %w", err)
	}
	magic := math.Float64bits(super[0])
	phys := make([]int64, v.logical)
	var epoch uint64
	if magic == 0 {
		// Fresh store: epoch 0, everything unmapped.
		for i := range phys {
			phys[i] = -1
		}
	} else {
		if magic != versionedMagic {
			return fmt.Errorf("storage: bad versioned superblock magic %#x", magic)
		}
		if ver := math.Float64bits(super[1]); ver != versionedVersion {
			return fmt.Errorf("storage: versioned format version %d, want %d", ver, versionedVersion)
		}
		epoch = math.Float64bits(super[2])
		if l := math.Float64bits(super[3]); int(l) != v.logical {
			return fmt.Errorf("storage: versioned superblock logical %d, tiling has %d", l, v.logical)
		}
		if p := math.Float64bits(super[4]); int(p) != v.pages {
			return fmt.Errorf("storage: versioned superblock pages %d, want %d", p, v.pages)
		}
		pageIDs := make([]int, v.pages)
		for i := range pageIDs {
			pageIDs[i] = v.hdr + i
		}
		slab := make([]float64, v.pages*bs)
		pages := SliceFrames(slab, v.pages, bs)
		if err := ReadBlocksOf(v.write, pageIDs, pages); err != nil {
			return fmt.Errorf("storage: read versioned remap table: %w", err)
		}
		for i := range phys {
			raw := math.Float64bits(pages[i/bs][i%bs])
			if raw == 0 {
				phys[i] = -1
				continue
			}
			p := int64(raw) - 1
			if p < int64(v.dataBase) {
				return fmt.Errorf("storage: versioned table maps logical %d to reserved physical %d", i, p)
			}
			phys[i] = p
		}
	}
	v.cur = &epochTable{epoch: epoch, phys: phys}
	v.tables = []*epochTable{v.cur}
	v.sweepLocked()
	return nil
}

// BlockSize returns the physical store's block size (logical and physical
// blocks are the same size; only the id spaces differ).
func (v *Versioned) BlockSize() int { return v.write.BlockSize() }

// Logical returns the fixed logical block-id space.
func (v *Versioned) Logical() int { return v.logical }

// PhysExtent returns the physical block-id high-water mark — the extent a
// scrubber should walk (superblock, table pages, and allocated data).
func (v *Versioned) PhysExtent() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.next
}

// Epoch returns the current committed epoch.
func (v *Versioned) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.cur.epoch
}

func (v *Versioned) checkLogical(id int) error {
	if id < 0 || id >= v.logical {
		return fmt.Errorf("storage: logical block id %d out of range [0, %d)", id, v.logical)
	}
	return nil
}

// resolve returns the physical id the building epoch sees for a logical id
// (overlay first, then the current table), or -1 when unmapped.
func (v *Versioned) resolve(id int) int64 {
	if phys, ok := v.overlay[id]; ok {
		return int64(phys)
	}
	return v.cur.phys[id]
}

// ReadBlock reads a logical block as the building epoch sees it: staged
// overlay writes are visible immediately (read-your-writes for the
// maintenance engines' read-modify-write), everything else resolves the
// current table. Unmapped blocks read as zeros without touching the device.
func (v *Versioned) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(v, id, buf); err != nil {
		return err
	}
	if err := v.checkLogical(id); err != nil {
		return err
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	phys := v.resolve(id)
	v.mu.Unlock()
	if phys < 0 {
		ZeroFill(buf)
		return nil
	}
	return v.write.ReadBlock(int(phys), buf)
}

// ReadBlocks implements BatchReader: every mapped id is resolved and
// fetched from the write path as one vectored read; unmapped ids zero-fill.
func (v *Versioned) ReadBlocks(ids []int, bufs [][]float64) error {
	if err := checkBatchArgs(v, ids, bufs); err != nil {
		return err
	}
	for _, id := range ids {
		if err := v.checkLogical(id); err != nil {
			return err
		}
	}
	physIDs := make([]int, 0, len(ids))
	physBufs := make([][]float64, 0, len(ids))
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	for i, id := range ids {
		if phys := v.resolve(id); phys >= 0 {
			physIDs = append(physIDs, int(phys))
			physBufs = append(physBufs, bufs[i])
		} else {
			ZeroFill(bufs[i])
		}
	}
	v.mu.Unlock()
	if len(physIDs) == 0 {
		return nil
	}
	return ReadBlocksOf(v.write, physIDs, physBufs)
}

// allocLocked picks the physical block for a logical write in the building
// epoch: a block already written this epoch is rewritten in place (it is
// invisible until Commit), otherwise the lowest free block is reused (after
// letting the reuse hook drop stale cache entries), otherwise the file
// grows at the high-water mark. Caller holds mu.
func (v *Versioned) allocLocked(id int) int {
	if phys, ok := v.overlay[id]; ok {
		return phys
	}
	var phys int
	if len(v.free) > 0 {
		phys = v.free[0]
		v.free = v.free[1:]
		if v.onReuse != nil {
			v.onReuse(phys)
		}
	} else {
		phys = v.next
		v.next++
	}
	v.overlay[id] = phys
	v.dirty[id/v.write.BlockSize()] = struct{}{}
	return phys
}

// WriteBlock stages a copy-on-write write of a logical block into the
// building epoch. The data reaches a physical block no live epoch
// references, so concurrent snapshot readers are undisturbed.
func (v *Versioned) WriteBlock(id int, data []float64) error {
	if err := checkBlockArgs(v, id, data); err != nil {
		return err
	}
	if err := v.checkLogical(id); err != nil {
		return err
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	phys := v.allocLocked(id)
	v.mu.Unlock()
	return v.write.WriteBlock(phys, data)
}

// WriteBlocks implements BatchWriter: the whole batch is allocated under
// one lock acquisition and forwarded as one vectored write.
func (v *Versioned) WriteBlocks(ids []int, data [][]float64) error {
	if err := checkBatchArgs(v, ids, data); err != nil {
		return err
	}
	for _, id := range ids {
		if err := v.checkLogical(id); err != nil {
			return err
		}
	}
	physIDs := make([]int, len(ids))
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	for i, id := range ids {
		physIDs[i] = v.allocLocked(id)
	}
	v.mu.Unlock()
	return WriteBlocksOf(v.write, physIDs, data)
}

// encodeSuper fills the superblock frames for the given epoch.
func (v *Versioned) encodeSuper(frames [][]float64, epoch uint64) {
	vals := [superSlots]uint64{versionedMagic, versionedVersion, epoch, uint64(v.logical), uint64(v.pages)}
	bs := v.write.BlockSize()
	for i, raw := range vals {
		frames[i/bs][i%bs] = math.Float64frombits(raw)
	}
}

// Commit seals the building epoch: the dirty remap-table pages and the
// superblock (stamped epoch+1) are written through the write path and the
// whole group — data blocks, table pages, superblock — is committed as one
// batch. Only after the medium accepted the batch is the new table
// published; the retired table's exclusive blocks return to the free list
// once no snapshot pins it.
//
// With nothing staged, Commit degenerates to forwarding the durability
// point (so idle flushes stay cheap and epoch-free).
func (v *Versioned) Commit() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	if len(v.overlay) == 0 {
		v.mu.Unlock()
		return CommitIfAble(v.write)
	}
	bs := v.write.BlockSize()
	next := &epochTable{epoch: v.cur.epoch + 1, phys: append([]int64(nil), v.cur.phys...)}
	// Deterministic application order: the overlay and dirty sets are maps,
	// but nothing numeric is folded in map order — entries land by index.
	for id, phys := range v.overlay {
		next.phys[id] = int64(phys)
	}
	dirtyPages := make([]int, 0, len(v.dirty))
	for p := range v.dirty {
		dirtyPages = append(dirtyPages, p)
	}
	sort.Ints(dirtyPages)
	v.mu.Unlock()

	// Serialize the dirty table pages and the superblock. This happens
	// outside the allocation lock: maintenance is the only mutator (writes
	// are externally serialized), so the overlay cannot change underneath.
	n := len(dirtyPages) + v.hdr
	slab := make([]float64, n*bs)
	frames := SliceFrames(slab, n, bs)
	ids := make([]int, 0, n)
	for i, p := range dirtyPages {
		page := frames[i]
		base := p * bs
		for s := 0; s < bs; s++ {
			l := base + s
			if l >= v.logical {
				break
			}
			raw := uint64(0)
			if phys := next.phys[l]; phys >= 0 {
				raw = uint64(phys) + 1
			}
			page[s] = math.Float64frombits(raw)
		}
		ids = append(ids, v.hdr+p)
	}
	v.encodeSuper(frames[len(dirtyPages):], next.epoch)
	for i := 0; i < v.hdr; i++ {
		ids = append(ids, i)
	}
	if err := WriteBlocksOf(v.write, ids, frames); err != nil {
		return fmt.Errorf("storage: write epoch %d remap table: %w", next.epoch, err)
	}
	if err := CommitIfAble(v.write); err != nil {
		return fmt.Errorf("storage: commit epoch %d: %w", next.epoch, err)
	}
	if _, transactional := v.write.(Committer); !transactional {
		// Non-transactional media: at least push the flip to stable storage.
		if err := SyncIfAble(v.write); err != nil {
			return fmt.Errorf("storage: sync epoch %d: %w", next.epoch, err)
		}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.cur
	v.cur = next
	v.tables = append(v.tables, next)
	v.overlay = make(map[int]int)
	v.dirty = make(map[int]struct{})
	if old.refs == 0 {
		v.retireLocked(old)
	}
	v.sweepLocked()
	return nil
}

// Rollback discards the building epoch: the overlay's allocations return
// to the free list and a transactional write path drops its staged blocks.
func (v *Versioned) Rollback() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.overlay = make(map[int]int)
	v.dirty = make(map[int]struct{})
	type rollbacker interface{ Rollback() }
	if rb, ok := v.write.(rollbacker); ok {
		rb.Rollback()
	}
	v.sweepLocked()
}

// retireLocked removes a table from the live set. Caller holds mu.
func (v *Versioned) retireLocked(t *epochTable) {
	for i, lt := range v.tables {
		if lt == t {
			v.tables = append(v.tables[:i], v.tables[i+1:]...)
			return
		}
	}
}

// sweepLocked recomputes the free list and high-water mark from the live
// tables and the building overlay: a data block referenced by none of them
// is reclaimable. The sweep is deterministic (ascending ids), which the
// crash campaigns rely on. Caller holds mu.
func (v *Versioned) sweepLocked() {
	used := make(map[int]struct{})
	high := v.dataBase
	mark := func(p int) {
		used[p] = struct{}{}
		if p+1 > high {
			high = p + 1
		}
	}
	for _, t := range v.tables {
		for _, p := range t.phys {
			if p >= 0 {
				mark(int(p))
			}
		}
	}
	for _, p := range v.overlay {
		mark(p)
	}
	v.next = high
	free := make([]int, 0, high-v.dataBase-len(used))
	for p := v.dataBase; p < high; p++ {
		if _, ok := used[p]; !ok {
			free = append(free, p)
		}
	}
	v.free = free
}

// Acquire pins the current committed epoch and returns a Snapshot that
// resolves it against the read path until Release.
func (v *Versioned) Acquire() *Snapshot {
	v.mu.Lock()
	t := v.cur
	t.refs++
	v.mu.Unlock()
	return &Snapshot{v: v, t: t}
}

// release unpins a table; the last release of a retired epoch returns its
// exclusive blocks to the free list.
func (v *Versioned) release(t *epochTable) {
	v.mu.Lock()
	defer v.mu.Unlock()
	t.refs--
	if t.refs == 0 && t != v.cur {
		v.retireLocked(t)
		v.sweepLocked()
	}
}

// EpochStats is the observability surface of the epoch layer, reported by
// `shiftsplit info` and /v1/stats so operators can spot snapshot leaks
// holding back reclamation.
type EpochStats struct {
	// Epoch is the current committed epoch.
	Epoch uint64 `json:"epoch"`
	// Pinned is the number of outstanding (unreleased) snapshots.
	Pinned int `json:"pinned_snapshots"`
	// OldestPinned is the oldest epoch a snapshot still pins (== Epoch when
	// nothing older than the current epoch is held).
	OldestPinned uint64 `json:"oldest_pinned_epoch"`
	// FreeBlocks is the number of physical blocks on the free list, ready
	// for copy-on-write reuse.
	FreeBlocks int `json:"free_blocks"`
	// Reclaimable is the number of physical blocks held only by pinned
	// old epochs — they join the free list when those snapshots release.
	Reclaimable int `json:"reclaimable_blocks"`
	// PhysBlocks is the physical block high-water mark (superblock + table
	// pages + allocated data).
	PhysBlocks int `json:"phys_blocks"`
}

// Stats returns a point-in-time snapshot of the epoch layer's state.
func (v *Versioned) Stats() EpochStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := EpochStats{Epoch: v.cur.epoch, OldestPinned: v.cur.epoch, FreeBlocks: len(v.free), PhysBlocks: v.next}
	curUsed := make(map[int]struct{})
	for _, p := range v.cur.phys {
		if p >= 0 {
			curUsed[int(p)] = struct{}{}
		}
	}
	for _, p := range v.overlay {
		curUsed[p] = struct{}{}
	}
	held := make(map[int]struct{})
	for _, t := range v.tables {
		st.Pinned += t.refs
		if t.refs > 0 && t.epoch < st.OldestPinned {
			st.OldestPinned = t.epoch
		}
		if t == v.cur {
			continue
		}
		for _, p := range t.phys {
			if p < 0 {
				continue
			}
			if _, ok := curUsed[int(p)]; !ok {
				held[int(p)] = struct{}{}
			}
		}
	}
	st.Reclaimable = len(held)
	return st
}

// Sync seals the building epoch: on a versioned store the only meaningful
// durability point is an epoch flip.
func (v *Versioned) Sync() error { return v.Commit() }

// Close seals any building epoch and closes the underlying stack exactly
// once: through the read path when it is distinct (the serving composition
// threads the write path through the read chain), else through the shared
// store.
func (v *Versioned) Close() error {
	err := v.Commit()
	if errors.Is(err, ErrClosed) {
		err = nil
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return err
	}
	v.closed = true
	v.mu.Unlock()
	closer := v.write
	if v.read != v.write {
		closer = v.read
	}
	if cerr := closer.Close(); err == nil {
		err = cerr
	}
	return err
}

// VersionedInfo is the decoded epoch superblock of a versioned store, as
// reported by Fsck and the CLI.
type VersionedInfo struct {
	// Epoch is the committed epoch the superblock records.
	Epoch uint64 `json:"epoch"`
	// Logical is the logical block-id space the table maps.
	Logical int `json:"logical_blocks"`
	// TablePages is the number of remap-table pages.
	TablePages int `json:"table_pages"`
	// DataBase is the first physical data block id.
	DataBase int `json:"data_base"`
	// Mapped is the number of logical blocks with a physical mapping.
	Mapped int `json:"mapped_blocks"`
}

// ReadVersionedInfo decodes the superblock and remap table a versioned
// store persisted, reading through store (which must present logical
// payloads — e.g. a ChecksumReader over the durable data file). Nothing is
// mutated; a fresh (never-committed) layout decodes as epoch 0 with no
// mappings.
func ReadVersionedInfo(store BlockStore, logical int) (*VersionedInfo, error) {
	v, err := NewVersioned(store, logical)
	if err != nil {
		return nil, err
	}
	mapped := 0
	for _, p := range v.cur.phys {
		if p >= 0 {
			mapped++
		}
	}
	return &VersionedInfo{
		Epoch:      v.cur.epoch,
		Logical:    logical,
		TablePages: v.pages,
		DataBase:   v.dataBase,
		Mapped:     mapped,
	}, nil
}

// FsckVersioned decodes the epoch superblock of a versioned durable file
// without opening the store: frames are verified through a read-only
// checksum reader, so a torn superblock surfaces as an error instead of
// garbage.
func FsckVersioned(path string, blockSize, logical int) (*VersionedInfo, error) {
	fs, err := OpenFileStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	rd, err := NewChecksumReader(fs)
	if err != nil {
		return nil, err
	}
	return ReadVersionedInfo(rd, logical)
}

// Snapshot is a pinned, immutable view of one committed epoch. It
// implements BlockStore for reads (writes fail with ErrSnapshotReadOnly)
// and resolves every logical id through its pinned table against the
// Versioned's read path, so it is safe for concurrent use whenever that
// path is. Every Snapshot must reach Release on all paths — the
// snapshotrelease analyzer proves it — or its epoch's blocks are never
// reclaimed.
type Snapshot struct {
	v *Versioned
	t *epochTable

	mu       sync.Mutex
	released bool
}

// Epoch returns the pinned epoch.
func (s *Snapshot) Epoch() uint64 { return s.t.epoch }

// BlockSize returns the block size.
func (s *Snapshot) BlockSize() int { return s.v.read.BlockSize() }

// ReadBlock reads a logical block as the pinned epoch saw it.
func (s *Snapshot) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	if err := s.v.checkLogical(id); err != nil {
		return err
	}
	phys := s.t.phys[id]
	if phys < 0 {
		ZeroFill(buf)
		return nil
	}
	return s.v.read.ReadBlock(int(phys), buf)
}

// ReadBlocks implements BatchReader against the pinned table: one vectored
// read for the mapped ids, zero-fill for the rest.
func (s *Snapshot) ReadBlocks(ids []int, bufs [][]float64) error {
	if err := checkBatchArgs(s, ids, bufs); err != nil {
		return err
	}
	physIDs := make([]int, 0, len(ids))
	physBufs := make([][]float64, 0, len(ids))
	for i, id := range ids {
		if err := s.v.checkLogical(id); err != nil {
			return err
		}
		if phys := s.t.phys[id]; phys >= 0 {
			physIDs = append(physIDs, int(phys))
			physBufs = append(physBufs, bufs[i])
		} else {
			ZeroFill(bufs[i])
		}
	}
	if len(physIDs) == 0 {
		return nil
	}
	return ReadBlocksOf(s.v.read, physIDs, physBufs)
}

// WriteBlock fails: snapshots are immutable.
func (s *Snapshot) WriteBlock(id int, data []float64) error { return ErrSnapshotReadOnly }

// Release unpins the epoch (idempotent). Once the last pin of a retired
// epoch drops, its exclusive physical blocks return to the free list.
func (s *Snapshot) Release() {
	s.mu.Lock()
	done := s.released
	s.released = true
	s.mu.Unlock()
	if done {
		return
	}
	s.v.release(s.t)
}

// Close implements BlockStore by releasing the pin (the Versioned owns the
// underlying stack).
func (s *Snapshot) Close() error {
	s.Release()
	return nil
}
