package storage

import (
	"errors"
	"testing"
)

// degradedStack builds MemStore → Checksummed → Degraded with n written
// blocks, returning the layers.
func degradedStack(t *testing.T, n int) (*MemStore, *Checksummed, *Degraded, *Quarantine) {
	t.Helper()
	inner := NewMemStore(6)
	cs, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		if err := cs.WriteBlock(id, []float64{float64(id), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	q := NewQuarantine()
	dg, err := NewDegraded(cs, q)
	if err != nil {
		t.Fatal(err)
	}
	return inner, cs, dg, q
}

func TestDegradedServesQuarantinedAsZeros(t *testing.T) {
	_, _, dg, q := degradedStack(t, 4)
	q.Add(1, "test")
	buf := make([]float64, 4)
	if err := dg.ReadBlock(1, buf); err != nil {
		t.Fatalf("quarantined read must degrade, not fail: %v", err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatalf("degraded read = %v, want zeros", buf)
		}
	}
	if dg.DegradedReads() != 1 {
		t.Fatalf("DegradedReads = %d, want 1", dg.DegradedReads())
	}
	// Non-quarantined blocks serve normally.
	if err := dg.ReadBlock(2, buf); err != nil || buf[0] != 2 {
		t.Fatalf("clean read: buf=%v err=%v", buf, err)
	}
	if dg.DegradedReads() != 1 {
		t.Fatal("clean read counted as degraded")
	}
}

func TestDegradedFirstHitErrorsThenQuarantines(t *testing.T) {
	inner, _, dg, q := degradedStack(t, 4)
	rotFrame(t, inner, 2)
	buf := make([]float64, 4)
	// First read of fresh corruption must FAIL (a read-modify-write above
	// must not fold zeros into a rewrite) — and quarantine the block.
	err := dg.ReadBlock(2, buf)
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("first hit err = %v, want corruption", err)
	}
	if !q.Has(2) {
		t.Fatal("first hit did not quarantine")
	}
	// Second read degrades to zeros.
	if err := dg.ReadBlock(2, buf); err != nil {
		t.Fatalf("second hit must degrade: %v", err)
	}
	if dg.DegradedReads() != 1 {
		t.Fatalf("DegradedReads = %d, want 1", dg.DegradedReads())
	}
}

func TestDegradedBatchQuarantinesEveryCorruptBlock(t *testing.T) {
	inner, _, dg, q := degradedStack(t, 8)
	rotFrame(t, inner, 3)
	rotFrame(t, inner, 6)
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	bufs := SliceFrames(make([]float64, 32), 8, 4)
	err := dg.ReadBlocks(ids, bufs)
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("batch err = %v, want corruption", err)
	}
	if !q.Has(3) || !q.Has(6) || q.Len() != 2 {
		t.Fatalf("quarantine after batch = %v, want blocks 3 and 6", q.Snapshot())
	}
	// Retry: both bad blocks now degrade, the rest serve real data.
	if err := dg.ReadBlocks(ids, bufs); err != nil {
		t.Fatalf("degraded batch failed: %v", err)
	}
	for i, id := range ids {
		want := float64(id)
		if id == 3 || id == 6 {
			want = 0
		}
		if bufs[i][0] != want {
			t.Fatalf("block %d = %v", id, bufs[i])
		}
	}
	if dg.DegradedReads() != 2 {
		t.Fatalf("DegradedReads = %d, want 2", dg.DegradedReads())
	}
}

func TestDegradedWriteHeals(t *testing.T) {
	_, _, dg, q := degradedStack(t, 4)
	q.Add(1, "test")
	q.Add(2, "test")
	if err := dg.WriteBlock(1, []float64{5, 5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if q.Has(1) {
		t.Fatal("full-frame write did not heal")
	}
	if err := dg.WriteBlocks([]int{2, 3}, [][]float64{{6, 6, 6, 6}, {7, 7, 7, 7}}); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatalf("batch write did not heal: %v", q.Snapshot())
	}
	buf := make([]float64, 4)
	if err := dg.ReadBlock(1, buf); err != nil || buf[0] != 5 {
		t.Fatalf("healed block: buf=%v err=%v", buf, err)
	}
	if dg.DegradedReads() != 0 {
		t.Fatal("healed reads counted as degraded")
	}
}
