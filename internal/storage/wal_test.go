package storage

import (
	"errors"
	"testing"
)

func newTestJournal(t *testing.T, payload int) (*Journal, *MemStore) {
	t.Helper()
	bs := NewMemStore(payload + JournalOverhead)
	j, err := NewJournal(bs, payload)
	if err != nil {
		t.Fatal(err)
	}
	return j, bs
}

func TestJournalLogAndRedo(t *testing.T) {
	j, _ := newTestJournal(t, 4)
	ids := []int{2, 7, 1}
	blocks := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	if err := j.LogBatch(9, ids, blocks); err != nil {
		t.Fatal(err)
	}
	batch, err := j.Redo()
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Committed || batch.Epoch != 9 || len(batch.IDs) != 3 {
		t.Fatalf("Redo = %+v", batch)
	}
	for i := range ids {
		if batch.IDs[i] != ids[i] {
			t.Fatalf("id %d = %d, want %d", i, batch.IDs[i], ids[i])
		}
		for k := range blocks[i] {
			if batch.Blocks[i][k] != blocks[i][k] {
				t.Fatalf("block %d slot %d = %g", i, k, batch.Blocks[i][k])
			}
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	batch, err = j.Redo()
	if err != nil || batch.Committed || batch.Entries != 0 {
		t.Fatalf("after Reset: %+v, %v", batch, err)
	}
}

func TestJournalUnsealedBatchDiscarded(t *testing.T) {
	j, bs := newTestJournal(t, 3)
	// Write two entries by hand, no commit record: a crash before the seal.
	if err := j.writeRecord(0, journalKindData, 4, 10, 0, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.writeRecord(1, journalKindData, 4, 11, 1, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	batch, err := j.Redo()
	if err != nil {
		t.Fatal(err)
	}
	if batch.Committed {
		t.Fatal("unsealed batch reported committed")
	}
	if batch.Entries != 2 {
		t.Fatalf("entries = %d, want 2", batch.Entries)
	}
	_ = bs
}

func TestJournalTornCommitDiscarded(t *testing.T) {
	j, bs := newTestJournal(t, 3)
	if err := j.writeRecord(0, journalKindData, 4, 10, 0, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// A torn commit record: garbage that fails its CRC.
	garbage := make([]float64, bs.BlockSize())
	for i := range garbage {
		garbage[i] = float64(i) + 0.5
	}
	if err := bs.WriteBlock(1, garbage); err != nil {
		t.Fatal(err)
	}
	batch, err := j.Redo()
	if err != nil {
		t.Fatal(err)
	}
	if batch.Committed {
		t.Fatal("torn commit record accepted")
	}
}

func TestJournalCorruptEntryUnderCommitIsFatal(t *testing.T) {
	j, bs := newTestJournal(t, 3)
	if err := j.LogBatch(5, []int{1, 2}, [][]float64{{1, 1, 1}, {2, 2, 2}}); err != nil {
		t.Fatal(err)
	}
	// Rot the first entry while the commit record stands: unrecoverable.
	garbage := make([]float64, bs.BlockSize())
	garbage[0] = 3.25
	if err := bs.WriteBlock(0, garbage); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Redo(); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v, want ErrJournalCorrupt", err)
	}
	st := j.Inspect()
	if st.Err == nil {
		t.Fatal("Inspect did not surface the corruption")
	}
}

func TestJournalEmptyIsClean(t *testing.T) {
	j, _ := newTestJournal(t, 2)
	batch, err := j.Redo()
	if err != nil || batch.Committed || batch.Entries != 0 {
		t.Fatalf("empty journal: %+v, %v", batch, err)
	}
	st := j.Inspect()
	if st.Committed || st.Entries != 0 || st.Err != nil {
		t.Fatalf("Inspect = %+v", st)
	}
}

func TestJournalEmptyBatchSealed(t *testing.T) {
	j, _ := newTestJournal(t, 2)
	if err := j.LogBatch(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	batch, err := j.Redo()
	if err != nil || !batch.Committed || len(batch.IDs) != 0 {
		t.Fatalf("empty sealed batch: %+v, %v", batch, err)
	}
}
