package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

// mirror is one of the two identical store stacks the property test drives:
// top is the store under test and counting its I/O observer (nil when the
// shuffled stack happened to omit Counting).
type mirror struct {
	top      BlockStore
	counting *Counting
}

func (m *mirror) close(t *testing.T) {
	t.Helper()
	if err := m.top.Close(); err != nil {
		t.Fatalf("close stack: %v", err)
	}
}

// buildStack composes a random storage stack from a seeded RNG. Called twice
// with RNGs in the same state it yields two structurally identical stacks,
// which is what the batched-vs-looped equivalence test needs.
func buildStack(t *testing.T, rng *rand.Rand, dir string, bs int) *mirror {
	t.Helper()
	m := &mirror{}
	var base BlockStore
	switch rng.Intn(6) {
	case 0:
		base = NewMemStore(bs)
	case 1:
		fs, err := NewFileStore(filepath.Join(dir, "base.dat"), bs)
		if err != nil {
			t.Fatal(err)
		}
		base = fs
	case 2:
		d, err := NewDurable(NewMemStore(bs+ChecksumOverhead), NewMemStore(bs+JournalOverhead))
		if err != nil {
			t.Fatal(err)
		}
		base = d
	case 3:
		c, err := NewChecksummed(NewMemStore(bs + ChecksumOverhead))
		if err != nil {
			t.Fatal(err)
		}
		base = c
	case 4:
		ms, err := NewMappedStore(filepath.Join(dir, "mapped.dat"), bs)
		if err != nil {
			t.Fatal(err)
		}
		base = ms
	case 5:
		// Checksummed over mapped frames: the zero-copy view verify path.
		ms, err := NewMappedStore(filepath.Join(dir, "mapped.dat"), bs+ChecksumOverhead)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewChecksummed(ms)
		if err != nil {
			t.Fatal(err)
		}
		base = c
	}
	// Shuffle a random subset of the order-insensitive wrappers on top.
	wrappers := rng.Perm(5)
	for _, w := range wrappers {
		if rng.Intn(2) == 0 {
			continue
		}
		switch w {
		case 0:
			cnt := NewCounting(base)
			if m.counting == nil {
				m.counting = cnt
			}
			base = cnt
		case 1:
			base = NewBufferPool(base, 1+rng.Intn(6))
		case 2:
			base = NewLocked(base)
		case 3:
			base = NewRetry(base, RetryOptions{Sleep: func(time.Duration) {}})
		case 4:
			base = NewFaulty(base) // disarmed: pure pass-through with counters
		}
	}
	// Always observe I/O somewhere so stats can be compared.
	if m.counting == nil {
		cnt := NewCounting(base)
		m.counting = cnt
		base = cnt
	}
	m.top = base
	return m
}

// TestBatchEquivalenceRandomStacks is the stack-permutation property test:
// for many seeds it composes two identical randomly shuffled storage stacks
// (Checksummed/Durable/FileStore base under shuffled Counting, BufferPool,
// Locked, Retry, Faulty layers), drives the same randomized workload through
// both — one using ReadBlocks/WriteBlocks, the other the per-block loop —
// and asserts the delivered contents, the Counting totals, and the final
// store states are identical.
func TestBatchEquivalenceRandomStacks(t *testing.T) {
	const bs = 7
	const numBlocks = 24
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			a := buildStack(t, rngA, t.TempDir(), bs)
			b := buildStack(t, rngB, t.TempDir(), bs)
			defer a.close(t)
			defer b.close(t)

			ops := rand.New(rand.NewSource(1000 + seed))
			for op := 0; op < 60; op++ {
				n := 1 + ops.Intn(8)
				ids := make([]int, n)
				if ops.Intn(2) == 0 {
					// Consecutive run (the coalescing fast path).
					start := ops.Intn(numBlocks - n)
					for i := range ids {
						ids[i] = start + i
					}
				} else {
					for i := range ids {
						ids[i] = ops.Intn(numBlocks) // duplicates welcome
					}
				}
				switch ops.Intn(4) {
				case 0, 1: // batch write vs looped write
					data := make([][]float64, n)
					for i := range data {
						data[i] = make([]float64, bs)
						for k := range data[i] {
							data[i][k] = float64(op*1000 + ids[i]*10 + k)
						}
					}
					errA := WriteBlocksOf(a.top, ids, data)
					var errB error
					for i := 0; i < n && errB == nil; i++ {
						errB = b.top.WriteBlock(ids[i], data[i])
					}
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: write err mismatch: batched %v, looped %v", op, errA, errB)
					}
				case 2: // batch read vs looped read
					bufsA := SliceFrames(make([]float64, n*bs), n, bs)
					bufsB := SliceFrames(make([]float64, n*bs), n, bs)
					errA := ReadBlocksOf(a.top, ids, bufsA)
					var errB error
					for i := 0; i < n && errB == nil; i++ {
						errB = b.top.ReadBlock(ids[i], bufsB[i])
					}
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: read err mismatch: batched %v, looped %v", op, errA, errB)
					}
					if errA == nil {
						for i := range bufsA {
							for k := range bufsA[i] {
								if bufsA[i][k] != bufsB[i][k] {
									t.Fatalf("op %d: block %d slot %d: batched %v, looped %v",
										op, ids[i], k, bufsA[i][k], bufsB[i][k])
								}
							}
						}
					}
				case 3: // durability points advance both stacks identically
					if ops.Intn(2) == 0 {
						if err := SyncIfAble(a.top); err != nil {
							t.Fatal(err)
						}
						if err := SyncIfAble(b.top); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := CommitIfAble(a.top); err != nil {
							t.Fatal(err)
						}
						if err := CommitIfAble(b.top); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if sa, sb := a.counting.Stats(), b.counting.Stats(); sa != sb {
				t.Fatalf("counting stats diverged: batched %+v, looped %+v", sa, sb)
			}
			// Final logical contents must agree block for block.
			bufA := make([]float64, bs)
			bufB := make([]float64, bs)
			for id := 0; id < numBlocks; id++ {
				if err := a.top.ReadBlock(id, bufA); err != nil {
					t.Fatal(err)
				}
				if err := b.top.ReadBlock(id, bufB); err != nil {
					t.Fatal(err)
				}
				for k := range bufA {
					if bufA[k] != bufB[k] {
						t.Fatalf("final block %d slot %d: batched %v, looped %v", id, k, bufA[k], bufB[k])
					}
				}
			}
		})
	}
}

// TestBatchFaultEquivalence arms real fault triggers and checks the batched
// path surfaces the same first error, for the same block, after the same
// number of trigger evaluations as the per-block loop.
func TestBatchFaultEquivalence(t *testing.T) {
	const bs = 4
	for _, tc := range []struct {
		name string
		arm  func(f *Faulty)
	}{
		{"OneShotRead", func(f *Faulty) { f.FailReadAfter(5) }},
		{"OneShotWrite", func(f *Faulty) { f.FailWriteAfter(3) }},
		{"EveryNthRead", func(f *Faulty) { f.FailEveryNthRead(4) }},
		{"EveryNthWrite", func(f *Faulty) { f.FailEveryNthWrite(4) }},
		{"Probabilistic", func(f *Faulty) { f.FailReadsWithProbability(0.3, 42) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(batched bool) (errs []string, stats Stats) {
				cnt := NewCounting(NewMemStore(bs))
				f := NewFaulty(cnt)
				tc.arm(f)
				data := make([][]float64, 6)
				bufs := make([][]float64, 6)
				ids := make([]int, 6)
				for i := range ids {
					ids[i] = i
					data[i] = []float64{float64(i), 0, 0, 0}
					bufs[i] = make([]float64, bs)
				}
				for round := 0; round < 4; round++ {
					var errW, errR error
					if batched {
						errW = WriteBlocksOf(f, ids, data)
						errR = ReadBlocksOf(f, ids, bufs)
					} else {
						for i := range ids {
							if errW = f.WriteBlock(ids[i], data[i]); errW != nil {
								break
							}
						}
						for i := range ids {
							if errR = f.ReadBlock(ids[i], bufs[i]); errR != nil {
								break
							}
						}
					}
					errs = append(errs, fmt.Sprint(errW), fmt.Sprint(errR))
				}
				return errs, cnt.Stats()
			}
			loopErrs, _ := run(false)
			batchErrs, _ := run(true)
			for i := range loopErrs {
				if loopErrs[i] != batchErrs[i] {
					t.Fatalf("error %d: looped %q, batched %q", i, loopErrs[i], batchErrs[i])
				}
			}
		})
	}
}

// TestCrashCampaignBatchedCommit repeats the durable crash campaign with the
// maintenance batch staged through WriteBlocks — the vectored staging path —
// so the journal's batched record group is the thing being torn. Every
// recovery must land on exactly the pre- or post-batch state.
func TestCrashCampaignBatchedCommit(t *testing.T) {
	const blockSize = 6
	seed := campaignSeed(t)
	batchA, batchB := campaignBatches(blockSize)
	pre, post := expectedStates(batchA, batchB)

	applyBatched := func(d *Durable, batch map[int][]float64) error {
		ids := make([]int, 0, len(batch))
		for id := range batch {
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if ids[j] < ids[i] {
					ids[i], ids[j] = ids[j], ids[i]
				}
			}
		}
		data := make([][]float64, len(ids))
		for i, id := range ids {
			data[i] = batch[id]
		}
		if err := d.WriteBlocks(ids, data); err != nil {
			return err
		}
		return d.Commit()
	}

	dry := NewCrashPlan(seed)
	dir := t.TempDir()
	d, err := CreateDurable(filepath.Join(dir, "dry.dat"), blockSize, dry)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyBatched(d, batchA); err != nil {
		t.Fatal(err)
	}
	opsA := dry.Ops()
	if err := applyBatched(d, batchB); err != nil {
		t.Fatal(err)
	}
	opsB := dry.Ops() - opsA
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	preSeen, postSeen := 0, 0
	for w := int64(1); w <= opsB; w++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.dat", w))
		plan := NewCrashPlan(seed + w)
		d, err := CreateDurable(path, blockSize, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := applyBatched(d, batchA); err != nil {
			t.Fatalf("trial %d: batch A: %v", w, err)
		}
		plan.ArmAt(plan.Ops() + w)
		err = applyBatched(d, batchB)
		if w < opsB && !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: expected crash, got %v", w, err)
		}
		_ = d.Close()

		d2, err := OpenDurable(path, blockSize, nil)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", w, err)
		}
		got := readState(t, d2, 8)
		switch {
		case sameState(got, pre):
			preSeen++
		case sameState(got, post):
			postSeen++
		default:
			t.Fatalf("trial %d: hybrid state after recovery: %v", w, got)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("trial %d: close recovered store: %v", w, err)
		}
	}
	t.Logf("batched campaign: %d trials, %d pre, %d post", opsB, preSeen, postSeen)
	if preSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign never exercised both outcomes (pre=%d post=%d)", preSeen, postSeen)
	}
}

// TestSliceFrames covers the shared slab cutter.
func TestSliceFrames(t *testing.T) {
	frames := SliceFrames(make([]float64, 12), 3, 4)
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	for i, f := range frames {
		if len(f) != 4 || cap(f) != 4 {
			t.Fatalf("frame %d: len %d cap %d", i, len(f), cap(f))
		}
	}
	frames[0][3] = 7
	frames[1][0] = 9 // must not alias frame 0 despite the shared slab
	if frames[0][3] != 7 {
		t.Fatal("frames alias each other")
	}
}

// TestZeroFill covers the shared zero helper.
func TestZeroFill(t *testing.T) {
	buf := []float64{1, 2, 3}
	ZeroFill(buf)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("slot %d: %v", i, v)
		}
	}
}
