package storage

import "sync"

// This file defines the zero-copy read capability and the mapped-read
// accounting interface that go with MappedStore.
//
// Borrow/release discipline for frame views: a FrameViews is a borrow
// of the store's current mapping generation. The borrower must call
// Release exactly once, before the next mutation (write, truncate,
// close) of the viewed blocks, and must not retain any frame slice past
// Release. Wrappers that intercept reads for fault injection (Faulty,
// CrashStore, Degraded, Breaker) deliberately do NOT forward
// FrameViewer: a zero-copy view would bypass their read interception,
// so stacks containing them fall back to the copying read path.

// FrameViewer is implemented by stores that can expose borrowed,
// zero-copy views of raw block frames (the 8*BlockSize()-byte
// little-endian extents). It is an internal capability consumed by the
// Checksummed fast path; engines never see it.
type FrameViewer interface {
	// ViewFrames returns views for ids. Frame(i) is nil when block
	// ids[i] lies wholly beyond the file (reads as zeros). The views
	// are valid until Release.
	ViewFrames(ids []int) (*FrameViews, error)
}

// FrameViews is a set of borrowed block-frame views over one mapping
// generation. The zero value is not useful; obtain one from a
// FrameViewer and always Release it.
type FrameViews struct {
	frames [][]byte
	m      *mapping
	pool   *sync.Pool // recycles the FrameViews itself on Release
}

// Len returns the number of views.
func (v *FrameViews) Len() int { return len(v.frames) }

// Frame returns the raw frame bytes for entry i, or nil when the block
// was never allocated on the medium (it reads as zeros). The slice is
// borrowed: it is invalidated by Release and by writes to the block.
func (v *FrameViews) Frame(i int) []byte { return v.frames[i] }

// Release returns the borrow. It must be called exactly once; frames
// must not be used afterwards.
func (v *FrameViews) Release() {
	if v.m != nil {
		v.m.dropRef()
		v.m = nil
	}
	for i := range v.frames {
		v.frames[i] = nil
	}
	if v.pool != nil {
		v.frames = v.frames[:0]
		v.pool.Put(v)
		return
	}
	v.frames = nil
}

// MappedReadsReporter is implemented by stores (and wrappers over
// stores) that serve reads from a memory mapping rather than positional
// read syscalls. The counter keeps the syscall-proxy columns of
// BENCH_io.json honest: mapped stacks report 0 preads, and this counter
// carries the traffic instead.
type MappedReadsReporter interface {
	MappedReads() int64
}

// MappedReadsOf returns bs's mapped-read count, or 0 when the stack has
// no mapping underneath.
func MappedReadsOf(bs BlockStore) int64 {
	if r, ok := bs.(MappedReadsReporter); ok {
		return r.MappedReads()
	}
	return 0
}
