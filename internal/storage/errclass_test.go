package storage

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
)

func TestClassifySentinels(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassUnknown},
		{"plain", errors.New("boring"), ClassUnknown},
		{"closed", ErrClosed, ClassUnknown},
		{"checksum", ErrChecksum, ClassCorruption},
		{"journal", ErrJournalCorrupt, ClassCorruption},
		{"injected", ErrInjected, ClassTransient},
		{"wrapped-checksum", fmt.Errorf("read block 7: %w", ErrChecksum), ClassCorruption},
		{"wrapped-injected", fmt.Errorf("write block 3: %w", ErrInjected), ClassTransient},
		{"class-itself", ErrCorruption, ClassCorruption},
		{"enospc", WithClass(syscall.ENOSPC, ErrNoSpace), ClassNoSpace},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestClassifiedPreservesIdentity checks that reclassifying the historical
// sentinels did not break identity matching: errors.Is against the concrete
// sentinel and against its class must both hold, through wrapping.
func TestClassifiedPreservesIdentity(t *testing.T) {
	wrapped := fmt.Errorf("storage: block %d: crc mismatch: %w", 12, ErrChecksum)
	if !errors.Is(wrapped, ErrChecksum) {
		t.Error("wrapped checksum error does not match ErrChecksum")
	}
	if !errors.Is(wrapped, ErrCorruption) {
		t.Error("wrapped checksum error does not match ErrCorruption")
	}
	if errors.Is(wrapped, ErrTransient) || errors.Is(wrapped, ErrNoSpace) {
		t.Error("checksum error matches a foreign class")
	}
	if errors.Is(ErrInjected, ErrJournalCorrupt) {
		t.Error("distinct classified sentinels must not match each other")
	}
	if !errors.Is(ErrJournalCorrupt, ErrCorruption) {
		t.Error("ErrJournalCorrupt does not match ErrCorruption")
	}
}

func TestWithClass(t *testing.T) {
	if WithClass(nil, ErrNoSpace) != nil {
		t.Error("WithClass(nil) must stay nil")
	}
	base := fmt.Errorf("pwrite: %w", syscall.ENOSPC)
	labeled := WithClass(base, ErrNoSpace)
	if !errors.Is(labeled, syscall.ENOSPC) {
		t.Error("WithClass broke the original error chain")
	}
	if !errors.Is(labeled, ErrNoSpace) {
		t.Error("WithClass did not attach the class")
	}
	if !IsSpaceExhausted(labeled) {
		t.Error("IsSpaceExhausted(labeled ENOSPC) = false")
	}
	if labeled.Error() != base.Error() {
		t.Errorf("WithClass changed the message: %q vs %q", labeled.Error(), base.Error())
	}
	outer := fmt.Errorf("storage: write block 4: %w", labeled)
	if !errors.Is(outer, ErrNoSpace) || !errors.Is(outer, syscall.ENOSPC) {
		t.Error("wrapping a labeled error lost class or chain")
	}
}

func TestIsHelpers(t *testing.T) {
	if IsCorruption(nil) || IsSpaceExhausted(nil) {
		t.Error("nil must not belong to any class")
	}
	if !IsCorruption(ErrChecksum) {
		t.Error("IsCorruption(ErrChecksum) = false")
	}
	if IsCorruption(ErrInjected) {
		t.Error("IsCorruption(ErrInjected) = true")
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		ClassUnknown:    "unknown",
		ClassTransient:  "transient",
		ClassCorruption: "corruption",
		ClassNoSpace:    "space-exhausted",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestIsTransientTaxonomy(t *testing.T) {
	if IsTransient(nil) {
		t.Error("IsTransient(nil) = true")
	}
	if !IsTransient(ErrInjected) {
		t.Error("IsTransient(ErrInjected) = false")
	}
	if !IsTransient(fmt.Errorf("op: %w", ErrInjected)) {
		t.Error("IsTransient(wrapped ErrInjected) = false")
	}
	for _, err := range []error{ErrClosed, ErrChecksum, ErrCrashed, ErrJournalCorrupt, WithClass(syscall.ENOSPC, ErrNoSpace)} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
	// A transient label attached to an otherwise-unknown error is honored.
	if !IsTransient(WithClass(errors.New("device busy"), ErrTransient)) {
		t.Error("IsTransient(WithClass(..., ErrTransient)) = false")
	}
}
