package storage

import (
	"fmt"
	"math/rand"
)

// Faulty wraps a BlockStore and fails operations on command. It exists for
// failure-injection tests: every engine in this repository must surface
// storage errors rather than panic or silently corrupt state.
//
// Three trigger modes compose (an operation fails if any mode fires):
//
//   - one-shot: FailReadAfter/FailWriteAfter make the n-th subsequent
//     operation and every later one fail — a device that dies and stays
//     dead;
//   - every-Nth: FailEveryNthRead/FailEveryNthWrite fail one operation in
//     every N — deterministic sustained flakiness;
//   - probabilistic: FailReadsWithProbability/FailWritesWithProbability
//     fail each operation with probability p under a seeded RNG — random
//     sustained flakiness for stress tests.
type Faulty struct {
	inner BlockStore
	// FailReadAfter / FailWriteAfter make the n-th subsequent read/write
	// fail (1 = the next one). Zero disables the trigger.
	failReadAfter  int64
	failWriteAfter int64
	everyNthRead   int64
	everyNthWrite  int64
	pRead          float64
	pWrite         float64
	rng            *rand.Rand
	reads          int64
	writes         int64
	injected       int64
}

// ErrInjected is the error returned by triggered failures.
var ErrInjected = fmt.Errorf("storage: injected fault")

// NewFaulty wraps inner; arm it with the Fail* methods.
func NewFaulty(inner BlockStore) *Faulty {
	return &Faulty{inner: inner}
}

// FailReadAfter arms the one-shot read trigger: the n-th read from now
// (and every read after it) fails. Zero disarms.
func (f *Faulty) FailReadAfter(n int64) {
	if n == 0 {
		f.failReadAfter = 0
		return
	}
	f.failReadAfter = f.reads + n
}

// FailWriteAfter arms the one-shot write trigger: the n-th write from now
// (and every write after it) fails. Zero disarms.
func (f *Faulty) FailWriteAfter(n int64) {
	if n == 0 {
		f.failWriteAfter = 0
		return
	}
	f.failWriteAfter = f.writes + n
}

// FailEveryNthRead fails one read in every n (n <= 0 disarms).
func (f *Faulty) FailEveryNthRead(n int64) {
	if n <= 0 {
		n = 0
	}
	f.everyNthRead = n
}

// FailEveryNthWrite fails one write in every n (n <= 0 disarms).
func (f *Faulty) FailEveryNthWrite(n int64) {
	if n <= 0 {
		n = 0
	}
	f.everyNthWrite = n
}

func (f *Faulty) seedRNG(seed int64) {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(seed))
	}
}

// FailReadsWithProbability fails each read with probability p, drawn from
// an RNG seeded on the first probabilistic call (p <= 0 disarms).
func (f *Faulty) FailReadsWithProbability(p float64, seed int64) {
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pRead = p
}

// FailWritesWithProbability fails each write with probability p, drawn
// from an RNG seeded on the first probabilistic call (p <= 0 disarms).
func (f *Faulty) FailWritesWithProbability(p float64, seed int64) {
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pWrite = p
}

// InjectedFaults returns how many operations have been failed so far.
func (f *Faulty) InjectedFaults() int64 { return f.injected }

// BlockSize returns the wrapped block size.
func (f *Faulty) BlockSize() int { return f.inner.BlockSize() }

// readTrigger counts one read and reports whether a trigger fires on it,
// consuming exactly the RNG draws the per-block path would.
func (f *Faulty) readTrigger() bool {
	f.reads++
	fail := f.failReadAfter != 0 && f.reads >= f.failReadAfter
	fail = fail || (f.everyNthRead > 0 && f.reads%f.everyNthRead == 0)
	fail = fail || (f.pRead > 0 && f.rng.Float64() < f.pRead)
	if fail {
		f.injected++
	}
	return fail
}

// writeTrigger counts one write and reports whether a trigger fires on it.
func (f *Faulty) writeTrigger() bool {
	f.writes++
	fail := f.failWriteAfter != 0 && f.writes >= f.failWriteAfter
	fail = fail || (f.everyNthWrite > 0 && f.writes%f.everyNthWrite == 0)
	fail = fail || (f.pWrite > 0 && f.rng.Float64() < f.pWrite)
	if fail {
		f.injected++
	}
	return fail
}

// ReadBlock fails if any read trigger fires, else delegates.
func (f *Faulty) ReadBlock(id int, buf []float64) error {
	if f.readTrigger() {
		return fmt.Errorf("read block %d: %w", id, ErrInjected)
	}
	return f.inner.ReadBlock(id, buf)
}

// WriteBlock fails if any write trigger fires, else delegates.
func (f *Faulty) WriteBlock(id int, data []float64) error {
	if f.writeTrigger() {
		return fmt.Errorf("write block %d: %w", id, ErrInjected)
	}
	return f.inner.WriteBlock(id, data)
}

// ReadBlocks evaluates the per-block triggers in batch order (same
// counters and RNG draws as the loop) and forwards the maximal clean
// prefix as one vectored read. A firing trigger fails the batch with the
// same injected error the loop would return for that block; an inner error
// on the prefix takes precedence, as it would in the loop.
func (f *Faulty) ReadBlocks(ids []int, bufs [][]float64) error {
	for i, id := range ids {
		if f.readTrigger() {
			if err := ReadBlocksOf(f.inner, ids[:i], bufs[:i]); err != nil {
				return err
			}
			return fmt.Errorf("read block %d: %w", id, ErrInjected)
		}
	}
	return ReadBlocksOf(f.inner, ids, bufs)
}

// WriteBlocks is ReadBlocks for the write triggers.
func (f *Faulty) WriteBlocks(ids []int, data [][]float64) error {
	for i, id := range ids {
		if f.writeTrigger() {
			if err := WriteBlocksOf(f.inner, ids[:i], data[:i]); err != nil {
				return err
			}
			return fmt.Errorf("write block %d: %w", id, ErrInjected)
		}
	}
	return WriteBlocksOf(f.inner, ids, data)
}

// Sync delegates (faults target block transfers, not barriers).
func (f *Faulty) Sync() error { return SyncIfAble(f.inner) }

// Truncate delegates.
func (f *Faulty) Truncate() error { return TruncateIfAble(f.inner) }

// Commit delegates.
func (f *Faulty) Commit() error { return CommitIfAble(f.inner) }

// Close delegates.
func (f *Faulty) Close() error { return f.inner.Close() }
