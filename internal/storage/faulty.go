package storage

import "fmt"

// Faulty wraps a BlockStore and fails operations on command. It exists for
// failure-injection tests: every engine in this repository must surface
// storage errors rather than panic or silently corrupt state.
type Faulty struct {
	inner BlockStore
	// FailReadAfter / FailWriteAfter make the n-th subsequent read/write
	// fail (1 = the next one). Zero disables the trigger.
	failReadAfter  int64
	failWriteAfter int64
	reads          int64
	writes         int64
}

// ErrInjected is the error returned by triggered failures.
var ErrInjected = fmt.Errorf("storage: injected fault")

// NewFaulty wraps inner; use FailReadAfter/FailWriteAfter to arm it.
func NewFaulty(inner BlockStore) *Faulty {
	return &Faulty{inner: inner}
}

// FailReadAfter arms the read trigger: the n-th read from now fails.
func (f *Faulty) FailReadAfter(n int64) { f.failReadAfter = f.reads + n }

// FailWriteAfter arms the write trigger: the n-th write from now fails.
func (f *Faulty) FailWriteAfter(n int64) { f.failWriteAfter = f.writes + n }

// BlockSize returns the wrapped block size.
func (f *Faulty) BlockSize() int { return f.inner.BlockSize() }

// ReadBlock fails if the read trigger fires, else delegates.
func (f *Faulty) ReadBlock(id int, buf []float64) error {
	f.reads++
	if f.failReadAfter != 0 && f.reads >= f.failReadAfter {
		return fmt.Errorf("read block %d: %w", id, ErrInjected)
	}
	return f.inner.ReadBlock(id, buf)
}

// WriteBlock fails if the write trigger fires, else delegates.
func (f *Faulty) WriteBlock(id int, data []float64) error {
	f.writes++
	if f.failWriteAfter != 0 && f.writes >= f.failWriteAfter {
		return fmt.Errorf("write block %d: %w", id, ErrInjected)
	}
	return f.inner.WriteBlock(id, data)
}

// Close delegates.
func (f *Faulty) Close() error { return f.inner.Close() }
