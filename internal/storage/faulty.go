package storage

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Faulty wraps a BlockStore and fails operations on command. It exists for
// failure-injection tests: every engine in this repository must surface
// storage errors rather than panic or silently corrupt state.
//
// Three error-trigger modes compose (an operation fails if any mode fires):
//
//   - one-shot: FailReadAfter/FailWriteAfter make the n-th subsequent
//     operation and every later one fail — a device that dies and stays
//     dead;
//   - every-Nth: FailEveryNthRead/FailEveryNthWrite fail one operation in
//     every N — deterministic sustained flakiness;
//   - probabilistic: FailReadsWithProbability/FailWritesWithProbability
//     fail each operation with probability p under a seeded RNG — random
//     sustained flakiness for stress tests.
//
// Two silent modes model faults the device does NOT report:
//
//   - bit rot: RotReadsWithProbability/RotWritesWithProbability flip one
//     bit of one slot per triggered block and return success. Only an
//     integrity layer above (Checksummed) can catch it — which is the
//     point: tests prove checksums, not error codes, are the detector.
//   - latency: Delay stalls each operation, modeling a congested device
//     for timeout and rate-limit tests.
//
// All arming methods and triggers are mutex-guarded, so a chaos campaign
// can re-arm a Faulty while other goroutines drive I/O through it.
type Faulty struct {
	inner BlockStore

	mu sync.Mutex
	// FailReadAfter / FailWriteAfter make the n-th subsequent read/write
	// fail (1 = the next one). Zero disables the trigger.
	failReadAfter  int64
	failWriteAfter int64
	everyNthRead   int64
	everyNthWrite  int64
	pRead          float64
	pWrite         float64
	pRotRead       float64
	pRotWrite      float64
	delay          time.Duration
	rng            *rand.Rand
	reads          int64
	writes         int64
	injected       int64
	rotted         int64
}

// ErrInjected is the error returned by triggered failures. It belongs to
// the ErrTransient class of the storage error taxonomy: retrying an
// injected fault is legitimate (the fault model is a flaky device, not a
// corrupted one).
var ErrInjected = newClassified("storage: injected fault", ErrTransient)

// NewFaulty wraps inner; arm it with the Fail*/Rot*/Delay methods.
func NewFaulty(inner BlockStore) *Faulty {
	return &Faulty{inner: inner}
}

// FailReadAfter arms the one-shot read trigger: the n-th read from now
// (and every read after it) fails. Zero disarms.
func (f *Faulty) FailReadAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n == 0 {
		f.failReadAfter = 0
		return
	}
	f.failReadAfter = f.reads + n
}

// FailWriteAfter arms the one-shot write trigger: the n-th write from now
// (and every write after it) fails. Zero disarms.
func (f *Faulty) FailWriteAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n == 0 {
		f.failWriteAfter = 0
		return
	}
	f.failWriteAfter = f.writes + n
}

// FailEveryNthRead fails one read in every n (n <= 0 disarms).
func (f *Faulty) FailEveryNthRead(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	f.everyNthRead = n
}

// FailEveryNthWrite fails one write in every n (n <= 0 disarms).
func (f *Faulty) FailEveryNthWrite(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	f.everyNthWrite = n
}

// seedRNG must be called with f.mu held.
func (f *Faulty) seedRNG(seed int64) {
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(seed))
	}
}

// FailReadsWithProbability fails each read with probability p, drawn from
// an RNG seeded on the first probabilistic call (p <= 0 disarms).
func (f *Faulty) FailReadsWithProbability(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pRead = p
}

// FailWritesWithProbability fails each write with probability p, drawn
// from an RNG seeded on the first probabilistic call (p <= 0 disarms).
func (f *Faulty) FailWritesWithProbability(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pWrite = p
}

// RotReadsWithProbability silently flips one bit of one slot in each read
// block with probability p, reporting success. The device lies; only a
// checksum above can tell (p <= 0 disarms).
func (f *Faulty) RotReadsWithProbability(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pRotRead = p
}

// RotWritesWithProbability silently flips one bit of one slot in each
// written block with probability p before it reaches the medium, reporting
// success — persistent rot that every later read of the block sees
// (p <= 0 disarms). The caller's slice is not modified.
func (f *Faulty) RotWritesWithProbability(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p > 0 {
		f.seedRNG(seed)
	}
	f.pRotWrite = p
}

// Delay stalls every subsequent operation by d before it runs, modeling a
// congested device (zero disarms).
func (f *Faulty) Delay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d < 0 {
		d = 0
	}
	f.delay = d
}

// InjectedFaults returns how many operations have been failed so far.
func (f *Faulty) InjectedFaults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// RottedBlocks returns how many blocks have had a bit silently flipped.
func (f *Faulty) RottedBlocks() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rotted
}

// BlockSize returns the wrapped block size.
func (f *Faulty) BlockSize() int { return f.inner.BlockSize() }

// rotPlan describes one silent bit flip: slot idx, bit position bit.
// idx < 0 means no rot.
type rotPlan struct {
	idx int
	bit uint
}

// applyRot flips the planned bit in block (in place).
func (p rotPlan) applyRot(block []float64) {
	if p.idx < 0 || p.idx >= len(block) {
		return
	}
	block[p.idx] = math.Float64frombits(math.Float64bits(block[p.idx]) ^ (1 << p.bit))
}

// readPlan counts one read and evaluates its triggers under the lock,
// consuming exactly the RNG draws the per-block path would.
func (f *Faulty) readPlan() (fail bool, rot rotPlan, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rot.idx = -1
	delay = f.delay
	f.reads++
	fail = f.failReadAfter != 0 && f.reads >= f.failReadAfter
	fail = fail || (f.everyNthRead > 0 && f.reads%f.everyNthRead == 0)
	fail = fail || (f.pRead > 0 && f.rng.Float64() < f.pRead)
	if fail {
		f.injected++
		return fail, rot, delay
	}
	if f.pRotRead > 0 && f.rng.Float64() < f.pRotRead {
		rot.idx = f.rng.Intn(f.inner.BlockSize())
		rot.bit = uint(f.rng.Intn(64))
		f.rotted++
	}
	return fail, rot, delay
}

// writePlan counts one write and evaluates its triggers under the lock.
func (f *Faulty) writePlan() (fail bool, rot rotPlan, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rot.idx = -1
	delay = f.delay
	f.writes++
	fail = f.failWriteAfter != 0 && f.writes >= f.failWriteAfter
	fail = fail || (f.everyNthWrite > 0 && f.writes%f.everyNthWrite == 0)
	fail = fail || (f.pWrite > 0 && f.rng.Float64() < f.pWrite)
	if fail {
		f.injected++
		return fail, rot, delay
	}
	if f.pRotWrite > 0 && f.rng.Float64() < f.pRotWrite {
		rot.idx = f.rng.Intn(f.inner.BlockSize())
		rot.bit = uint(f.rng.Intn(64))
		f.rotted++
	}
	return fail, rot, delay
}

func stall(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// ReadBlock fails if any read trigger fires, else delegates; a firing rot
// trigger flips one bit of the returned block and reports success.
func (f *Faulty) ReadBlock(id int, buf []float64) error {
	fail, rot, delay := f.readPlan()
	stall(delay)
	if fail {
		return fmt.Errorf("read block %d: %w", id, ErrInjected)
	}
	if err := f.inner.ReadBlock(id, buf); err != nil {
		return err
	}
	rot.applyRot(buf)
	return nil
}

// WriteBlock fails if any write trigger fires, else delegates; a firing
// rot trigger flips one bit of the stored copy (the caller's slice is
// untouched) and reports success.
func (f *Faulty) WriteBlock(id int, data []float64) error {
	fail, rot, delay := f.writePlan()
	stall(delay)
	if fail {
		return fmt.Errorf("write block %d: %w", id, ErrInjected)
	}
	if rot.idx >= 0 {
		rotten := append([]float64(nil), data...)
		rot.applyRot(rotten)
		data = rotten
	}
	return f.inner.WriteBlock(id, data)
}

// ReadBlocks evaluates the per-block triggers in batch order (same
// counters and RNG draws as the loop) and forwards the maximal clean
// prefix as one vectored read. A firing fail trigger fails the batch with
// the same injected error the loop would return for that block; an inner
// error on the prefix takes precedence, as it would in the loop. Rot
// triggers flip bits in the delivered prefix exactly as the loop would.
func (f *Faulty) ReadBlocks(ids []int, bufs [][]float64) error {
	rots := make([]rotPlan, 0, len(ids))
	var delay time.Duration
	failAt := -1
	for i := range ids {
		fail, rot, d := f.readPlan()
		delay = d
		if fail {
			failAt = i
			break
		}
		rots = append(rots, rot)
	}
	stall(delay)
	n := len(ids)
	if failAt >= 0 {
		n = failAt
	}
	if err := ReadBlocksOf(f.inner, ids[:n], bufs[:n]); err != nil {
		return err
	}
	for i, rot := range rots[:n] {
		rot.applyRot(bufs[i])
	}
	if failAt >= 0 {
		return fmt.Errorf("read block %d: %w", ids[failAt], ErrInjected)
	}
	return nil
}

// WriteBlocks is ReadBlocks for the write triggers.
func (f *Faulty) WriteBlocks(ids []int, data [][]float64) error {
	rots := make([]rotPlan, 0, len(ids))
	var delay time.Duration
	failAt := -1
	for i := range ids {
		fail, rot, d := f.writePlan()
		delay = d
		if fail {
			failAt = i
			break
		}
		rots = append(rots, rot)
	}
	stall(delay)
	n := len(ids)
	if failAt >= 0 {
		n = failAt
	}
	out := data[:n]
	for i, rot := range rots[:n] {
		if rot.idx < 0 {
			continue
		}
		if &out[0] == &data[0] && n > 0 {
			out = append([][]float64(nil), data[:n]...)
		}
		rotten := append([]float64(nil), out[i]...)
		rot.applyRot(rotten)
		out[i] = rotten
	}
	if err := WriteBlocksOf(f.inner, ids[:n], out); err != nil {
		return err
	}
	if failAt >= 0 {
		return fmt.Errorf("write block %d: %w", ids[failAt], ErrInjected)
	}
	return nil
}

// Sync delegates (faults target block transfers, not barriers).
func (f *Faulty) Sync() error { return SyncIfAble(f.inner) }

// Truncate delegates.
func (f *Faulty) Truncate() error { return TruncateIfAble(f.inner) }

// Commit delegates.
func (f *Faulty) Commit() error { return CommitIfAble(f.inner) }

// Close delegates.
func (f *Faulty) Close() error { return f.inner.Close() }

// MappedReads forwards the inner stack's mapped-read counter. Note that
// Faulty does NOT forward FrameViewer: zero-copy views would bypass
// fault injection, so faulted stacks always use the copying read path.
func (f *Faulty) MappedReads() int64 { return MappedReadsOf(f.inner) }
