package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// FileStore is a BlockStore backed by a real file, one block per
// blockSize*8-byte extent, addressed by offset. The paper's experiments were
// "accurate implementations of the operations on real disks with real disk
// blocks" (§6); FileStore is that code path, while the counted MemStore is
// used where only deterministic I/O counts matter.
//
// ReadBlock and WriteBlock use positional file I/O (pread/pwrite) with
// per-call scratch buffers, so a FileStore is safe for concurrent use.
// ReadBlocks/WriteBlocks coalesce runs of consecutive block ids into a
// single pread/pwrite over a run-sized buffer; Preads/Pwrites count the
// positional I/O calls issued, the syscall proxy BENCH_io.json reports.
type FileStore struct {
	f          *os.File
	blockSize  int
	scratch    sync.Pool // *[]byte of 8*blockSize bytes
	runScratch sync.Pool // *[]byte sized for multi-block runs, grown on demand
	preads     atomic.Int64
	pwrites    atomic.Int64
	closed     atomic.Bool
}

// maxRunBlocks caps how many consecutive blocks one coalesced pread/pwrite
// covers. Unbounded runs would be fewest-syscalls-possible, but decoding a
// multi-megabyte slab after the copy walks it cold; run-sized chunks keep
// the frame bytes in cache while they are encoded or decoded, and 32 blocks
// already cuts syscalls per batch by 32x.
const maxRunBlocks = 64

func (s *FileStore) frameBytes() int { return 8 * s.blockSize }

// classifyWriteErr labels operating-system write failures with their
// taxonomy class: ENOSPC and EDQUOT mean the medium is full, which callers
// must treat as ErrNoSpace (stop the batch) rather than retry.
func classifyWriteErr(err error) error {
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) {
		return WithClass(err, ErrNoSpace)
	}
	return err
}

func (s *FileStore) getScratch() *[]byte {
	if b, ok := s.scratch.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, s.frameBytes())
	return &b
}

// getRunBuf returns a pooled buffer of at least n bytes for a multi-block
// run, so steady-state batches allocate nothing per call.
func (s *FileStore) getRunBuf(n int) *[]byte {
	if bp, ok := s.runScratch.Get().(*[]byte); ok && cap(*bp) >= n {
		*bp = (*bp)[:n]
		return bp
	}
	b := make([]byte, n)
	return &b
}

// NewFileStore creates (truncating) a file-backed store at path.
func NewFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize}, nil
}

// OpenFileStore opens an existing file-backed store at path.
func OpenFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize}, nil
}

// BlockSize returns the number of coefficients per block.
func (s *FileStore) BlockSize() int { return s.blockSize }

// ReadBlock reads block id; extents beyond the current file size read as
// zeros, modeling a lazily allocated device.
func (s *FileStore) ReadBlock(id int, buf []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	bp := s.getScratch()
	defer s.scratch.Put(bp)
	b := *bp
	off := int64(id) * int64(len(b))
	s.preads.Add(1)
	n, err := s.f.ReadAt(b, off)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read block %d: %w", id, err)
	}
	clear(b[n:])
	for i := range buf {
		bits := binary.LittleEndian.Uint64(b[8*i:])
		buf[i] = math.Float64frombits(bits)
	}
	return nil
}

// runSpan is one maximal run of consecutive block ids within a batch,
// as index bounds into the ids slice.
type runSpan struct{ start, end int }

// coalesceRuns splits ids into maximal runs of consecutive block ids,
// each at most maxRunBlocks long — the unit one pread/pwrite covers.
func coalesceRuns(ids []int) []runSpan {
	runs := make([]runSpan, 0, 4)
	for start := 0; start < len(ids); {
		end := start + 1
		for end < len(ids) && end-start < maxRunBlocks && ids[end] == ids[end-1]+1 {
			end++
		}
		runs = append(runs, runSpan{start, end})
		start = end
	}
	return runs
}

// fetchedRun is one pread's result handed from the prefetch goroutine
// to the decoding caller.
type fetchedRun struct {
	rp  *[]byte
	n   int
	err error
}

// ReadBlocks implements BatchReader: each maximal run of consecutive block
// ids becomes one pread over a run-sized buffer, with extents beyond the
// file reading as zeros exactly as ReadBlock does.
//
// Batches spanning several runs are pipelined: a prefetch goroutine
// issues the pread for run k+1 while the caller decodes run k (the
// channel's single-slot buffer bounds the lookahead to one run, so at
// most two run buffers are in flight). Errors surface for the first
// failing run in id order, exactly as the sequential loop's would; the
// prefetcher stops after its first error.
func (s *FileStore) ReadBlocks(ids []int, bufs [][]float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBatchArgs(s, ids, bufs); err != nil {
		return err
	}
	fb := s.frameBytes()
	runs := coalesceRuns(ids)
	if len(runs) < 2 {
		for _, r := range runs {
			if err := s.readRun(ids, bufs, r, fb); err != nil {
				return err
			}
		}
		return nil
	}
	fetched := make(chan fetchedRun, 1)
	go func() {
		for _, r := range runs {
			rp := s.getRunBuf((r.end - r.start) * fb)
			s.preads.Add(1)
			n, err := s.f.ReadAt(*rp, int64(ids[r.start])*int64(fb))
			if err == io.EOF {
				err = nil
			}
			fetched <- fetchedRun{rp, n, err}
			if err != nil {
				return
			}
		}
	}()
	for _, r := range runs {
		f := <-fetched
		if f.err != nil {
			s.runScratch.Put(f.rp)
			return fmt.Errorf("storage: read blocks %d..%d: %w", ids[r.start], ids[r.end-1], f.err)
		}
		b := *f.rp
		clear(b[f.n:])
		for i := r.start; i < r.end; i++ {
			fr := b[(i-r.start)*fb:]
			for j := range bufs[i] {
				bufs[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(fr[8*j:]))
			}
		}
		s.runScratch.Put(f.rp)
	}
	return nil
}

// readRun preads and decodes one run sequentially (the single-run path,
// where pipelining has nothing to overlap).
func (s *FileStore) readRun(ids []int, bufs [][]float64, r runSpan, fb int) error {
	run := r.end - r.start
	var b []byte
	var bp, rp *[]byte
	if run == 1 {
		bp = s.getScratch()
		b = *bp
	} else {
		rp = s.getRunBuf(run * fb)
		b = *rp
	}
	off := int64(ids[r.start]) * int64(fb)
	s.preads.Add(1)
	n, err := s.f.ReadAt(b, off)
	if err != nil && err != io.EOF {
		if bp != nil {
			s.scratch.Put(bp)
		}
		if rp != nil {
			s.runScratch.Put(rp)
		}
		return fmt.Errorf("storage: read blocks %d..%d: %w", ids[r.start], ids[r.end-1], err)
	}
	clear(b[n:])
	for i := r.start; i < r.end; i++ {
		fr := b[(i-r.start)*fb:]
		for j := range bufs[i] {
			bufs[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(fr[8*j:]))
		}
	}
	if bp != nil {
		s.scratch.Put(bp)
	}
	if rp != nil {
		s.runScratch.Put(rp)
	}
	return nil
}

// WriteBlock writes block id at its offset, growing the file as needed.
func (s *FileStore) WriteBlock(id int, data []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	bp := s.getScratch()
	defer s.scratch.Put(bp)
	b := *bp
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	off := int64(id) * int64(len(b))
	s.pwrites.Add(1)
	if _, err := s.f.WriteAt(b, off); err != nil {
		return fmt.Errorf("storage: write block %d: %w", id, classifyWriteErr(err))
	}
	return nil
}

// WriteBlocks implements BatchWriter: each maximal run of consecutive
// block ids becomes one pwrite of a run-sized buffer. Runs are written in
// slice order, so the physical write sequence is the per-block loop's.
func (s *FileStore) WriteBlocks(ids []int, data [][]float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBatchArgs(s, ids, data); err != nil {
		return err
	}
	fb := s.frameBytes()
	for start := 0; start < len(ids); {
		end := start + 1
		for end < len(ids) && end-start < maxRunBlocks && ids[end] == ids[end-1]+1 {
			end++
		}
		run := end - start
		var b []byte
		var bp, rp *[]byte
		if run == 1 {
			bp = s.getScratch()
			b = *bp
		} else {
			rp = s.getRunBuf(run * fb)
			b = *rp
		}
		for i := start; i < end; i++ {
			fr := b[(i-start)*fb:]
			for j, v := range data[i] {
				binary.LittleEndian.PutUint64(fr[8*j:], math.Float64bits(v))
			}
		}
		off := int64(ids[start]) * int64(fb)
		s.pwrites.Add(1)
		_, err := s.f.WriteAt(b[:run*fb], off)
		if bp != nil {
			s.scratch.Put(bp)
		}
		if rp != nil {
			s.runScratch.Put(rp)
		}
		if err != nil {
			return fmt.Errorf("storage: write blocks %d..%d: %w", ids[start], ids[end-1], classifyWriteErr(err))
		}
		start = end
	}
	return nil
}

// Syscalls returns how many positional read and write calls the store has
// issued — the coalescing win ReadBlocks/WriteBlocks buy over per-block
// loops, independent of the block counts a Counting above reports.
func (s *FileStore) Syscalls() (preads, pwrites int64) {
	return s.preads.Load(), s.pwrites.Load()
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	return classifyWriteErr(s.f.Sync())
}

// Truncate discards every block by truncating the file to zero length;
// subsequent reads see zeros. On journaling filesystems this metadata
// operation is atomic, which is why the block journal uses it as its
// "batch retired" marker.
func (s *FileStore) Truncate() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	return nil
}

// NumBlocks returns how many block extents the file currently holds
// (partial trailing extents count as one).
func (s *FileStore) NumBlocks() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	bb := int64(s.frameBytes())
	return int((fi.Size() + bb - 1) / bb), nil
}

// Close closes the underlying file.
func (s *FileStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.f.Close()
}
