package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// FileStore is a BlockStore backed by a real file, one block per
// blockSize*8-byte extent, addressed by offset. The paper's experiments were
// "accurate implementations of the operations on real disks with real disk
// blocks" (§6); FileStore is that code path, while the counted MemStore is
// used where only deterministic I/O counts matter.
type FileStore struct {
	f         *os.File
	blockSize int
	buf       []byte
	closed    bool
}

// NewFileStore creates (truncating) a file-backed store at path.
func NewFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize, buf: make([]byte, 8*blockSize)}, nil
}

// OpenFileStore opens an existing file-backed store at path.
func OpenFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize, buf: make([]byte, 8*blockSize)}, nil
}

// BlockSize returns the number of coefficients per block.
func (s *FileStore) BlockSize() int { return s.blockSize }

// ReadBlock reads block id; extents beyond the current file size read as
// zeros, modeling a lazily allocated device.
func (s *FileStore) ReadBlock(id int, buf []float64) error {
	if s.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	off := int64(id) * int64(len(s.buf))
	n, err := s.f.ReadAt(s.buf, off)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read block %d: %w", id, err)
	}
	for i := n; i < len(s.buf); i++ {
		s.buf[i] = 0
	}
	for i := range buf {
		bits := binary.LittleEndian.Uint64(s.buf[8*i:])
		buf[i] = math.Float64frombits(bits)
	}
	return nil
}

// WriteBlock writes block id at its offset, growing the file as needed.
func (s *FileStore) WriteBlock(id int, data []float64) error {
	if s.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	for i, v := range data {
		binary.LittleEndian.PutUint64(s.buf[8*i:], math.Float64bits(v))
	}
	off := int64(id) * int64(len(s.buf))
	if _, err := s.f.WriteAt(s.buf, off); err != nil {
		return fmt.Errorf("storage: write block %d: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error {
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// Truncate discards every block by truncating the file to zero length;
// subsequent reads see zeros. On journaling filesystems this metadata
// operation is atomic, which is why the block journal uses it as its
// "batch retired" marker.
func (s *FileStore) Truncate() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	return nil
}

// NumBlocks returns how many block extents the file currently holds
// (partial trailing extents count as one).
func (s *FileStore) NumBlocks() (int, error) {
	if s.closed {
		return 0, ErrClosed
	}
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	bb := int64(len(s.buf))
	return int((fi.Size() + bb - 1) / bb), nil
}

// Close closes the underlying file.
func (s *FileStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
