package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// FileStore is a BlockStore backed by a real file, one block per
// blockSize*8-byte extent, addressed by offset. The paper's experiments were
// "accurate implementations of the operations on real disks with real disk
// blocks" (§6); FileStore is that code path, while the counted MemStore is
// used where only deterministic I/O counts matter.
//
// ReadBlock and WriteBlock use positional file I/O (pread/pwrite) with
// per-call scratch buffers, so a FileStore is safe for concurrent use.
type FileStore struct {
	f         *os.File
	blockSize int
	scratch   sync.Pool // *[]byte of 8*blockSize bytes
	closed    atomic.Bool
}

func (s *FileStore) frameBytes() int { return 8 * s.blockSize }

func (s *FileStore) getScratch() *[]byte {
	if b, ok := s.scratch.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, s.frameBytes())
	return &b
}

// NewFileStore creates (truncating) a file-backed store at path.
func NewFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize}, nil
}

// OpenFileStore opens an existing file-backed store at path.
func OpenFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize}, nil
}

// BlockSize returns the number of coefficients per block.
func (s *FileStore) BlockSize() int { return s.blockSize }

// ReadBlock reads block id; extents beyond the current file size read as
// zeros, modeling a lazily allocated device.
func (s *FileStore) ReadBlock(id int, buf []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	bp := s.getScratch()
	defer s.scratch.Put(bp)
	b := *bp
	off := int64(id) * int64(len(b))
	n, err := s.f.ReadAt(b, off)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read block %d: %w", id, err)
	}
	for i := n; i < len(b); i++ {
		b[i] = 0
	}
	for i := range buf {
		bits := binary.LittleEndian.Uint64(b[8*i:])
		buf[i] = math.Float64frombits(bits)
	}
	return nil
}

// WriteBlock writes block id at its offset, growing the file as needed.
func (s *FileStore) WriteBlock(id int, data []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	bp := s.getScratch()
	defer s.scratch.Put(bp)
	b := *bp
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	off := int64(id) * int64(len(b))
	if _, err := s.f.WriteAt(b, off); err != nil {
		return fmt.Errorf("storage: write block %d: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.f.Sync()
}

// Truncate discards every block by truncating the file to zero length;
// subsequent reads see zeros. On journaling filesystems this metadata
// operation is atomic, which is why the block journal uses it as its
// "batch retired" marker.
func (s *FileStore) Truncate() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	return nil
}

// NumBlocks returns how many block extents the file currently holds
// (partial trailing extents count as one).
func (s *FileStore) NumBlocks() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	bb := int64(s.frameBytes())
	return int((fi.Size() + bb - 1) / bb), nil
}

// Close closes the underlying file.
func (s *FileStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.f.Close()
}
