package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// This file is the concurrent committed-read path that lets the epoch layer
// demote Locked from serving: a ChecksumReader verifies frames over the raw
// device with pooled scratch (safe for any number of concurrent readers,
// unlike the single-threaded Checksummed), and a SplitRW store routes reads
// to it while mutations keep the full journaled write path.

// readerScratch is one reader's reusable frame/CRC scratch.
type readerScratch struct {
	frame []float64
	bytes []byte
	slab  []float64
	batch [][]float64
}

// ChecksumReader is a read-only, concurrency-safe view over a
// checksum-framed device: the same frame format as Checksummed, verified
// with per-call pooled scratch instead of single-threaded fields. It does
// not own the device — Close is a no-op — and it sees exactly the
// committed bytes (never the Durable staging area), which is what epoch
// snapshots want: the current table only ever references committed blocks.
type ChecksumReader struct {
	inner BlockStore
	pool  sync.Pool
}

// NewChecksumReader builds a concurrent reader over a raw framed device.
// The device's reads must themselves be concurrency-safe (FileStore,
// MappedStore, MemStore all are).
func NewChecksumReader(inner BlockStore) (*ChecksumReader, error) {
	n := inner.BlockSize()
	if n <= ChecksumOverhead {
		return nil, fmt.Errorf("storage: checksum reader needs inner block size > %d, got %d", ChecksumOverhead, n)
	}
	r := &ChecksumReader{inner: inner}
	r.pool.New = func() any {
		return &readerScratch{
			frame: make([]float64, n),
			bytes: make([]byte, 8*(n-1)),
		}
	}
	return r, nil
}

// BlockSize returns the logical (payload) block size.
func (r *ChecksumReader) BlockSize() int { return r.inner.BlockSize() - ChecksumOverhead }

// ReadBlock reads and verifies one block; unwritten frames read as zeros.
func (r *ChecksumReader) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(r, id, buf); err != nil {
		return err
	}
	sc := r.pool.Get().(*readerScratch)
	defer r.pool.Put(sc)
	if err := r.inner.ReadBlock(id, sc.frame); err != nil {
		return err
	}
	_, written, err := verifyFrameIn(sc.bytes, r.BlockSize(), id, sc.frame)
	if err != nil {
		return err
	}
	if !written {
		ZeroFill(buf)
		return nil
	}
	copy(buf, sc.frame[:r.BlockSize()])
	return nil
}

// ReadBlocks implements BatchReader. When the device exposes zero-copy
// frame views (MappedStore), CRCs verify over the mapped bytes in place;
// otherwise one vectored read lands in a pooled slab and verifies there.
func (r *ChecksumReader) ReadBlocks(ids []int, bufs [][]float64) error {
	if err := checkBatchArgs(r, ids, bufs); err != nil {
		return err
	}
	if fv, ok := r.inner.(FrameViewer); ok {
		return r.readBlocksViews(fv, ids, bufs)
	}
	inner := r.inner.BlockSize()
	sc := r.pool.Get().(*readerScratch)
	defer r.pool.Put(sc)
	n := len(ids)
	if n*inner > cap(sc.slab) {
		sc.slab = make([]float64, n*inner)
		sc.batch = nil
	}
	if n > len(sc.batch) {
		sc.batch = SliceFrames(sc.slab[:n*inner], n, inner)
	}
	frames := sc.batch[:n]
	if err := ReadBlocksOf(r.inner, ids, frames); err != nil {
		return err
	}
	p := r.BlockSize()
	for i, id := range ids {
		_, written, err := verifyFrameIn(sc.bytes, p, id, frames[i])
		if err != nil {
			return err
		}
		if !written {
			ZeroFill(bufs[i])
			continue
		}
		copy(bufs[i], frames[i][:p])
	}
	return nil
}

// readBlocksViews is the zero-copy leg: borrow, verify in place, decode
// straight into the caller's buffers, release. The views never escape.
func (r *ChecksumReader) readBlocksViews(fv FrameViewer, ids []int, bufs [][]float64) error {
	views, err := fv.ViewFrames(ids)
	if err != nil {
		return err
	}
	defer views.Release()
	p := r.BlockSize()
	for i, id := range ids {
		fb := views.Frame(i)
		if fb == nil {
			ZeroFill(bufs[i])
			continue
		}
		written, err := verifyFrameBytesAt(p, id, fb)
		if err != nil {
			return err
		}
		if !written {
			ZeroFill(bufs[i])
			continue
		}
		for j := range bufs[i] {
			bufs[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(fb[8*j:]))
		}
	}
	return nil
}

// WriteBlock fails: this view is read-only by construction.
func (r *ChecksumReader) WriteBlock(id int, data []float64) error {
	return fmt.Errorf("storage: checksum reader is read-only (block %d)", id)
}

// MappedReads forwards the device's mapped-read counter.
func (r *ChecksumReader) MappedReads() int64 { return MappedReadsOf(r.inner) }

// Close is a no-op: the write path owns the device.
func (r *ChecksumReader) Close() error { return nil }

// ReadOnlyView returns a concurrency-safe committed-read view over the
// Durable's data device, bypassing the journal and the staging area. It is
// the read leg of a SplitRW under an epoch layer: epoch tables only ever
// reference committed physical blocks, so the view always sees exactly the
// bytes a pinned snapshot needs. The Durable keeps owning the device.
func (d *Durable) ReadOnlyView() (*ChecksumReader, error) {
	return NewChecksumReader(d.data.inner)
}

// SplitRW routes reads to a concurrent read path and everything else —
// writes, durability points, verification, repair — to the full write
// path. Both legs must bottom out at the same medium. It is how the epoch
// layer demotes Locked from serving reads: only mutations (already
// serialized by the maintenance engines) pay the write lock.
type SplitRW struct {
	r BlockStore
	w BlockStore
}

// NewSplitRW pairs a read leg with a write leg of equal block size.
func NewSplitRW(r, w BlockStore) (*SplitRW, error) {
	if r.BlockSize() != w.BlockSize() {
		return nil, fmt.Errorf("storage: split read block size %d != write block size %d", r.BlockSize(), w.BlockSize())
	}
	return &SplitRW{r: r, w: w}, nil
}

// BlockSize returns the common block size.
func (s *SplitRW) BlockSize() int { return s.r.BlockSize() }

// ReadBlock reads through the concurrent leg.
func (s *SplitRW) ReadBlock(id int, buf []float64) error { return s.r.ReadBlock(id, buf) }

// ReadBlocks implements BatchReader through the concurrent leg.
func (s *SplitRW) ReadBlocks(ids []int, bufs [][]float64) error {
	return ReadBlocksOf(s.r, ids, bufs)
}

// WriteBlock writes through the full write path.
func (s *SplitRW) WriteBlock(id int, data []float64) error { return s.w.WriteBlock(id, data) }

// WriteBlocks implements BatchWriter through the full write path.
func (s *SplitRW) WriteBlocks(ids []int, data [][]float64) error {
	return WriteBlocksOf(s.w, ids, data)
}

// Sync forwards the durability point to the write path.
func (s *SplitRW) Sync() error { return SyncIfAble(s.w) }

// Commit forwards the transactional group boundary to the write path.
func (s *SplitRW) Commit() error { return CommitIfAble(s.w) }

// Truncate forwards to the write path.
func (s *SplitRW) Truncate() error { return TruncateIfAble(s.w) }

// VerifyBlocks routes verification through the write path, which knows
// about staged-but-uncommitted frames.
func (s *SplitRW) VerifyBlocks(ids []int) (corrupt []int, err error) {
	return VerifyBlocksOf(s.w, ids)
}

// RepairBlock routes repair through the write path.
func (s *SplitRW) RepairBlock(id int) (bool, error) { return RepairBlockOf(s.w, id) }

// MappedReads reports the shared device's mapped-read counter (both legs
// bottom out at the same medium, so either leg's counter is the counter).
func (s *SplitRW) MappedReads() int64 { return MappedReadsOf(s.w) }

// Close closes the write path (which owns the medium), then the read leg
// (a no-op for ChecksumReader).
func (s *SplitRW) Close() error {
	err := s.w.Close()
	if cerr := s.r.Close(); err == nil {
		err = cerr
	}
	return err
}
