package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// campaignSeed lets CI pin the tear/drop RNG: SHIFTSPLIT_CRASH_SEED=n.
func campaignSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SHIFTSPLIT_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SHIFTSPLIT_CRASH_SEED %q: %v", s, err)
		}
		return n
	}
	return 1
}

// campaignBatches is the deterministic workload: batch A (the committed
// pre-state) and batch B (the maintenance batch the campaign kills).
// B overwrites part of A and extends the store.
func campaignBatches(blockSize int) (a, b map[int][]float64) {
	a = make(map[int][]float64)
	b = make(map[int][]float64)
	for id := 0; id < 5; id++ {
		blk := make([]float64, blockSize)
		for k := range blk {
			blk[k] = float64(100*id + k + 1)
		}
		a[id] = blk
	}
	for _, id := range []int{1, 3, 6, 7} {
		blk := make([]float64, blockSize)
		for k := range blk {
			blk[k] = -float64(1000*id + k + 1)
		}
		b[id] = blk
	}
	return a, b
}

func applyBatch(t *testing.T, d *Durable, batch map[int][]float64) error {
	t.Helper()
	ids := make([]int, 0, len(batch))
	for id := range batch {
		ids = append(ids, id)
	}
	// Deterministic staging order (the commit sorts anyway).
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		if err := d.WriteBlock(id, batch[id]); err != nil {
			return err
		}
	}
	return d.Commit()
}

// expectedStates returns the only two legal post-crash states: pre (batch A
// alone) and post (A overlaid with B).
func expectedStates(a, b map[int][]float64) (pre, post map[int][]float64) {
	pre = a
	post = make(map[int][]float64)
	for id, blk := range a {
		post[id] = blk
	}
	for id, blk := range b {
		post[id] = blk
	}
	return pre, post
}

func readState(t *testing.T, d *Durable, maxBlock int) map[int][]float64 {
	t.Helper()
	out := make(map[int][]float64)
	buf := make([]float64, d.BlockSize())
	for id := 0; id <= maxBlock; id++ {
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatalf("read block %d after recovery: %v", id, err)
		}
		zero := true
		for _, v := range buf {
			if v != 0 {
				zero = false
				break
			}
		}
		if !zero {
			out[id] = append([]float64(nil), buf...)
		}
	}
	return out
}

func sameState(got, want map[int][]float64) bool {
	if len(got) != len(want) {
		return false
	}
	for id, blk := range want {
		g, ok := got[id]
		if !ok {
			return false
		}
		for k := range blk {
			if g[k] != blk[k] {
				return false
			}
		}
	}
	return true
}

// TestCrashCampaignDurable kills the commit of a block batch at every
// physical mutation index — dropped, torn, or persisted in-flight write,
// partially persisted fsync, lost truncate — and asserts that reopening
// always recovers to exactly the pre-batch or post-batch contents, with a
// clean fsck.
func TestCrashCampaignDurable(t *testing.T) {
	const blockSize = 6
	seed := campaignSeed(t)
	batchA, batchB := campaignBatches(blockSize)
	pre, post := expectedStates(batchA, batchB)

	// Dry run: how many physical mutations does the B commit take?
	dry := NewCrashPlan(seed)
	dir := t.TempDir()
	path := filepath.Join(dir, "dry.dat")
	d, err := CreateDurable(path, blockSize, dry)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyBatch(t, d, batchA); err != nil {
		t.Fatal(err)
	}
	opsA := dry.Ops()
	if err := applyBatch(t, d, batchB); err != nil {
		t.Fatal(err)
	}
	opsB := dry.Ops() - opsA
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if opsB < 10 {
		t.Fatalf("suspiciously small batch: %d mutations", opsB)
	}
	t.Logf("batch B = %d physical mutations (A took %d)", opsB, opsA)

	preSeen, postSeen := 0, 0
	for w := int64(1); w <= opsB; w++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.dat", w))
		plan := NewCrashPlan(seed + w)
		d, err := CreateDurable(path, blockSize, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := applyBatch(t, d, batchA); err != nil {
			t.Fatalf("trial %d: batch A: %v", w, err)
		}
		plan.ArmAt(plan.Ops() + w)
		err = applyBatch(t, d, batchB)
		if w < opsB && !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: expected crash, got %v", w, err)
		}
		_ = d.Close() // dead machine: close file handles, errors expected

		// Power restored: reopen and verify.
		d2, err := OpenDurable(path, blockSize, nil)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", w, err)
		}
		got := readState(t, d2, 8)
		switch {
		case sameState(got, pre):
			preSeen++
		case sameState(got, post):
			postSeen++
		default:
			t.Fatalf("trial %d: hybrid state after recovery: %v", w, got)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("trial %d: close recovered store: %v", w, err)
		}
		rep, err := Fsck(path, blockSize)
		if err != nil {
			t.Fatalf("trial %d: fsck: %v", w, err)
		}
		if !rep.Clean() {
			t.Fatalf("trial %d: fsck not clean: %+v", w, rep)
		}
	}
	t.Logf("campaign: %d trials, %d recovered to pre, %d to post", opsB, preSeen, postSeen)
	if preSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign never exercised both outcomes (pre=%d post=%d)", preSeen, postSeen)
	}
}

// TestCrashStoreTearIsDetected checks the fault injector itself: a torn
// block write must be caught by the checksum layer on read.
func TestCrashStoreTearIsDetected(t *testing.T) {
	plan := NewCrashPlan(3)
	inner := NewMemStore(8 + ChecksumOverhead)
	cs := NewCrashStore(inner, plan)
	chk, err := NewChecksummed(cs)
	if err != nil {
		t.Fatal(err)
	}
	// Establish a synced block, then tear an overwrite of it.
	if err := chk.WriteBlock(0, []float64{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := chk.Sync(); err != nil {
		t.Fatal(err)
	}
	tornSeen := false
	for attempt := int64(0); attempt < 20 && !tornSeen; attempt++ {
		p2 := NewCrashPlan(100 + attempt)
		inner2 := NewMemStore(8 + ChecksumOverhead)
		// Copy the established state onto the fresh medium.
		raw := make([]float64, inner.BlockSize())
		if err := inner.ReadBlock(0, raw); err != nil {
			t.Fatal(err)
		}
		if err := inner2.WriteBlock(0, raw); err != nil {
			t.Fatal(err)
		}
		cs2 := NewCrashStore(inner2, p2)
		chk2, err := NewChecksummed(cs2)
		if err != nil {
			t.Fatal(err)
		}
		p2.ArmAt(1)
		if err := chk2.WriteBlock(0, []float64{2, 2, 2, 2, 2, 2, 2, 2}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("armed write returned %v", err)
		}
		// Inspect the medium directly with a fresh checksummed view.
		chk3, err := NewChecksummed(inner2)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]float64, 8)
		err = chk3.ReadBlock(0, buf)
		switch {
		case err == nil:
			// Dropped (old survives) or fully persisted (new survives):
			// both are checksum-clean.
			if buf[0] != 1 && buf[0] != 2 {
				t.Fatalf("medium holds unexpected value %g", buf[0])
			}
		case errors.Is(err, ErrChecksum):
			tornSeen = true // the tear was caught
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if !tornSeen {
		t.Fatal("20 seeds never produced a detectable torn write")
	}
}
