package storage

import (
	"path/filepath"
	"testing"
)

// The vectored-I/O benchmarks measure the tentpole payoff directly at the
// FileStore: a batch over consecutive ids coalesces into one positional
// syscall per run, while the per-block loop pays one syscall per block.
// Alongside ns/op each benchmark reports preads/op or pwrites/op — the
// store's own syscall-proxy counters — so the device-request reduction is
// visible even when the page cache hides most of the latency.

const (
	benchBlocks    = 256
	benchBlockSize = 512
)

func benchFileStore(b *testing.B) (*FileStore, []int, [][]float64) {
	b.Helper()
	fs, err := NewFileStore(filepath.Join(b.TempDir(), "bench.dat"), benchBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fs.Close() })
	ids := make([]int, benchBlocks)
	frames := SliceFrames(make([]float64, benchBlocks*benchBlockSize), benchBlocks, benchBlockSize)
	for i := range ids {
		ids[i] = i
		for k := range frames[i] {
			frames[i][k] = float64(i*benchBlockSize + k)
		}
	}
	if err := fs.WriteBlocks(ids, frames); err != nil {
		b.Fatal(err)
	}
	return fs, ids, frames
}

func reportSyscalls(b *testing.B, fs *FileStore, preads0, pwrites0 int64) {
	b.Helper()
	preads, pwrites := fs.Syscalls()
	b.ReportMetric(float64(preads-preads0)/float64(b.N), "preads/op")
	b.ReportMetric(float64(pwrites-pwrites0)/float64(b.N), "pwrites/op")
}

func BenchmarkFileStoreRead(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		fs, ids, frames := benchFileStore(b)
		preads0, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.ReadBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportSyscalls(b, fs, preads0, pwrites0)
	})
	b.Run("looped", func(b *testing.B) {
		fs, ids, frames := benchFileStore(b)
		preads0, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				if err := fs.ReadBlock(id, frames[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportSyscalls(b, fs, preads0, pwrites0)
	})
}

func BenchmarkFileStoreWrite(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		fs, ids, frames := benchFileStore(b)
		preads0, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.WriteBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportSyscalls(b, fs, preads0, pwrites0)
	})
	b.Run("looped", func(b *testing.B) {
		fs, ids, frames := benchFileStore(b)
		preads0, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				if err := fs.WriteBlock(id, frames[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportSyscalls(b, fs, preads0, pwrites0)
	})
}
