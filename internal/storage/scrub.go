package storage

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// ScrubberOptions configures a Scrubber. The zero value selects the
// defaults noted on each field.
type ScrubberOptions struct {
	// BatchSize is how many blocks one verification step covers (default
	// 32). Each step is one vectored read through the batch path, so the
	// batch size bounds how long the scrubber holds the store's lock.
	BatchSize int
	// RateBlocksPerSec caps scrub I/O so a background pass cannot starve
	// foreground queries: after each batch the scrubber sleeps long enough
	// to keep the average at or under the cap (0 = unlimited).
	RateBlocksPerSec int
	// Sleep is the delay function (default time.Sleep; tests inject a
	// recorder).
	Sleep func(time.Duration)
}

// ScrubStats is a snapshot of scrubber progress.
type ScrubStats struct {
	Passes  int64 // full walks of the block space completed
	Scanned int64 // blocks verified (across all passes)
	Corrupt int64 // blocks found corrupt and quarantined
	Healed  int64 // quarantined blocks that verified clean and were released
}

// Scrubber walks the block space in the background, verifying frame
// integrity through the batch-read path at a bounded I/O rate, and keeps
// the quarantine registry in sync with the medium: corrupt blocks are
// quarantined, quarantined blocks that verify clean again (repaired or
// rewritten) are released.
type Scrubber struct {
	bs        BlockStore
	numBlocks func() int
	q         *Quarantine
	opts      ScrubberOptions

	passes  atomic.Int64
	scanned atomic.Int64
	corrupt atomic.Int64
	healed  atomic.Int64
}

// NewScrubber builds a scrubber over bs (which should be the locked layer
// of a shared stack — verification reuses per-store scratch buffers).
// numBlocks reports the current extent of the block space and is consulted
// at the start of every pass; q receives the verdicts.
func NewScrubber(bs BlockStore, numBlocks func() int, q *Quarantine, opts ScrubberOptions) (*Scrubber, error) {
	if bs == nil || numBlocks == nil || q == nil {
		return nil, fmt.Errorf("storage: scrubber needs a store, a block-count source, and a quarantine")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Scrubber{bs: bs, numBlocks: numBlocks, q: q, opts: opts}, nil
}

// Stats returns the progress counters.
func (s *Scrubber) Stats() ScrubStats {
	return ScrubStats{
		Passes:  s.passes.Load(),
		Scanned: s.scanned.Load(),
		Corrupt: s.corrupt.Load(),
		Healed:  s.healed.Load(),
	}
}

// RunOnce walks the whole block space once, returning how many blocks are
// quarantined after the pass. The context is checked between batches; a
// canceled pass returns ctx.Err() without counting as a completed pass.
func (s *Scrubber) RunOnce(ctx context.Context) (quarantined int, err error) {
	total := s.numBlocks()
	ids := make([]int, 0, s.opts.BatchSize)
	for start := 0; start < total; start += s.opts.BatchSize {
		if ctx != nil && ctx.Err() != nil {
			return s.q.Len(), ctx.Err()
		}
		end := start + s.opts.BatchSize
		if end > total {
			end = total
		}
		ids = ids[:0]
		for id := start; id < end; id++ {
			ids = append(ids, id)
		}
		batchStart := time.Now()
		corrupt, err := VerifyBlocksOf(s.bs, ids)
		if err != nil {
			return s.q.Len(), fmt.Errorf("storage: scrub batch %d..%d: %w", start, end-1, err)
		}
		s.scanned.Add(int64(len(ids)))
		bad := make(map[int]bool, len(corrupt))
		for _, id := range corrupt {
			bad[id] = true
			if s.q.Add(id, "scrub: frame failed verification") {
				s.corrupt.Add(1)
			}
		}
		for _, id := range ids {
			if !bad[id] && s.q.Remove(id) {
				s.healed.Add(1)
			}
		}
		s.throttle(len(ids), time.Since(batchStart))
	}
	s.passes.Add(1)
	return s.q.Len(), nil
}

// throttle sleeps off the difference between the time a batch took and the
// time it should take under the rate cap.
func (s *Scrubber) throttle(blocks int, took time.Duration) {
	if s.opts.RateBlocksPerSec <= 0 || blocks == 0 {
		return
	}
	want := time.Duration(float64(blocks) / float64(s.opts.RateBlocksPerSec) * float64(time.Second))
	if want > took {
		s.opts.Sleep(want - took)
	}
}

// Run scrubs continuously: one pass, then an interval wait, until the
// context is canceled. A pass that fails (device error) is logged into the
// returned error only on cancellation; transient pass failures wait out
// the interval and try again — scrubbing is best-effort by design.
func (s *Scrubber) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if _, err := s.RunOnce(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		timer.Reset(interval)
	}
}
