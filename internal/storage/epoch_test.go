package storage

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// fillSeq returns a block-sized buffer holding a recognizable pattern.
func fillSeq(n int, seed float64) []float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = seed + float64(i)
	}
	return buf
}

func TestVersionedFreshReadsZeros(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if got := v.Epoch(); got != 0 {
		t.Fatalf("fresh epoch = %d, want 0", got)
	}
	buf := make([]float64, 8)
	for id := 0; id < 10; id++ {
		buf[0] = 99
		if err := v.ReadBlock(id, buf); err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		for _, x := range buf {
			if x != 0 {
				t.Fatalf("fresh block %d not zero: %v", id, buf)
			}
		}
	}
}

func TestVersionedReadYourWrites(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	want := fillSeq(8, 100)
	if err := v.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}
	// Uncommitted write is visible through the builder...
	got := make([]float64, 8)
	if err := v.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("builder read = %v, want %v", got, want)
		}
	}
	// ...but not through a pinned snapshot of the committed epoch.
	snap := v.Acquire()
	defer snap.Release()
	if err := snap.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x != 0 {
			t.Fatalf("snapshot of epoch 0 sees uncommitted data: %v", got)
		}
	}
}

func TestVersionedSnapshotIsolationAcrossFlips(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Epoch 1: every block holds 1000+i; epoch 2: 2000+i.
	for round := 1; round <= 2; round++ {
		for id := 0; id < 4; id++ {
			if err := v.WriteBlock(id, fillSeq(8, float64(1000*round+id))); err != nil {
				t.Fatal(err)
			}
		}
		if round == 1 {
			if err := v.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap1 := v.Acquire() // pins epoch 1 while epoch 2 is still building
	if snap1.Epoch() != 1 {
		t.Fatalf("pinned epoch %d, want 1", snap1.Epoch())
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	snap2 := v.Acquire()
	if snap2.Epoch() != 2 {
		t.Fatalf("pinned epoch %d, want 2", snap2.Epoch())
	}
	buf := make([]float64, 8)
	for id := 0; id < 4; id++ {
		if err := snap1.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != float64(1000+id) {
			t.Fatalf("epoch-1 snapshot block %d = %v, want %d", id, buf[0], 1000+id)
		}
		if err := snap2.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != float64(2000+id) {
			t.Fatalf("epoch-2 snapshot block %d = %v, want %d", id, buf[0], 2000+id)
		}
	}
	if err := snap1.WriteBlock(0, buf); !errors.Is(err, ErrSnapshotReadOnly) {
		t.Fatalf("snapshot write = %v, want ErrSnapshotReadOnly", err)
	}
	snap1.Release()
	snap2.Release()
}

func TestVersionedReclaimsOnlyAfterRelease(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for id := 0; id < 4; id++ {
		if err := v.WriteBlock(id, fillSeq(8, float64(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := v.Acquire()

	// Rewrite everything for epoch 2: with epoch 1 pinned, nothing from it
	// may be reclaimed, so the new epoch allocates 4 fresh blocks.
	for id := 0; id < 4; id++ {
		if err := v.WriteBlock(id, fillSeq(8, float64(100+id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Epoch != 2 || st.Pinned != 1 || st.OldestPinned != 1 {
		t.Fatalf("stats = %+v, want epoch 2 pinned 1 oldest 1", st)
	}
	if st.Reclaimable != 4 {
		t.Fatalf("reclaimable = %d, want 4 (old epoch's blocks held by the pin)", st.Reclaimable)
	}
	if st.FreeBlocks != 0 {
		t.Fatalf("free = %d, want 0 while the pin holds", st.FreeBlocks)
	}
	snap.Release()
	st = v.Stats()
	if st.Pinned != 0 || st.Reclaimable != 0 {
		t.Fatalf("after release stats = %+v, want no pins, no held blocks", st)
	}
	// Epoch 1's four blocks sit below epoch 2's in the physical space, so
	// releasing the pin must put exactly those four on the free list.
	if st.FreeBlocks != 4 {
		t.Fatalf("after release free=%d phys=%d dataBase=%d, want 4 free", st.FreeBlocks, st.PhysBlocks, v.dataBase)
	}

	// Epoch 3 must reuse reclaimed space rather than growing the file.
	before := v.PhysExtent()
	for id := 0; id < 4; id++ {
		if err := v.WriteBlock(id, fillSeq(8, float64(200+id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if after := v.PhysExtent(); after > before {
		t.Fatalf("epoch 3 grew the file %d -> %d despite a free list", before, after)
	}
}

func TestVersionedOnReuseHook(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	var mu sync.Mutex
	var reused []int
	v.OnReuse(func(phys int) {
		mu.Lock()
		reused = append(reused, phys)
		mu.Unlock()
	})
	for round := 0; round < 3; round++ {
		for id := 0; id < 2; id++ {
			if err := v.WriteBlock(id, fillSeq(8, float64(10*round+id))); err != nil {
				t.Fatal(err)
			}
		}
		if err := v.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reused) == 0 {
		t.Fatal("no reuse notifications despite unpinned rewrites across epochs")
	}
	for _, p := range reused {
		if p < v.dataBase {
			t.Fatalf("reuse hook fired for reserved block %d", p)
		}
	}
}

func TestVersionedPersistsAcrossReopen(t *testing.T) {
	for _, leg := range []string{"file", "durable"} {
		t.Run(leg, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "v.blk")
			open := func(create bool) BlockStore {
				switch {
				case leg == "file" && create:
					fs, err := NewFileStore(path, 8)
					if err != nil {
						t.Fatal(err)
					}
					return fs
				case leg == "file":
					fs, err := OpenFileStore(path, 8)
					if err != nil {
						t.Fatal(err)
					}
					return fs
				case create:
					d, err := CreateDurable(path, 8, nil)
					if err != nil {
						t.Fatal(err)
					}
					return d
				default:
					d, err := OpenDurable(path, 8, nil)
					if err != nil {
						t.Fatal(err)
					}
					return d
				}
			}
			base := open(true)
			v, err := NewVersioned(base, 5)
			if err != nil {
				t.Fatal(err)
			}
			for id := 0; id < 5; id++ {
				if err := v.WriteBlock(id, fillSeq(8, float64(300+id))); err != nil {
					t.Fatal(err)
				}
			}
			if err := v.Commit(); err != nil {
				t.Fatal(err)
			}
			// Partially rewrite for epoch 2.
			if err := v.WriteBlock(2, fillSeq(8, 999)); err != nil {
				t.Fatal(err)
			}
			if err := v.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := v.Close(); err != nil {
				t.Fatal(err)
			}

			v2, err := NewVersioned(open(false), 5)
			if err != nil {
				t.Fatal(err)
			}
			defer v2.Close()
			if got := v2.Epoch(); got != 2 {
				t.Fatalf("reopened epoch = %d, want 2", got)
			}
			buf := make([]float64, 8)
			for id := 0; id < 5; id++ {
				if err := v2.ReadBlock(id, buf); err != nil {
					t.Fatal(err)
				}
				want := float64(300 + id)
				if id == 2 {
					want = 999
				}
				if buf[0] != want {
					t.Fatalf("reopened block %d = %v, want %v", id, buf[0], want)
				}
			}
		})
	}
}

func TestVersionedRollbackReturnsAllocations(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDurable(filepath.Join(dir, "v.blk"), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVersioned(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for id := 0; id < 4; id++ {
		if err := v.WriteBlock(id, fillSeq(8, float64(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	ext := v.PhysExtent()
	if err := v.WriteBlock(1, fillSeq(8, 777)); err != nil {
		t.Fatal(err)
	}
	v.Rollback()
	if got := v.Epoch(); got != 1 {
		t.Fatalf("epoch after rollback = %d, want 1", got)
	}
	buf := make([]float64, 8)
	if err := v.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("block 1 after rollback = %v, want committed 1", buf[0])
	}
	if got := v.PhysExtent(); got != ext {
		t.Fatalf("extent after rollback = %d, want %d", got, ext)
	}
}

func TestVersionedBatchMatchesLoop(t *testing.T) {
	v, err := NewVersioned(NewMemStore(8), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	rng := rand.New(rand.NewSource(42))
	ids := []int{1, 5, 9, 13, 2}
	data := make([][]float64, len(ids))
	for i := range data {
		data[i] = fillSeq(8, float64(rng.Intn(1000)))
	}
	if err := v.WriteBlocks(ids, data); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 5, 9, 13, 15}
	bufs := make([][]float64, len(all))
	for i := range bufs {
		bufs[i] = make([]float64, 8)
	}
	if err := v.ReadBlocks(all, bufs); err != nil {
		t.Fatal(err)
	}
	one := make([]float64, 8)
	for i, id := range all {
		if err := v.ReadBlock(id, one); err != nil {
			t.Fatal(err)
		}
		for j := range one {
			if bufs[i][j] != one[j] {
				t.Fatalf("batch read of %d diverges from loop read", id)
			}
		}
	}
}

func TestVersionedConcurrentSnapshotReadsDuringWrites(t *testing.T) {
	// Raw MemStore is concurrency-safe; the versioned layer must keep
	// snapshot readers consistent while the builder rewrites and flips.
	v, err := NewVersioned(NewMemStore(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	write := func(val float64) {
		for id := 0; id < 8; id++ {
			if err := v.WriteBlock(id, fillSeq(8, val+float64(id))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := v.Commit(); err != nil {
			t.Error(err)
		}
	}
	write(1000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float64, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := v.Acquire()
				base := -1.0
				ok := true
				for id := 0; id < 8 && ok; id++ {
					if err := snap.ReadBlock(id, buf); err != nil {
						t.Error(err)
						ok = false
						break
					}
					got := buf[0] - float64(id)
					if base < 0 {
						base = got
					} else if got != base {
						t.Errorf("snapshot epoch %d mixes versions: block %d base %v got %v", snap.Epoch(), id, base, got)
						ok = false
					}
				}
				snap.Release()
				if !ok {
					return
				}
			}
		}()
	}
	for round := 2; round <= 20; round++ {
		write(float64(1000 * round))
	}
	close(stop)
	wg.Wait()
}

func TestChecksumReaderMatchesChecksummed(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDurable(filepath.Join(dir, "d.blk"), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for id := 0; id < 6; id++ {
		if err := d.WriteBlock(id, fillSeq(8, float64(50+id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := d.ReadOnlyView()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.BlockSize() != d.BlockSize() {
		t.Fatalf("view block size %d != durable %d", r.BlockSize(), d.BlockSize())
	}
	// Stage an uncommitted write: the view must keep seeing committed bytes.
	if err := d.WriteBlock(0, fillSeq(8, 12345)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float64, 8)
			for iter := 0; iter < 50; iter++ {
				for id := 0; id < 6; id++ {
					if err := r.ReadBlock(id, buf); err != nil {
						t.Error(err)
						return
					}
					if buf[0] != float64(50+id) {
						t.Errorf("view block %d = %v, want %d", id, buf[0], 50+id)
						return
					}
				}
				bufs := [][]float64{make([]float64, 8), make([]float64, 8), make([]float64, 8)}
				if err := r.ReadBlocks([]int{5, 0, 7}, bufs); err != nil {
					t.Error(err)
					return
				}
				if bufs[0][0] != 55 || bufs[1][0] != 50 {
					t.Errorf("batch view read wrong: %v %v", bufs[0][0], bufs[1][0])
					return
				}
				for _, x := range bufs[2] {
					if x != 0 {
						t.Errorf("unwritten block 7 non-zero via view")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := r.WriteBlock(1, make([]float64, 8)); err == nil {
		t.Fatal("view write succeeded, want read-only error")
	}
}

func TestSplitRWRouting(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDurable(filepath.Join(dir, "d.blk"), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.ReadOnlyView()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSplitRW(r, NewLocked(d))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.WriteBlock(2, fillSeq(8, 7)); err != nil {
		t.Fatal(err)
	}
	// Before commit the read leg sees committed state (zeros).
	buf := make([]float64, 8)
	if err := sp.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	for _, x := range buf {
		if x != 0 {
			t.Fatalf("split read leg observed staged write: %v", buf)
		}
	}
	if err := sp.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sp.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatalf("split read after commit = %v, want 7", buf[0])
	}
	if corrupt, err := sp.VerifyBlocks([]int{0, 1, 2}); err != nil || len(corrupt) != 0 {
		t.Fatalf("verify = %v, %v", corrupt, err)
	}
}
