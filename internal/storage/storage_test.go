package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func testStoreBasics(t *testing.T, s BlockStore) {
	t.Helper()
	bs := s.BlockSize()
	buf := make([]float64, bs)

	// Unwritten blocks read as zeros.
	if err := s.ReadBlock(7, buf); err != nil {
		t.Fatalf("read unwritten: %v", err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("unwritten block has %g at %d", v, i)
		}
	}

	data := make([]float64, bs)
	for i := range data {
		data[i] = float64(i) + 0.5
	}
	if err := s.WriteBlock(3, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.ReadBlock(3, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("round trip differs at %d: %g vs %g", i, buf[i], data[i])
		}
	}

	// Overwrite.
	data[0] = -1
	if err := s.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != -1 {
		t.Fatal("overwrite not visible")
	}

	// Wrong buffer length and negative id are rejected.
	if err := s.ReadBlock(0, make([]float64, bs+1)); err == nil {
		t.Error("oversized buffer accepted")
	}
	if err := s.WriteBlock(-1, data); err == nil {
		t.Error("negative id accepted")
	}
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore(8)
	testStoreBasics(t, s)
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(0, make([]float64, 8)); err != ErrClosed {
		t.Error("read after close should fail")
	}
}

func TestFileStoreBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := NewFileStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	testStoreBasics(t, s)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify persistence.
	s2, err := OpenFileStore(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	buf := make([]float64, 16)
	if err := s2.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != -1 || buf[1] != 1.5 {
		t.Errorf("persisted data wrong: %v", buf[:2])
	}
}

func TestFileStoreSparseRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sparse.dat")
	s, err := NewFileStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := []float64{1, 2, 3, 4}
	if err := s.WriteBlock(10, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	// Block 5 was skipped; it must read as zeros.
	if err := s.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("hole should read as zeros")
		}
	}
	// Block 100 is past EOF.
	if err := s.ReadBlock(100, buf); err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v != 0 {
			t.Fatal("past-EOF should read as zeros")
		}
	}
}

func TestCountingCounts(t *testing.T) {
	c := NewCounting(NewMemStore(4))
	buf := make([]float64, 4)
	for i := 0; i < 3; i++ {
		if err := c.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := c.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Reads != 3 || st.Writes != 5 || st.Total() != 8 {
		t.Errorf("stats = %+v", st)
	}
	c.Reset()
	if c.Stats().Total() != 0 {
		t.Error("Reset did not zero stats")
	}
}

func TestBufferPoolCachesReads(t *testing.T) {
	counting := NewCounting(NewMemStore(4))
	pool := NewBufferPool(counting, 2)
	buf := make([]float64, 4)

	// Two reads of the same block: one miss, one hit, one underlying read.
	if err := pool.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if counting.Stats().Reads != 1 {
		t.Errorf("underlying reads = %d, want 1", counting.Stats().Reads)
	}
	hits, misses, rate := pool.HitRate()
	if hits != 1 || misses != 1 || rate != 0.5 {
		t.Errorf("hit rate = %d/%d (%g)", hits, misses, rate)
	}
}

func TestBufferPoolEvictsLRUAndWritesBack(t *testing.T) {
	counting := NewCounting(NewMemStore(2))
	pool := NewBufferPool(counting, 2)
	w := []float64{1, 2}
	if err := pool.WriteBlock(0, w); err != nil {
		t.Fatal(err)
	}
	if err := pool.WriteBlock(1, w); err != nil {
		t.Fatal(err)
	}
	// No write-through yet (write-back policy).
	if counting.Stats().Writes != 0 {
		t.Errorf("write-back violated: %d writes", counting.Stats().Writes)
	}
	// Touch block 1 so block 0 is LRU, then bring in block 2.
	buf := make([]float64, 2)
	if err := pool.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	// Block 0 must have been evicted and written back.
	if counting.Stats().Writes != 1 {
		t.Errorf("evict writes = %d, want 1", counting.Stats().Writes)
	}
	inner := make([]float64, 2)
	if err := counting.ReadBlock(0, inner); err != nil {
		t.Fatal(err)
	}
	if inner[0] != 1 || inner[1] != 2 {
		t.Error("evicted block contents wrong")
	}
	if pool.Len() != 2 {
		t.Errorf("pool holds %d blocks", pool.Len())
	}
}

func TestBufferPoolFlushAndClose(t *testing.T) {
	mem := NewMemStore(2)
	pool := NewBufferPool(mem, 4)
	if err := pool.WriteBlock(5, []float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if err := mem.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Error("Flush did not write through")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.ReadBlock(5, buf); err != ErrClosed {
		t.Error("read after close should fail")
	}
}

func TestBufferPoolRandomizedEquivalence(t *testing.T) {
	// A pooled store must behave exactly like an unpooled one.
	rng := rand.New(rand.NewSource(42))
	plain := NewMemStore(4)
	pooled := NewBufferPool(NewMemStore(4), 3)
	buf1 := make([]float64, 4)
	buf2 := make([]float64, 4)
	for op := 0; op < 2000; op++ {
		id := rng.Intn(10)
		if rng.Intn(2) == 0 {
			data := make([]float64, 4)
			for i := range data {
				data[i] = rng.Float64()
			}
			if err := plain.WriteBlock(id, data); err != nil {
				t.Fatal(err)
			}
			if err := pooled.WriteBlock(id, data); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := plain.ReadBlock(id, buf1); err != nil {
				t.Fatal(err)
			}
			if err := pooled.ReadBlock(id, buf2); err != nil {
				t.Fatal(err)
			}
			for i := range buf1 {
				if buf1[i] != buf2[i] {
					t.Fatalf("divergence at op %d block %d slot %d", op, id, i)
				}
			}
		}
	}
}

func TestBufferPoolCapacityOne(t *testing.T) {
	pool := NewBufferPool(NewMemStore(1), 1)
	if err := pool.WriteBlock(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := pool.WriteBlock(1, []float64{2}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 1)
	if err := pool.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Errorf("block 0 = %g", buf[0])
	}
}

func TestBufferPoolHitRateUnused(t *testing.T) {
	pool := NewBufferPool(NewMemStore(2), 2)
	if h, m, r := pool.HitRate(); h != 0 || m != 0 || r != 0 {
		t.Errorf("unused pool hit rate = %d/%d (%g)", h, m, r)
	}
}

func TestOffsetStore(t *testing.T) {
	mem := NewMemStore(2)
	a := NewOffset(mem, 0)
	b := NewOffset(mem, 100)
	if err := a.WriteBlock(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBlock(5, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if err := a.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Error("offset views collide")
	}
	if err := mem.ReadBlock(105, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Error("offset view not at expected base")
	}
	if err := a.ReadBlock(-1, buf); err == nil {
		t.Error("negative id accepted")
	}
	if err := a.Close(); err != nil {
		t.Error("offset Close should be a no-op")
	}
}
