package storage

import (
	"context"
	"testing"
	"time"
)

// rotFrame corrupts one stored frame of a Checksummed-over-MemStore stack
// by flipping a payload bit directly in the inner store.
func rotFrame(t *testing.T, inner *MemStore, id int) {
	t.Helper()
	frame := make([]float64, inner.BlockSize())
	if err := inner.ReadBlock(id, frame); err != nil {
		t.Fatal(err)
	}
	frame[0] += 1
	if err := inner.WriteBlock(id, frame); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineRegistry(t *testing.T) {
	q := NewQuarantine()
	var changes int
	q.OnChange(func(recs []QuarantineRecord) { changes++ })
	if !q.Add(3, "rot") || q.Add(3, "again") {
		t.Fatal("Add dedup broken")
	}
	if !q.Has(3) || q.Has(4) || q.Len() != 1 {
		t.Fatal("membership broken")
	}
	q.Add(1, "torn")
	snap := q.Snapshot()
	if len(snap) != 2 || snap[0].Block != 1 || snap[1].Block != 3 || snap[1].Reason != "rot" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !q.Remove(3) || q.Remove(3) {
		t.Fatal("Remove broken")
	}
	if changes != 3 { // add, add, remove (dup add and missing remove are silent)
		t.Fatalf("onChange fired %d times, want 3", changes)
	}
	q.Replace([]QuarantineRecord{{Block: 7, Reason: "loaded"}})
	if !q.Has(7) || q.Has(1) || changes != 3 {
		t.Fatal("Replace must load wholesale without firing onChange")
	}
}

func TestVerifyBlocksCollectsAllCorrupt(t *testing.T) {
	inner := NewMemStore(6)
	cs, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 10; id++ {
		if err := cs.WriteBlock(id, []float64{float64(id), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	rotFrame(t, inner, 2)
	rotFrame(t, inner, 7)
	ids := make([]int, 10)
	for i := range ids {
		ids[i] = i
	}
	corrupt, err := VerifyBlocksOf(cs, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 2 || corrupt[0] != 2 || corrupt[1] != 7 {
		t.Fatalf("corrupt = %v, want [2 7]", corrupt)
	}
	// Unwritten blocks verify clean.
	corrupt, err = VerifyBlocksOf(cs, []int{100, 101})
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("virgin blocks: corrupt=%v err=%v", corrupt, err)
	}
}

func TestScrubberQuarantinesAndHeals(t *testing.T) {
	inner := NewMemStore(6)
	cs, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	payload := []float64{1, 2, 3, 4}
	for id := 0; id < n; id++ {
		if err := cs.WriteBlock(id, payload); err != nil {
			t.Fatal(err)
		}
	}
	rotFrame(t, inner, 5)
	rotFrame(t, inner, 33)
	q := NewQuarantine()
	sc, err := NewScrubber(cs, func() int { return n }, q, ScrubberOptions{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bad != 2 || !q.Has(5) || !q.Has(33) {
		t.Fatalf("quarantined %d (%v), want blocks 5 and 33", bad, q.Snapshot())
	}
	st := sc.Stats()
	if st.Passes != 1 || st.Scanned != n || st.Corrupt != 2 || st.Healed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Rewrite block 5 cleanly; the next pass must heal it.
	if err := cs.WriteBlock(5, payload); err != nil {
		t.Fatal(err)
	}
	bad, err = sc.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 || q.Has(5) || !q.Has(33) {
		t.Fatalf("after heal: %d quarantined (%v)", bad, q.Snapshot())
	}
	if st = sc.Stats(); st.Healed != 1 || st.Corrupt != 2 {
		t.Fatalf("stats after heal = %+v", st)
	}
}

func TestScrubberRateLimit(t *testing.T) {
	cs, err := NewChecksummed(NewMemStore(6))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 64; id++ {
		if err := cs.WriteBlock(id, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	var slept time.Duration
	sc, err := NewScrubber(cs, func() int { return 64 }, NewQuarantine(), ScrubberOptions{
		BatchSize:        16,
		RateBlocksPerSec: 1600, // 16-block batch every 10ms
		Sleep:            func(d time.Duration) { slept += d },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 64 blocks at 1600/s should take ~40ms; the verify itself is nearly
	// instant, so nearly all of it shows up as requested sleep.
	if slept < 20*time.Millisecond || slept > 60*time.Millisecond {
		t.Fatalf("throttle slept %v, want ~40ms", slept)
	}
}

func TestScrubberContextCancel(t *testing.T) {
	cs, err := NewChecksummed(NewMemStore(6))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScrubber(cs, func() int { return 1000 }, NewQuarantine(), ScrubberOptions{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.RunOnce(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sc.Stats().Passes != 0 {
		t.Fatal("canceled pass counted as complete")
	}
}

func TestDurableVerifyAndRepair(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.bin"
	d, err := CreateDurable(path, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := []float64{9, 8, 7, 6}
	for id := 0; id < 6; id++ {
		if err := d.WriteBlock(id, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	// Rot block 2 on the medium, under the Durable's feet.
	raw, err := OpenFileStore(path, 4+ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]float64, 6)
	if err := raw.ReadBlock(2, frame); err != nil {
		t.Fatal(err)
	}
	frame[1] += 1
	if err := raw.WriteBlock(2, frame); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	corrupt, err := d.VerifyBlocks([]int{0, 1, 2, 3, 4, 5})
	if err != nil || len(corrupt) != 1 || corrupt[0] != 2 {
		t.Fatalf("verify: corrupt=%v err=%v", corrupt, err)
	}
	// The last committed batch covers block 2: repair rolls it forward.
	ok, err := d.RepairBlock(2)
	if err != nil || !ok {
		t.Fatalf("repair: ok=%v err=%v", ok, err)
	}
	corrupt, err = d.VerifyBlocks([]int{2})
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("verify after repair: corrupt=%v err=%v", corrupt, err)
	}
	buf := make([]float64, 4)
	if err := d.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range payload {
		if buf[i] != v {
			t.Fatalf("repaired block = %v, want %v", buf, payload)
		}
	}
	// A block outside every repair source reports unrepairable.
	ok, err = d.RepairBlock(4096)
	if err != nil || ok {
		t.Fatalf("unrepairable block: ok=%v err=%v", ok, err)
	}
}

func TestDurableVerifySkipsStagedBlocks(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDurable(dir+"/store.bin", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.WriteBlock(0, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Block 0 is staged, never committed: the medium holds a virgin frame,
	// and verification must treat the staged block as clean.
	corrupt, err := d.VerifyBlocks([]int{0})
	if err != nil || len(corrupt) != 0 {
		t.Fatalf("staged block: corrupt=%v err=%v", corrupt, err)
	}
	// Staged overlay also satisfies repair without touching the medium.
	ok, err := d.RepairBlock(0)
	if err != nil || !ok {
		t.Fatalf("staged repair: ok=%v err=%v", ok, err)
	}
}
