package storage

import (
	"path/filepath"
	"testing"
)

// The mapped benchmarks pair with the FileStore ones in
// batch_bench_test.go (same block count, block size, and access
// patterns) so BENCH_io.json can put the two stores side by side. Warm
// reads are the headline: once the pages are faulted in, a mapped batch
// read is a pure decode out of the page cache with zero read syscalls,
// while FileStore pays one pread memcpy per 64-block run.

func benchMappedStore(b *testing.B) (*MappedStore, []int, [][]float64) {
	b.Helper()
	ms, err := NewMappedStore(filepath.Join(b.TempDir(), "bench.dat"), benchBlockSize)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ms.Close() })
	ids := make([]int, benchBlocks)
	frames := SliceFrames(make([]float64, benchBlocks*benchBlockSize), benchBlocks, benchBlockSize)
	for i := range ids {
		ids[i] = i
		for k := range frames[i] {
			frames[i][k] = float64(i*benchBlockSize + k)
		}
	}
	if err := ms.WriteBlocks(ids, frames); err != nil {
		b.Fatal(err)
	}
	// Warm the mapping so the timed region measures steady-state reads,
	// exactly as the page cache is warm for the FileStore benchmarks.
	if err := ms.ReadBlocks(ids, frames); err != nil {
		b.Fatal(err)
	}
	return ms, ids, frames
}

func reportMappedCounters(b *testing.B, ms *MappedStore, preads0, pwrites0, mapped0 int64) {
	b.Helper()
	preads, pwrites := ms.Syscalls()
	b.ReportMetric(float64(preads-preads0)/float64(b.N), "preads/op")
	b.ReportMetric(float64(pwrites-pwrites0)/float64(b.N), "pwrites/op")
	b.ReportMetric(float64(ms.MappedReads()-mapped0)/float64(b.N), "mapped_reads/op")
}

func BenchmarkMappedStoreRead(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		ms, ids, frames := benchMappedStore(b)
		preads0, pwrites0 := ms.Syscalls()
		mapped0 := ms.MappedReads()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ms.ReadBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportMappedCounters(b, ms, preads0, pwrites0, mapped0)
	})
	b.Run("looped", func(b *testing.B) {
		ms, ids, frames := benchMappedStore(b)
		preads0, pwrites0 := ms.Syscalls()
		mapped0 := ms.MappedReads()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				if err := ms.ReadBlock(id, frames[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportMappedCounters(b, ms, preads0, pwrites0, mapped0)
	})
}

func BenchmarkMappedStoreWrite(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		ms, ids, frames := benchMappedStore(b)
		preads0, pwrites0 := ms.Syscalls()
		mapped0 := ms.MappedReads()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ms.WriteBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportMappedCounters(b, ms, preads0, pwrites0, mapped0)
	})
	b.Run("looped", func(b *testing.B) {
		ms, ids, frames := benchMappedStore(b)
		preads0, pwrites0 := ms.Syscalls()
		mapped0 := ms.MappedReads()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				if err := ms.WriteBlock(id, frames[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportMappedCounters(b, ms, preads0, pwrites0, mapped0)
	})
}

// BenchmarkMappedVsFileWarmRead runs the two stores' warm batch-read
// paths under one benchmark name so a single `-bench` invocation yields
// the speedup ratio the BENCH_io re-baseline records.
func BenchmarkMappedVsFileWarmRead(b *testing.B) {
	b.Run("file", func(b *testing.B) {
		fs, ids, frames := benchFileStore(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fs.ReadBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapped", func(b *testing.B) {
		ms, ids, frames := benchMappedStore(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ms.ReadBlocks(ids, frames); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Checksummed over each store: the stack serving.go actually mounts.
	b.Run("checksummed-file", func(b *testing.B) {
		fs, err := NewFileStore(filepath.Join(b.TempDir(), "cf.dat"), benchBlockSize+ChecksumOverhead)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { fs.Close() })
		benchChecksummedRead(b, fs)
	})
	b.Run("checksummed-mapped", func(b *testing.B) {
		ms, err := NewMappedStore(filepath.Join(b.TempDir(), "cm.dat"), benchBlockSize+ChecksumOverhead)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ms.Close() })
		benchChecksummedRead(b, ms)
	})
}

func benchChecksummedRead(b *testing.B, inner BlockStore) {
	b.Helper()
	chk, err := NewChecksummed(inner)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, benchBlocks)
	frames := SliceFrames(make([]float64, benchBlocks*benchBlockSize), benchBlocks, benchBlockSize)
	for i := range ids {
		ids[i] = i
		for k := range frames[i] {
			frames[i][k] = float64(i*benchBlockSize + k)
		}
	}
	if err := chk.WriteBlocks(ids, frames); err != nil {
		b.Fatal(err)
	}
	if err := chk.ReadBlocks(ids, frames); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chk.ReadBlocks(ids, frames); err != nil {
			b.Fatal(err)
		}
	}
}
