package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// msync flushes a mapped extent with MS_SYNC. The syscall package does
// not export a Msync wrapper on Linux, so this issues the raw syscall.
func msync(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

// MappedStore is a BlockStore whose reads are served from a shared,
// read-only memory mapping of the backing file instead of pread calls:
// the kernel faults pages in on first touch and every later read is a
// plain memory access, so the per-batch page-cache memcpy that bounds
// FileStore's warm read path disappears. The on-disk layout is exactly
// FileStore's (one 8*blockSize-byte little-endian extent per block id),
// so the two are interchangeable under every wrapper and fsck.
//
// Writes deliberately do NOT go through the mapping: they use the same
// positional pwrite path as FileStore (MAP_SHARED coherence makes them
// visible to the mapping immediately). The mapping is mapped PROT_READ,
// so there are never dirty mapped pages — nothing can leak onto the
// medium outside the pwrite+journal order the Durable layer enforces,
// and Sync's msync is a pure ordering barrier in front of the file
// fsync.
//
// File growth is handled by remapping: the mapping always covers at
// most the current file size (mapping beyond EOF would SIGBUS on
// access), and a read that lands past the mapped extent but inside the
// grown file triggers a remap under the writer lock. Old mappings are
// reference-counted: borrowed frame views (ViewFrames) pin them until
// released, so remap-on-grow is safe under concurrent readers.
type MappedStore struct {
	f         *os.File
	blockSize int
	mu        sync.RWMutex // guards m and remap/retire/truncate transitions
	m         *mapping     // nil while the file is empty
	size      atomic.Int64 // known file size in bytes (monotone except Truncate)

	scratch     sync.Pool    // *[]byte of 8*blockSize bytes, for the write path
	runScratch  sync.Pool    // *[]byte sized for multi-block write runs
	viewPool    sync.Pool    // *FrameViews recycled across ViewFrames calls
	preads      atomic.Int64 // always 0: mapped reads issue no positional reads
	pwrites     atomic.Int64
	mappedReads atomic.Int64 // blocks served from the mapping (the syscall-proxy column)
	closed      atomic.Bool
}

// mapping is one generation of the file mapping. The store keeps the
// current generation in MappedStore.m; borrowed FrameViews hold a
// reference. When a remap retires a generation it is munmapped as soon
// as the last reference drains (immediately, when there are none).
type mapping struct {
	data    []byte
	refs    atomic.Int64
	retired atomic.Bool
	unmap   sync.Once
}

func (m *mapping) release() {
	m.unmap.Do(func() { _ = syscall.Munmap(m.data) })
}

// dropRef releases one borrow and unmaps a retired generation when the
// last borrow drains.
func (m *mapping) dropRef() {
	if m.refs.Add(-1) == 0 && m.retired.Load() {
		m.release()
	}
}

// NewMappedStore creates (truncating) an mmap-backed store at path.
func NewMappedStore(path string, blockSize int) (*MappedStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &MappedStore{f: f, blockSize: blockSize}, nil
}

// OpenMappedStore opens an existing mmap-backed store at path. The file
// layout is FileStore's, so either store type can open the other's file.
func OpenMappedStore(path string, blockSize int) (*MappedStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("storage: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	s := &MappedStore{f: f, blockSize: blockSize}
	if err := s.remap(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

// BlockSize returns the number of coefficients per block.
func (s *MappedStore) BlockSize() int { return s.blockSize }

func (s *MappedStore) frameBytes() int { return 8 * s.blockSize }

func (s *MappedStore) getScratch() *[]byte {
	if b, ok := s.scratch.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, s.frameBytes())
	return &b
}

func (s *MappedStore) getRunBuf(n int) *[]byte {
	if bp, ok := s.runScratch.Get().(*[]byte); ok && cap(*bp) >= n {
		*bp = (*bp)[:n]
		return bp
	}
	b := make([]byte, n)
	return &b
}

// remap re-stats the file and swaps in a mapping of its current size,
// retiring the previous generation. It is a no-op when the mapped
// extent already matches the file.
func (s *MappedStore) remap() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat for remap: %w", err)
	}
	size := fi.Size()
	if s.m != nil && int64(len(s.m.data)) == size {
		s.size.Store(size)
		return nil
	}
	var nm *mapping
	if size > 0 {
		data, err := syscall.Mmap(int(s.f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err != nil {
			return fmt.Errorf("storage: mmap %d bytes: %w", size, err)
		}
		nm = &mapping{data: data}
	}
	old := s.m
	s.m = nm
	s.size.Store(size)
	if old != nil {
		old.retired.Store(true)
		if old.refs.Load() == 0 {
			old.release()
		}
	}
	return nil
}

// ensureMapped guarantees the mapping covers min(end, file size) bytes,
// remapping when a write has grown the file past the mapped extent.
func (s *MappedStore) ensureMapped(end int64) error {
	for {
		sz := s.size.Load()
		need := end
		if need > sz {
			need = sz
		}
		s.mu.RLock()
		var have int64
		if s.m != nil {
			have = int64(len(s.m.data))
		}
		if have >= need {
			s.mu.RUnlock()
			return nil
		}
		s.mu.RUnlock()
		if err := s.remap(); err != nil {
			return err
		}
	}
}

// decodeFrame fills buf from the mapped bytes at off, reading zeros for
// any part of the frame beyond the mapped extent (a lazily allocated
// medium, exactly as FileStore reads past EOF).
func decodeFrame(data []byte, off int64, buf []float64) {
	for j := range buf {
		p := off + int64(8*j)
		if p+8 <= int64(len(data)) {
			buf[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))
			continue
		}
		// Partial trailing extent: assemble the readable bytes, zero the rest.
		var tail [8]byte
		if p < int64(len(data)) {
			copy(tail[:], data[p:])
		}
		buf[j] = math.Float64frombits(binary.LittleEndian.Uint64(tail[:]))
	}
}

// ReadBlock serves block id from the mapping; extents beyond the file
// read as zeros.
func (s *MappedStore) ReadBlock(id int, buf []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	fb := int64(s.frameBytes())
	off := int64(id) * fb
	if err := s.ensureMapped(off + fb); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mappedReads.Add(1)
	if s.m == nil || off >= int64(len(s.m.data)) {
		ZeroFill(buf)
		return nil
	}
	decodeFrame(s.m.data, off, buf)
	return nil
}

// advise hints the kernel to fault in [off, end) ahead of the decode
// loop, overlapping page faults with the copy out of earlier frames.
// Advice is best-effort; failures are ignored.
func (s *MappedStore) advise(data []byte, off, end int64) {
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	page := int64(os.Getpagesize())
	off -= off % page
	if off >= end {
		return
	}
	_ = syscall.Madvise(data[off:end], syscall.MADV_WILLNEED)
}

// ReadBlocks implements BatchReader. No positional reads are issued:
// each block decodes straight out of the mapping, with one MADV_WILLNEED
// hint over the batch's span so the kernel readahead overlaps the
// decode of earlier frames with the faulting of later ones.
func (s *MappedStore) ReadBlocks(ids []int, bufs [][]float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBatchArgs(s, ids, bufs); err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	fb := int64(s.frameBytes())
	maxEnd := int64(0)
	for _, id := range ids {
		if end := int64(id)*fb + fb; end > maxEnd {
			maxEnd = end
		}
	}
	if err := s.ensureMapped(maxEnd); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mappedReads.Add(int64(len(ids)))
	if s.m == nil {
		for i := range bufs {
			ZeroFill(bufs[i])
		}
		return nil
	}
	data := s.m.data
	if len(ids) > 1 {
		minOff := int64(ids[0]) * fb
		for _, id := range ids[1:] {
			if off := int64(id) * fb; off < minOff {
				minOff = off
			}
		}
		s.advise(data, minOff, maxEnd)
	}
	for i, id := range ids {
		off := int64(id) * fb
		if off >= int64(len(data)) {
			ZeroFill(bufs[i])
			continue
		}
		decodeFrame(data, off, bufs[i])
	}
	return nil
}

// growTo records that a write extended the file to end bytes. The
// mapping itself is refreshed lazily by the next read that needs it.
func (s *MappedStore) growTo(end int64) {
	for {
		cur := s.size.Load()
		if end <= cur || s.size.CompareAndSwap(cur, end) {
			return
		}
	}
}

// WriteBlock writes block id with a positional write, exactly as
// FileStore does; MAP_SHARED coherence makes it visible to the mapping.
func (s *MappedStore) WriteBlock(id int, data []float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	bp := s.getScratch()
	defer s.scratch.Put(bp)
	b := *bp
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	off := int64(id) * int64(len(b))
	s.pwrites.Add(1)
	if _, err := s.f.WriteAt(b, off); err != nil {
		return fmt.Errorf("storage: write block %d: %w", id, classifyWriteErr(err))
	}
	s.growTo(off + int64(len(b)))
	return nil
}

// WriteBlocks implements BatchWriter with FileStore's run coalescing:
// each maximal run of consecutive ids becomes one pwrite, in slice
// order, so the physical write sequence matches the per-block loop's.
func (s *MappedStore) WriteBlocks(ids []int, data [][]float64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := checkBatchArgs(s, ids, data); err != nil {
		return err
	}
	fb := s.frameBytes()
	for start := 0; start < len(ids); {
		end := start + 1
		for end < len(ids) && end-start < maxRunBlocks && ids[end] == ids[end-1]+1 {
			end++
		}
		run := end - start
		rp := s.getRunBuf(run * fb)
		b := *rp
		for i := start; i < end; i++ {
			fr := b[(i-start)*fb:]
			for j, v := range data[i] {
				binary.LittleEndian.PutUint64(fr[8*j:], math.Float64bits(v))
			}
		}
		off := int64(ids[start]) * int64(fb)
		s.pwrites.Add(1)
		_, err := s.f.WriteAt(b[:run*fb], off)
		s.runScratch.Put(rp)
		if err != nil {
			return fmt.Errorf("storage: write blocks %d..%d: %w", ids[start], ids[end-1], classifyWriteErr(err))
		}
		s.growTo(off + int64(run*fb))
		start = end
	}
	return nil
}

// ViewFrames implements FrameViewer: it returns borrowed zero-copy
// views of the requested frames, pinned against remap until Release.
func (s *MappedStore) ViewFrames(ids []int) (*FrameViews, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	fb := int64(s.frameBytes())
	maxEnd := int64(0)
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("storage: negative block id %d", id)
		}
		if end := int64(id)*fb + fb; end > maxEnd {
			maxEnd = end
		}
	}
	if err := s.ensureMapped(maxEnd); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mappedReads.Add(int64(len(ids)))
	v, ok := s.viewPool.Get().(*FrameViews)
	if !ok {
		v = &FrameViews{pool: &s.viewPool}
	}
	if cap(v.frames) >= len(ids) {
		v.frames = v.frames[:len(ids)]
	} else {
		v.frames = make([][]byte, len(ids))
	}
	if s.m == nil {
		return v, nil
	}
	data := s.m.data
	borrowed := false
	for i, id := range ids {
		off := int64(id) * fb
		switch {
		case off+fb <= int64(len(data)):
			v.frames[i] = data[off : off+fb : off+fb]
			borrowed = true
		case off < int64(len(data)):
			// Partial trailing extent (a torn tail): pad a private copy so
			// the checksum layer still sees the torn bytes, not clean zeros.
			fr := make([]byte, fb)
			copy(fr, data[off:])
			v.frames[i] = fr
		default:
			// Entirely beyond EOF: nil means an all-zero (unwritten) frame.
		}
	}
	if borrowed {
		s.m.refs.Add(1)
		v.m = s.m
	}
	return v, nil
}

// NumBlocks returns how many block extents the file currently holds
// (partial trailing extents count as one).
func (s *MappedStore) NumBlocks() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	bb := int64(s.frameBytes())
	return int((fi.Size() + bb - 1) / bb), nil
}

// Syscalls mirrors FileStore.Syscalls. Mapped reads issue no positional
// reads, so preads stays 0 — the mapped traffic is reported separately
// by MappedReads, keeping the BENCH_io syscall columns honest.
func (s *MappedStore) Syscalls() (preads, pwrites int64) {
	return s.preads.Load(), s.pwrites.Load()
}

// MappedReads implements MappedReadsReporter: how many block reads were
// served from the mapping instead of positional reads.
func (s *MappedStore) MappedReads() int64 { return s.mappedReads.Load() }

// Sync orders the mapping ahead of the file flush: msync(MS_SYNC) over
// the mapped extent, then fsync. The mapping is PROT_READ so it never
// holds dirty pages, but the explicit barrier keeps the
// msync-before-journal-retire ordering independent of that invariant —
// Durable.Commit calls data.Sync() before retiring the journal, so the
// ordering holds with no changes to the journal protocol.
func (s *MappedStore) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.RLock()
	if s.m != nil {
		if err := msync(s.m.data); err != nil {
			s.mu.RUnlock()
			return fmt.Errorf("storage: msync: %w", err)
		}
	}
	s.mu.RUnlock()
	return classifyWriteErr(s.f.Sync())
}

// Truncate discards every block. Outstanding frame views must be
// released before truncating (the borrow discipline: a view is valid
// only until the next mutation of its blocks).
func (s *MappedStore) Truncate() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	old := s.m
	s.m = nil
	s.size.Store(0)
	if old != nil {
		old.retired.Store(true)
		if old.refs.Load() == 0 {
			old.release()
		}
	}
	return nil
}

// Close unmaps (once borrowed views drain) and closes the file.
func (s *MappedStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	old := s.m
	s.m = nil
	if old != nil {
		old.retired.Store(true)
		if old.refs.Load() == 0 {
			old.release()
		}
	}
	s.mu.Unlock()
	return s.f.Close()
}
