package storage

import (
	"sync"
	"testing"
)

func TestLockedBasics(t *testing.T) {
	l := NewLocked(NewMemStore(4))
	testStoreBasics(t, l)
}

func TestLockedConcurrentAccess(t *testing.T) {
	l := NewLocked(NewMemStore(2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]float64, 2)
			for i := 0; i < 200; i++ {
				id := (w*7 + i) % 16
				if err := l.WriteBlock(id, []float64{float64(w), float64(i)}); err != nil {
					t.Error(err)
					return
				}
				if err := l.ReadBlock(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
