package storage

import (
	"sync"
	"testing"
)

func TestLockedBasics(t *testing.T) {
	l := NewLocked(NewMemStore(4))
	testStoreBasics(t, l)
}

// TestLockedDurableCommitVsRead drives the serving-layer arrangement under
// the race detector: one writer staging whole uniform blocks and committing
// batches through a Locked durable store while readers stream blocks back
// concurrently. Every read must observe a uniform block — a mixed block
// would be a torn read through the commit path (the exact hazard the
// lockedstore analyzer exists to prevent).
func TestLockedDurableCommitVsRead(t *testing.T) {
	const (
		logical = 8
		blocks  = 16
		rounds  = 50
	)
	d, err := NewDurable(NewMemStore(logical+ChecksumOverhead), NewMemStore(logical+JournalOverhead))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLocked(d)
	defer func() {
		if err := l.Close(); err != nil {
			t.Error(err)
		}
	}()
	// Seed every block so readers never race block creation.
	seed := make([]float64, logical)
	for id := 0; id < blocks; id++ {
		if err := l.WriteBlock(id, seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		val := make([]float64, logical)
		for gen := 1; gen <= rounds; gen++ {
			for i := range val {
				val[i] = float64(gen)
			}
			for id := 0; id < blocks; id++ {
				if err := l.WriteBlock(id, val); err != nil {
					t.Error(err)
					return
				}
			}
			if err := l.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			got := make([]float64, logical)
			id := start
			for {
				select {
				case <-stop:
					return
				default:
				}
				id = (id + 5) % blocks
				if err := l.ReadBlock(id, got); err != nil {
					t.Error(err)
					return
				}
				for i := 1; i < len(got); i++ {
					if got[i] != got[0] {
						t.Errorf("torn read of block %d: slot %d = %g, slot 0 = %g", id, i, got[i], got[0])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestLockedConcurrentAccess(t *testing.T) {
	l := NewLocked(NewMemStore(2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]float64, 2)
			for i := 0; i < 200; i++ {
				id := (w*7 + i) % 16
				if err := l.WriteBlock(id, []float64{float64(w), float64(i)}); err != nil {
					t.Error(err)
					return
				}
				if err := l.ReadBlock(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
