package storage

import (
	"fmt"
	"time"
)

// DiskModel converts counted block I/O into estimated wall-clock time for a
// rotational disk of the kind the paper's 2005 experiments ran on. The
// model is the classic seek + rotational latency + transfer decomposition;
// it exists so experiments can report the *time* shape ("expansion is fast
// even though it is O(N^d)", §5.2) alongside raw counts, and so ablations
// can weigh sequential versus scattered access.
type DiskModel struct {
	// SeekTime is the average cost to position the head for a random access.
	SeekTime time.Duration
	// TransferPerBlock is the cost to move one block once positioned.
	TransferPerBlock time.Duration
	// SequentialFraction estimates the fraction of accesses that continue a
	// sequential run and therefore skip the seek (0 = all random).
	SequentialFraction float64
}

// Disk2005 approximates a 2005-era 7200 rpm disk: ~8.5 ms average seek +
// rotational latency, ~60 MB/s transfer.
func Disk2005(blockBytes int) DiskModel {
	return DiskModel{
		SeekTime:         8500 * time.Microsecond,
		TransferPerBlock: time.Duration(float64(blockBytes) / 60e6 * float64(time.Second)),
	}
}

// SSD2020 approximates a modern NVMe device: negligible positioning,
// ~2 GB/s transfer. Useful for showing which conclusions survive the
// hardware shift.
func SSD2020(blockBytes int) DiskModel {
	return DiskModel{
		SeekTime:         20 * time.Microsecond,
		TransferPerBlock: time.Duration(float64(blockBytes) / 2e9 * float64(time.Second)),
	}
}

// Estimate returns the modeled time for the given I/O counts.
func (m DiskModel) Estimate(s Stats) time.Duration {
	ops := float64(s.Total())
	seeks := ops * (1 - m.SequentialFraction)
	return time.Duration(seeks*float64(m.SeekTime) + ops*float64(m.TransferPerBlock))
}

// String renders the model parameters.
func (m DiskModel) String() string {
	return fmt.Sprintf("disk{seek=%v, transfer/block=%v, seq=%.0f%%}",
		m.SeekTime, m.TransferPerBlock, m.SequentialFraction*100)
}
