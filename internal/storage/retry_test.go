package storage

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fastRetry returns options with a recorded no-op sleep so tests run
// instantly while still observing the backoff schedule.
func fastRetry(maxAttempts int) (RetryOptions, *[]time.Duration) {
	var slept []time.Duration
	opts := RetryOptions{
		MaxAttempts: maxAttempts,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	return opts, &slept
}

func TestRetryRecoversFromEveryNthFault(t *testing.T) {
	f := NewFaulty(NewMemStore(3))
	f.FailEveryNthWrite(2) // every second write fails
	opts, _ := fastRetry(4)
	r := NewRetry(f, opts)
	for id := 0; id < 10; id++ {
		if err := r.WriteBlock(id, []float64{1, 2, 3}); err != nil {
			t.Fatalf("write %d through flaky store: %v", id, err)
		}
	}
	if r.Retries() == 0 {
		t.Fatal("no faults were injected — test is vacuous")
	}
	if r.GiveUps() != 0 {
		t.Fatalf("gave up %d times", r.GiveUps())
	}
	buf := make([]float64, 3)
	f.FailEveryNthRead(2)
	for id := 0; id < 10; id++ {
		if err := r.ReadBlock(id, buf); err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		if buf[2] != 3 {
			t.Fatalf("block %d = %v", id, buf)
		}
	}
}

func TestRetryGivesUpOnSustainedFault(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1) // dead and stays dead
	opts, slept := fastRetry(3)
	r := NewRetry(f, opts)
	err := r.WriteBlock(0, []float64{1, 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if r.GiveUps() != 1 || r.Retries() != 2 {
		t.Fatalf("giveUps=%d retries=%d, want 1 and 2", r.GiveUps(), r.Retries())
	}
	// Backoff doubled: 1ms then 2ms.
	if len(*slept) != 2 || (*slept)[0] != time.Millisecond || (*slept)[1] != 2*time.Millisecond {
		t.Fatalf("backoff schedule = %v", *slept)
	}
}

func TestRetryFailsFastOnPermanentError(t *testing.T) {
	ms := NewMemStore(2)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	opts, slept := fastRetry(4)
	r := NewRetry(ms, opts)
	if err := r.ReadBlock(0, make([]float64, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if len(*slept) != 0 || r.Retries() != 0 {
		t.Fatalf("retried a permanent error: slept=%v retries=%d", *slept, r.Retries())
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1)
	var slept []time.Duration
	r := NewRetry(f, RetryOptions{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err := r.WriteBlock(0, []float64{1, 2}); err == nil {
		t.Fatal("expected give-up")
	}
	want := []time.Duration{1, 2, 4, 4, 4, 4, 4}
	for i, w := range want {
		if slept[i] != w*time.Millisecond {
			t.Fatalf("sleep %d = %v, want %vms (full: %v)", i, slept[i], w, slept)
		}
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrInjected, true},
		{ErrClosed, false},
		{ErrChecksum, false},
		{ErrCrashed, false},
		{ErrJournalCorrupt, false},
		{errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryNeverRetriesCorruption(t *testing.T) {
	// Checksummed over a MemStore whose frame we corrupt by hand: the read
	// fails with ErrChecksum, which Retry must surface immediately even
	// under a Classify hook that (wrongly) calls everything transient.
	inner := NewMemStore(4)
	cs, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	frame := make([]float64, 4)
	if err := inner.ReadBlock(0, frame); err != nil {
		t.Fatal(err)
	}
	frame[0] += 1 // rot one payload coefficient
	if err := inner.WriteBlock(0, frame); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	r := NewRetry(cs, RetryOptions{
		MaxAttempts: 5,
		Classify:    func(error) bool { return true }, // adversarial hook
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	err = r.ReadBlock(0, make([]float64, 2))
	if !errors.Is(err, ErrChecksum) || !errors.Is(err, ErrCorruption) {
		t.Fatalf("err = %v, want checksum/corruption", err)
	}
	if len(slept) != 0 || r.Retries() != 0 {
		t.Fatalf("retried a corruption error: slept=%v retries=%d", slept, r.Retries())
	}
}

func TestRetryRespectsContext(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1)
	ctx, cancel := context.WithCancel(context.Background())
	var slept []time.Duration
	r := NewRetry(f, RetryOptions{
		MaxAttempts: 100,
		Ctx:         ctx,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			if len(slept) == 2 {
				cancel() // cancel mid-backoff; next loop iteration must stop
			}
		},
	})
	err := r.WriteBlock(0, []float64{1, 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times after cancel, want 2", len(slept))
	}
	if r.GiveUps() != 1 {
		t.Fatalf("giveUps = %d, want 1", r.GiveUps())
	}
}

func TestRetryMaxElapsedBudget(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1)
	now := time.Unix(0, 0)
	var slept []time.Duration
	r := NewRetry(f, RetryOptions{
		MaxAttempts: 1000,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		MaxElapsed:  35 * time.Millisecond,
		Now:         func() time.Time { return now },
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			now = now.Add(d) // the fake clock advances by each sleep
		},
	})
	err := r.WriteBlock(0, []float64{1, 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	// Budget 35ms at 10ms per sleep: sleeps at elapsed 0/10/20 are allowed
	// (next projected total 10/20/30 <= 35), the fourth would project 40ms
	// and is refused.
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3 (schedule %v)", len(slept), slept)
	}
	if r.GiveUps() != 1 {
		t.Fatalf("giveUps = %d, want 1", r.GiveUps())
	}
}
