package storage

import (
	"errors"
	"testing"
	"time"
)

// fastRetry returns options with a recorded no-op sleep so tests run
// instantly while still observing the backoff schedule.
func fastRetry(maxAttempts int) (RetryOptions, *[]time.Duration) {
	var slept []time.Duration
	opts := RetryOptions{
		MaxAttempts: maxAttempts,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	return opts, &slept
}

func TestRetryRecoversFromEveryNthFault(t *testing.T) {
	f := NewFaulty(NewMemStore(3))
	f.FailEveryNthWrite(2) // every second write fails
	opts, _ := fastRetry(4)
	r := NewRetry(f, opts)
	for id := 0; id < 10; id++ {
		if err := r.WriteBlock(id, []float64{1, 2, 3}); err != nil {
			t.Fatalf("write %d through flaky store: %v", id, err)
		}
	}
	if r.Retries() == 0 {
		t.Fatal("no faults were injected — test is vacuous")
	}
	if r.GiveUps() != 0 {
		t.Fatalf("gave up %d times", r.GiveUps())
	}
	buf := make([]float64, 3)
	f.FailEveryNthRead(2)
	for id := 0; id < 10; id++ {
		if err := r.ReadBlock(id, buf); err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		if buf[2] != 3 {
			t.Fatalf("block %d = %v", id, buf)
		}
	}
}

func TestRetryGivesUpOnSustainedFault(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1) // dead and stays dead
	opts, slept := fastRetry(3)
	r := NewRetry(f, opts)
	err := r.WriteBlock(0, []float64{1, 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if r.GiveUps() != 1 || r.Retries() != 2 {
		t.Fatalf("giveUps=%d retries=%d, want 1 and 2", r.GiveUps(), r.Retries())
	}
	// Backoff doubled: 1ms then 2ms.
	if len(*slept) != 2 || (*slept)[0] != time.Millisecond || (*slept)[1] != 2*time.Millisecond {
		t.Fatalf("backoff schedule = %v", *slept)
	}
}

func TestRetryFailsFastOnPermanentError(t *testing.T) {
	ms := NewMemStore(2)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	opts, slept := fastRetry(4)
	r := NewRetry(ms, opts)
	if err := r.ReadBlock(0, make([]float64, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if len(*slept) != 0 || r.Retries() != 0 {
		t.Fatalf("retried a permanent error: slept=%v retries=%d", *slept, r.Retries())
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	f := NewFaulty(NewMemStore(2))
	f.FailWriteAfter(1)
	var slept []time.Duration
	r := NewRetry(f, RetryOptions{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err := r.WriteBlock(0, []float64{1, 2}); err == nil {
		t.Fatal("expected give-up")
	}
	want := []time.Duration{1, 2, 4, 4, 4, 4, 4}
	for i, w := range want {
		if slept[i] != w*time.Millisecond {
			t.Fatalf("sleep %d = %v, want %vms (full: %v)", i, slept[i], w, slept)
		}
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrInjected, true},
		{ErrClosed, false},
		{ErrChecksum, false},
		{ErrCrashed, false},
		{ErrJournalCorrupt, false},
		{errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
