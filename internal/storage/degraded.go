package storage

import (
	"fmt"
	"sync/atomic"
)

// Degraded layers quarantine-aware serving over a BlockStore. Reads of a
// quarantined block return zeros and count as degraded instead of failing,
// so a query whose support touches one bad frame still produces the rest
// of its answer — explicitly flagged, never silently wrong. The rules:
//
//   - a block already in quarantine reads as zeros (degraded, no error);
//   - a read that discovers fresh corruption quarantines the block but
//     still returns the error — the first hit must fail, because a
//     read-modify-write cycle above (tile updates, delta merges) that got
//     zeros here would fold them into a rewrite and silently destroy data;
//   - a successful full-frame write heals the block: overwriting a frame
//     replaces its bytes entirely, so the stored value is good again.
//
// DegradedReads counts zero-filled block reads; the serving layer samples
// it around a query to set the response's degraded flag.
type Degraded struct {
	inner         BlockStore
	q             *Quarantine
	degradedReads atomic.Int64
}

// NewDegraded wraps inner with quarantine-aware serving backed by q.
func NewDegraded(inner BlockStore, q *Quarantine) (*Degraded, error) {
	if q == nil {
		return nil, fmt.Errorf("storage: degraded store needs a quarantine")
	}
	return &Degraded{inner: inner, q: q}, nil
}

// DegradedReads returns how many block reads have been served as zeros
// because the block was quarantined.
func (d *Degraded) DegradedReads() int64 { return d.degradedReads.Load() }

// Quarantine returns the registry backing this store.
func (d *Degraded) Quarantine() *Quarantine { return d.q }

// BlockSize returns the wrapped block size.
func (d *Degraded) BlockSize() int { return d.inner.BlockSize() }

// ReadBlock serves a quarantined block as zeros (degraded) and forwards
// everything else, quarantining freshly discovered corruption.
func (d *Degraded) ReadBlock(id int, buf []float64) error {
	if d.q.Has(id) {
		ZeroFill(buf)
		d.degradedReads.Add(1)
		return nil
	}
	err := d.inner.ReadBlock(id, buf)
	if IsCorruption(err) {
		d.q.Add(id, fmt.Sprintf("read: %v", err))
	}
	return err
}

// ReadBlocks zero-fills the quarantined subset of the batch and forwards
// the rest as one vectored read. When the inner read reports corruption it
// names only the first bad frame, so the miss set is re-verified to
// quarantine every corrupt block the batch touched before the error
// surfaces.
func (d *Degraded) ReadBlocks(ids []int, bufs [][]float64) error {
	var missIDs []int
	var missBufs [][]float64
	for i, id := range ids {
		if d.q.Has(id) {
			ZeroFill(bufs[i])
			d.degradedReads.Add(1)
		} else {
			missIDs = append(missIDs, id)
			missBufs = append(missBufs, bufs[i])
		}
	}
	if len(missIDs) == 0 {
		return nil
	}
	err := ReadBlocksOf(d.inner, missIDs, missBufs)
	if IsCorruption(err) {
		if corrupt, verr := VerifyBlocksOf(d.inner, missIDs); verr == nil {
			for _, id := range corrupt {
				d.q.Add(id, fmt.Sprintf("read: %v", err))
			}
		}
	}
	return err
}

// WriteBlock forwards the write and heals the block on success: the frame
// bytes were fully replaced.
func (d *Degraded) WriteBlock(id int, data []float64) error {
	if err := d.inner.WriteBlock(id, data); err != nil {
		return err
	}
	d.q.Remove(id)
	return nil
}

// WriteBlocks forwards the batch and heals every written block on success.
func (d *Degraded) WriteBlocks(ids []int, data [][]float64) error {
	if err := WriteBlocksOf(d.inner, ids, data); err != nil {
		return err
	}
	for _, id := range ids {
		d.q.Remove(id)
	}
	return nil
}

// VerifyBlocks forwards: verification must see the medium, not the
// quarantine overlay.
func (d *Degraded) VerifyBlocks(ids []int) ([]int, error) {
	return VerifyBlocksOf(d.inner, ids)
}

// RepairBlock forwards and releases the block from quarantine when the
// repair lands.
func (d *Degraded) RepairBlock(id int) (bool, error) {
	ok, err := RepairBlockOf(d.inner, id)
	if ok && err == nil {
		d.q.Remove(id)
	}
	return ok, err
}

// Sync delegates.
func (d *Degraded) Sync() error { return SyncIfAble(d.inner) }

// Truncate delegates.
func (d *Degraded) Truncate() error { return TruncateIfAble(d.inner) }

// Commit delegates.
func (d *Degraded) Commit() error { return CommitIfAble(d.inner) }

// Close delegates.
func (d *Degraded) Close() error { return d.inner.Close() }

// MappedReads forwards the inner stack's mapped-read counter.
func (d *Degraded) MappedReads() int64 { return MappedReadsOf(d.inner) }
