package storage

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func breakerOverFaulty(t *testing.T, threshold int, clock *fakeClock) (*Faulty, *Breaker) {
	t.Helper()
	f := NewFaulty(NewMemStore(2))
	if err := f.WriteBlock(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	b := NewBreaker(f, BreakerOptions{
		Threshold: threshold,
		Cooldown:  100 * time.Millisecond,
		Now:       clock.now,
	})
	return f, b
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	f, b := breakerOverFaulty(t, 3, clock)
	buf := make([]float64, 2)

	f.FailReadAfter(1) // backend goes down
	for i := 0; i < 3; i++ {
		if err := b.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if b.State() != "open" || b.Trips() != 1 {
		t.Fatalf("state=%s trips=%d after threshold failures", b.State(), b.Trips())
	}
	// While open: fail fast without touching the backend.
	before := f.InjectedFaults()
	if err := b.ReadBlock(0, buf); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open circuit err = %v, want ErrUnavailable", err)
	}
	if f.InjectedFaults() != before {
		t.Fatal("open circuit still reached the backend")
	}
	if b.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
	// Cooldown elapses; backend still down: the probe fails, circuit
	// reopens with doubled cooldown.
	clock.advance(100 * time.Millisecond)
	if err := b.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err = %v, want ErrInjected", err)
	}
	if b.State() != "open" || b.Trips() != 2 {
		t.Fatalf("state=%s trips=%d after failed probe", b.State(), b.Trips())
	}
	// Old cooldown is no longer enough (backoff doubled it to 200ms).
	clock.advance(100 * time.Millisecond)
	if err := b.ReadBlock(0, buf); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("backoff not doubled: %v", err)
	}
	// Backend heals; after the doubled cooldown the probe closes the circuit.
	f.FailReadAfter(0)
	clock.advance(100 * time.Millisecond)
	if err := b.ReadBlock(0, buf); err != nil {
		t.Fatalf("healing probe failed: %v", err)
	}
	if b.State() != "closed" {
		t.Fatalf("state=%s after successful probe", b.State())
	}
	if err := b.ReadBlock(0, buf); err != nil || buf[0] != 1 {
		t.Fatalf("closed circuit: buf=%v err=%v", buf, err)
	}
}

func TestBreakerIgnoresCorruption(t *testing.T) {
	inner := NewMemStore(6)
	cs, err := NewChecksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if err := cs.WriteBlock(id, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	rotFrame(t, inner, 0)
	b := NewBreaker(cs, BreakerOptions{Threshold: 2})
	buf := make([]float64, 4)
	// Hammer the rotten block: corruption must never trip the breaker.
	for i := 0; i < 10; i++ {
		if err := b.ReadBlock(0, buf); !errors.Is(err, ErrCorruption) {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if b.State() != "closed" || b.Trips() != 0 {
		t.Fatalf("corruption tripped the breaker: state=%s trips=%d", b.State(), b.Trips())
	}
	// Healthy blocks still serve.
	if err := b.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	f, b := breakerOverFaulty(t, 3, clock)
	buf := make([]float64, 2)
	f.FailEveryNthRead(2) // alternating failure/success: never 3 consecutive
	for i := 0; i < 20; i++ {
		_ = b.ReadBlock(0, buf)
	}
	if b.State() != "closed" || b.Trips() != 0 {
		t.Fatalf("alternating faults tripped the breaker: %s/%d", b.State(), b.Trips())
	}
}

func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	f, b := breakerOverFaulty(t, 1, clock)
	buf := make([]float64, 2)
	f.FailReadAfter(1)
	if err := b.ReadBlock(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
	if b.State() != "open" {
		t.Fatalf("state=%s", b.State())
	}
	f.FailReadAfter(0)
	f.Delay(20 * time.Millisecond) // slow probe holds the half-open slot
	clock.advance(100 * time.Millisecond)
	probeDone := make(chan error, 1)
	go func() { probeDone <- b.ReadBlock(0, buf) }()
	// Wait until the probe is in flight, then a second request must be
	// rejected rather than issued as a concurrent probe.
	deadline := time.After(2 * time.Second)
	for {
		if b.State() == "half-open" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("probe never started")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	other := make([]float64, 2)
	if err := b.ReadBlock(0, other); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second half-open request = %v, want ErrUnavailable", err)
	}
	if err := <-probeDone; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.State() != "closed" {
		t.Fatalf("state=%s after successful probe", b.State())
	}
}
