package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// mappedBlockVal is the deterministic cell pattern the mapped tests
// write: distinct per (block, slot) so torn or misplaced frames are
// visible.
func mappedBlockVal(id, k int) float64 { return float64(1000*id + k + 1) }

func fillMappedBlock(buf []float64, id int) {
	for k := range buf {
		buf[k] = mappedBlockVal(id, k)
	}
}

func TestMappedStoreRoundTrip(t *testing.T) {
	const bs = 5
	ms, err := NewMappedStore(filepath.Join(t.TempDir(), "rt.dat"), bs)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	buf := make([]float64, bs)
	for id := 0; id < 6; id++ {
		fillMappedBlock(buf, id)
		if err := ms.WriteBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 6; id++ {
		if err := ms.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		for k := range buf {
			if buf[k] != mappedBlockVal(id, k) {
				t.Fatalf("block %d slot %d: got %g want %g", id, k, buf[k], mappedBlockVal(id, k))
			}
		}
	}
	// Beyond EOF reads as zeros, like FileStore's lazily allocated medium.
	if err := ms.ReadBlock(40, buf); err != nil {
		t.Fatal(err)
	}
	for k, v := range buf {
		if v != 0 {
			t.Fatalf("EOF block slot %d: got %g want 0", k, v)
		}
	}
	// The accounting contract: reads never issue preads; the traffic is
	// carried by the distinct mapped-read counter instead.
	preads, pwrites := ms.Syscalls()
	if preads != 0 {
		t.Fatalf("mapped store issued %d preads", preads)
	}
	if pwrites == 0 {
		t.Fatal("writes issued no pwrites")
	}
	if mr := ms.MappedReads(); mr < 7 {
		t.Fatalf("mapped reads = %d, want >= 7", mr)
	}
	// Views: in-file frames borrow from the mapping, beyond-EOF frames
	// are nil (read as zeros).
	views, err := ms.ViewFrames([]int{2, 40})
	if err != nil {
		t.Fatal(err)
	}
	if fr := views.Frame(0); fr == nil {
		t.Fatal("in-file frame view is nil")
	} else if got := math.Float64frombits(binary.LittleEndian.Uint64(fr)); got != mappedBlockVal(2, 0) {
		t.Fatalf("frame view slot 0: got %g want %g", got, mappedBlockVal(2, 0))
	}
	if views.Frame(1) != nil {
		t.Fatal("beyond-EOF frame view is non-nil")
	}
	views.Release()
}

// TestMappedFileStoreInterop proves the on-disk layout is FileStore's:
// either store type opens the other's file and reads identical cells.
func TestMappedFileStoreInterop(t *testing.T) {
	const bs = 7
	path := filepath.Join(t.TempDir(), "interop.dat")
	fs, err := NewFileStore(path, bs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bs)
	for id := 0; id < 9; id++ {
		fillMappedBlock(buf, id)
		if err := fs.WriteBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	ms, err := OpenMappedStore(path, bs)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 9; id++ {
		if err := ms.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		for k := range buf {
			if buf[k] != mappedBlockVal(id, k) {
				t.Fatalf("mapped read of FileStore file, block %d slot %d: got %g", id, k, buf[k])
			}
		}
	}
	// Extend through the mapped store, then reread with a FileStore.
	fillMappedBlock(buf, 12)
	if err := ms.WriteBlock(12, buf); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(path, bs)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if err := fs2.ReadBlock(12, buf); err != nil {
		t.Fatal(err)
	}
	for k := range buf {
		if buf[k] != mappedBlockVal(12, k) {
			t.Fatalf("FileStore read of mapped write, slot %d: got %g", k, buf[k])
		}
	}
}

// syscallStore is the test-side view of a store with both batch entry
// points and syscall-proxy counters.
type syscallStore interface {
	BlockStore
	BatchReader
	BatchWriter
	Syscalls() (preads, pwrites int64)
}

// TestRunCoalescingBoundaries walks batch sizes around the maxRunBlocks
// cap (64) through both positional-I/O stores: contents must round-trip
// bit-identically and each maximal 64-block run must cost exactly one
// pwrite (and, for FileStore, one pread).
func TestRunCoalescingBoundaries(t *testing.T) {
	const bs = 3
	sizes := []int{1, 63, 64, 65, 127, 128, 129}
	for _, kind := range []string{"file", "mapped"} {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("%s/n=%d", kind, n), func(t *testing.T) {
				var st syscallStore
				var err error
				path := filepath.Join(t.TempDir(), "runs.dat")
				if kind == "file" {
					st, err = NewFileStore(path, bs)
				} else {
					st, err = NewMappedStore(path, bs)
				}
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()

				ids := make([]int, n)
				frames := SliceFrames(make([]float64, n*bs), n, bs)
				for i := range ids {
					ids[i] = i
					fillMappedBlock(frames[i], i)
				}
				wantRuns := int64((n + maxRunBlocks - 1) / maxRunBlocks)

				preads0, pwrites0 := st.Syscalls()
				if err := st.WriteBlocks(ids, frames); err != nil {
					t.Fatal(err)
				}
				_, pwrites1 := st.Syscalls()
				if got := pwrites1 - pwrites0; got != wantRuns {
					t.Fatalf("%d consecutive blocks took %d pwrites, want %d", n, got, wantRuns)
				}

				got := SliceFrames(make([]float64, n*bs), n, bs)
				if err := st.ReadBlocks(ids, got); err != nil {
					t.Fatal(err)
				}
				for i := range ids {
					for k := range got[i] {
						if got[i][k] != frames[i][k] {
							t.Fatalf("block %d slot %d: got %g want %g", i, k, got[i][k], frames[i][k])
						}
					}
				}
				preads2, _ := st.Syscalls()
				if kind == "file" {
					if gotReads := preads2 - preads0; gotReads != wantRuns {
						t.Fatalf("%d consecutive blocks took %d preads, want %d", n, gotReads, wantRuns)
					}
				} else {
					if preads2 != 0 {
						t.Fatalf("mapped batch read issued %d preads", preads2)
					}
					ms := st.(*MappedStore)
					if mr := ms.MappedReads(); mr < int64(n) {
						t.Fatalf("mapped reads = %d, want >= %d", mr, n)
					}
				}

				// A one-block gap at the cap boundary must split the run.
				if n == 64 {
					gapIDs := make([]int, 64)
					copy(gapIDs, ids)
					gapIDs[63] = 64 // 0..62 consecutive, then a jump
					_, pw0 := st.Syscalls()
					if err := st.WriteBlocks(gapIDs, frames); err != nil {
						t.Fatal(err)
					}
					_, pw1 := st.Syscalls()
					if gotW := pw1 - pw0; gotW != 2 {
						t.Fatalf("gapped batch took %d pwrites, want 2", gotW)
					}
				}
			})
		}
	}
}

// TestMappedStoreRemapOnGrowConcurrentViews exercises remap-on-grow
// under borrowed views (run it with -race): readers continuously borrow
// zero-copy views of a stable prefix while a writer grows the file past
// the mapped extent and forces remaps by reading the new tail. Old
// mapping generations must stay valid until every borrow drains.
func TestMappedStoreRemapOnGrowConcurrentViews(t *testing.T) {
	const (
		bs      = 4
		stable  = 8   // blocks the readers verify; never rewritten
		growth  = 160 // blocks appended while readers hold views
		readers = 4
	)
	ms, err := NewMappedStore(filepath.Join(t.TempDir(), "grow.dat"), bs)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	buf := make([]float64, bs)
	for id := 0; id < stable; id++ {
		fillMappedBlock(buf, id)
		if err := ms.WriteBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := ms.ReadBlock(0, buf); err != nil { // establish the first mapping
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	ids := make([]int, stable)
	for i := range ids {
		ids[i] = i
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]float64, bs)
			for {
				select {
				case <-stop:
					return
				default:
				}
				views, err := ms.ViewFrames(ids)
				if err != nil {
					t.Errorf("ViewFrames: %v", err)
					return
				}
				for j, id := range ids {
					fr := views.Frame(j)
					if fr == nil {
						t.Errorf("block %d: nil view of an allocated block", id)
						views.Release()
						return
					}
					for k := 0; k < bs; k++ {
						got := math.Float64frombits(binary.LittleEndian.Uint64(fr[8*k:]))
						if got != mappedBlockVal(id, k) {
							t.Errorf("view of block %d slot %d: got %g want %g", id, k, got, mappedBlockVal(id, k))
							views.Release()
							return
						}
					}
				}
				views.Release()
				// Interleave copying reads so both paths race the remaps.
				if err := ms.ReadBlock(ids[0], scratch); err != nil {
					t.Errorf("ReadBlock: %v", err)
					return
				}
			}
		}()
	}

	wbuf := make([]float64, bs)
	for id := stable; id < stable+growth; id++ {
		fillMappedBlock(wbuf, id)
		if err := ms.WriteBlock(id, wbuf); err != nil {
			t.Fatal(err)
		}
		// Reading the fresh tail block lands past the mapped extent and
		// forces a remap while the readers hold borrowed views.
		if err := ms.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
		for k := range buf {
			if buf[k] != mappedBlockVal(id, k) {
				t.Fatalf("grown block %d slot %d: got %g want %g", id, k, buf[k], mappedBlockVal(id, k))
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestMappedChecksummedDetectsCorruption flips on-medium bytes under a
// Checksummed-over-MappedStore stack and requires the zero-copy view
// read path to report ErrChecksum, not clean data.
func TestMappedChecksummedDetectsCorruption(t *testing.T) {
	const bs = 6
	path := filepath.Join(t.TempDir(), "corrupt.dat")
	ms, err := NewMappedStore(path, bs+ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	chk, err := NewChecksummed(ms)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, bs)
	for id := 0; id < 3; id++ {
		fillMappedBlock(buf, id)
		if err := chk.WriteBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte of block 1 behind the stack's back.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 * (bs + ChecksumOverhead)
	if _, err := f.WriteAt([]byte{0xff}, int64(frame+3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	bufs := SliceFrames(make([]float64, 3*bs), 3, bs)
	err = chk.ReadBlocks([]int{0, 1, 2}, bufs)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("batched read of corrupted mapped block returned %v, want ErrChecksum", err)
	}
	if err := chk.ReadBlock(0, buf); err != nil {
		t.Fatalf("intact block unreadable: %v", err)
	}
}

// TestCrashCampaignMappedStore is the durable crash campaign over the
// mmap-backed data device: power cut at every physical mutation index of
// a commit — including between the msync'd data flush and the journal
// retire — must recover to exactly the pre- or post-batch state. The
// mapping is PROT_READ, so no dirty mapped page can reach the medium
// outside the pwrite+journal order; a hybrid state here would disprove
// that.
func TestCrashCampaignMappedStore(t *testing.T) {
	const blockSize = 6
	seed := campaignSeed(t)
	batchA, batchB := campaignBatches(blockSize)
	pre, post := expectedStates(batchA, batchB)

	dry := NewCrashPlan(seed)
	dir := t.TempDir()
	path := filepath.Join(dir, "dry.dat")
	d, err := CreateDurableMapped(path, blockSize, dry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyBatch(t, d, batchA); err != nil {
		t.Fatal(err)
	}
	opsA := dry.Ops()
	if err := applyBatch(t, d, batchB); err != nil {
		t.Fatal(err)
	}
	opsB := dry.Ops() - opsA
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if opsB < 10 {
		t.Fatalf("suspiciously small batch: %d mutations", opsB)
	}
	t.Logf("batch B = %d physical mutations (A took %d)", opsB, opsA)

	preSeen, postSeen := 0, 0
	for w := int64(1); w <= opsB; w++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.dat", w))
		plan := NewCrashPlan(seed + w)
		d, err := CreateDurableMapped(path, blockSize, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := applyBatch(t, d, batchA); err != nil {
			t.Fatalf("trial %d: batch A: %v", w, err)
		}
		plan.ArmAt(plan.Ops() + w)
		err = applyBatch(t, d, batchB)
		if w < opsB && !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: expected crash, got %v", w, err)
		}
		_ = d.Close() // dead machine: close file handles, errors expected

		// Power restored: recovery must work through the mapped device
		// too, and its reads must be mapped (zero preads on the data
		// device, mapped-read counter moving).
		d2, err := OpenDurableMapped(path, blockSize, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", w, err)
		}
		got := readState(t, d2, 8)
		switch {
		case sameState(got, pre):
			preSeen++
		case sameState(got, post):
			postSeen++
		default:
			t.Fatalf("trial %d: hybrid state after recovery: %v", w, got)
		}
		if d2.MappedReads() == 0 {
			t.Fatalf("trial %d: recovered mapped store served no mapped reads", w)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("trial %d: close recovered store: %v", w, err)
		}
		rep, err := Fsck(path, blockSize)
		if err != nil {
			t.Fatalf("trial %d: fsck: %v", w, err)
		}
		if !rep.Clean() {
			t.Fatalf("trial %d: fsck not clean: %+v", w, rep)
		}
	}
	t.Logf("campaign: %d trials, %d recovered to pre, %d to post", opsB, preSeen, postSeen)
	if preSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign never exercised both outcomes (pre=%d post=%d)", preSeen, postSeen)
	}
}
