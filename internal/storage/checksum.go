package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
)

// ChecksumOverhead is the number of trailing coefficient slots a Checksummed
// wrapper claims from its inner store for the frame footer (CRC64 + epoch
// stamp). A Checksummed over an inner store of P slots exposes P-2 logical
// slots per block.
const ChecksumOverhead = 2

// ErrChecksum marks a block whose frame failed verification: a torn write,
// bit rot, or a write that never completed. Readers must treat the block
// contents as unusable. It belongs to the ErrCorruption class of the
// storage error taxonomy: errors.Is(err, ErrCorruption) also holds.
var ErrChecksum = newClassified("storage: block checksum mismatch", ErrCorruption)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksummed frames every block of an inner store with a CRC64 and an
// epoch stamp so that torn writes and bit rot are detected on read instead
// of being silently folded into the transform. Unwritten blocks (all-zero
// frames) still read as zeros, preserving the lazily allocated medium the
// engines assume.
//
// Frame layout within an inner block of P = BlockSize()+2 slots:
//
//	[0, P-2)  payload coefficients
//	P-2       CRC64/ECMA over payload bytes + stamp bytes
//	P-1       stamp = epoch<<1 | 1 (always odd, so a written frame is
//	          never all-zero)
//
// Meta slots hold raw uint64 bit patterns reinterpreted as float64; they
// are round-tripped with math.Float64bits and never used arithmetically.
type Checksummed struct {
	inner BlockStore
	epoch uint64
	frame []float64
	bytes []byte // payload bytes + stamp bytes, the CRC input

	// Batch scratch, reused across ReadBlocks/WriteBlocks calls so
	// steady-state batches allocate nothing. Checksummed is documented
	// single-threaded (wrap in Locked for concurrency), so plain fields
	// suffice.
	slab  []float64
	batch [][]float64
}

// NewChecksummed wraps inner, spending its last two slots on the frame
// footer.
func NewChecksummed(inner BlockStore) (*Checksummed, error) {
	n := inner.BlockSize()
	if n <= ChecksumOverhead {
		return nil, fmt.Errorf("storage: checksummed store needs inner block size > %d, got %d", ChecksumOverhead, n)
	}
	return &Checksummed{
		inner: inner,
		frame: make([]float64, n),
		bytes: make([]byte, 8*(n-1)),
	}, nil
}

// BlockSize returns the logical (payload) block size.
func (c *Checksummed) BlockSize() int { return c.inner.BlockSize() - ChecksumOverhead }

// SetEpoch sets the epoch stamped into subsequently written frames. The
// Durable layer bumps it once per committed batch, which lets fsck report
// which batch last touched each block.
func (c *Checksummed) SetEpoch(e uint64) { c.epoch = e }

// Epoch returns the current write epoch.
func (c *Checksummed) Epoch() uint64 { return c.epoch }

// batchFrames returns n reusable inner-block-sized frames backed by one
// slab, growing the scratch on demand.
func (c *Checksummed) batchFrames(n int) [][]float64 {
	inner := c.inner.BlockSize()
	if n*inner > cap(c.slab) {
		c.slab = make([]float64, n*inner)
		c.batch = nil
	}
	if n > len(c.batch) {
		c.batch = SliceFrames(c.slab[:n*inner], n, inner)
	}
	return c.batch[:n]
}

func (c *Checksummed) checksum(payload []float64, stamp uint64) uint64 {
	return frameChecksum(c.bytes, payload, stamp)
}

// frameChecksum computes the frame CRC over payload bytes + stamp bytes,
// serializing through scratch (which must hold 8*(len(payload)+1) bytes).
// Package-level so the concurrent ChecksumReader shares the exact frame
// format with Checksummed.
func frameChecksum(scratch []byte, payload []float64, stamp uint64) uint64 {
	for i, v := range payload {
		binary.LittleEndian.PutUint64(scratch[8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(scratch[8*len(payload):], stamp)
	return crc64.Checksum(scratch[:8*(len(payload)+1)], crcTable)
}

// fillFrame frames data (payload, CRC, stamp) into frame under the current
// epoch. frame must span a full inner block.
func (c *Checksummed) fillFrame(frame, data []float64) {
	p := c.BlockSize()
	copy(frame[:p], data)
	stamp := c.epoch<<1 | 1
	crc := c.checksum(data, stamp)
	frame[p] = math.Float64frombits(crc)
	frame[p+1] = math.Float64frombits(stamp)
}

// WriteBlock frames data with a CRC and the current epoch and writes it.
func (c *Checksummed) WriteBlock(id int, data []float64) error {
	if err := checkBlockArgs(c, id, data); err != nil {
		return err
	}
	c.fillFrame(c.frame, data)
	return c.inner.WriteBlock(id, c.frame)
}

// WriteBlocks implements BatchWriter: the batch is framed into one slab —
// stamping every frame in a single pass — and handed to the inner store as
// one vectored write. The on-media bytes are identical to the per-block
// path's.
func (c *Checksummed) WriteBlocks(ids []int, data [][]float64) error {
	if err := checkBatchArgs(c, ids, data); err != nil {
		return err
	}
	frames := c.batchFrames(len(ids))
	for i := range ids {
		c.fillFrame(frames[i], data[i])
	}
	return WriteBlocksOf(c.inner, ids, frames)
}

// verifyFrame classifies a frame read from the inner store. written
// reports whether the frame holds a stored block; a nil error with
// written=false means the block was never written (reads as zeros).
func (c *Checksummed) verifyFrame(id int, frame []float64) (epoch uint64, written bool, err error) {
	return verifyFrameIn(c.bytes, c.BlockSize(), id, frame)
}

// verifyFrameIn is verifyFrame with caller-supplied CRC scratch, shared
// with ChecksumReader.
func verifyFrameIn(scratch []byte, p int, id int, frame []float64) (epoch uint64, written bool, err error) {
	stamp := math.Float64bits(frame[p+1])
	crcStored := math.Float64bits(frame[p])
	if stamp == 0 && crcStored == 0 {
		allZero := true
		for _, v := range frame[:p] {
			if math.Float64bits(v) != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return 0, false, nil
		}
		return 0, true, fmt.Errorf("storage: block %d: unstamped payload (torn write): %w", id, ErrChecksum)
	}
	if stamp&1 != 1 {
		return 0, true, fmt.Errorf("storage: block %d: invalid stamp %#x: %w", id, stamp, ErrChecksum)
	}
	if crc := frameChecksum(scratch, frame[:p], stamp); crc != crcStored {
		return 0, true, fmt.Errorf("storage: block %d: crc %#x, stored %#x: %w", id, crc, crcStored, ErrChecksum)
	}
	return stamp >> 1, true, nil
}

// ReadBlock reads and verifies block id. Unwritten blocks yield zeros;
// corrupt frames yield an error wrapping ErrChecksum.
func (c *Checksummed) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(c, id, buf); err != nil {
		return err
	}
	if err := c.inner.ReadBlock(id, c.frame); err != nil {
		return err
	}
	_, written, err := c.verifyFrame(id, c.frame)
	if err != nil {
		return err
	}
	if !written {
		ZeroFill(buf)
		return nil
	}
	copy(buf, c.frame[:c.BlockSize()])
	return nil
}

// ReadBlocks implements BatchReader: one vectored inner read into a batch
// slab, then a single verification pass. The first corrupt frame (in id
// order) surfaces as the error, as in the per-block loop; unlike the loop,
// the inner store has already transferred the whole batch by then.
//
// When the inner store itself exposes zero-copy frame views
// (FrameViewer — MappedStore directly under this layer), the slab read
// and its copy are skipped entirely: the CRC is verified over the
// mapped frame bytes in place and the payload decodes straight into
// bufs. Wrappers that intercept reads deliberately don't forward the
// capability, so fault-injected stacks keep the copying path.
func (c *Checksummed) ReadBlocks(ids []int, bufs [][]float64) error {
	if err := checkBatchArgs(c, ids, bufs); err != nil {
		return err
	}
	if fv, ok := c.inner.(FrameViewer); ok {
		return c.readBlocksViews(fv, ids, bufs)
	}
	frames := c.batchFrames(len(ids))
	if err := ReadBlocksOf(c.inner, ids, frames); err != nil {
		return err
	}
	p := c.BlockSize()
	for i, id := range ids {
		_, written, err := c.verifyFrame(id, frames[i])
		if err != nil {
			return err
		}
		if !written {
			ZeroFill(bufs[i])
			continue
		}
		copy(bufs[i], frames[i][:p])
	}
	return nil
}

// verifyFrameBytes is verifyFrame over a raw little-endian frame view.
// The CRC input is payload bytes followed by stamp bytes — the frame
// stores the CRC between them, so the check streams the two spans with
// crc64.Update instead of reassembling a contiguous buffer.
func (c *Checksummed) verifyFrameBytes(id int, fb []byte) (written bool, err error) {
	return verifyFrameBytesAt(c.BlockSize(), id, fb)
}

// verifyFrameBytesAt is verifyFrameBytes for a payload size p, shared with
// ChecksumReader. It needs no scratch: the CRC streams over the two byte
// spans directly.
func verifyFrameBytesAt(p int, id int, fb []byte) (written bool, err error) {
	stamp := binary.LittleEndian.Uint64(fb[8*(p+1):])
	crcStored := binary.LittleEndian.Uint64(fb[8*p:])
	if stamp == 0 && crcStored == 0 {
		allZero := true
		for _, b := range fb[:8*p] {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return false, nil
		}
		return true, fmt.Errorf("storage: block %d: unstamped payload (torn write): %w", id, ErrChecksum)
	}
	if stamp&1 != 1 {
		return true, fmt.Errorf("storage: block %d: invalid stamp %#x: %w", id, stamp, ErrChecksum)
	}
	crc := crc64.Update(crc64.Update(0, crcTable, fb[:8*p]), crcTable, fb[8*(p+1):8*(p+2)])
	if crc != crcStored {
		return true, fmt.Errorf("storage: block %d: crc %#x, stored %#x: %w", id, crc, crcStored, ErrChecksum)
	}
	return true, nil
}

// readBlocksViews is the zero-copy batch read: borrow frame views,
// verify in place, decode payloads directly into the caller's buffers,
// release. The borrow never escapes this call — the discipline the
// scratch-escape analyzer polices.
func (c *Checksummed) readBlocksViews(fv FrameViewer, ids []int, bufs [][]float64) error {
	views, err := fv.ViewFrames(ids)
	if err != nil {
		return err
	}
	defer views.Release()
	for i, id := range ids {
		fb := views.Frame(i)
		if fb == nil {
			ZeroFill(bufs[i])
			continue
		}
		written, err := c.verifyFrameBytes(id, fb)
		if err != nil {
			return err
		}
		if !written {
			ZeroFill(bufs[i])
			continue
		}
		for j := range bufs[i] {
			bufs[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(fb[8*j:]))
		}
	}
	return nil
}

// ReadMeta verifies block id without copying its payload, reporting the
// epoch it was written under and whether it was ever written. It is the
// primitive fsck scans with.
func (c *Checksummed) ReadMeta(id int) (epoch uint64, written bool, err error) {
	if id < 0 {
		return 0, false, fmt.Errorf("storage: negative block id %d", id)
	}
	if err := c.inner.ReadBlock(id, c.frame); err != nil {
		return 0, false, err
	}
	return c.verifyFrame(id, c.frame)
}

// Sync flushes the inner store.
func (c *Checksummed) Sync() error { return SyncIfAble(c.inner) }

// MappedReads forwards the inner stack's mapped-read counter.
func (c *Checksummed) MappedReads() int64 { return MappedReadsOf(c.inner) }

// Truncate forwards to the inner store.
func (c *Checksummed) Truncate() error { return TruncateIfAble(c.inner) }

// Close closes the inner store.
func (c *Checksummed) Close() error { return c.inner.Close() }
