package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
)

// ChecksumOverhead is the number of trailing coefficient slots a Checksummed
// wrapper claims from its inner store for the frame footer (CRC64 + epoch
// stamp). A Checksummed over an inner store of P slots exposes P-2 logical
// slots per block.
const ChecksumOverhead = 2

// ErrChecksum marks a block whose frame failed verification: a torn write,
// bit rot, or a write that never completed. Readers must treat the block
// contents as unusable.
var ErrChecksum = errors.New("storage: block checksum mismatch")

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksummed frames every block of an inner store with a CRC64 and an
// epoch stamp so that torn writes and bit rot are detected on read instead
// of being silently folded into the transform. Unwritten blocks (all-zero
// frames) still read as zeros, preserving the lazily allocated medium the
// engines assume.
//
// Frame layout within an inner block of P = BlockSize()+2 slots:
//
//	[0, P-2)  payload coefficients
//	P-2       CRC64/ECMA over payload bytes + stamp bytes
//	P-1       stamp = epoch<<1 | 1 (always odd, so a written frame is
//	          never all-zero)
//
// Meta slots hold raw uint64 bit patterns reinterpreted as float64; they
// are round-tripped with math.Float64bits and never used arithmetically.
type Checksummed struct {
	inner BlockStore
	epoch uint64
	frame []float64
	bytes []byte // payload bytes + stamp bytes, the CRC input
}

// NewChecksummed wraps inner, spending its last two slots on the frame
// footer.
func NewChecksummed(inner BlockStore) (*Checksummed, error) {
	n := inner.BlockSize()
	if n <= ChecksumOverhead {
		return nil, fmt.Errorf("storage: checksummed store needs inner block size > %d, got %d", ChecksumOverhead, n)
	}
	return &Checksummed{
		inner: inner,
		frame: make([]float64, n),
		bytes: make([]byte, 8*(n-1)),
	}, nil
}

// BlockSize returns the logical (payload) block size.
func (c *Checksummed) BlockSize() int { return c.inner.BlockSize() - ChecksumOverhead }

// SetEpoch sets the epoch stamped into subsequently written frames. The
// Durable layer bumps it once per committed batch, which lets fsck report
// which batch last touched each block.
func (c *Checksummed) SetEpoch(e uint64) { c.epoch = e }

// Epoch returns the current write epoch.
func (c *Checksummed) Epoch() uint64 { return c.epoch }

func (c *Checksummed) checksum(payload []float64, stamp uint64) uint64 {
	for i, v := range payload {
		binary.LittleEndian.PutUint64(c.bytes[8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint64(c.bytes[8*len(payload):], stamp)
	return crc64.Checksum(c.bytes[:8*(len(payload)+1)], crcTable)
}

// WriteBlock frames data with a CRC and the current epoch and writes it.
func (c *Checksummed) WriteBlock(id int, data []float64) error {
	if err := checkBlockArgs(c, id, data); err != nil {
		return err
	}
	p := c.BlockSize()
	copy(c.frame[:p], data)
	stamp := c.epoch<<1 | 1
	crc := c.checksum(data, stamp)
	c.frame[p] = math.Float64frombits(crc)
	c.frame[p+1] = math.Float64frombits(stamp)
	return c.inner.WriteBlock(id, c.frame)
}

// verify classifies the frame currently in c.frame. written reports whether
// the frame holds a stored block; a nil error with written=false means the
// block was never written (reads as zeros).
func (c *Checksummed) verify(id int) (epoch uint64, written bool, err error) {
	p := c.BlockSize()
	stamp := math.Float64bits(c.frame[p+1])
	crcStored := math.Float64bits(c.frame[p])
	if stamp == 0 && crcStored == 0 {
		allZero := true
		for _, v := range c.frame[:p] {
			if math.Float64bits(v) != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return 0, false, nil
		}
		return 0, true, fmt.Errorf("storage: block %d: unstamped payload (torn write): %w", id, ErrChecksum)
	}
	if stamp&1 != 1 {
		return 0, true, fmt.Errorf("storage: block %d: invalid stamp %#x: %w", id, stamp, ErrChecksum)
	}
	if crc := c.checksum(c.frame[:p], stamp); crc != crcStored {
		return 0, true, fmt.Errorf("storage: block %d: crc %#x, stored %#x: %w", id, crc, crcStored, ErrChecksum)
	}
	return stamp >> 1, true, nil
}

// ReadBlock reads and verifies block id. Unwritten blocks yield zeros;
// corrupt frames yield an error wrapping ErrChecksum.
func (c *Checksummed) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(c, id, buf); err != nil {
		return err
	}
	if err := c.inner.ReadBlock(id, c.frame); err != nil {
		return err
	}
	_, written, err := c.verify(id)
	if err != nil {
		return err
	}
	if !written {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, c.frame[:c.BlockSize()])
	return nil
}

// ReadMeta verifies block id without copying its payload, reporting the
// epoch it was written under and whether it was ever written. It is the
// primitive fsck scans with.
func (c *Checksummed) ReadMeta(id int) (epoch uint64, written bool, err error) {
	if id < 0 {
		return 0, false, fmt.Errorf("storage: negative block id %d", id)
	}
	if err := c.inner.ReadBlock(id, c.frame); err != nil {
		return 0, false, err
	}
	return c.verify(id)
}

// Sync flushes the inner store.
func (c *Checksummed) Sync() error { return SyncIfAble(c.inner) }

// Truncate forwards to the inner store.
func (c *Checksummed) Truncate() error { return TruncateIfAble(c.inner) }

// Close closes the inner store.
func (c *Checksummed) Close() error { return c.inner.Close() }
