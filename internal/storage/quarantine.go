package storage

import (
	"sort"
	"sync"
)

// QuarantineRecord is one bad block: which block failed verification and
// why. Records are persisted in the store's meta file, so a restart still
// knows which blocks are unusable.
type QuarantineRecord struct {
	Block  int    `json:"block"`
	Reason string `json:"reason"`
}

// Quarantine is the registry of blocks known to be corrupt on the medium.
// The scrubber and the read path add blocks as corruption is detected;
// repair, scrub-heal (a quarantined block verifying clean), and full-frame
// rewrites remove them. An onChange hook lets the owning store persist the
// registry to meta on every transition.
//
// The registry is goroutine-safe; the onChange hook is invoked outside the
// lock (it typically does file I/O) with a sorted snapshot.
type Quarantine struct {
	mu       sync.Mutex
	bad      map[int]QuarantineRecord
	onChange func([]QuarantineRecord)
}

// NewQuarantine returns an empty registry.
func NewQuarantine() *Quarantine {
	return &Quarantine{bad: make(map[int]QuarantineRecord)}
}

// OnChange registers fn to be called with a sorted snapshot after every
// mutation (add, remove, replace). One hook; a later call replaces it.
func (q *Quarantine) OnChange(fn func([]QuarantineRecord)) {
	q.mu.Lock()
	q.onChange = fn
	q.mu.Unlock()
}

// snapshotLocked must be called with q.mu held.
func (q *Quarantine) snapshotLocked() []QuarantineRecord {
	out := make([]QuarantineRecord, 0, len(q.bad))
	for _, rec := range q.bad {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// notify runs the hook outside the lock.
func (q *Quarantine) notify(fn func([]QuarantineRecord), snap []QuarantineRecord) {
	if fn != nil {
		fn(snap)
	}
}

// Add quarantines block id with the given reason, reporting whether the
// block was newly quarantined (an already-bad block keeps its first
// reason: the original diagnosis is the useful one).
func (q *Quarantine) Add(id int, reason string) bool {
	q.mu.Lock()
	if _, dup := q.bad[id]; dup {
		q.mu.Unlock()
		return false
	}
	q.bad[id] = QuarantineRecord{Block: id, Reason: reason}
	fn, snap := q.onChange, q.snapshotLocked()
	q.mu.Unlock()
	q.notify(fn, snap)
	return true
}

// Remove releases block id from quarantine, reporting whether it was held.
func (q *Quarantine) Remove(id int) bool {
	q.mu.Lock()
	if _, held := q.bad[id]; !held {
		q.mu.Unlock()
		return false
	}
	delete(q.bad, id)
	fn, snap := q.onChange, q.snapshotLocked()
	q.mu.Unlock()
	q.notify(fn, snap)
	return true
}

// Has reports whether block id is quarantined.
func (q *Quarantine) Has(id int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, held := q.bad[id]
	return held
}

// Len returns how many blocks are quarantined.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.bad)
}

// Snapshot returns the records sorted by block id.
func (q *Quarantine) Snapshot() []QuarantineRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.snapshotLocked()
}

// Replace loads the registry wholesale (from persisted meta on open). The
// onChange hook is NOT invoked: loading state is not a transition.
func (q *Quarantine) Replace(recs []QuarantineRecord) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bad = make(map[int]QuarantineRecord, len(recs))
	for _, rec := range recs {
		q.bad[rec.Block] = rec
	}
}
