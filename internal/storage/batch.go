package storage

import "fmt"

// This file defines the vectored block I/O capability. The tiling
// allocation guarantees that SHIFT-SPLIT maintenance and range queries
// touch runs of consecutive block ids; moving those runs one block per
// call pays a syscall, a lock acquisition, a checksum frame, and a journal
// record each. BatchReader/BatchWriter let every layer of the stack move a
// whole batch per call instead, following the same optional-capability
// pattern as Syncer/Truncater/Committer.
//
// Contract: a successful batch is equivalent to the per-block loop — same
// contents, same per-block I/O counts on any Counting in the stack, same
// physical write order (batches preserve the order of ids). On error the
// same first error surfaces, but a wrapper may have probed or transferred
// more blocks than the loop would have before failing; callers must treat
// every buffer of a failed batch as undefined.

// BatchReader is implemented by stores that can serve many block reads in
// one call. ids[i] fills bufs[i]; ids need not be sorted or distinct, and
// implementations exploit runs of consecutive ids.
type BatchReader interface {
	ReadBlocks(ids []int, bufs [][]float64) error
}

// BatchWriter is implemented by stores that can absorb many block writes
// in one call. data[i] is stored as block ids[i], in slice order — the
// physical write sequence is the same as the per-block loop's, which crash
// recovery relies on.
type BatchWriter interface {
	WriteBlocks(ids []int, data [][]float64) error
}

// ZeroFill zeroes buf. It replaces the hand-rolled zero loops that used to
// be scattered over the store implementations and is what the batch
// fallbacks use for unwritten blocks.
func ZeroFill(buf []float64) {
	clear(buf)
}

// checkBatchArgs validates a batch the way checkBlockArgs validates a
// single call: matching lengths, non-negative ids, block-sized buffers.
func checkBatchArgs(bs BlockStore, ids []int, bufs [][]float64) error {
	if len(ids) != len(bufs) {
		return fmt.Errorf("storage: batch has %d ids, %d buffers", len(ids), len(bufs))
	}
	for i, id := range ids {
		if err := checkBlockArgs(bs, id, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocksOf reads a batch through bs: natively when bs implements
// BatchReader, else by a per-block loop that stops at the first error.
// Mirrors SyncIfAble: callers request the capability without knowing how
// their stack is composed.
func ReadBlocksOf(bs BlockStore, ids []int, bufs [][]float64) error {
	if len(ids) == 0 && len(bufs) == 0 {
		return nil
	}
	if br, ok := bs.(BatchReader); ok {
		return br.ReadBlocks(ids, bufs)
	}
	if err := checkBatchArgs(bs, ids, bufs); err != nil {
		return err
	}
	for i, id := range ids {
		if err := bs.ReadBlock(id, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocksOf writes a batch through bs: natively when bs implements
// BatchWriter, else by a per-block loop (in slice order) that stops at the
// first error.
func WriteBlocksOf(bs BlockStore, ids []int, data [][]float64) error {
	if len(ids) == 0 && len(data) == 0 {
		return nil
	}
	if bw, ok := bs.(BatchWriter); ok {
		return bw.WriteBlocks(ids, data)
	}
	if err := checkBatchArgs(bs, ids, data); err != nil {
		return err
	}
	for i, id := range ids {
		if err := bs.WriteBlock(id, data[i]); err != nil {
			return err
		}
	}
	return nil
}

// SliceFrames cuts a flat slab into n block-sized frames. The batch
// implementations use it to allocate one backing array per batch instead
// of n small ones.
func SliceFrames(slab []float64, n, frameLen int) [][]float64 {
	frames := make([][]float64, n)
	for i := range frames {
		frames[i] = slab[i*frameLen : (i+1)*frameLen : (i+1)*frameLen]
	}
	return frames
}
