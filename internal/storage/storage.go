// Package storage provides the disk-block substrate of the paper's
// experiments: fixed-size blocks of coefficients addressed by integer block
// IDs, with an in-memory implementation, a real on-disk file implementation,
// an I/O-counting wrapper (the paper's plots report counted coefficient and
// block I/Os), and an LRU buffer pool.
//
// All stores model a lazily allocated, zero-initialized medium: reading a
// block that was never written yields zeros. That matches the engines'
// usage, which merge coefficient deltas into an initially zero transform.
package storage

import (
	"errors"
	"fmt"
)

// BlockStore is a device storing equally sized blocks of float64
// coefficients.
type BlockStore interface {
	// BlockSize returns the number of coefficients per block.
	BlockSize() int
	// ReadBlock fills buf (length BlockSize) with the contents of block id.
	ReadBlock(id int, buf []float64) error
	// WriteBlock stores data (length BlockSize) as block id.
	WriteBlock(id int, data []float64) error
	// Close releases resources and flushes any buffered state.
	Close() error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: store is closed")

func checkBlockArgs(bs BlockStore, id int, buf []float64) error {
	if id < 0 {
		return fmt.Errorf("storage: negative block id %d", id)
	}
	if len(buf) != bs.BlockSize() {
		return fmt.Errorf("storage: buffer length %d does not match block size %d", len(buf), bs.BlockSize())
	}
	return nil
}

// MemStore is an in-memory BlockStore.
type MemStore struct {
	blockSize int
	blocks    map[int][]float64
	closed    bool
}

// NewMemStore creates an in-memory store with the given block size.
func NewMemStore(blockSize int) *MemStore {
	if blockSize <= 0 {
		panic(fmt.Sprintf("storage: block size %d", blockSize))
	}
	return &MemStore{blockSize: blockSize, blocks: make(map[int][]float64)}
}

// BlockSize returns the number of coefficients per block.
func (s *MemStore) BlockSize() int { return s.blockSize }

// ReadBlock implements BlockStore; unwritten blocks read as zeros.
func (s *MemStore) ReadBlock(id int, buf []float64) error {
	if s.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	if b, ok := s.blocks[id]; ok {
		copy(buf, b)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(id int, data []float64) error {
	if s.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	b, ok := s.blocks[id]
	if !ok {
		b = make([]float64, s.blockSize)
		s.blocks[id] = b
	}
	copy(b, data)
	return nil
}

// Len returns the number of materialized blocks.
func (s *MemStore) Len() int { return len(s.blocks) }

// Close implements BlockStore.
func (s *MemStore) Close() error {
	s.closed = true
	s.blocks = nil
	return nil
}

// Stats counts block-level I/O operations.
type Stats struct {
	Reads  int64 // blocks read from the underlying store
	Writes int64 // blocks written to the underlying store
}

// Total returns Reads + Writes.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Counting wraps a BlockStore and counts every read and write that reaches
// the underlying store. This is the measurement instrument behind every
// figure in EXPERIMENTS.md.
type Counting struct {
	inner BlockStore
	stats Stats
}

// NewCounting wraps inner with an I/O counter.
func NewCounting(inner BlockStore) *Counting {
	return &Counting{inner: inner}
}

// BlockSize returns the wrapped store's block size.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// ReadBlock counts one read and delegates.
func (c *Counting) ReadBlock(id int, buf []float64) error {
	c.stats.Reads++
	return c.inner.ReadBlock(id, buf)
}

// WriteBlock counts one write and delegates.
func (c *Counting) WriteBlock(id int, data []float64) error {
	c.stats.Writes++
	return c.inner.WriteBlock(id, data)
}

// Close delegates to the wrapped store.
func (c *Counting) Close() error { return c.inner.Close() }

// Stats returns the counters accumulated so far.
func (c *Counting) Stats() Stats { return c.stats }

// Reset zeroes the counters.
func (c *Counting) Reset() { c.stats = Stats{} }
