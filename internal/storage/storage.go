// Package storage provides the disk-block substrate of the paper's
// experiments: fixed-size blocks of coefficients addressed by integer block
// IDs, with an in-memory implementation, a real on-disk file implementation,
// an I/O-counting wrapper (the paper's plots report counted coefficient and
// block I/Os), and an LRU buffer pool.
//
// All stores model a lazily allocated, zero-initialized medium: reading a
// block that was never written yields zeros. That matches the engines'
// usage, which merge coefficient deltas into an initially zero transform.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BlockStore is a device storing equally sized blocks of float64
// coefficients.
type BlockStore interface {
	// BlockSize returns the number of coefficients per block.
	BlockSize() int
	// ReadBlock fills buf (length BlockSize) with the contents of block id.
	ReadBlock(id int, buf []float64) error
	// WriteBlock stores data (length BlockSize) as block id.
	WriteBlock(id int, data []float64) error
	// Close releases resources and flushes any buffered state.
	Close() error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: store is closed")

// Syncer is implemented by stores that can flush buffered writes to stable
// media (FileStore, and wrappers that forward to one).
type Syncer interface {
	Sync() error
}

// SyncIfAble syncs bs when it supports it and is a no-op otherwise.
func SyncIfAble(bs BlockStore) error {
	if s, ok := bs.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Truncater is implemented by stores that can discard all blocks at once.
// The block journal relies on it: truncation is the atomic "batch applied"
// marker, mirroring how real filesystems make WAL resets atomic.
type Truncater interface {
	Truncate() error
}

// TruncateIfAble truncates bs, or reports an error when it cannot.
func TruncateIfAble(bs BlockStore) error {
	if t, ok := bs.(Truncater); ok {
		return t.Truncate()
	}
	return fmt.Errorf("storage: %T does not support Truncate", bs)
}

// Committer is implemented by transactional stores (Durable) whose writes
// are staged until Commit makes them atomic and durable.
type Committer interface {
	Commit() error
}

// CommitIfAble commits bs when it is transactional and is a no-op
// otherwise, so engines can request durability points without knowing how
// their store stack is composed.
func CommitIfAble(bs BlockStore) error {
	if c, ok := bs.(Committer); ok {
		return c.Commit()
	}
	return nil
}

func checkBlockArgs(bs BlockStore, id int, buf []float64) error {
	if id < 0 {
		return fmt.Errorf("storage: negative block id %d", id)
	}
	if len(buf) != bs.BlockSize() {
		return fmt.Errorf("storage: buffer length %d does not match block size %d", len(buf), bs.BlockSize())
	}
	return nil
}

// MemStore is an in-memory BlockStore. It is safe for concurrent use.
type MemStore struct {
	blockSize int
	mu        sync.RWMutex
	blocks    map[int][]float64
	closed    bool
}

// NewMemStore creates an in-memory store with the given block size.
func NewMemStore(blockSize int) *MemStore {
	if blockSize <= 0 {
		panic(fmt.Sprintf("storage: block size %d", blockSize))
	}
	return &MemStore{blockSize: blockSize, blocks: make(map[int][]float64)}
}

// BlockSize returns the number of coefficients per block.
func (s *MemStore) BlockSize() int { return s.blockSize }

// ReadBlock implements BlockStore; unwritten blocks read as zeros.
func (s *MemStore) ReadBlock(id int, buf []float64) error {
	if err := checkBlockArgs(s, id, buf); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if b, ok := s.blocks[id]; ok {
		copy(buf, b)
		return nil
	}
	ZeroFill(buf)
	return nil
}

// ReadBlocks implements BatchReader under a single lock acquisition.
func (s *MemStore) ReadBlocks(ids []int, bufs [][]float64) error {
	if err := checkBatchArgs(s, ids, bufs); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for i, id := range ids {
		if b, ok := s.blocks[id]; ok {
			copy(bufs[i], b)
		} else {
			ZeroFill(bufs[i])
		}
	}
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(id int, data []float64) error {
	if err := checkBlockArgs(s, id, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	b, ok := s.blocks[id]
	if !ok {
		b = make([]float64, s.blockSize)
		s.blocks[id] = b
	}
	copy(b, data)
	return nil
}

// WriteBlocks implements BatchWriter under a single lock acquisition,
// storing data[i] as block ids[i] in slice order.
func (s *MemStore) WriteBlocks(ids []int, data [][]float64) error {
	if err := checkBatchArgs(s, ids, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for i, id := range ids {
		b, ok := s.blocks[id]
		if !ok {
			b = make([]float64, s.blockSize)
			s.blocks[id] = b
		}
		copy(b, data[i])
	}
	return nil
}

// Len returns the number of materialized blocks.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Truncate discards every block; subsequent reads see zeros.
func (s *MemStore) Truncate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.blocks = make(map[int][]float64)
	return nil
}

// Close implements BlockStore.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.blocks = nil
	return nil
}

// Stats counts block-level I/O operations and durability points.
type Stats struct {
	Reads   int64 // blocks read from the underlying store
	Writes  int64 // blocks written to the underlying store
	Syncs   int64 // Sync barriers forwarded to the underlying store
	Commits int64 // Commit durability points forwarded to the underlying store
	// MappedReads is how many of the Reads were served from a memory
	// mapping (zero positional read syscalls) — a subset of Reads, not
	// an addition to Total.
	MappedReads int64
}

// Total returns Reads + Writes (durability points move no blocks and are
// not included).
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Add returns s with o's counters added.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:       s.Reads + o.Reads,
		Writes:      s.Writes + o.Writes,
		Syncs:       s.Syncs + o.Syncs,
		Commits:     s.Commits + o.Commits,
		MappedReads: s.MappedReads + o.MappedReads,
	}
}

// Sub returns s with o's counters subtracted — the delta of two samples
// bracketing an I/O window.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:       s.Reads - o.Reads,
		Writes:      s.Writes - o.Writes,
		Syncs:       s.Syncs - o.Syncs,
		Commits:     s.Commits - o.Commits,
		MappedReads: s.MappedReads - o.MappedReads,
	}
}

// Counting wraps a BlockStore and counts every read and write that reaches
// the underlying store, plus the Sync/Commit durability points forwarded
// through it. This is the measurement instrument behind every figure in
// EXPERIMENTS.md. The counters are updated atomically, so Counting adds no
// synchronization requirements beyond the wrapped store's own.
type Counting struct {
	inner   BlockStore
	reads   atomic.Int64
	writes  atomic.Int64
	syncs   atomic.Int64
	commits atomic.Int64
	// mappedBase snapshots the inner stack's mapped-read counter at the
	// last Reset, so Stats reports mapped reads over the same window as
	// the other counters even though the device counter is cumulative.
	mappedBase atomic.Int64
}

// NewCounting wraps inner with an I/O counter.
func NewCounting(inner BlockStore) *Counting {
	return &Counting{inner: inner}
}

// BlockSize returns the wrapped store's block size.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// ReadBlock counts one read and delegates.
func (c *Counting) ReadBlock(id int, buf []float64) error {
	c.reads.Add(1)
	return c.inner.ReadBlock(id, buf)
}

// WriteBlock counts one write and delegates.
func (c *Counting) WriteBlock(id int, data []float64) error {
	c.writes.Add(1)
	return c.inner.WriteBlock(id, data)
}

// ReadBlocks counts one read per block and forwards the batch. The counts
// are the same as the per-block loop's on success; on a mid-batch error
// the whole batch has already been counted (it was requested of the
// device), where the loop would have stopped counting at the failure.
func (c *Counting) ReadBlocks(ids []int, bufs [][]float64) error {
	c.reads.Add(int64(len(ids)))
	return ReadBlocksOf(c.inner, ids, bufs)
}

// WriteBlocks counts one write per block and forwards the batch.
func (c *Counting) WriteBlocks(ids []int, data [][]float64) error {
	c.writes.Add(int64(len(ids)))
	return WriteBlocksOf(c.inner, ids, data)
}

// Close delegates to the wrapped store.
func (c *Counting) Close() error { return c.inner.Close() }

// Sync counts one sync barrier and forwards to the wrapped store (syncs
// move no blocks, so Reads/Writes are untouched).
func (c *Counting) Sync() error {
	c.syncs.Add(1)
	return SyncIfAble(c.inner)
}

// Truncate forwards to the wrapped store.
func (c *Counting) Truncate() error { return TruncateIfAble(c.inner) }

// Commit counts one durability point and forwards it to the wrapped store.
func (c *Counting) Commit() error {
	c.commits.Add(1)
	return CommitIfAble(c.inner)
}

// Stats returns the counters accumulated so far.
func (c *Counting) Stats() Stats {
	return Stats{
		Reads:       c.reads.Load(),
		Writes:      c.writes.Load(),
		Syncs:       c.syncs.Load(),
		Commits:     c.commits.Load(),
		MappedReads: MappedReadsOf(c.inner) - c.mappedBase.Load(),
	}
}

// MappedReads implements MappedReadsReporter by forwarding the inner
// stack's cumulative counter (not windowed by Reset), so stacked
// Countings agree with the device.
func (c *Counting) MappedReads() int64 { return MappedReadsOf(c.inner) }

// Reset zeroes the counters.
func (c *Counting) Reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.syncs.Store(0)
	c.commits.Store(0)
	c.mappedBase.Store(MappedReadsOf(c.inner))
}
