package storage

import "fmt"

// Offset exposes a window of a larger BlockStore with block IDs shifted by
// a fixed base. It lets several logical stores (e.g. one tiled transform
// per hypercube of a growing dataset) share one device and one I/O counter.
type Offset struct {
	inner BlockStore
	base  int
}

// NewOffset creates a view whose block 0 is inner's block base.
func NewOffset(inner BlockStore, base int) *Offset {
	if base < 0 {
		panic(fmt.Sprintf("storage: negative offset %d", base))
	}
	return &Offset{inner: inner, base: base}
}

// BlockSize returns the inner store's block size.
func (o *Offset) BlockSize() int { return o.inner.BlockSize() }

// ReadBlock delegates with the base added.
func (o *Offset) ReadBlock(id int, buf []float64) error {
	if id < 0 {
		return fmt.Errorf("storage: negative block id %d", id)
	}
	return o.inner.ReadBlock(o.base+id, buf)
}

// WriteBlock delegates with the base added.
func (o *Offset) WriteBlock(id int, data []float64) error {
	if id < 0 {
		return fmt.Errorf("storage: negative block id %d", id)
	}
	return o.inner.WriteBlock(o.base+id, data)
}

// shift returns ids with the base added; consecutive runs stay consecutive,
// so the inner store coalesces exactly as it would for the raw ids.
func (o *Offset) shift(ids []int) ([]int, error) {
	shifted := make([]int, len(ids))
	for i, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("storage: negative block id %d", id)
		}
		shifted[i] = o.base + id
	}
	return shifted, nil
}

// ReadBlocks delegates the batch with the base added to every id.
func (o *Offset) ReadBlocks(ids []int, bufs [][]float64) error {
	shifted, err := o.shift(ids)
	if err != nil {
		return err
	}
	return ReadBlocksOf(o.inner, shifted, bufs)
}

// WriteBlocks delegates the batch with the base added to every id.
func (o *Offset) WriteBlocks(ids []int, data [][]float64) error {
	shifted, err := o.shift(ids)
	if err != nil {
		return err
	}
	return WriteBlocksOf(o.inner, shifted, data)
}

// Close is a no-op: the shared inner store outlives its views.
func (o *Offset) Close() error { return nil }

// MappedReads forwards the shared device's mapped-read counter.
func (o *Offset) MappedReads() int64 { return MappedReadsOf(o.inner) }
