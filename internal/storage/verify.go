package storage

import "fmt"

// Verifier is implemented by stores that can check block integrity without
// delivering payloads: VerifyBlocks walks the given ids and reports which
// ones are corrupt on the medium. It is the scrub primitive, following the
// same capability-interface pattern as Syncer/BatchReader.
//
// The contract: a non-nil err means the verification itself could not run
// (device error, closed store) and says nothing about integrity; a nil err
// with a non-empty corrupt list means those blocks failed verification and
// every other id in the batch passed. Unwritten blocks verify clean (they
// read as zeros by design).
type Verifier interface {
	VerifyBlocks(ids []int) (corrupt []int, err error)
}

// VerifyBlocksOf verifies ids against bs, natively when bs implements
// Verifier, else by reading each block and classifying the error: a
// corruption-classed failure marks the block corrupt, any other failure
// aborts the scan. Mirrors ReadBlocksOf: callers request the capability
// without knowing how deep in the stack it is implemented.
func VerifyBlocksOf(bs BlockStore, ids []int) (corrupt []int, err error) {
	if v, ok := bs.(Verifier); ok {
		return v.VerifyBlocks(ids)
	}
	buf := make([]float64, bs.BlockSize())
	for _, id := range ids {
		switch err := bs.ReadBlock(id, buf); {
		case err == nil:
		case IsCorruption(err):
			corrupt = append(corrupt, id)
		default:
			return corrupt, err
		}
	}
	return corrupt, nil
}

// VerifyBlocks implements Verifier natively: one vectored inner read of the
// frames, then a verification pass that collects every corrupt id instead
// of stopping at the first (ReadBlocks semantics would hide all but one).
func (c *Checksummed) VerifyBlocks(ids []int) (corrupt []int, err error) {
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("storage: negative block id %d", id)
		}
	}
	inner := c.inner.BlockSize()
	frames := SliceFrames(make([]float64, len(ids)*inner), len(ids), inner)
	if err := ReadBlocksOf(c.inner, ids, frames); err != nil {
		return nil, err
	}
	for i, id := range ids {
		if _, _, err := c.verifyFrame(id, frames[i]); err != nil {
			corrupt = append(corrupt, id)
		}
	}
	return corrupt, nil
}

// VerifyBlocks counts one read per block (the frames are transferred from
// the device) and forwards.
func (c *Counting) VerifyBlocks(ids []int) ([]int, error) {
	c.reads.Add(int64(len(ids)))
	return VerifyBlocksOf(c.inner, ids)
}

// VerifyBlocks delegates under the lock.
func (l *Locked) VerifyBlocks(ids []int) ([]int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return VerifyBlocksOf(l.inner, ids)
}

// VerifyBlocks retries the scan on transient failures; a corrupt-id result
// is data, not an error, and is never retried.
func (r *Retry) VerifyBlocks(ids []int) (corrupt []int, err error) {
	err = r.do(func() error {
		corrupt, err = VerifyBlocksOf(r.inner, ids)
		return err
	})
	return corrupt, err
}

// Repairer is implemented by stores that can roll a corrupt block forward
// from a retained post-image (Durable keeps the last committed batch and
// the staging overlay as sources). repaired=false with a nil error means
// no source covers the block; only a rebuild can recover it.
type Repairer interface {
	RepairBlock(id int) (repaired bool, err error)
}

// RepairBlockOf repairs id when bs supports it and reports unrepairable
// otherwise.
func RepairBlockOf(bs BlockStore, id int) (bool, error) {
	if r, ok := bs.(Repairer); ok {
		return r.RepairBlock(id)
	}
	return false, nil
}

// RepairBlock counts one write when the repair rewrites a frame.
func (c *Counting) RepairBlock(id int) (bool, error) {
	ok, err := RepairBlockOf(c.inner, id)
	if ok && err == nil {
		c.writes.Add(1)
	}
	return ok, err
}

// RepairBlock delegates under the lock.
func (l *Locked) RepairBlock(id int) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return RepairBlockOf(l.inner, id)
}
