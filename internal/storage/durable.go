package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// Durable layers crash safety over a pair of block stores: a checksummed
// data store and a write-ahead block journal. Writes are staged in memory
// and become visible on the medium only through Commit, which runs the
// journal protocol:
//
//	journal post-images → fsync → commit record → fsync →
//	apply to data store → fsync → truncate journal → fsync
//
// A crash at any point leaves the store recoverable: opening it replays a
// sealed batch (roll forward to the post-batch state) or discards an
// unsealed one (the data store still holds the pre-batch state). Reads see
// staged writes immediately, so the engines above are oblivious to the
// staging.
//
// Durable is not safe for concurrent use; wrap it in Locked if needed.
type Durable struct {
	data      *Checksummed
	journal   *Journal
	pending   map[int][]float64
	lastBatch map[int][]float64 // post-images of the last committed batch (repair source)
	epoch     uint64
	recovered int // blocks replayed by the last recovery, -1 if none
	closed    bool
}

// maxRetainedBlocks caps the in-memory copy of the last committed batch
// kept as a repair source. The journal itself is truncated when a batch
// retires, so without this copy a freshly opened store has nothing to roll
// a rotted block forward from; batches above the cap are simply not
// retained (repair then reports unrepairable and the operator rebuilds).
const maxRetainedBlocks = 4096

// NewDurable builds a durable store over raw data and journal block
// stores and runs recovery. For a logical block size L, data must hold
// blocks of L+ChecksumOverhead slots and journal blocks of
// L+JournalOverhead slots; the journal store must support Truncate.
// Both stores are owned and closed by the Durable.
func NewDurable(data, journal BlockStore) (*Durable, error) {
	logical := data.BlockSize() - ChecksumOverhead
	chk, err := NewChecksummed(data)
	if err != nil {
		return nil, err
	}
	j, err := NewJournal(journal, logical)
	if err != nil {
		return nil, err
	}
	d := &Durable{data: chk, journal: j, pending: make(map[int][]float64), recovered: -1}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// WalPath returns the journal sidecar path for a durable store at path.
func WalPath(path string) string { return path + ".wal" }

func wrapPlan(bs BlockStore, plan *CrashPlan) BlockStore {
	if plan == nil {
		return bs
	}
	return NewCrashStore(bs, plan)
}

// CreateDurable creates (truncating) a file-backed durable store at path,
// with its journal at WalPath(path). plan, when non-nil, routes all
// physical writes through a CrashStore for power-cut testing.
func CreateDurable(path string, blockSize int, plan *CrashPlan) (*Durable, error) {
	return CreateDurableWrapped(path, blockSize, plan, nil)
}

// CreateDurableWrapped is CreateDurable with a device-wrapping hook: wrap,
// when non-nil, is applied to the raw data FileStore below the checksum
// layer — the seam where fault injection (Faulty) slides under a real
// store. The journal device is not wrapped: injected journal corruption
// would model a different fault class (see ErrJournalCorrupt).
func CreateDurableWrapped(path string, blockSize int, plan *CrashPlan, wrap func(BlockStore) BlockStore) (*Durable, error) {
	dataFS, err := NewFileStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	walFS, err := NewFileStore(WalPath(path), blockSize+JournalOverhead)
	if err != nil {
		_ = dataFS.Close() // best-effort cleanup; the journal-create error surfaces
		return nil, err
	}
	var data BlockStore = dataFS
	if wrap != nil {
		data = wrap(data)
	}
	d, err := NewDurable(wrapPlan(data, plan), wrapPlan(walFS, plan))
	if err != nil {
		_ = dataFS.Close() // best-effort cleanup; the recovery error surfaces
		_ = walFS.Close()
		return nil, err
	}
	return d, nil
}

// CreateDurableMapped is CreateDurableWrapped with an mmap-backed data
// device: committed blocks read zero-copy through the Checksummed frame
// views while writes keep the pwrite+journal protocol unchanged. The
// data layout is FileStore's, so Fsck and OpenDurable work on the same
// file. Ordering: Commit calls data.Sync() — which for a MappedStore is
// msync(MS_SYNC) then fsync — strictly before the journal is retired,
// so the mapped store inherits the journal protocol's crash safety.
// The journal device stays a FileStore: journal traffic is sequential
// write-mostly and gains nothing from a mapping.
func CreateDurableMapped(path string, blockSize int, plan *CrashPlan, wrap func(BlockStore) BlockStore) (*Durable, error) {
	dataMS, err := NewMappedStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	walFS, err := NewFileStore(WalPath(path), blockSize+JournalOverhead)
	if err != nil {
		_ = dataMS.Close() // best-effort cleanup; the journal-create error surfaces
		return nil, err
	}
	var data BlockStore = dataMS
	if wrap != nil {
		data = wrap(data)
	}
	d, err := NewDurable(wrapPlan(data, plan), wrapPlan(walFS, plan))
	if err != nil {
		_ = dataMS.Close() // best-effort cleanup; the recovery error surfaces
		_ = walFS.Close()
		return nil, err
	}
	return d, nil
}

// OpenDurableMapped is OpenDurableWrapped with an mmap-backed data
// device (see CreateDurableMapped).
func OpenDurableMapped(path string, blockSize int, plan *CrashPlan, wrap func(BlockStore) BlockStore) (*Durable, error) {
	dataMS, err := OpenMappedStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	walFS, err := OpenFileStore(WalPath(path), blockSize+JournalOverhead)
	if errors.Is(err, os.ErrNotExist) {
		walFS, err = NewFileStore(WalPath(path), blockSize+JournalOverhead)
	}
	if err != nil {
		_ = dataMS.Close() // best-effort cleanup; the journal-open error surfaces
		return nil, err
	}
	var data BlockStore = dataMS
	if wrap != nil {
		data = wrap(data)
	}
	d, err := NewDurable(wrapPlan(data, plan), wrapPlan(walFS, plan))
	if err != nil {
		_ = dataMS.Close() // best-effort cleanup; the recovery error surfaces
		_ = walFS.Close()
		return nil, err
	}
	return d, nil
}

// OpenDurable opens an existing file-backed durable store, replaying or
// discarding any interrupted batch left in its journal. A missing journal
// sidecar (e.g. deleted after a clean shutdown) is recreated empty.
func OpenDurable(path string, blockSize int, plan *CrashPlan) (*Durable, error) {
	return OpenDurableWrapped(path, blockSize, plan, nil)
}

// OpenDurableWrapped is OpenDurable with the same device-wrapping hook as
// CreateDurableWrapped.
func OpenDurableWrapped(path string, blockSize int, plan *CrashPlan, wrap func(BlockStore) BlockStore) (*Durable, error) {
	dataFS, err := OpenFileStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	walFS, err := OpenFileStore(WalPath(path), blockSize+JournalOverhead)
	if errors.Is(err, os.ErrNotExist) {
		walFS, err = NewFileStore(WalPath(path), blockSize+JournalOverhead)
	}
	if err != nil {
		_ = dataFS.Close() // best-effort cleanup; the journal-open error surfaces
		return nil, err
	}
	var data BlockStore = dataFS
	if wrap != nil {
		data = wrap(data)
	}
	d, err := NewDurable(wrapPlan(data, plan), wrapPlan(walFS, plan))
	if err != nil {
		_ = dataFS.Close() // best-effort cleanup; the recovery error surfaces
		_ = walFS.Close()
		return nil, err
	}
	return d, nil
}

// recover replays a sealed journal batch into the data store, or discards
// an unsealed one.
func (d *Durable) recover() error {
	batch, err := d.journal.Redo()
	if err != nil {
		return err
	}
	if !batch.Committed {
		if batch.Entries > 0 {
			// Unsealed batch: the data store was never touched; drop it.
			if err := d.journal.Reset(); err != nil {
				return err
			}
		}
		return nil
	}
	d.data.SetEpoch(batch.Epoch)
	if err := d.data.WriteBlocks(batch.IDs, batch.Blocks); err != nil {
		return err
	}
	if err := d.data.Sync(); err != nil {
		return err
	}
	if err := d.journal.Reset(); err != nil {
		return err
	}
	d.epoch = batch.Epoch
	d.recovered = len(batch.IDs)
	return nil
}

// Recovered reports how many blocks the last open replayed from the
// journal; ok is false when no sealed batch was found.
func (d *Durable) Recovered() (blocks int, ok bool) {
	if d.recovered < 0 {
		return 0, false
	}
	return d.recovered, true
}

// BlockSize returns the logical block size.
func (d *Durable) BlockSize() int { return d.data.BlockSize() }

// Epoch returns the epoch of the last committed batch.
func (d *Durable) Epoch() uint64 { return d.epoch }

// Pending returns the number of staged (uncommitted) blocks.
func (d *Durable) Pending() int { return len(d.pending) }

// ReadBlock reads through the staging overlay: staged writes are visible
// immediately, everything else comes (checksum-verified) from the data
// store.
func (d *Durable) ReadBlock(id int, buf []float64) error {
	if d.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(d, id, buf); err != nil {
		return err
	}
	if data, ok := d.pending[id]; ok {
		copy(buf, data)
		return nil
	}
	return d.data.ReadBlock(id, buf)
}

// ReadBlocks implements BatchReader: staged blocks are copied from the
// overlay and the rest are fetched from the data store as one vectored
// (checksum-verified) read.
func (d *Durable) ReadBlocks(ids []int, bufs [][]float64) error {
	if d.closed {
		return ErrClosed
	}
	if err := checkBatchArgs(d, ids, bufs); err != nil {
		return err
	}
	var missIDs []int
	var missBufs [][]float64
	for i, id := range ids {
		if data, ok := d.pending[id]; ok {
			copy(bufs[i], data)
		} else {
			missIDs = append(missIDs, id)
			missBufs = append(missBufs, bufs[i])
		}
	}
	if len(missIDs) == 0 {
		return nil
	}
	return d.data.ReadBlocks(missIDs, missBufs)
}

// WriteBlock stages a block; it reaches the medium on the next Commit.
func (d *Durable) WriteBlock(id int, data []float64) error {
	if d.closed {
		return ErrClosed
	}
	if err := checkBlockArgs(d, id, data); err != nil {
		return err
	}
	d.stage(id, data)
	return nil
}

// WriteBlocks implements BatchWriter by staging the whole batch; it costs
// no device I/O until Commit, exactly like the per-block loop.
func (d *Durable) WriteBlocks(ids []int, data [][]float64) error {
	if d.closed {
		return ErrClosed
	}
	if err := checkBatchArgs(d, ids, data); err != nil {
		return err
	}
	for i, id := range ids {
		d.stage(id, data[i])
	}
	return nil
}

func (d *Durable) stage(id int, data []float64) {
	dst, ok := d.pending[id]
	if !ok {
		dst = make([]float64, len(data))
		d.pending[id] = dst
	}
	copy(dst, data)
}

// Commit makes all staged writes durable as one atomic batch. On error the
// staged writes remain pending (a transient storage error can be retried);
// after a simulated power cut every subsequent operation fails.
func (d *Durable) Commit() error {
	if d.closed {
		return ErrClosed
	}
	if len(d.pending) == 0 {
		return nil
	}
	ids := make([]int, 0, len(d.pending))
	for id := range d.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	blocks := make([][]float64, len(ids))
	for i, id := range ids {
		blocks[i] = d.pending[id]
	}
	epoch := d.epoch + 1
	if err := d.journal.LogBatch(epoch, ids, blocks); err != nil {
		return fmt.Errorf("storage: journal batch: %w", err)
	}
	d.data.SetEpoch(epoch)
	// Apply as one vectored write: ids are sorted, so consecutive tiles of
	// a maintenance batch coalesce into single pwrites at the device while
	// the per-block frame bytes (and write order) stay identical.
	if err := d.data.WriteBlocks(ids, blocks); err != nil {
		return fmt.Errorf("storage: apply batch of %d blocks: %w", len(ids), err)
	}
	if err := d.data.Sync(); err != nil {
		return fmt.Errorf("storage: sync data: %w", err)
	}
	if err := d.journal.Reset(); err != nil {
		return fmt.Errorf("storage: retire journal: %w", err)
	}
	d.epoch = epoch
	if len(ids) <= maxRetainedBlocks {
		d.lastBatch = d.pending
	} else {
		d.lastBatch = nil
	}
	d.pending = make(map[int][]float64)
	return nil
}

// VerifyBlocks implements Verifier: staged blocks verify clean (their
// post-images live in memory and shadow the medium), everything else is
// frame-verified by the checksummed data store.
func (d *Durable) VerifyBlocks(ids []int) (corrupt []int, err error) {
	if d.closed {
		return nil, ErrClosed
	}
	var onMedia []int
	for _, id := range ids {
		if _, staged := d.pending[id]; !staged {
			onMedia = append(onMedia, id)
		}
	}
	if len(onMedia) == 0 {
		return nil, nil
	}
	return d.data.VerifyBlocks(onMedia)
}

// RepairBlock implements Repairer: it rolls a corrupt block forward from
// the newest post-image the store still holds — the staging overlay (an
// uncommitted write already shadows the bad frame) or the retained copy of
// the last committed batch (the journal's contents before it was
// truncated). repaired=false with a nil error means no source covers the
// block: its last write predates the retained batch and only a rebuild
// (re-materialize) can recover it.
func (d *Durable) RepairBlock(id int) (repaired bool, err error) {
	if d.closed {
		return false, ErrClosed
	}
	if id < 0 {
		return false, fmt.Errorf("storage: negative block id %d", id)
	}
	if _, staged := d.pending[id]; staged {
		// The overlay already serves reads; the bad frame is overwritten at
		// the next Commit. Nothing to do on the medium now.
		return true, nil
	}
	data, ok := d.lastBatch[id]
	if !ok {
		return false, nil
	}
	// Rewrite the frame under the epoch it was committed with and make it
	// stable before reporting success.
	d.data.SetEpoch(d.epoch)
	if err := d.data.WriteBlock(id, data); err != nil {
		return false, fmt.Errorf("storage: repair block %d: %w", id, err)
	}
	if err := d.data.Sync(); err != nil {
		return false, fmt.Errorf("storage: repair block %d: sync: %w", id, err)
	}
	return true, nil
}

// Rollback discards all staged writes.
func (d *Durable) Rollback() {
	d.pending = make(map[int][]float64)
}

// Sync commits: for a transactional store the only meaningful durability
// point is a batch boundary.
func (d *Durable) Sync() error { return d.Commit() }

// MappedReads forwards the data device's mapped-read counter (journal
// traffic is positional I/O and never mapped).
func (d *Durable) MappedReads() int64 { return MappedReadsOf(d.data) }

// Close commits staged writes and closes both underlying stores. The
// stores are closed even when the final commit fails (e.g. after a
// simulated crash); the first error is returned.
func (d *Durable) Close() error {
	if d.closed {
		return nil
	}
	err := d.Commit()
	d.closed = true
	if cerr := d.data.Close(); err == nil {
		err = cerr
	}
	if cerr := d.journal.Close(); err == nil {
		err = cerr
	}
	return err
}

// FsckReport is the result of checking a durable store's on-disk state.
type FsckReport struct {
	Path      string
	BlockSize int   // logical coefficients per block
	Blocks    int   // physical frames present in the data file
	Written   int   // frames holding a stored block
	Corrupt   []int // block ids failing checksum verification
	MaxEpoch  uint64

	JournalPresent   bool
	JournalEntries   int
	JournalCommitted bool // a sealed batch awaits replay (open the store to recover)
	JournalEpoch     uint64
	JournalErr       string // non-empty when the journal is unrecoverable

	// Versioned holds the decoded epoch superblock when the caller knows the
	// file carries the MVCC layout (see shiftsplit.Fsck); nil otherwise.
	Versioned *VersionedInfo
}

// Clean reports whether the store needs no attention: every frame verifies
// and no batch is pending in the journal.
func (r *FsckReport) Clean() bool {
	return len(r.Corrupt) == 0 && !r.JournalCommitted && r.JournalErr == ""
}

// NeedsRecovery reports whether opening the store would replay a batch.
func (r *FsckReport) NeedsRecovery() bool { return r.JournalCommitted }

// Fsck verifies a file-backed durable store without modifying it: every
// block frame is checksum-checked and the journal is inspected for an
// interrupted batch.
func Fsck(path string, blockSize int) (*FsckReport, error) {
	rep := &FsckReport{Path: path, BlockSize: blockSize}
	dataFS, err := OpenFileStore(path, blockSize+ChecksumOverhead)
	if err != nil {
		return nil, err
	}
	defer dataFS.Close()
	chk, err := NewChecksummed(dataFS)
	if err != nil {
		return nil, err
	}
	n, err := dataFS.NumBlocks()
	if err != nil {
		return nil, err
	}
	rep.Blocks = n
	for id := 0; id < n; id++ {
		epoch, written, err := chk.ReadMeta(id)
		switch {
		case err != nil:
			rep.Corrupt = append(rep.Corrupt, id)
		case written:
			rep.Written++
			if epoch > rep.MaxEpoch {
				rep.MaxEpoch = epoch
			}
		}
	}
	walFS, err := OpenFileStore(WalPath(path), blockSize+JournalOverhead)
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return nil, err
	}
	defer walFS.Close()
	rep.JournalPresent = true
	j, err := NewJournal(walFS, blockSize)
	if err != nil {
		return nil, err
	}
	st := j.Inspect()
	rep.JournalEntries = st.Entries
	rep.JournalCommitted = st.Committed
	rep.JournalEpoch = st.Epoch
	if st.Err != nil {
		rep.JournalErr = st.Err.Error()
	}
	return rep, nil
}
