package storage

import (
	"context"
	"fmt"
	"time"
)

// IsTransient reports whether a storage error is worth retrying. It is the
// taxonomy's ClassTransient test: injected faults and other
// ErrTransient-classed errors retry; corruption, space exhaustion, and
// fail-stop errors (closed store, simulated power loss, bad arguments)
// surface immediately.
func IsTransient(err error) bool {
	return Classify(err) == ClassTransient
}

// RetryOptions configures a Retry wrapper. The zero value selects the
// defaults noted on each field.
type RetryOptions struct {
	// MaxAttempts is the total tries per operation (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms); it
	// doubles per retry up to MaxDelay (default 50ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxElapsed caps the total time one operation may spend across its
	// attempts and backoff sleeps, so a retry loop cannot blow through a
	// deadline set by the layer above (e.g. the server's per-request
	// budget). Zero means no elapsed-time cap.
	MaxElapsed time.Duration
	// Ctx, when non-nil, aborts the backoff loop as soon as the context is
	// done: the last storage error is returned (wrapping the give-up), and
	// no further sleeps or attempts happen. Use it to tie a store's retry
	// budget to a request or shutdown context.
	Ctx context.Context
	// Classify reports whether an error is transient (default IsTransient).
	// Errors classified as corruption are never retried regardless of this
	// hook: re-reading rotten bytes returns the same rotten bytes.
	Classify func(error) bool
	// Sleep is the delay function (default time.Sleep; tests inject a
	// recorder).
	Sleep func(time.Duration)
	// Now is the clock used for the MaxElapsed cap (default time.Now).
	Now func() time.Time
}

// Retry wraps a BlockStore and retries transient failures with bounded
// exponential backoff, so sustained-but-recoverable flakiness (a congested
// device, an injected fault campaign) does not abort a maintenance batch,
// while permanent errors still fail fast.
type Retry struct {
	inner   BlockStore
	opts    RetryOptions
	retries int64
	giveUps int64
}

// NewRetry wraps inner with the given policy.
func NewRetry(inner BlockStore, opts RetryOptions) *Retry {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 50 * time.Millisecond
	}
	if opts.Classify == nil {
		opts.Classify = IsTransient
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Retry{inner: inner, opts: opts}
}

// Retries returns how many retries have been performed.
func (r *Retry) Retries() int64 { return r.retries }

// GiveUps returns how many operations exhausted their attempts.
func (r *Retry) GiveUps() int64 { return r.giveUps }

func (r *Retry) do(op func() error) error {
	delay := r.opts.BaseDelay
	var start time.Time
	if r.opts.MaxElapsed > 0 {
		start = r.opts.Now()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !r.opts.Classify(err) {
			return err
		}
		// Corruption is never retried, whatever the Classify hook says:
		// the bytes on the medium are wrong and re-reading them is wasted
		// I/O. Quarantine and repair are the only ways forward.
		if IsCorruption(err) {
			return err
		}
		if attempt >= r.opts.MaxAttempts {
			r.giveUps++
			return fmt.Errorf("storage: gave up after %d attempts: %w", attempt, err)
		}
		if r.opts.Ctx != nil && r.opts.Ctx.Err() != nil {
			r.giveUps++
			return fmt.Errorf("storage: retry canceled (%v) after %d attempts: %w", r.opts.Ctx.Err(), attempt, err)
		}
		if r.opts.MaxElapsed > 0 && r.opts.Now().Sub(start)+delay > r.opts.MaxElapsed {
			r.giveUps++
			return fmt.Errorf("storage: retry budget %v exhausted after %d attempts: %w", r.opts.MaxElapsed, attempt, err)
		}
		r.retries++
		r.opts.Sleep(delay)
		if delay *= 2; delay > r.opts.MaxDelay {
			delay = r.opts.MaxDelay
		}
	}
}

// BlockSize returns the wrapped block size.
func (r *Retry) BlockSize() int { return r.inner.BlockSize() }

// ReadBlock retries transient read failures.
func (r *Retry) ReadBlock(id int, buf []float64) error {
	return r.do(func() error { return r.inner.ReadBlock(id, buf) })
}

// WriteBlock retries transient write failures.
func (r *Retry) WriteBlock(id int, data []float64) error {
	return r.do(func() error { return r.inner.WriteBlock(id, data) })
}

// ReadBlocks retries the whole batch on a transient failure. Re-reading
// already-delivered blocks is idempotent, so the retry unit being the
// batch (not the block) changes only how many blocks a flaky device
// re-transfers, never the result.
func (r *Retry) ReadBlocks(ids []int, bufs [][]float64) error {
	return r.do(func() error { return ReadBlocksOf(r.inner, ids, bufs) })
}

// WriteBlocks retries the whole batch on a transient failure. Batch writes
// preserve slice order on every attempt, and rewriting a prefix that
// already landed is idempotent.
func (r *Retry) WriteBlocks(ids []int, data [][]float64) error {
	return r.do(func() error { return WriteBlocksOf(r.inner, ids, data) })
}

// Sync retries transient sync failures.
func (r *Retry) Sync() error {
	return r.do(func() error { return SyncIfAble(r.inner) })
}

// Truncate forwards to the wrapped store.
func (r *Retry) Truncate() error { return TruncateIfAble(r.inner) }

// Commit forwards a durability point to the wrapped store.
func (r *Retry) Commit() error { return CommitIfAble(r.inner) }

// Close closes the wrapped store (no retry: close errors are terminal).
func (r *Retry) Close() error { return r.inner.Close() }

// MappedReads forwards the inner stack's mapped-read counter.
func (r *Retry) MappedReads() int64 { return MappedReadsOf(r.inner) }
