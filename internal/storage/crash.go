package storage

import (
	"errors"
	"math/rand"
	"sort"
)

// ErrCrashed is returned by every operation on a CrashStore after its plan
// has fired: the simulated machine lost power and the process is dead.
var ErrCrashed = errors.New("storage: simulated power failure")

// CrashPlan schedules a simulated power cut at the n-th physical mutation
// (write, sync, or truncate) across every CrashStore sharing the plan. A
// crash campaign arms one plan per trial and sweeps the index over the
// whole range a maintenance batch produces.
type CrashPlan struct {
	rng     *rand.Rand
	failAt  int64
	ops     int64
	crashed bool
}

// NewCrashPlan creates a disarmed plan; the seed drives the tear/drop
// choices made at the crash point.
func NewCrashPlan(seed int64) *CrashPlan {
	return &CrashPlan{rng: rand.New(rand.NewSource(seed))}
}

// ArmAt schedules the power cut at the n-th mutation from the start of
// counting (1-based); n <= 0 disarms.
func (p *CrashPlan) ArmAt(n int64) { p.failAt = n }

// Ops returns how many mutations have been counted so far; a disarmed dry
// run uses it to size the campaign sweep.
func (p *CrashPlan) Ops() int64 { return p.ops }

// Crashed reports whether the power cut has fired.
func (p *CrashPlan) Crashed() bool { return p.crashed }

// step counts one mutation and reports whether the power cut fires on it.
func (p *CrashPlan) step() bool {
	if p.crashed {
		return false
	}
	p.ops++
	if p.failAt > 0 && p.ops == p.failAt {
		p.crashed = true
		return true
	}
	return false
}

// CrashStore wraps the durable medium under a store stack and simulates a
// power cut at an arbitrary mutation. It models a volatile write cache the
// way a real OS does: WriteBlock lands in memory and reaches the medium
// only on Sync. At the crash point the in-flight write is dropped, torn
// (only a prefix of its coefficients reaches the medium), or fully
// persisted — chosen by the plan's seeded RNG — every unsynced write is
// lost, and all subsequent operations fail with ErrCrashed.
//
// Wrap the data and journal FileStores of one Durable in two CrashStores
// sharing a plan to exercise the full commit protocol.
type CrashStore struct {
	inner BlockStore
	plan  *CrashPlan
	cache map[int][]float64 // written but not yet synced
}

// NewCrashStore wraps inner under plan.
func NewCrashStore(inner BlockStore, plan *CrashPlan) *CrashStore {
	return &CrashStore{inner: inner, plan: plan, cache: make(map[int][]float64)}
}

// BlockSize returns the wrapped block size.
func (c *CrashStore) BlockSize() int { return c.inner.BlockSize() }

// ReadBlock reads through the volatile cache.
func (c *CrashStore) ReadBlock(id int, buf []float64) error {
	if c.plan.crashed {
		return ErrCrashed
	}
	if data, ok := c.cache[id]; ok {
		copy(buf, data)
		return nil
	}
	return c.inner.ReadBlock(id, buf)
}

// ReadBlocks implements BatchReader: cached (unsynced) writes are served
// from the overlay and the remainder is fetched from the medium as one
// vectored read. Reads are not mutations, so the crash plan's op count is
// untouched.
func (c *CrashStore) ReadBlocks(ids []int, bufs [][]float64) error {
	if c.plan.crashed {
		return ErrCrashed
	}
	var missIDs []int
	var missBufs [][]float64
	for i, id := range ids {
		if data, ok := c.cache[id]; ok {
			copy(bufs[i], data)
		} else {
			missIDs = append(missIDs, id)
			missBufs = append(missBufs, bufs[i])
		}
	}
	if len(missIDs) == 0 {
		return nil
	}
	return ReadBlocksOf(c.inner, missIDs, missBufs)
}

// persistTorn writes a block to the medium with only a random-length
// prefix of the new coefficients; the suffix keeps the medium's old
// contents, modeling a write interrupted mid-sector.
func (c *CrashStore) persistTorn(id int, data []float64) {
	old := make([]float64, c.inner.BlockSize())
	_ = c.inner.ReadBlock(id, old)     // best effort: the machine is dying anyway
	keep := c.plan.rng.Intn(len(data)) // 0..len-1 new coefficients persist
	copy(old[:keep], data[:keep])
	_ = c.inner.WriteBlock(id, old)
}

// WriteBlock caches the block, or fires the power cut.
func (c *CrashStore) WriteBlock(id int, data []float64) error {
	if c.plan.crashed {
		return ErrCrashed
	}
	if c.plan.step() {
		switch c.plan.rng.Intn(3) {
		case 0: // dropped entirely
		case 1: // torn
			c.persistTorn(id, data)
		case 2: // made it to the medium intact
			_ = c.inner.WriteBlock(id, data)
		}
		c.cache = make(map[int][]float64) // unsynced writes are gone
		return ErrCrashed
	}
	dst, ok := c.cache[id]
	if !ok {
		dst = make([]float64, len(data))
		c.cache[id] = dst
	}
	copy(dst, data)
	return nil
}

// WriteBlocks implements BatchWriter by pushing each block through the
// same per-mutation plan accounting as WriteBlock: the crash campaign's
// op indices — and therefore its sweep — are identical whether the stack
// above batches or loops. Writes land in the volatile cache, so there is
// no inner batch to issue before a Sync.
func (c *CrashStore) WriteBlocks(ids []int, data [][]float64) error {
	for i, id := range ids {
		if err := c.WriteBlock(id, data[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the volatile cache to the medium, or fires the power cut
// mid-fsync, persisting a random subset of the cached writes.
func (c *CrashStore) Sync() error {
	if c.plan.crashed {
		return ErrCrashed
	}
	ids := make([]int, 0, len(c.cache))
	for id := range c.cache {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if c.plan.step() {
		for _, id := range ids {
			switch c.plan.rng.Intn(3) {
			case 0: // lost
			case 1:
				c.persistTorn(id, c.cache[id])
			case 2:
				_ = c.inner.WriteBlock(id, c.cache[id])
			}
		}
		c.cache = make(map[int][]float64)
		return ErrCrashed
	}
	for _, id := range ids {
		if err := c.inner.WriteBlock(id, c.cache[id]); err != nil {
			return err
		}
	}
	c.cache = make(map[int][]float64)
	return SyncIfAble(c.inner)
}

// Truncate discards the cache and truncates the medium. The truncation
// itself is atomic (a metadata operation on journaling filesystems): at
// the crash point it either happened or it did not.
func (c *CrashStore) Truncate() error {
	if c.plan.crashed {
		return ErrCrashed
	}
	if c.plan.step() {
		if c.plan.rng.Intn(2) == 0 {
			c.cache = make(map[int][]float64)
			_ = TruncateIfAble(c.inner)
		}
		c.cache = make(map[int][]float64)
		return ErrCrashed
	}
	c.cache = make(map[int][]float64)
	return TruncateIfAble(c.inner)
}

// MappedReads forwards the medium's mapped-read counter. CrashStore
// does NOT forward FrameViewer: its volatile write cache shadows the
// medium, so zero-copy views would read around uncommitted state.
func (c *CrashStore) MappedReads() int64 { return MappedReadsOf(c.inner) }

// Close closes the medium. A graceful close flushes the cache first; after
// a crash the cache is already gone.
func (c *CrashStore) Close() error {
	if !c.plan.crashed {
		for id, data := range c.cache {
			if err := c.inner.WriteBlock(id, data); err != nil {
				return err
			}
		}
		c.cache = nil
	}
	return c.inner.Close()
}
