package appender

import (
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

func TestNonStdAppendAndReconstruct(t *testing.T) {
	a, err := NewNonStd(3, 2, 2) // 8x8 hypercubes
	if err != nil {
		t.Fatal(err)
	}
	var cubes []*ndarray.Array
	for h := 0; h < 5; h++ {
		cube := dataset.Dense([]int{8, 8}, int64(h+1))
		cubes = append(cubes, cube)
		if err := a.Append(cube); err != nil {
			t.Fatal(err)
		}
	}
	if a.Hypercubes() != 5 {
		t.Errorf("Hypercubes = %d", a.Hypercubes())
	}
	if sh := a.Shape(); sh[0] != 8 || sh[1] != 40 {
		t.Errorf("Shape = %v", sh)
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for h, cube := range cubes {
		sub := got.SubCopy([]int{0, h * 8}, []int{8, 8})
		if !sub.EqualApprox(cube, 1e-8) {
			t.Fatalf("hypercube %d differs by %g", h, sub.MaxAbsDiff(cube))
		}
	}
}

func TestNonStdPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := NewNonStd(2, 3, 1) // 4x4x4 hypercubes, 3-d
	if err != nil {
		t.Fatal(err)
	}
	var cubes []*ndarray.Array
	for h := 0; h < 3; h++ {
		cube := dataset.Dense([]int{4, 4, 4}, int64(10+h))
		cubes = append(cubes, cube)
		if err := a.Append(cube); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 60; trial++ {
		h := rng.Intn(3)
		p := []int{rng.Intn(4), rng.Intn(4), h*4 + rng.Intn(4)}
		got, err := a.PointAt(p)
		if err != nil {
			t.Fatal(err)
		}
		want := cubes[h].At(p[0], p[1], p[2]%4)
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v: %g vs %g", p, got, want)
		}
	}
	if _, err := a.PointAt([]int{0, 0, 100}); err == nil {
		t.Error("out-of-range time accepted")
	}
}

func TestNonStdRangeSums(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := NewNonStd(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := ndarray.New(8, 32)
	for h := 0; h < 4; h++ {
		cube := dataset.Dense([]int{8, 8}, int64(20+h))
		full.SubPaste(cube, []int{0, h * 8})
		if err := a.Append(cube); err != nil {
			t.Fatal(err)
		}
	}
	// Spatially full, time-spanning boxes (the averages-tree fast path).
	for trial := 0; trial < 20; trial++ {
		t0 := rng.Intn(32)
		t1 := t0 + 1 + rng.Intn(32-t0)
		got, err := a.RangeSum([]int{0, t0}, []int{8, t1 - t0})
		if err != nil {
			t.Fatal(err)
		}
		want := full.SumRange([]int{0, t0}, []int{8, t1 - t0})
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("time box [%d,%d): %g vs %g", t0, t1, got, want)
		}
	}
	// General boxes.
	for trial := 0; trial < 30; trial++ {
		s := []int{rng.Intn(8), rng.Intn(32)}
		sh := []int{1 + rng.Intn(8-s[0]), 1 + rng.Intn(32-s[1])}
		got, err := a.RangeSum(s, sh)
		if err != nil {
			t.Fatal(err)
		}
		want := full.SumRange(s, sh)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v+%v: %g vs %g", s, sh, got, want)
		}
	}
}

func TestNonStdAppendCostIndependentOfHistory(t *testing.T) {
	// Old hypercubes are never touched: per-append I/O must not grow with T
	// (apart from the rare averages-tree expansions).
	a, err := NewNonStd(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var costs []int64
	prev := int64(0)
	for h := 0; h < 16; h++ {
		if err := a.Append(dataset.Dense([]int{8, 8}, int64(h))); err != nil {
			t.Fatal(err)
		}
		total := a.TotalIO().Total()
		costs = append(costs, total-prev)
		prev = total
	}
	// Compare a late non-expansion append with an early one.
	if costs[14] > costs[2]*2 {
		t.Errorf("append cost grew with history: early %d, late %d (all %v)", costs[2], costs[14], costs)
	}
}

func TestNonStdRejectsBadHypercube(t *testing.T) {
	a, err := NewNonStd(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(ndarray.New(4)); err == nil {
		t.Error("wrong dims accepted")
	}
	if err := a.Append(ndarray.New(8, 8)); err == nil {
		t.Error("wrong edge accepted")
	}
}
