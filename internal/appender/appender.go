// Package appender implements appending to wavelet-decomposed data (paper
// §5.2): new data that enlarges the domain of one or more dimensions is
// folded into an existing standard-form transform without reconstructing the
// original data.
//
// Appending has two phases. When the incoming slab no longer fits the
// transformed domain, the domain is expanded: the dimension's wavelet tree
// grows one level (Figure 10), which re-indexes (SHIFTs) every coefficient
// and SPLITs the old overall average into the new root detail and average —
// an O(N^d) pass that shows up as the jumps in Figure 13. Otherwise the slab
// is transformed in memory and merged with SHIFT-SPLIT at a cost of
// O(M + log(N/M)) coefficients per dyadic piece.
package appender

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// Backing provides the block store for each of the appender's successive
// domain generations (every expansion rebuilds the store, possibly with a
// new block size). Returning a transactional store (storage.Durable) makes
// each append and each expansion an atomic batch: the appender commits at
// those boundaries.
type Backing func(generation, blockSize int) (storage.BlockStore, error)

// ErrInDoubt marks an append whose final group commit failed after the
// journal may already have sealed the batch: the slabs are neither
// reliably durable nor reliably absent, and only reopening the backing
// (which replays or discards the journal) resolves the outcome. The
// appender refuses further work once in doubt.
var ErrInDoubt = errors.New("appender: commit outcome in doubt")

// Appender maintains a growing dataset in the wavelet domain on tiled,
// I/O-counted block storage.
//
// An Appender is NOT safe for concurrent use: Append/AppendBatch mutate
// the frontier and the staged transform, and even the read-side helpers
// (Store, Reconstruct, TotalIO) observe that state mid-mutation. Callers
// with concurrent clients must serialize externally — the ingest
// subsystem does so by funneling every append through one commit loop.
type Appender struct {
	b           int // tile parameter: blocks hold 2^(b*d) coefficients
	shape       []int
	used        []int
	store       *tile.Store
	base        storage.BlockStore // current generation's device (rollback seam)
	counting    *storage.Counting
	accumulated storage.Stats
	backing     Backing
	generation  int
	opts        parallel.Options

	// Separate attributions of the lifetime I/O (satellite of the ingest
	// work: fsync-amortization claims need slab-write cost unpolluted by
	// expansion cost). TotalIO remains the device truth; these two split
	// the portion spent inside Append calls.
	expansionTotal storage.Stats
	mergeTotal     storage.Stats

	// poisoned is set when an error left the on-store state unreliable
	// (failed expansion, unrecoverable commit, non-transactional backing
	// with a half-applied batch). Every later append fails with it.
	poisoned error

	// scratch pools the per-run merge state (wavelet scratch + delta
	// buckets) across slabs, so steady-state appends stop allocating
	// tile-sized buffers. Holds *mergeScratch.
	scratch sync.Pool
}

// mergeScratch is one worker's reusable transform/bucket state. The slab
// sub-copies themselves still allocate (their shapes vary per dyadic run),
// but the wavelet working buffers and the per-tile delta slices — the bulk
// of the merge's allocation profile — are recycled.
type mergeScratch struct {
	ws  *wavelet.Scratch
	set *tile.BucketSet
}

// SetOptions configures the worker pool used to transform the dyadic pieces
// of each slab. Delta application always stays sequential (chunk-ordered,
// ascending block IDs) so the physical write sequence — and with it the
// crash-campaign behavior of durable backings — is identical for every
// worker count.
func (a *Appender) SetOptions(opts parallel.Options) { a.opts = opts }

// AppendStats reports the cost of one Append or AppendBatch call.
// ExpansionIO and MergeIO are disjoint windows: expansion covers the
// domain-doubling passes (old-generation reads plus the rebuilt store's
// writes, syncs, and commits), merge covers transforming and applying the
// slabs plus the single group commit that seals them.
type AppendStats struct {
	Expansions  int           // domain doublings triggered
	Slabs       int           // client slabs folded in
	ExpansionIO storage.Stats // block I/O spent expanding
	MergeIO     storage.Stats // block I/O spent merging the slabs
}

// New creates an appender over an initially empty domain of the given
// power-of-two shape, tiled with per-dimension block edge 2^b, backed by
// in-memory storage.
func New(shape []int, b int) (*Appender, error) {
	return NewWithBacking(shape, b, nil)
}

// NewWithBacking is New with an explicit store provider; backing == nil
// selects in-memory stores.
func NewWithBacking(shape []int, b int, backing Backing) (*Appender, error) {
	for _, s := range shape {
		if !bitutil.IsPow2(s) {
			return nil, fmt.Errorf("appender: extent %d is not a power of two", s)
		}
	}
	a := &Appender{
		b:       b,
		shape:   append([]int(nil), shape...),
		used:    make([]int, len(shape)),
		backing: backing,
	}
	if err := a.rebuildStore(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Appender) rebuildStore() error {
	ns := make([]int, len(a.shape))
	for i, s := range a.shape {
		ns[i] = bitutil.Log2(s)
	}
	tiling := tile.NewStandard(ns, a.b)
	var base storage.BlockStore
	if a.backing != nil {
		var err error
		if base, err = a.backing(a.generation, tiling.BlockSize()); err != nil {
			return err
		}
	} else {
		base = storage.NewMemStore(tiling.BlockSize())
	}
	a.generation++
	a.base = base
	a.counting = storage.NewCounting(base)
	st, err := tile.NewStore(a.counting, tiling)
	if err != nil {
		return err
	}
	a.store = st
	return nil
}

// Shape returns the current transformed domain extents.
func (a *Appender) Shape() []int { return append([]int(nil), a.shape...) }

// Used returns the extents actually occupied by appended data.
func (a *Appender) Used() []int { return append([]int(nil), a.used...) }

// Store exposes the tiled transform for querying.
func (a *Appender) Store() *tile.Store { return a.store }

// TotalIO returns the cumulative block I/O across all appends and
// expansions.
func (a *Appender) TotalIO() storage.Stats {
	return a.accumulated.Add(a.counting.Stats())
}

// IOBreakdown splits the lifetime I/O spent inside Append/AppendBatch
// calls into its two phases: domain expansion and slab merging (including
// each batch's group commit). TotalIO may exceed their sum — queries and
// reconstruction through Store() are attributed to neither phase.
func (a *Appender) IOBreakdown() (expansion, merge storage.Stats) {
	return a.expansionTotal, a.mergeTotal
}

// Poisoned returns the sticky error set when a failure left the stored
// transform unreliable, or nil while the appender is healthy.
func (a *Appender) Poisoned() error { return a.poisoned }

// Append folds slab into the dataset along dim, at offset Used()[dim]. The
// slab must span the used extent of every other dimension. The domain is
// expanded as needed.
func (a *Appender) Append(dim int, slab *ndarray.Array) (AppendStats, error) {
	return a.AppendBatch(dim, []*ndarray.Array{slab})
}

// AppendBatch folds a group of slabs into the dataset along dim, in
// order, as ONE atomic batch: all needed domain expansions run first,
// then every slab is transformed and SHIFT-SPLIT-merged into the staged
// transform, and a single Commit seals the group. On a transactional
// backing the whole group therefore costs one journal group — the fsync
// amortization the ingest front door is built on — and a crash recovers
// to either all slabs applied or none.
//
// Error semantics: validation errors leave the appender untouched. A
// failure before the final commit rolls the staged writes and the
// frontier back (the group is known not committed) when the backing
// supports rollback; otherwise the appender is poisoned. A final-commit
// failure is retried while the fault looks transient; if it does not
// clear, the group's outcome is unknowable in-process and the error wraps
// ErrInDoubt.
func (a *Appender) AppendBatch(dim int, slabs []*ndarray.Array) (AppendStats, error) {
	var st AppendStats
	if a.poisoned != nil {
		return st, a.poisoned
	}
	d := len(a.shape)
	if dim < 0 || dim >= d {
		return st, fmt.Errorf("appender: dimension %d out of range", dim)
	}
	if len(slabs) == 0 {
		return st, nil
	}
	// Validate the whole group up front so no slab can fail after its
	// predecessors were staged. Cross extents chain exactly as in repeated
	// Append calls: the first slab of an empty dimension fixes them.
	cross := append([]int(nil), a.used...)
	growth := 0
	for _, slab := range slabs {
		if slab.Dims() != d {
			return st, fmt.Errorf("appender: slab has %d dims, want %d", slab.Dims(), d)
		}
		for t := 0; t < d; t++ {
			if t == dim {
				continue
			}
			want := cross[t]
			if want == 0 {
				want = slab.Extent(t) // first append fixes the cross extents
			}
			if slab.Extent(t) != want {
				return st, fmt.Errorf("appender: slab extent %d in dim %d, want %d", slab.Extent(t), t, want)
			}
			if slab.Extent(t) > a.shape[t] {
				return st, fmt.Errorf("appender: slab extent %d exceeds domain %d in dim %d", slab.Extent(t), a.shape[t], t)
			}
			// The slab spans [0, extent) in this dimension; that must be a
			// dyadic prefix of the domain.
			if !bitutil.IsPow2(slab.Extent(t)) {
				return st, fmt.Errorf("appender: cross extent %d is not a power of two", slab.Extent(t))
			}
			cross[t] = want
		}
		growth += slab.Extent(dim)
	}
	// Expand until the whole group fits, BEFORE any slab is staged. Each
	// expansion commits on its own (it rebuilds the store on a new
	// generation), so running them first keeps the group itself a single
	// journal group: a crash between expansion and group commit leaves an
	// enlarged domain holding exactly the pre-batch data — a legal
	// pre-batch state — never a partial group.
	for a.used[dim]+growth > a.shape[dim] {
		expIO, err := a.expand(dim)
		if err != nil {
			a.poisoned = fmt.Errorf("appender: expansion failed: %w", err)
			return st, err
		}
		st.Expansions++
		st.ExpansionIO = st.ExpansionIO.Add(expIO)
	}
	// Merge every slab at its frontier offset; application stays on this
	// goroutine in slab order, so the staged writes are deterministic.
	mergeBefore := a.counting.Stats()
	usedBefore := append([]int(nil), a.used...)
	for _, slab := range slabs {
		if err := a.merge(dim, slab); err != nil {
			a.rollback(usedBefore)
			return st, err
		}
	}
	// One group = one atomic batch on transactional backings.
	if err := a.commitRetry(); err != nil {
		if storage.Classify(err) == storage.ClassTransient {
			// Retries exhausted with the journal possibly sealed: the group
			// may replay on reopen. Refuse further work.
			err = fmt.Errorf("%w: %v", ErrInDoubt, err)
			a.poisoned = err
			return st, err
		}
		// Non-transient commit failures (simulated power cut, corruption,
		// full medium) fail before the journal seals or are not retryable;
		// roll the group back and stay honest about the state.
		a.rollback(usedBefore)
		return st, err
	}
	st.Slabs = len(slabs)
	st.MergeIO = a.counting.Stats().Sub(mergeBefore)
	a.mergeTotal = a.mergeTotal.Add(st.MergeIO)
	return st, nil
}

// merge transforms one slab and applies its SHIFT-SPLIT deltas to the
// staged transform, advancing the frontier. It does not commit.
func (a *Appender) merge(dim int, slab *ndarray.Array) error {
	d := len(a.shape)
	start := a.used[dim]
	// One dyadic run along dim at a time. The runs' transforms and
	// SHIFT-SPLIT bucketing fan out to the worker pool; application
	// happens in run order on this goroutine.
	type run struct {
		subStart, subShape []int
		block              dyadic.Range
	}
	var runs []run
	for _, iv := range dyadic.Decompose(start, start+slab.Extent(dim)) {
		r := run{subStart: make([]int, d), subShape: make([]int, d), block: make(dyadic.Range, d)}
		for t := 0; t < d; t++ {
			if t == dim {
				r.subStart[t] = iv.Start() - start
				r.subShape[t] = iv.Len()
				r.block[t] = iv
			} else {
				r.subStart[t] = 0
				r.subShape[t] = slab.Extent(t)
				r.block[t] = dyadic.NewInterval(bitutil.Log2(r.subShape[t]), 0)
			}
		}
		runs = append(runs, r)
	}
	type runResult struct {
		buckets []tile.Bucket
		sc      *mergeScratch
	}
	err := parallel.Run(len(runs), a.opts,
		func(seq int) (runResult, error) {
			r := runs[seq]
			sc, ok := a.scratch.Get().(*mergeScratch)
			if !ok {
				sc = &mergeScratch{ws: wavelet.NewScratch(), set: tile.NewBucketSet(a.store.Tiling().BlockSize())}
			}
			bHat := slab.SubCopy(r.subStart, r.subShape)
			wavelet.TransformStandardInPlace(bHat, sc.ws)
			tile.AccumulateEmbedStandard(a.store.Tiling(), a.shape, r.block, bHat, sc.set)
			return runResult{buckets: sc.set.Buckets(), sc: sc}, nil
		},
		func(seq int, res runResult) error {
			err := a.store.ApplyBuckets(res.buckets)
			res.sc.set.Reset()
			a.scratch.Put(res.sc)
			return err
		})
	if err != nil {
		return err
	}
	a.used[dim] += slab.Extent(dim)
	for t := 0; t < d; t++ {
		if t != dim && a.used[t] == 0 {
			a.used[t] = slab.Extent(t)
		}
	}
	return nil
}

// commitRetry seals the staged group, retrying while the failure is a
// transient media fault (Durable keeps the staged writes pending across a
// failed Commit, so re-driving it is safe). Corruption, space exhaustion,
// and unknown-class errors (power cuts, closed stores) are never retried.
func (a *Appender) commitRetry() error {
	backoff := time.Millisecond
	var err error
	for attempt := 0; attempt < 6; attempt++ {
		if err = a.store.Commit(); err == nil {
			return nil
		}
		if storage.Classify(err) != storage.ClassTransient {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return err
}

// rollback discards the staged (uncommitted) writes and restores the
// frontier after a failed batch. Transactional backings expose Rollback;
// without one the staged writes already reached the device and the
// appender must be poisoned instead.
func (a *Appender) rollback(used []int) {
	copy(a.used, used)
	type rollbacker interface{ Rollback() }
	if rb, ok := a.base.(rollbacker); ok {
		rb.Rollback()
		return
	}
	a.poisoned = errors.New("appender: batch failed on a non-transactional backing; stored transform is partial")
}

// expand doubles the domain along dim: every coefficient of the old
// transform SHIFTs to its position in the doubled tree, and the old overall
// average (along dim) SPLITs into the new root detail and the new average
// (Figure 10).
func (a *Appender) expand(dim int) (storage.Stats, error) {
	oldShape := a.Shape()
	oldStore, oldCounting := a.store, a.counting
	oldTiling := oldStore.Tiling().(*tile.Standard)
	nOld := bitutil.Log2(oldShape[dim])
	preOld := oldCounting.Stats()

	a.shape[dim] *= 2
	if err := a.rebuildStore(); err != nil {
		return storage.Stats{}, err
	}
	newTiling := a.store.Tiling()

	// Group old coefficients by their old block so each old block is read
	// exactly once.
	byBlock := make(map[int]map[int][]int) // old block -> slot -> coords
	coords := make([]int, len(oldShape))
	var rec func(i int)
	rec = func(i int) {
		if i == len(oldShape) {
			blk, slot := oldTiling.Locate(coords)
			m, ok := byBlock[blk]
			if !ok {
				m = make(map[int][]int)
				byBlock[blk] = m
			}
			m[slot] = append([]int(nil), coords...)
			return
		}
		for v := 0; v < oldShape[i]; v++ {
			coords[i] = v
			rec(i + 1)
		}
	}
	rec(0)

	pending := make(map[int][]float64) // new block -> data
	add := func(c []int, v float64) {
		blk, slot := newTiling.Locate(c)
		data, ok := pending[blk]
		if !ok {
			data = make([]float64, newTiling.BlockSize())
			pending[blk] = data
		}
		data[slot] += v
	}
	// Read every touched old block with one vectored request, in ascending
	// id order — which also makes the accumulation order into pending
	// blocks deterministic where map iteration used to randomize it.
	oldBlks := make([]int, 0, len(byBlock))
	for blk := range byBlock {
		oldBlks = append(oldBlks, blk)
	}
	sort.Ints(oldBlks)
	oldData, err := oldStore.ReadTiles(oldBlks)
	if err != nil {
		return storage.Stats{}, err
	}
	for i, blk := range oldBlks {
		data, slots := oldData[i], byBlock[blk]
		for slot, c := range slots {
			v := data[slot]
			if v == 0 {
				continue
			}
			nc := append([]int(nil), c...)
			idx := c[dim]
			if idx >= 1 {
				j, k := haar.LevelPos(nOld, idx)
				nc[dim] = haar.Index(nOld+1, j, k)
				add(nc, v)
			} else {
				// The old average splits: half to the new average, half to
				// the new root detail (the old data is the left subtree).
				nc[dim] = 0
				add(nc, v/2)
				nc[dim] = 1
				add(nc, v/2)
			}
		}
	}
	blks := make([]int, 0, len(pending))
	for blk := range pending {
		blks = append(blks, blk)
	}
	sort.Ints(blks)
	newData := make([][]float64, len(blks))
	for i, blk := range blks {
		newData[i] = pending[blk]
	}
	if err := a.store.WriteTiles(blks, newData); err != nil {
		return storage.Stats{}, err
	}
	// The expanded transform is one atomic batch; only after it is durable
	// may the previous generation be retired.
	if err := a.store.Commit(); err != nil {
		return storage.Stats{}, err
	}
	// Fold the old store's lifetime I/O into the running totals and report
	// this expansion's own cost: the old generation's reads since the
	// expansion began plus everything on the fresh generation's counter —
	// the re-indexed writes and the expansion batch's sync/commit. Keeping
	// the full cost out of MergeIO is what lets stats alone verify the
	// fsync-amortization claims.
	oldStats := oldCounting.Stats()
	a.accumulated = a.accumulated.Add(oldStats)
	cost := oldStats.Sub(preOld).Add(a.counting.Stats())
	a.expansionTotal = a.expansionTotal.Add(cost)
	return cost, oldStore.Close()
}

// Reconstruct reads the whole transform back and inverts it, returning the
// current contents of the domain (appended data plus zero padding).
func (a *Appender) Reconstruct() (*ndarray.Array, error) {
	hat := ndarray.New(a.shape...)
	var err error
	hat.Each(func(coords []int, _ float64) {
		if err != nil {
			return
		}
		var v float64
		v, err = a.store.Get(coords)
		if err == nil {
			hat.Set(v, coords...)
		}
	})
	if err != nil {
		return nil, err
	}
	return wavelet.InverseStandard(hat), nil
}
