package appender

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// groupSlab is the i-th member of the crash campaign's append group: a
// 4x1 column with values distinct per member, so a partially applied
// group would be visible as a hybrid transform.
func groupSlab(i int) *ndarray.Array {
	s := ndarray.New(4, 1)
	for r := 0; r < 4; r++ {
		s.Set(float64(100*(i+1)+r), r, 0)
	}
	return s
}

// groupTransform returns the standard transform of the [4,8] domain
// holding the base slab, plus the whole 4-slab group when withGroup.
func groupTransform(withGroup bool) *ndarray.Array {
	full := ndarray.New(4, 8)
	full.SubPaste(baseSlab(), []int{0, 0})
	if withGroup {
		for i := 0; i < 4; i++ {
			full.SubPaste(groupSlab(i), []int{0, 4 + i})
		}
	}
	return wavelet.TransformStandard(full)
}

// TestGroupCommitCrashIsAtomic is the torn-group-commit campaign: a
// 4-slab AppendBatch (one journal group, no expansion — the domain
// already fits) is power-cut at every physical mutation index, the media
// recovered, and the recovered transform must be exactly the pre-batch
// or the post-batch state. A hybrid — some group members visible,
// others missing — is the bug this campaign exists to catch. The
// in-process appender must also agree: a failed batch rolls the `used`
// frontier back, so it never claims cells the journal did not seal.
func TestGroupCommitCrashIsAtomic(t *testing.T) {
	buildBase := func(mems *durableMems) *Appender {
		a, err := NewWithBacking([]int{4, 8}, 1, mems.backing)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Append(1, baseSlab()); err != nil {
			t.Fatal(err)
		}
		return a
	}
	group := func() []*ndarray.Array {
		slabs := make([]*ndarray.Array, 4)
		for i := range slabs {
			slabs[i] = groupSlab(i)
		}
		return slabs
	}
	pre := groupTransform(false)
	post := groupTransform(true)

	// Dry run: count the group commit's physical mutations.
	dryMems := newDurableMems()
	dryMems.plan = storage.NewCrashPlan(1)
	aDry := buildBase(dryMems)
	preOps := dryMems.plan.Ops()
	if st, err := aDry.AppendBatch(1, group()); err != nil {
		t.Fatal(err)
	} else if st.Slabs != 4 || st.Expansions != 0 {
		t.Fatalf("dry run: %+v, want 4 slabs and no expansion", st)
	}
	totalOps := dryMems.plan.Ops() - preOps
	if totalOps < 4 {
		t.Fatalf("group commit took only %d mutations", totalOps)
	}

	var preSeen, postSeen int
	for w := int64(1); w <= totalOps; w++ {
		mems := newDurableMems()
		mems.plan = storage.NewCrashPlan(1000 + w)
		a := buildBase(mems)
		mems.plan.ArmAt(mems.plan.Ops() + w)
		_, err := a.AppendBatch(1, group())
		if w < totalOps && !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("trial %d: expected crash, got %v", w, err)
		}
		if err != nil {
			// The in-process appender must not claim unsealed cells: a
			// failed batch reverts the frontier to the pre-batch extent.
			if used := a.Used(); used[1] != 4 {
				t.Fatalf("trial %d: used=%v after failed batch, want frontier 4", w, used)
			}
		}
		d, rerr := mems.reopen(mems.lastGen())
		if rerr != nil {
			t.Fatalf("trial %d: recover: %v", w, rerr)
		}
		switch {
		case matchesTransform(t, d, []int{4, 8}, pre):
			preSeen++
		case matchesTransform(t, d, []int{4, 8}, post):
			postSeen++
		default:
			t.Fatalf("trial %d: torn group visible after recovery", w)
		}
		d.Close()
	}
	t.Logf("group-commit campaign: %d trials, pre=%d post=%d", totalOps, preSeen, postSeen)
	if preSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign did not exercise both outcomes (pre=%d post=%d)", preSeen, postSeen)
	}
}

// TestGroupCommitCrashFsckOnDisk runs the same torn-group power cut over
// a real file-backed durable store and drives recovery the way an
// operator would: fsck first (read-only verdict on whether a sealed
// group awaits replay), then reopen. A sealed journal must recover to
// the full post-batch state; an unsealed one must leave the pre-batch
// state — and in both cases the recovered frontier agrees with the
// journal's verdict.
func TestGroupCommitCrashFsckOnDisk(t *testing.T) {
	pre := groupTransform(false)
	post := groupTransform(true)

	// Dry run on files to count mutations.
	countOps := func(dir string, plan *storage.CrashPlan, crashAt int64) (int64, error) {
		var blockSize int
		backing := func(gen int, bs int) (storage.BlockStore, error) {
			blockSize = bs
			path := filepath.Join(dir, fmt.Sprintf("gen%d.wav", gen))
			return storage.CreateDurable(path, bs, plan)
		}
		a, err := NewWithBacking([]int{4, 8}, 1, backing)
		if err != nil {
			return 0, err
		}
		if _, err := a.Append(1, baseSlab()); err != nil {
			return 0, err
		}
		preOps := plan.Ops()
		if crashAt > 0 {
			plan.ArmAt(preOps + crashAt)
		}
		slabs := make([]*ndarray.Array, 4)
		for i := range slabs {
			slabs[i] = groupSlab(i)
		}
		_, err = a.AppendBatch(1, slabs)
		_ = blockSize
		return plan.Ops() - preOps, err
	}

	dryPlan := storage.NewCrashPlan(1)
	totalOps, err := countOps(t.TempDir(), dryPlan, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A handful of crash points across the window keeps the on-disk leg
	// fast; the exhaustive sweep runs on the in-memory campaign above.
	points := []int64{1, totalOps / 4, totalOps / 2, 3 * totalOps / 4, totalOps - 1}
	for _, w := range points {
		if w < 1 {
			continue
		}
		dir := t.TempDir()
		plan := storage.NewCrashPlan(2000 + w)
		_, err := countOps(dir, plan, w)
		if !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("crash point %d: expected simulated power cut, got %v", w, err)
		}
		path := filepath.Join(dir, "gen0.wav")
		blockSize := 1 << 2 // tile bits 1 over 2 dims: 2^(1*2) coefficients
		rep, err := storage.Fsck(path, blockSize)
		if err != nil {
			t.Fatalf("crash point %d: fsck: %v", w, err)
		}
		if rep.JournalErr != "" {
			t.Fatalf("crash point %d: unrecoverable journal: %s", w, rep.JournalErr)
		}
		d, err := storage.OpenDurable(path, blockSize, nil)
		if err != nil {
			t.Fatalf("crash point %d: reopen: %v", w, err)
		}
		switch {
		case matchesTransform(t, d, []int{4, 8}, post):
			// Fine either way: a sealed journal replays to post, and a
			// fully applied + truncated journal also shows post.
		case matchesTransform(t, d, []int{4, 8}, pre):
			if rep.NeedsRecovery() {
				t.Fatalf("crash point %d: fsck saw a sealed group but recovery produced the pre-batch state", w)
			}
		default:
			t.Fatalf("crash point %d: torn group visible after fsck+reopen", w)
		}
		d.Close()
	}
}
