package appender

import (
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

func randSlab(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

func TestAppend1DNoExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := New([]int{32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := ndarray.New(32)
	for i := 0; i < 4; i++ {
		slab := randSlab(rng, 8)
		st, err := a.Append(0, slab)
		if err != nil {
			t.Fatal(err)
		}
		if st.Expansions != 0 {
			t.Errorf("append %d triggered %d expansions", i, st.Expansions)
		}
		want.SubPaste(slab, []int{i * 8})
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("reconstruction differs by %g", got.MaxAbsDiff(want))
	}
	if u := a.Used(); u[0] != 32 {
		t.Errorf("used = %v", u)
	}
}

func TestAppendTriggersExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := New([]int{8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	slab1 := randSlab(rng, 8)
	if _, err := a.Append(0, slab1); err != nil {
		t.Fatal(err)
	}
	slab2 := randSlab(rng, 8)
	st, err := a.Append(0, slab2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expansions != 1 {
		t.Fatalf("expected 1 expansion, got %d", st.Expansions)
	}
	if sh := a.Shape(); sh[0] != 16 {
		t.Fatalf("shape after expansion = %v", sh)
	}
	if st.ExpansionIO.Total() == 0 {
		t.Error("expansion reported zero I/O")
	}
	want := ndarray.New(16)
	want.SubPaste(slab1, []int{0})
	want.SubPaste(slab2, []int{8})
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("reconstruction differs by %g", got.MaxAbsDiff(want))
	}
}

func TestAppendMultipleExpansions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := New([]int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(0, randSlab(rng, 4)); err != nil {
		t.Fatal(err)
	}
	// Appending 16 values to a full 4-domain needs two doublings (4->8->16)
	// to reach 20 used... 4+16=20 > 16, so three (to 32).
	st, err := a.Append(0, randSlab(rng, 16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Expansions != 3 {
		t.Errorf("expansions = %d, want 3", st.Expansions)
	}
	if sh := a.Shape(); sh[0] != 32 {
		t.Errorf("shape = %v", sh)
	}
}

func TestAppend3DPrecipitationScenario(t *testing.T) {
	// The Figure 13 shape: 8x8 spatial grid, monthly 32-day slabs along time.
	rng := rand.New(rand.NewSource(4))
	a, err := New([]int{8, 8, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	months := 6
	full := dataset.Precipitation([]int{8, 8, 32 * months}, 11)
	expansions := 0
	for mo := 0; mo < months; mo++ {
		slab := full.SubCopy([]int{0, 0, mo * 32}, []int{8, 8, 32})
		st, err := a.Append(2, slab)
		if err != nil {
			t.Fatalf("month %d: %v", mo, err)
		}
		expansions += st.Expansions
		_ = rng
	}
	// 6 months of 32 days in a domain starting at 32: 32->64->128->256,
	// so 3 expansions.
	if expansions != 3 {
		t.Errorf("expansions = %d, want 3", expansions)
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want := ndarray.New(8, 8, 256)
	want.SubPaste(full, []int{0, 0, 0})
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("reconstruction differs by %g", got.MaxAbsDiff(want))
	}
}

func TestAppendRejectsBadSlab(t *testing.T) {
	a, err := New([]int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(0, ndarray.New(4)); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if _, err := a.Append(2, ndarray.New(4, 4)); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, err := a.Append(0, ndarray.New(4, 16)); err == nil {
		t.Error("cross extent larger than domain accepted")
	}
}

func TestAppendCrossExtentMustMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := New([]int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(1, randSlab(rng, 4, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(1, randSlab(rng, 8, 8)); err == nil {
		t.Error("mismatched cross extent accepted")
	}
}

func TestAppendUnalignedLength(t *testing.T) {
	// A slab of length 12 decomposes into dyadic runs 8+4 (not aligned to
	// one block); correctness must not depend on alignment.
	rng := rand.New(rand.NewSource(6))
	a, err := New([]int{32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1 := randSlab(rng, 12)
	if _, err := a.Append(0, s1); err != nil {
		t.Fatal(err)
	}
	s2 := randSlab(rng, 12)
	if _, err := a.Append(0, s2); err != nil {
		t.Fatal(err)
	}
	want := ndarray.New(32)
	want.SubPaste(s1, []int{0})
	want.SubPaste(s2, []int{12})
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("reconstruction differs by %g", got.MaxAbsDiff(want))
	}
}

func TestExpansionJumpsDominateMerges(t *testing.T) {
	// Figure 13's shape: expansion I/O is much larger than a routine merge.
	rng := rand.New(rand.NewSource(7))
	a, err := New([]int{8, 8, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Once the domain has outgrown a single slab, an expansion pass (which
	// rewrites the whole transform) must dwarf a routine monthly merge.
	var mergeMaxLate, expansionMax int64
	for mo := 0; mo < 18; mo++ {
		st, err := a.Append(2, randSlab(rng, 8, 8, 32))
		if err != nil {
			t.Fatal(err)
		}
		if st.ExpansionIO.Total() > expansionMax {
			expansionMax = st.ExpansionIO.Total()
		}
		if mo >= 10 && st.Expansions == 0 && st.MergeIO.Total() > mergeMaxLate {
			mergeMaxLate = st.MergeIO.Total()
		}
	}
	if expansionMax == 0 {
		t.Fatal("no expansion happened")
	}
	if mergeMaxLate == 0 {
		t.Fatal("no late merge observed")
	}
	if expansionMax < 2*mergeMaxLate {
		t.Errorf("largest expansion I/O %d should dwarf routine merge I/O %d", expansionMax, mergeMaxLate)
	}
}

func TestTotalIOMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, err := New([]int{16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for i := 0; i < 6; i++ {
		if _, err := a.Append(0, randSlab(rng, 8)); err != nil {
			t.Fatal(err)
		}
		total := a.TotalIO().Total()
		if total < prev {
			t.Fatalf("TotalIO went backwards: %d -> %d", prev, total)
		}
		prev = total
	}
	if prev == 0 {
		t.Error("no I/O recorded")
	}
}
