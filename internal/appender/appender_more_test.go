package appender

import (
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

func TestAppendAlongTwoDimensions(t *testing.T) {
	// Grow along dim 0, then along dim 1: the appender must track used
	// extents per dimension and keep the transform exact.
	rng := rand.New(rand.NewSource(20))
	a, err := New([]int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1 := randSlab(rng, 8, 8)
	if _, err := a.Append(0, s1); err != nil {
		t.Fatal(err)
	}
	// Now grow dim 1 with a slab spanning the used extent of dim 0.
	s2 := randSlab(rng, 8, 8)
	st, err := a.Append(1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Expansions != 1 {
		t.Fatalf("expected one expansion of dim 1, got %d", st.Expansions)
	}
	want := ndarray.New(8, 16)
	want.SubPaste(s1, []int{0, 0})
	want.SubPaste(s2, []int{0, 8})
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("two-axis growth differs by %g", got.MaxAbsDiff(want))
	}
	if u := a.Used(); u[0] != 8 || u[1] != 16 {
		t.Errorf("used = %v", u)
	}
}

func TestAppend1DSingleElementSlabs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, err := New([]int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for i := 0; i < 11; i++ {
		v := rng.NormFloat64()
		vals = append(vals, v)
		slab := ndarray.FromSlice([]float64{v}, 1)
		if _, err := a.Append(0, slab); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if diff := got.At(i) - v; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("position %d: %g vs %g", i, got.At(i), v)
		}
	}
	for i := len(vals); i < got.Extent(0); i++ {
		if v := got.At(i); v > 1e-9 || v < -1e-9 {
			t.Fatalf("padding position %d holds %g", i, v)
		}
	}
}

func TestAppenderRejectsNonPow2Domain(t *testing.T) {
	if _, err := New([]int{12}, 1); err == nil {
		t.Error("non-power-of-two domain accepted")
	}
}

func TestAppendStoreQueriesWork(t *testing.T) {
	// The appender's store is a live standard-form transform: its Store()
	// must serve coefficient reads consistent with Reconstruct.
	rng := rand.New(rand.NewSource(22))
	a, err := New([]int{8, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	slab := randSlab(rng, 8, 8)
	if _, err := a.Append(1, slab); err != nil {
		t.Fatal(err)
	}
	avg, err := a.Store().Get([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := slab.Sum() / 64
	if diff := avg - want; diff > 1e-8 || diff < -1e-8 {
		t.Errorf("stored average %g, want %g", avg, want)
	}
}
