package appender

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/reconstruct"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// NonStd maintains a d-dimensional dataset growing along its last (time)
// dimension under the non-standard decomposition. The paper's construction
// (§5.2–5.3, Result 5) views such data as a sequence of cubic hypercubes of
// edge N, each decomposed on its own, plus a one-dimensional Haar tree over
// the hypercube averages whose growth is handled by the standard appending
// machinery. Appends therefore never re-touch old hypercubes: a new
// hypercube costs its own tiles plus an O(log T) update of the averages
// tree (with the occasional 1-d expansion).
type NonStd struct {
	n, d, b int // hypercube edge 2^n, dimensionality, tile bits
	device  storage.BlockStore
	count   *storage.Counting
	tiling  *tile.NonStandard
	stores  []*tile.Store // one view per stored hypercube
	avgs    *Appender     // 1-d tree over hypercube averages
}

// NewNonStd creates an empty maintainer for hypercubes of edge 2^n in d
// dimensions (the last one being time), tiled with block edge 2^b.
func NewNonStd(n, d, b int) (*NonStd, error) {
	if d < 1 || n < 0 || b < 1 {
		return nil, fmt.Errorf("appender: NewNonStd(%d, %d, %d)", n, d, b)
	}
	tiling := tile.NewNonStandard(n, d, b)
	device := storage.NewMemStore(tiling.BlockSize())
	avgs, err := New([]int{1}, b)
	if err != nil {
		return nil, err
	}
	return &NonStd{
		n: n, d: d, b: b,
		device: device,
		count:  storage.NewCounting(device),
		tiling: tiling,
		avgs:   avgs,
	}, nil
}

// Hypercubes returns how many hypercubes have been appended.
func (a *NonStd) Hypercubes() int { return len(a.stores) }

// Shape returns the current data extents: N in every dimension except time,
// which is N * Hypercubes().
func (a *NonStd) Shape() []int {
	shape := make([]int, a.d)
	for i := range shape {
		shape[i] = 1 << uint(a.n)
	}
	shape[a.d-1] *= bitutil.Max(len(a.stores), 1)
	return shape
}

// TotalIO returns the cumulative block I/O across hypercube writes and the
// averages tree.
func (a *NonStd) TotalIO() storage.Stats {
	st := a.count.Stats()
	at := a.avgs.TotalIO()
	return storage.Stats{Reads: st.Reads + at.Reads, Writes: st.Writes + at.Writes}
}

// Append stores the next hypercube (a cubic array of edge 2^n covering the
// next N time steps) and folds its average into the 1-d averages tree.
func (a *NonStd) Append(cube *ndarray.Array) error {
	if cube.Dims() != a.d {
		return fmt.Errorf("appender: hypercube has %d dims, want %d", cube.Dims(), a.d)
	}
	for t := 0; t < a.d; t++ {
		if cube.Extent(t) != 1<<uint(a.n) {
			return fmt.Errorf("appender: hypercube shape %v, want edge %d", cube.Shape(), 1<<uint(a.n))
		}
	}
	hat := wavelet.TransformNonStandard(cube)
	view := storage.NewOffset(a.count, len(a.stores)*a.tiling.NumBlocks())
	st, err := tile.NewStore(view, a.tiling)
	if err != nil {
		return err
	}
	if err := tile.WriteArray(st, hat); err != nil {
		return err
	}
	a.stores = append(a.stores, st)
	origin := make([]int, a.d)
	avgSlab := ndarray.FromSlice([]float64{hat.At(origin...)}, 1)
	if _, err := a.avgs.Append(0, avgSlab); err != nil {
		return err
	}
	return nil
}

// PointAt reconstructs one cell; time is the global index along the last
// dimension.
func (a *NonStd) PointAt(coords []int) (float64, error) {
	if len(coords) != a.d {
		return 0, fmt.Errorf("appender: point %v for %d dims", coords, a.d)
	}
	edge := 1 << uint(a.n)
	h := coords[a.d-1] / edge
	if h >= len(a.stores) || coords[a.d-1] < 0 {
		return 0, fmt.Errorf("appender: time %d beyond stored data", coords[a.d-1])
	}
	local := append([]int(nil), coords[:a.d-1]...)
	local = append(local, coords[a.d-1]%edge)
	pos := make([]int, a.d)
	copy(pos, local)
	cell, _, err := reconstruct.DyadicNonStandard(a.stores[h], 0, pos)
	if err != nil {
		return 0, err
	}
	origin := make([]int, a.d)
	return cell.At(origin...), nil
}

// RangeSum evaluates the sum over the half-open box [start, start+shape),
// with the time dimension indexed globally. Whole hypercubes fully covered
// by a spatially complete box are answered from the averages tree; the rest
// descend the per-hypercube quadtrees.
func (a *NonStd) RangeSum(start, shape []int) (float64, error) {
	if len(start) != a.d || len(shape) != a.d {
		return 0, fmt.Errorf("appender: box %v+%v for %d dims", start, shape, a.d)
	}
	edge := 1 << uint(a.n)
	spatialFull := true
	for t := 0; t < a.d-1; t++ {
		if start[t] != 0 || shape[t] != edge {
			spatialFull = false
		}
	}
	t0, t1 := start[a.d-1], start[a.d-1]+shape[a.d-1] // [t0, t1)
	if t0 < 0 || t1 > edge*len(a.stores) || t1 < t0 {
		return 0, fmt.Errorf("appender: time range [%d,%d) out of bounds", t0, t1)
	}
	sum := 0.0
	volume := bitutil.IntPow(edge, a.d)
	for h := t0 / edge; h*edge < t1 && h < len(a.stores); h++ {
		lo := bitutil.Max(t0, h*edge) - h*edge
		hi := bitutil.Min(t1, (h+1)*edge) - h*edge
		if spatialFull && lo == 0 && hi == edge {
			// Whole hypercube: its average times its volume, read from the
			// averages tree's transform (one coefficient walk).
			avgs, err := a.avgs.Reconstruct()
			if err != nil {
				return 0, err
			}
			sum += avgs.At(h) * float64(volume)
			continue
		}
		s := append(append([]int(nil), start[:a.d-1]...), lo)
		sh := append(append([]int(nil), shape[:a.d-1]...), hi-lo)
		if !spatialFull {
			// General box: clamp spatial extents as given.
			copy(s[:a.d-1], start[:a.d-1])
			copy(sh[:a.d-1], shape[:a.d-1])
		} else {
			for t := 0; t < a.d-1; t++ {
				s[t], sh[t] = 0, edge
			}
		}
		part, _, err := query.RangeSumNonStandard(a.stores[h], s, sh)
		if err != nil {
			return 0, err
		}
		sum += part
	}
	return sum, nil
}

// Reconstruct reads everything back for verification.
func (a *NonStd) Reconstruct() (*ndarray.Array, error) {
	shape := a.Shape()
	out := ndarray.New(shape...)
	edge := 1 << uint(a.n)
	for h, st := range a.stores {
		hat := ndarray.New(cubicShapeOf(a.n, a.d)...)
		reader := tile.NewReader(st)
		var rerr error
		hat.Each(func(coords []int, _ float64) {
			if rerr != nil {
				return
			}
			v, err := reader.Get(coords)
			if err != nil {
				rerr = err
				return
			}
			hat.Set(v, coords...)
		})
		if rerr != nil {
			return nil, rerr
		}
		cube := wavelet.InverseNonStandard(hat)
		pastePos := make([]int, a.d)
		pastePos[a.d-1] = h * edge
		out.SubPaste(cube, pastePos)
	}
	return out, nil
}

func cubicShapeOf(n, d int) []int {
	shape := make([]int, d)
	for i := range shape {
		shape[i] = 1 << uint(n)
	}
	return shape
}
