package appender

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/parallel"
)

// BenchmarkAppender measures a fixed campaign of slab appends (no
// expansions) at several worker counts; the dyadic-piece transforms fan out
// to the pool while application stays sequential. BENCH_maintain.json
// records a baseline.
func BenchmarkAppender(b *testing.B) {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	shape := []int{256, 256}
	slab := dataset.Dense([]int{32, 256}, 5)
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := New(shape, 2)
				if err != nil {
					b.Fatal(err)
				}
				a.SetOptions(parallel.Options{Workers: w})
				for step := 0; step < 8; step++ {
					if _, err := a.Append(0, slab); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
