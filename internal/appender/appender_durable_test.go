package appender

import (
	"errors"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// durableMems is a Backing over in-memory durable stores: each generation
// keeps its raw data/journal MemStores so a test can rebuild a Durable
// over the same media after a simulated power cut.
type durableMems struct {
	data map[int]*storage.MemStore
	wal  map[int]*storage.MemStore
	plan *storage.CrashPlan
}

func newDurableMems() *durableMems {
	return &durableMems{data: map[int]*storage.MemStore{}, wal: map[int]*storage.MemStore{}}
}

func (m *durableMems) backing(gen, blockSize int) (storage.BlockStore, error) {
	m.data[gen] = storage.NewMemStore(blockSize + storage.ChecksumOverhead)
	m.wal[gen] = storage.NewMemStore(blockSize + storage.JournalOverhead)
	var data, wal storage.BlockStore = m.data[gen], m.wal[gen]
	if m.plan != nil {
		data = storage.NewCrashStore(data, m.plan)
		wal = storage.NewCrashStore(wal, m.plan)
	}
	return storage.NewDurable(data, wal)
}

// reopen rebuilds a recovered Durable over generation gen's media (no
// crash plan: power is back).
func (m *durableMems) reopen(gen int) (*storage.Durable, error) {
	return storage.NewDurable(m.data[gen], m.wal[gen])
}

func (m *durableMems) lastGen() int {
	last := -1
	for g := range m.data {
		if g > last {
			last = g
		}
	}
	return last
}

func baseSlab() *ndarray.Array {
	s := ndarray.New(4, 4)
	s.Each(func(c []int, _ float64) { s.Set(float64(4*c[0]+c[1]+1), c...) })
	return s
}

func secondSlab() *ndarray.Array {
	s := ndarray.New(4, 4)
	s.Each(func(c []int, _ float64) { s.Set(float64(10*c[0]+c[1]), c...) })
	return s
}

// transformIn embeds base (and optionally slab2 at column offset 4) in a
// domain of the given shape and returns its standard transform.
func transformIn(shape []int, withSecond bool) *ndarray.Array {
	full := ndarray.New(shape...)
	full.SubPaste(baseSlab(), []int{0, 0})
	if withSecond {
		full.SubPaste(secondSlab(), []int{0, 4})
	}
	return wavelet.TransformStandard(full)
}

// matchesTransform checks the durable store, tiled for the given domain
// shape, coefficient-for-coefficient against hat.
func matchesTransform(t *testing.T, d *storage.Durable, shape []int, hat *ndarray.Array) bool {
	t.Helper()
	a, err := NewWithBacking(shape, 1, func(gen, blockSize int) (storage.BlockStore, error) {
		if d.BlockSize() != blockSize {
			return nil, errors.New("tiling mismatch")
		}
		return d, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ok := true
	hat.Each(func(c []int, want float64) {
		if !ok {
			return
		}
		got, err := a.Store().Get(c)
		if err != nil || !approx(got, want) {
			ok = false
		}
	})
	return ok
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func isEmptyDurable(t *testing.T, d *storage.Durable, maxBlock int) bool {
	t.Helper()
	buf := make([]float64, d.BlockSize())
	for id := 0; id <= maxBlock; id++ {
		if err := d.ReadBlock(id, buf); err != nil {
			t.Fatalf("read block %d: %v", id, err)
		}
		for _, v := range buf {
			if v != 0 {
				return false
			}
		}
	}
	return true
}

func TestAppenderOnDurableBacking(t *testing.T) {
	mems := newDurableMems()
	a, err := NewWithBacking([]int{4, 4}, 1, mems.backing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Append(1, baseSlab()); err != nil {
		t.Fatal(err)
	}
	// Growing along dim 1 forces an expansion (an atomic batch on a new
	// generation) followed by a merge batch.
	st, err := a.Append(1, secondSlab())
	if err != nil {
		t.Fatal(err)
	}
	if st.Expansions != 1 {
		t.Fatalf("expansions = %d, want 1", st.Expansions)
	}
	got, err := a.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want := ndarray.New(4, 8)
	want.SubPaste(baseSlab(), []int{0, 0})
	want.SubPaste(secondSlab(), []int{0, 4})
	if !got.EqualApprox(want, 1e-9) {
		t.Fatalf("reconstruction off by %g", got.MaxAbsDiff(want))
	}
}

// TestAppenderCrashDuringAppendIsAtomic crashes the expanding append at
// every physical mutation index, recovers the surviving media, and checks
// the dataset is in exactly one of the legal states: the new generation is
// empty with the pre-append transform intact in the old generation (crash
// before the expansion batch sealed), the new generation holds the
// expanded pre-append transform (crash before the merge batch sealed), or
// it holds the full post-append transform. Never a hybrid.
func TestAppenderCrashDuringAppendIsAtomic(t *testing.T) {
	buildBase := func(mems *durableMems) *Appender {
		a, err := NewWithBacking([]int{4, 4}, 1, mems.backing)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Append(1, baseSlab()); err != nil {
			t.Fatal(err)
		}
		return a
	}
	pre44 := transformIn([]int{4, 4}, false)
	pre48 := transformIn([]int{4, 8}, false)
	post48 := transformIn([]int{4, 8}, true)

	// Dry run: count the physical mutations of the expanding append.
	dryMems := newDurableMems()
	dryMems.plan = storage.NewCrashPlan(1)
	aDry := buildBase(dryMems)
	preOps := dryMems.plan.Ops()
	if _, err := aDry.Append(1, secondSlab()); err != nil {
		t.Fatal(err)
	}
	totalOps := dryMems.plan.Ops() - preOps
	if totalOps < 4 {
		t.Fatalf("append took only %d mutations", totalOps)
	}

	var oldSeen, expandedSeen, postSeen int
	for w := int64(1); w <= totalOps; w++ {
		mems := newDurableMems()
		mems.plan = storage.NewCrashPlan(1000 + w)
		a := buildBase(mems)
		mems.plan.ArmAt(mems.plan.Ops() + w)
		_, err := a.Append(1, secondSlab())
		if w < totalOps && !errors.Is(err, storage.ErrCrashed) {
			t.Fatalf("trial %d: expected crash, got %v", w, err)
		}
		gen := mems.lastGen()
		d, err := mems.reopen(gen)
		if err != nil {
			t.Fatalf("trial %d: recover gen %d: %v", w, gen, err)
		}
		switch {
		case gen > 0 && isEmptyDurable(t, d, 16):
			// Expansion batch never sealed: the previous generation must
			// still hold the untouched pre-append transform.
			d0, err := mems.reopen(0)
			if err != nil {
				t.Fatalf("trial %d: recover gen 0: %v", w, err)
			}
			if !matchesTransform(t, d0, []int{4, 4}, pre44) {
				t.Fatalf("trial %d: old generation damaged", w)
			}
			d0.Close()
			oldSeen++
		case matchesTransform(t, d, []int{4, 8}, pre48):
			expandedSeen++
		case matchesTransform(t, d, []int{4, 8}, post48):
			postSeen++
		default:
			t.Fatalf("trial %d: hybrid transform after recovery (gen %d)", w, gen)
		}
		d.Close()
	}
	t.Logf("append campaign: %d trials, old=%d expanded=%d post=%d",
		totalOps, oldSeen, expandedSeen, postSeen)
	if oldSeen+expandedSeen == 0 || postSeen == 0 {
		t.Fatalf("campaign did not exercise both sides (old=%d expanded=%d post=%d)",
			oldSeen, expandedSeen, postSeen)
	}
}
