package wtree

import (
	"testing"
	"testing/quick"

	"github.com/shiftsplit/shiftsplit/internal/haar"
)

func TestQuickPathToRootLength(t *testing.T) {
	f := func(raw uint16) bool {
		idx := int(raw)%4095 + 1
		path := PathToRoot(idx)
		// Length = depth + 2 (itself ... root detail, plus the scaling).
		if len(path) != Depth(idx)+2 {
			return false
		}
		// Strictly decreasing indices, ending at 0.
		for i := 1; i < len(path); i++ {
			if path[i] >= path[i-1] {
				return false
			}
		}
		return path[len(path)-1] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCoversIsPartialOrder(t *testing.T) {
	n := 8
	f := func(a, b uint16) bool {
		ia := int(a)%(1<<uint(n)-1) + 1
		ib := int(b)%(1<<uint(n)-1) + 1
		// Antisymmetry: mutual cover implies equal support.
		if Covers(n, ia, ib) && Covers(n, ib, ia) {
			return haar.Support(n, ia) == haar.Support(n, ib)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtreeSizeRecurrence(t *testing.T) {
	n2 := 256
	f := func(raw uint8) bool {
		idx := int(raw)%127 + 1 // has children in a 256-tree
		l, r, ok := Children(n2, idx)
		if !ok {
			return true
		}
		return SubtreeSize(n2, idx) == 1+SubtreeSize(n2, l)+SubtreeSize(n2, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadNodeChildrenPartitionCell(t *testing.T) {
	q := NewQuadNode(3, []int{1, 2})
	covered := map[[2]int]bool{}
	for mask := 0; mask < q.NumChildren(); mask++ {
		c := q.Child(mask)
		cell := c.Cell()
		s := cell.Start()
		for x := s[0]; x < s[0]+cell.Shape()[0]; x++ {
			for y := s[1]; y < s[1]+cell.Shape()[1]; y++ {
				key := [2]int{x, y}
				if covered[key] {
					t.Fatalf("cell (%d,%d) covered twice", x, y)
				}
				covered[key] = true
			}
		}
	}
	if len(covered) != q.Cell().Volume() {
		t.Errorf("children cover %d cells, parent has %d", len(covered), q.Cell().Volume())
	}
}

func TestQuadNodeStringAndDims(t *testing.T) {
	q := NewQuadNode(2, []int{1, 2, 3})
	if q.Dims() != 3 {
		t.Errorf("Dims = %d", q.Dims())
	}
	if q.String() == "" {
		t.Error("empty String")
	}
}
