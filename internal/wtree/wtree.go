// Package wtree navigates the wavelet trees of §2.2 and §3.1 of the paper:
// the binary error tree of a one-dimensional transform and the quadtree-like
// tree of the non-standard multidimensional transform. (The standard
// multidimensional form has no single tree; it is navigated as the cross
// product of one-dimensional trees, see wavelet.PointPathStandard.)
//
// The error-tree order of package haar makes the one-dimensional tree an
// implicit binary heap over flat indices: the detail w[j,k] at index
// 2^(n-j)+k has parent at index/2 and children at 2*index and 2*index+1.
// Index 1 (w[n,0]) is the tree root; index 0 holds the scaling coefficient
// u[n,0], treated as the parent of index 1.
package wtree

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/haar"
)

// Parent returns the flat index of the parent coefficient in a transform of
// size 2^n. The parent of the root detail (index 1) is the scaling
// coefficient at index 0; index 0 has no parent and panics.
func Parent(idx int) int {
	if idx <= 0 {
		panic(fmt.Sprintf("wtree: Parent(%d)", idx))
	}
	return idx / 2
}

// Children returns the flat indices of the two children of the coefficient
// at idx in a transform of size n2 = 2^n, and ok=false for leaves (finest
// level details) and for idx 0, whose only "child" is index 1.
func Children(n2, idx int) (left, right int, ok bool) {
	if idx < 1 || idx >= n2 {
		panic(fmt.Sprintf("wtree: Children(%d, %d)", n2, idx))
	}
	if 2*idx >= n2 {
		return 0, 0, false
	}
	return 2 * idx, 2*idx + 1, true
}

// PathToRoot returns the flat indices from idx up to and including the
// scaling coefficient at index 0. For a point query this is the set of
// coefficients that must accompany idx (the access pattern exploited by the
// tiling strategy of §3).
func PathToRoot(idx int) []int {
	if idx < 0 {
		panic(fmt.Sprintf("wtree: PathToRoot(%d)", idx))
	}
	path := []int{idx}
	for idx > 0 {
		idx /= 2
		path = append(path, idx)
	}
	return path
}

// Depth returns the number of edges from idx to index 1 (the detail root).
// Index 0 has depth -1 by convention (it sits above the detail tree).
func Depth(idx int) int {
	if idx == 0 {
		return -1
	}
	d := 0
	for idx > 1 {
		idx /= 2
		d++
	}
	return d
}

// Covers reports whether the coefficient at index a covers the coefficient
// at index b (Definition 2) in a transform of size 2^n.
func Covers(n, a, b int) bool {
	return haar.Support(n, a).Covers(haar.Support(n, b))
}

// SubtreeSize returns the number of detail coefficients in the subtree of
// the error tree rooted at idx (inclusive), for a transform of size n2=2^n.
func SubtreeSize(n2, idx int) int {
	if idx < 1 || idx >= n2 {
		panic(fmt.Sprintf("wtree: SubtreeSize(%d, %d)", n2, idx))
	}
	// The subtree of w[j,k] holds one detail per level 1..j over the
	// support I[j,k], i.e. 2^j - 1 details... but clipped by the heap: the
	// implicit heap over [1, n2) is complete, so the subtree of idx has
	// size 2^h - 1 where h is the number of complete levels below idx.
	size := 0
	lo, hi := idx, idx
	for lo < n2 {
		size += bitutil.Min(hi, n2-1) - lo + 1
		lo, hi = 2*lo, 2*hi+1
	}
	return size
}

// QuadNode identifies one node of the non-standard wavelet tree: the cell
// I[Level, Pos_1] x ... x I[Level, Pos_d]. Each node carries the 2^d - 1
// detail coefficients whose support is that cell (paper Figure 7).
type QuadNode struct {
	Level int
	Pos   []int
}

// NewQuadNode builds a node, copying pos.
func NewQuadNode(level int, pos []int) QuadNode {
	return QuadNode{Level: level, Pos: append([]int(nil), pos...)}
}

// Dims returns the dimensionality of the node.
func (q QuadNode) Dims() int { return len(q.Pos) }

// Cell returns the support hypercube of the node.
func (q QuadNode) Cell() dyadic.Range {
	return dyadic.NewCubeRange(q.Level, q.Pos)
}

// Parent returns the node one level up whose cell covers this one.
func (q QuadNode) Parent() QuadNode {
	pos := make([]int, len(q.Pos))
	for i, p := range q.Pos {
		pos[i] = p / 2
	}
	return QuadNode{Level: q.Level + 1, Pos: pos}
}

// Child returns the child node in quadrant mask (bit i selects the upper
// half of dimension i). It panics at level 1, below which nodes hold
// original data rather than coefficients.
func (q QuadNode) Child(mask int) QuadNode {
	if q.Level <= 1 {
		panic("wtree: Child below level 1")
	}
	pos := make([]int, len(q.Pos))
	for i := range q.Pos {
		pos[i] = 2*q.Pos[i] + mask>>uint(i)&1
	}
	return QuadNode{Level: q.Level - 1, Pos: pos}
}

// NumChildren returns 2^d, the quadtree branching factor D of §3.2.
func (q QuadNode) NumChildren() int { return 1 << uint(len(q.Pos)) }

// CoefCoords returns the array coordinates (in the Mallat layout of package
// wavelet) of the 2^d - 1 detail coefficients stored in this node, for a
// cubic transform of edge 2^n.
func (q QuadNode) CoefCoords(n int) [][]int {
	d := len(q.Pos)
	base := 1 << uint(n-q.Level)
	out := make([][]int, 0, 1<<uint(d)-1)
	for mask := 1; mask < 1<<uint(d); mask++ {
		coords := make([]int, d)
		for i := 0; i < d; i++ {
			coords[i] = q.Pos[i]
			if mask>>uint(i)&1 == 1 {
				coords[i] += base
			}
		}
		out = append(out, coords)
	}
	return out
}

// PathToRoot returns the nodes from q up to the root node at level n.
func (q QuadNode) PathToRoot(n int) []QuadNode {
	path := []QuadNode{q}
	cur := q
	for cur.Level < n {
		cur = cur.Parent()
		path = append(path, cur)
	}
	return path
}

// QuadNodeForPoint returns the level-j node whose cell contains the point.
func QuadNodeForPoint(j int, point []int) QuadNode {
	pos := make([]int, len(point))
	for i, p := range point {
		pos[i] = p >> uint(j)
	}
	return QuadNode{Level: j, Pos: pos}
}

// String renders the node.
func (q QuadNode) String() string {
	return fmt.Sprintf("QuadNode(level=%d, pos=%v)", q.Level, q.Pos)
}
