package wtree

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/haar"
)

func TestParentChildConsistency(t *testing.T) {
	n2 := 64
	for idx := 1; idx < n2; idx++ {
		l, r, ok := Children(n2, idx)
		if !ok {
			if 2*idx < n2 {
				t.Fatalf("Children(%d) spuriously reported leaf", idx)
			}
			continue
		}
		if Parent(l) != idx || Parent(r) != idx {
			t.Fatalf("parent of children of %d: %d, %d", idx, Parent(l), Parent(r))
		}
	}
}

func TestParentMatchesLevelArithmetic(t *testing.T) {
	// w[j,k]'s parent must be w[j+1, k/2] (§2.2).
	n := 6
	for j := 1; j < n; j++ {
		for k := 0; k < 1<<uint(n-j); k++ {
			idx := haar.Index(n, j, k)
			pj, pk := haar.LevelPos(n, Parent(idx))
			if pj != j+1 || pk != k/2 {
				t.Fatalf("parent of w[%d,%d] = w[%d,%d]", j, k, pj, pk)
			}
		}
	}
	// The root detail's parent is the scaling coefficient.
	if Parent(1) != 0 {
		t.Error("parent of w[n,0] should be u[n,0]")
	}
}

func TestPathToRoot(t *testing.T) {
	path := PathToRoot(13) // 13 -> 6 -> 3 -> 1 -> 0
	want := []int{13, 6, 3, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathToRootMatchesLemma1(t *testing.T) {
	// The path of the finest coefficient covering point i must equal the
	// coefficient set of haar.PointPath.
	n := 6
	for i := 0; i < 1<<uint(n); i++ {
		leaf := haar.Index(n, 1, i/2)
		path := PathToRoot(leaf)
		fromLemma := map[int]bool{}
		for _, c := range haar.PointPath(n, i) {
			fromLemma[c.Index] = true
		}
		if len(path) != len(fromLemma) {
			t.Fatalf("point %d: path %v vs lemma set %v", i, path, fromLemma)
		}
		for _, idx := range path {
			if !fromLemma[idx] {
				t.Fatalf("point %d: path index %d not in Lemma-1 set", i, idx)
			}
		}
	}
}

func TestDepth(t *testing.T) {
	cases := map[int]int{0: -1, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3}
	for idx, want := range cases {
		if got := Depth(idx); got != want {
			t.Errorf("Depth(%d) = %d, want %d", idx, got, want)
		}
	}
}

func TestCovers(t *testing.T) {
	n := 3
	// w[2,0] covers w[1,0] and w[1,1].
	w20 := haar.Index(n, 2, 0)
	if !Covers(n, w20, haar.Index(n, 1, 0)) || !Covers(n, w20, haar.Index(n, 1, 1)) {
		t.Error("w[2,0] should cover its children")
	}
	if Covers(n, w20, haar.Index(n, 1, 2)) {
		t.Error("w[2,0] should not cover w[1,2]")
	}
	if !Covers(n, 0, w20) {
		t.Error("scaling coefficient should cover everything")
	}
}

func TestSubtreeSize(t *testing.T) {
	n2 := 16
	// Full tree below index 1: 15 details.
	if got := SubtreeSize(n2, 1); got != 15 {
		t.Errorf("SubtreeSize(1) = %d", got)
	}
	if got := SubtreeSize(n2, 2); got != 7 {
		t.Errorf("SubtreeSize(2) = %d", got)
	}
	if got := SubtreeSize(n2, 8); got != 1 {
		t.Errorf("SubtreeSize(8) = %d", got)
	}
}

func TestSubtreeSizeSumsToWhole(t *testing.T) {
	n2 := 32
	if SubtreeSize(n2, 2)+SubtreeSize(n2, 3)+1 != SubtreeSize(n2, 1) {
		t.Error("subtree sizes do not compose")
	}
}

func TestQuadNodeParentChild(t *testing.T) {
	q := NewQuadNode(2, []int{1, 3})
	p := q.Parent()
	if p.Level != 3 || p.Pos[0] != 0 || p.Pos[1] != 1 {
		t.Fatalf("parent = %v", p)
	}
	for mask := 0; mask < 4; mask++ {
		c := q.Child(mask)
		back := c.Parent()
		if back.Level != q.Level || back.Pos[0] != q.Pos[0] || back.Pos[1] != q.Pos[1] {
			t.Fatalf("child %d round trip = %v", mask, back)
		}
	}
}

func TestQuadNodeChildAtLevel1Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Child at level 1 did not panic")
		}
	}()
	NewQuadNode(1, []int{0}).Child(0)
}

func TestQuadNodeCell(t *testing.T) {
	q := NewQuadNode(2, []int{1, 0})
	cell := q.Cell()
	if cell.Volume() != 16 {
		t.Errorf("cell volume %d", cell.Volume())
	}
	if s := cell.Start(); s[0] != 4 || s[1] != 0 {
		t.Errorf("cell start %v", s)
	}
}

func TestQuadNodeCoefCoords(t *testing.T) {
	// 8x8 transform (n=3), node at level 2 pos (1,0): base = 2^(3-2) = 2.
	q := NewQuadNode(2, []int{1, 0})
	coords := q.CoefCoords(3)
	if len(coords) != 3 {
		t.Fatalf("coords = %v", coords)
	}
	want := [][]int{{3, 0}, {1, 2}, {3, 2}} // masks 01, 10, 11
	for i := range want {
		if coords[i][0] != want[i][0] || coords[i][1] != want[i][1] {
			t.Fatalf("CoefCoords = %v, want %v", coords, want)
		}
	}
}

func TestQuadNodeCoefCoordsCount3D(t *testing.T) {
	q := NewQuadNode(1, []int{0, 0, 0})
	if got := len(q.CoefCoords(3)); got != 7 {
		t.Errorf("3-d node has %d coefficients, want 7", got)
	}
	if q.NumChildren() != 8 {
		t.Errorf("NumChildren = %d", q.NumChildren())
	}
}

func TestQuadNodePathToRoot(t *testing.T) {
	q := NewQuadNode(1, []int{3, 2})
	path := q.PathToRoot(3)
	if len(path) != 3 {
		t.Fatalf("path length %d", len(path))
	}
	if path[2].Level != 3 || path[2].Pos[0] != 0 || path[2].Pos[1] != 0 {
		t.Fatalf("root = %v", path[2])
	}
	for i := 0; i+1 < len(path); i++ {
		if !path[i+1].Cell().Covers(path[i].Cell()) {
			t.Fatalf("path node %v does not cover %v", path[i+1], path[i])
		}
	}
}

func TestQuadNodeForPoint(t *testing.T) {
	q := QuadNodeForPoint(2, []int{5, 11})
	if q.Level != 2 || q.Pos[0] != 1 || q.Pos[1] != 2 {
		t.Fatalf("QuadNodeForPoint = %v", q)
	}
	start := q.Cell().Start()
	if start[0] > 5 || start[1] > 11 {
		t.Error("cell does not contain point")
	}
}

func TestNewQuadNodeCopiesPos(t *testing.T) {
	pos := []int{1, 2}
	q := NewQuadNode(1, pos)
	pos[0] = 99
	if q.Pos[0] != 1 {
		t.Error("NewQuadNode aliases pos")
	}
}
