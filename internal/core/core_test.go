package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

const tol = 1e-9

func randVec(rng *rand.Rand, size int) []float64 {
	v := make([]float64, size)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func randArray(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

// --- 1-d -------------------------------------------------------------------

func TestShiftIndexIdentityWhenBlockIsWholeDomain(t *testing.T) {
	for idx := 1; idx < 16; idx++ {
		if got := ShiftIndex(4, 4, 0, idx); got != idx {
			t.Errorf("ShiftIndex(4,4,0,%d) = %d", idx, got)
		}
	}
}

func TestShiftIndexLevelPreserving(t *testing.T) {
	// w_b[j,i] must land on w_a[j, k*2^(m-j)+i] (§4).
	n, m, k := 6, 3, 5
	for j := 1; j <= m; j++ {
		for i := 0; i < 1<<uint(m-j); i++ {
			src := haar.Index(m, j, i)
			want := haar.Index(n, j, k<<uint(m-j)+i)
			if got := ShiftIndex(n, m, k, src); got != want {
				t.Errorf("ShiftIndex(j=%d,i=%d) = %d, want %d", j, i, got, want)
			}
		}
	}
}

func TestShiftPreservesSupport(t *testing.T) {
	// The support of the shifted coefficient inside a must be the support of
	// the source inside b translated by the block start.
	n, m, k := 7, 4, 3
	blockStart := k << uint(m)
	for idx := 1; idx < 1<<uint(m); idx++ {
		src := haar.Support(m, idx)
		dst := haar.Support(n, ShiftIndex(n, m, k, idx))
		if dst.Start() != src.Start()+blockStart || dst.Len() != src.Len() {
			t.Fatalf("support mismatch at idx %d: %v -> %v", idx, src, dst)
		}
	}
}

func TestSplitTargetsCount(t *testing.T) {
	for n := 2; n <= 10; n++ {
		for m := 0; m <= n; m++ {
			got := SplitTargets(n, m, 0)
			if len(got) != n-m+1 {
				t.Errorf("n=%d m=%d: %d targets, want %d", n, m, len(got), n-m+1)
			}
		}
	}
}

func TestSplitTargetsPaperFormula(t *testing.T) {
	// g(j) = +-u/2^(j-m), positive when the block lies in the left half of
	// the level-j coefficient's support.
	n, m, k := 5, 2, 5 // block [20,23]; k=5 = binary 101
	targets := SplitTargets(n, m, k)
	// Levels 3,4,5 then the average.
	wantWeights := []float64{-0.5, 0.25, -0.125, 0.125}
	wantIdx := []int{haar.Index(n, 3, 2), haar.Index(n, 4, 1), haar.Index(n, 5, 0), 0}
	for i := range wantWeights {
		if targets[i].Index != wantIdx[i] || math.Abs(targets[i].Weight-wantWeights[i]) > tol {
			t.Fatalf("target %d = %+v, want idx %d weight %g", i, targets[i], wantIdx[i], wantWeights[i])
		}
	}
}

func TestMerge1DEqualsPaddedTransform(t *testing.T) {
	// Example 1: transform of a vector that is zero outside one dyadic block.
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		for m := 0; m <= n; m++ {
			k := rng.Intn(1 << uint(n-m))
			b := randVec(rng, 1<<uint(m))
			padded := make([]float64, 1<<uint(n))
			copy(padded[k<<uint(m):], b)
			want := haar.Transform(padded)
			got := make([]float64, 1<<uint(n))
			Merge1D(got, haar.Transform(b), k)
			for i := range want {
				if math.Abs(got[i]-want[i]) > tol {
					t.Fatalf("n=%d m=%d k=%d: coefficient %d = %g, want %g", n, m, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMerge1DBatchUpdate(t *testing.T) {
	// Example 2: merging the transform of a delta block updates the
	// transform as if the original data had been updated.
	rng := rand.New(rand.NewSource(2))
	n, m, k := 7, 4, 5
	a := randVec(rng, 1<<uint(n))
	delta := randVec(rng, 1<<uint(m))
	aHat := haar.Transform(a)
	Merge1D(aHat, haar.Transform(delta), k)
	updated := append([]float64(nil), a...)
	for i, dv := range delta {
		updated[k<<uint(m)+i] += dv
	}
	want := haar.Transform(updated)
	for i := range want {
		if math.Abs(aHat[i]-want[i]) > tol {
			t.Fatalf("coefficient %d: %g vs %g", i, aHat[i], want[i])
		}
	}
}

func TestExtract1DIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 8; n++ {
		a := randVec(rng, 1<<uint(n))
		aHat := haar.Transform(a)
		for m := 0; m <= n; m++ {
			k := rng.Intn(1 << uint(n-m))
			got := Extract1D(aHat, m, k)
			want := haar.Transform(a[k<<uint(m) : (k+1)<<uint(m)])
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-8 {
					t.Fatalf("n=%d m=%d k=%d coefficient %d: %g vs %g", n, m, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeExtractRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m, k := 6, 3, 2
	b := randVec(rng, 1<<uint(m))
	bHat := haar.Transform(b)
	aHat := make([]float64, 1<<uint(n))
	Merge1D(aHat, bHat, k)
	back := Extract1D(aHat, m, k)
	for i := range bHat {
		if math.Abs(back[i]-bHat[i]) > tol {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

// --- standard multidimensional ---------------------------------------------

func blockOf(levels, pos []int) dyadic.Range {
	r := make(dyadic.Range, len(levels))
	for i := range levels {
		r[i] = dyadic.NewInterval(levels[i], pos[i])
	}
	return r
}

func TestMergeStandardEqualsPaddedTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		shape  []int
		levels []int
		pos    []int
	}{
		{[]int{16}, []int{2}, []int{3}},
		{[]int{8, 8}, []int{2, 1}, []int{1, 3}},
		{[]int{8, 16}, []int{3, 2}, []int{0, 2}},
		{[]int{4, 4, 4}, []int{1, 1, 1}, []int{1, 0, 1}},
		{[]int{8, 8}, []int{3, 3}, []int{0, 0}}, // whole domain
		{[]int{8, 8}, []int{0, 0}, []int{5, 6}}, // single cell
	}
	for _, c := range cases {
		block := blockOf(c.levels, c.pos)
		b := randArray(rng, block.Shape()...)
		padded := ndarray.New(c.shape...)
		padded.SubPaste(b, block.Start())
		want := wavelet.TransformStandard(padded)
		got := ndarray.New(c.shape...)
		MergeStandard(got, block, wavelet.TransformStandard(b))
		if !got.EqualApprox(want, 1e-8) {
			t.Errorf("shape %v block %v: max diff %g", c.shape, block, got.MaxAbsDiff(want))
		}
	}
}

func TestMergeStandardBatchUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shape := []int{16, 8}
	block := blockOf([]int{2, 1}, []int{1, 2})
	a := randArray(rng, shape...)
	delta := randArray(rng, block.Shape()...)
	aHat := wavelet.TransformStandard(a)
	MergeStandard(aHat, block, wavelet.TransformStandard(delta))
	updated := a.Clone()
	updated.SubAdd(delta, block.Start())
	if !aHat.EqualApprox(wavelet.TransformStandard(updated), 1e-8) {
		t.Error("batch update via MergeStandard differs from re-transform")
	}
}

func TestExtractStandardIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shape := []int{16, 8}
	a := randArray(rng, shape...)
	aHat := wavelet.TransformStandard(a)
	for trial := 0; trial < 20; trial++ {
		levels := []int{rng.Intn(5), rng.Intn(4)}
		pos := []int{rng.Intn(16 >> uint(levels[0])), rng.Intn(8 >> uint(levels[1]))}
		block := blockOf(levels, pos)
		got := ExtractStandard(aHat, block)
		want := wavelet.TransformStandard(a.SubCopy(block.Start(), block.Shape()))
		if !got.EqualApprox(want, 1e-7) {
			t.Fatalf("block %v: max diff %g", block, got.MaxAbsDiff(want))
		}
	}
}

func TestScalingStandardIsBlockAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shape := []int{8, 16}
	a := randArray(rng, shape...)
	aHat := wavelet.TransformStandard(a)
	for trial := 0; trial < 20; trial++ {
		levels := []int{rng.Intn(4), rng.Intn(5)}
		pos := []int{rng.Intn(8 >> uint(levels[0])), rng.Intn(16 >> uint(levels[1]))}
		block := blockOf(levels, pos)
		want := a.SumRange(block.Start(), block.Shape()) / float64(block.Volume())
		if got := ScalingStandard(aHat, block); math.Abs(got-want) > 1e-8 {
			t.Fatalf("block %v: %g vs %g", block, got, want)
		}
	}
}

func TestShiftSplitStandardCounts(t *testing.T) {
	shape := []int{16, 16}
	block := blockOf([]int{2, 2}, []int{1, 2})
	b := ndarray.New(block.Shape()...)
	b.Fill(1)
	bHat := wavelet.TransformStandard(b)

	shifts := 0
	EachShiftStandard(shape, block, bHat, func([]int, float64) { shifts++ })
	if want := CountShiftStandard(shape, block); shifts != want {
		t.Errorf("shift visits %d, want %d", shifts, want)
	}
	splits := 0
	EachSplitStandard(shape, block, bHat, func([]int, float64) { splits++ })
	if want := CountSplitStandard(shape, block); splits != want {
		t.Errorf("split visits %d, want %d", splits, want)
	}
	// Paper §4.1: shift affects (M-1)^d, split (M+n-m)^d - (M-1)^d.
	if CountShiftStandard(shape, block) != 3*3 {
		t.Errorf("CountShiftStandard = %d", CountShiftStandard(shape, block))
	}
	if CountSplitStandard(shape, block) != (4+2)*(4+2)-9 {
		t.Errorf("CountSplitStandard = %d", CountSplitStandard(shape, block))
	}
}

func TestEachEmbedStandardCoversShiftPlusSplit(t *testing.T) {
	shape := []int{8, 8}
	block := blockOf([]int{1, 1}, []int{2, 1})
	b := ndarray.New(block.Shape()...)
	b.Fill(1)
	bHat := wavelet.TransformStandard(b)
	all, shift, split := 0, 0, 0
	EachEmbedStandard(shape, block, bHat, func([]int, float64) { all++ })
	EachShiftStandard(shape, block, bHat, func([]int, float64) { shift++ })
	EachSplitStandard(shape, block, bHat, func([]int, float64) { split++ })
	if all != shift+split {
		t.Errorf("embed %d != shift %d + split %d", all, shift, split)
	}
}

// --- non-standard multidimensional ------------------------------------------

func TestMergeNonStandardEqualsPaddedTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		n, d, m int
	}{
		{3, 2, 1}, {3, 2, 2}, {3, 2, 0}, {3, 2, 3},
		{2, 3, 1}, {3, 1, 1}, {4, 2, 2},
	}
	for _, c := range cases {
		edgeA := 1 << uint(c.n)
		shapeA := make([]int, c.d)
		for i := range shapeA {
			shapeA[i] = edgeA
		}
		edgeB := 1 << uint(c.m)
		shapeB := make([]int, c.d)
		for i := range shapeB {
			shapeB[i] = edgeB
		}
		pos := make([]int, c.d)
		start := make([]int, c.d)
		for i := range pos {
			pos[i] = rng.Intn(1 << uint(c.n-c.m))
			start[i] = pos[i] << uint(c.m)
		}
		b := randArray(rng, shapeB...)
		padded := ndarray.New(shapeA...)
		padded.SubPaste(b, start)
		want := wavelet.TransformNonStandard(padded)
		got := ndarray.New(shapeA...)
		MergeNonStandard(got, c.m, pos, wavelet.TransformNonStandard(b))
		if !got.EqualApprox(want, 1e-8) {
			t.Errorf("n=%d d=%d m=%d pos=%v: max diff %g", c.n, c.d, c.m, pos, got.MaxAbsDiff(want))
		}
	}
}

func TestMergeNonStandardBatchUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randArray(rng, 8, 8)
	delta := randArray(rng, 2, 2)
	pos := []int{2, 1}
	aHat := wavelet.TransformNonStandard(a)
	MergeNonStandard(aHat, 1, pos, wavelet.TransformNonStandard(delta))
	updated := a.Clone()
	updated.SubAdd(delta, []int{4, 2})
	if !aHat.EqualApprox(wavelet.TransformNonStandard(updated), 1e-8) {
		t.Error("non-standard batch update differs from re-transform")
	}
}

func TestExtractNonStandardIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randArray(rng, 16, 16)
	aHat := wavelet.TransformNonStandard(a)
	for m := 0; m <= 4; m++ {
		pos := []int{rng.Intn(1 << uint(4-m)), rng.Intn(1 << uint(4-m))}
		start := []int{pos[0] << uint(m), pos[1] << uint(m)}
		got := ExtractNonStandard(aHat, m, pos)
		want := wavelet.TransformNonStandard(a.SubCopy(start, []int{1 << uint(m), 1 << uint(m)}))
		if !got.EqualApprox(want, 1e-7) {
			t.Fatalf("m=%d pos=%v: max diff %g", m, pos, got.MaxAbsDiff(want))
		}
	}
}

func TestScalingNonStandardIsBlockAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randArray(rng, 8, 8, 8)
	aHat := wavelet.TransformNonStandard(a)
	for m := 0; m <= 3; m++ {
		side := 1 << uint(3-m)
		pos := []int{rng.Intn(side), rng.Intn(side), rng.Intn(side)}
		start := []int{pos[0] << uint(m), pos[1] << uint(m), pos[2] << uint(m)}
		shape := []int{1 << uint(m), 1 << uint(m), 1 << uint(m)}
		want := a.SumRange(start, shape) / float64(int(1)<<uint(3*m))
		if got := ScalingNonStandard(aHat, m, pos); math.Abs(got-want) > 1e-8 {
			t.Fatalf("m=%d pos=%v: %g vs %g", m, pos, got, want)
		}
	}
}

func TestShiftSplitNonStandardCounts(t *testing.T) {
	aHat := ndarray.New(16, 16)
	b := ndarray.New(4, 4)
	b.Fill(1)
	bHat := wavelet.TransformNonStandard(b)
	pos := []int{1, 2}

	shifts := 0
	EachShiftNonStandard(aHat.Shape(), 2, pos, bHat, func([]int, float64) { shifts++ })
	if want := CountShiftNonStandard(2, 2); shifts != want {
		t.Errorf("shift visits %d, want %d", shifts, want)
	}
	splits := 0
	EachSplitNonStandard(aHat.Shape(), 2, pos, 1.0, func([]int, float64) { splits++ })
	if want := CountSplitNonStandard(2, 4, 2); splits != want {
		t.Errorf("split visits %d, want %d", splits, want)
	}
	// Paper §4.1: M^d - 1 = 15 shifts, (2^d-1)(n-m)+1 = 7 splits.
	if shifts != 15 || splits != 7 {
		t.Errorf("shifts=%d splits=%d, want 15 and 7", shifts, splits)
	}
}

// --- property tests ----------------------------------------------------------

func TestQuickMerge1D(t *testing.T) {
	f := func(seed int64, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7
		m := int(mRaw) % (n + 1)
		k := int(kRaw) % (1 << uint(n-m))
		b := randVec(rng, 1<<uint(m))
		padded := make([]float64, 1<<uint(n))
		copy(padded[k<<uint(m):], b)
		want := haar.Transform(padded)
		got := make([]float64, 1<<uint(n))
		Merge1D(got, haar.Transform(b), k)
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtractInvertsMerge2D(t *testing.T) {
	f := func(seed int64, lRaw, p0, p1 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		level := int(lRaw) % 3
		side := 8 >> uint(level)
		block := blockOf([]int{level, level}, []int{int(p0) % side, int(p1) % side})
		b := randArray(rng, block.Shape()...)
		bHat := wavelet.TransformStandard(b)
		aHat := ndarray.New(8, 8)
		MergeStandard(aHat, block, bHat)
		return ExtractStandard(aHat, block).EqualApprox(bHat, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeCommutes(t *testing.T) {
	// Merging two disjoint blocks in either order yields the same transform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1 := randArray(rng, 4, 4)
		b2 := randArray(rng, 4, 4)
		blk1 := blockOf([]int{2, 2}, []int{0, 1})
		blk2 := blockOf([]int{2, 2}, []int{1, 0})
		h1, h2 := wavelet.TransformStandard(b1), wavelet.TransformStandard(b2)
		x := ndarray.New(8, 8)
		MergeStandard(x, blk1, h1)
		MergeStandard(x, blk2, h2)
		y := ndarray.New(8, 8)
		MergeStandard(y, blk2, h2)
		MergeStandard(y, blk1, h1)
		return x.EqualApprox(y, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickNonStandardMergeAdditive(t *testing.T) {
	// Merging every block of a partition reconstructs the full transform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randArray(rng, 8, 8)
		want := wavelet.TransformNonStandard(a)
		got := ndarray.New(8, 8)
		for p0 := 0; p0 < 2; p0++ {
			for p1 := 0; p1 < 2; p1++ {
				sub := a.SubCopy([]int{p0 * 4, p1 * 4}, []int{4, 4})
				MergeNonStandard(got, 2, []int{p0, p1}, wavelet.TransformNonStandard(sub))
			}
		}
		return got.EqualApprox(want, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
