package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func TestScalingPath1DReconstructsBlockAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for n := 1; n <= 8; n++ {
		a := randVec(rng, 1<<uint(n))
		hat := haar.Transform(a)
		for m := 0; m <= n; m++ {
			for k := 0; k < 1<<uint(n-m); k += 1 + k/2 {
				sum := 0.0
				for _, tgt := range ScalingPath1D(n, m, k) {
					sum += tgt.Weight * hat[tgt.Index]
				}
				want := 0.0
				for i := k << uint(m); i < (k+1)<<uint(m); i++ {
					want += a[i]
				}
				want /= float64(int(1) << uint(m))
				if math.Abs(sum-want) > 1e-8 {
					t.Fatalf("n=%d m=%d k=%d: %g vs %g", n, m, k, sum, want)
				}
			}
		}
	}
}

func TestScalingPath1DLength(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for m := 0; m <= n; m++ {
			if got := len(ScalingPath1D(n, m, 0)); got != n-m+1 {
				t.Errorf("n=%d m=%d: path length %d, want %d", n, m, got, n-m+1)
			}
		}
	}
}

func TestEmbedTargets1DPartition(t *testing.T) {
	// Every target of the embedding must be distinct across detail sources
	// (shift is injective) and the split targets must be disjoint from the
	// shift targets.
	n, m, k := 8, 4, 7
	targets := EmbedTargets1D(n, m, k)
	seenShift := map[int]bool{}
	for idx := 1; idx < len(targets); idx++ {
		tg := targets[idx]
		if len(tg) != 1 {
			t.Fatalf("detail %d has %d targets", idx, len(tg))
		}
		if seenShift[tg[0].Index] {
			t.Fatalf("shift target %d duplicated", tg[0].Index)
		}
		seenShift[tg[0].Index] = true
	}
	for _, tg := range targets[0] {
		if seenShift[tg.Index] {
			t.Fatalf("split target %d collides with a shift target", tg.Index)
		}
	}
}

func TestSplitWeightsSumMatchesEnergy(t *testing.T) {
	// Reconstructing the padded block from the embedding must give back b's
	// values: check one representative entry via full inversion.
	n, m, k := 6, 3, 5
	bHat := make([]float64, 1<<uint(m))
	bHat[0] = 4.0 // a constant block of value 4
	aHat := make([]float64, 1<<uint(n))
	Merge1D(aHat, bHat, k)
	a := haar.Inverse(aHat)
	for i := range a {
		want := 0.0
		if i >= k<<uint(m) && i < (k+1)<<uint(m) {
			want = 4.0
		}
		if math.Abs(a[i]-want) > 1e-9 {
			t.Fatalf("position %d: %g, want %g", i, a[i], want)
		}
	}
}

func TestQuickScalingStandardRandomBlocks(t *testing.T) {
	f := func(seed int64, l0, l1, p0, p1 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randArray(rng, 16, 16)
		aHat := wavelet.TransformStandard(a)
		lev0, lev1 := int(l0)%5, int(l1)%5
		block := blockOf(
			[]int{lev0, lev1},
			[]int{int(p0) % (16 >> uint(lev0)), int(p1) % (16 >> uint(lev1))},
		)
		got := ScalingStandard(aHat, block)
		want := a.SumRange(block.Start(), block.Shape()) / float64(block.Volume())
		return math.Abs(got-want) <= 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickExtractNonStandardRandom(t *testing.T) {
	f := func(seed int64, mRaw, p0, p1 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randArray(rng, 8, 8)
		aHat := wavelet.TransformNonStandard(a)
		m := int(mRaw) % 4
		side := 8 >> uint(m)
		pos := []int{int(p0) % side, int(p1) % side}
		got := ExtractNonStandard(aHat, m, pos)
		start := []int{pos[0] << uint(m), pos[1] << uint(m)}
		want := wavelet.TransformNonStandard(a.SubCopy(start, []int{1 << uint(m), 1 << uint(m)}))
		return got.EqualApprox(want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeSingleCellBlocksEverywhere(t *testing.T) {
	// Level-0 blocks are single cells: merging one per cell must rebuild
	// the whole transform.
	rng := rand.New(rand.NewSource(21))
	a := randArray(rng, 4, 8)
	want := wavelet.TransformStandard(a)
	got := ndarray.New(4, 8)
	cell := ndarray.New(1, 1)
	a.Each(func(coords []int, v float64) {
		cell.Set(v, 0, 0)
		MergeStandard(got, blockOf([]int{0, 0}, coords), wavelet.TransformStandard(cell))
	})
	if !got.EqualApprox(want, 1e-8) {
		t.Errorf("cell-by-cell merge differs by %g", got.MaxAbsDiff(want))
	}
}

func TestCountsMatchPaperFormulasAcrossSweep(t *testing.T) {
	for _, c := range []struct{ n, m, d int }{{6, 2, 1}, {6, 3, 2}, {4, 2, 3}, {5, 0, 2}} {
		shape := make([]int, c.d)
		levels := make([]int, c.d)
		pos := make([]int, c.d)
		for i := range shape {
			shape[i] = 1 << uint(c.n)
			levels[i] = c.m
		}
		block := blockOf(levels, pos)
		M := 1 << uint(c.m)
		wantShift := 1
		wantAll := 1
		for i := 0; i < c.d; i++ {
			wantShift *= M - 1
			wantAll *= M + c.n - c.m
		}
		if got := CountShiftStandard(shape, block); got != wantShift {
			t.Errorf("n=%d m=%d d=%d: shift count %d, want %d", c.n, c.m, c.d, got, wantShift)
		}
		if got := CountSplitStandard(shape, block); got != wantAll-wantShift {
			t.Errorf("n=%d m=%d d=%d: split count %d, want %d", c.n, c.m, c.d, got, wantAll-wantShift)
		}
		if got := CountShiftNonStandard(c.d, c.m); got != pow(M, c.d)-1 {
			t.Errorf("non-standard shift count %d", got)
		}
		if got := CountSplitNonStandard(c.d, c.n, c.m); got != (pow(2, c.d)-1)*(c.n-c.m)+1 {
			t.Errorf("non-standard split count %d", got)
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
