// Package core implements the paper's two novel operations on
// wavelet-transformed data, SHIFT and SPLIT (§4), for one-dimensional
// vectors and for both multidimensional decomposition forms.
//
// Let a be a vector of size N = 2^n and b the (k+1)-th dyadic block of a
// with size M = 2^m. Because the Haar transform is linear, the transform of
// a vector that is zero outside block k equals an embedding of the block's
// own transform b^ into positions of a^:
//
//   - SHIFT re-indexes the M-1 detail coefficients: w_b[j,i] lands at
//     w_a[j, k*2^(m-j) + i] with weight 1; and
//   - SPLIT distributes the block average u_b across the n-m coefficients
//     covering the block (weight +-1/2^(j-m) at level j, positive when the
//     block lies in the left half of the coefficient's support) plus the
//     overall average (weight 1/2^(n-m)).
//
// The same embedding applied with addition turns a batch of updates into a
// transform-domain merge (Example 2), and its inverse extracts the exact
// transform of a dyadic subregion (§5.4). Multidimensional standard-form
// embeddings are tensor products of the one-dimensional embedding;
// non-standard embeddings shift all details and split the single block
// average along the quadtree path to the root.
package core

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// Target is one destination coefficient of an embedding, identified by flat
// 1-d index, with the weight multiplying the source coefficient.
type Target struct {
	Index  int
	Weight float64
}

// ShiftIndex returns the flat index in the size-2^n transform that the
// detail coefficient at flat index idx (>= 1) of the size-2^m transform of
// dyadic block k maps to (the SHIFT re-indexing function f of §4).
func ShiftIndex(n, m, k, idx int) int {
	if m > n || k < 0 || k >= 1<<uint(n-m) {
		panic(fmt.Sprintf("core: ShiftIndex(n=%d, m=%d, k=%d)", n, m, k))
	}
	j, i := haar.LevelPos(m, idx)
	return haar.Index(n, j, k<<uint(m-j)+i)
}

// SplitTargets returns the n-m+1 weighted targets receiving the block
// average under SPLIT: one detail per level in [m+1, n] plus the overall
// average at index 0 (the function g of §4).
func SplitTargets(n, m, k int) []Target {
	if m > n || k < 0 || k >= 1<<uint(n-m) {
		panic(fmt.Sprintf("core: SplitTargets(n=%d, m=%d, k=%d)", n, m, k))
	}
	out := make([]Target, 0, n-m+1)
	scale := 1.0
	for j := m + 1; j <= n; j++ {
		scale /= 2
		w := scale
		if k>>uint(j-m-1)&1 == 1 { // block in the right half at level j
			w = -w
		}
		out = append(out, Target{Index: haar.Index(n, j, k>>uint(j-m)), Weight: w})
	}
	out = append(out, Target{Index: 0, Weight: scale})
	return out
}

// EmbedTargets1D returns, for every source index of a size-2^m block
// transform, the weighted targets in the size-2^n transform: a single
// shifted position for details, the split fan-out for the average.
func EmbedTargets1D(n, m, k int) [][]Target {
	size := 1 << uint(m)
	out := make([][]Target, size)
	out[0] = SplitTargets(n, m, k)
	for idx := 1; idx < size; idx++ {
		out[idx] = []Target{{Index: ShiftIndex(n, m, k, idx), Weight: 1}}
	}
	return out
}

// Merge1D adds the embedding of bHat (the transform of dyadic block k of
// size 2^m) into aHat (a transform of size 2^n). If aHat previously held
// the transform of vector a, afterwards it holds the transform of a with
// the block's (inverse-transformed) values added — which covers both
// construction from zero (Example 1) and batched updates (Example 2).
func Merge1D(aHat, bHat []float64, k int) {
	n := bitutil.Log2(len(aHat))
	m := bitutil.Log2(len(bHat))
	for idx := 1; idx < len(bHat); idx++ {
		if bHat[idx] != 0 {
			aHat[ShiftIndex(n, m, k, idx)] += bHat[idx]
		}
	}
	for _, t := range SplitTargets(n, m, k) {
		aHat[t.Index] += t.Weight * bHat[0]
	}
}

// Extract1D computes the exact transform of the (k+1)-th dyadic block of
// size 2^m directly from aHat, using the inverse SHIFT for details and the
// inverse SPLIT (a root-path descent) for the block average. It touches
// M-1 shifted coefficients plus the n-m+1 path coefficients.
func Extract1D(aHat []float64, m, k int) []float64 {
	n := bitutil.Log2(len(aHat))
	out := make([]float64, 1<<uint(m))
	for idx := 1; idx < len(out); idx++ {
		out[idx] = aHat[ShiftIndex(n, m, k, idx)]
	}
	out[0] = haar.ScalingAt(aHat, m, k)
	return out
}

// ---------------------------------------------------------------------------
// Standard multidimensional form
// ---------------------------------------------------------------------------

// checkBlock validates a dyadic block against a transform shape and returns
// per-dimension (n_t, m_t, k_t).
func checkBlock(shape []int, block dyadic.Range) (n, m, k []int) {
	if len(shape) != block.Dims() {
		panic(fmt.Sprintf("core: block %v for shape %v", block, shape))
	}
	n = make([]int, len(shape))
	m = make([]int, len(shape))
	k = make([]int, len(shape))
	for t, iv := range block {
		n[t] = bitutil.Log2(shape[t])
		m[t] = iv.Level
		k[t] = iv.Pos
		if m[t] > n[t] || k[t] >= 1<<uint(n[t]-m[t]) {
			panic(fmt.Sprintf("core: block %v out of bounds for shape %v", block, shape))
		}
	}
	return n, m, k
}

// EachEmbedStandard enumerates the complete embedding of bHat (the standard
// transform of the block's contents) into a standard transform of the given
// shape, calling visit with target coordinates (reused between calls) and
// the additive delta. Deltas for a common target are NOT merged; callers
// that need per-coefficient totals should accumulate.
func EachEmbedStandard(shape []int, block dyadic.Range, bHat *ndarray.Array, visit func(coords []int, delta float64)) {
	EachEmbedStandardFiltered(shape, block, bHat, visit, false)
}

// EachShiftStandard visits only the pure-SHIFT part of the embedding: source
// coefficients that are details in every dimension, (M_1-1)*...*(M_d-1) of
// them (§4.1), each landing on exactly one target with weight 1.
func EachShiftStandard(shape []int, block dyadic.Range, bHat *ndarray.Array, visit func(coords []int, delta float64)) {
	n, m, k := checkBlock(shape, block)
	d := len(shape)
	coords := make([]int, d)
	bHat.Each(func(src []int, v float64) {
		for t := 0; t < d; t++ {
			if src[t] == 0 {
				return
			}
		}
		for t := 0; t < d; t++ {
			coords[t] = ShiftIndex(n[t], m[t], k[t], src[t])
		}
		visit(coords, v)
	})
}

// EachSplitStandard visits the SPLIT part of the embedding: contributions of
// every source coefficient that is a scaling coefficient in at least one
// dimension, (M + log(N/M))^d - (M-1)^d contributions in the cubic case.
func EachSplitStandard(shape []int, block dyadic.Range, bHat *ndarray.Array, visit func(coords []int, delta float64)) {
	EachEmbedStandardFiltered(shape, block, bHat, visit, true)
}

// EachEmbedStandardFiltered is EachEmbedStandard restricted to sources with
// (splitOnly) or without regard to a zero index in some dimension. It exists
// so that engines can account SHIFT and SPLIT I/O separately while using
// one code path.
func EachEmbedStandardFiltered(shape []int, block dyadic.Range, bHat *ndarray.Array, visit func(coords []int, delta float64), splitOnly bool) {
	n, m, k := checkBlock(shape, block)
	d := len(shape)
	perDim := make([][][]Target, d)
	for t := 0; t < d; t++ {
		perDim[t] = EmbedTargets1D(n[t], m[t], k[t])
	}
	coords := make([]int, d)
	choice := make([]int, d)
	bHat.Each(func(src []int, v float64) {
		if splitOnly {
			hasScaling := false
			for t := 0; t < d; t++ {
				if src[t] == 0 {
					hasScaling = true
					break
				}
			}
			if !hasScaling {
				return
			}
		}
		lists := make([][]Target, d)
		for t := 0; t < d; t++ {
			lists[t] = perDim[t][src[t]]
		}
		for t := range choice {
			choice[t] = 0
		}
		for {
			w := v
			for t := 0; t < d; t++ {
				tt := lists[t][choice[t]]
				coords[t] = tt.Index
				w *= tt.Weight
			}
			visit(coords, w)
			t := d - 1
			for ; t >= 0; t-- {
				choice[t]++
				if choice[t] < len(lists[t]) {
					break
				}
				choice[t] = 0
			}
			if t < 0 {
				break
			}
		}
	})
}

// MergeStandard adds the embedding of bHat at the given dyadic block into
// the standard transform aHat in memory.
func MergeStandard(aHat *ndarray.Array, block dyadic.Range, bHat *ndarray.Array) {
	EachEmbedStandard(aHat.Shape(), block, bHat, func(coords []int, delta float64) {
		aHat.Add(delta, coords...)
	})
}

// ScalingPath1D returns the weighted coefficients of a size-2^n transform
// whose combination yields the scaling coefficient u[m,k] (the inverse
// SPLIT): the overall average plus one +-1-weighted detail per level above m.
func ScalingPath1D(n, m, k int) []Target {
	out := make([]Target, 0, n-m+1)
	out = append(out, Target{Index: 0, Weight: 1})
	for j := n; j > m; j-- {
		w := 1.0
		if k>>uint(j-m-1)&1 == 1 {
			w = -1
		}
		out = append(out, Target{Index: haar.Index(n, j, k>>uint(j-m)), Weight: w})
	}
	return out
}

// ExtractStandard computes the exact standard transform of the contents of
// a dyadic block directly from aHat: inverse SHIFT copies the detail
// tensor positions, inverse SPLIT reconstructs the per-dimension scaling
// components via root paths.
func ExtractStandard(aHat *ndarray.Array, block dyadic.Range) *ndarray.Array {
	shape := aHat.Shape()
	n, m, k := checkBlock(shape, block)
	d := len(shape)
	// Per-dimension source lists: for block-transform index i, the weighted
	// coefficients of aHat along that dimension whose combination yields it.
	perDim := make([][][]Target, d)
	for t := 0; t < d; t++ {
		size := 1 << uint(m[t])
		lists := make([][]Target, size)
		lists[0] = ScalingPath1D(n[t], m[t], k[t])
		for idx := 1; idx < size; idx++ {
			lists[idx] = []Target{{Index: ShiftIndex(n[t], m[t], k[t], idx), Weight: 1}}
		}
		perDim[t] = lists
	}
	out := ndarray.New(block.Shape()...)
	coords := make([]int, d)
	choice := make([]int, d)
	out.Each(func(dst []int, _ float64) {
		lists := make([][]Target, d)
		for t := 0; t < d; t++ {
			lists[t] = perDim[t][dst[t]]
		}
		for t := range choice {
			choice[t] = 0
		}
		sum := 0.0
		for {
			w := 1.0
			for t := 0; t < d; t++ {
				tt := lists[t][choice[t]]
				coords[t] = tt.Index
				w *= tt.Weight
			}
			sum += w * aHat.At(coords...)
			t := d - 1
			for ; t >= 0; t-- {
				choice[t]++
				if choice[t] < len(lists[t]) {
					break
				}
				choice[t] = 0
			}
			if t < 0 {
				break
			}
		}
		out.Set(sum, dst...)
	})
	return out
}

// ScalingStandard returns the average of the original data over a dyadic
// block, reconstructed from the standard transform via the tensor product
// of per-dimension root paths.
func ScalingStandard(aHat *ndarray.Array, block dyadic.Range) float64 {
	shape := aHat.Shape()
	n, m, k := checkBlock(shape, block)
	d := len(shape)
	lists := make([][]Target, d)
	for t := 0; t < d; t++ {
		lists[t] = ScalingPath1D(n[t], m[t], k[t])
	}
	coords := make([]int, d)
	choice := make([]int, d)
	sum := 0.0
	for {
		w := 1.0
		for t := 0; t < d; t++ {
			tt := lists[t][choice[t]]
			coords[t] = tt.Index
			w *= tt.Weight
		}
		sum += w * aHat.At(coords...)
		t := d - 1
		for ; t >= 0; t-- {
			choice[t]++
			if choice[t] < len(lists[t]) {
				break
			}
			choice[t] = 0
		}
		if t < 0 {
			return sum
		}
	}
}

// ---------------------------------------------------------------------------
// Non-standard multidimensional form
// ---------------------------------------------------------------------------

func checkCubicBlock(shape []int, m int, pos []int) (n, d int) {
	d = len(shape)
	if len(pos) != d {
		panic(fmt.Sprintf("core: block pos %v for %d-d transform", pos, d))
	}
	n = bitutil.Log2(shape[0])
	for t := 1; t < d; t++ {
		if shape[t] != shape[0] {
			panic(fmt.Sprintf("core: non-standard transform must be cubic, got %v", shape))
		}
	}
	if m > n {
		panic(fmt.Sprintf("core: block level %d exceeds domain level %d", m, n))
	}
	for t := 0; t < d; t++ {
		if pos[t] < 0 || pos[t] >= 1<<uint(n-m) {
			panic(fmt.Sprintf("core: block pos %v out of range at level %d", pos, m))
		}
	}
	return n, d
}

// EachShiftNonStandard visits the SHIFT part of the non-standard embedding:
// all M^d - 1 detail coefficients of bHat re-indexed into the enclosing
// cubic transform (§4.1). Target coordinates are reused between calls.
func EachShiftNonStandard(shape []int, m int, pos []int, bHat *ndarray.Array, visit func(coords []int, delta float64)) {
	n, d := checkCubicBlock(shape, m, pos)
	coords := make([]int, d)
	bHat.Each(func(src []int, v float64) {
		origin := true
		for t := 0; t < d; t++ {
			if src[t] != 0 {
				origin = false
				break
			}
		}
		if origin {
			return
		}
		j, subband, p := wavelet.NonStdLevel(m, src)
		base := 1 << uint(n-j)
		for t := 0; t < d; t++ {
			coords[t] = pos[t]<<uint(m-j) + p[t]
			if subband[t] {
				coords[t] += base
			}
		}
		visit(coords, v)
	})
}

// EachSplitNonStandard visits the SPLIT part: the block average u feeds the
// (2^d - 1)(n - m) details on the quadtree path above the block plus the
// overall average (§4.1). Target coordinates are reused between calls.
func EachSplitNonStandard(shape []int, m int, pos []int, u float64, visit func(coords []int, delta float64)) {
	n, d := checkCubicBlock(shape, m, pos)
	coords := make([]int, d)
	attn := u
	den := float64(int64(1) << uint(d))
	for j := m + 1; j <= n; j++ {
		attn /= den
		base := 1 << uint(n-j)
		cell := make([]int, d)
		for t := 0; t < d; t++ {
			cell[t] = pos[t] >> uint(j-m)
		}
		for mask := 1; mask < 1<<uint(d); mask++ {
			w := attn
			for t := 0; t < d; t++ {
				coords[t] = cell[t]
				if mask>>uint(t)&1 == 1 {
					coords[t] += base
					if pos[t]>>uint(j-m-1)&1 == 1 {
						w = -w
					}
				}
			}
			visit(coords, w)
		}
	}
	for t := 0; t < d; t++ {
		coords[t] = 0
	}
	visit(coords, attn)
}

// MergeNonStandard adds the embedding of bHat (the non-standard transform
// of a cubic block of edge 2^m at position pos, in block units) into the
// cubic non-standard transform aHat in memory.
func MergeNonStandard(aHat *ndarray.Array, m int, pos []int, bHat *ndarray.Array) {
	EachShiftNonStandard(aHat.Shape(), m, pos, bHat, func(coords []int, delta float64) {
		aHat.Add(delta, coords...)
	})
	origin := make([]int, aHat.Dims())
	EachSplitNonStandard(aHat.Shape(), m, pos, bHat.At(origin...), func(coords []int, delta float64) {
		aHat.Add(delta, coords...)
	})
}

// ScalingNonStandard returns the average of the original data over the
// cubic block at level m, position pos, reconstructed by descending the
// quadtree from the root (the inverse SPLIT).
func ScalingNonStandard(aHat *ndarray.Array, m int, pos []int) float64 {
	n, d := checkCubicBlock(aHat.Shape(), m, pos)
	origin := make([]int, d)
	u := aHat.At(origin...)
	coords := make([]int, d)
	for j := n; j > m; j-- {
		base := 1 << uint(n-j)
		for mask := 1; mask < 1<<uint(d); mask++ {
			w := 1.0
			for t := 0; t < d; t++ {
				coords[t] = pos[t] >> uint(j-m)
				if mask>>uint(t)&1 == 1 {
					coords[t] += base
					if pos[t]>>uint(j-m-1)&1 == 1 {
						w = -w
					}
				}
			}
			u += w * aHat.At(coords...)
		}
	}
	return u
}

// ExtractNonStandard computes the exact non-standard transform of the cubic
// block at level m, position pos, directly from aHat (inverse SHIFT for
// details, inverse SPLIT for the average).
func ExtractNonStandard(aHat *ndarray.Array, m int, pos []int) *ndarray.Array {
	n, d := checkCubicBlock(aHat.Shape(), m, pos)
	edge := 1 << uint(m)
	shape := make([]int, d)
	for t := range shape {
		shape[t] = edge
	}
	out := ndarray.New(shape...)
	coords := make([]int, d)
	out.Each(func(dst []int, _ float64) {
		origin := true
		for t := 0; t < d; t++ {
			if dst[t] != 0 {
				origin = false
				break
			}
		}
		if origin {
			return
		}
		j, subband, p := wavelet.NonStdLevel(m, dst)
		base := 1 << uint(n-j)
		for t := 0; t < d; t++ {
			coords[t] = pos[t]<<uint(m-j) + p[t]
			if subband[t] {
				coords[t] += base
			}
		}
		out.Set(aHat.At(coords...), dst...)
	})
	origin := make([]int, d)
	out.Set(ScalingNonStandard(aHat, m, pos), origin...)
	return out
}

// CountShiftStandard and friends return the exact coefficient counts of §4.1
// for validation against Table 1 and the Result proofs.

// CountShiftStandard returns prod_t (M_t - 1), the coefficients affected by
// a standard-form SHIFT.
func CountShiftStandard(shape []int, block dyadic.Range) int {
	c := 1
	for _, iv := range block {
		c *= iv.Len() - 1
	}
	return c
}

// CountSplitStandard returns prod_t (M_t + n_t - m_t) - prod_t (M_t - 1),
// the contributions calculated by a standard-form SPLIT.
func CountSplitStandard(shape []int, block dyadic.Range) int {
	n, m, _ := checkBlock(shape, block)
	all, shifts := 1, 1
	for t, iv := range block {
		all *= iv.Len() + n[t] - m[t]
		shifts *= iv.Len() - 1
	}
	return all - shifts
}

// CountShiftNonStandard returns M^d - 1.
func CountShiftNonStandard(d, m int) int {
	return bitutil.IntPow(1<<uint(m), d) - 1
}

// CountSplitNonStandard returns (2^d - 1)(n - m) + 1.
func CountSplitNonStandard(d, n, m int) int {
	return (bitutil.Pow2(d)-1)*(n-m) + 1
}
