package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func newTestIngester(t *testing.T, cfg Config) *Ingester {
	t.Helper()
	app, err := appender.New([]int{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = in.Close() }) // idempotent; tests may close early
	return in
}

// slabCol builds a 4x1 slab (a column appended along dim 1) whose cells
// are seeded deterministically.
func slabCol(seed int) *ndarray.Array {
	vals := make([]float64, 4)
	for i := range vals {
		vals[i] = float64(seed*10 + i + 1)
	}
	return ndarray.FromSlice(vals, 4, 1)
}

// TestGroupCommitAmortization is the tentpole property: many concurrent
// client appends collapse into few group commits, visible in the device's
// Commits counter.
func TestGroupCommitAmortization(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, FlushInterval: 20 * time.Millisecond})
	const clients = 32
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = in.Enqueue(context.Background(), slabCol(c))
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	st := in.Stats()
	if st.CommittedSlabs != clients {
		t.Fatalf("committed %d slabs, want %d", st.CommittedSlabs, clients)
	}
	if st.Groups >= clients/4 {
		t.Errorf("%d groups for %d appends: amortization below 4x", st.Groups, clients)
	}
	if st.AppendsPerJournalGroup <= 0 {
		t.Errorf("appends-per-journal-group not computed: %+v", st)
	}
	// Device truth: merge commits = group commits, so the ratio holds at
	// the Commits counter too (expansions commit separately).
	if st.MergeIO.Commits != st.Groups {
		t.Errorf("merge commits %d != groups %d", st.MergeIO.Commits, st.Groups)
	}
	if got := st.Used[1]; got != clients {
		t.Errorf("used[1] = %d, want %d", got, clients)
	}
	if st.CommitP99Millis < st.CommitP50Millis {
		t.Errorf("p99 %v < p50 %v", st.CommitP99Millis, st.CommitP50Millis)
	}
}

// TestReconstructMatchesOracle checks committed ⇒ queryable: every
// Result.Offset points at exactly the cells the client sent.
func TestReconstructMatchesOracle(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, FlushInterval: time.Millisecond})
	rng := rand.New(rand.NewSource(7))
	const clients = 24
	type sent struct {
		slab *ndarray.Array
		res  Result
	}
	out := make([]sent, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		vals := make([]float64, 4*2)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*100) / 4
		}
		slab := ndarray.FromSlice(vals, 4, 2)
		out[c].slab = slab
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := in.Enqueue(context.Background(), out[c].slab)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			out[c].res = res
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	got, err := in.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range out {
		off := s.res.Offset
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				want := s.slab.At(i, j)
				have := got.At(off[0]+i, off[1]+j)
				if math.Abs(want-have) > 1e-9 {
					t.Fatalf("client %d cell (%d,%d): got %g want %g", c, i, j, have, want)
				}
			}
		}
		if v, err := in.Point([]int{0, off[1]}); err != nil {
			t.Fatalf("point: %v", err)
		} else if math.Abs(v-s.slab.At(0, 0)) > 1e-9 {
			t.Fatalf("client %d point query: got %g want %g", c, v, s.slab.At(0, 0))
		}
	}
}

// TestBackpressure checks the queue bound sheds with ErrBacklog while
// staged requests still commit.
func TestBackpressure(t *testing.T) {
	in := newTestIngester(t, Config{
		Dim:           1,
		MaxQueueSlabs: 2,
		FlushInterval: 200 * time.Millisecond,
	})
	done := make(chan error, 2)
	for c := 0; c < 2; c++ {
		go func(c int) {
			_, err := in.Enqueue(context.Background(), slabCol(c))
			done <- err
		}(c)
	}
	waitFor(t, func() bool { return in.Stats().QueueSlabs == 2 })
	if _, err := in.Enqueue(context.Background(), slabCol(9)); !errors.Is(err, ErrBacklog) {
		t.Fatalf("enqueue into a full queue: err = %v, want ErrBacklog", err)
	}
	for c := 0; c < 2; c++ {
		if err := <-done; err != nil {
			t.Fatalf("staged request failed: %v", err)
		}
	}
	st := in.Stats()
	if st.Shed != 1 || st.CommittedSlabs != 2 {
		t.Fatalf("shed=%d committed=%d, want 1 and 2", st.Shed, st.CommittedSlabs)
	}
}

// TestDeadlineWithdrawsUnpicked checks the 503 guarantee: a request
// abandoned before the commit loop claims it is withdrawn and provably
// not committed.
func TestDeadlineWithdrawsUnpicked(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, FlushInterval: 300 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := in.Enqueue(ctx, slabCol(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The withdrawn slab must not surface later: the next append lands at
	// the untouched frontier.
	res, err := in.Enqueue(context.Background(), slabCol(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Offset[1] != 0 {
		t.Fatalf("offset %v after a withdrawn request, want frontier 0", res.Offset)
	}
	st := in.Stats()
	if st.TimedOut != 1 || st.CommittedSlabs != 1 || st.Used[1] != 1 {
		t.Fatalf("timedOut=%d committed=%d used=%v", st.TimedOut, st.CommittedSlabs, st.Used)
	}
}

// TestGateSheds checks the degraded/breaker seam: a failing gate sheds
// before staging, with the gate's own error.
func TestGateSheds(t *testing.T) {
	gateErr := fmt.Errorf("serving: %w", storage.ErrUnavailable)
	var allow bool
	in := newTestIngester(t, Config{
		Dim:           1,
		FlushInterval: time.Millisecond,
		Gate: func() error {
			if !allow {
				return gateErr
			}
			return nil
		},
	})
	if _, err := in.Enqueue(context.Background(), slabCol(1)); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	allow = true
	if _, err := in.Enqueue(context.Background(), slabCol(1)); err != nil {
		t.Fatalf("gate open: %v", err)
	}
	st := in.Stats()
	if st.Shed != 1 || st.CommittedSlabs != 1 {
		t.Fatalf("shed=%d committed=%d", st.Shed, st.CommittedSlabs)
	}
}

// TestValidationRejects checks malformed slabs fail fast as ErrInvalid
// without reaching the appender.
func TestValidationRejects(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, FlushInterval: time.Millisecond})
	cases := []struct {
		name string
		slab *ndarray.Array
	}{
		{"wrong dims", ndarray.FromSlice([]float64{1, 2}, 2)},
		{"cross not pow2", ndarray.FromSlice(make([]float64, 3), 3, 1)},
		{"cross exceeds domain", ndarray.FromSlice(make([]float64, 8), 8, 1)},
	}
	for _, tc := range cases {
		if _, err := in.Enqueue(context.Background(), tc.slab); !errors.Is(err, query.ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
	// Fix the cross-section at 4, then offer a mismatching one.
	if _, err := in.Enqueue(context.Background(), slabCol(0)); err != nil {
		t.Fatal(err)
	}
	bad := ndarray.FromSlice(make([]float64, 2), 2, 1)
	if _, err := in.Enqueue(context.Background(), bad); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("cross mismatch: err = %v, want ErrInvalid", err)
	}
	if st := in.Stats(); st.CommittedSlabs != 1 {
		t.Fatalf("committed %d, want 1", st.CommittedSlabs)
	}
}

func TestNewSlab(t *testing.T) {
	if _, err := NewSlab([]int{2, 2}, []float64{1, 2, 3}); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("shape/values mismatch: %v", err)
	}
	if _, err := NewSlab([]int{0, 2}, nil); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("zero extent: %v", err)
	}
	if _, err := NewSlab(nil, nil); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("no shape: %v", err)
	}
	if _, err := NewSlab([]int{2}, []float64{1, math.NaN()}); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("NaN cell: %v", err)
	}
	if _, err := NewSlab([]int{2}, []float64{1, math.Inf(1)}); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("Inf cell: %v", err)
	}
	if _, err := NewSlab([]int{1 << 20, 1 << 20}, nil); !errors.Is(err, query.ErrInvalid) {
		t.Errorf("overflowing shape: %v", err)
	}
	a, err := NewSlab([]int{2, 2}, []float64{1, 2, 3, 4})
	if err != nil || a.At(1, 1) != 4 {
		t.Fatalf("valid slab: %v, %v", a, err)
	}
}

// TestStream checks stream items feed the synopsis and reject non-finite
// values, and that per-item costs surface in stats.
func TestStream(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, StreamK: 8, StreamBufBits: 2})
	if _, err := in.AddStream([]float64{1, math.Inf(-1)}); !errors.Is(err, query.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = math.Sin(float64(i))
	}
	n, err := in.AddStream(vals)
	if err != nil || n != 64 {
		t.Fatalf("AddStream: n=%d err=%v", n, err)
	}
	st := in.Stats()
	if st.StreamItems != 64 {
		t.Fatalf("stream items %d, want 64", st.StreamItems)
	}
	if st.StreamTotalPerItem <= 0 || st.StreamCrestPerItem < 0 {
		t.Fatalf("per-item costs not surfaced: %+v", st)
	}
	if st.ItemsPerSec <= 0 {
		t.Fatalf("items/sec not computed")
	}
}

// TestCloseDrains checks Close commits everything already admitted and
// subsequent operations fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	in := newTestIngester(t, Config{Dim: 1, FlushInterval: 100 * time.Millisecond})
	done := make(chan Result, 1)
	go func() {
		res, err := in.Enqueue(context.Background(), slabCol(1))
		if err != nil {
			t.Errorf("enqueue during close: %v", err)
		}
		done <- res
	}()
	waitFor(t, func() bool { return in.Stats().QueueSlabs == 1 })
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.Cells != 4 {
		t.Fatalf("drained result %+v", res)
	}
	if _, err := in.Enqueue(context.Background(), slabCol(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := in.AddStream([]float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream after close: err = %v, want ErrClosed", err)
	}
}

func TestHistogram(t *testing.T) {
	if numHistBuckets != len(histBounds)+1 {
		t.Fatalf("numHistBuckets = %d, want %d", numHistBuckets, len(histBounds)+1)
	}
	var h latencyHist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
	for i := 0; i < 90; i++ {
		h.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Second) // overflow bucket
	}
	if got := h.quantile(0.50); got != time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.quantile(0.99); got != 10*time.Second {
		t.Fatalf("p99 = %v (overflow should report the observed max)", got)
	}
	if cs := h.counts(); len(cs) != 2 || cs[0].N != 90 || !cs[1].Overflow {
		t.Fatalf("counts = %+v", cs)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
