package ingest

import "time"

// histBounds are the fixed upper bounds of the commit-latency histogram
// buckets (a final implicit bucket catches everything slower). Fixed
// buckets keep observation O(1) and lock-cheap; quantiles are read off
// the cumulative counts, so they are exact to bucket resolution.
var histBounds = []time.Duration{
	100 * time.Microsecond,
	200 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
}

// numHistBuckets is len(histBounds) plus the overflow bucket.
const numHistBuckets = 16

// latencyHist is a fixed-bucket latency histogram. Not self-locking: the
// Ingester guards it with its counter mutex.
type latencyHist struct {
	n   [numHistBuckets]int64
	tot int64
	max time.Duration
}

func (h *latencyHist) observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.n[i]++
	h.tot++
	if d > h.max {
		h.max = d
	}
}

// quantile returns the upper bound of the bucket holding the q-th sample
// (the overflow bucket reports the maximum observed). Zero samples → 0.
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.tot == 0 {
		return 0
	}
	rank := int64(q * float64(h.tot-1))
	var seen int64
	for i, c := range h.n {
		seen += c
		if seen > rank {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// LatencyCount is one histogram bucket on the wire: the count of commits
// at most LEMillis (the overflow bucket has LEMillis = +Inf encoded as 0
// with Overflow set).
type LatencyCount struct {
	LEMillis float64 `json:"le_ms,omitempty"`
	Overflow bool    `json:"overflow,omitempty"`
	N        int64   `json:"n"`
}

// counts returns the non-empty buckets.
func (h *latencyHist) counts() []LatencyCount {
	var out []LatencyCount
	for i, c := range h.n {
		if c == 0 {
			continue
		}
		b := LatencyCount{N: c}
		if i < len(histBounds) {
			b.LEMillis = histBounds[i].Seconds() * 1e3
		} else {
			b.Overflow = true
		}
		out = append(out, b)
	}
	return out
}
