// Package ingest is the write-path counterpart of the serving subsystem:
// a front door that accepts append slabs (and scalar stream items) from
// many concurrent clients and turns them into the batched maintenance
// operations the SHIFT-SPLIT engines are built for.
//
// The paper's appending result makes a single slab cheap; what a
// production write path needs on top is amortization ACROSS clients. The
// Ingester stages incoming slabs in a bounded queue and a single commit
// loop group-commits them: every queued slab is folded into one
// Appender.AppendBatch call, so domain expansion runs once for the whole
// group and the durable backing seals all of it with one journal group
// (one fsync pair) instead of one per client. Group size is driven by two
// thresholds — a slab-count cap and a short gathering window — mirroring
// classic WAL group commit.
//
// Ingestion is bounded the same way the read path is: when the staging
// queue is full new requests are shed immediately with ErrBacklog (the
// HTTP layer maps it to 429), and a request abandoned by its deadline
// before the commit loop picked it is removed from the queue, so a
// non-200 answer is a guarantee the slab was NOT committed. Conversely a
// success is returned only after the group commit sealed, so a 200 answer
// is a guarantee the slab IS durable and queryable. The only escape from
// this dichotomy is a commit whose outcome the process cannot know
// (appender.ErrInDoubt); it is surfaced as its own error class and the
// ingester refuses further work.
//
// The Appender itself is not concurrency-safe; the Ingester serializes
// every appender access (group commits, point queries, stats snapshots)
// behind one mutex, with the commit loop as the only writer.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/stream"
)

// ErrBacklog is returned when the staging queue is full: the client
// should back off and retry (HTTP 429).
var ErrBacklog = errors.New("ingest: staging queue full")

// ErrClosed is returned by operations on a closed Ingester.
var ErrClosed = errors.New("ingest: closed")

// Config bounds an Ingester. Zero values pick sensible defaults.
type Config struct {
	// Dim is the dimension slabs append along (the growing frontier).
	Dim int
	// MaxQueueSlabs / MaxQueueCells bound the staging queue; requests
	// beyond either bound are shed with ErrBacklog (defaults 256 slabs,
	// 1<<22 cells).
	MaxQueueSlabs int
	MaxQueueCells int
	// MaxBatchSlabs caps one group commit (default 64).
	MaxBatchSlabs int
	// FlushInterval is the group-gathering window: after the first slab
	// of a group arrives the commit loop waits this long for companions
	// before committing (default 2ms). Negative disables the window
	// (commit as soon as the loop wakes).
	FlushInterval time.Duration
	// Gate, when non-nil, is consulted before admitting an append; a
	// non-nil error sheds the request with that error (the degraded /
	// breaker integration seam: wire it to the serving store's health).
	Gate func() error
	// StreamK / StreamBufBits size the Result-3 synopsis fed by stream
	// items (defaults 64 coefficients, 2^6-item buffer).
	StreamK       int
	StreamBufBits int
}

func (c Config) withDefaults() Config {
	if c.MaxQueueSlabs <= 0 {
		c.MaxQueueSlabs = 256
	}
	if c.MaxQueueCells <= 0 {
		c.MaxQueueCells = 1 << 22
	}
	if c.MaxBatchSlabs <= 0 {
		c.MaxBatchSlabs = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.StreamK <= 0 {
		c.StreamK = 64
	}
	if c.StreamBufBits <= 0 {
		c.StreamBufBits = 6
	}
	return c
}

// Result reports where a committed slab landed.
type Result struct {
	// Offset is the domain coordinate of the slab's origin cell.
	Offset []int
	// Cells is the slab's cell count.
	Cells int
	// Group is the sequence number of the group commit that sealed the
	// slab; Slabs is how many client slabs shared it.
	Group int64
	Slabs int
}

// pending is one staged slab waiting for its group commit.
type pending struct {
	slab   *ndarray.Array
	cells  int
	picked bool // claimed by the commit loop; no longer removable
	res    Result
	err    error
	done   chan struct{}
}

// Ingester is the group-committing write front door over one Appender.
// Create with New; it owns a background commit loop until Close.
type Ingester struct {
	cfg Config

	// appMu serializes all appender access: the commit loop's batches,
	// point queries, and stats snapshots.
	appMu sync.Mutex
	app   *appender.Appender

	mu          sync.Mutex
	queue       []*pending
	queuedCells int
	cross       []int // cross-section extents fixed by the first slab (0 = not yet)
	closed      bool

	// Counters (mu-guarded).
	committedSlabs int64
	committedCells int64
	groups         int64
	expansions     int64
	shed           int64
	timedOut       int64
	failedSlabs    int64
	failedGroups   int64
	streamItems    int64
	hist           latencyHist

	stream *stream.Buffered
	start  time.Time

	kickc chan struct{}
	stopc chan struct{}
	donec chan struct{}
}

// New starts an Ingester over app. The appender (and its backing store)
// stays owned by the caller: Close drains and stops the commit loop but
// does not close the store.
func New(app *appender.Appender, cfg Config) (*Ingester, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim < 0 || cfg.Dim >= len(app.Shape()) {
		return nil, fmt.Errorf("ingest: append dimension %d out of range for shape %v", cfg.Dim, app.Shape())
	}
	in := &Ingester{
		cfg:    cfg,
		app:    app,
		stream: stream.NewBuffered(cfg.StreamK, cfg.StreamBufBits),
		start:  time.Now(),
		kickc:  make(chan struct{}, 1),
		stopc:  make(chan struct{}),
		donec:  make(chan struct{}),
	}
	used := app.Used()
	in.cross = make([]int, len(used))
	for t, u := range used {
		if t != cfg.Dim {
			in.cross[t] = u
		}
	}
	go in.loop()
	return in, nil
}

// NewSlab validates a wire-format slab (shape + row-major values) and
// wraps it as an array. Structural problems — shape/values mismatch,
// non-positive extents, NaN/Inf cells — are query.ErrInvalid: the
// client's fault, never a panic.
func NewSlab(shape []int, values []float64) (*ndarray.Array, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: slab has no shape", query.ErrInvalid)
	}
	size := 1
	for i, s := range shape {
		if s <= 0 {
			return nil, fmt.Errorf("%w: slab extent %d along dimension %d", query.ErrInvalid, s, i)
		}
		if size > (1<<31)/s {
			return nil, fmt.Errorf("%w: slab shape %v overflows", query.ErrInvalid, shape)
		}
		size *= s
	}
	if size != len(values) {
		return nil, fmt.Errorf("%w: slab shape %v wants %d values, got %d", query.ErrInvalid, shape, size, len(values))
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite cell at index %d", query.ErrInvalid, i)
		}
	}
	return ndarray.FromSlice(values, shape...), nil
}

// Enqueue stages slab for the next group commit and blocks until that
// commit seals (success: the slab is durable at Result.Offset) or fails.
// If ctx expires while the slab is still removable it is withdrawn and
// the error guarantees the slab was not committed; once the commit loop
// has claimed it, Enqueue waits out the commit and reports its true
// outcome.
func (in *Ingester) Enqueue(ctx context.Context, slab *ndarray.Array) (Result, error) {
	p, err := in.admit(slab)
	if err != nil {
		return Result{}, err
	}
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		in.mu.Lock()
		if !p.picked {
			in.removeLocked(p)
			in.timedOut++
			in.mu.Unlock()
			return Result{}, fmt.Errorf("ingest: abandoned before commit: %w", ctx.Err())
		}
		in.mu.Unlock()
		<-p.done // group already committing; its outcome is authoritative
		return p.res, p.err
	}
}

// admit validates slab against the ingester's fixed geometry and stages
// it, enforcing the queue bounds.
func (in *Ingester) admit(slab *ndarray.Array) (*pending, error) {
	d := len(in.cross)
	if slab.Dims() != d {
		return nil, fmt.Errorf("%w: slab has %d dims, domain has %d", query.ErrInvalid, slab.Dims(), d)
	}
	shape := in.shapeSnapshot()
	for t := 0; t < d; t++ {
		if t == in.cfg.Dim {
			continue
		}
		if !bitutil.IsPow2(slab.Extent(t)) {
			return nil, fmt.Errorf("%w: cross extent %d along dimension %d is not a power of two", query.ErrInvalid, slab.Extent(t), t)
		}
		if slab.Extent(t) > shape[t] {
			return nil, fmt.Errorf("%w: cross extent %d exceeds domain %d along dimension %d", query.ErrInvalid, slab.Extent(t), shape[t], t)
		}
	}
	cells := slab.Size()
	if cells > in.cfg.MaxQueueCells {
		return nil, fmt.Errorf("%w: slab of %d cells exceeds the staging budget (%d)", query.ErrInvalid, cells, in.cfg.MaxQueueCells)
	}
	p := &pending{slab: slab, cells: cells, done: make(chan struct{})}

	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	if gate := in.cfg.Gate; gate != nil {
		if err := gate(); err != nil {
			in.shed++
			in.mu.Unlock()
			return nil, err
		}
	}
	for t := 0; t < d; t++ {
		if t == in.cfg.Dim {
			continue
		}
		if in.cross[t] != 0 && slab.Extent(t) != in.cross[t] {
			in.mu.Unlock()
			return nil, fmt.Errorf("%w: cross extent %d along dimension %d, ingest expects %d", query.ErrInvalid, slab.Extent(t), t, in.cross[t])
		}
	}
	if len(in.queue) >= in.cfg.MaxQueueSlabs || in.queuedCells+cells > in.cfg.MaxQueueCells {
		in.shed++
		in.mu.Unlock()
		return nil, ErrBacklog
	}
	for t := 0; t < d; t++ {
		if t != in.cfg.Dim && in.cross[t] == 0 {
			in.cross[t] = slab.Extent(t) // first slab fixes the cross-section
		}
	}
	in.queue = append(in.queue, p)
	in.queuedCells += cells
	in.mu.Unlock()

	select {
	case in.kickc <- struct{}{}:
	default:
	}
	return p, nil
}

func (in *Ingester) shapeSnapshot() []int {
	in.appMu.Lock()
	defer in.appMu.Unlock()
	return in.app.Shape()
}

// removeLocked withdraws an unpicked entry (deadline abandonment).
func (in *Ingester) removeLocked(p *pending) {
	for i, q := range in.queue {
		if q == p {
			in.queue = append(in.queue[:i], in.queue[i+1:]...)
			in.queuedCells -= p.cells
			return
		}
	}
}

// loop is the commit loop: woken by the first slab of a group, it gathers
// companions for FlushInterval (unless a full batch is already waiting),
// then commits groups until the queue is empty.
func (in *Ingester) loop() {
	defer close(in.donec)
	for {
		select {
		case <-in.kickc:
		case <-in.stopc:
			in.drainQueue()
			return
		}
		if in.cfg.FlushInterval > 0 && !in.batchReady() {
			t := time.NewTimer(in.cfg.FlushInterval)
			select {
			case <-t.C:
			case <-in.stopc:
				t.Stop()
				in.drainQueue()
				return
			}
		}
		in.drainQueue()
	}
}

func (in *Ingester) batchReady() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue) >= in.cfg.MaxBatchSlabs
}

func (in *Ingester) drainQueue() {
	for {
		group := in.take()
		if len(group) == 0 {
			return
		}
		in.commitGroup(group)
	}
}

// take claims up to MaxBatchSlabs staged slabs; claimed entries can no
// longer be withdrawn by their deadlines.
func (in *Ingester) take() []*pending {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := len(in.queue)
	if n > in.cfg.MaxBatchSlabs {
		n = in.cfg.MaxBatchSlabs
	}
	if n == 0 {
		return nil
	}
	group := make([]*pending, n)
	copy(group, in.queue[:n])
	in.queue = append(in.queue[:0:0], in.queue[n:]...)
	for _, p := range group {
		p.picked = true
		in.queuedCells -= p.cells
	}
	return group
}

// commitGroup folds one claimed group into the appender as a single
// atomic batch and wakes every waiter with the outcome.
func (in *Ingester) commitGroup(group []*pending) {
	slabs := make([]*ndarray.Array, len(group))
	cells := 0
	for i, p := range group {
		slabs[i] = p.slab
		cells += p.cells
	}
	in.appMu.Lock()
	base := in.app.Used()
	begin := time.Now()
	st, err := in.app.AppendBatch(in.cfg.Dim, slabs)
	elapsed := time.Since(begin)
	in.appMu.Unlock()

	in.mu.Lock()
	var seq int64
	if err == nil {
		in.groups++
		seq = in.groups
		in.committedSlabs += int64(len(group))
		in.committedCells += int64(cells)
		in.expansions += int64(st.Expansions)
		in.hist.observe(elapsed)
	} else {
		in.failedGroups++
		in.failedSlabs += int64(len(group))
	}
	in.mu.Unlock()

	off := base[in.cfg.Dim]
	for i, p := range group {
		if err == nil {
			offset := make([]int, len(base))
			offset[in.cfg.Dim] = off
			p.res = Result{Offset: offset, Cells: p.cells, Group: seq, Slabs: len(group)}
			off += slabs[i].Extent(in.cfg.Dim)
		} else {
			p.err = err
		}
		close(p.done)
	}
}

// AddStream feeds scalar items into the Result-3 stream synopsis. Items
// are absorbed in memory (the synopsis IS the state); non-finite values
// are rejected with query.ErrInvalid.
func (in *Ingester) AddStream(values []float64) (int64, error) {
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%w: non-finite stream item at index %d", query.ErrInvalid, i)
		}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, ErrClosed
	}
	for _, v := range values {
		in.stream.Add(v)
	}
	in.streamItems += int64(len(values))
	return in.streamItems, nil
}

// Point answers a point query against the ingested transform — the
// committed ⇒ queryable check. It serializes with the commit loop, so it
// never observes a half-applied group.
func (in *Ingester) Point(point []int) (float64, error) {
	in.appMu.Lock()
	defer in.appMu.Unlock()
	// Root-path reconstruction: the appender maintains raw standard-form
	// coefficients (not the materialized per-tile scaling slots
	// PointStandard shortcuts through).
	v, _, err := query.PointViaRootPath(in.app.Store(), in.app.Shape(), point)
	return v, err
}

// Used returns the extents occupied by committed data.
func (in *Ingester) Used() []int {
	in.appMu.Lock()
	defer in.appMu.Unlock()
	return in.app.Used()
}

// Shape returns the current (expanded) domain extents.
func (in *Ingester) Shape() []int { return in.shapeSnapshot() }

// Reconstruct reads the committed dataset back (tests and audits; it
// serializes with the commit loop like any other appender access).
func (in *Ingester) Reconstruct() (*ndarray.Array, error) {
	in.appMu.Lock()
	defer in.appMu.Unlock()
	return in.app.Reconstruct()
}

// Close stops admitting, drains the staged queue through a final group
// commit, and waits for the commit loop to exit. The appender's backing
// store remains open (the caller owns it).
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		<-in.donec
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	close(in.stopc)
	<-in.donec
	return nil
}

// Stats snapshots the ingest counters. See the field comments for the
// amortization arithmetic.
type Stats struct {
	Dim   int   `json:"dim"`
	Shape []int `json:"shape"`
	Used  []int `json:"used"`

	// CommittedSlabs / CommittedCells are the client appends that reached
	// a sealed group commit; Groups counts those commits — the first
	// amortization ratio. Expansions counts domain doublings.
	CommittedSlabs int64 `json:"committed_slabs"`
	CommittedCells int64 `json:"committed_cells"`
	Groups         int64 `json:"groups"`
	Expansions     int64 `json:"expansions"`

	// Shed (backpressure / gate), TimedOut (abandoned before pick), and
	// Failed* (group commits that errored) all guarantee non-commitment.
	Shed         int64 `json:"shed"`
	TimedOut     int64 `json:"timed_out"`
	FailedSlabs  int64 `json:"failed_slabs"`
	FailedGroups int64 `json:"failed_groups"`

	StreamItems int64 `json:"stream_items"`

	QueueSlabs int `json:"queue_slabs"`
	QueueCells int `json:"queue_cells"`

	// AppendsPerJournalGroup is CommittedSlabs over the device's journal
	// groups (Commits counter) — the fsync-amortization figure. ItemsPerSec
	// is committed cells plus stream items over the ingester's lifetime.
	AppendsPerJournalGroup float64 `json:"appends_per_journal_group"`
	ItemsPerSec            float64 `json:"items_per_sec"`

	// Commit latency distribution over sealed group commits.
	CommitP50Millis float64        `json:"commit_p50_ms"`
	CommitP99Millis float64        `json:"commit_p99_ms"`
	CommitHistogram []LatencyCount `json:"commit_histogram,omitempty"`

	// Device truth and its attribution (satellite: expansion vs merge I/O
	// reported separately so the amortization is verifiable from stats).
	DeviceIO    storage.Stats `json:"device_io"`
	ExpansionIO storage.Stats `json:"expansion_io"`
	MergeIO     storage.Stats `json:"merge_io"`

	// Poisoned carries the sticky appender failure, "" while healthy.
	Poisoned string `json:"poisoned,omitempty"`

	// Per-item costs of the stream synopsis (Result 3).
	StreamCrestPerItem float64 `json:"stream_crest_per_item"`
	StreamTotalPerItem float64 `json:"stream_total_per_item"`
}

// Stats assembles a consistent snapshot.
func (in *Ingester) Stats() Stats {
	in.appMu.Lock()
	shape := in.app.Shape()
	used := in.app.Used()
	device := in.app.TotalIO()
	expIO, mergeIO := in.app.IOBreakdown()
	var poisoned string
	if err := in.app.Poisoned(); err != nil {
		poisoned = err.Error()
	}
	in.appMu.Unlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	st := Stats{
		Dim:            in.cfg.Dim,
		Shape:          shape,
		Used:           used,
		CommittedSlabs: in.committedSlabs,
		CommittedCells: in.committedCells,
		Groups:         in.groups,
		Expansions:     in.expansions,
		Shed:           in.shed,
		TimedOut:       in.timedOut,
		FailedSlabs:    in.failedSlabs,
		FailedGroups:   in.failedGroups,
		StreamItems:    in.streamItems,
		QueueSlabs:     len(in.queue),
		QueueCells:     in.queuedCells,
		DeviceIO:       device,
		ExpansionIO:    expIO,
		MergeIO:        mergeIO,
		Poisoned:       poisoned,
	}
	if device.Commits > 0 {
		st.AppendsPerJournalGroup = float64(in.committedSlabs) / float64(device.Commits)
	}
	if elapsed := time.Since(in.start).Seconds(); elapsed > 0 {
		st.ItemsPerSec = float64(in.committedCells+in.streamItems) / elapsed
	}
	st.CommitP50Millis = in.hist.quantile(0.50).Seconds() * 1e3
	st.CommitP99Millis = in.hist.quantile(0.99).Seconds() * 1e3
	st.CommitHistogram = in.hist.counts()
	costs := in.stream.Costs()
	st.StreamCrestPerItem = costs.PerItemCrest()
	st.StreamTotalPerItem = costs.PerItemTotal()
	return st
}
