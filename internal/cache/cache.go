// Package cache provides a sharded, goroutine-safe LRU block cache that
// fronts a storage.BlockStore for the concurrent query-serving path. It
// differs from storage.BufferPool — the single-threaded "available memory"
// model of the paper's experiments — in three ways that matter under
// parallel load:
//
//   - the key space is partitioned across independently locked shards, so
//     readers hitting different blocks do not contend on one mutex;
//   - concurrent misses on the same block are coalesced (singleflight): one
//     goroutine performs the disk read while the rest wait for its result,
//     so a thundering herd on a hot tile costs a single block I/O;
//   - it is a read cache with write-through invalidation, never holding
//     dirty data, so a crash loses nothing and maintenance batches stay the
//     exclusive property of the durable layer underneath.
//
// The wrapped store must itself be safe for concurrent use (storage.FileStore
// and storage.MemStore are; wrap anything stateful in storage.Locked).
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // reads served from a resident block
	Misses    int64 // reads that found no resident block (including waiters)
	Loads     int64 // reads issued to the underlying store (Misses coalesce)
	Evictions int64 // resident blocks discarded to make room
	Inflight  int64 // loads currently outstanding against the store
	Resident  int64 // blocks currently held
}

// HitRate returns the fraction of reads served from the cache (0 when
// unused).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sharded is the cache itself; it implements storage.BlockStore.
type Sharded struct {
	inner       storage.BlockStore
	blockSize   int
	shards      []*shard
	mask        uint
	capPerShard int

	hits      atomic.Int64
	misses    atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
	inflight  atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *entry
	entries  map[int]*list.Element
	inflight map[int]*call
	gen      uint64 // bumped by writes; stale loads are not installed
}

type entry struct {
	id   int
	data []float64
}

// call is one singleflight load; waiters block on wg and then read data/err.
type call struct {
	wg   sync.WaitGroup
	data []float64
	err  error
	gen  uint64
}

// New wraps inner with a sharded LRU cache holding up to capacity blocks
// spread over the given number of shards (rounded up to a power of two;
// pass 0 for a sensible default). The per-shard capacity is at least one
// block, so tiny capacities round up rather than down.
func New(inner storage.BlockStore, capacity, shards int) (*Sharded, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d", capacity)
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > capacity {
		shards = capacity
	}
	n := 1
	for n < shards {
		n *= 2
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &Sharded{
		inner:       inner,
		blockSize:   inner.BlockSize(),
		shards:      make([]*shard, n),
		mask:        uint(n - 1),
		capPerShard: per,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			lru:      list.New(),
			entries:  make(map[int]*list.Element),
			inflight: make(map[int]*call),
		}
	}
	return c, nil
}

// BlockSize returns the wrapped store's block size.
func (c *Sharded) BlockSize() int { return c.blockSize }

func (c *Sharded) shardOf(id int) *shard {
	// Block ids are dense, so mixing the low bits spreads neighboring tiles
	// (which hot queries touch together) across shards.
	h := uint(id) * 0x9e3779b1
	return c.shards[(h>>4)&c.mask]
}

// ReadBlock serves a block from the cache, loading it at most once no
// matter how many goroutines miss on it concurrently.
func (c *Sharded) ReadBlock(id int, buf []float64) error {
	if err := c.checkArgs(id, len(buf)); err != nil {
		return err
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	if el, ok := sh.entries[id]; ok {
		copy(buf, el.Value.(*entry).data)
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		c.hits.Add(1)
		return nil
	}
	c.misses.Add(1)
	if cl, ok := sh.inflight[id]; ok {
		// Someone else is already reading this block; wait for their result.
		sh.mu.Unlock()
		cl.wg.Wait()
		if cl.err != nil {
			return cl.err
		}
		if c.freshLoad(id, cl) {
			copy(buf, cl.data)
			return nil
		}
		// A write landed after that load was issued, so its result may
		// predate the write. Joining it would lose the write for a caller
		// doing read-modify-write (the maintenance engines); re-read
		// directly instead. The writer already invalidated the entry.
		c.loads.Add(1)
		c.inflight.Add(1)
		err := c.inner.ReadBlock(id, buf)
		c.inflight.Add(-1)
		return err
	}
	cl := &call{gen: sh.gen}
	cl.wg.Add(1)
	sh.inflight[id] = cl
	sh.mu.Unlock()

	c.inflight.Add(1)
	c.loads.Add(1)
	data := make([]float64, c.blockSize)
	err := c.inner.ReadBlock(id, data)
	cl.data, cl.err = data, err
	c.inflight.Add(-1)

	sh.mu.Lock()
	delete(sh.inflight, id)
	if err == nil && cl.gen == sh.gen {
		c.install(sh, id, data)
	}
	sh.mu.Unlock()
	cl.wg.Done()
	if err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

// ReadBlocks implements storage.BatchReader. Every position is resolved
// the way ReadBlock would — hits copy out under the shard lock, misses
// join an existing singleflight load or register their own — but all the
// loads this call owns are issued to the inner store as one vectored read,
// so a cold burst over a tile run costs one device request instead of one
// per block. Waiting on loads owned by other goroutines happens after our
// own complete, which also resolves duplicate ids within the batch.
func (c *Sharded) ReadBlocks(ids []int, bufs [][]float64) error {
	for i, id := range ids {
		if err := c.checkArgs(id, len(bufs[i])); err != nil {
			return err
		}
	}
	calls := make([]*call, len(ids)) // nil where the position was a hit
	var ownIDs []int
	var ownBufs [][]float64
	var ownCalls []*call
	for i, id := range ids {
		sh := c.shardOf(id)
		sh.mu.Lock()
		if el, ok := sh.entries[id]; ok {
			copy(bufs[i], el.Value.(*entry).data)
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			continue
		}
		c.misses.Add(1)
		if cl, ok := sh.inflight[id]; ok {
			calls[i] = cl // someone (possibly this batch) is loading it
			sh.mu.Unlock()
			continue
		}
		cl := &call{gen: sh.gen}
		cl.wg.Add(1)
		sh.inflight[id] = cl
		sh.mu.Unlock()
		calls[i] = cl
		ownIDs = append(ownIDs, id)
		ownBufs = append(ownBufs, make([]float64, c.blockSize))
		ownCalls = append(ownCalls, cl)
	}
	if len(ownIDs) > 0 {
		c.inflight.Add(int64(len(ownIDs)))
		c.loads.Add(int64(len(ownIDs)))
		err := storage.ReadBlocksOf(c.inner, ownIDs, ownBufs)
		c.inflight.Add(int64(-len(ownIDs)))
		for k, cl := range ownCalls {
			id := ownIDs[k]
			cl.data, cl.err = ownBufs[k], err
			sh := c.shardOf(id)
			sh.mu.Lock()
			delete(sh.inflight, id)
			if err == nil && cl.gen == sh.gen {
				c.install(sh, id, ownBufs[k])
			}
			sh.mu.Unlock()
			cl.wg.Done()
		}
	}
	var retryIDs []int
	var retryBufs [][]float64
	for i, cl := range calls {
		if cl == nil {
			continue
		}
		cl.wg.Wait()
		if cl.err != nil {
			return cl.err
		}
		if c.freshLoad(ids[i], cl) {
			copy(bufs[i], cl.data)
			continue
		}
		// Stale in-flight result (a write intervened); re-read below.
		retryIDs = append(retryIDs, ids[i])
		retryBufs = append(retryBufs, bufs[i])
	}
	if len(retryIDs) > 0 {
		c.loads.Add(int64(len(retryIDs)))
		c.inflight.Add(int64(len(retryIDs)))
		err := storage.ReadBlocksOf(c.inner, retryIDs, retryBufs)
		c.inflight.Add(int64(-len(retryIDs)))
		if err != nil {
			return err
		}
	}
	return nil
}

// freshLoad reports whether a completed singleflight load is still
// current: no write to its shard has landed since the load registered.
// A load that raced a write may carry the pre-write value — installing
// it is already prevented by the generation check, but a waiter copying
// cl.data would still see stale data, which breaks read-your-writes for
// the one caller that requires it (maintenance's read-modify-write of
// delta tiles joining a load started by a concurrent serving read).
func (c *Sharded) freshLoad(id int, cl *call) bool {
	sh := c.shardOf(id)
	sh.mu.Lock()
	fresh := cl.gen == sh.gen
	sh.mu.Unlock()
	return fresh
}

// WriteBlocks implements storage.BatchWriter: one vectored write-through,
// then per-id invalidation with the same generation bump ReadBlock's
// stale-load protection relies on. Invalidation is performed even when the
// inner write fails — some of the batch may have landed, so dropping every
// touched id is the conservative coherent choice.
func (c *Sharded) WriteBlocks(ids []int, data [][]float64) error {
	for i, id := range ids {
		if err := c.checkArgs(id, len(data[i])); err != nil {
			return err
		}
	}
	err := storage.WriteBlocksOf(c.inner, ids, data)
	for _, id := range ids {
		sh := c.shardOf(id)
		sh.mu.Lock()
		sh.gen++
		if el, ok := sh.entries[id]; ok {
			sh.lru.Remove(el)
			delete(sh.entries, id)
		}
		sh.mu.Unlock()
	}
	return err
}

// install adds a loaded block to the shard, evicting from the cold end if
// the shard is over capacity. Caller holds sh.mu.
func (c *Sharded) install(sh *shard, id int, data []float64) {
	if el, ok := sh.entries[id]; ok {
		// A racing load installed it first; refresh and promote.
		copy(el.Value.(*entry).data, data)
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[id] = sh.lru.PushFront(&entry{id: id, data: data})
	for sh.lru.Len() > c.capPerShard {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.entries, back.Value.(*entry).id)
		c.evictions.Add(1)
	}
}

// WriteBlock writes through to the underlying store and invalidates the
// cached copy. The generation bump also prevents any load that sampled the
// block before this write from installing its now-stale result.
func (c *Sharded) WriteBlock(id int, data []float64) error {
	if err := c.checkArgs(id, len(data)); err != nil {
		return err
	}
	err := c.inner.WriteBlock(id, data)
	sh := c.shardOf(id)
	sh.mu.Lock()
	sh.gen++
	if el, ok := sh.entries[id]; ok {
		sh.lru.Remove(el)
		delete(sh.entries, id)
	}
	sh.mu.Unlock()
	return err
}

func (c *Sharded) checkArgs(id, n int) error {
	if id < 0 {
		return fmt.Errorf("cache: negative block id %d", id)
	}
	if n != c.blockSize {
		return fmt.Errorf("cache: buffer length %d does not match block size %d", n, c.blockSize)
	}
	return nil
}

// Invalidate empties the cache; subsequent reads reload from the store.
func (c *Sharded) Invalidate() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.gen++
		sh.lru.Init()
		sh.entries = make(map[int]*list.Element)
		sh.mu.Unlock()
	}
}

// Drop evicts a single block id, bumping its shard's generation so a
// concurrent in-flight load of the stale contents is not installed. The
// epoch layer calls this when a freed physical block is reused for a new
// epoch — the only invalidation an epoch-qualified cache ever needs, since
// a physical id is otherwise never rebound while referenced.
func (c *Sharded) Drop(id int) {
	if id < 0 {
		return
	}
	sh := c.shardOf(id)
	sh.mu.Lock()
	sh.gen++
	if el, ok := sh.entries[id]; ok {
		sh.lru.Remove(el)
		delete(sh.entries, id)
	}
	sh.mu.Unlock()
}

// Len returns the number of resident blocks.
func (c *Sharded) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *Sharded) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Loads:     c.loads.Load(),
		Evictions: c.evictions.Load(),
		Inflight:  c.inflight.Load(),
		Resident:  int64(c.Len()),
	}
}

// Sync forwards to the wrapped store.
func (c *Sharded) Sync() error { return storage.SyncIfAble(c.inner) }

// Truncate discards every cached block and forwards to the wrapped store.
func (c *Sharded) Truncate() error {
	err := storage.TruncateIfAble(c.inner)
	c.Invalidate()
	return err
}

// Commit forwards a durability point to the wrapped store.
func (c *Sharded) Commit() error { return storage.CommitIfAble(c.inner) }

// Close closes the wrapped store.
func (c *Sharded) Close() error { return c.inner.Close() }

// MappedReads forwards the inner stack's mapped-read counter (cache
// hits touch no device and so do not move it).
func (c *Sharded) MappedReads() int64 { return storage.MappedReadsOf(c.inner) }
