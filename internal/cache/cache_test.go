package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// slowStore delays every read so that concurrent misses pile up, and counts
// the reads that reach it.
type slowStore struct {
	storage.BlockStore
	delay time.Duration
	reads atomic.Int64
}

func (s *slowStore) ReadBlock(id int, buf []float64) error {
	s.reads.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.BlockStore.ReadBlock(id, buf)
}

func fill(t *testing.T, bs storage.BlockStore, blocks int) {
	t.Helper()
	buf := make([]float64, bs.BlockSize())
	for id := 0; id < blocks; id++ {
		for i := range buf {
			buf[i] = float64(id*1000 + i)
		}
		if err := bs.WriteBlock(id, buf); err != nil {
			t.Fatalf("fill block %d: %v", id, err)
		}
	}
}

func TestReadCachesBlocks(t *testing.T) {
	mem := storage.NewMemStore(4)
	fill(t, mem, 8)
	counting := storage.NewCounting(mem)
	c, err := New(counting, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	for pass := 0; pass < 3; pass++ {
		for id := 0; id < 8; id++ {
			if err := c.ReadBlock(id, buf); err != nil {
				t.Fatal(err)
			}
			if buf[1] != float64(id*1000+1) {
				t.Fatalf("block %d pass %d: got %v", id, pass, buf)
			}
		}
	}
	if got := counting.Stats().Reads; got != 8 {
		t.Errorf("inner reads = %d, want 8 (one load per block)", got)
	}
	st := c.Stats()
	if st.Hits != 16 || st.Misses != 8 || st.Loads != 8 {
		t.Errorf("stats = %+v, want 16 hits / 8 misses / 8 loads", st)
	}
	if st.HitRate() < 0.66 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	mem := storage.NewMemStore(4)
	fill(t, mem, 1)
	slow := &slowStore{BlockStore: mem, delay: 20 * time.Millisecond}
	c, err := New(slow, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	const g = 32
	var wg sync.WaitGroup
	errs := make([]error, g)
	vals := make([]float64, g)
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]float64, 4)
			errs[i] = c.ReadBlock(0, buf)
			vals[i] = buf[2]
		}(i)
	}
	wg.Wait()
	for i := 0; i < g; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if vals[i] != 2 {
			t.Fatalf("goroutine %d read %v, want 2", i, vals[i])
		}
	}
	if got := slow.reads.Load(); got != 1 {
		t.Errorf("inner reads = %d, want 1 (singleflight)", got)
	}
	st := c.Stats()
	if st.Loads != 1 {
		t.Errorf("loads = %d, want 1", st.Loads)
	}
	if st.Misses != g {
		t.Errorf("misses = %d, want %d", st.Misses, g)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiesce", st.Inflight)
	}
}

func TestEvictionBoundsResidency(t *testing.T) {
	mem := storage.NewMemStore(2)
	fill(t, mem, 64)
	c, err := New(mem, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	for id := 0; id < 64; id++ {
		if err := c.ReadBlock(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 8 {
		t.Errorf("resident = %d, capacity 8", n)
	}
	if st := c.Stats(); st.Evictions < 56 {
		t.Errorf("evictions = %d, want >= 56", st.Evictions)
	}
}

func TestWriteThroughInvalidates(t *testing.T) {
	mem := storage.NewMemStore(2)
	fill(t, mem, 2)
	c, err := New(mem, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if err := c.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlock(1, []float64{7, 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 || buf[1] != 9 {
		t.Errorf("read after write = %v, want [7 9]", buf)
	}
	// The store itself must have the new data (write-through, not
	// write-back).
	if err := mem.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Errorf("inner store missed the write: %v", buf)
	}
}

func TestStaleLoadIsNotInstalledAfterWrite(t *testing.T) {
	mem := storage.NewMemStore(1)
	fill(t, mem, 1)
	release := make(chan struct{})
	gate := &gatedStore{BlockStore: mem, release: release}
	gate.entered.Add(1)
	c, err := New(gate, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64)
	go func() {
		buf := make([]float64, 1)
		if err := c.ReadBlock(0, buf); err != nil {
			t.Error(err)
		}
		done <- buf[0]
	}()
	gate.entered.Wait() // the load has read the old value and is parked
	if err := c.WriteBlock(0, []float64{42}); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-done
	// Whatever the in-flight load returned, the cache must not serve the
	// pre-write value now.
	buf := make([]float64, 1)
	if err := c.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Errorf("read after write = %v, want 42 (stale load installed)", buf[0])
	}
}

// gatedStore performs the inner read, then parks until released, modeling a
// load that completes after a concurrent write.
type gatedStore struct {
	storage.BlockStore
	entered sync.WaitGroup
	once    sync.Once
	release chan struct{}
}

func (g *gatedStore) ReadBlock(id int, buf []float64) error {
	err := g.BlockStore.ReadBlock(id, buf)
	first := false
	g.once.Do(func() { first = true })
	if first {
		g.entered.Done()
		<-g.release
	}
	return err
}

func TestConcurrentMixedAccessRace(t *testing.T) {
	mem := storage.NewMemStore(4)
	fill(t, mem, 32)
	c, err := New(mem, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]float64, 4)
			for i := 0; i < 500; i++ {
				id := (g*7 + i*13) % 32
				if g == 0 && i%50 == 0 {
					if err := c.WriteBlock(id, []float64{1, 2, 3, 4}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := c.ReadBlock(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight = %d after quiesce", st.Inflight)
	}
}

// TestWaiterJoiningStaleLoadRereads pins the read-your-writes guarantee
// for singleflight WAITERS: a load is registered, a write to the same
// block lands while it is in flight, and then a new reader joins the
// still-unfinished load. The joiner must observe the post-write value —
// re-reading the device rather than copying the stale in-flight result.
// This is the maintenance engine's read-modify-write pattern: losing the
// write here silently corrupts delta accumulation (caught originally by
// TestParallelMaintenanceUnderConcurrentReads under -race).
func TestWaiterJoiningStaleLoadRereads(t *testing.T) {
	for _, mode := range []string{"single", "batch"} {
		t.Run(mode, func(t *testing.T) {
			mem := storage.NewMemStore(1)
			fill(t, mem, 1)
			release := make(chan struct{})
			gate := &gatedStore{BlockStore: mem, release: release}
			gate.entered.Add(1)
			c, err := New(gate, 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			ownerDone := make(chan struct{})
			go func() {
				defer close(ownerDone)
				buf := make([]float64, 1)
				if err := c.ReadBlock(0, buf); err != nil {
					t.Error(err)
				}
			}()
			gate.entered.Wait() // owner has read the old value and is parked
			if err := c.WriteBlock(0, []float64{42}); err != nil {
				t.Fatal(err)
			}
			waiterVal := make(chan float64)
			go func() {
				buf := make([]float64, 1)
				if mode == "batch" {
					if err := c.ReadBlocks([]int{0}, [][]float64{buf}); err != nil {
						t.Error(err)
					}
				} else {
					if err := c.ReadBlock(0, buf); err != nil {
						t.Error(err)
					}
				}
				waiterVal <- buf[0]
			}()
			// Give the waiter time to join the parked load before letting
			// the owner finish; if it registers its own load instead it
			// reads fresh data and the assertion still holds.
			time.Sleep(50 * time.Millisecond)
			close(release)
			<-ownerDone
			if got := <-waiterVal; got != 42 {
				t.Errorf("waiter joining a stale in-flight load read %v, want 42 (lost write)", got)
			}
		})
	}
}
