package query

import (
	"errors"
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/tile"
)

// The query entry points sit behind the network API, so malformed inputs —
// wrong dimensionality, negative coordinates, boxes that overflow or leave
// the domain — must surface as errors, never as panics out of the haar or
// tiling layers.

// ErrInvalid marks errors caused by a malformed query rather than by the
// store; the serving layer maps it to a 400 response. Test with errors.Is.
var ErrInvalid = errors.New("invalid query")

// ValidatePoint checks that point addresses a cell of a domain with the
// given extents.
func ValidatePoint(arrShape, point []int) error {
	if len(point) != len(arrShape) {
		return fmt.Errorf("%w: point has %d coordinates, domain has %d dimensions", ErrInvalid, len(point), len(arrShape))
	}
	for i, p := range point {
		if p < 0 || p >= arrShape[i] {
			return fmt.Errorf("%w: point coordinate %d = %d out of [0,%d)", ErrInvalid, i, p, arrShape[i])
		}
	}
	return nil
}

// ValidateBox checks that [start, start+shape) is a non-empty box inside a
// domain with the given extents. The comparison is phrased so that a huge
// start plus a huge extent cannot overflow int before being rejected.
func ValidateBox(arrShape, start, shape []int) error {
	if len(start) != len(arrShape) || len(shape) != len(arrShape) {
		return fmt.Errorf("%w: box start %d-d / extent %d-d for a %d-d domain", ErrInvalid, len(start), len(shape), len(arrShape))
	}
	for i := range arrShape {
		if shape[i] < 1 {
			return fmt.Errorf("%w: box extent %d along dimension %d", ErrInvalid, shape[i], i)
		}
		if start[i] < 0 {
			return fmt.Errorf("%w: box start %d along dimension %d", ErrInvalid, start[i], i)
		}
		// Overflow-safe form of start+shape <= arrShape.
		if start[i] > arrShape[i]-shape[i] {
			return fmt.Errorf("%w: box [%d,+%d) leaves [0,%d) along dimension %d", ErrInvalid, start[i], shape[i], arrShape[i], i)
		}
	}
	return nil
}

// domainShape recovers the domain extents from whichever tiling the store
// uses.
func domainShape(st *tile.Store) ([]int, error) {
	switch t := st.Tiling().(type) {
	case *tile.Standard:
		shape := make([]int, t.Dims())
		for i := range shape {
			shape[i] = 1 << uint(t.Dim(i).Levels())
		}
		return shape, nil
	case *tile.NonStandard:
		n, rootPos := t.RootOf(0)
		shape := make([]int, len(rootPos))
		for i := range shape {
			shape[i] = 1 << uint(n)
		}
		return shape, nil
	default:
		return nil, fmt.Errorf("query: unknown tiling %T", st.Tiling())
	}
}
