package query

import (
	"sort"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// ProgressiveStep is one refinement of a progressive range-sum answer.
type ProgressiveStep struct {
	Estimate     float64
	Coefficients int // coefficients incorporated so far
	Blocks       int // distinct blocks read so far
}

// ProgressiveRangeSum answers a box aggregate from a standard-form tiled
// store progressively: the Lemma-2 coefficient set is consumed coarse to
// fine (largest support first), and each step reports the running estimate
// with its cumulative I/O. The final step is the exact answer. This is the
// progressive query answering mode the paper's introduction cites as a
// driving application of wavelet-transformed storage.
func ProgressiveRangeSum(st *tile.Store, arrShape, start, shape []int) ([]ProgressiveStep, error) {
	var steps []ProgressiveStep
	err := ProgressiveRangeSumFunc(st, arrShape, start, shape, func(s ProgressiveStep) error {
		steps = append(steps, s)
		return nil
	})
	return steps, err
}

// ProgressiveRangeSumFunc is the streaming form of ProgressiveRangeSum: fn
// is invoked for every refinement step as soon as it is computed, so a
// server can flush partial answers to a client while later coefficients are
// still being read. A non-nil error from fn aborts the walk and is returned
// unchanged.
func ProgressiveRangeSumFunc(st *tile.Store, arrShape, start, shape []int, fn func(ProgressiveStep) error) error {
	if err := ValidateBox(arrShape, start, shape); err != nil {
		return err
	}
	coefs := wavelet.RangeSumCoefsStandard(arrShape, start, shape)
	// Coarse-to-fine: sort by support volume descending, then by absolute
	// weight descending so the big contributors land early.
	vol := func(c wavelet.Coef) int {
		v := 1
		for t, idx := range c.Coords {
			n := bitutil.Log2(arrShape[t])
			v *= haar.Support(n, idx).Len()
		}
		return v
	}
	sort.SliceStable(coefs, func(i, j int) bool {
		vi, vj := vol(coefs[i]), vol(coefs[j])
		if vi != vj {
			return vi > vj
		}
		wi, wj := coefs[i].Weight, coefs[j].Weight
		if wi < 0 {
			wi = -wi
		}
		if wj < 0 {
			wj = -wj
		}
		return wi > wj
	})
	reader := tile.NewReader(st)
	sum := 0.0
	for i, c := range coefs {
		v, err := reader.Get(c.Coords)
		if err != nil {
			return err
		}
		sum += c.Weight * v
		step := ProgressiveStep{
			Estimate:     sum,
			Coefficients: i + 1,
			Blocks:       reader.BlocksRead(),
		}
		if err := fn(step); err != nil {
			return err
		}
	}
	return nil
}

// ApproximateRangeSum evaluates a box aggregate against a best-K compressed
// transform held in memory (no storage at all): the approximate query
// processing mode of the paper's introduction. It returns the approximate
// sum, computed from only the retained coefficients whose support overlaps
// the box.
func ApproximateRangeSum(hat *ndarray.Array, start, shape []int) float64 {
	return wavelet.RangeSumStandard(hat, start, shape)
}
