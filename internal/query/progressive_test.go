package query

import (
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/synopsis"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func TestProgressiveRangeSumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := dataset.Dense([]int{32, 32}, 1)
	st := materializedStandard(t, src, 2)
	shape := []int{32, 32}
	for trial := 0; trial < 30; trial++ {
		s := []int{rng.Intn(32), rng.Intn(32)}
		sh := []int{1 + rng.Intn(32-s[0]), 1 + rng.Intn(32-s[1])}
		steps, err := ProgressiveRangeSum(st, shape, s, sh)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) == 0 {
			t.Fatal("no steps")
		}
		exact := src.SumRange(s, sh)
		last := steps[len(steps)-1]
		if math.Abs(last.Estimate-exact) > 1e-6 {
			t.Fatalf("final estimate %g, exact %g", last.Estimate, exact)
		}
		// Cumulative counters must be monotone.
		for i := 1; i < len(steps); i++ {
			if steps[i].Coefficients != steps[i-1].Coefficients+1 {
				t.Fatal("coefficient counter not incremental")
			}
			if steps[i].Blocks < steps[i-1].Blocks {
				t.Fatal("block counter went backwards")
			}
		}
	}
}

func TestProgressiveCoarseStepsCarrySignal(t *testing.T) {
	// On a smooth dataset the first (coarsest) steps should already be a
	// decent approximation for a large box: relative error after 25% of the
	// coefficients should be far below the trivial estimate's error.
	src := dataset.Dense([]int{64, 64}, 2)
	// Shift values to be positive so relative error is meaningful.
	for i := range src.Data() {
		src.Data()[i] += 10
	}
	st := materializedStandard(t, src, 2)
	start, extent := []int{8, 8}, []int{40, 48}
	steps, err := ProgressiveRangeSum(st, []int{64, 64}, start, extent)
	if err != nil {
		t.Fatal(err)
	}
	exact := src.SumRange(start, extent)
	quarter := steps[len(steps)/4]
	relErr := math.Abs(quarter.Estimate-exact) / math.Abs(exact)
	if relErr > 0.2 {
		t.Errorf("after 25%% of coefficients relative error is %.3f", relErr)
	}
}

func TestApproximateRangeSumFromCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := dataset.Dense([]int{32, 32}, 4)
	for i := range src.Data() {
		src.Data()[i] += 5
	}
	hat := wavelet.TransformStandard(src)
	exactHat := synopsis.Compress(hat, wavelet.Standard, 0)
	small := synopsis.Compress(hat, wavelet.Standard, 64)

	worstSmall := 0.0
	for trial := 0; trial < 30; trial++ {
		s := []int{rng.Intn(16), rng.Intn(16)}
		sh := []int{8 + rng.Intn(8), 8 + rng.Intn(8)}
		exact := src.SumRange(s, sh)
		full := ApproximateRangeSum(exactHat.Transform(), s, sh)
		if math.Abs(full-exact) > 1e-6 {
			t.Fatalf("lossless synopsis answered %g, exact %g", full, exact)
		}
		approx := ApproximateRangeSum(small.Transform(), s, sh)
		rel := math.Abs(approx-exact) / (1 + math.Abs(exact))
		if rel > worstSmall {
			worstSmall = rel
		}
	}
	// 64 of 1024 coefficients on a smooth dataset: small relative error.
	if worstSmall > 0.25 {
		t.Errorf("64-term synopsis worst relative error %.3f", worstSmall)
	}
}
