// Package query answers point and range-sum queries directly from tiled,
// disk-resident wavelet transforms, counting the block I/O each strategy
// pays. It demonstrates the two benefits §3 claims for the block allocation
// strategy: path locality (a root path crosses ~log_B N tiles instead of
// log N blocks) and the stored per-tile scaling coefficients, which let a
// point query finish after reading a single block.
package query

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// PointStandard answers a point query from a materialized standard-form
// tiled store using only the deepest tile per dimension: the tile's scaling
// slot plus the in-tile path details reconstruct the value, so exactly one
// block is read. The store must have been filled with
// tile.MaterializeStandard.
func PointStandard(st *tile.Store, point []int) (float64, int, error) {
	tiling, ok := st.Tiling().(*tile.Standard)
	if !ok {
		return 0, 0, fmt.Errorf("query: PointStandard needs a *Standard tiling, got %T", st.Tiling())
	}
	d := tiling.Dims()
	arrShape, _ := domainShape(st)
	if err := ValidatePoint(arrShape, point); err != nil {
		return 0, 0, err
	}
	// Per-dimension: the leaf tile and the weighted slots inside it.
	type sel struct {
		slot   int
		weight float64
	}
	perDim := make([][]sel, d)
	block := 0
	B := tiling.Dim(0).BlockSize()
	for t := 0; t < d; t++ {
		oneD := tiling.Dim(t)
		n := oneD.Levels()
		p := point[t]
		var leafBlock int
		var sels []sel
		if n == 0 {
			leafBlock = 0
			sels = []sel{{slot: 0, weight: 1}}
		} else {
			leaf := haar.Index(n, 1, p/2)
			leafBlock, _ = oneD.Locate1D(leaf)
			jr, _ := oneD.RootOf(leafBlock)
			sels = []sel{{slot: 0, weight: 1}} // the tile's scaling slot
			for level := jr; level >= 1; level-- {
				idx := haar.Index(n, level, p>>uint(level))
				_, slot := oneD.Locate1D(idx)
				w := 1.0
				if p>>uint(level-1)&1 == 1 {
					w = -1
				}
				sels = append(sels, sel{slot: slot, weight: w})
			}
		}
		perDim[t] = sels
		block = block*oneD.NumBlocks() + leafBlock
	}
	data, err := st.ReadTile(block)
	if err != nil {
		return 0, 0, err
	}
	// Cross product of per-dimension selections, all within this block.
	choice := make([]int, d)
	sum := 0.0
	for {
		w := 1.0
		slot := 0
		for t := 0; t < d; t++ {
			s := perDim[t][choice[t]]
			slot = slot*B + s.slot
			w *= s.weight
		}
		sum += w * data[slot]
		t := d - 1
		for ; t >= 0; t-- {
			choice[t]++
			if choice[t] < len(perDim[t]) {
				break
			}
			choice[t] = 0
		}
		if t < 0 {
			return sum, 1, nil
		}
	}
}

// PointNonStandard answers a point query from a materialized non-standard
// tiled store, reading only the leaf tile (its scaling slot plus the
// quadtree path inside it).
func PointNonStandard(st *tile.Store, point []int) (float64, int, error) {
	tiling, ok := st.Tiling().(*tile.NonStandard)
	if !ok {
		return 0, 0, fmt.Errorf("query: PointNonStandard needs a *NonStandard tiling, got %T", st.Tiling())
	}
	n, rootPos := tiling.RootOf(0)
	d := len(rootPos)
	arrShape, _ := domainShape(st)
	if err := ValidatePoint(arrShape, point); err != nil {
		return 0, 0, err
	}
	if n == 0 {
		data, err := st.ReadTile(0)
		if err != nil {
			return 0, 0, err
		}
		return data[0], 1, nil
	}
	// The leaf tile: the block holding the level-1 details over the point.
	base := 1 << uint(n-1)
	leafCoords := make([]int, d)
	for t := 0; t < d; t++ {
		leafCoords[t] = point[t] / 2
	}
	leafCoords[0] += base
	block, _ := tiling.Locate(leafCoords)
	jr, _ := tiling.RootOf(block)
	data, err := st.ReadTile(block)
	if err != nil {
		return 0, 0, err
	}
	u := data[0] // the tile's root-cell scaling coefficient
	coords := make([]int, d)
	for j := jr; j >= 1; j-- {
		jbase := 1 << uint(n-j)
		for mask := 1; mask < 1<<uint(d); mask++ {
			w := 1.0
			for t := 0; t < d; t++ {
				coords[t] = point[t] >> uint(j)
				if mask>>uint(t)&1 == 1 {
					coords[t] += jbase
					if point[t]>>uint(j-1)&1 == 1 {
						w = -w
					}
				}
			}
			_, slot := tiling.Locate(coords)
			u += w * data[slot]
		}
	}
	return u, 1, nil
}

// PointViaRootPath answers a point query by reading the full Lemma-1
// coefficient cross product through whatever tiling the store uses — the
// strategy available without the stored scaling coefficients. The returned
// count is the number of distinct blocks read, which is what the tiling
// ablation compares.
func PointViaRootPath(st *tile.Store, shape, point []int) (float64, int, error) {
	if err := ValidatePoint(shape, point); err != nil {
		return 0, 0, err
	}
	reader := tile.NewReader(st)
	coefs := wavelet.PointPathStandard(shape, point)
	if err := preload(st, reader, coefs); err != nil {
		return 0, reader.BlocksRead(), err
	}
	sum := 0.0
	for _, c := range coefs {
		v, err := reader.Get(c.Coords)
		if err != nil {
			return 0, reader.BlocksRead(), err
		}
		sum += c.Weight * v
	}
	return sum, reader.BlocksRead(), nil
}

// preload batch-loads the distinct blocks a coefficient set touches with
// one vectored read. The set — hence BlocksRead — is identical to what the
// per-coefficient loop would load one block at a time.
func preload(st *tile.Store, reader *tile.Reader, coefs []wavelet.Coef) error {
	blocks := make([]int, len(coefs))
	for i, c := range coefs {
		blocks[i], _ = st.Tiling().Locate(c.Coords)
	}
	return reader.Preload(blocks)
}

// RangeSumStandard answers a box aggregate over [start, start+shape) by
// combining the Lemma-2 coefficient set through the store, returning the
// sum and the number of distinct blocks read.
func RangeSumStandard(st *tile.Store, arrShape, start, shape []int) (float64, int, error) {
	if err := ValidateBox(arrShape, start, shape); err != nil {
		return 0, 0, err
	}
	reader := tile.NewReader(st)
	coefs := wavelet.RangeSumCoefsStandard(arrShape, start, shape)
	if err := preload(st, reader, coefs); err != nil {
		return 0, reader.BlocksRead(), err
	}
	sum := 0.0
	for _, c := range coefs {
		v, err := reader.Get(c.Coords)
		if err != nil {
			return 0, reader.BlocksRead(), err
		}
		sum += c.Weight * v
	}
	return sum, reader.BlocksRead(), nil
}

// RangeSumNonStandard answers a box aggregate from a non-standard tiled
// store by quadtree descent (fully covered cells contribute average times
// volume), reading blocks through a cache.
func RangeSumNonStandard(st *tile.Store, start, shape []int) (float64, int, error) {
	tiling, ok := st.Tiling().(*tile.NonStandard)
	if !ok {
		return 0, 0, fmt.Errorf("query: RangeSumNonStandard needs a *NonStandard tiling, got %T", st.Tiling())
	}
	n, rootPos := tiling.RootOf(0)
	d := len(rootPos)
	arrShape, _ := domainShape(st)
	if err := ValidateBox(arrShape, start, shape); err != nil {
		return 0, 0, err
	}
	reader := tile.NewReader(st)
	end := make([]int, d)
	for i := range start {
		end[i] = start[i] + shape[i]
	}
	origin := make([]int, d)
	rootAvg, err := reader.Get(origin)
	if err != nil {
		return 0, reader.BlocksRead(), err
	}
	coords := make([]int, d)
	var descend func(j int, cell []int, u float64) (float64, error)
	descend = func(j int, cell []int, u float64) (float64, error) {
		size := 1 << uint(j)
		fullyIn, disjoint := true, false
		for i := 0; i < d; i++ {
			lo, hi := cell[i]*size, (cell[i]+1)*size
			if hi <= start[i] || lo >= end[i] {
				disjoint = true
				break
			}
			if lo < start[i] || hi > end[i] {
				fullyIn = false
			}
		}
		if disjoint {
			return 0, nil
		}
		if fullyIn {
			vol := 1.0
			for i := 0; i < d; i++ {
				vol *= float64(size)
			}
			return u * vol, nil
		}
		base := 1 << uint(n-j)
		details := make([]float64, 1<<uint(d))
		for mask := 1; mask < 1<<uint(d); mask++ {
			for i := 0; i < d; i++ {
				coords[i] = cell[i]
				if mask>>uint(i)&1 == 1 {
					coords[i] += base
				}
			}
			v, err := reader.Get(coords)
			if err != nil {
				return 0, err
			}
			details[mask] = v
		}
		sum := 0.0
		child := make([]int, d)
		for q := 0; q < 1<<uint(d); q++ {
			cu := u
			for mask := 1; mask < 1<<uint(d); mask++ {
				w := 1.0
				for i := 0; i < d; i++ {
					if mask>>uint(i)&1 == 1 && q>>uint(i)&1 == 1 {
						w = -w
					}
				}
				cu += w * details[mask]
			}
			for i := 0; i < d; i++ {
				child[i] = 2*cell[i] + q>>uint(i)&1
			}
			part, err := descend(j-1, child, cu)
			if err != nil {
				return 0, err
			}
			sum += part
		}
		return sum, nil
	}
	rootCell := make([]int, d)
	sum, err := descend(n, rootCell, rootAvg)
	return sum, reader.BlocksRead(), err
}

// PointBatch answers many point queries against a standard-form tiled store
// with one shared block cache, returning the values and the number of
// distinct blocks read for the whole batch. Batching amortizes the shared
// upper-tree tiles across queries — the access-pattern benefit the tiling
// was designed for.
func PointBatch(st *tile.Store, shape []int, points [][]int) ([]float64, int, error) {
	reader := tile.NewReader(st)
	out := make([]float64, len(points))
	paths := make([][]wavelet.Coef, len(points))
	var all []wavelet.Coef
	for i, p := range points {
		if err := ValidatePoint(shape, p); err != nil {
			return nil, reader.BlocksRead(), err
		}
		paths[i] = wavelet.PointPathStandard(shape, p)
		all = append(all, paths[i]...)
	}
	if err := preload(st, reader, all); err != nil {
		return nil, reader.BlocksRead(), err
	}
	for i := range points {
		sum := 0.0
		for _, c := range paths[i] {
			v, err := reader.Get(c.Coords)
			if err != nil {
				return nil, reader.BlocksRead(), err
			}
			sum += c.Weight * v
		}
		out[i] = sum
	}
	return out, reader.BlocksRead(), nil
}
