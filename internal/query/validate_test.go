package query

import (
	"math"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func vStdStore(t *testing.T, shape []int) *tile.Store {
	t.Helper()
	ns := make([]int, len(shape))
	for i, s := range shape {
		n := 0
		for e := s; e > 1; e /= 2 {
			n++
		}
		ns[i] = n
	}
	tiling := tile.NewStandard(ns, 2)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	hat := wavelet.Transform(dataset.Dense(shape, 1), wavelet.Standard)
	if err := tile.MaterializeStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	return st
}

func vNonStdStore(t *testing.T, n, d int) *tile.Store {
	t.Helper()
	tiling := tile.NewNonStandard(n, d, 2)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	shape := make([]int, d)
	for i := range shape {
		shape[i] = 1 << uint(n)
	}
	hat := wavelet.Transform(dataset.Dense(shape, 1), wavelet.NonStandard)
	if err := tile.MaterializeNonStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	return st
}

// Every query entry point must reject malformed inputs with an error — not
// a panic — since they sit behind the network API.
func TestQueryEntryPointsRejectBadInputsWithoutPanic(t *testing.T) {
	shape := []int{16, 16}
	std := vStdStore(t, shape)
	nonstd := vNonStdStore(t, 4, 2)

	badPoints := [][]int{
		nil,
		{},
		{1},
		{1, 2, 3},
		{-1, 0},
		{0, -5},
		{16, 0},
		{0, 1 << 40},
		{math.MaxInt, math.MaxInt},
	}
	for _, p := range badPoints {
		if _, _, err := PointStandard(std, p); err == nil {
			t.Errorf("PointStandard(%v): no error", p)
		}
		if _, _, err := PointNonStandard(nonstd, p); err == nil {
			t.Errorf("PointNonStandard(%v): no error", p)
		}
		if _, _, err := PointViaRootPath(std, shape, p); err == nil {
			t.Errorf("PointViaRootPath(%v): no error", p)
		}
		if _, _, err := PointBatch(std, shape, [][]int{{1, 1}, p}); err == nil {
			t.Errorf("PointBatch(%v): no error", p)
		}
	}

	badBoxes := []struct{ start, extent []int }{
		{nil, nil},
		{[]int{0}, []int{4}},
		{[]int{0, 0}, []int{4}},
		{[]int{-1, 0}, []int{4, 4}},
		{[]int{0, 0}, []int{0, 4}},
		{[]int{0, 0}, []int{-2, 4}},
		{[]int{0, 0}, []int{17, 1}},
		{[]int{12, 0}, []int{8, 4}},
		{[]int{math.MaxInt - 1, 0}, []int{4, 4}},
		{[]int{4, 4}, []int{math.MaxInt, math.MaxInt}},
	}
	for _, b := range badBoxes {
		if _, _, err := RangeSumStandard(std, shape, b.start, b.extent); err == nil {
			t.Errorf("RangeSumStandard(%v,%v): no error", b.start, b.extent)
		}
		if _, _, err := RangeSumNonStandard(nonstd, b.start, b.extent); err == nil {
			t.Errorf("RangeSumNonStandard(%v,%v): no error", b.start, b.extent)
		}
		if _, err := ProgressiveRangeSum(std, shape, b.start, b.extent); err == nil {
			t.Errorf("ProgressiveRangeSum(%v,%v): no error", b.start, b.extent)
		}
	}
}

// Valid queries still work after the validation change, and the streaming
// progressive form agrees with the batch form.
func TestProgressiveFuncMatchesBatch(t *testing.T) {
	shape := []int{16, 16}
	std := vStdStore(t, shape)
	start, extent := []int{3, 2}, []int{7, 9}
	want, err := ProgressiveRangeSum(std, shape, start, extent)
	if err != nil {
		t.Fatal(err)
	}
	var got []ProgressiveStep
	err = ProgressiveRangeSumFunc(std, shape, start, extent, func(s ProgressiveStep) error {
		got = append(got, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("steps: %d vs %d", len(got), len(want))
	}
	final := got[len(got)-1]
	exact, _, err := RangeSumStandard(std, shape, start, extent)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(final.Estimate-exact) > 1e-9 {
		t.Errorf("final estimate %v, exact %v", final.Estimate, exact)
	}
}
