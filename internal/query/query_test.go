package query

import (
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func materializedStandard(t *testing.T, src *ndarray.Array, b int) *tile.Store {
	t.Helper()
	shape := src.Shape()
	ns := make([]int, len(shape))
	for i, s := range shape {
		n := 0
		for 1<<uint(n) < s {
			n++
		}
		ns[i] = n
	}
	tiling := tile.NewStandard(ns, b)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.MaterializeStandard(st, wavelet.TransformStandard(src)); err != nil {
		t.Fatal(err)
	}
	return st
}

func materializedNonStandard(t *testing.T, src *ndarray.Array, n, d, b int) *tile.Store {
	t.Helper()
	tiling := tile.NewNonStandard(n, d, b)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.MaterializeNonStandard(st, wavelet.TransformNonStandard(src)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPointStandardSingleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := dataset.Dense([]int{32, 16}, 1)
	st := materializedStandard(t, src, 2)
	for trial := 0; trial < 100; trial++ {
		p := []int{rng.Intn(32), rng.Intn(16)}
		got, io, err := PointStandard(st, p)
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("point %v cost %d blocks, want 1", p, io)
		}
		if want := src.At(p...); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, got, want)
		}
	}
}

func TestPointStandard1D(t *testing.T) {
	src := dataset.Dense([]int{64}, 2)
	st := materializedStandard(t, src, 3)
	for p := 0; p < 64; p++ {
		got, io, err := PointStandard(st, []int{p})
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("point %d cost %d blocks", p, io)
		}
		if want := src.At(p); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %d = %g, want %g", p, got, want)
		}
	}
}

func TestPointNonStandardSingleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := dataset.Dense([]int{16, 16}, 3)
	st := materializedNonStandard(t, src, 4, 2, 2)
	for trial := 0; trial < 100; trial++ {
		p := []int{rng.Intn(16), rng.Intn(16)}
		got, io, err := PointNonStandard(st, p)
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("point %v cost %d blocks, want 1", p, io)
		}
		if want := src.At(p...); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, got, want)
		}
	}
}

func TestPointNonStandard3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := dataset.Dense([]int{8, 8, 8}, 4)
	st := materializedNonStandard(t, src, 3, 3, 1)
	for trial := 0; trial < 50; trial++ {
		p := []int{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
		got, io, err := PointNonStandard(st, p)
		if err != nil {
			t.Fatal(err)
		}
		if io != 1 {
			t.Fatalf("point %v cost %d blocks", p, io)
		}
		if want := src.At(p...); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, got, want)
		}
	}
}

func TestPointViaRootPathCorrectAndCostlier(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := dataset.Dense([]int{64, 64}, 5)
	st := materializedStandard(t, src, 2)
	shape := []int{64, 64}
	for trial := 0; trial < 30; trial++ {
		p := []int{rng.Intn(64), rng.Intn(64)}
		got, io, err := PointViaRootPath(st, shape, p)
		if err != nil {
			t.Fatal(err)
		}
		if want := src.At(p...); math.Abs(got-want) > 1e-8 {
			t.Fatalf("point %v = %g, want %g", p, got, want)
		}
		if io < 1 {
			t.Fatal("no blocks read")
		}
		// The scaling-slot strategy is strictly cheaper.
		if _, one, _ := PointStandard(st, p); one >= io && io > 1 {
			t.Fatalf("root-path read %d blocks but single-tile read %d", io, one)
		}
	}
}

func TestTilingBeatsSequentialForPointQueries(t *testing.T) {
	// Ablation: the same root-path query on a sequential layout touches
	// more blocks than on the tree tiling (path locality).
	rng := rand.New(rand.NewSource(5))
	src := dataset.Dense([]int{64, 64}, 6)
	hat := wavelet.TransformStandard(src)
	shape := []int{64, 64}

	tiled := materializedStandard(t, src, 2)
	seqTiling := tile.NewSequential(shape, 16)
	seqStore, err := tile.NewStore(storage.NewMemStore(16), seqTiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.WriteArray(seqStore, hat); err != nil {
		t.Fatal(err)
	}
	var tiledIO, seqIO int
	for trial := 0; trial < 50; trial++ {
		p := []int{rng.Intn(64), rng.Intn(64)}
		_, io1, err := PointViaRootPath(tiled, shape, p)
		if err != nil {
			t.Fatal(err)
		}
		_, io2, err := PointViaRootPath(seqStore, shape, p)
		if err != nil {
			t.Fatal(err)
		}
		tiledIO += io1
		seqIO += io2
	}
	if tiledIO >= seqIO {
		t.Errorf("tiled point queries %d blocks, sequential %d — tiling should win", tiledIO, seqIO)
	}
}

func TestRangeSumStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := dataset.Dense([]int{32, 32}, 7)
	st := materializedStandard(t, src, 2)
	shape := []int{32, 32}
	for trial := 0; trial < 50; trial++ {
		s := []int{rng.Intn(32), rng.Intn(32)}
		sh := []int{1 + rng.Intn(32-s[0]), 1 + rng.Intn(32-s[1])}
		got, io, err := RangeSumStandard(st, shape, s, sh)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SumRange(s, sh)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v+%v = %g, want %g", s, sh, got, want)
		}
		if io < 1 || io > st.Tiling().NumBlocks() {
			t.Fatalf("box %v+%v read %d blocks", s, sh, io)
		}
	}
}

func TestRangeSumNonStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := dataset.Dense([]int{16, 16}, 8)
	st := materializedNonStandard(t, src, 4, 2, 2)
	for trial := 0; trial < 50; trial++ {
		s := []int{rng.Intn(16), rng.Intn(16)}
		sh := []int{1 + rng.Intn(16-s[0]), 1 + rng.Intn(16-s[1])}
		got, io, err := RangeSumNonStandard(st, s, sh)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SumRange(s, sh)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v+%v = %g, want %g", s, sh, got, want)
		}
		if io < 1 {
			t.Fatal("no blocks read")
		}
	}
}

func TestRangeSumFullDomainIsCheap(t *testing.T) {
	src := dataset.Dense([]int{64, 64}, 9)
	st := materializedStandard(t, src, 2)
	got, io, err := RangeSumStandard(st, []int{64, 64}, []int{0, 0}, []int{64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-src.Sum()) > 1e-5 {
		t.Errorf("full sum %g, want %g", got, src.Sum())
	}
	if io != 1 {
		t.Errorf("full-domain sum read %d blocks, want 1 (just the average)", io)
	}
}

func TestQueryTypeErrors(t *testing.T) {
	seq := tile.NewSequential([]int{8}, 4)
	st, err := tile.NewStore(storage.NewMemStore(4), seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PointStandard(st, []int{1}); err == nil {
		t.Error("PointStandard accepted a sequential tiling")
	}
	if _, _, err := PointNonStandard(st, []int{1}); err == nil {
		t.Error("PointNonStandard accepted a sequential tiling")
	}
	if _, _, err := RangeSumNonStandard(st, []int{0}, []int{1}); err == nil {
		t.Error("RangeSumNonStandard accepted a sequential tiling")
	}
}

func TestPointBatchSharesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := dataset.Dense([]int{64, 64}, 10)
	st := materializedStandard(t, src, 2)
	shape := []int{64, 64}
	var points [][]int
	for i := 0; i < 50; i++ {
		points = append(points, []int{rng.Intn(64), rng.Intn(64)})
	}
	vals, batchIO, err := PointBatch(st, shape, points)
	if err != nil {
		t.Fatal(err)
	}
	var individualIO int
	for i, p := range points {
		v, io, err := PointViaRootPath(st, shape, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-vals[i]) > 1e-9 || math.Abs(v-src.At(p...)) > 1e-8 {
			t.Fatalf("point %v: batch %g, single %g, truth %g", p, vals[i], v, src.At(p...))
		}
		individualIO += io
	}
	if batchIO >= individualIO {
		t.Errorf("batch I/O %d should be below summed individual I/O %d", batchIO, individualIO)
	}
}
