package tile

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// referenceBuckets builds the expected BucketSet contents via the generic
// per-coefficient enumeration the kernels replace.
func referenceBuckets(t Tiling, each func(visit func(coords []int, delta float64))) map[int]*Bucket {
	out := make(map[int]*Bucket)
	each(func(coords []int, delta float64) {
		block, slot := t.Locate(coords)
		b, ok := out[block]
		if !ok {
			b = &Bucket{Block: block, Deltas: make([]float64, t.BlockSize())}
			out[block] = b
		}
		b.Deltas[slot] += delta
		b.Touches++
	})
	return out
}

func compareBuckets(t *testing.T, want map[int]*Bucket, got []Bucket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("kernel touched %d tiles, reference %d", len(got), len(want))
	}
	prev := -1
	for i := range got {
		g := &got[i]
		if g.Block <= prev {
			t.Fatalf("buckets not in ascending block order at %d", g.Block)
		}
		prev = g.Block
		w, ok := want[g.Block]
		if !ok {
			t.Fatalf("kernel touched block %d the reference does not", g.Block)
		}
		if g.Touches != w.Touches {
			t.Errorf("block %d: kernel counts %d touches, reference %d", g.Block, g.Touches, w.Touches)
		}
		for s := range g.Deltas {
			if d := g.Deltas[s] - w.Deltas[s]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("block %d slot %d: kernel %v, reference %v", g.Block, s, g.Deltas[s], w.Deltas[s])
			}
		}
	}
}

func randHat(shape []int, seed int64) *ndarray.Array {
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(shape...)
	data := a.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return a
}

func TestAccumulateEmbedStandardMatchesGeneric(t *testing.T) {
	cases := []struct {
		n     []int // per-dimension levels
		b     int
		block dyadic.Range
	}{
		{n: []int{4}, b: 2, block: dyadic.Range{dyadic.NewInterval(2, 1)}},
		{n: []int{4}, b: 1, block: dyadic.Range{dyadic.NewInterval(0, 13)}},
		{n: []int{4, 4}, b: 2, block: dyadic.Range{dyadic.NewInterval(2, 1), dyadic.NewInterval(2, 3)}},
		{n: []int{4, 4}, b: 1, block: dyadic.Range{dyadic.NewInterval(2, 0), dyadic.NewInterval(0, 7)}},
		{n: []int{3, 5}, b: 2, block: dyadic.Range{dyadic.NewInterval(1, 2), dyadic.NewInterval(3, 1)}},
		{n: []int{3, 3, 3}, b: 1, block: dyadic.Range{dyadic.NewInterval(1, 1), dyadic.NewInterval(2, 0), dyadic.NewInterval(1, 3)}},
		{n: []int{4, 4}, b: 4, block: dyadic.Range{dyadic.NewInterval(4, 0), dyadic.NewInterval(4, 0)}},
	}
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			tiling := NewStandard(tc.n, tc.b)
			shape := make([]int, len(tc.n))
			sub := make([]int, len(tc.n))
			for i, n := range tc.n {
				shape[i] = 1 << uint(n)
				sub[i] = tc.block[i].Len()
			}
			bHat := randHat(sub, int64(ci+1))

			want := referenceBuckets(tiling, func(visit func([]int, float64)) {
				core.EachEmbedStandard(shape, tc.block, bHat, visit)
			})
			bs := NewBucketSet(tiling.BlockSize())
			AccumulateEmbedStandard(tiling, shape, tc.block, bHat, bs)
			compareBuckets(t, want, bs.Buckets())
		})
	}
}

func TestAccumulateShiftNonStandardMatchesGeneric(t *testing.T) {
	cases := []struct {
		n, d, b, m int
		pos        []int
	}{
		{n: 4, d: 1, b: 2, m: 2, pos: []int{1}},
		{n: 4, d: 2, b: 2, m: 2, pos: []int{1, 3}},
		{n: 4, d: 2, b: 1, m: 3, pos: []int{0, 1}},
		{n: 3, d: 3, b: 1, m: 2, pos: []int{1, 0, 1}},
		{n: 5, d: 2, b: 2, m: 2, pos: []int{5, 2}},
		{n: 4, d: 2, b: 2, m: 0, pos: []int{7, 11}},
	}
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			tiling := NewNonStandard(tc.n, tc.d, tc.b)
			shape := make([]int, tc.d)
			sub := make([]int, tc.d)
			for i := range shape {
				shape[i] = 1 << uint(tc.n)
				sub[i] = 1 << uint(tc.m)
			}
			bHat := randHat(sub, int64(ci+100))

			want := referenceBuckets(tiling, func(visit func([]int, float64)) {
				core.EachShiftNonStandard(shape, tc.m, tc.pos, bHat, visit)
			})
			bs := NewBucketSet(tiling.BlockSize())
			AccumulateShiftNonStandard(tiling, shape, tc.m, tc.pos, bHat, bs)
			compareBuckets(t, want, bs.Buckets())
		})
	}
}

func TestAccumulateFallsBackForGenericTilings(t *testing.T) {
	// Sequential is not a specialized tiling; the kernels must still produce
	// the generic enumeration's buckets through the fallback path.
	shape := []int{8, 8}
	tiling := NewSequential(shape, 4)
	block := dyadic.Range{dyadic.NewInterval(2, 1), dyadic.NewInterval(2, 0)}
	bHat := randHat([]int{4, 4}, 9)

	want := referenceBuckets(tiling, func(visit func([]int, float64)) {
		core.EachEmbedStandard(shape, block, bHat, visit)
	})
	bs := NewBucketSet(tiling.BlockSize())
	AccumulateEmbedStandard(tiling, shape, block, bHat, bs)
	compareBuckets(t, want, bs.Buckets())
}

func TestApplyBucketsMatchesBatch(t *testing.T) {
	tiling := NewStandard([]int{3, 3}, 1)
	mkStore := func() *Store {
		st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	shape := []int{8, 8}
	block := dyadic.Range{dyadic.NewInterval(2, 1), dyadic.NewInterval(2, 1)}
	bHat := randHat([]int{4, 4}, 3)

	// Reference: the per-coefficient Batch path.
	want := mkStore()
	batch := NewBatch(want)
	var addErr error
	core.EachEmbedStandard(shape, block, bHat, func(coords []int, delta float64) {
		if addErr == nil {
			addErr = batch.Add(coords, delta)
		}
	})
	if addErr != nil {
		t.Fatal(addErr)
	}
	if err := batch.Flush(); err != nil {
		t.Fatal(err)
	}

	got := mkStore()
	bs := NewBucketSet(tiling.BlockSize())
	AccumulateEmbedStandard(tiling, shape, block, bHat, bs)
	if err := got.ApplyBuckets(bs.Buckets()); err != nil {
		t.Fatal(err)
	}

	for b := 0; b < tiling.NumBlocks(); b++ {
		wd, err := want.ReadTile(b)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := got.ReadTile(b)
		if err != nil {
			t.Fatal(err)
		}
		for s := range wd {
			if wd[s] != gd[s] {
				t.Fatalf("block %d slot %d: buckets %v != batch %v", b, s, gd[s], wd[s])
			}
		}
	}
}
