package tile

import "sort"

// Reader provides cached coefficient reads over a tiled store for the
// duration of one logical operation: each block is read from the underlying
// store at most once, so the number of distinct blocks touched — the
// quantity the paper's query-cost analyses bound — is exactly the I/O the
// wrapped storage.Counting observes.
type Reader struct {
	store *Store
	cache map[int][]float64
}

// NewReader starts a read cache over st.
func NewReader(st *Store) *Reader {
	return &Reader{store: st, cache: make(map[int][]float64)}
}

// Get reads one coefficient, loading its block on first touch.
func (r *Reader) Get(coords []int) (float64, error) {
	block, slot := r.store.Tiling().Locate(coords)
	data, err := r.block(block)
	if err != nil {
		return 0, err
	}
	return data[slot], nil
}

// Slot reads a raw block slot (used for the redundant scaling slots that
// have no coefficient coordinates).
func (r *Reader) Slot(block, slot int) (float64, error) {
	data, err := r.block(block)
	if err != nil {
		return 0, err
	}
	return data[slot], nil
}

// Preload loads every listed block not already cached with one vectored
// read. Callers that can enumerate a query's blocks up front (the facade's
// full-transform read, batched point queries) use it to turn the per-
// coefficient load loop into a single device request per consecutive run.
// Duplicate ids are welcome; BlocksRead still counts distinct blocks.
func (r *Reader) Preload(blocks []int) error {
	var missing []int
	seen := make(map[int]bool)
	for _, id := range blocks {
		if _, ok := r.cache[id]; !ok && !seen[id] {
			seen[id] = true
			missing = append(missing, id)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Ints(missing)
	data, err := r.store.ReadTiles(missing)
	if err != nil {
		return err
	}
	for i, id := range missing {
		r.cache[id] = data[i]
	}
	return nil
}

func (r *Reader) block(id int) ([]float64, error) {
	if data, ok := r.cache[id]; ok {
		return data, nil
	}
	data, err := r.store.ReadTile(id)
	if err != nil {
		return nil, err
	}
	r.cache[id] = data
	return data, nil
}

// BlocksRead returns the number of distinct blocks loaded so far.
func (r *Reader) BlocksRead() int { return len(r.cache) }
