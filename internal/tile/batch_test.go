package tile

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

func TestBatchCoalescesBlockIO(t *testing.T) {
	tiling := NewOneD(6, 2)
	counting := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := NewStore(counting, tiling)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(st)
	// Touch many coefficients inside one tile: the finest-level details of
	// indices 32..35 live in the same subtree band but different tiles;
	// use a path instead — indices 1, 2, 3 share the top tile for b=2.
	for _, idx := range []int{1, 2, 3} {
		if err := b.Add([]int{idx}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if b.Touched() != 1 {
		t.Fatalf("touched %d blocks, want 1", b.Touched())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := counting.Stats()
	if stats.Reads != 1 || stats.Writes != 1 {
		t.Errorf("stats = %+v, want one read and one write", stats)
	}
}

func TestBatchAddAccumulates(t *testing.T) {
	tiling := NewOneD(4, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(st)
	if err := b.Add([]int{5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]int{5}, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Set([]int{6}, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get([]int{5}); v != 5 {
		t.Errorf("accumulated value %g", v)
	}
	if v, _ := st.Get([]int{6}); v != 7 {
		t.Errorf("set value %g", v)
	}
}

func TestBatchFlushResets(t *testing.T) {
	tiling := NewOneD(4, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(st)
	if err := b.Add([]int{3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.Touched() != 0 {
		t.Error("batch not reset after flush")
	}
	// A second flush is a no-op.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSeesPriorState(t *testing.T) {
	tiling := NewOneD(4, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Set([]int{9}, 10); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(st)
	if err := b.Add([]int{9}, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get([]int{9}); v != 15 {
		t.Errorf("read-modify-write got %g, want 15", v)
	}
}

func TestBlockCapacitiesSumToDomain(t *testing.T) {
	for _, c := range []struct {
		shape  []int
		tiling Tiling
	}{
		{[]int{64}, NewOneD(6, 2)},
		{[]int{16, 16}, NewStandard([]int{4, 4}, 2)},
		{[]int{16, 16}, NewNonStandard(4, 2, 2)},
		{[]int{8, 8}, NewSequential([]int{8, 8}, 16)},
	} {
		caps := BlockCapacities(c.shape, c.tiling)
		total := 0
		for _, v := range caps {
			total += v
		}
		want := 1
		for _, s := range c.shape {
			want *= s
		}
		if total != want {
			t.Errorf("%T: capacities sum to %d, want %d", c.tiling, total, want)
		}
	}
}

func TestWriteArrayRoundTrip(t *testing.T) {
	tiling := NewNonStandard(3, 2, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	hat := ndarray.New(8, 8)
	for i := range hat.Data() {
		hat.Data()[i] = float64(i) + 1
	}
	if err := WriteArray(st, hat); err != nil {
		t.Fatal(err)
	}
	bad := 0
	hat.Each(func(coords []int, v float64) {
		got, err := st.Get(coords)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d coefficients differ after WriteArray", bad)
	}
}
