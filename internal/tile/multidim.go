package tile

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
)

// Standard tiles a standard-form multidimensional transform as the cross
// product of per-dimension OneD tilings (§3.2): a block holds the B^d
// generalized coefficients formed by crossing d single-dimensional tile
// bases.
type Standard struct {
	dims []*OneD
	b    int
}

// NewStandard creates the standard-form tiling for a transform whose
// dimension t has size 2^n[t], with per-dimension block edge 2^b (so blocks
// hold 2^(b*d) slots).
func NewStandard(n []int, b int) *Standard {
	if len(n) == 0 {
		panic("tile: NewStandard with no dimensions")
	}
	dims := make([]*OneD, len(n))
	for i, ni := range n {
		dims[i] = NewOneD(ni, b)
	}
	return &Standard{dims: dims, b: b}
}

// Dims returns the dimensionality.
func (s *Standard) Dims() int { return len(s.dims) }

// Dim returns the per-dimension tiling for dimension t.
func (s *Standard) Dim(t int) *OneD { return s.dims[t] }

// BlockSize returns B^d.
func (s *Standard) BlockSize() int {
	return bitutil.IntPow(1<<uint(s.b), len(s.dims))
}

// NumBlocks returns the product of per-dimension tile counts.
func (s *Standard) NumBlocks() int {
	n := 1
	for _, d := range s.dims {
		n *= d.NumBlocks()
	}
	return n
}

// Locate maps transform coordinates to (block, slot) by combining the
// per-dimension locations in mixed radix.
func (s *Standard) Locate(coords []int) (block, slot int) {
	if len(coords) != len(s.dims) {
		panic(fmt.Sprintf("tile: Standard.Locate with %d coords for %d dims", len(coords), len(s.dims)))
	}
	for t, d := range s.dims {
		bt, st := d.Locate1D(coords[t])
		block = block*d.NumBlocks() + bt
		slot = slot*d.BlockSize() + st
	}
	return block, slot
}

// PerDimBlocks splits a flat block ID back into per-dimension tile IDs.
func (s *Standard) PerDimBlocks(block int) []int {
	out := make([]int, len(s.dims))
	for t := len(s.dims) - 1; t >= 0; t-- {
		nb := s.dims[t].NumBlocks()
		out[t] = block % nb
		block /= nb
	}
	return out
}

// NonStandard tiles a non-standard transform of a cubic d-dimensional
// domain of edge 2^n into quadtree subtrees of height b (§3.2, Figure 7).
// Each block holds (D^h - 1)/(D - 1) nodes of D-1 detail coefficients each
// (D = 2^d, h the tile height) plus the root scaling in slot 0; full-height
// tiles use exactly B^d = D^b slots.
type NonStandard struct {
	n, d, b int
	h0      int
	cumRoot []int // cumRoot[t] = number of tiles in bands < t
}

// NewNonStandard creates the non-standard tiling.
func NewNonStandard(n, d, b int) *NonStandard {
	if n < 0 || d < 1 || b < 1 {
		panic(fmt.Sprintf("tile: NewNonStandard(%d, %d, %d)", n, d, b))
	}
	h0 := n % b
	if h0 == 0 {
		h0 = bitutil.Min(b, n)
	}
	t := &NonStandard{n: n, d: d, b: b, h0: h0}
	cum := []int{0}
	for s := 0; s < n; {
		cum = append(cum, cum[len(cum)-1]+bitutil.IntPow(1<<uint(s), d))
		if s == 0 {
			s = h0
		} else {
			s += b
		}
	}
	t.cumRoot = cum
	return t
}

// BlockSize returns B^d = 2^(b*d).
func (t *NonStandard) BlockSize() int {
	return bitutil.IntPow(1<<uint(t.b), t.d)
}

// NumBlocks returns the number of quadtree subtree tiles.
func (t *NonStandard) NumBlocks() int {
	if t.n == 0 {
		return 1
	}
	return t.cumRoot[len(t.cumRoot)-1]
}

func (t *NonStandard) bandStart(band int) int {
	if band == 0 {
		return 0
	}
	return t.h0 + (band-1)*t.b
}

func (t *NonStandard) bandOf(depth int) int {
	if depth < t.h0 {
		return 0
	}
	return 1 + (depth-t.h0)/t.b
}

// Locate maps Mallat-layout coordinates of the cubic transform to
// (block, slot). The overall average at the origin maps to slot 0 of the
// top tile. The decode of wavelet.NonStdLevel is inlined here without its
// subband/pos slices: Locate is the innermost call of the write-once
// engines (once per coefficient via OnceWriter.Set and BlockCapacities),
// so it must not allocate.
func (t *NonStandard) Locate(coords []int) (block, slot int) {
	if len(coords) != t.d {
		panic(fmt.Sprintf("tile: NonStandard.Locate with %d coords for d=%d", len(coords), t.d))
	}
	max := 0
	for _, c := range coords {
		if c > max {
			max = c
		}
	}
	if max == 0 { // the overall average
		return 0, 0
	}
	// The node depth is fixed by the largest coordinate: base = 2^depth is
	// the largest power of two <= max (level j = n - depth).
	depth := bitutil.FloorLog2(max)
	base := 1 << uint(depth)
	band := t.bandOf(depth)
	start := t.bandStart(band)
	delta := depth - start // node depth within the tile
	// Tile root cell: the ancestor of the node's cell delta levels up.
	rootIdx := 0
	localIdx := 0
	mask := 0
	for i, c := range coords {
		p := c
		if c >= base {
			mask |= 1 << uint(i)
			p = c - base
		}
		if p >= base {
			panic(fmt.Sprintf("wavelet: coords %v are not a valid non-standard position", coords))
		}
		root := p >> uint(delta)
		rootIdx = rootIdx<<uint(start) | root
		localIdx = localIdx<<uint(delta) | (p - root<<uint(delta))
	}
	block = t.cumRoot[band] + rootIdx
	// Nodes above this one inside the tile: (D^delta - 1)/(D - 1).
	dPow := bitutil.IntPow(1<<uint(t.d), delta)
	nodesAbove := (dPow - 1) / (1<<uint(t.d) - 1)
	slot = 1 + (nodesAbove+localIdx)*(1<<uint(t.d)-1) + (mask - 1)
	return block, slot
}

// RootOf returns the level and cell position of the tile's root node, whose
// scaling coefficient occupies slot 0. For the top tile it returns the root
// node (level n, origin).
func (t *NonStandard) RootOf(block int) (level int, pos []int) {
	if block < 0 || block >= t.NumBlocks() {
		panic(fmt.Sprintf("tile: NonStandard.RootOf(%d)", block))
	}
	pos = make([]int, t.d)
	if t.n == 0 {
		return 0, pos
	}
	band := 0
	for band+1 < len(t.cumRoot) && t.cumRoot[band+1] <= block {
		band++
	}
	start := t.bandStart(band)
	rootIdx := block - t.cumRoot[band]
	for i := t.d - 1; i >= 0; i-- {
		pos[i] = rootIdx & (1<<uint(start) - 1)
		rootIdx >>= uint(start)
	}
	return t.n - start, pos
}

// TileHeight returns how many quadtree levels the block spans.
func (t *NonStandard) TileHeight(block int) int {
	if t.n == 0 {
		return 0
	}
	if block < t.cumRoot[1] {
		return t.h0
	}
	return t.b
}
