package tile

import (
	"sort"

	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// Batch accumulates coefficient updates against a tiled store and applies
// them with one read and one write per touched block. The chunked
// transformation engines use one Batch per chunk, which realizes the paper's
// per-chunk I/O accounting: a chunk's SHIFT-SPLIT output costs as many block
// I/Os as it touches tiles (§4.2), regardless of how many coefficients land
// in each tile.
type Batch struct {
	store  *Store
	blocks map[int][]float64 // block id -> working copy (loaded on first touch)
	reads  int
}

// NewBatch starts an empty batch against st.
func NewBatch(st *Store) *Batch {
	return &Batch{store: st, blocks: make(map[int][]float64)}
}

func (b *Batch) load(block int) ([]float64, error) {
	if data, ok := b.blocks[block]; ok {
		return data, nil
	}
	data, err := b.store.ReadTile(block)
	if err != nil {
		return nil, err
	}
	b.reads++
	b.blocks[block] = data
	return data, nil
}

// Add accumulates a delta into the coefficient at coords.
func (b *Batch) Add(coords []int, delta float64) error {
	block, slot := b.store.Tiling().Locate(coords)
	data, err := b.load(block)
	if err != nil {
		return err
	}
	data[slot] += delta
	return nil
}

// Set overwrites the coefficient at coords.
func (b *Batch) Set(coords []int, v float64) error {
	block, slot := b.store.Tiling().Locate(coords)
	data, err := b.load(block)
	if err != nil {
		return err
	}
	data[slot] = v
	return nil
}

// Touched returns the number of distinct blocks in the batch so far.
func (b *Batch) Touched() int { return len(b.blocks) }

// Flush writes every touched block back in ascending id order (so the
// physical write sequence is deterministic, which crash-recovery tests
// rely on) and resets the batch.
func (b *Batch) Flush() error {
	ids := make([]int, 0, len(b.blocks))
	for id := range b.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	data := make([][]float64, len(ids))
	for i, id := range ids {
		data[i] = b.blocks[id]
	}
	if err := b.store.WriteTiles(ids, data); err != nil {
		return err
	}
	b.blocks = make(map[int][]float64)
	return nil
}

// BlockCapacities returns, for every block of the tiling, how many real
// transform coefficients of an array with the given shape map into it. Slots
// holding redundant scaling coefficients (slot 0 of non-root tiles) and
// unused slots of shallow tiles are not counted.
func BlockCapacities(shape []int, t Tiling) map[int]int {
	caps := make(map[int]int)
	coords := make([]int, len(shape))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(shape) {
			block, _ := t.Locate(coords)
			caps[block]++
			return
		}
		for v := 0; v < shape[dim]; v++ {
			coords[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	return caps
}

// OnceWriter writes final (write-once) coefficient values through a tiled
// store, buffering each block in memory until every real coefficient slot
// of that block has been set and then writing it exactly once. This is the
// I/O discipline of the z-ordered non-standard transformation (Result 2):
// every output block costs a single write and no reads.
type OnceWriter struct {
	store      *Store
	capacities map[int]int
	pending    map[int]*onceBlock
	written    map[int]bool
	// Completed blocks recycle their buffers here: every BlockStore copies
	// written data before returning, so once WriteTile succeeds the slice
	// (zeroed) and the onceBlock header can back the next block. The
	// steady-state footprint is then the pending high-water mark, not one
	// allocation per written block.
	freeData [][]float64
	freeOB   []*onceBlock
}

type onceBlock struct {
	data      []float64 // nil until the first non-zero value arrives
	remaining int
}

// NewOnceWriter creates a write-once sink; capacities must come from
// BlockCapacities for the same shape and tiling.
func NewOnceWriter(st *Store, capacities map[int]int) *OnceWriter {
	return &OnceWriter{
		store:      st,
		capacities: capacities,
		pending:    make(map[int]*onceBlock),
		written:    make(map[int]bool),
	}
}

// open returns the pending block header, creating one (from the freelist
// when possible) on first touch.
func (w *OnceWriter) open(block int) *onceBlock {
	ob, ok := w.pending[block]
	if !ok {
		if n := len(w.freeOB); n > 0 {
			ob = w.freeOB[n-1]
			w.freeOB = w.freeOB[:n-1]
		} else {
			ob = &onceBlock{}
		}
		ob.data, ob.remaining = nil, w.capacities[block]
		w.pending[block] = ob
	}
	return ob
}

// materialize gives the pending block a zeroed buffer.
func (w *OnceWriter) materialize(ob *onceBlock) {
	if n := len(w.freeData); n > 0 {
		ob.data = w.freeData[n-1]
		w.freeData = w.freeData[:n-1]
	} else {
		ob.data = make([]float64, w.store.Tiling().BlockSize())
	}
}

// complete writes a finished block and recycles its storage.
func (w *OnceWriter) complete(block int, ob *onceBlock) error {
	delete(w.pending, block)
	data := ob.data
	ob.data = nil
	w.freeOB = append(w.freeOB, ob)
	if data == nil {
		return nil // all-zero block: nothing to store
	}
	err := w.store.WriteTile(block, data)
	clear(data)
	w.freeData = append(w.freeData, data)
	if err != nil {
		return err
	}
	w.written[block] = true
	return nil
}

// Set records a final coefficient value, flushing its block if complete.
// Blocks that turn out to be entirely zero are never written at all —
// unwritten blocks read back as zeros, which is how the engines inherit the
// paper's sparse-data savings (§5.1) for free.
func (w *OnceWriter) Set(coords []int, v float64) error {
	block, slot := w.store.Tiling().Locate(coords)
	ob := w.open(block)
	if v != 0 {
		if ob.data == nil {
			w.materialize(ob)
		}
		ob.data[slot] = v
	}
	ob.remaining--
	if ob.remaining == 0 {
		return w.complete(block, ob)
	}
	return nil
}

// MergeBucket folds one chunk's bucketed write-once values into the writer:
// semantically identical to calling Set once per contributed coefficient
// (deltas holds final values by slot, touches how many were contributed),
// but without re-deriving (block, slot) per coefficient. Zero values leave
// the block unmaterialized exactly as Set(coords, 0) does, so all-zero
// blocks are still never written.
func (w *OnceWriter) MergeBucket(block int, deltas []float64, touches int) error {
	if touches == 0 {
		return nil
	}
	ob := w.open(block)
	for slot, v := range deltas {
		if v == 0 {
			continue
		}
		if ob.data == nil {
			w.materialize(ob)
		}
		ob.data[slot] = v
	}
	ob.remaining -= touches
	if ob.remaining <= 0 {
		return w.complete(block, ob)
	}
	return nil
}

// Pending returns the number of blocks still buffered (the engine's
// memory footprint beyond the chunk itself).
func (w *OnceWriter) Pending() int { return len(w.pending) }

// MaxWrites returns how many blocks have been written so far.
func (w *OnceWriter) MaxWrites() int { return len(w.written) }

// Flush writes any incomplete blocks (normally only blocks whose unset
// slots are reserved scaling slots) in ascending id order. All-zero blocks
// are dropped.
func (w *OnceWriter) Flush() error {
	ids := make([]int, 0, len(w.pending))
	for id := range w.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var outIDs []int
	var outData [][]float64
	for _, id := range ids {
		ob := w.pending[id]
		delete(w.pending, id)
		if ob.data == nil {
			continue // all-zero block: nothing to store
		}
		outIDs = append(outIDs, id)
		outData = append(outData, ob.data)
	}
	if err := w.store.WriteTiles(outIDs, outData); err != nil {
		return err
	}
	for _, id := range outIDs {
		w.written[id] = true
	}
	return nil
}

// WriteArray stores a full in-memory transform through a tiled store with
// one write per block — the cost of sequentially dumping a transform.
func WriteArray(st *Store, hat *ndarray.Array) error {
	caps := BlockCapacities(hat.Shape(), st.Tiling())
	w := NewOnceWriter(st, caps)
	var err error
	hat.Each(func(coords []int, v float64) {
		if err != nil {
			return
		}
		err = w.Set(coords, v)
	})
	if err != nil {
		return err
	}
	return w.Flush()
}
