package tile

import (
	"fmt"
	"sync"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// Store provides coefficient-level access to a transform laid out on a
// BlockStore according to a Tiling. Every access goes through whole-block
// reads and writes, so wrapping the underlying store with storage.Counting
// (and optionally a storage.BufferPool to model available memory) measures
// exactly the block I/O the paper's figures report.
//
// The read path (Get, ReadTile, Tiling) uses per-call scratch buffers and is
// safe for concurrent use provided the underlying BlockStore is; the
// serving layer relies on this. Read-modify-write mutations (Set, Add) are
// serialized against each other by an internal mutex, but concurrent
// mutation of the same coefficients from multiple writers still needs
// external coordination, as do WriteTile, Commit, and Close.
type Store struct {
	bs     storage.BlockStore
	tiling Tiling
	mu     sync.Mutex // serializes read-modify-write block updates
	bufs   sync.Pool  // *[]float64 scratch blocks
}

// NewStore binds a tiling to a block store. The store's block size must
// match the tiling's.
func NewStore(bs storage.BlockStore, tiling Tiling) (*Store, error) {
	if bs.BlockSize() != tiling.BlockSize() {
		return nil, fmt.Errorf("tile: block size mismatch: store %d, tiling %d", bs.BlockSize(), tiling.BlockSize())
	}
	return &Store{bs: bs, tiling: tiling}, nil
}

func (s *Store) getBuf() *[]float64 {
	if b, ok := s.bufs.Get().(*[]float64); ok {
		return b
	}
	b := make([]float64, s.bs.BlockSize())
	return &b
}

// Tiling returns the tiling in use.
func (s *Store) Tiling() Tiling { return s.tiling }

// Blocks returns the underlying block store.
func (s *Store) Blocks() storage.BlockStore { return s.bs }

// Get reads one coefficient.
func (s *Store) Get(coords []int) (float64, error) {
	block, slot := s.tiling.Locate(coords)
	bp := s.getBuf()
	defer s.bufs.Put(bp)
	if err := s.bs.ReadBlock(block, *bp); err != nil {
		return 0, err
	}
	return (*bp)[slot], nil
}

// Set writes one coefficient (read-modify-write of its block).
func (s *Store) Set(coords []int, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	block, slot := s.tiling.Locate(coords)
	bp := s.getBuf()
	defer s.bufs.Put(bp)
	if err := s.bs.ReadBlock(block, *bp); err != nil {
		return err
	}
	(*bp)[slot] = v
	return s.bs.WriteBlock(block, *bp)
}

// Add accumulates a delta into one coefficient (read-modify-write).
func (s *Store) Add(coords []int, delta float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	block, slot := s.tiling.Locate(coords)
	bp := s.getBuf()
	defer s.bufs.Put(bp)
	if err := s.bs.ReadBlock(block, *bp); err != nil {
		return err
	}
	(*bp)[slot] += delta
	return s.bs.WriteBlock(block, *bp)
}

// ReadTile returns a copy of one whole block.
func (s *Store) ReadTile(block int) ([]float64, error) {
	out := make([]float64, s.tiling.BlockSize())
	if err := s.bs.ReadBlock(block, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteTile stores one whole block.
func (s *Store) WriteTile(block int, data []float64) error {
	return s.bs.WriteBlock(block, data)
}

// ReadTiles returns copies of the given blocks, fetched as one vectored
// read when the underlying stack supports it (one device request per
// consecutive run instead of one per tile).
func (s *Store) ReadTiles(blocks []int) ([][]float64, error) {
	if len(blocks) == 0 {
		return nil, nil
	}
	bufs := storage.SliceFrames(make([]float64, len(blocks)*s.tiling.BlockSize()), len(blocks), s.tiling.BlockSize())
	if err := storage.ReadBlocksOf(s.bs, blocks, bufs); err != nil {
		return nil, err
	}
	return bufs, nil
}

// WriteTiles stores whole blocks as one vectored write; the physical write
// order is the slice order, exactly as a WriteTile loop would produce.
func (s *Store) WriteTiles(blocks []int, data [][]float64) error {
	return storage.WriteBlocksOf(s.bs, blocks, data)
}

// Commit makes the writes since the previous commit durable and atomic
// when the underlying block store stack is transactional (it contains a
// storage.Durable); otherwise it flushes write-back caches and is a no-op
// at the device. Maintenance engines call it at batch boundaries.
func (s *Store) Commit() error { return storage.CommitIfAble(s.bs) }

// Close closes the underlying block store.
func (s *Store) Close() error { return s.bs.Close() }
