package tile

import (
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/haar"
)

func TestOneDPartition(t *testing.T) {
	for _, c := range []struct{ n, b int }{{4, 2}, {5, 2}, {6, 3}, {6, 2}, {3, 4}, {1, 1}, {8, 3}} {
		tiling := NewOneD(c.n, c.b)
		B := tiling.BlockSize()
		seen := map[[2]int]int{}
		for idx := 0; idx < 1<<uint(c.n); idx++ {
			block, slot := tiling.Locate1D(idx)
			if block < 0 || block >= tiling.NumBlocks() {
				t.Fatalf("n=%d b=%d idx=%d: block %d out of [0,%d)", c.n, c.b, idx, block, tiling.NumBlocks())
			}
			if slot < 0 || slot >= B {
				t.Fatalf("n=%d b=%d idx=%d: slot %d out of [0,%d)", c.n, c.b, idx, slot, B)
			}
			if idx != 0 && slot == 0 {
				t.Fatalf("n=%d b=%d idx=%d: detail landed in scaling slot", c.n, c.b, idx)
			}
			key := [2]int{block, slot}
			if prev, dup := seen[key]; dup {
				t.Fatalf("n=%d b=%d: idx %d and %d share block %d slot %d", c.n, c.b, prev, idx, block, slot)
			}
			seen[key] = idx
		}
	}
}

func TestOneDFigure4Geometry(t *testing.T) {
	// Figure 4: a 32-coefficient tree with 4-coefficient blocks.
	// With n=5, b=2 the top band has height 1 (1 tile), then heights 2 and 2
	// (2 and 8 tiles): 11 tiles total.
	tiling := NewOneD(5, 2)
	if tiling.NumBlocks() != 11 {
		t.Errorf("NumBlocks = %d, want 11", tiling.NumBlocks())
	}
	if tiling.BlockSize() != 4 {
		t.Errorf("BlockSize = %d", tiling.BlockSize())
	}
	if h := tiling.TileHeight(0); h != 1 {
		t.Errorf("top tile height = %d, want 1", h)
	}
	if h := tiling.TileHeight(5); h != 2 {
		t.Errorf("full tile height = %d, want 2", h)
	}
}

func TestOneDAlignedCase(t *testing.T) {
	// b | n: every tile is full height, count = (2^n - 1)/(2^b - 1).
	tiling := NewOneD(6, 2)
	if got, want := tiling.NumBlocks(), (64-1)/(4-1); got != want {
		t.Errorf("NumBlocks = %d, want %d", got, want)
	}
	for blk := 0; blk < tiling.NumBlocks(); blk++ {
		if tiling.TileHeight(blk) != 2 {
			t.Fatalf("tile %d height %d", blk, tiling.TileHeight(blk))
		}
	}
}

func TestOneDPathTouchesFewTiles(t *testing.T) {
	// A root path of n levels crosses at most ceil(n/b) tiles: the core
	// benefit of tiling (§3).
	n, b := 12, 3
	tiling := NewOneD(n, b)
	for _, leaf := range []int{1 << uint(n-1), 1<<uint(n) - 1, 1<<uint(n-1) + 137} {
		blocks := map[int]bool{}
		for idx := leaf; idx > 0; idx /= 2 {
			blk, _ := tiling.Locate1D(idx)
			blocks[blk] = true
		}
		blk0, _ := tiling.Locate1D(0)
		blocks[blk0] = true
		if len(blocks) > (n+b-1)/b {
			t.Errorf("path from %d touches %d tiles, want <= %d", leaf, len(blocks), (n+b-1)/b)
		}
	}
}

func TestOneDTileIsSubtree(t *testing.T) {
	// All details in one block must form a connected subtree: each non-root
	// member's parent is in the same block.
	n, b := 7, 3
	tiling := NewOneD(n, b)
	members := map[int][]int{}
	for idx := 1; idx < 1<<uint(n); idx++ {
		blk, _ := tiling.Locate1D(idx)
		members[blk] = append(members[blk], idx)
	}
	for blk, idxs := range members {
		inBlk := map[int]bool{}
		for _, i := range idxs {
			inBlk[i] = true
		}
		rootCount := 0
		for _, i := range idxs {
			if !inBlk[i/2] {
				rootCount++
			}
		}
		if rootCount != 1 {
			t.Errorf("block %d has %d subtree roots", blk, rootCount)
		}
	}
}

func TestOneDRootOf(t *testing.T) {
	n, b := 6, 2
	tiling := NewOneD(n, b)
	for blk := 0; blk < tiling.NumBlocks(); blk++ {
		j, k := tiling.RootOf(blk)
		if blk == 0 {
			if j != n || k != 0 {
				t.Fatalf("top tile root = (%d,%d)", j, k)
			}
			continue
		}
		// The root detail w[j,k] must locate to this block at slot 1.
		gb, gs := tiling.Locate1D(haar.Index(n, j, k))
		if gb != blk || gs != 1 {
			t.Fatalf("RootOf(%d) = (%d,%d) but Locate gives block %d slot %d", blk, j, k, gb, gs)
		}
	}
}

func TestOneDDegenerateDomain(t *testing.T) {
	tiling := NewOneD(0, 2)
	if tiling.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d", tiling.NumBlocks())
	}
	blk, slot := tiling.Locate1D(0)
	if blk != 0 || slot != 0 {
		t.Errorf("Locate1D(0) = (%d,%d)", blk, slot)
	}
	if j, k := tiling.RootOf(0); j != 0 || k != 0 {
		t.Errorf("RootOf(0) = (%d,%d)", j, k)
	}
}

func TestSequentialTiling(t *testing.T) {
	s := NewSequential([]int{4, 4}, 4)
	if s.NumBlocks() != 4 || s.BlockSize() != 4 {
		t.Fatalf("geometry: %d blocks of %d", s.NumBlocks(), s.BlockSize())
	}
	seen := map[[2]int]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			blk, slot := s.Locate([]int{i, j})
			if blk != (i*4+j)/4 || slot != (i*4+j)%4 {
				t.Fatalf("Locate(%d,%d) = (%d,%d)", i, j, blk, slot)
			}
			seen[[2]int{blk, slot}] = true
		}
	}
	if len(seen) != 16 {
		t.Error("sequential mapping not bijective")
	}
}

func TestStandardPartition(t *testing.T) {
	tiling := NewStandard([]int{4, 3}, 2)
	seen := map[[2]int]bool{}
	count := 0
	for i := 0; i < 16; i++ {
		for j := 0; j < 8; j++ {
			blk, slot := tiling.Locate([]int{i, j})
			if blk < 0 || blk >= tiling.NumBlocks() || slot < 0 || slot >= tiling.BlockSize() {
				t.Fatalf("Locate(%d,%d) = (%d,%d) out of range", i, j, blk, slot)
			}
			key := [2]int{blk, slot}
			if seen[key] {
				t.Fatalf("(%d,%d) collides", i, j)
			}
			seen[key] = true
			count++
		}
	}
	if count != 128 {
		t.Errorf("visited %d coefficients", count)
	}
	if tiling.BlockSize() != 16 {
		t.Errorf("BlockSize = %d, want 16", tiling.BlockSize())
	}
}

func TestStandardPerDimBlocksRoundTrip(t *testing.T) {
	tiling := NewStandard([]int{4, 4, 4}, 2)
	for blk := 0; blk < tiling.NumBlocks(); blk++ {
		per := tiling.PerDimBlocks(blk)
		re := 0
		for t2 := 0; t2 < 3; t2++ {
			re = re*tiling.Dim(t2).NumBlocks() + per[t2]
		}
		if re != blk {
			t.Fatalf("PerDimBlocks(%d) = %v does not round trip", blk, per)
		}
	}
}

func TestNonStandardPartition(t *testing.T) {
	for _, c := range []struct{ n, d, b int }{{3, 2, 1}, {3, 2, 2}, {4, 2, 2}, {2, 3, 1}, {3, 1, 2}, {4, 2, 3}} {
		tiling := NewNonStandard(c.n, c.d, c.b)
		seen := map[[2]int]bool{}
		size := 1 << uint(c.n)
		coords := make([]int, c.d)
		var rec func(dim int)
		count := 0
		rec = func(dim int) {
			if dim == c.d {
				blk, slot := tiling.Locate(coords)
				if blk < 0 || blk >= tiling.NumBlocks() || slot < 0 || slot >= tiling.BlockSize() {
					t.Fatalf("n=%d d=%d b=%d coords %v -> (%d,%d) out of range (%d blocks of %d)",
						c.n, c.d, c.b, coords, blk, slot, tiling.NumBlocks(), tiling.BlockSize())
				}
				key := [2]int{blk, slot}
				if seen[key] {
					t.Fatalf("n=%d d=%d b=%d: coords %v collide at (%d,%d)", c.n, c.d, c.b, coords, blk, slot)
				}
				seen[key] = true
				count++
				return
			}
			for v := 0; v < size; v++ {
				coords[dim] = v
				rec(dim + 1)
			}
		}
		rec(0)
		want := 1
		for i := 0; i < c.d; i++ {
			want *= size
		}
		if count != want {
			t.Errorf("visited %d coefficients, want %d", count, want)
		}
	}
}

func TestNonStandardFigure7Geometry(t *testing.T) {
	// Figure 7: 8x8 array (n=3, d=2) tiled with 16-coefficient blocks (b=2):
	// top band height 1 (1 tile with the root node), then one band of height
	// 2 containing 4 subtrees: 5 tiles.
	tiling := NewNonStandard(3, 2, 2)
	if tiling.BlockSize() != 16 {
		t.Errorf("BlockSize = %d, want 16", tiling.BlockSize())
	}
	if tiling.NumBlocks() != 5 {
		t.Errorf("NumBlocks = %d, want 5", tiling.NumBlocks())
	}
}

func TestNonStandardRootOfRoundTrip(t *testing.T) {
	tiling := NewNonStandard(5, 2, 2)
	for blk := 0; blk < tiling.NumBlocks(); blk++ {
		level, pos := tiling.RootOf(blk)
		if blk == 0 {
			if level != 5 || pos[0] != 0 || pos[1] != 0 {
				t.Fatalf("top tile root = (%d,%v)", level, pos)
			}
			continue
		}
		// A detail of the root node must locate into this block.
		base := 1 << uint(5-level)
		coords := []int{pos[0] + base, pos[1]}
		gb, _ := tiling.Locate(coords)
		if gb != blk {
			t.Fatalf("RootOf(%d) = (%d,%v) but root detail %v locates to block %d", blk, level, pos, coords, gb)
		}
	}
}

func TestNonStandardQuadPathTilesBound(t *testing.T) {
	// The quadtree path of any point must cross at most ceil(n/b) tiles.
	n, d, b := 6, 2, 2
	tiling := NewNonStandard(n, d, b)
	point := []int{41, 27}
	blocks := map[int]bool{}
	for j := 1; j <= n; j++ {
		base := 1 << uint(n-j)
		coords := []int{point[0]>>uint(j) + base, point[1] >> uint(j)}
		blk, _ := tiling.Locate(coords)
		blocks[blk] = true
	}
	if len(blocks) > (n+b-1)/b {
		t.Errorf("path crosses %d tiles, want <= %d", len(blocks), (n+b-1)/b)
	}
}

func TestTheoreticalTileCounts(t *testing.T) {
	if TheoreticalShiftTilesOneD(4, 2) != 4 {
		t.Error("shift tiles: M=16 B=4 should be 4")
	}
	if TheoreticalSplitTilesOneD(10, 4, 3) != 2 {
		t.Error("split tiles: (10-4)/3 = 2")
	}
}

func TestTileIndicesInvertLocate(t *testing.T) {
	for _, c := range []struct{ n, b int }{{6, 2}, {5, 2}, {7, 3}, {3, 4}} {
		tiling := NewOneD(c.n, c.b)
		seen := map[int]bool{}
		for blk := 0; blk < tiling.NumBlocks(); blk++ {
			for _, idx := range tiling.TileIndices(blk) {
				gb, _ := tiling.Locate1D(idx)
				if gb != blk {
					t.Fatalf("n=%d b=%d: index %d listed in tile %d but locates to %d", c.n, c.b, idx, blk, gb)
				}
				if seen[idx] {
					t.Fatalf("index %d listed twice", idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != 1<<uint(c.n) {
			t.Errorf("n=%d b=%d: enumerated %d indices, want %d", c.n, c.b, len(seen), 1<<uint(c.n))
		}
	}
}
