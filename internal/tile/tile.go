// Package tile implements the paper's optimal coefficient-to-disk-block
// allocation strategy (§3): wavelet trees are partitioned into subtree tiles
// sized to fit one disk block, so that the path-to-root access pattern of
// reconstruction touches as few blocks as possible, and so that SHIFT-SPLIT
// operations touch B (respectively log B) times fewer tiles than
// coefficients (§4.2, Table 1).
//
// Three tilings are provided:
//
//   - OneD: binary subtrees of height b for a 1-d transform of size 2^n
//     (Figure 4), 2^b - 1 details plus the subtree root's scaling
//     coefficient per block of B = 2^b slots;
//   - Standard: the cross product of d OneD tilings for a standard-form
//     multidimensional transform (§3.2), B^d slots per block; and
//   - NonStandard: quadtree subtrees of height b for a non-standard
//     transform (Figure 7), (D^b-1)/(D-1) nodes of D-1 coefficients each
//     (D = 2^d) plus the root scaling, B^d slots per block.
//
// A Sequential tiling (flat row-major chunks of the coefficient array,
// ignoring tree structure) is included as the ablation baseline.
//
// Slot 0 of every tile is reserved for the scaling coefficient of the tile's
// root. For the tile containing the tree root this is the transform's
// overall average; for all other tiles it is redundant derived data that the
// paper stores to cut query cost (a point can then be reconstructed from a
// single block).
package tile

import (
	"fmt"
	"math/bits"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
)

// Tiling maps coefficient coordinates of a transform to (block, slot).
type Tiling interface {
	// BlockSize returns the number of coefficient slots per block.
	BlockSize() int
	// NumBlocks returns the total number of blocks covering the domain.
	NumBlocks() int
	// Locate maps transform-layout coordinates to a block ID and a slot
	// within that block.
	Locate(coords []int) (block, slot int)
}

// OneD tiles the error tree of a 1-d transform of size 2^n into subtrees of
// height b. When b does not divide n the tile containing the tree root is
// shallower (height n mod b); every block still has 2^b slots.
type OneD struct {
	n, b    int
	h0      int   // height of the top band
	cumRoot []int // cumRoot[t] = number of tiles in bands < t
}

// NewOneD creates the 1-d tiling for a domain of size 2^n with block size
// 2^b coefficients.
func NewOneD(n, b int) *OneD {
	if n < 0 || b < 1 {
		panic(fmt.Sprintf("tile: NewOneD(%d, %d)", n, b))
	}
	h0 := n % b
	if h0 == 0 {
		h0 = bitutil.Min(b, n)
	}
	t := &OneD{n: n, b: b, h0: h0}
	// Band t starts at depth S(t): S(0)=0, S(t)=h0+(t-1)*b.
	cum := []int{0}
	for s := 0; s < n; {
		cum = append(cum, cum[len(cum)-1]+(1<<uint(s)))
		if s == 0 {
			s = t.h0
		} else {
			s += b
		}
	}
	t.cumRoot = cum
	return t
}

// Levels returns n.
func (t *OneD) Levels() int { return t.n }

// BlockSize returns 2^b.
func (t *OneD) BlockSize() int { return 1 << uint(t.b) }

// NumBlocks returns the number of tiles covering the tree (1 for the
// degenerate n = 0 domain, which holds only the average).
func (t *OneD) NumBlocks() int {
	if t.n == 0 {
		return 1
	}
	return t.cumRoot[len(t.cumRoot)-1]
}

// bandStart returns the starting depth of band index band.
func (t *OneD) bandStart(band int) int {
	if band == 0 {
		return 0
	}
	return t.h0 + (band-1)*t.b
}

// bandOf returns the band index of a node at the given tree depth.
func (t *OneD) bandOf(depth int) int {
	if depth < t.h0 {
		return 0
	}
	return 1 + (depth-t.h0)/t.b
}

// Locate1D maps a flat transform index to (block, slot). Index 0 (the
// overall average) maps to slot 0 of the top tile.
func (t *OneD) Locate1D(idx int) (block, slot int) {
	if idx < 0 || idx >= 1<<uint(t.n) {
		panic(fmt.Sprintf("tile: Locate1D(%d) out of range for n=%d", idx, t.n))
	}
	if idx == 0 {
		return 0, 0
	}
	depth := bits.Len(uint(idx)) - 1
	band := t.bandOf(depth)
	start := t.bandStart(band)
	delta := depth - start
	root := idx >> uint(delta)
	block = t.cumRoot[band] + root - 1<<uint(start)
	slot = idx - (root-1)<<uint(delta)
	return block, slot
}

// Locate implements Tiling for 1-element coordinate slices.
func (t *OneD) Locate(coords []int) (block, slot int) {
	if len(coords) != 1 {
		panic(fmt.Sprintf("tile: OneD.Locate with %d coords", len(coords)))
	}
	return t.Locate1D(coords[0])
}

// RootOf returns the error-tree level j and translation k of the root
// detail of a tile, so that slot 0 of the tile holds the scaling
// coefficient u[j,k]. For the top tile it returns (n, 0).
func (t *OneD) RootOf(block int) (j, k int) {
	if t.n == 0 {
		if block != 0 {
			panic(fmt.Sprintf("tile: RootOf(%d) for n=0", block))
		}
		return 0, 0
	}
	if block < 0 || block >= t.NumBlocks() {
		panic(fmt.Sprintf("tile: RootOf(%d) out of range", block))
	}
	band := 0
	for band+1 < len(t.cumRoot) && t.cumRoot[band+1] <= block {
		band++
	}
	start := t.bandStart(band)
	root := 1<<uint(start) + (block - t.cumRoot[band])
	// The root detail w[j,k] sits at flat index root = 2^(n-j) + k.
	j = t.n - start
	k = root - 1<<uint(start)
	return j, k
}

// TileHeight returns the subtree height of the given block (h0 for the top
// band, b otherwise), i.e. how many detail levels it spans.
func (t *OneD) TileHeight(block int) int {
	if t.n == 0 {
		return 0
	}
	if block < t.cumRoot[1] {
		return t.h0
	}
	return t.b
}

// Sequential is the ablation baseline: it ignores tree structure and packs
// coefficients into blocks by flat row-major offset.
type Sequential struct {
	shape     []int
	blockSize int
}

// NewSequential creates a sequential tiling of an arbitrary-shape transform.
func NewSequential(shape []int, blockSize int) *Sequential {
	if blockSize < 1 {
		panic(fmt.Sprintf("tile: NewSequential block size %d", blockSize))
	}
	return &Sequential{shape: append([]int(nil), shape...), blockSize: blockSize}
}

// BlockSize returns the configured block size.
func (s *Sequential) BlockSize() int { return s.blockSize }

// Shape returns the transform shape the tiling covers.
func (s *Sequential) Shape() []int { return append([]int(nil), s.shape...) }

// NumBlocks returns ceil(size / blockSize).
func (s *Sequential) NumBlocks() int {
	size := 1
	for _, e := range s.shape {
		size *= e
	}
	return bitutil.CeilDiv(size, s.blockSize)
}

// Locate maps coordinates by flat row-major offset.
func (s *Sequential) Locate(coords []int) (block, slot int) {
	if len(coords) != len(s.shape) {
		panic(fmt.Sprintf("tile: Sequential.Locate coords %v for shape %v", coords, s.shape))
	}
	off := 0
	for i, c := range coords {
		if c < 0 || c >= s.shape[i] {
			panic(fmt.Sprintf("tile: Sequential.Locate coords %v out of %v", coords, s.shape))
		}
		off = off*s.shape[i] + c
	}
	return off / s.blockSize, off % s.blockSize
}

// TileIndices returns the flat transform indices of the detail coefficients
// stored in a 1-d tile (the inverse of Locate1D, excluding the scaling
// slot). For the top tile of a non-degenerate domain the list also includes
// index 0, which is a real coefficient there.
func (t *OneD) TileIndices(block int) []int {
	if t.n == 0 {
		return []int{0}
	}
	j, k := t.RootOf(block)
	root := 1<<uint(t.n-j) + k
	height := t.TileHeight(block)
	var out []int
	if block == 0 {
		out = append(out, 0)
	}
	lo, hi := root, root
	for lvl := 0; lvl < height; lvl++ {
		for idx := lo; idx <= hi && idx < 1<<uint(t.n); idx++ {
			out = append(out, idx)
		}
		lo, hi = 2*lo, 2*hi+1
	}
	return out
}
