package tile

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// MaterializeStandard writes a complete standard-form transform into a tiled
// store, filling every slot of every block: real transform coefficients at
// their Locate positions plus the redundant generalized coefficients (mixed
// per-dimension scaling/detail products, §3.2) in the slots whose
// per-dimension component is the tile-root scaling.
func MaterializeStandard(st *Store, hat *ndarray.Array) error {
	tiling, ok := st.Tiling().(*Standard)
	if !ok {
		return fmt.Errorf("tile: MaterializeStandard needs a *Standard tiling, got %T", st.Tiling())
	}
	d := tiling.Dims()
	if hat.Dims() != d {
		return fmt.Errorf("tile: transform has %d dims, tiling %d", hat.Dims(), d)
	}
	// Per-dimension basis table: basis[t][tile*B+slot] lists the weighted
	// 1-d transform indices whose combination yields that slot's value
	// along dimension t (nil for unused slots of shallow tiles).
	basis := make([][][]core.Target, d)
	for t := 0; t < d; t++ {
		oneD := tiling.Dim(t)
		n := oneD.Levels()
		if hat.Extent(t) != 1<<uint(n) {
			return fmt.Errorf("tile: dim %d extent %d does not match tiling n=%d", t, hat.Extent(t), n)
		}
		B := oneD.BlockSize()
		table := make([][]core.Target, oneD.NumBlocks()*B)
		for idx := 0; idx < 1<<uint(n); idx++ {
			bt, slot := oneD.Locate1D(idx)
			table[bt*B+slot] = []core.Target{{Index: idx, Weight: 1}}
		}
		for bt := 1; bt < oneD.NumBlocks(); bt++ {
			j, k := oneD.RootOf(bt)
			table[bt*B+0] = core.ScalingPath1D(n, j, k)
		}
		basis[t] = table
	}
	// Fill every block.
	B := 1
	if d > 0 {
		B = tiling.Dim(0).BlockSize()
	}
	blockData := make([]float64, tiling.BlockSize())
	perDimTiles := make([]int, d)
	perDimSlots := make([]int, d)
	coords := make([]int, d)
	choice := make([]int, d)
	for block := 0; block < tiling.NumBlocks(); block++ {
		copy(perDimTiles, tiling.PerDimBlocks(block))
		for i := range blockData {
			blockData[i] = 0
		}
		for slot := 0; slot < tiling.BlockSize(); slot++ {
			// Decompose the flat slot into per-dimension slots.
			rem := slot
			empty := false
			lists := make([][]core.Target, d)
			for t := d - 1; t >= 0; t-- {
				perDimSlots[t] = rem % B
				rem /= B
				lists[t] = basis[t][perDimTiles[t]*B+perDimSlots[t]]
				if lists[t] == nil {
					empty = true
				}
			}
			if empty {
				continue
			}
			for t := range choice {
				choice[t] = 0
			}
			sum := 0.0
			for {
				w := 1.0
				for t := 0; t < d; t++ {
					tt := lists[t][choice[t]]
					coords[t] = tt.Index
					w *= tt.Weight
				}
				sum += w * hat.At(coords...)
				t := d - 1
				for ; t >= 0; t-- {
					choice[t]++
					if choice[t] < len(lists[t]) {
						break
					}
					choice[t] = 0
				}
				if t < 0 {
					break
				}
			}
			blockData[slot] = sum
		}
		if err := st.WriteTile(block, blockData); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeNonStandard writes a complete non-standard transform into a
// tiled store: every detail at its Locate position, the overall average in
// slot 0 of the top tile, and each other tile's root-cell scaling
// coefficient in its slot 0.
func MaterializeNonStandard(st *Store, hat *ndarray.Array) error {
	tiling, ok := st.Tiling().(*NonStandard)
	if !ok {
		return fmt.Errorf("tile: MaterializeNonStandard needs a *NonStandard tiling, got %T", st.Tiling())
	}
	if hat.Dims() != tiling.d {
		return fmt.Errorf("tile: transform has %d dims, tiling %d", hat.Dims(), tiling.d)
	}
	for t := 0; t < tiling.d; t++ {
		if hat.Extent(t) != 1<<uint(tiling.n) {
			return fmt.Errorf("tile: extent %d does not match tiling n=%d", hat.Extent(t), tiling.n)
		}
	}
	blocks := make(map[int][]float64, tiling.NumBlocks())
	get := func(id int) []float64 {
		b, ok := blocks[id]
		if !ok {
			b = make([]float64, tiling.BlockSize())
			blocks[id] = b
		}
		return b
	}
	hat.Each(func(coords []int, v float64) {
		block, slot := tiling.Locate(coords)
		get(block)[slot] = v
	})
	for block := 1; block < tiling.NumBlocks(); block++ {
		level, pos := tiling.RootOf(block)
		get(block)[0] = core.ScalingNonStandard(hat, level, pos)
	}
	for id := 0; id < tiling.NumBlocks(); id++ {
		if b, ok := blocks[id]; ok {
			if err := st.WriteTile(id, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// AffectedTiles returns the number of distinct blocks touched by a set of
// coefficient coordinates, the quantity Table 1 bounds for SHIFT and SPLIT.
func AffectedTiles(t Tiling, each func(visit func(coords []int))) int {
	seen := make(map[int]struct{})
	each(func(coords []int) {
		block, _ := t.Locate(coords)
		seen[block] = struct{}{}
	})
	return len(seen)
}

// TheoreticalShiftTilesOneD returns ceil(M/B), the §4.2 bound on tiles
// affected by a 1-d SHIFT of a block of size M with tile size B.
func TheoreticalShiftTilesOneD(m, b int) int {
	return bitutil.CeilDiv(1<<uint(m), 1<<uint(b))
}

// TheoreticalSplitTilesOneD returns ceil(log(N/M)/log B)-ish: the number of
// tiles met by a root path of n-m levels when tiles span b levels.
func TheoreticalSplitTilesOneD(n, m, b int) int {
	return bitutil.CeilDiv(n-m, b)
}
