package tile

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// materializeGroup bounds how many computed blocks a materialization
// buffers before flushing them as one vectored write: large enough that a
// full group is one device request over a consecutive run, small enough
// that the staging memory stays a fraction of the transform itself.
const materializeGroup = 64

// MaterializeStandard writes a complete standard-form transform into a tiled
// store, filling every slot of every block: real transform coefficients at
// their Locate positions plus the redundant generalized coefficients (mixed
// per-dimension scaling/detail products, §3.2) in the slots whose
// per-dimension component is the tile-root scaling.
//
// fill computes one block into a caller-provided buffer; it is exported to
// this package's materialization driver so block computation can run on a
// worker pool while writes stay sequential (ascending block IDs, the order
// crash recovery expects). MaterializeStandard itself computes and writes
// blocks in ascending order.
func MaterializeStandard(st *Store, hat *ndarray.Array) error {
	fill, numBlocks, err := StandardBlockFiller(st.Tiling(), hat)
	if err != nil {
		return err
	}
	// Compute blocks into bounded groups and flush each group as one
	// vectored write over its consecutive id run, keeping the ascending
	// write order the sequential loop produced.
	bsz := st.Tiling().BlockSize()
	for base := 0; base < numBlocks; base += materializeGroup {
		n := numBlocks - base
		if n > materializeGroup {
			n = materializeGroup
		}
		group := storage.SliceFrames(make([]float64, n*bsz), n, bsz)
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = base + i
			fill(base+i, group[i])
		}
		if err := st.WriteTiles(ids, group); err != nil {
			return err
		}
	}
	return nil
}

// StandardBlockFiller returns a function computing any single block of the
// materialized standard layout into a caller-provided buffer, plus the
// block count. The returned filler is safe for concurrent use from multiple
// goroutines (hat is only read); each call allocates only small per-call
// index scratch.
func StandardBlockFiller(t Tiling, hat *ndarray.Array) (fill func(block int, out []float64), numBlocks int, err error) {
	tiling, ok := t.(*Standard)
	if !ok {
		return nil, 0, fmt.Errorf("tile: MaterializeStandard needs a *Standard tiling, got %T", t)
	}
	d := tiling.Dims()
	if hat.Dims() != d {
		return nil, 0, fmt.Errorf("tile: transform has %d dims, tiling %d", hat.Dims(), d)
	}
	// Per-dimension basis table: basis[t][tile*B+slot] lists the weighted
	// 1-d transform indices whose combination yields that slot's value
	// along dimension t (nil for unused slots of shallow tiles).
	basis := make([][][]core.Target, d)
	for t := 0; t < d; t++ {
		oneD := tiling.Dim(t)
		n := oneD.Levels()
		if hat.Extent(t) != 1<<uint(n) {
			return nil, 0, fmt.Errorf("tile: dim %d extent %d does not match tiling n=%d", t, hat.Extent(t), n)
		}
		B := oneD.BlockSize()
		table := make([][]core.Target, oneD.NumBlocks()*B)
		for idx := 0; idx < 1<<uint(n); idx++ {
			bt, slot := oneD.Locate1D(idx)
			table[bt*B+slot] = []core.Target{{Index: idx, Weight: 1}}
		}
		for bt := 1; bt < oneD.NumBlocks(); bt++ {
			j, k := oneD.RootOf(bt)
			table[bt*B+0] = core.ScalingPath1D(n, j, k)
		}
		basis[t] = table
	}
	B := 1
	if d > 0 {
		B = tiling.Dim(0).BlockSize()
	}
	fill = func(block int, out []float64) {
		perDimTiles := tiling.PerDimBlocks(block)
		perDimSlots := make([]int, d)
		coords := make([]int, d)
		choice := make([]int, d)
		lists := make([][]core.Target, d)
		storage.ZeroFill(out)
		for slot := 0; slot < tiling.BlockSize(); slot++ {
			// Decompose the flat slot into per-dimension slots.
			rem := slot
			empty := false
			for t := d - 1; t >= 0; t-- {
				perDimSlots[t] = rem % B
				rem /= B
				lists[t] = basis[t][perDimTiles[t]*B+perDimSlots[t]]
				if lists[t] == nil {
					empty = true
				}
			}
			if empty {
				continue
			}
			for t := range choice {
				choice[t] = 0
			}
			sum := 0.0
			for {
				w := 1.0
				for t := 0; t < d; t++ {
					tt := lists[t][choice[t]]
					coords[t] = tt.Index
					w *= tt.Weight
				}
				sum += w * hat.At(coords...)
				t := d - 1
				for ; t >= 0; t-- {
					choice[t]++
					if choice[t] < len(lists[t]) {
						break
					}
					choice[t] = 0
				}
				if t < 0 {
					break
				}
			}
			out[slot] = sum
		}
	}
	return fill, tiling.NumBlocks(), nil
}

// MaterializeNonStandard writes a complete non-standard transform into a
// tiled store: every detail at its Locate position, the overall average in
// slot 0 of the top tile, and each other tile's root-cell scaling
// coefficient in its slot 0.
func MaterializeNonStandard(st *Store, hat *ndarray.Array) error {
	blocks, scaling, err := NonStandardBlocks(st.Tiling(), hat)
	if err != nil {
		return err
	}
	for block := 1; block < len(blocks); block++ {
		blocks[block][0] = scaling(block)
	}
	ids := make([]int, len(blocks))
	for id := range blocks {
		ids[id] = id
	}
	// The whole layout is one consecutive run 0..numBlocks-1: a single
	// vectored write in the same ascending order as the per-tile loop.
	return st.WriteTiles(ids, blocks)
}

// NonStandardBlocks lays hat out into dense per-block slices (details and
// the overall average at their Locate positions) and returns a function
// computing any non-root block's slot-0 scaling coefficient. The scaling
// function only reads hat and is safe for concurrent use, which lets the
// materialization driver compute the per-tile scalings on a worker pool
// while keeping writes sequential in ascending block order.
func NonStandardBlocks(t Tiling, hat *ndarray.Array) ([][]float64, func(block int) float64, error) {
	tiling, ok := t.(*NonStandard)
	if !ok {
		return nil, nil, fmt.Errorf("tile: MaterializeNonStandard needs a *NonStandard tiling, got %T", t)
	}
	if hat.Dims() != tiling.d {
		return nil, nil, fmt.Errorf("tile: transform has %d dims, tiling %d", hat.Dims(), tiling.d)
	}
	for t := 0; t < tiling.d; t++ {
		if hat.Extent(t) != 1<<uint(tiling.n) {
			return nil, nil, fmt.Errorf("tile: extent %d does not match tiling n=%d", hat.Extent(t), tiling.n)
		}
	}
	blocks := make([][]float64, tiling.NumBlocks())
	for i := range blocks {
		blocks[i] = make([]float64, tiling.BlockSize())
	}
	hat.Each(func(coords []int, v float64) {
		block, slot := tiling.Locate(coords)
		blocks[block][slot] = v
	})
	scaling := func(block int) float64 {
		level, pos := tiling.RootOf(block)
		return core.ScalingNonStandard(hat, level, pos)
	}
	return blocks, scaling, nil
}

// AffectedTiles returns the number of distinct blocks touched by a set of
// coefficient coordinates, the quantity Table 1 bounds for SHIFT and SPLIT.
func AffectedTiles(t Tiling, each func(visit func(coords []int))) int {
	seen := make(map[int]struct{})
	each(func(coords []int) {
		block, _ := t.Locate(coords)
		seen[block] = struct{}{}
	})
	return len(seen)
}

// TheoreticalShiftTilesOneD returns ceil(M/B), the §4.2 bound on tiles
// affected by a 1-d SHIFT of a block of size M with tile size B.
func TheoreticalShiftTilesOneD(m, b int) int {
	return bitutil.CeilDiv(1<<uint(m), 1<<uint(b))
}

// TheoreticalSplitTilesOneD returns ceil(log(N/M)/log B)-ish: the number of
// tiles met by a root path of n-m levels when tiles span b levels.
func TheoreticalSplitTilesOneD(n, m, b int) int {
	return bitutil.CeilDiv(n-m, b)
}
