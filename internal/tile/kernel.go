package tile

import (
	"fmt"
	"sort"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
)

// Bucket holds the deltas one chunk contributes to one destination tile.
// Deltas is a dense block-sized slice (slot-indexed); Touches counts the
// individual coefficient contributions accumulated into it, which is what
// OnceWriter capacity accounting consumes.
type Bucket struct {
	Block   int
	Deltas  []float64
	Touches int
}

// BucketSet accumulates the SHIFT-SPLIT output of one chunk, bucketed by
// destination tile. It is the unit of work handed from a transform worker to
// the applier: applying one bucket costs exactly one tile read and one tile
// write, preserving the paper's per-chunk I/O accounting regardless of how
// many coefficients land in each tile.
//
// Accumulation order within a bucket is fixed by the kernels below, so the
// floating-point sums are identical for any worker count.
//
// A set is reusable: Reset recycles every delta slice onto an internal
// freelist, so an engine that pools one BucketSet per worker allocates
// bucket storage only until the high-water tile count is reached.
type BucketSet struct {
	blockSize int
	index     map[int]int
	buckets   []Bucket
	free      [][]float64 // zeroed block-sized slices awaiting reuse
}

// NewBucketSet creates an empty set for tiles of the given slot count.
func NewBucketSet(blockSize int) *BucketSet {
	return &BucketSet{blockSize: blockSize, index: make(map[int]int)}
}

// bucket returns the bucket for a block, creating it on first touch. The
// returned pointer is invalidated by the next bucket call.
func (bs *BucketSet) bucket(block int) *Bucket {
	if i, ok := bs.index[block]; ok {
		return &bs.buckets[i]
	}
	var deltas []float64
	if n := len(bs.free); n > 0 {
		deltas = bs.free[n-1]
		bs.free = bs.free[:n-1]
	} else {
		deltas = make([]float64, bs.blockSize)
	}
	bs.index[block] = len(bs.buckets)
	bs.buckets = append(bs.buckets, Bucket{Block: block, Deltas: deltas})
	return &bs.buckets[len(bs.buckets)-1]
}

// Reset returns the set to empty, recycling every bucket's delta slice for
// the next accumulation. Buckets previously handed out by Buckets() are
// invalidated: their Deltas are zeroed and will be reused.
func (bs *BucketSet) Reset() {
	for i := range bs.buckets {
		b := &bs.buckets[i]
		clear(b.Deltas)
		bs.free = append(bs.free, b.Deltas)
		b.Deltas = nil
	}
	bs.buckets = bs.buckets[:0]
	if bs.index == nil {
		bs.index = make(map[int]int)
	} else {
		clear(bs.index)
	}
}

// Add accumulates one contribution (the generic, per-coefficient path used
// with tilings the flat kernels do not specialize).
func (bs *BucketSet) Add(block, slot int, delta float64) {
	b := bs.bucket(block)
	b.Deltas[slot] += delta
	b.Touches++
}

// Len returns the number of distinct tiles touched so far.
func (bs *BucketSet) Len() int { return len(bs.buckets) }

// Buckets returns the accumulated buckets in ascending block order. The
// returned slice (and every Deltas inside it) stays valid until the next
// Reset; the set must not be accumulated into again before then.
func (bs *BucketSet) Buckets() []Bucket {
	sort.Slice(bs.buckets, func(i, j int) bool { return bs.buckets[i].Block < bs.buckets[j].Block })
	return bs.buckets
}

// ApplyBuckets folds bucketed deltas into the store: one ReadTile and one
// WriteTile per bucket, exactly the I/O of a tile.Batch holding the same
// tiles, but issued as one vectored read of every touched tile followed by
// one vectored write. Buckets arrive in ascending block order (BucketSet
// sorts them), so the batch is one consecutive run per dense region and the
// physical write sequence matches what the interleaved loop produced.
func (s *Store) ApplyBuckets(buckets []Bucket) error {
	if len(buckets) == 0 {
		return nil
	}
	blocks := make([]int, len(buckets))
	for i := range buckets {
		blocks[i] = buckets[i].Block
	}
	tiles, err := s.ReadTiles(blocks)
	if err != nil {
		return err
	}
	for i := range buckets {
		data := tiles[i]
		for slot, dv := range buckets[i].Deltas {
			if dv != 0 {
				data[slot] += dv
			}
		}
	}
	return s.WriteTiles(blocks, tiles)
}

// locTarget is a located 1-d embedding target: weight plus (tile, slot)
// along one dimension.
type locTarget struct {
	w      float64
	bt, st int
}

// detailRun is a maximal run of consecutive innermost-dimension detail
// sources whose targets occupy consecutive slots of one 1-d tile.
type detailRun struct {
	src, n, bt, st int
}

// stdDimTab is the per-dimension geometry of a standard-form embedding.
type stdDimTab struct {
	nb, bsz, m int // 1-d tile count, 1-d tile slot count, chunk extent
	split      []locTarget
	det        []locTarget // det[i-1] locates the target of source index i
	runs       []detailRun // innermost dimension only
}

// AccumulateEmbedStandard buckets the complete SHIFT-SPLIT embedding of bHat
// (the standard transform of the block's contents) by destination tile of t.
// It produces exactly the contributions core.EachEmbedStandard enumerates,
// in a fixed order, but without per-coefficient coordinate slices: for a
// *Standard tiling the pure-SHIFT bulk — (M_1-1)···(M_d-1) sources, each
// with a single weight-1 target — is applied as contiguous row adds per
// wavelet level, and only the split fringe walks a target cross product.
// Other tilings fall back to the per-coefficient enumeration.
func AccumulateEmbedStandard(t Tiling, shape []int, block dyadic.Range, bHat *ndarray.Array, bs *BucketSet) {
	std, ok := t.(*Standard)
	if !ok {
		core.EachEmbedStandard(shape, block, bHat, func(coords []int, delta float64) {
			b, s := t.Locate(coords)
			bs.Add(b, s, delta)
		})
		return
	}
	d := std.Dims()
	if len(shape) != d || block.Dims() != d || bHat.Dims() != d {
		panic(fmt.Sprintf("tile: AccumulateEmbedStandard shape %v, block %v for %d-d tiling", shape, block, d))
	}
	tabs := make([]stdDimTab, d)
	for t := 0; t < d; t++ {
		od := std.Dim(t)
		n, m, k := od.Levels(), block[t].Level, block[t].Pos
		if shape[t] != 1<<uint(n) || m > n || k < 0 || k >= 1<<uint(n-m) || bHat.Extent(t) != 1<<uint(m) {
			panic(fmt.Sprintf("tile: AccumulateEmbedStandard block %v out of bounds for shape %v", block, shape))
		}
		tab := stdDimTab{nb: od.NumBlocks(), bsz: od.BlockSize(), m: 1 << uint(m)}
		for _, tt := range core.SplitTargets(n, m, k) {
			bt, st := od.Locate1D(tt.Index)
			tab.split = append(tab.split, locTarget{w: tt.Weight, bt: bt, st: st})
		}
		tab.det = make([]locTarget, tab.m-1)
		for i := 1; i < tab.m; i++ {
			bt, st := od.Locate1D(core.ShiftIndex(n, m, k, i))
			tab.det[i-1] = locTarget{w: 1, bt: bt, st: st}
		}
		tabs[t] = tab
	}
	stride := make([]int, d)
	stride[d-1] = 1
	for t := d - 2; t >= 0; t-- {
		stride[t] = stride[t+1] * tabs[t+1].m
	}
	data := bHat.Data()

	// Pure-SHIFT bulk: every dimension contributes a detail index (>= 1).
	allDetails := true
	for t := 0; t < d; t++ {
		if tabs[t].m < 2 {
			allDetails = false
			break
		}
	}
	if allDetails {
		last := &tabs[d-1]
		// Coalesce the innermost dimension's targets into slot-contiguous
		// runs (consecutive detail indices within one wavelet level land in
		// consecutive slots of one 1-d tile).
		r := detailRun{src: 1, n: 1, bt: last.det[0].bt, st: last.det[0].st}
		for i := 2; i < last.m; i++ {
			p := last.det[i-1]
			if p.bt == r.bt && p.st == r.st+r.n {
				r.n++
				continue
			}
			last.runs = append(last.runs, r)
			r = detailRun{src: i, n: 1, bt: p.bt, st: p.st}
		}
		last.runs = append(last.runs, r)

		outer := make([]int, d-1) // detail indices for dims 0..d-2
		for t := range outer {
			outer[t] = 1
		}
		for {
			blockBase, slotBase, off := 0, 0, 0
			for t := 0; t < d-1; t++ {
				p := tabs[t].det[outer[t]-1]
				blockBase = blockBase*tabs[t].nb + p.bt
				slotBase = slotBase*tabs[t].bsz + p.st
				off += outer[t] * stride[t]
			}
			for _, r := range last.runs {
				bk := bs.bucket(blockBase*last.nb + r.bt)
				dst := bk.Deltas[slotBase*last.bsz+r.st:]
				src := data[off+r.src : off+r.src+r.n]
				for i, v := range src {
					dst[i] += v
				}
				bk.Touches += r.n
			}
			t := d - 2
			for ; t >= 0; t-- {
				outer[t]++
				if outer[t] < tabs[t].m {
					break
				}
				outer[t] = 1
			}
			if t < 0 {
				break
			}
		}
	}

	// Split fringe: sources with a scaling index (0) in at least one
	// dimension fan out over the cross product of per-dimension targets.
	src := make([]int, d)
	choice := make([]int, d)
	lists := make([][]locTarget, d)
	singles := make([]locTarget, d)
	for {
		anyZero := false
		for t := 0; t < d; t++ {
			if src[t] == 0 {
				anyZero = true
				break
			}
		}
		if anyZero {
			off := 0
			for t := 0; t < d; t++ {
				off += src[t] * stride[t]
				if src[t] == 0 {
					lists[t] = tabs[t].split
				} else {
					singles[t] = tabs[t].det[src[t]-1]
					lists[t] = singles[t : t+1]
				}
			}
			v := data[off]
			for t := range choice {
				choice[t] = 0
			}
			for {
				w := v
				blockID, slot := 0, 0
				for t := 0; t < d; t++ {
					tt := lists[t][choice[t]]
					w *= tt.w
					blockID = blockID*tabs[t].nb + tt.bt
					slot = slot*tabs[t].bsz + tt.st
				}
				bk := bs.bucket(blockID)
				bk.Deltas[slot] += w
				bk.Touches++
				t := d - 1
				for ; t >= 0; t-- {
					choice[t]++
					if choice[t] < len(lists[t]) {
						break
					}
					choice[t] = 0
				}
				if t < 0 {
					break
				}
			}
		}
		t := d - 1
		for ; t >= 0; t-- {
			src[t]++
			if src[t] < tabs[t].m {
				break
			}
			src[t] = 0
		}
		if t < 0 {
			return
		}
	}
}

// AccumulateShiftNonStandard buckets the SHIFT part of a non-standard
// embedding: the M^d - 1 details of bHat (the non-standard transform of the
// cubic chunk of edge 2^m at position pos, in chunk units) re-indexed into
// the enclosing cubic transform. For a *NonStandard tiling it computes
// (block, slot) with flat arithmetic per wavelet level and subband, walking
// contiguous source rows; slots advance by 2^d - 1 per step inside a tile.
// Other tilings fall back to the per-coefficient enumeration.
func AccumulateShiftNonStandard(t Tiling, shape []int, m int, pos []int, bHat *ndarray.Array, bs *BucketSet) {
	nst, ok := t.(*NonStandard)
	if !ok {
		core.EachShiftNonStandard(shape, m, pos, bHat, func(coords []int, v float64) {
			b, s := t.Locate(coords)
			bs.Add(b, s, v)
		})
		return
	}
	n, d := nst.n, nst.d
	if len(shape) != d || len(pos) != d || bHat.Dims() != d {
		panic(fmt.Sprintf("tile: AccumulateShiftNonStandard pos %v for d=%d", pos, d))
	}
	edge := 1 << uint(m)
	for t := 0; t < d; t++ {
		if shape[t] != 1<<uint(n) || bHat.Extent(t) != edge || pos[t] < 0 || pos[t] >= 1<<uint(n-m) {
			panic(fmt.Sprintf("tile: AccumulateShiftNonStandard block (m=%d, pos=%v) out of bounds", m, pos))
		}
	}
	D := 1 << uint(d)
	Dm1 := D - 1
	stride := make([]int, d)
	stride[d-1] = 1
	for t := d - 2; t >= 0; t-- {
		stride[t] = stride[t+1] * edge
	}
	data := bHat.Data()
	pp := make([]int, d-1)
	for j := 1; j <= m; j++ {
		P := 1 << uint(m-j) // per-dimension positions at level j
		depth := n - j
		band := nst.bandOf(depth)
		start := nst.bandStart(band)
		delta := depth - start
		nodesAbove := (bitutil.IntPow(D, delta) - 1) / Dm1
		cum := nst.cumRoot[band]
		deltaMask := 1<<uint(delta) - 1
		for mask := 1; mask < D; mask++ {
			// Source offset of the subband origin inside bHat.
			maskOff := 0
			for t := 0; t < d; t++ {
				if mask>>uint(t)&1 == 1 {
					maskOff += P * stride[t]
				}
			}
			for {
				rootHigh, localHigh, off := 0, 0, maskOff
				for t := 0; t < d-1; t++ {
					tp := pos[t]<<uint(m-j) + pp[t]
					rootHigh = rootHigh<<uint(start) | tp>>uint(delta)
					localHigh = localHigh<<uint(delta) | tp&deltaMask
					off += pp[t] * stride[t]
				}
				tp0 := pos[d-1] << uint(m-j)
				soff := off
				for pLast := 0; pLast < P; {
					tp := tp0 + pLast
					root := tp >> uint(delta)
					blockID := cum + (rootHigh<<uint(start) | root)
					local := localHigh<<uint(delta) | tp&deltaMask
					slot := 1 + (nodesAbove+local)*Dm1 + (mask - 1)
					segLen := (root+1)<<uint(delta) - tp
					if rem := P - pLast; segLen > rem {
						segLen = rem
					}
					bk := bs.bucket(blockID)
					for i := 0; i < segLen; i++ {
						bk.Deltas[slot] += data[soff]
						slot += Dm1
						soff++
					}
					bk.Touches += segLen
					pLast += segLen
				}
				t := d - 2
				for ; t >= 0; t-- {
					pp[t]++
					if pp[t] < P {
						break
					}
					pp[t] = 0
				}
				if t < 0 {
					break
				}
			}
		}
	}
}

// AccumulateSplitNonStandard buckets the SPLIT part of a non-standard
// embedding: the block average u feeds the (2^d - 1)(n - m) quadtree-path
// details plus the overall average — few enough targets that the generic
// per-target Locate is already cheap.
func AccumulateSplitNonStandard(t Tiling, shape []int, m int, pos []int, u float64, bs *BucketSet) {
	core.EachSplitNonStandard(shape, m, pos, u, func(coords []int, delta float64) {
		b, s := t.Locate(coords)
		bs.Add(b, s, delta)
	})
}
