package tile

import (
	"math"
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/haar"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

func randArray(rng *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64() * 10
	}
	return a
}

func TestStoreGetSetAdd(t *testing.T) {
	tiling := NewStandard([]int{3, 3}, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	coords := []int{5, 3}
	if err := st.Set(coords, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(coords, 2.5); err != nil {
		t.Fatal(err)
	}
	v, err := st.Get(coords)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("Get = %g", v)
	}
	// A different coefficient must be unaffected.
	v2, err := st.Get([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 0 {
		t.Errorf("untouched coefficient = %g", v2)
	}
}

func TestNewStoreBlockSizeMismatch(t *testing.T) {
	tiling := NewOneD(4, 2)
	if _, err := NewStore(storage.NewMemStore(8), tiling); err == nil {
		t.Error("mismatched block sizes accepted")
	}
}

func TestStoreIOCounts(t *testing.T) {
	tiling := NewOneD(6, 2)
	counting := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := NewStore(counting, tiling)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get([]int{5}); err != nil {
		t.Fatal(err)
	}
	if s := counting.Stats(); s.Reads != 1 || s.Writes != 0 {
		t.Errorf("Get stats = %+v", s)
	}
	counting.Reset()
	if err := st.Add([]int{5}, 1); err != nil {
		t.Fatal(err)
	}
	if s := counting.Stats(); s.Reads != 1 || s.Writes != 1 {
		t.Errorf("Add stats = %+v", s)
	}
}

func TestMaterializeStandard1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, b := 5, 2
	v := make([]float64, 1<<uint(n))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	hatVec := haar.Transform(v)
	hat := ndarray.FromSlice(append([]float64(nil), hatVec...), 1<<uint(n))

	tiling := NewStandard([]int{n}, b)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := MaterializeStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	// Every real coefficient reads back exactly.
	for idx := 0; idx < 1<<uint(n); idx++ {
		got, err := st.Get([]int{idx})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-hatVec[idx]) > 1e-12 {
			t.Fatalf("coefficient %d: %g vs %g", idx, got, hatVec[idx])
		}
	}
	// Slot 0 of every non-top tile holds the root scaling coefficient.
	oneD := tiling.Dim(0)
	for blk := 1; blk < oneD.NumBlocks(); blk++ {
		data, err := st.ReadTile(blk)
		if err != nil {
			t.Fatal(err)
		}
		j, k := oneD.RootOf(blk)
		want := haar.ScalingAt(hatVec, j, k)
		if math.Abs(data[0]-want) > 1e-9 {
			t.Fatalf("tile %d scaling slot = %g, want u[%d,%d] = %g", blk, data[0], j, k, want)
		}
	}
}

func TestMaterializedTileReconstructsPointAlone(t *testing.T) {
	// The paper's reason for storing the extra scaling coefficient: any data
	// point can be rebuilt from its leaf tile alone (§3).
	rng := rand.New(rand.NewSource(2))
	n, b := 6, 2
	v := make([]float64, 1<<uint(n))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	hatVec := haar.Transform(v)
	hat := ndarray.FromSlice(append([]float64(nil), hatVec...), 1<<uint(n))
	tiling := NewStandard([]int{n}, b)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := MaterializeStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	oneD := tiling.Dim(0)
	for point := 0; point < len(v); point++ {
		// Leaf tile: the one holding the level-1 detail covering the point.
		leaf := haar.Index(n, 1, point/2)
		blk, _ := oneD.Locate1D(leaf)
		data, err := st.ReadTile(blk)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct: root scaling + signed details down the in-tile path.
		j, _ := oneD.RootOf(blk)
		val := data[0]
		for level := j; level >= 1; level-- {
			idx := haar.Index(n, level, point>>uint(level))
			_, slot := oneD.Locate1D(idx)
			if point>>uint(level-1)&1 == 0 {
				val += data[slot]
			} else {
				val -= data[slot]
			}
		}
		if math.Abs(val-v[point]) > 1e-9 {
			t.Fatalf("point %d from single tile: %g vs %g", point, val, v[point])
		}
	}
}

func TestMaterializeStandard2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 16, 8)
	hat := wavelet.TransformStandard(a)
	tiling := NewStandard([]int{4, 3}, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := MaterializeStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	// All real coefficients read back.
	bad := 0
	hat.Each(func(coords []int, v float64) {
		got, err := st.Get(coords)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-v) > 1e-12 {
			bad++
		}
	})
	if bad != 0 {
		t.Fatalf("%d coefficients differ", bad)
	}
}

func TestMaterializeNonStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randArray(rng, 16, 16)
	hat := wavelet.TransformNonStandard(a)
	tiling := NewNonStandard(4, 2, 2)
	st, err := NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := MaterializeNonStandard(st, hat); err != nil {
		t.Fatal(err)
	}
	bad := 0
	hat.Each(func(coords []int, v float64) {
		got, err := st.Get(coords)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-v) > 1e-12 {
			bad++
		}
	})
	if bad != 0 {
		t.Fatalf("%d coefficients differ", bad)
	}
	// Slot 0 of every non-top tile equals the average of the root cell.
	for blk := 1; blk < tiling.NumBlocks(); blk++ {
		level, pos := tiling.RootOf(blk)
		data, err := st.ReadTile(blk)
		if err != nil {
			t.Fatal(err)
		}
		size := 1 << uint(level)
		start := []int{pos[0] * size, pos[1] * size}
		want := a.SumRange(start, []int{size, size}) / float64(size*size)
		if math.Abs(data[0]-want) > 1e-8 {
			t.Fatalf("tile %d scaling = %g, want %g", blk, data[0], want)
		}
	}
}

func TestAffectedTilesShiftMatchesTheory(t *testing.T) {
	// 1-d SHIFT of an aligned block touches about M/B tiles (§4.2): the
	// subtree of M-1 details split into tiles of B-1 details.
	n, m, b := 10, 6, 2
	tiling := NewOneD(n, b)
	k := 3
	count := AffectedTiles(tiling, func(visit func(coords []int)) {
		for j := 1; j <= m; j++ {
			for i := 0; i < 1<<uint(m-j); i++ {
				visit([]int{haar.Index(n, j, k<<uint(m-j)+i)})
			}
		}
	})
	want := ((1 << uint(m)) - 1) / ((1 << uint(b)) - 1) // (M-1)/(B-1) when aligned
	if count != want {
		t.Errorf("shift touched %d tiles, want %d", count, want)
	}
	if theory := TheoreticalShiftTilesOneD(m, b); count < theory {
		t.Errorf("measured %d below the O(M/B) shape %d", count, theory)
	}
}

func TestAffectedTilesSplitMatchesTheory(t *testing.T) {
	// 1-d SPLIT contributions lie on a root path: about (n-m)/b tiles.
	n, m, b := 12, 4, 3
	tiling := NewOneD(n, b)
	k := 77
	count := AffectedTiles(tiling, func(visit func(coords []int)) {
		for j := m + 1; j <= n; j++ {
			visit([]int{haar.Index(n, j, k>>uint(j-m))})
		}
		visit([]int{0})
	})
	theory := TheoreticalSplitTilesOneD(n, m, b)
	if count > theory+1 {
		t.Errorf("split touched %d tiles, theory %d", count, theory)
	}
}
