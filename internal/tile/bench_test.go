package tile

import (
	"path/filepath"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// BenchmarkTileFlush measures the engine-level payoff of the vectored path:
// flushing a full set of dirty tiles (what Batch.Flush and OnceWriter.Flush
// do after a SHIFT-SPLIT maintenance round) through a checksummed FileStore.
// The batched arm issues one WriteTiles call — the Checksummed wrapper frames
// all blocks into one slab and the FileStore coalesces the consecutive run
// into a single pwrite — while the looped arm pays one frame copy and one
// pwrite per tile. pwrites/op comes from the FileStore's syscall-proxy
// counter.

const (
	flushBlocks    = 256
	flushBlockSize = 64
)

func benchFlushStore(b *testing.B) (*Store, *storage.FileStore, []int, [][]float64) {
	b.Helper()
	fs, err := storage.NewFileStore(filepath.Join(b.TempDir(), "tiles.dat"), flushBlockSize+storage.ChecksumOverhead)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fs.Close() })
	ck, err := storage.NewChecksummed(fs)
	if err != nil {
		b.Fatal(err)
	}
	st, err := NewStore(ck, NewSequential([]int{flushBlocks * flushBlockSize}, flushBlockSize))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, flushBlocks)
	tiles := storage.SliceFrames(make([]float64, flushBlocks*flushBlockSize), flushBlocks, flushBlockSize)
	for i := range ids {
		ids[i] = i
		for k := range tiles[i] {
			tiles[i][k] = float64(i) + float64(k)/float64(flushBlockSize)
		}
	}
	return st, fs, ids, tiles
}

func BenchmarkTileFlush(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		st, fs, ids, tiles := benchFlushStore(b)
		_, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.WriteTiles(ids, tiles); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_, pwrites := fs.Syscalls()
		b.ReportMetric(float64(pwrites-pwrites0)/float64(b.N), "pwrites/op")
	})
	b.Run("looped", func(b *testing.B) {
		st, fs, ids, tiles := benchFlushStore(b)
		_, pwrites0 := fs.Syscalls()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, id := range ids {
				if err := st.WriteTile(id, tiles[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		_, pwrites := fs.Syscalls()
		b.ReportMetric(float64(pwrites-pwrites0)/float64(b.N), "pwrites/op")
	})
}
