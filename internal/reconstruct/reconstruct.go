// Package reconstruct implements partial reconstruction from wavelet
// transforms (paper §5.4, Result 6): extracting a region of the original
// data directly from tiled, disk-resident coefficients using the inverses
// of SHIFT (index translation) and SPLIT (root-path scaling descent),
// without decomposing the entire dataset.
//
// Two naive baselines are included for the comparison the paper motivates:
// full inverse transformation followed by slicing, and cell-by-cell point
// reconstruction.
package reconstruct

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// shapeOf recovers the transform shape from a store's tiling.
func shapeOf(st *tile.Store) ([]int, error) {
	switch tl := st.Tiling().(type) {
	case *tile.Standard:
		shape := make([]int, tl.Dims())
		for t := range shape {
			shape[t] = 1 << uint(tl.Dim(t).Levels())
		}
		return shape, nil
	case *tile.Sequential:
		return tl.Shape(), nil
	default:
		return nil, fmt.Errorf("reconstruct: unsupported tiling %T", st.Tiling())
	}
}

// DyadicStandard extracts the original contents of a dyadic block from a
// standard-form tiled transform via inverse SHIFT-SPLIT. It returns the
// block values and the number of distinct blocks read.
func DyadicStandard(st *tile.Store, block dyadic.Range) (*ndarray.Array, int, error) {
	shape, err := shapeOf(st)
	if err != nil {
		return nil, 0, err
	}
	d := len(shape)
	if block.Dims() != d {
		return nil, 0, fmt.Errorf("reconstruct: block %v for %d-d transform", block, d)
	}
	reader := tile.NewReader(st)
	// Per-dimension source lists: the inverse SHIFT for details, the
	// inverse SPLIT (root path) for the per-dimension scaling component.
	perDim := make([][][]core.Target, d)
	for t := 0; t < d; t++ {
		n := bitutil.Log2(shape[t])
		m := block[t].Level
		k := block[t].Pos
		size := 1 << uint(m)
		lists := make([][]core.Target, size)
		lists[0] = core.ScalingPath1D(n, m, k)
		for idx := 1; idx < size; idx++ {
			lists[idx] = []core.Target{{Index: core.ShiftIndex(n, m, k, idx), Weight: 1}}
		}
		perDim[t] = lists
	}
	bHat := ndarray.New(block.Shape()...)
	coords := make([]int, d)
	choice := make([]int, d)
	var rerr error
	bHat.Each(func(dst []int, _ float64) {
		if rerr != nil {
			return
		}
		lists := make([][]core.Target, d)
		for t := 0; t < d; t++ {
			lists[t] = perDim[t][dst[t]]
		}
		for t := range choice {
			choice[t] = 0
		}
		sum := 0.0
		for {
			w := 1.0
			for t := 0; t < d; t++ {
				tt := lists[t][choice[t]]
				coords[t] = tt.Index
				w *= tt.Weight
			}
			v, err := reader.Get(coords)
			if err != nil {
				rerr = err
				return
			}
			sum += w * v
			t := d - 1
			for ; t >= 0; t-- {
				choice[t]++
				if choice[t] < len(lists[t]) {
					break
				}
				choice[t] = 0
			}
			if t < 0 {
				break
			}
		}
		bHat.Set(sum, dst...)
	})
	if rerr != nil {
		return nil, reader.BlocksRead(), rerr
	}
	return wavelet.InverseStandard(bHat), reader.BlocksRead(), nil
}

// DyadicNonStandard extracts the original contents of the cubic block at
// level m, position pos, from a non-standard tiled transform.
func DyadicNonStandard(st *tile.Store, m int, pos []int) (*ndarray.Array, int, error) {
	tl, ok := st.Tiling().(*tile.NonStandard)
	if !ok {
		return nil, 0, fmt.Errorf("reconstruct: store is not non-standard tiled (%T)", st.Tiling())
	}
	// The top tile's root node sits at level n, the domain level.
	n, rootPos := tl.RootOf(0)
	d := len(rootPos)
	if len(pos) != d {
		return nil, 0, fmt.Errorf("reconstruct: pos %v for %d-d transform", pos, d)
	}
	reader := tile.NewReader(st)
	edge := 1 << uint(m)
	shape := make([]int, d)
	for t := range shape {
		shape[t] = edge
	}
	bHat := ndarray.New(shape...)
	coords := make([]int, d)
	var rerr error
	// Inverse SHIFT: copy the details of the block subtree.
	bHat.Each(func(dst []int, _ float64) {
		if rerr != nil {
			return
		}
		origin := true
		for _, c := range dst {
			if c != 0 {
				origin = false
				break
			}
		}
		if origin {
			return
		}
		j, subband, p := wavelet.NonStdLevel(m, dst)
		base := 1 << uint(n-j)
		for t := 0; t < d; t++ {
			coords[t] = pos[t]<<uint(m-j) + p[t]
			if subband[t] {
				coords[t] += base
			}
		}
		v, err := reader.Get(coords)
		if err != nil {
			rerr = err
			return
		}
		bHat.Set(v, dst...)
	})
	if rerr != nil {
		return nil, reader.BlocksRead(), rerr
	}
	// Inverse SPLIT: descend the quadtree from the root to the block's
	// scaling coefficient.
	origin := make([]int, d)
	u, err := reader.Get(origin)
	if err != nil {
		return nil, reader.BlocksRead(), err
	}
	for j := n; j > m; j-- {
		base := 1 << uint(n-j)
		for mask := 1; mask < 1<<uint(d); mask++ {
			w := 1.0
			for t := 0; t < d; t++ {
				coords[t] = pos[t] >> uint(j-m)
				if mask>>uint(t)&1 == 1 {
					coords[t] += base
					if pos[t]>>uint(j-m-1)&1 == 1 {
						w = -w
					}
				}
			}
			v, err := reader.Get(coords)
			if err != nil {
				return nil, reader.BlocksRead(), err
			}
			u += w * v
		}
	}
	bHat.Set(u, origin...)
	return wavelet.InverseNonStandard(bHat), reader.BlocksRead(), nil
}

// Box extracts an arbitrary half-open box [start, start+shape) from a
// standard-form tiled transform by decomposing it into dyadic blocks per
// dimension (an arbitrary selection range is a collection of dyadic ranges,
// §5.4) and extracting each.
func Box(st *tile.Store, start, shape []int) (*ndarray.Array, int, error) {
	arrShape, err := shapeOf(st)
	if err != nil {
		return nil, 0, err
	}
	d := len(arrShape)
	perDim := make([][]dyadic.Interval, d)
	for t := 0; t < d; t++ {
		if start[t] < 0 || shape[t] <= 0 || start[t]+shape[t] > arrShape[t] {
			return nil, 0, fmt.Errorf("reconstruct: box %v+%v out of bounds %v", start, shape, arrShape)
		}
		perDim[t] = dyadic.Decompose(start[t], start[t]+shape[t])
	}
	out := ndarray.New(shape...)
	totalIO := 0
	idx := make([]int, d)
	for {
		block := make(dyadic.Range, d)
		dstStart := make([]int, d)
		for t := 0; t < d; t++ {
			block[t] = perDim[t][idx[t]]
			dstStart[t] = block[t].Start() - start[t]
		}
		vals, io, err := DyadicStandard(st, block)
		if err != nil {
			return nil, totalIO, err
		}
		totalIO += io
		out.SubPaste(vals, dstStart)
		t := d - 1
		for ; t >= 0; t-- {
			idx[t]++
			if idx[t] < len(perDim[t]) {
				break
			}
			idx[t] = 0
		}
		if t < 0 {
			return out, totalIO, nil
		}
	}
}

// NaiveFull reconstructs the entire dataset from a standard-form tiled
// transform and slices out the requested box — the "decompose everything"
// horn of §5.4's dilemma. It reads every block.
func NaiveFull(st *tile.Store, start, shape []int) (*ndarray.Array, int, error) {
	arrShape, err := shapeOf(st)
	if err != nil {
		return nil, 0, err
	}
	reader := tile.NewReader(st)
	hat := ndarray.New(arrShape...)
	var rerr error
	hat.Each(func(coords []int, _ float64) {
		if rerr != nil {
			return
		}
		v, err := reader.Get(coords)
		if err != nil {
			rerr = err
			return
		}
		hat.Set(v, coords...)
	})
	if rerr != nil {
		return nil, reader.BlocksRead(), rerr
	}
	full := wavelet.InverseStandard(hat)
	return full.SubCopy(start, shape), reader.BlocksRead(), nil
}

// NaivePointwise reconstructs the box cell by cell using per-point root
// paths — the other horn of the dilemma, preferable only for tiny regions.
func NaivePointwise(st *tile.Store, start, shape []int) (*ndarray.Array, int, error) {
	arrShape, err := shapeOf(st)
	if err != nil {
		return nil, 0, err
	}
	reader := tile.NewReader(st)
	out := ndarray.New(shape...)
	point := make([]int, len(arrShape))
	var rerr error
	out.Each(func(coords []int, _ float64) {
		if rerr != nil {
			return
		}
		for t := range point {
			point[t] = start[t] + coords[t]
		}
		sum := 0.0
		for _, c := range wavelet.PointPathStandard(arrShape, point) {
			v, err := reader.Get(c.Coords)
			if err != nil {
				rerr = err
				return
			}
			sum += c.Weight * v
		}
		out.Set(sum, coords...)
	})
	if rerr != nil {
		return nil, reader.BlocksRead(), rerr
	}
	return out, reader.BlocksRead(), nil
}

// BoxNonStandard extracts an arbitrary half-open box from a non-standard
// tiled transform. Arbitrary multidimensional ranges "can always be seen as
// a collection of cubic intervals" (paper §4.1): the box is decomposed into
// dyadic runs per dimension, every cross piece is split into cubes of its
// smallest edge, and each cube is extracted with the inverse SHIFT-SPLIT.
func BoxNonStandard(st *tile.Store, start, shape []int) (*ndarray.Array, int, error) {
	tl, ok := st.Tiling().(*tile.NonStandard)
	if !ok {
		return nil, 0, fmt.Errorf("reconstruct: store is not non-standard tiled (%T)", st.Tiling())
	}
	n, rootPos := tl.RootOf(0)
	d := len(rootPos)
	if len(start) != d || len(shape) != d {
		return nil, 0, fmt.Errorf("reconstruct: box %v+%v for %d dims", start, shape, d)
	}
	edge := 1 << uint(n)
	perDim := make([][]dyadic.Interval, d)
	for t := 0; t < d; t++ {
		if start[t] < 0 || shape[t] <= 0 || start[t]+shape[t] > edge {
			return nil, 0, fmt.Errorf("reconstruct: box %v+%v out of bounds", start, shape)
		}
		perDim[t] = dyadic.Decompose(start[t], start[t]+shape[t])
	}
	out := ndarray.New(shape...)
	totalIO := 0
	idx := make([]int, d)
	for {
		piece := make([]dyadic.Interval, d)
		minLevel := n
		for t := 0; t < d; t++ {
			piece[t] = perDim[t][idx[t]]
			if piece[t].Level < minLevel {
				minLevel = piece[t].Level
			}
		}
		// Split the (possibly non-cubic) piece into cubes of edge
		// 2^minLevel and extract each.
		counts := make([]int, d)
		for t := 0; t < d; t++ {
			counts[t] = 1 << uint(piece[t].Level-minLevel)
		}
		cube := make([]int, d)
		for {
			pos := make([]int, d)
			dst := make([]int, d)
			for t := 0; t < d; t++ {
				pos[t] = piece[t].Pos<<uint(piece[t].Level-minLevel) + cube[t]
				dst[t] = pos[t]<<uint(minLevel) - start[t]
			}
			vals, io, err := DyadicNonStandard(st, minLevel, pos)
			if err != nil {
				return nil, totalIO, err
			}
			totalIO += io
			out.SubPaste(vals, dst)
			t := d - 1
			for ; t >= 0; t-- {
				cube[t]++
				if cube[t] < counts[t] {
					break
				}
				cube[t] = 0
			}
			if t < 0 {
				break
			}
		}
		t := d - 1
		for ; t >= 0; t-- {
			idx[t]++
			if idx[t] < len(perDim[t]) {
				break
			}
			idx[t] = 0
		}
		if t < 0 {
			return out, totalIO, nil
		}
	}
}
