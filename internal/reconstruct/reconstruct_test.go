package reconstruct

import (
	"math/rand"
	"testing"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// fixtureStandard materializes the standard transform of a dataset onto a
// counted tiled store.
func fixtureStandard(t *testing.T, src *ndarray.Array, b int) (*tile.Store, *storage.Counting) {
	t.Helper()
	shape := src.Shape()
	ns := make([]int, len(shape))
	for i, s := range shape {
		n := 0
		for 1<<uint(n) < s {
			n++
		}
		ns[i] = n
	}
	tiling := tile.NewStandard(ns, b)
	counting := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(counting, tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.MaterializeStandard(st, wavelet.TransformStandard(src)); err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	return st, counting
}

func fixtureNonStandard(t *testing.T, src *ndarray.Array, n, d, b int) (*tile.Store, *storage.Counting) {
	t.Helper()
	tiling := tile.NewNonStandard(n, d, b)
	counting := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
	st, err := tile.NewStore(counting, tiling)
	if err != nil {
		t.Fatal(err)
	}
	if err := tile.MaterializeNonStandard(st, wavelet.TransformNonStandard(src)); err != nil {
		t.Fatal(err)
	}
	counting.Reset()
	return st, counting
}

func TestDyadicStandardExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := dataset.Dense([]int{16, 16}, 1)
	st, _ := fixtureStandard(t, src, 2)
	for trial := 0; trial < 20; trial++ {
		levels := []int{rng.Intn(5), rng.Intn(5)}
		pos := []int{rng.Intn(16 >> uint(levels[0])), rng.Intn(16 >> uint(levels[1]))}
		block := dyadic.Range{dyadic.NewInterval(levels[0], pos[0]), dyadic.NewInterval(levels[1], pos[1])}
		got, io, err := DyadicStandard(st, block)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SubCopy(block.Start(), block.Shape())
		if !got.EqualApprox(want, 1e-8) {
			t.Fatalf("block %v differs by %g", block, got.MaxAbsDiff(want))
		}
		if io <= 0 {
			t.Fatalf("block %v reported %d I/Os", block, io)
		}
	}
}

func TestDyadicNonStandardExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := dataset.Dense([]int{16, 16}, 2)
	st, _ := fixtureNonStandard(t, src, 4, 2, 2)
	for m := 0; m <= 4; m++ {
		side := 1 << uint(4-m)
		pos := []int{rng.Intn(side), rng.Intn(side)}
		got, io, err := DyadicNonStandard(st, m, pos)
		if err != nil {
			t.Fatal(err)
		}
		edge := 1 << uint(m)
		want := src.SubCopy([]int{pos[0] * edge, pos[1] * edge}, []int{edge, edge})
		if !got.EqualApprox(want, 1e-8) {
			t.Fatalf("m=%d pos=%v differs by %g", m, pos, got.MaxAbsDiff(want))
		}
		if io <= 0 {
			t.Fatal("no I/O reported")
		}
	}
}

func TestBoxExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := dataset.Dense([]int{32, 16}, 3)
	st, _ := fixtureStandard(t, src, 2)
	for trial := 0; trial < 15; trial++ {
		start := []int{rng.Intn(32), rng.Intn(16)}
		shape := []int{1 + rng.Intn(32-start[0]), 1 + rng.Intn(16-start[1])}
		got, _, err := Box(st, start, shape)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SubCopy(start, shape)
		if !got.EqualApprox(want, 1e-8) {
			t.Fatalf("box %v+%v differs by %g", start, shape, got.MaxAbsDiff(want))
		}
	}
}

func TestBoxRejectsOutOfBounds(t *testing.T) {
	src := dataset.Dense([]int{8, 8}, 4)
	st, _ := fixtureStandard(t, src, 2)
	if _, _, err := Box(st, []int{4, 4}, []int{8, 2}); err == nil {
		t.Error("out-of-bounds box accepted")
	}
}

func TestNaiveFullAndPointwiseAgree(t *testing.T) {
	src := dataset.Dense([]int{16, 16}, 5)
	st, _ := fixtureStandard(t, src, 2)
	start, shape := []int{3, 5}, []int{6, 4}
	full, fullIO, err := NaiveFull(st, start, shape)
	if err != nil {
		t.Fatal(err)
	}
	pw, pwIO, err := NaivePointwise(st, start, shape)
	if err != nil {
		t.Fatal(err)
	}
	want := src.SubCopy(start, shape)
	if !full.EqualApprox(want, 1e-8) || !pw.EqualApprox(want, 1e-8) {
		t.Fatal("baselines disagree with truth")
	}
	if fullIO != st.Tiling().NumBlocks() {
		t.Errorf("NaiveFull read %d blocks, want all %d", fullIO, st.Tiling().NumBlocks())
	}
	if pwIO <= 0 {
		t.Error("pointwise reported no I/O")
	}
}

func TestShiftSplitBeatsNaiveFullForSmallRegions(t *testing.T) {
	// Result 6's point: extracting a small dyadic region must cost far less
	// than full reconstruction.
	src := dataset.Dense([]int{64, 64}, 6)
	st, _ := fixtureStandard(t, src, 2)
	block := dyadic.Range{dyadic.NewInterval(2, 3), dyadic.NewInterval(2, 7)}
	_, ssIO, err := DyadicStandard(st, block)
	if err != nil {
		t.Fatal(err)
	}
	_, fullIO, err := NaiveFull(st, block.Start(), block.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if ssIO*4 > fullIO {
		t.Errorf("shift-split I/O %d not clearly below full reconstruction %d", ssIO, fullIO)
	}
}

func TestDyadicBeatsPointwiseForMediumRegions(t *testing.T) {
	src := dataset.Dense([]int{64, 64}, 7)
	st, _ := fixtureStandard(t, src, 1)
	block := dyadic.Range{dyadic.NewInterval(4, 1), dyadic.NewInterval(4, 2)}
	_, ssIO, err := DyadicStandard(st, block)
	if err != nil {
		t.Fatal(err)
	}
	_, pwIO, err := NaivePointwise(st, block.Start(), block.Shape())
	if err != nil {
		t.Fatal(err)
	}
	// Pointwise re-walks full root paths per cell; the dyadic extraction
	// shares them. With caching readers the counts converge, but dyadic
	// must never lose.
	if ssIO > pwIO {
		t.Errorf("dyadic extraction I/O %d exceeds pointwise %d", ssIO, pwIO)
	}
}

func TestDyadicStandardWholeDomain(t *testing.T) {
	src := dataset.Dense([]int{8, 8}, 8)
	st, _ := fixtureStandard(t, src, 2)
	block := dyadic.Range{dyadic.NewInterval(3, 0), dyadic.NewInterval(3, 0)}
	got, _, err := DyadicStandard(st, block)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualApprox(src, 1e-8) {
		t.Error("whole-domain extraction differs")
	}
}

func TestBoxNonStandardExact(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	src := dataset.Dense([]int{32, 32}, 9)
	st, _ := fixtureNonStandard(t, src, 5, 2, 2)
	for trial := 0; trial < 25; trial++ {
		start := []int{rng.Intn(32), rng.Intn(32)}
		shape := []int{1 + rng.Intn(32-start[0]), 1 + rng.Intn(32-start[1])}
		got, io, err := BoxNonStandard(st, start, shape)
		if err != nil {
			t.Fatal(err)
		}
		want := src.SubCopy(start, shape)
		if !got.EqualApprox(want, 1e-7) {
			t.Fatalf("box %v+%v differs by %g", start, shape, got.MaxAbsDiff(want))
		}
		if io <= 0 {
			t.Fatal("no I/O reported")
		}
	}
}

func TestBoxNonStandard3D(t *testing.T) {
	src := dataset.Dense([]int{8, 8, 8}, 10)
	st, _ := fixtureNonStandard(t, src, 3, 3, 1)
	got, _, err := BoxNonStandard(st, []int{1, 2, 3}, []int{5, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := src.SubCopy([]int{1, 2, 3}, []int{5, 4, 3})
	if !got.EqualApprox(want, 1e-7) {
		t.Errorf("3-d box differs by %g", got.MaxAbsDiff(want))
	}
}

func TestBoxNonStandardRejectsBadInput(t *testing.T) {
	src := dataset.Dense([]int{8, 8}, 11)
	st, _ := fixtureNonStandard(t, src, 3, 2, 2)
	if _, _, err := BoxNonStandard(st, []int{4, 4}, []int{8, 2}); err == nil {
		t.Error("out-of-bounds box accepted")
	}
	if _, _, err := BoxNonStandard(st, []int{0}, []int{4}); err == nil {
		t.Error("wrong dims accepted")
	}
	stdStore, _ := fixtureStandard(t, src, 2)
	if _, _, err := BoxNonStandard(stdStore, []int{0, 0}, []int{4, 4}); err == nil {
		t.Error("standard tiling accepted")
	}
}
