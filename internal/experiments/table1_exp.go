package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/core"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// reshape reinterprets an array's data with a new shape of equal size.
func reshape(a *ndarray.Array, shape []int) *ndarray.Array {
	return ndarray.FromSlice(a.Data(), shape...)
}

// Table1Config parametrizes the tiles-affected measurement.
type Table1Config struct {
	LogN, Dims, ChunkBits, TileBits int
}

// DefaultTable1 uses a 2-d setup with clearly separated terms.
func DefaultTable1() Table1Config {
	return Table1Config{LogN: 8, Dims: 2, ChunkBits: 4, TileBits: 2}
}

// Table1 reproduces Table 1: the number of tiles affected by one SHIFT and
// one SPLIT for a single chunk, standard versus non-standard, measured
// against the paper's bounds O((M/B)^d) and O((log_B N/M)^d) /
// O((2^d-1) log_B N/M).
func Table1(c Table1Config) (*Table, error) {
	N, M, B := 1<<uint(c.LogN), 1<<uint(c.ChunkBits), 1<<uint(c.TileBits)
	t := &Table{
		Title:   fmt.Sprintf("Table 1 — tiles affected by SHIFT/SPLIT of one chunk; N=%d M=%d B=%d d=%d", N, M, B, c.Dims),
		Columns: []string{"form", "operation", "coefficients", "tiles (measured)", "tiles (paper bound)"},
	}
	d := c.Dims
	shape := make([]int, d)
	ns := make([]int, d)
	for i := range shape {
		shape[i] = N
		ns[i] = c.LogN
	}
	chunkShape := make([]int, d)
	pos := make([]int, d)
	for i := range chunkShape {
		chunkShape[i] = M
		pos[i] = 1 // an interior chunk
	}
	chunk := dataset.Dense(chunkShape, 9)
	block := dyadic.NewCubeRange(c.ChunkBits, pos)

	// Standard form.
	stdTiling := tile.NewStandard(ns, c.TileBits)
	bHatS := wavelet.TransformStandard(chunk)
	shiftTiles := tile.AffectedTiles(stdTiling, func(visit func([]int)) {
		core.EachShiftStandard(shape, block, bHatS, func(coords []int, _ float64) { visit(coords) })
	})
	splitTiles := tile.AffectedTiles(stdTiling, func(visit func([]int)) {
		core.EachSplitStandard(shape, block, bHatS, func(coords []int, _ float64) { visit(coords) })
	})
	shiftBound := bitutil.IntPow(bitutil.CeilDiv(M, B), d)
	logBNM := bitutil.CeilDiv(c.LogN-c.ChunkBits, c.TileBits)
	splitBound := bitutil.IntPow(M/B+logBNM, d) - bitutil.IntPow(M/B, d) + 1
	t.Add("standard", "SHIFT", core.CountShiftStandard(shape, block), shiftTiles, fmt.Sprintf("O((M/B)^d) = %d", shiftBound))
	t.Add("standard", "SPLIT", core.CountSplitStandard(shape, block), splitTiles, fmt.Sprintf("O((M/B+log_B N/M)^d) ~ %d", splitBound))

	// Non-standard form.
	nsTiling := tile.NewNonStandard(c.LogN, d, c.TileBits)
	bHatN := wavelet.TransformNonStandard(chunk)
	shiftTilesN := tile.AffectedTiles(nsTiling, func(visit func([]int)) {
		core.EachShiftNonStandard(shape, c.ChunkBits, pos, bHatN, func(coords []int, _ float64) { visit(coords) })
	})
	splitTilesN := tile.AffectedTiles(nsTiling, func(visit func([]int)) {
		core.EachSplitNonStandard(shape, c.ChunkBits, pos, 1.0, func(coords []int, _ float64) { visit(coords) })
	})
	t.Add("non-standard", "SHIFT", core.CountShiftNonStandard(d, c.ChunkBits), shiftTilesN,
		fmt.Sprintf("O((M/B)^d) = %d", shiftBound))
	t.Add("non-standard", "SPLIT", core.CountSplitNonStandard(d, c.LogN, c.ChunkBits), splitTilesN,
		fmt.Sprintf("O(log_B N/M) = %d", bitutil.Max(logBNM, 1)))
	t.Notes = append(t.Notes,
		"SHIFT touches ~B^d fewer tiles than coefficients; SPLIT touches ~log B fewer (paper §4.2)")
	return t, nil
}

// R6Config parametrizes the partial-reconstruction comparison.
type R6Config struct {
	LogN, TileBits int
	Levels         []int // block edge exponents to extract
	Seed           int64
}

// DefaultR6 sweeps block sizes on a 2-d dataset.
func DefaultR6() R6Config {
	return R6Config{LogN: 7, TileBits: 2, Levels: []int{1, 2, 3, 4, 5}, Seed: 7}
}

// R6 reproduces the §5.4 comparison: block I/O to extract a dyadic region
// via inverse SHIFT-SPLIT versus full reconstruction versus cell-by-cell
// reconstruction, as the region grows.
func R6(c R6Config) (*Table, error) {
	N := 1 << uint(c.LogN)
	src := dataset.Dense([]int{N, N}, c.Seed)
	tiling := tile.NewStandard([]int{c.LogN, c.LogN}, c.TileBits)
	st, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		return nil, err
	}
	if err := tile.MaterializeStandard(st, wavelet.TransformStandard(src)); err != nil {
		return nil, err
	}
	// A coefficient-granular twin of the same transform measures the
	// coefficient-level costs of §5.4 (Result 6's units).
	flatTiling := tile.NewSequential([]int{N, N}, 1)
	flatStore, err := tile.NewStore(storage.NewMemStore(1), flatTiling)
	if err != nil {
		return nil, err
	}
	hat := wavelet.TransformStandard(src)
	if err := tile.WriteArray(flatStore, hat); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Result 6 — partial reconstruction cost; N=%d, tile=%d", N, tiling.BlockSize()),
		Columns: []string{"region", "shift-split blocks", "pointwise blocks", "full blocks", "shift-split coefs", "pointwise coefs (uncached)"},
	}
	for _, lv := range c.Levels {
		pos := (1 << uint(c.LogN-lv)) / 2
		block := dyadic.Range{dyadic.NewInterval(lv, pos), dyadic.NewInterval(lv, pos)}
		_, ssIO, err := reconstructDyadic(st, block)
		if err != nil {
			return nil, err
		}
		_, pwIO, err := reconstructPointwise(st, block.Start(), block.Shape())
		if err != nil {
			return nil, err
		}
		_, ssCoefs, err := reconstructDyadic(flatStore, block)
		if err != nil {
			return nil, err
		}
		// Cell-by-cell reconstruction without a cache pays the full Lemma-1
		// path per cell: volume * (log N + 1)^d accesses (§5.4).
		pwCoefs := block.Volume() * (c.LogN + 1) * (c.LogN + 1)
		t.Add(fmt.Sprintf("%dx%d", 1<<uint(lv), 1<<uint(lv)), ssIO, pwIO, tiling.NumBlocks(), ssCoefs, pwCoefs)
	}
	t.Notes = append(t.Notes,
		"shift-split extraction costs (M + log(N/M))^d coefficients (Result 6), far below the uncached pointwise cost and, for small regions, far below full reconstruction")
	return t, nil
}
