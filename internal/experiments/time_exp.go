package experiments

import (
	"fmt"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// ExpansionTimeConfig parametrizes the §5.2 execution-time check.
type ExpansionTimeConfig struct {
	Months   int
	TileBits int
	Seed     int64
}

// DefaultExpansionTime uses the Figure-13 geometry.
func DefaultExpansionTime() ExpansionTimeConfig {
	return ExpansionTimeConfig{Months: 20, TileBits: 2, Seed: 12}
}

// ExpansionTime quantifies the paper's §5.2 observation that domain
// expansion, despite its O(N^d) asymptotic cost, is fast in practice: the
// expansion pass streams whole tiles sequentially (bulk re-indexing with no
// reconstruction), while routine merges scatter. Counted block I/O is
// converted to modeled time on a 2005-era disk, with expansion runs
// credited a high sequential fraction and merges a low one.
func ExpansionTime(c ExpansionTimeConfig) (*Table, error) {
	app, err := appender.New([]int{8, 8, 32}, c.TileBits)
	if err != nil {
		return nil, err
	}
	full := dataset.Precipitation([]int{8, 8, 32 * c.Months}, c.Seed)

	blockBytes := 8 << uint(3*c.TileBits) // 8 bytes per coefficient
	expansionDisk := storage.Disk2005(blockBytes)
	expansionDisk.SequentialFraction = 0.8 // bulk tile streaming
	mergeDisk := storage.Disk2005(blockBytes)
	mergeDisk.SequentialFraction = 0.2 // scattered subtree + path tiles

	var mergeIO, expandIO storage.Stats
	var mergeMonths, expandMonths int
	for mo := 0; mo < c.Months; mo++ {
		slab := full.SubCopy([]int{0, 0, mo * 32}, []int{8, 8, 32})
		st, err := app.Append(2, slab)
		if err != nil {
			return nil, err
		}
		mergeIO.Reads += st.MergeIO.Reads
		mergeIO.Writes += st.MergeIO.Writes
		mergeMonths++
		if st.Expansions > 0 {
			expandIO.Reads += st.ExpansionIO.Reads
			expandIO.Writes += st.ExpansionIO.Writes
			expandMonths++
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Expansion cost in time (§5.2) — %d months, tile=%d coefficients, 2005-era disk model",
			c.Months, 1<<uint(3*c.TileBits)),
		Columns: []string{"phase", "events", "blocks", "modeled time", "time/event"},
	}
	mergeTime := mergeDisk.Estimate(mergeIO)
	expandTime := expansionDisk.Estimate(expandIO)
	t.Add("monthly merges", mergeMonths, mergeIO.Total(), mergeTime.Round(time.Millisecond).String(),
		(mergeTime / time.Duration(maxI(mergeMonths, 1))).Round(time.Millisecond).String())
	t.Add("expansions", expandMonths, expandIO.Total(), expandTime.Round(time.Millisecond).String(),
		(expandTime / time.Duration(maxI(expandMonths, 1))).Round(time.Millisecond).String())
	t.Notes = append(t.Notes,
		"expansion I/O is large but sequential, so its modeled time stays comparable to a routine month — the paper's 'not such a dominating factor' observation")
	return t, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
