package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// Fig13Config parametrizes the §6.2 appending experiment.
type Fig13Config struct {
	Lat, Lon  int   // spatial grid (paper: 8x8)
	DaysMonth int   // slab length along time per append (paper: 32)
	Months    int   // how many appends
	TileBits  []int // per-dimension tile edge exponents (block = 2^(3b))
	Seed      int64
}

// DefaultFig13 mirrors the paper's PRECIPITATION geometry.
func DefaultFig13() Fig13Config {
	return Fig13Config{Lat: 8, Lon: 8, DaysMonth: 32, Months: 24, TileBits: []int{1, 2, 3}, Seed: 4}
}

// Fig13 reproduces Figure 13: per-append block I/O over time as monthly
// PRECIPITATION slabs are appended, for several tile sizes; the expansion
// passes appear as jumps.
func Fig13(c Fig13Config) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 13 — appending I/O (blocks) per month; %dx%dx%d/month PRECIPITATION",
			c.Lat, c.Lon, c.DaysMonth),
		Columns: []string{"month"},
	}
	for _, b := range c.TileBits {
		t.Columns = append(t.Columns, fmt.Sprintf("tile=%d coefs", bitutil.IntPow(1<<uint(b), 3)))
	}
	t.Columns = append(t.Columns, "expanded")

	full := dataset.Precipitation([]int{c.Lat, c.Lon, c.DaysMonth * c.Months}, c.Seed)
	apps := make([]*appender.Appender, len(c.TileBits))
	for i, b := range c.TileBits {
		a, err := appender.New([]int{c.Lat, c.Lon, c.DaysMonth}, b)
		if err != nil {
			return nil, err
		}
		apps[i] = a
	}
	for mo := 0; mo < c.Months; mo++ {
		slab := full.SubCopy([]int{0, 0, mo * c.DaysMonth}, []int{c.Lat, c.Lon, c.DaysMonth})
		row := []interface{}{mo + 1}
		expanded := false
		for _, a := range apps {
			st, err := a.Append(2, slab)
			if err != nil {
				return nil, err
			}
			row = append(row, st.ExpansionIO.Total()+st.MergeIO.Total())
			if st.Expansions > 0 {
				expanded = true
			}
		}
		row = append(row, expanded)
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: flat monthly cost with jumps at domain doublings; larger tiles cost fewer blocks (paper Figure 13)")
	return t, nil
}
