package experiments

import (
	"github.com/shiftsplit/shiftsplit/internal/dyadic"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/reconstruct"
	"github.com/shiftsplit/shiftsplit/internal/tile"
)

func reconstructDyadic(st *tile.Store, block dyadic.Range) (*ndarray.Array, int, error) {
	return reconstruct.DyadicStandard(st, block)
}

func reconstructPointwise(st *tile.Store, start, shape []int) (*ndarray.Array, int, error) {
	return reconstruct.NaivePointwise(st, start, shape)
}

// All runs every experiment at its default configuration and returns the
// tables in paper order.
func All() ([]*Table, error) {
	var out []*Table
	runs := []func() (*Table, error){
		func() (*Table, error) { return Table1(DefaultTable1()) },
		func() (*Table, error) { return Table2(DefaultTable2()) },
		func() (*Table, error) { return Fig11(DefaultFig11()) },
		func() (*Table, error) { return Fig12(DefaultFig12()) },
		func() (*Table, error) { return Fig13(DefaultFig13()) },
		func() (*Table, error) { return Fig14(DefaultFig14()) },
		func() (*Table, error) { return StreamMemory(DefaultStreamMemory()) },
		func() (*Table, error) { return R6(DefaultR6()) },
		func() (*Table, error) { return SparseTransform(DefaultSparse()) },
		func() (*Table, error) { return QueryCost(DefaultQueryCost()) },
		func() (*Table, error) { return ExpansionTime(DefaultExpansionTime()) },
		func() (*Table, error) { return AppendForms(DefaultAppendForms()) },
	}
	for _, run := range runs {
		t, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
