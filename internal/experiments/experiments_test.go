package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func atoiCell(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("cell %q is not an integer: %v", s, err)
	}
	return v
}

func atofCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a float: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bee"}}
	tb.Add(1, 2.5)
	tb.Add("x", "y")
	txt := tb.String()
	if !strings.Contains(txt, "T\n") || !strings.Contains(txt, "2.500") {
		t.Errorf("text rendering wrong:\n%s", txt)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bee |") || !strings.Contains(md, "| x | y |") {
		t.Errorf("markdown rendering wrong:\n%s", md)
	}
}

func TestTable1Shapes(t *testing.T) {
	tb, err := Table1(Table1Config{LogN: 7, Dims: 2, ChunkBits: 4, TileBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Tiles must be far fewer than coefficients for the SHIFT rows.
	for _, r := range tb.Rows {
		if r[1] != "SHIFT" {
			continue
		}
		coefs, tiles := atoiCell(t, r[2]), atoiCell(t, r[3])
		if tiles*4 > coefs {
			t.Errorf("%s SHIFT: %d tiles for %d coefficients — tiling not helping", r[0], tiles, coefs)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	tb, err := Table2(Table2Config{LogN: 6, Dims: 2, ChunkBits: 3, TileBits: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	vitter := atoiCell(t, tb.Rows[0][1])
	std := atoiCell(t, tb.Rows[1][1])
	non := atoiCell(t, tb.Rows[2][1])
	if !(non < std && std < vitter) {
		t.Errorf("coefficient I/O ordering wrong: non=%d std=%d vitter=%d", non, std, vitter)
	}
}

func TestFig11Shapes(t *testing.T) {
	tb, err := Fig11(Fig11Config{LogN: 4, Dims: 4, ChunkBits: []int{2, 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var prevStd int64 = 1 << 62
	for _, r := range tb.Rows {
		vitter := atoiCell(t, r[1])
		std := atoiCell(t, r[2])
		non := atoiCell(t, r[3])
		if std > prevStd {
			t.Errorf("standard I/O increased with memory: %d -> %d", prevStd, std)
		}
		prevStd = std
		if non > std {
			t.Errorf("non-standard %d above standard %d", non, std)
		}
		_ = vitter
	}
	// At the largest memory both shift-split engines beat Vitter.
	last := tb.Rows[len(tb.Rows)-1]
	if atoiCell(t, last[2]) >= atoiCell(t, last[1]) {
		t.Errorf("standard %s did not beat Vitter %s at max memory", last[2], last[1])
	}
}

func TestFig12Shapes(t *testing.T) {
	tb, err := Fig12(Fig12Config{LogNs: []int{5, 6}, ChunkBits: 3, TileBits: []int{2, 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		stdSmall, nonSmall := atoiCell(t, r[1]), atoiCell(t, r[2])
		stdBig, nonBig := atoiCell(t, r[3]), atoiCell(t, r[4])
		if nonSmall >= stdSmall || nonBig >= stdBig {
			t.Errorf("non-standard should beat standard: %v", r)
		}
		if stdBig >= stdSmall || nonBig >= nonSmall {
			t.Errorf("larger tiles should cost fewer blocks: %v", r)
		}
	}
	// Cost grows with dataset size.
	if atoiCell(t, tb.Rows[1][1]) <= atoiCell(t, tb.Rows[0][1]) {
		t.Error("standard cost did not grow with dataset size")
	}
}

func TestFig13Shapes(t *testing.T) {
	tb, err := Fig13(Fig13Config{Lat: 8, Lon: 8, DaysMonth: 32, Months: 10, TileBits: []int{1, 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	expansions := 0
	for _, r := range tb.Rows {
		small := atoiCell(t, r[1])
		big := atoiCell(t, r[2])
		if big >= small {
			t.Errorf("month %s: larger tiles (%d) should beat smaller (%d)", r[0], big, small)
		}
		if r[3] == "true" {
			expansions++
		}
	}
	if expansions == 0 {
		t.Error("no expansion months recorded")
	}
}

func TestFig14Shapes(t *testing.T) {
	tb, err := Fig14(Fig14Config{LogN: 12, K: 32, BufBits: []int{1, 3, 5}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := atofCell(t, tb.Rows[0][1])
	if base < 8 {
		t.Errorf("baseline crest cost %g too low for N=2^12", base)
	}
	prev := base
	for _, r := range tb.Rows[1:] {
		cost := atofCell(t, r[1])
		if cost >= prev {
			t.Errorf("buffered crest cost %g did not fall below %g", cost, prev)
		}
		prev = cost
	}
}

func TestStreamMemoryShapes(t *testing.T) {
	tb, err := StreamMemory(DefaultStreamMemory())
	if err != nil {
		t.Fatal(err)
	}
	std := atoiCell(t, tb.Rows[0][1])
	non := atoiCell(t, tb.Rows[1][1])
	if non*4 > std {
		t.Errorf("R5 memory %d not clearly below R4 memory %d", non, std)
	}
}

func TestR6Shapes(t *testing.T) {
	tb, err := R6(R6Config{LogN: 6, TileBits: 2, Levels: []int{1, 3, 5}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		ss := atoiCell(t, r[1])
		full := atoiCell(t, r[3])
		ssCoefs := atoiCell(t, r[4])
		pwCoefs := atoiCell(t, r[5])
		if ss > full {
			t.Errorf("region %s: shift-split blocks %d exceed full %d", r[0], ss, full)
		}
		if ssCoefs >= pwCoefs {
			t.Errorf("region %s: shift-split coefs %d not below pointwise %d", r[0], ssCoefs, pwCoefs)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Errorf("All returned %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("table %q has no rows", tb.Title)
		}
	}
}

func TestSparseShapes(t *testing.T) {
	tb, err := SparseTransform(SparseConfig{LogN: 6, ChunkBits: 3, TileBits: 2, OccupiedFracs: []float64{1, 0.25}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	fullStd := atoiCell(t, tb.Rows[0][2])
	sparseStd := atoiCell(t, tb.Rows[1][2])
	if sparseStd*2 > fullStd {
		t.Errorf("quarter occupancy standard I/O %d not well below full %d", sparseStd, fullStd)
	}
	fullNon := atoiCell(t, tb.Rows[0][4])
	sparseNon := atoiCell(t, tb.Rows[1][4])
	if sparseNon*4 > fullNon {
		t.Errorf("quarter occupancy non-standard I/O %d not ~16x below full %d", sparseNon, fullNon)
	}
	if atoiCell(t, tb.Rows[1][3]) == 0 {
		t.Error("no skipped chunks at quarter occupancy")
	}
}

func TestQueryCostShapes(t *testing.T) {
	tb, err := QueryCost(QueryCostConfig{LogN: 6, TileBits: 2, Queries: 80, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	single := atofCell(t, tb.Rows[0][1])
	path := atofCell(t, tb.Rows[0][2])
	seq := atofCell(t, tb.Rows[0][3])
	if single != 1 {
		t.Errorf("scaling-slot point queries average %g blocks, want 1", single)
	}
	if !(path < seq) {
		t.Errorf("tiled path %g should beat sequential %g", path, seq)
	}
	tiledRange := atofCell(t, tb.Rows[1][2])
	seqRange := atofCell(t, tb.Rows[1][3])
	if !(tiledRange < seqRange) {
		t.Errorf("tiled range %g should beat sequential %g", tiledRange, seqRange)
	}
}

func TestExpansionTimeShapes(t *testing.T) {
	tb, err := ExpansionTime(ExpansionTimeConfig{Months: 12, TileBits: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	mergeBlocks := atoiCell(t, tb.Rows[0][2])
	expandBlocks := atoiCell(t, tb.Rows[1][2])
	if mergeBlocks == 0 || expandBlocks == 0 {
		t.Fatal("missing I/O counts")
	}
}

func TestAllTablesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.Title == "" {
			t.Error("table with empty title")
		}
		for i, r := range tb.Rows {
			if len(r) != len(tb.Columns) {
				t.Errorf("table %q row %d has %d cells for %d columns", tb.Title, i, len(r), len(tb.Columns))
			}
		}
		if md := tb.Markdown(); len(md) == 0 {
			t.Errorf("table %q renders empty markdown", tb.Title)
		}
	}
}

func TestAppendFormsShapes(t *testing.T) {
	tb, err := AppendForms(AppendFormsConfig{Edge: 8, Periods: 12, TileBits: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The non-standard appender's late appends must not grow with history,
	// while the standard form's expansion periods dwarf its routine ones.
	var stdMax, nonMax, nonEarly int64
	for i, r := range tb.Rows {
		std := atoiCell(t, r[1])
		non := atoiCell(t, r[3])
		if std > stdMax {
			stdMax = std
		}
		if i >= 6 && non > nonMax {
			nonMax = non
		}
		if i == 1 {
			nonEarly = non
		}
	}
	if nonMax > 2*nonEarly {
		t.Errorf("non-standard append cost grew: early %d, late max %d", nonEarly, nonMax)
	}
	if stdMax < 4*nonMax {
		t.Errorf("standard expansion max %d should dwarf non-standard %d", stdMax, nonMax)
	}
}
