package experiments

import (
	"fmt"
	"math/rand"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/query"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/wavelet"
)

// QueryCostConfig parametrizes the query-time tiling comparison (the reason
// §3 exists: "minimize the number of disk I/Os needed to perform any
// operation in the wavelet domain, including the important reconstruction
// operation").
type QueryCostConfig struct {
	LogN     int
	TileBits int
	Queries  int
	Seed     int64
}

// DefaultQueryCost uses a 64x64 store.
func DefaultQueryCost() QueryCostConfig {
	return QueryCostConfig{LogN: 6, TileBits: 2, Queries: 200, Seed: 10}
}

// QueryCost measures the block I/O of point and range queries under three
// layouts: the paper's tree tiling with stored scaling coefficients
// (single-block points), the tree tiling queried via root paths, and a flat
// sequential layout (the no-tiling baseline).
func QueryCost(c QueryCostConfig) (*Table, error) {
	N := 1 << uint(c.LogN)
	shape := []int{N, N}
	src := dataset.Dense(shape, c.Seed)
	hat := wavelet.TransformStandard(src)

	tiling := tile.NewStandard([]int{c.LogN, c.LogN}, c.TileBits)
	tiled, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), tiling)
	if err != nil {
		return nil, err
	}
	if err := tile.MaterializeStandard(tiled, hat); err != nil {
		return nil, err
	}
	seqTiling := tile.NewSequential(shape, tiling.BlockSize())
	seq, err := tile.NewStore(storage.NewMemStore(tiling.BlockSize()), seqTiling)
	if err != nil {
		return nil, err
	}
	if err := tile.WriteArray(seq, hat); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(c.Seed))
	var singleTile, tiledPath, seqPath int
	for q := 0; q < c.Queries; q++ {
		p := []int{rng.Intn(N), rng.Intn(N)}
		_, io1, err := query.PointStandard(tiled, p)
		if err != nil {
			return nil, err
		}
		_, io2, err := query.PointViaRootPath(tiled, shape, p)
		if err != nil {
			return nil, err
		}
		_, io3, err := query.PointViaRootPath(seq, shape, p)
		if err != nil {
			return nil, err
		}
		singleTile += io1
		tiledPath += io2
		seqPath += io3
	}
	var tiledRange, seqRange int
	for q := 0; q < c.Queries/4; q++ {
		s := []int{rng.Intn(N), rng.Intn(N)}
		sh := []int{1 + rng.Intn(N-s[0]), 1 + rng.Intn(N-s[1])}
		_, io1, err := query.RangeSumStandard(tiled, shape, s, sh)
		if err != nil {
			return nil, err
		}
		_, io2, err := query.RangeSumStandard(seq, shape, s, sh)
		if err != nil {
			return nil, err
		}
		tiledRange += io1
		seqRange += io2
	}

	t := &Table{
		Title:   fmt.Sprintf("Query cost (§3) — avg blocks per query; N=%d, tile=%d coefficients", N, tiling.BlockSize()),
		Columns: []string{"workload", "tiling + scaling slots", "tiling (root path)", "sequential layout"},
	}
	qf := float64(c.Queries)
	rf := float64(c.Queries / 4)
	t.Add("point reconstruction", float64(singleTile)/qf, float64(tiledPath)/qf, float64(seqPath)/qf)
	t.Add("range sum", "-", float64(tiledRange)/rf, float64(seqRange)/rf)
	t.Notes = append(t.Notes,
		"the stored per-tile scaling coefficients cut point queries to one block; the tree tiling alone already beats the flat layout")
	return t, nil
}
