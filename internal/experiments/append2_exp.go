package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// AppendFormsConfig parametrizes the appender-form comparison.
type AppendFormsConfig struct {
	Edge     int // spatial grid edge and hypercube time extent (power of two)
	Periods  int // appends
	TileBits int
	Seed     int64
}

// DefaultAppendForms uses 8x8x8 hypercubes.
func DefaultAppendForms() AppendFormsConfig {
	return AppendFormsConfig{Edge: 8, Periods: 16, TileBits: 2, Seed: 13}
}

// AppendForms contrasts the two appending strategies of §5.2: the
// standard-form appender, whose domain expansions rewrite the whole
// transform (the Figure-13 jumps), against the non-standard hypercube-
// sequence appender (the Result-5 construction), which never touches old
// data and pays only O(log T) beyond the new hypercube's own tiles.
func AppendForms(c AppendFormsConfig) (*Table, error) {
	e := c.Edge
	std, err := appender.New([]int{e, e, e}, c.TileBits)
	if err != nil {
		return nil, err
	}
	non, err := appender.NewNonStd(log2of(e), 3, c.TileBits)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Appending forms (§5.2) — per-append block I/O; %dx%dx%d per period",
			e, e, e),
		Columns: []string{"period", "standard form", "expanded", "non-standard form"},
	}
	var prevNon int64
	for p := 0; p < c.Periods; p++ {
		cube := dataset.Precipitation([]int{e, e, e}, c.Seed+int64(p))
		stStats, err := std.Append(2, cube)
		if err != nil {
			return nil, err
		}
		if err := non.Append(cube); err != nil {
			return nil, err
		}
		nonTotal := non.TotalIO().Total()
		t.Add(p+1,
			stStats.MergeIO.Total()+stStats.ExpansionIO.Total(),
			stStats.Expansions > 0,
			nonTotal-prevNon)
		prevNon = nonTotal
	}
	t.Notes = append(t.Notes,
		"the standard form pays growing expansion jumps; the non-standard hypercube sequence stays flat because old hypercubes are never rewritten")
	return t, nil
}

func log2of(x int) int {
	n := 0
	for 1<<uint(n) < x {
		n++
	}
	return n
}
