package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/stream"
)

// Fig14Config parametrizes the §6.3 stream-synopsis experiment.
type Fig14Config struct {
	LogN    int   // stream length 2^LogN
	K       int   // synopsis size
	BufBits []int // buffer sweep: B = 2^bits
	Seed    int64
}

// DefaultFig14 uses a 2^16-item random walk.
func DefaultFig14() Fig14Config {
	return Fig14Config{LogN: 16, K: 64, BufBits: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, Seed: 5}
}

// Fig14 reproduces the §6.3 experiment (the update-cost improvement from
// buffering, Result 3): per-item crest update cost for the Gilbert et al.
// baseline versus SHIFT-SPLIT buffering, across buffer sizes.
func Fig14(c Fig14Config) (*Table, error) {
	data := dataset.RandomWalk(1<<uint(c.LogN), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Figure 14 — per-item synopsis update cost vs buffer size; N=2^%d, K=%d", c.LogN, c.K),
		Columns: []string{"buffer B", "crest updates/item", "total ops/item", "method"},
	}
	base := stream.NewBaseline(c.K)
	for _, v := range data {
		base.Add(v)
	}
	base.Finish()
	t.Add(1, base.Costs().PerItemCrest(), base.Costs().PerItemTotal(), "Gilbert et al. (no buffer)")
	for _, bits := range c.BufBits {
		buf := stream.NewBuffered(c.K, bits)
		for _, v := range data {
			buf.Add(v)
		}
		if err := buf.Finish(); err != nil {
			return nil, err
		}
		t.Add(1<<uint(bits), buf.Costs().PerItemCrest(), buf.Costs().PerItemTotal(), "Shift-Split buffered")
	}
	t.Notes = append(t.Notes,
		"expected shape: baseline pays ~log2 N per item; buffered cost falls like log(N/B)/B (Result 3)")
	return t, nil
}

// StreamMemoryConfig parametrizes the Result 4/5 memory comparison.
type StreamMemoryConfig struct {
	LogCross int // cross-section edge 2^logCross (standard form)
	Dims     int // total dims including time
	LogHyper int // hypercube edge for the non-standard form
	Slices   int // time extent streamed
	K        int
	Seed     int64
}

// DefaultStreamMemory compares the two multidimensional forms.
func DefaultStreamMemory() StreamMemoryConfig {
	return StreamMemoryConfig{LogCross: 3, Dims: 3, LogHyper: 3, Slices: 64, K: 32, Seed: 6}
}

// StreamMemory contrasts Results 4 and 5: the crest memory needed to
// maintain a K-term synopsis of a d-dimensional stream under the standard
// form (O(N^(d-1) log T)) versus the non-standard form
// (O((2^d-1) log(N/M) + log(T/N))).
func StreamMemory(c StreamMemoryConfig) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Results 4 & 5 — stream synopsis crest memory; d=%d, N=%d, T=%d", c.Dims, 1<<uint(c.LogCross), c.Slices),
		Columns: []string{"form", "crest coefficients", "bound"},
	}
	crossShape := make([]int, c.Dims-1)
	for i := range crossShape {
		crossShape[i] = 1 << uint(c.LogCross)
	}
	cube := dataset.Dense(append(append([]int(nil), crossShape...), c.Slices), c.Seed)

	std := stream.NewStandard(crossShape, 1, c.K)
	start := make([]int, c.Dims)
	shape := append(append([]int(nil), crossShape...), 1)
	for tm := 0; tm < c.Slices; tm++ {
		start[c.Dims-1] = tm
		slice := cube.SubCopy(start, shape)
		flat := reshape(slice, crossShape)
		if err := std.AddSlice(flat); err != nil {
			return nil, err
		}
	}
	crossSize := 1
	for _, s := range crossShape {
		crossSize *= s
	}
	t.Add("standard (R4)", std.CrestMemory(), fmt.Sprintf("O(N^(d-1) log T) ~ %d", crossSize*ilog2(c.Slices)))

	// Non-standard: hypercubes of edge 2^LogHyper fed as z-ordered chunks.
	n := c.LogHyper
	m := 1
	ns := stream.NewNonStandard(n, c.Dims, m, c.K)
	edge := 1 << uint(n)
	hypers := c.Slices / edge
	chunkShape := make([]int, c.Dims)
	for i := range chunkShape {
		chunkShape[i] = 1 << uint(m)
	}
	side := 1 << uint(n-m)
	chunksPerHyper := 1
	for i := 0; i < c.Dims; i++ {
		chunksPerHyper *= side
	}
	for h := 0; h < hypers; h++ {
		hstart := make([]int, c.Dims)
		hstart[c.Dims-1] = h * edge
		hshape := make([]int, c.Dims)
		for i := range hshape {
			hshape[i] = edge
		}
		hyperCube := cube.SubCopy(hstart, hshape)
		for i := 0; i < chunksPerHyper; i++ {
			pos := ns.NextChunkPos()
			cstart := make([]int, c.Dims)
			for j := range cstart {
				cstart[j] = pos[j] << uint(m)
			}
			if err := ns.AddChunk(hyperCube.SubCopy(cstart, chunkShape)); err != nil {
				return nil, err
			}
		}
	}
	bound := (1<<uint(c.Dims)-1)*(n-m) + ilog2(hypers)
	t.Add("non-standard (R5)", ns.CrestMemory(), fmt.Sprintf("O((2^d-1)log(N/M)+log(T/N)) ~ %d", bound))
	t.Notes = append(t.Notes,
		"the standard form's crest grows with the cross-section size; the non-standard form's does not (paper §5.3)")
	return t, nil
}

func ilog2(x int) int {
	r := 0
	for x > 1 {
		x /= 2
		r++
	}
	return r
}
