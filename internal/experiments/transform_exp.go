package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/bitutil"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/transform"
)

// Fig11Config parametrizes the §6.1 memory-sweep experiment.
type Fig11Config struct {
	LogN       int   // per-dimension domain 2^LogN (paper: a 16 GB 4-d cube)
	Dims       int   // paper: 4 (lat, lon, alt, time)
	ChunkBits  []int // memory sweep: chunk edge 2^m, memory = 2^(m*d) coefficients
	Seed       int64
	SkipVitter bool // Vitter is the slowest engine; benches may skip it
}

// DefaultFig11 mirrors the paper's setup at laptop scale.
func DefaultFig11() Fig11Config {
	return Fig11Config{LogN: 4, Dims: 4, ChunkBits: []int{1, 2, 3}, Seed: 1}
}

func (c Fig11Config) dataset() *ndarray.Array {
	shape := make([]int, c.Dims)
	for i := range shape {
		shape[i] = 1 << uint(c.LogN)
	}
	if c.Dims == 4 {
		return dataset.Temperature(shape, c.Seed)
	}
	return dataset.Dense(shape, c.Seed)
}

// Fig11 reproduces Figure 11 (effect of larger memory on transformation
// cost, measured in coefficient I/Os): Vitter et al. versus SHIFT-SPLIT in
// both forms, as available memory grows.
func Fig11(c Fig11Config) (*Table, error) {
	src := c.dataset()
	t := &Table{
		Title:   fmt.Sprintf("Figure 11 — transformation I/O (coefficients) vs memory; %d-d TEMPERATURE, N=%d", c.Dims, 1<<uint(c.LogN)),
		Columns: []string{"memory (coefs)", "Vitter et al.", "Shift-Split (standard)", "Shift-Split (non-standard)"},
	}
	shape := src.Shape()
	ns := make([]int, len(shape))
	for i, s := range shape {
		ns[i] = bitutil.Log2(s)
	}
	for _, m := range c.ChunkBits {
		memory := bitutil.IntPow(1<<uint(m), c.Dims)

		cS := storage.NewCounting(storage.NewMemStore(1))
		stS, err := tile.NewStore(cS, tile.NewSequential(shape, 1))
		if err != nil {
			return nil, err
		}
		stats, err := transform.ChunkedStandard(src, m, stS)
		if err != nil {
			return nil, err
		}
		standardIO := cS.Stats().Total() + stats.InputCoefReads

		cN := storage.NewCounting(storage.NewMemStore(1))
		stN, err := tile.NewStore(cN, tile.NewSequential(shape, 1))
		if err != nil {
			return nil, err
		}
		statsN, err := transform.ChunkedNonStandard(src, m, stN, transform.NonStdOptions{ZOrderCrest: true})
		if err != nil {
			return nil, err
		}
		nonStdIO := cN.Stats().Total() + statsN.InputCoefReads

		vitterCell := "-"
		if !c.SkipVitter {
			cV := storage.NewCounting(storage.NewMemStore(1))
			statsV, err := transform.Vitter(src, memory, cV, 1)
			if err != nil {
				return nil, err
			}
			vitterCell = fmt.Sprintf("%d", cV.Stats().Total()+statsV.InputCoefReads)
		}
		t.Add(memory, vitterCell, standardIO, nonStdIO)
	}
	t.Notes = append(t.Notes,
		"expected shape: standard falls as memory grows, non-standard stays flat and lowest, Vitter stays highest (paper Figure 11)")
	return t, nil
}

// Fig12Config parametrizes the §6.1 tile-size sweep.
type Fig12Config struct {
	LogNs     []int // dataset sweep: per-dimension domain 2^n, d = 2
	ChunkBits int   // memory = chunk edge 2^m per dimension (paper: 64)
	TileBits  []int // per-dimension tile edge 2^b; block = 2^(b*d) coefficients
	Seed      int64
}

// DefaultFig12 mirrors the paper's setup at laptop scale.
func DefaultFig12() Fig12Config {
	return Fig12Config{LogNs: []int{6, 7, 8}, ChunkBits: 4, TileBits: []int{2, 3}, Seed: 2}
}

// Fig12 reproduces Figure 12 (effect of larger tiles): block I/O of the
// chunked transformation as the dataset grows, for two tile sizes and both
// forms, d=2.
func Fig12(c Fig12Config) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 12 — transformation I/O (blocks) vs dataset size; d=2, memory=%d^2", 1<<uint(c.ChunkBits)),
		Columns: []string{"dataset (cells)"},
	}
	for _, b := range c.TileBits {
		blk := bitutil.IntPow(1<<uint(b), 2)
		t.Columns = append(t.Columns,
			fmt.Sprintf("standard (tile=%d)", blk),
			fmt.Sprintf("non-standard (tile=%d)", blk))
	}
	for _, logN := range c.LogNs {
		n := 1 << uint(logN)
		src := dataset.Dense([]int{n, n}, c.Seed)
		row := []interface{}{n * n}
		for _, b := range c.TileBits {
			cS := storage.NewCounting(storage.NewMemStore(bitutil.IntPow(1<<uint(b), 2)))
			stS, err := tile.NewStore(cS, tile.NewStandard([]int{logN, logN}, b))
			if err != nil {
				return nil, err
			}
			if _, err := transform.ChunkedStandard(src, c.ChunkBits, stS); err != nil {
				return nil, err
			}
			cN := storage.NewCounting(storage.NewMemStore(bitutil.IntPow(1<<uint(b), 2)))
			stN, err := tile.NewStore(cN, tile.NewNonStandard(logN, 2, b))
			if err != nil {
				return nil, err
			}
			if _, err := transform.ChunkedNonStandard(src, c.ChunkBits, stN, transform.NonStdOptions{ZOrderCrest: true}); err != nil {
				return nil, err
			}
			row = append(row, cS.Stats().Total(), cN.Stats().Total())
		}
		t.Add(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: linear growth in dataset size; larger tiles cost fewer blocks; non-standard below standard (paper Figure 12)")
	return t, nil
}

// Table2Config parametrizes the complexity cross-check.
type Table2Config struct {
	LogN, Dims, ChunkBits, TileBits int
	Seed                            int64
}

// DefaultTable2 uses a 2-d cube large enough to separate the terms.
func DefaultTable2() Table2Config {
	return Table2Config{LogN: 7, Dims: 2, ChunkBits: 4, TileBits: 2, Seed: 3}
}

// Table2 reproduces Table 2: measured transformation I/O against the
// paper's closed-form complexities for the three methods, in coefficients
// and in blocks.
func Table2(c Table2Config) (*Table, error) {
	shape := make([]int, c.Dims)
	ns := make([]int, c.Dims)
	for i := range shape {
		shape[i] = 1 << uint(c.LogN)
		ns[i] = c.LogN
	}
	src := dataset.Dense(shape, c.Seed)
	N := 1 << uint(c.LogN)
	M := 1 << uint(c.ChunkBits)
	B := 1 << uint(c.TileBits)
	Nd := bitutil.IntPow(N, c.Dims)
	Md := bitutil.IntPow(M, c.Dims)
	logNM := float64(c.LogN - c.ChunkBits)

	t := &Table{
		Title: fmt.Sprintf("Table 2 — transformation I/O complexities, N=%d d=%d M=%d B=%d",
			N, c.Dims, M, B),
		Columns: []string{"method", "measured (coefs)", "formula (coefs)", "measured (blocks)", "formula (blocks)"},
	}

	run := func(engine func(out *tile.Store) error, tiling tile.Tiling) (int64, error) {
		cnt := storage.NewCounting(storage.NewMemStore(tiling.BlockSize()))
		st, err := tile.NewStore(cnt, tiling)
		if err != nil {
			return 0, err
		}
		if err := engine(st); err != nil {
			return 0, err
		}
		return cnt.Stats().Total(), nil
	}

	// Vitter baseline (coefficient granularity only; it does not use the
	// tiling).
	cV := storage.NewCounting(storage.NewMemStore(1))
	if _, err := transform.Vitter(src, Md, cV, 1); err != nil {
		return nil, err
	}
	vitterFormula := fmt.Sprintf("O(N^d log_M N) ~ %d", int(float64(Nd)*(float64(c.LogN)/float64(bitutil.Max(c.ChunkBits, 1)))))
	t.Add("Vitter et al. (standard)", cV.Stats().Total(), vitterFormula, "-", "-")

	stdCoefs, err := run(func(out *tile.Store) error {
		_, err := transform.ChunkedStandard(src, c.ChunkBits, out)
		return err
	}, tile.NewSequential(shape, 1))
	if err != nil {
		return nil, err
	}
	stdBlocks, err := run(func(out *tile.Store) error {
		_, err := transform.ChunkedStandard(src, c.ChunkBits, out)
		return err
	}, tile.NewStandard(ns, c.TileBits))
	if err != nil {
		return nil, err
	}
	fCoefs := float64(Nd) / float64(Md) * pow(float64(M)+logNM, c.Dims)
	fBlocks := float64(Nd) / float64(Md) * pow(float64(M)/float64(B)+logNM/log2f(B), c.Dims)
	t.Add("Shift-Split (standard)",
		stdCoefs, fmt.Sprintf("O(N^d/M^d (M+log N/M)^d) ~ %.0f", fCoefs),
		stdBlocks, fmt.Sprintf("O(N^d/M^d (M/B+log_B N/M)^d) ~ %.0f", fBlocks))

	nonCoefs, err := run(func(out *tile.Store) error {
		_, err := transform.ChunkedNonStandard(src, c.ChunkBits, out, transform.NonStdOptions{ZOrderCrest: true})
		return err
	}, tile.NewSequential(shape, 1))
	if err != nil {
		return nil, err
	}
	nonBlocks, err := run(func(out *tile.Store) error {
		_, err := transform.ChunkedNonStandard(src, c.ChunkBits, out, transform.NonStdOptions{ZOrderCrest: true})
		return err
	}, tile.NewNonStandard(c.LogN, c.Dims, c.TileBits))
	if err != nil {
		return nil, err
	}
	t.Add("Shift-Split (non-standard)",
		nonCoefs, fmt.Sprintf("O(N^d) = %d", Nd),
		nonBlocks, fmt.Sprintf("O(N^d/B^d) = %d", Nd/bitutil.IntPow(B, c.Dims)))
	t.Notes = append(t.Notes, "measured counts exclude reading the source data (identical for the shift-split engines)")
	return t, nil
}

func pow(x float64, e int) float64 {
	r := 1.0
	for i := 0; i < e; i++ {
		r *= x
	}
	return r
}

func log2f(x int) float64 {
	r := 0.0
	for x > 1 {
		x /= 2
		r++
	}
	if r == 0 {
		return 1
	}
	return r
}
