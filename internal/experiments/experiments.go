// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the two analytical tables, on the synthetic stand-in
// datasets described in DESIGN.md. Each experiment returns a Table whose
// rows are the series the paper plots; EXPERIMENTS.md records a captured
// run next to the paper's qualitative claims.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	sb.WriteString("\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("### " + t.Title + "\n\n")
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n_note: " + n + "_\n")
	}
	sb.WriteString("\n")
	return sb.String()
}
