package experiments

import (
	"fmt"

	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
	"github.com/shiftsplit/shiftsplit/internal/tile"
	"github.com/shiftsplit/shiftsplit/internal/transform"
)

// SparseConfig parametrizes the sparse-data transformation experiment
// (paper §5.1's sparse accommodation: complexity in the number of non-zero
// values z rather than N^d).
type SparseConfig struct {
	LogN      int
	ChunkBits int
	TileBits  int
	// OccupiedFracs are the fractions of the domain edge covered by data
	// (the rest is zero), e.g. 1.0, 0.5, 0.25.
	OccupiedFracs []float64
	Seed          int64
}

// DefaultSparse sweeps occupancy on a 2-d dataset.
func DefaultSparse() SparseConfig {
	return SparseConfig{LogN: 7, ChunkBits: 3, TileBits: 2, OccupiedFracs: []float64{1, 0.5, 0.25, 0.125}, Seed: 8}
}

// SparseTransform measures how the chunked engines' I/O scales with the
// occupied fraction of a clustered-sparse dataset: all-zero chunks are
// skipped and all-zero blocks never written, so cost tracks z, not N^d.
func SparseTransform(c SparseConfig) (*Table, error) {
	N := 1 << uint(c.LogN)
	t := &Table{
		Title:   fmt.Sprintf("Sparse data (§5.1) — transformation I/O (blocks) vs occupancy; N=%d d=2", N),
		Columns: []string{"occupied", "non-zero cells", "standard I/O", "skipped chunks", "non-standard I/O", "blocks written"},
	}
	for _, frac := range c.OccupiedFracs {
		edge := int(float64(N) * frac)
		if edge < 1 {
			edge = 1
		}
		src := ndarray.New(N, N)
		if edge > 0 {
			blob := dataset.Dense([]int{edge, edge}, c.Seed)
			src.SubPaste(blob, []int{0, 0})
		}
		nz := 0
		for _, v := range src.Data() {
			if v != 0 {
				nz++
			}
		}

		cS := storage.NewCounting(storage.NewMemStore(tileBlk(c.TileBits)))
		stS, err := tile.NewStore(cS, tile.NewStandard([]int{c.LogN, c.LogN}, c.TileBits))
		if err != nil {
			return nil, err
		}
		statsS, err := transform.ChunkedStandard(src, c.ChunkBits, stS)
		if err != nil {
			return nil, err
		}

		cN := storage.NewCounting(storage.NewMemStore(tileBlk(c.TileBits)))
		stN, err := tile.NewStore(cN, tile.NewNonStandard(c.LogN, 2, c.TileBits))
		if err != nil {
			return nil, err
		}
		_, err = transform.ChunkedNonStandard(src, c.ChunkBits, stN, transform.NonStdOptions{ZOrderCrest: true})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.0f%%", frac*100), nz,
			cS.Stats().Total(), statsS.SkippedChunks,
			cN.Stats().Total(), cN.Stats().Writes)
	}
	t.Notes = append(t.Notes,
		"zero chunks are skipped and all-zero blocks never written: I/O tracks the occupied region, the paper's sparse-data accommodation")
	return t, nil
}

func tileBlk(b int) int {
	s := 1 << uint(b)
	return s * s
}
