package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
	"github.com/shiftsplit/shiftsplit/internal/ndarray"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// newIngestServer mounts an ingester (4x4 domain growing along dim 1)
// beside a small read store.
func newIngestServer(t testing.TB, icfg ingest.Config) (*httptest.Server, *ingest.Ingester) {
	t.Helper()
	app, err := appender.New([]int{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	icfg.Dim = 1
	in, err := ingest.New(app, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = in.Close() }) // idempotent; tests may close early
	st := buildStore(t, []int{16, 16}, 0)
	ts := newTestServer(t, st, Config{Ingest: in})
	return ts, in
}

func TestIngestSingleSlab(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{FlushInterval: time.Millisecond})
	resp, body := postJSON(t, ts.URL+"/v1/ingest", `{"shape":[4,1],"values":[1,2,3,4]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res ingestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("response %q: %v", body, err)
	}
	if res.Offset[1] != 0 || res.Cells != 4 || res.Group != 1 {
		t.Fatalf("result %+v", res)
	}
	// Committed ⇒ queryable through the ingest point endpoint.
	resp, body = postJSON(t, ts.URL+"/v1/ingest/point", `{"point":[2,0]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("point status %d: %s", resp.StatusCode, body)
	}
	var pr ingestPointResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.Value-3) > 1e-9 {
		t.Fatalf("point value %v, want 3", pr.Value)
	}
}

func TestIngestNDJSON(t *testing.T) {
	ts, in := newIngestServer(t, ingest.Config{FlushInterval: 5 * time.Millisecond})
	lines := `{"shape":[4,1],"values":[1,1,1,1]}
{"shape":[4,1],"values":[2,2,2,2]}
{"shape":[4,1],"values":[3,3,3,3]}`
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	offs := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var res ingestResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if res.Error != "" {
			t.Fatalf("line error: %s", res.Error)
		}
		offs[res.Offset[1]] = true
		n++
	}
	if n != 3 || !offs[0] || !offs[1] || !offs[2] {
		t.Fatalf("results n=%d offsets=%v", n, offs)
	}
	// All three lines of one request should have shared group commits.
	st := in.Stats()
	if st.CommittedSlabs != 3 {
		t.Fatalf("committed %d", st.CommittedSlabs)
	}
	if st.Groups > 3 {
		t.Fatalf("groups %d > slabs", st.Groups)
	}
}

func TestIngestBadRequests(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{FlushInterval: time.Millisecond})
	cases := []struct{ name, ct, body string }{
		{"malformed json", "application/json", `{"shape":[4,1]`},
		{"shape values mismatch", "application/json", `{"shape":[4,1],"values":[1]}`},
		{"inf cell", "application/json", `{"shape":[1,1],"values":[1e999]}`},
		{"unknown field", "application/json", `{"shape":[4,1],"values":[1,2,3,4],"x":1}`},
		{"wrong dims", "application/json", `{"shape":[4],"values":[1,2,3,4]}`},
		{"negative extent", "application/json", `{"shape":[-4,1],"values":[]}`},
		{"empty ndjson", "application/x-ndjson", ``},
		{"bad ndjson line", "application/x-ndjson", `{"shape":[4,1],"values":[1,2,3,4]}` + "\n" + `{"shape":`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/ingest", tc.ct, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, buf.String())
		}
	}
	// Nothing above may have committed — a bad NDJSON line fails the whole
	// request before any enqueue.
	stats := getStats(t, ts.URL)
	if stats.Ingest == nil || stats.Ingest.CommittedSlabs != 0 {
		t.Fatalf("ingest stats after bad requests: %+v", stats.Ingest)
	}
}

func getStats(t testing.TB, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestIngestBackpressure429(t *testing.T) {
	ts, in := newIngestServer(t, ingest.Config{
		MaxQueueSlabs: 1,
		FlushInterval: 300 * time.Millisecond,
	})
	// Occupy the queue directly, then hit the HTTP endpoint.
	done := make(chan error, 1)
	go func() {
		_, err := in.Enqueue(context.Background(), ndarray.FromSlice([]float64{1, 2, 3, 4}, 4, 1))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for in.Stats().QueueSlabs != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/v1/ingest", `{"shape":[4,1],"values":[5,6,7,8]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if err := <-done; err != nil {
		t.Fatalf("staged append failed: %v", err)
	}
}

func TestIngestGate503(t *testing.T) {
	gateErr := storage.ErrUnavailable
	ts, _ := newIngestServer(t, ingest.Config{
		FlushInterval: time.Millisecond,
		Gate:          func() error { return gateErr },
	})
	resp, body := postJSON(t, ts.URL+"/v1/ingest", `{"shape":[4,1],"values":[1,2,3,4]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
}

func TestIngestStreamEndpoint(t *testing.T) {
	ts, _ := newIngestServer(t, ingest.Config{FlushInterval: time.Millisecond})
	resp, body := postJSON(t, ts.URL+"/v1/ingest/stream", `{"values":[1,2,3,4,5,6,7,8]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ingestStreamResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Items != 8 {
		t.Fatalf("items %d, want 8", sr.Items)
	}
	resp, body = postJSON(t, ts.URL+"/v1/ingest/stream", `{"values":[1,"x"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad stream status %d: %s", resp.StatusCode, body)
	}
	// Stats surface the ingest section with stream accounting.
	stats := getStats(t, ts.URL)
	if stats.Ingest == nil || stats.Ingest.StreamItems != 8 {
		t.Fatalf("stats ingest section: %+v", stats.Ingest)
	}
}

// TestIngestRouteAbsentWithoutIngester: a server without an ingester must
// 404 the write path, not panic on a nil ingester.
func TestIngestRouteAbsentWithoutIngester(t *testing.T) {
	st := buildStore(t, []int{16, 16}, 0)
	ts := newTestServer(t, st, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/ingest", `{"shape":[4,1],"values":[1,2,3,4]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
