package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
)

// fuzzServingStore materializes a 16x16 serving store in a temp directory
// that leaks for the process lifetime, which is fine for a test binary.
func fuzzServingStore() (*shiftsplit.Store, error) {
	dir, err := os.MkdirTemp("", "shiftsplit-fuzz")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "fuzz.wav")
	shape := []int{16, 16}
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: shape, Form: shiftsplit.Standard, TileBits: 2, Path: path,
	})
	if err != nil {
		return nil, err
	}
	if err := st.Materialize(dataset.Dense(shape, 7)); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	return shiftsplit.OpenServing(path, 32, 4)
}

// fuzzHandler builds one shared 16x16 server for the whole fuzz run; the
// store is immutable, so reuse across inputs is safe and keeps iterations
// fast.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	serving, err := fuzzServingStore()
	if err != nil {
		panic(err)
	}
	return New(serving, Config{}).Handler()
})

// FuzzRequestDecoding throws arbitrary bodies at every query endpoint and
// asserts the invariants the issue demands: no input may panic (recoverJSON
// would surface a panic as a 500, which the fuzz treats as a failure) and
// every non-2xx answer is a well-formed JSON error object.
func FuzzRequestDecoding(f *testing.F) {
	seeds := []string{
		`{"point":[5,7]}`,
		`{"point":[]}`,
		`{"point":[-1,-1]}`,
		`{"point":[99999999999,0]}`,
		`{"point":[9223372036854775807,9223372036854775807]}`,
		`{"start":[0,0],"extent":[8,8]}`,
		`{"start":[0,0],"extent":[-8,8]}`,
		`{"start":[-4,-4],"extent":[4,4]}`,
		`{"start":[9223372036854775800,0],"extent":[100,4]}`,
		`{"start":[0],"extent":[4]}`,
		`{"dim":0,"index":3}`,
		`{"dim":-1}`,
		`{"dim":100000,"start":-5,"length":0}`,
		`{`,
		``,
		`null`,
		`[]`,
		`42`,
		`"point"`,
		`{"point":[5,7]}{"point":[5,7]}`,
		`{"point":[5,7],"extra":"field"}`,
		`{"point":"not-an-array"}`,
		`{"point":[1.5,2.5]}`,
		`{"start":[0,0],"extent":[8,8],"every":-3}`,
		strings.Repeat(`{"point":[`, 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	paths := []string{
		"/v1/point", "/v1/rangesum", "/v1/progressive",
		"/v1/olap/rollup", "/v1/olap/slice", "/v1/olap/dice",
	}
	f.Fuzz(func(t *testing.T, body string) {
		h := fuzzHandler()
		for _, p := range paths {
			req := httptest.NewRequest("POST", p, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			resp := rec.Result()
			if resp.StatusCode == http.StatusInternalServerError {
				t.Fatalf("%s: input %q produced 500: %s", p, body, rec.Body.String())
			}
			if resp.StatusCode >= 300 {
				var er errorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
					t.Fatalf("%s: input %q: status %d with malformed error body %q",
						p, body, resp.StatusCode, rec.Body.String())
				}
			}
			if p == "/v1/progressive" && resp.StatusCode == http.StatusOK {
				// Streamed success: every line must be valid JSON.
				for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
					var step progressiveStep
					if err := json.Unmarshal([]byte(line), &step); err != nil {
						t.Fatalf("progressive stream line %q not JSON: %v", line, err)
					}
				}
			}
		}
	})
}

// FuzzStructuredRange drives the range endpoints with structured (but
// unconstrained) integers so the fuzzer explores the validation lattice
// rather than JSON syntax: in-bounds boxes must succeed, everything else
// must be a clean 400.
func FuzzStructuredRange(f *testing.F) {
	f.Add(0, 0, 8, 8)
	f.Add(-1, 0, 4, 4)
	f.Add(0, 0, 0, 0)
	f.Add(15, 15, 1, 1)
	f.Add(1<<62, 1, 1<<62, 1)
	f.Add(8, 8, -8, -8)
	f.Fuzz(func(t *testing.T, s0, s1, e0, e1 int) {
		h := fuzzHandler()
		body, _ := json.Marshal(rangeRequest{Start: []int{s0, s1}, Extent: []int{e0, e1}})
		for _, p := range []string{"/v1/rangesum", "/v1/progressive"} {
			req := httptest.NewRequest("POST", p, strings.NewReader(string(body)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code == http.StatusInternalServerError {
				t.Fatalf("%s: start=[%d,%d] extent=[%d,%d] produced 500: %s",
					p, s0, s1, e0, e1, rec.Body.String())
			}
			inBounds := s0 >= 0 && s1 >= 0 && e0 > 0 && e1 > 0 &&
				s0 <= 16-e0 && s1 <= 16-e1
			if inBounds && rec.Code != http.StatusOK {
				t.Fatalf("%s: valid box start=[%d,%d] extent=[%d,%d] rejected: %d %s",
					p, s0, s1, e0, e1, rec.Code, rec.Body.String())
			}
			if !inBounds && rec.Code != http.StatusBadRequest {
				t.Fatalf("%s: invalid box start=[%d,%d] extent=[%d,%d] got %d, want 400",
					p, s0, s1, e0, e1, rec.Code)
			}
		}
	})
}
