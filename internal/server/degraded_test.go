package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit"
	"github.com/shiftsplit/shiftsplit/internal/dataset"
	"github.com/shiftsplit/shiftsplit/internal/storage"
)

// buildDurableFile materializes a durable store on disk and returns its
// path (closed, ready to reopen for serving).
func buildDurableFile(t testing.TB, shape []int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cube.wav")
	st, err := shiftsplit.CreateStore(shiftsplit.StoreOptions{
		Shape: shape, Form: shiftsplit.Standard, TileBits: 2, Path: path, Durable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Materialize(dataset.Dense(shape, 7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// rotWrittenFrame flips one payload byte of the first written frame in a
// durable store's data file and returns the block id.
func rotWrittenFrame(t testing.TB, path string, blockSize int) int {
	t.Helper()
	fs, err := storage.OpenFileStore(path, blockSize+storage.ChecksumOverhead)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := storage.NewChecksummed(fs)
	if err != nil {
		fs.Close()
		t.Fatal(err)
	}
	n, err := fs.NumBlocks()
	if err != nil {
		fs.Close()
		t.Fatal(err)
	}
	bad := -1
	for id := 0; id < n; id++ {
		if _, written, err := chk.ReadMeta(id); err == nil && written {
			bad = id
			break
		}
	}
	fs.Close()
	if bad < 0 {
		t.Fatal("no written frame to rot")
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(bad)*int64(8*(blockSize+storage.ChecksumOverhead)) + 3
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	return bad
}

func getJSON(t testing.TB, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDegradedServingEndToEnd drives the whole degraded pipeline over HTTP:
// rot a frame, scrub it into quarantine, and watch the server keep
// answering — flagged — while healthz and stats report the damage.
func TestDegradedServingEndToEnd(t *testing.T) {
	shape := []int{16, 16}
	path := buildDurableFile(t, shape)
	st, err := shiftsplit.OpenServing(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, st, Config{})

	var h healthResponse
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthy store reports %+v", h)
	}

	bad := rotWrittenFrame(t, path, st.BlockSize())
	if n, err := st.ScrubOnce(context.Background()); err != nil || n != 1 {
		t.Fatalf("scrub: n=%d err=%v", n, err)
	}

	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "degraded" || h.Quarantined != 1 {
		t.Fatalf("healthz after scrub = %+v", h)
	}

	// A whole-domain range sum must touch the quarantined block: it still
	// answers (200), carries the degraded flag, and is not NaN/Inf.
	resp, body := postJSON(t, ts.URL+"/v1/rangesum", `{"start":[0,0],"extent":[16,16]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded rangesum status %d: %s", resp.StatusCode, body)
	}
	var rr rangeResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded {
		t.Fatalf("whole-domain answer over quarantined block %d not flagged degraded: %s", bad, body)
	}
	if math.IsNaN(rr.Sum) || math.IsInf(rr.Sum, 0) {
		t.Fatalf("degraded sum is not finite: %v", rr.Sum)
	}

	// OLAP over a degraded store is flagged and NOT cached: after a heal
	// the next load must come back clean.
	resp, body = postJSON(t, ts.URL+"/v1/olap/rollup", `{"dim":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded rollup status %d: %s", resp.StatusCode, body)
	}
	var or olapResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if !or.Degraded {
		t.Fatalf("degraded OLAP answer not flagged: %s", body)
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Health.Status != "degraded" {
		t.Fatalf("stats health = %+v", stats.Health)
	}
	if len(stats.Quarantined) != 1 || stats.Quarantined[0].Block != bad {
		t.Fatalf("stats quarantine = %+v, want block %d", stats.Quarantined, bad)
	}
	if stats.Scrub == nil || stats.Scrub.Passes != 1 {
		t.Fatalf("stats scrub = %+v", stats.Scrub)
	}

	// Heal: repair rolls the block forward from the retained batch (the
	// serving store was freshly opened, so no batch is retained — use
	// re-materialize via a maintenance handle instead of asserting repair).
	// Here the cheap heal is a clean rewrite through the serving store's
	// write path; re-scrub releases the quarantine.
	mt, err := shiftsplit.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Materialize(dataset.Dense(shape, 7)); err != nil {
		t.Fatal(err)
	}
	if err := mt.Close(); err != nil {
		t.Fatal(err)
	}
	// The serving store's registry is its own; a scrub pass observes the
	// healed medium and releases the block.
	if n, err := st.ScrubOnce(context.Background()); err != nil || n != 0 {
		t.Fatalf("post-heal scrub: n=%d err=%v", n, err)
	}
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz after heal = %+v", h)
	}

	// The OLAP cache was not poisoned: a fresh load now answers clean.
	resp, body = postJSON(t, ts.URL+"/v1/olap/rollup", `{"dim":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed rollup status %d: %s", resp.StatusCode, body)
	}
	var healed olapResponse // fresh value: omitempty would leave a stale flag on re-unmarshal
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Degraded {
		t.Fatalf("healed OLAP answer still flagged degraded: %s", body)
	}
}

// TestBreakerOpenMapsTo503 wires a Faulty under a breaker-equipped serving
// store: once sustained failures trip the circuit, queries fail fast with
// 503 + Retry-After instead of hammering the dead backend.
func TestBreakerOpenMapsTo503(t *testing.T) {
	shape := []int{16, 16}
	path := buildDurableFile(t, shape)
	var faulty *storage.Faulty
	st, err := shiftsplit.OpenServingOpts(path, shiftsplit.ServeOptions{
		Breaker: &storage.BreakerOptions{Threshold: 1, Cooldown: time.Hour},
		BaseWrap: func(bs storage.BlockStore) storage.BlockStore {
			faulty = storage.NewFaulty(bs)
			return faulty
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, st, Config{})

	// Healthy first: the store answers.
	resp, body := postJSON(t, ts.URL+"/v1/point", `{"point":[3,3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy point status %d: %s", resp.StatusCode, body)
	}

	// Kill the device. The first failing query trips the breaker (500);
	// from then on queries shed with 503 and a Retry-After hint.
	faulty.FailReadAfter(1)
	resp, body = postJSON(t, ts.URL+"/v1/point", `{"point":[3,3]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tripping query status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/point", `{"point":[5,5]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit query status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	var h healthResponse
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "degraded" || h.Breaker != "open" {
		t.Fatalf("healthz with open breaker = %+v", h)
	}
}
