package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shiftsplit/shiftsplit/internal/appender"
	"github.com/shiftsplit/shiftsplit/internal/ingest"
)

// fuzzIngestHandler builds one shared ingest-mounted server for the fuzz
// run. Valid inputs mutate the ingested domain — that is the point: the
// invariants below must hold on a store that grows mid-run.
var fuzzIngestHandler = sync.OnceValue(func() http.Handler {
	app, err := appender.New([]int{4, 4}, 1)
	if err != nil {
		panic(err)
	}
	in, err := ingest.New(app, ingest.Config{Dim: 1, FlushInterval: time.Millisecond})
	if err != nil {
		panic(err)
	}
	st, err := fuzzServingStore()
	if err != nil {
		panic(err)
	}
	return New(st, Config{Ingest: in}).Handler()
})

// FuzzIngestDecoding throws arbitrary bodies at the write path, as JSON
// and as NDJSON: malformed requests (bad JSON, wrong-shape slabs,
// NaN/Inf cells) must come back 400 via query.ErrInvalid — never a panic
// (recoverJSON would turn one into a 500, which fails the fuzz) — and
// every non-2xx answer must be a well-formed JSON error object.
func FuzzIngestDecoding(f *testing.F) {
	seeds := []string{
		`{"shape":[4,1],"values":[1,2,3,4]}`,
		`{"shape":[4,2],"values":[1,2,3,4,5,6,7,8]}`,
		`{"shape":[4,1],"values":[1,2,3]}`,
		`{"shape":[],"values":[]}`,
		`{"shape":[0],"values":[]}`,
		`{"shape":[-4,1],"values":[1]}`,
		`{"shape":[4,1],"values":[null,2,3,4]}`,
		`{"shape":[1,1],"values":[1e999]}`,
		`{"shape":[1073741824,1073741824],"values":[]}`,
		`{"shape":[3,1],"values":[1,2,3]}`,
		`{"shape":[8,1],"values":[1,2,3,4,5,6,7,8]}`,
		`{"shape":[4,1],"values":[1,2,3,4],"extra":true}`,
		`{"values":[1,2,3,4]}`,
		`{"shape":[4,1]}`,
		`{"shape":"x","values":"y"}`,
		`{`,
		``,
		`null`,
		`[]`,
		`42`,
		`{"shape":[4,1],"values":[1,2,3,4]}` + "\n" + `{"shape":[4,1],"values":[5,6,7,8]}`,
		`{"shape":[4,1],"values":[1,2,3,4]}{"shape":`,
		`{"values":[1,2,3]}`,
		`{"point":[0,0]}`,
		strings.Repeat(`{"shape":[`, 500),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		h := fuzzIngestHandler()
		for _, ct := range []string{"application/json", "application/x-ndjson"} {
			for _, p := range []string{"/v1/ingest", "/v1/ingest/stream", "/v1/ingest/point"} {
				req := httptest.NewRequest("POST", p, strings.NewReader(body))
				req.Header.Set("Content-Type", ct)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				resp := rec.Result()
				if resp.StatusCode == http.StatusInternalServerError {
					t.Fatalf("%s (%s): input %q produced 500: %s", p, ct, body, rec.Body.String())
				}
				if resp.StatusCode >= 300 {
					var er errorResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
						t.Fatalf("%s (%s): input %q: status %d with malformed error body %q",
							p, ct, body, resp.StatusCode, rec.Body.String())
					}
					continue
				}
				if p == "/v1/ingest" && ct == "application/x-ndjson" {
					// Streamed success: every line must be valid JSON.
					for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
						var res ingestResult
						if err := json.Unmarshal([]byte(line), &res); err != nil {
							t.Fatalf("ingest NDJSON line %q not JSON: %v", line, err)
						}
					}
				}
			}
		}
	})
}
